module atomicsmodel

go 1.22
