// Package-level integration tests: each test asserts one of the
// paper's headline claims end-to-end through the public API. These are
// the "does the reproduction reproduce" checks; the per-package tests
// cover mechanics.
package atomicsmodel_test

import (
	"testing"

	"atomicsmodel"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/workload"
)

func mustRun(t *testing.T, cfg atomicsmodel.WorkloadConfig) *atomicsmodel.WorkloadResult {
	t.Helper()
	if cfg.Warmup == 0 {
		cfg.Warmup = 15 * sim.Microsecond
	}
	if cfg.Duration == 0 {
		cfg.Duration = 150 * sim.Microsecond
	}
	res, err := atomicsmodel.RunWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Claim (abstract): "high and low contention access" behave differently
// — the same primitive at the same thread count is orders of magnitude
// apart between the two settings.
func TestClaimContentionSettingsDiffer(t *testing.T) {
	for _, m := range atomicsmodel.Machines() {
		high := mustRun(t, atomicsmodel.WorkloadConfig{
			Machine: m, Threads: 16, Primitive: atomicsmodel.FAA,
			Mode: atomicsmodel.HighContention,
		})
		low := mustRun(t, atomicsmodel.WorkloadConfig{
			Machine: m, Threads: 16, Primitive: atomicsmodel.FAA,
			Mode: atomicsmodel.LowContention,
		})
		if low.ThroughputMops < 10*high.ThroughputMops {
			t.Errorf("%s: low contention (%.1f Mops) should dwarf high contention (%.1f Mops)",
				m.Name, low.ThroughputMops, high.ThroughputMops)
		}
	}
}

// Claim: the model "captures the behavior of atomics accurately" — on
// every machine, for every RMW primitive, across the sweep, throughput
// predictions land within 10%.
func TestClaimModelAccuracy(t *testing.T) {
	for _, m := range atomicsmodel.Machines() {
		model := atomicsmodel.NewModel(m)
		for _, p := range []atomicsmodel.Primitive{atomicsmodel.CAS, atomicsmodel.FAA, atomicsmodel.SWAP, atomicsmodel.TAS, atomicsmodel.CAS2} {
			for _, n := range []int{1, 4, 16} {
				res := mustRun(t, atomicsmodel.WorkloadConfig{
					Machine: m, Threads: n, Primitive: p,
					Mode:   atomicsmodel.HighContention,
					Warmup: 25 * sim.Microsecond, Duration: 300 * sim.Microsecond,
				})
				cores, err := atomicsmodel.PlaceCompact(m, n)
				if err != nil {
					t.Fatal(err)
				}
				pred := model.PredictHigh(p, cores, 0)
				if res.ThroughputMops == 0 {
					t.Fatalf("%s %v n=%d: no simulated throughput", m.Name, p, n)
				}
				err2 := (pred.ThroughputMops - res.ThroughputMops) / res.ThroughputMops
				if err2 < -0.10 || err2 > 0.10 {
					t.Errorf("%s %v n=%d: model %.2f vs sim %.2f (%.1f%%)",
						m.Name, p, n, pred.ThroughputMops, res.ThroughputMops, err2*100)
				}
			}
		}
	}
}

// Claim: "bouncing of cache lines" is the mechanism — with more than
// one thread, nearly every RMW is a remote cache transfer.
func TestClaimLineBouncingDominates(t *testing.T) {
	res := mustRun(t, atomicsmodel.WorkloadConfig{
		Machine: atomicsmodel.XeonE5(), Threads: 8, Primitive: atomicsmodel.FAA,
		Mode: atomicsmodel.HighContention,
	})
	if res.Coh.Accesses == 0 {
		t.Fatal("no accesses")
	}
	remoteFrac := float64(res.Coh.RemoteXfers) / float64(res.Coh.Accesses)
	if remoteFrac < 0.95 {
		t.Errorf("remote transfer fraction %.3f, want ~1 under contention", remoteFrac)
	}
}

// Claim: FAA sustains its rate under contention while CAS decays — the
// design-decision headline.
func TestClaimFAABeatsCAS(t *testing.T) {
	for _, m := range atomicsmodel.Machines() {
		faa := mustRun(t, atomicsmodel.WorkloadConfig{
			Machine: m, Threads: 16, Primitive: atomicsmodel.FAA,
			Mode: atomicsmodel.HighContention,
		})
		cas := mustRun(t, atomicsmodel.WorkloadConfig{
			Machine: m, Threads: 16, Primitive: atomicsmodel.CAS,
			Mode: atomicsmodel.HighContention,
		})
		if faa.ThroughputMops < 8*cas.ThroughputMops {
			t.Errorf("%s: FAA %.2f vs CAS %.2f Mops; expected ~16x gap at 16 threads",
				m.Name, faa.ThroughputMops, cas.ThroughputMops)
		}
	}
}

// Claim: energy per operation rises with contention.
func TestClaimEnergyRisesWithContention(t *testing.T) {
	m := atomicsmodel.KNL()
	prev := 0.0
	for _, n := range []int{1, 8, 32} {
		res := mustRun(t, atomicsmodel.WorkloadConfig{
			Machine: m, Threads: n, Primitive: atomicsmodel.FAA,
			Mode: atomicsmodel.HighContention,
		})
		if res.Energy.PerOpNJ <= prev {
			t.Fatalf("energy/op at %d threads (%.1f nJ) not above %d-thread value (%.1f nJ)",
				n, res.Energy.PerOpNJ, n/8, prev)
		}
		prev = res.Energy.PerOpNJ
	}
}

// Claim: per-op latency grows ~linearly with the number of contending
// threads (the serialized line).
func TestClaimLatencyLinearInThreads(t *testing.T) {
	m := atomicsmodel.XeonE5()
	lat := map[int]float64{}
	for _, n := range []int{4, 8, 16} {
		res := mustRun(t, atomicsmodel.WorkloadConfig{
			Machine: m, Threads: n, Primitive: atomicsmodel.SWAP,
			Mode: atomicsmodel.HighContention,
		})
		lat[n] = res.Latency.Mean().Nanoseconds()
	}
	// Doubling the population about doubles the wait; compact placement
	// also lengthens transfers as the contender set spreads over the
	// ring, so the ratio runs slightly above 2.
	r1 := lat[8] / lat[4]
	r2 := lat[16] / lat[8]
	for _, r := range []float64{r1, r2} {
		if r < 1.7 || r > 3.0 {
			t.Errorf("doubling threads scaled latency by %.2fx, want ~2-3x (%v)", r, lat)
		}
	}
}

// Claim: calibrating the simple model takes three probes and still
// ranks the primitives and predicts the contention cliff.
func TestClaimSimpleModelUsable(t *testing.T) {
	m := atomicsmodel.KNL()
	model, cal, err := atomicsmodel.CalibrateModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if cal.TLocal >= cal.TSame {
		t.Fatal("calibration ordering broken")
	}
	cores, err := atomicsmodel.PlaceCompact(m, 32)
	if err != nil {
		t.Fatal(err)
	}
	faa := model.PredictHigh(atomicsmodel.FAA, cores, 0)
	cas := model.PredictHigh(atomicsmodel.CAS, cores, 0)
	solo := model.PredictHigh(atomicsmodel.FAA, cores[:1], 0)
	if !(cas.ThroughputMops < faa.ThroughputMops && faa.ThroughputMops < solo.ThroughputMops) {
		t.Fatalf("simple model ordering broken: cas=%.2f faa=%.2f solo=%.2f",
			cas.ThroughputMops, faa.ThroughputMops, solo.ThroughputMops)
	}
}

// Claim: single-op latency is determined by where the line is (the
// low-contention table), in the canonical order.
func TestClaimStateLatencyOrdering(t *testing.T) {
	m := atomicsmodel.XeonE5()
	get := func(st atomicsmodel.LineState) float64 {
		v, err := atomicsmodel.MeasureStateLatency(m, atomicsmodel.FAA, st)
		if err != nil {
			t.Fatal(err)
		}
		return v.Nanoseconds()
	}
	local := get(workload.StateModifiedLocal)
	llc := get(workload.StateLLC)
	same := get(workload.StateRemoteSameSocket)
	cross := get(workload.StateRemoteOtherSocket)
	dram := get(workload.StateMemory)
	// Owned lines are cheapest; on-chip sources (LLC, same-socket
	// cache) beat off-chip-class sources (QPI-crossing, DRAM). LLC vs
	// same-socket cache ordering is parameter-dependent on real parts
	// too, so it is not asserted.
	onChipMax := llc
	if same > onChipMax {
		onChipMax = same
	}
	offChipMin := cross
	if dram < offChipMin {
		offChipMin = dram
	}
	if !(local < llc && local < same && onChipMax < offChipMin) {
		t.Fatalf("ordering broken: local=%.1f llc=%.1f same=%.1f cross=%.1f dram=%.1f",
			local, llc, same, cross, dram)
	}
}

// Claim: experiments are reproducible bit-for-bit (determinism).
func TestClaimDeterministicReproduction(t *testing.T) {
	cfg := atomicsmodel.WorkloadConfig{
		Machine: atomicsmodel.KNL(), Threads: 32, Primitive: atomicsmodel.CAS,
		Mode: atomicsmodel.HighContention, Seed: 7,
		Warmup: 15 * sim.Microsecond, Duration: 100 * sim.Microsecond,
	}
	a, err := atomicsmodel.RunWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := atomicsmodel.RunWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ops != b.Ops || a.Failures != b.Failures || a.Energy.TotalJ != b.Energy.TotalJ {
		t.Fatal("identical configs diverged")
	}
}
