// Package atomicsmodel is a reproduction of "Modeling the Performance
// of Atomic Primitives on Modern Architectures" (Hoseini, Atalar,
// Tsigas; ICPP 2019) as a Go library.
//
// It provides:
//
//   - a deterministic discrete-event simulator of MESI cache coherence
//     on two machine models (a two-socket Intel Xeon E5 and an Intel
//     Xeon Phi KNL), on which the atomic primitives CAS, FAA, SWAP,
//     TAS, Load and Store execute with realistic line-bouncing costs;
//   - the paper's analytical performance model (latency, throughput,
//     CAS success rate, fairness, energy — under high and low
//     contention), in a topology-aware "detailed" variant and the
//     paper's three-constant "simple" variant with calibration;
//   - workload and application benchmarks (counters, Treiber stack,
//     spinlocks) and the full experiment harness that regenerates every
//     table and figure (see DESIGN.md and EXPERIMENTS.md);
//   - native sync/atomic microbenchmarks for qualitative host checks.
//
// This file re-exports the library's primary entry points so that
// downstream code imports a single package:
//
//	m := atomicsmodel.XeonE5()
//	model := atomicsmodel.NewModel(m)
//	cores, _ := atomicsmodel.PlaceCompact(m, 16)
//	pred := model.PredictHigh(atomicsmodel.FAA, cores, 0)
//
//	res, _ := atomicsmodel.RunWorkload(atomicsmodel.WorkloadConfig{
//		Machine: m, Threads: 16, Primitive: atomicsmodel.FAA,
//		Mode: atomicsmodel.HighContention,
//	})
package atomicsmodel

import (
	"atomicsmodel/internal/apps"
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/bottleneck"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/core"
	"atomicsmodel/internal/harness"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/metrics"
	"atomicsmodel/internal/native"
	"atomicsmodel/internal/predict"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/trace"
	"atomicsmodel/internal/workload"
)

// Time is a simulated duration in picoseconds.
type Time = sim.Time

// Common durations.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Machine describes a simulated platform.
type Machine = machine.Machine

// MachineSpec is the declarative, serializable machine description;
// MachineSpec.Build is the single constructor every Machine comes from.
type MachineSpec = machine.Spec

// XeonE5 returns the two-socket Xeon E5 machine description.
func XeonE5() *Machine { return machine.XeonE5() }

// KNL returns the Xeon Phi Knights Landing machine description.
func KNL() *Machine { return machine.KNL() }

// MachineByName resolves a registered machine by name or alias
// (case-insensitive); unknown names produce an error listing every
// registered machine.
func MachineByName(name string) (*Machine, error) { return machine.ByName(name) }

// MachineNames returns the canonical names of all registered machines.
func MachineNames() []string { return machine.Names() }

// ParseMachineSpec decodes a JSON machine spec (strictly: unknown
// fields are errors).
func ParseMachineSpec(data []byte) (*MachineSpec, error) { return machine.ParseSpec(data) }

// LoadMachineFile reads, parses and builds a machine from a JSON spec
// file.
func LoadMachineFile(path string) (*Machine, error) { return machine.LoadSpecFile(path) }

// Machines returns the machines the paper evaluates.
func Machines() []*Machine { return machine.All() }

// Primitive identifies an atomic operation.
type Primitive = atomics.Primitive

// The primitives under study.
const (
	CAS   = atomics.CAS
	FAA   = atomics.FAA
	SWAP  = atomics.SWAP
	TAS   = atomics.TAS
	CAS2  = atomics.CAS2
	Load  = atomics.Load
	Store = atomics.Store
	Fence = atomics.Fence
)

// ParsePrimitive resolves a primitive by its display name.
func ParsePrimitive(name string) (Primitive, error) { return atomics.Parse(name) }

// Model is the paper's cache-line bouncing performance model.
type Model = core.Model

// Prediction is a model output.
type Prediction = core.Prediction

// NewModel returns the topology-aware (detailed) model for m.
func NewModel(m *Machine) *Model { return core.NewDetailed(m) }

// AlgoStep describes one memory access of a concurrent algorithm's
// operation, for Model.PredictAlgorithm (composite predictions).
type AlgoStep = core.AlgoStep

// Line sentinels for AlgoStep.
const (
	// PrivateLine marks a per-thread line (no cross-thread traffic).
	PrivateLine = core.PrivateLine
	// MigratoryLine marks per-element lines that transfer between
	// threads without being a shared serialization point.
	MigratoryLine = core.MigratoryLine
)

// CalibrateModel measures the simple model's three constants with
// probe runs and returns the calibrated model.
func CalibrateModel(m *Machine) (*Model, core.Calibration, error) { return core.Calibrate(m) }

// Workload configuration and execution.
type (
	// WorkloadConfig parameterizes a simulated benchmark run.
	WorkloadConfig = workload.Config
	// WorkloadResult reports a run's measurements.
	WorkloadResult = workload.Result
	// LineState is an initial cache-line state for single-op latency.
	LineState = workload.LineState
)

// Contention modes.
const (
	HighContention = workload.HighContention
	LowContention  = workload.LowContention
	ReadWriteMix   = workload.ReadWriteMix
)

// RunWorkload executes a simulated benchmark.
func RunWorkload(cfg WorkloadConfig) (*WorkloadResult, error) { return workload.Run(cfg) }

// WorkloadSpec is the declarative, serializable workload description —
// the workload-side analog of MachineSpec. Its content digest keys
// simulation cells in the resume cache.
type WorkloadSpec = workload.Spec

// ParseWorkloadSpec decodes and validates a JSON workload spec
// (strictly: unknown fields and trailing garbage are errors).
func ParseWorkloadSpec(data []byte) (*WorkloadSpec, error) { return workload.ParseSpec(data) }

// LoadWorkloadFile reads, parses and validates a workload spec from a
// JSON file.
func LoadWorkloadFile(path string) (*WorkloadSpec, error) { return workload.LoadSpecFile(path) }

// WorkloadSpecByName resolves a registered (embedded) workload spec by
// name, case-insensitively; unknown names produce an error listing
// every registered spec.
func WorkloadSpecByName(name string) (*WorkloadSpec, error) { return workload.SpecByName(name) }

// WorkloadSpecNames returns the names of all registered workload specs.
func WorkloadSpecNames() []string { return workload.SpecNames() }

// RunWorkloadSpec resolves a spec against a machine and executes it.
// Ladder specs must be expanded (WorkloadSpec.Expand) first.
func RunWorkloadSpec(s *WorkloadSpec, m *Machine) (*WorkloadResult, error) {
	return workload.RunSpec(s, m)
}

// WorkloadExperiment wraps workload specs as a harness experiment (the
// "W" suite) so they run with caching, manifests and rendering like
// the paper's own experiments.
func WorkloadExperiment(specs []*WorkloadSpec) *Experiment {
	return harness.WorkloadExperiment(specs)
}

// Bottleneck analysis (utilization rollups over metrics snapshots).
type (
	// MetricsSnapshot is a cell's instrument readings over its measured
	// window (WorkloadResult.Metrics when the run had Metrics enabled).
	MetricsSnapshot = metrics.Snapshot
	// BottleneckReport is the per-cell utilization rollup: busiest
	// directory, line, and link with their busy-fractions of the window.
	BottleneckReport = bottleneck.Report
	// BottleneckVerdict names the resource closest to saturation.
	BottleneckVerdict = bottleneck.Verdict
)

// AnalyzeBottlenecks rolls a metrics snapshot into per-resource
// utilization and a saturation verdict; see BOTTLENECKS.md.
func AnalyzeBottlenecks(s *MetricsSnapshot) (*BottleneckReport, error) {
	return bottleneck.Analyze(s)
}

// FleetExperiment wraps workload specs as a fleet sweep across every
// registered machine with per-cell bottleneck verdicts (the CLIs'
// -fleet mode); threshold <= 0 uses the default knee threshold.
func FleetExperiment(specs []*WorkloadSpec, threshold float64) *Experiment {
	return harness.FleetExperiment(specs, threshold)
}

// MeasureStateLatency measures one primitive on a line staged in the
// given initial state.
func MeasureStateLatency(m *Machine, p Primitive, st LineState) (Time, error) {
	return workload.MeasureStateLatency(m, p, st)
}

// PlaceCompact returns the physical cores of n compactly placed
// threads — the form model predictions consume.
func PlaceCompact(m *Machine, n int) ([]int, error) {
	slots, err := (machine.Compact{}).Place(m, n)
	if err != nil {
		return nil, err
	}
	cores := make([]int, n)
	for i, s := range slots {
		cores[i] = m.CoreOf(s)
	}
	return cores, nil
}

// Application benchmarks (counters, stacks, locks).
type (
	// App is one concurrent algorithm.
	App = apps.App
	// AppConfig parameterizes an application benchmark.
	AppConfig = apps.RunConfig
	// AppResult reports an application benchmark.
	AppResult = apps.RunResult
)

// RunApp executes an application benchmark.
func RunApp(cfg AppConfig) (*AppResult, error) { return apps.Run(cfg) }

// AppSpec is the declarative, serializable concurrent-object
// description — the apps-side analog of WorkloadSpec. It names a
// registered structure (AppStructureNames) plus its knobs, and its
// content digest keys A-suite simulation cells in the resume cache.
type AppSpec = apps.Spec

// ParseAppSpec decodes and validates a JSON app spec (strictly:
// unknown fields and trailing garbage are errors).
func ParseAppSpec(data []byte) (*AppSpec, error) { return apps.ParseSpec(data) }

// LoadAppSpecFile reads, parses and validates an app spec from a JSON
// file.
func LoadAppSpecFile(path string) (*AppSpec, error) { return apps.LoadSpecFile(path) }

// AppSpecByName resolves a registered (embedded) app spec by name,
// case-insensitively; unknown names produce an error listing every
// registered spec.
func AppSpecByName(name string) (*AppSpec, error) { return apps.SpecByName(name) }

// AppSpecNames returns the names of all registered app specs.
func AppSpecNames() []string { return apps.SpecNames() }

// AppStructureNames returns the names of every buildable structure an
// app spec may reference (counters, stacks, queues, locks, deques…).
func AppStructureNames() []string { return apps.StructureNames() }

// RunAppSpec resolves a pinned app spec against a machine and executes
// it. Ladder specs must be expanded (AppSpec.Expand) first.
func RunAppSpec(s *AppSpec, m *Machine) (*AppResult, error) {
	return apps.RunSpec(s, m)
}

// AppExperiment wraps app specs as a harness experiment (the "A"
// suite): each cell runs one structure at one ladder rung and the
// rendered table pairs the simulated throughput with the conflict
// model's prediction and its relative error.
func AppExperiment(specs []*AppSpec) *Experiment {
	return harness.AppExperiment(specs)
}

// Conflict-based throughput prediction for concurrent objects
// (internal/predict): primitive service times composed over an
// operation's line accesses, with contended steps expanded by a retry
// factor.
type (
	// PredictStep is one access of an object's operation.
	PredictStep = predict.Step
	// PredictQuantities are the measured (or assumed) per-structure
	// inputs: retry factor and elimination fraction.
	PredictQuantities = predict.Quantities
)

// MeasuredQuantities extracts the conflict model's inputs from a
// finished app run (attempts per op, eliminations per op).
func MeasuredQuantities(res *AppResult) PredictQuantities { return predict.Measured(res) }

// BlindQuantities returns the a-priori worst-case quantities for n
// threads (retry factor n), for predictions without a measurement.
func BlindQuantities(n int) PredictQuantities { return predict.Blind(n) }

// PredictAppThroughput predicts a pinned app spec's throughput (Mops)
// on a machine from the given quantities.
func PredictAppThroughput(m *Machine, s *AppSpec, q PredictQuantities) (float64, error) {
	return predict.ForSpec(m, s, q)
}

// Experiments (the paper's tables and figures).
type (
	// Experiment regenerates one table or figure.
	Experiment = harness.Experiment
	// ExperimentOptions tunes an experiment run.
	ExperimentOptions = harness.Options
	// ResultTable is a rendered experiment result.
	ResultTable = harness.Table
)

// Experiments returns every registered experiment in display order.
func Experiments() []*Experiment { return harness.All() }

// ExperimentByID returns one experiment ("T1", "F1".."F12", "T2").
func ExperimentByID(id string) (*Experiment, error) { return harness.ByID(id) }

// Native host microbenchmarks.
type (
	// NativeConfig parameterizes a host sync/atomic run.
	NativeConfig = native.Config
	// NativeResult reports a host run.
	NativeResult = native.Result
)

// RunNative executes a microbenchmark on the host CPU.
func RunNative(cfg NativeConfig) (*NativeResult, error) { return native.Run(cfg) }

// Line tracing (watch a cache line bounce).
type (
	// TraceRecorder captures the coherence-level life of one line.
	TraceRecorder = trace.Recorder
	// TraceSummary is a recorded run's bouncing statistics.
	TraceSummary = trace.Summary
	// LineID names a simulated cache line.
	LineID = coherence.LineID
)

// NewTraceRecorder records accesses to one line (cap 0 = unlimited);
// install its Observe method as the coherence system's tracer.
func NewTraceRecorder(line LineID, cap int) *TraceRecorder { return trace.NewRecorder(line, cap) }
