// Command atomicsim regenerates the paper's tables and figures on the
// simulated machines.
//
// Usage:
//
//	atomicsim                     # run every experiment on both machines
//	atomicsim -exp F3             # one experiment
//	atomicsim -machines KNL,EPYC  # restrict/extend the machine list
//	atomicsim -machinefile m.json # add a machine from a JSON spec file
//	atomicsim -workloads high-faa # run registered workload specs (the W suite)
//	atomicsim -workloadfile w.json# run a workload from a JSON spec file
//	atomicsim -apps treiber       # run registered app specs (the A suite)
//	atomicsim -appfile a.json     # run an app from a JSON spec file
//	atomicsim -fleet              # fleet sweep: bottleneck verdicts across all machines
//	atomicsim -fleet -knee 0.8    # lower the knee-detection utilization threshold
//	atomicsim -quick              # trimmed sweeps for a fast look
//	atomicsim -par 4              # cap concurrent simulation cells
//	atomicsim -csv results/       # additionally write one CSV per table
//	atomicsim -list               # list experiment IDs and claims
//	atomicsim -manifest run/      # also write a structured run manifest
//	atomicsim -resume run/        # re-run only missing/failed cells
//	atomicsim -checkmanifest run/ # validate a run directory and exit
//	atomicsim -check              # audit coherence/engine invariants per cell
//	atomicsim -faults jitter=10   # inject deterministic faults (see -faults below)
//	atomicsim -celltimeout 30s    # watchdog: fail cells exceeding the deadline
//	atomicsim -cellretries 2      # retry failed cells before giving up
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"atomicsmodel/internal/apps"
	"atomicsmodel/internal/faults"
	"atomicsmodel/internal/harness"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/runlog"
	"atomicsmodel/internal/workload"
)

func main() {
	var (
		expID   = flag.String("exp", "", "comma-separated experiment IDs to run (default: all)")
		machs   = flag.String("machines", "", "comma-separated registered machine names (default: the paper pair; see -machines list on a bad name)")
		machAlt = flag.String("machine", "", "alias for -machines")
		machFil = flag.String("machinefile", "", "comma-separated JSON machine spec files to run alongside -machines")
		wlNames = flag.String("workloads", "", "comma-separated registered workload spec names to run as the W suite (replaces the default experiment list unless -exp is given)")
		wlFiles = flag.String("workloadfile", "", "comma-separated JSON workload spec files to run alongside -workloads")
		apNames = flag.String("apps", "", "comma-separated registered app spec names to run as the A suite (replaces the default experiment list unless -exp is given)")
		apFiles = flag.String("appfile", "", "comma-separated JSON app spec files to run alongside -apps")
		fleet   = flag.Bool("fleet", false, "fleet sweep: run the selected workloads across every registered machine with per-cell bottleneck verdicts (see BOTTLENECKS.md)")
		knee    = flag.Float64("knee", 0.9, "utilization threshold for fleet knee detection")
		quick   = flag.Bool("quick", false, "trimmed sweeps and shorter simulated durations")
		seed    = flag.Uint64("seed", 42, "base random seed")
		par     = flag.Int("par", runtime.NumCPU(), "max concurrent simulation cells (results are identical for any value)")
		quiet   = flag.Bool("quiet", false, "suppress per-experiment progress on stderr")
		withMet = flag.Bool("metrics", false, "collect per-cell coherence/sim metrics and append breakdown tables")
		csvDir  = flag.String("csv", "", "directory to write per-table CSV files into")
		doPlot  = flag.Bool("plot", false, "render ASCII charts for figure-shaped tables")
		logY    = flag.Bool("logy", false, "use a logarithmic Y axis for plots")
		listIDs = flag.Bool("list", false, "list experiments and exit")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file on exit")

		manifestDir = flag.String("manifest", "", "run directory for a structured manifest (manifest.jsonl + cells.jsonl); truncates a previous run")
		resumeDir   = flag.String("resume", "", "resume a previous -manifest run directory: replay cached cells, re-run only missing or failed ones")
		checkDir    = flag.String("checkmanifest", "", "validate a run directory's manifest and cache, print a summary, and exit")

		check       = flag.Bool("check", false, "audit coherence/engine invariants in every cell; a violation fails the cell with a deterministic report")
		faultSpec   = flag.String("faults", "", "inject deterministic faults: comma-separated seed=N,jitter=PCT,panic=N[@CELL],casfail=N,sleep=DUR@CELL")
		cellTimeout = flag.Duration("celltimeout", 0, "wall-clock watchdog deadline per simulation cell (0 = none)")
		cellRetries = flag.Int("cellretries", 0, "extra attempts for a failed cell before giving up")
	)
	flag.Parse()

	if *listIDs {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	if *checkDir != "" {
		summary, err := runlog.Validate(*checkDir)
		if err != nil {
			fatal(err)
		}
		fmt.Println(summary)
		return
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	opts := harness.Options{
		Quick: *quick, Seed: *seed, Par: *par,
		Check: *check, CellTimeout: *cellTimeout, CellRetries: *cellRetries,
	}
	if *withMet {
		opts.Metrics = &harness.MetricsCollector{}
	}
	if *faultSpec != "" {
		plan, err := faults.Parse(*faultSpec)
		if err != nil {
			fatal(err)
		}
		opts.Faults = plan
	}
	switch {
	case *manifestDir != "" && *resumeDir != "":
		fatal(errors.New("-manifest and -resume are mutually exclusive (resume reuses the run directory)"))
	case *manifestDir != "":
		attachRunDir(&opts, *manifestDir, false)
	case *resumeDir != "":
		attachRunDir(&opts, *resumeDir, true)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "resume: %d cached cells loaded from %s\n", opts.Cache.Loaded(), *resumeDir)
		}
	}
	names := *machs
	if *machAlt != "" {
		if names != "" {
			names += ","
		}
		names += *machAlt
	}
	if names != "" || *machFil != "" {
		ms, err := machine.Select(names, *machFil)
		if err != nil {
			fatal(err)
		}
		opts.Machines = ms
	}

	var wlSpecs []*workload.Spec
	if *wlNames != "" || *wlFiles != "" {
		ws, err := workload.SelectSpecs(*wlNames, *wlFiles)
		if err != nil {
			fatal(err)
		}
		wlSpecs = ws
	}

	var appSpecs []*apps.Spec
	if *apNames != "" || *apFiles != "" {
		as, err := apps.SelectSpecs(*apNames, *apFiles)
		if err != nil {
			fatal(err)
		}
		appSpecs = as
	}

	// -exp selects registered experiments; a workload or app selection
	// appends its suite. With only workloads/apps given, just those
	// suites run; with neither, every registered experiment runs.
	var exps []*harness.Experiment
	if *expID != "" {
		for _, id := range strings.Split(*expID, ",") {
			e, err := harness.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			exps = append(exps, e)
		}
	} else if wlSpecs == nil && appSpecs == nil && !*fleet {
		exps = harness.All()
	}
	if *fleet {
		// A fleet sweep takes the selected workloads, defaulting to the
		// high-faa preset when none are named.
		specs := wlSpecs
		if specs == nil {
			s, err := workload.SpecByName("high-faa")
			if err != nil {
				fatal(err)
			}
			specs = []*workload.Spec{s}
		}
		exps = append(exps, harness.FleetExperiment(specs, *knee))
	} else if wlSpecs != nil {
		exps = append(exps, harness.WorkloadExperiment(wlSpecs))
	}
	if appSpecs != nil {
		exps = append(exps, harness.AppExperiment(appSpecs))
	}

	suiteStart := time.Now()
	var failed []string
	for _, e := range exps {
		fmt.Printf("== %s: %s\n   claim: %s\n\n", e.ID, e.Title, e.Claim)
		expStart := time.Now()
		runOpts := opts
		if !*quiet {
			// Progress goes to stderr so redirected table output stays
			// clean; \r keeps it to one updating line per experiment.
			id := e.ID
			runOpts.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d cells, %s ", id, done, total,
					time.Since(expStart).Round(time.Millisecond))
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		tables, err := harness.RunExperiment(e, runOpts)
		if err != nil {
			// A failed experiment no longer aborts the run: the failure is
			// recorded (stderr + manifest, when attached), the remaining
			// experiments still run, and the exit code reports it.
			failed = append(failed, e.ID)
			fmt.Printf("   FAILED: %v\n\n", err)
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.ID, err)
			continue
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "%s done in %s\n", e.ID, time.Since(expStart).Round(time.Millisecond))
		}
		for i, t := range tables {
			if err := t.Render(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
			if *doPlot {
				if c, ok := harness.ChartFromTable(t); ok {
					c.LogY = *logY
					if err := c.Render(os.Stdout); err != nil {
						fatal(err)
					}
					fmt.Println()
				}
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, e.ID, i, t); err != nil {
					fatal(err)
				}
			}
		}
	}
	if !*quiet && len(exps) > 1 {
		fmt.Fprintf(os.Stderr, "suite done: %d experiments in %s\n",
			len(exps), time.Since(suiteStart).Round(time.Millisecond))
	}

	// Metrics breakdown tables render after the result tables so the
	// result output stays byte-identical to a metrics-off run's prefix.
	if opts.Metrics != nil {
		for i, t := range opts.Metrics.Tables() {
			if err := t.Render(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
			if *csvDir != "" {
				if err := writeCSV(*csvDir, "metrics", i, t); err != nil {
					fatal(err)
				}
			}
		}
	}

	if opts.Cache != nil {
		if err := opts.Cache.Close(); err != nil {
			fatal(err)
		}
	}
	if opts.Manifest != nil {
		if err := opts.Manifest.Close(); err != nil {
			fatal(err)
		}
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}

	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "atomicsim: %d experiment(s) failed: %s\n",
			len(failed), strings.Join(failed, ","))
		os.Exit(1)
	}
}

// attachRunDir opens a run directory's manifest and cell cache on opts.
// resume=false starts a fresh run (truncating a previous one); true
// appends to the manifest and keeps the cache so completed cells replay.
func attachRunDir(opts *harness.Options, dir string, resume bool) {
	open := runlog.Create
	if resume {
		open = runlog.Append
	}
	w, err := open(dir)
	if err != nil {
		fatal(err)
	}
	c, err := runlog.OpenCache(dir)
	if err != nil {
		fatal(err)
	}
	// Quarantined cache lines are dropped, not fatal — say what was
	// dropped so the recomputation is explained, not mysterious.
	for _, q := range c.Quarantined() {
		if q.Key != "" {
			fmt.Fprintf(os.Stderr, "atomicsim: quarantined cells.jsonl line %d (key %q): %s; cell will be recomputed\n", q.Line, q.Key, q.Reason)
		} else {
			fmt.Fprintf(os.Stderr, "atomicsim: quarantined cells.jsonl line %d: %s; cell will be recomputed\n", q.Line, q.Reason)
		}
	}
	opts.Manifest, opts.Cache = w, c
}

func writeCSV(dir, id string, idx int, t *harness.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := fmt.Sprintf("%s_%d.csv", id, idx)
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.CSV(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atomicsim:", err)
	os.Exit(1)
}
