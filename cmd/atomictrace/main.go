// Command atomictrace records the coherence-level life of the hot cache
// line during a contended run and dumps it as CSV — one row per access
// with its timestamp, core, transaction kind, data source, hop count
// and latency — plus a bouncing summary and per-core ownership shares
// on stderr. Feed the CSV to any plotting tool to watch the line move,
// or export a Chrome trace_event timeline with -chrome and open it in
// chrome://tracing or https://ui.perfetto.dev: one row per core, one
// slice per access, and an "owner" counter track stepping through the
// ownership transfers.
//
// Usage:
//
//	atomictrace -machine XeonE5 -primitive FAA -threads 8 -ops 200
//	atomictrace -machine KNL -primitive CAS -threads 16 -ops 500 > trace.csv
//	atomictrace -arbiter locality -threads 16          # watch a monopoly form
//	atomictrace -threads 8 -chrome trace.json          # timeline for Perfetto
//	atomictrace -machines XeonE5,KNL -threads 8        # several machines, one CSV
//	atomictrace -machinefile spec.json -threads 8      # trace a custom spec
//	atomictrace -apps treiber -ops 200                 # trace an app's hot line
//	atomictrace -appfile spec.json -chrome t.json      # app spec file, timeline
//
// With -apps/-appfile the trace watches the selected app spec's hot
// line (the structure's primary serialization point — a stack's top
// pointer, a lock word) while the whole structure runs: each thread
// performs -ops operations of the structure, and the CSV shows how the
// object's algorithm, not a bare primitive, moves the line. A spec
// with a thread ladder traces its first rung; -threads overrides.
//
// With more than one machine selected, each machine's CSV section is
// preceded by a "# machine <name>" comment line, and -chrome writes one
// file per machine (the machine name is inserted before the extension).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"atomicsmodel/internal/apps"
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/trace"
)

func main() {
	var (
		machNames = flag.String("machines", "", "comma-separated registered machine names (default: XeonE5)")
		machAlt   = flag.String("machine", "", "alias for -machines")
		machFiles = flag.String("machinefile", "", "comma-separated JSON machine spec files to trace alongside -machines")
		primName  = flag.String("primitive", "FAA", "primitive to trace")
		threads   = flag.Int("threads", 8, "number of contending threads")
		ops       = flag.Int("ops", 200, "operations per thread to trace")
		arbName   = flag.String("arbiter", "fifo", "line arbitration: fifo, random, locality")
		chrome    = flag.String("chrome", "", "also write a Chrome trace_event JSON timeline to this file (view in chrome://tracing or Perfetto)")
		apNames   = flag.String("apps", "", "registered app spec name: trace the structure's hot line instead of a bare primitive")
		apFiles   = flag.String("appfile", "", "JSON app spec file, alternative to -apps")
	)
	flag.Parse()

	names := *machNames
	if *machAlt != "" {
		if names != "" {
			names += ","
		}
		names += *machAlt
	}
	if names == "" && *machFiles == "" {
		names = "XeonE5"
	}
	machines, err := machine.Select(names, *machFiles)
	if err != nil {
		fatal(err)
	}

	if *apNames != "" || *apFiles != "" {
		specs, err := apps.SelectSpecs(*apNames, *apFiles)
		if err != nil {
			fatal(err)
		}
		if len(specs) != 1 {
			fatal(fmt.Errorf("tracing wants exactly one app spec, got %d", len(specs)))
		}
		// A ladder spec traces its first rung; an explicit -threads
		// overrides the rung (the trace is exploratory, not cached, so
		// the digest change is harmless).
		pt := specs[0].Expand()[0]
		threadsSet := false
		flag.Visit(func(f *flag.Flag) { threadsSet = threadsSet || f.Name == "threads" })
		if threadsSet {
			pt = pt.Clone()
			pt.Threads = *threads
		}
		for _, m := range machines {
			chromeFile := *chrome
			if chromeFile != "" && len(machines) > 1 {
				ext := filepath.Ext(chromeFile)
				chromeFile = chromeFile[:len(chromeFile)-len(ext)] + "." + m.Name + ext
			}
			if len(machines) > 1 {
				fmt.Printf("# machine %s\n", m.Name)
			}
			traceApp(m, pt, *ops, chromeFile)
		}
		return
	}

	p, err := atomics.Parse(*primName)
	if err != nil {
		fatal(err)
	}
	for _, m := range machines {
		chromeFile := *chrome
		if chromeFile != "" && len(machines) > 1 {
			ext := filepath.Ext(chromeFile)
			chromeFile = chromeFile[:len(chromeFile)-len(ext)] + "." + m.Name + ext
		}
		if len(machines) > 1 {
			fmt.Printf("# machine %s\n", m.Name)
		}
		traceMachine(m, p, *threads, *ops, *arbName, chromeFile)
	}
}

// traceApp runs an app spec's structure with the recorder on its hot
// line: the spec's own placement, arbiter and seed apply (the -arbiter
// flag is the primitive path's knob), and each thread performs ops
// operations of the structure.
func traceApp(m *machine.Machine, sp *apps.Spec, ops int, chrome string) {
	cfg, err := sp.RunConfig(m)
	if err != nil {
		fatal(err)
	}
	hot, err := sp.HotLine()
	if err != nil {
		fatal(err)
	}
	slots, err := cfg.Placement.Place(m, cfg.Threads)
	if err != nil {
		fatal(err)
	}
	eng := sim.NewEngine()
	mem, err := atomics.NewMemory(eng, m, cfg.Arbiter)
	if err != nil {
		fatal(err)
	}
	app := cfg.Build(eng, mem)
	// Flush structure seeding (pre-pushed elements, initial words)
	// before arming the tracer: the trace starts at a settled object.
	eng.Drain()
	rec := trace.NewRecorder(hot, 0)
	mem.System().SetTracer(rec.Observe)

	root := sim.NewRNG(cfg.Seed)
	for i := 0; i < cfg.Threads; i++ {
		th := &apps.Thread{ID: i, Core: m.CoreOf(slots[i]), RNG: root.Split()}
		var step func(remaining int)
		step = func(remaining int) {
			if remaining == 0 {
				return
			}
			app.Step(th, func() { step(remaining - 1) })
		}
		left := ops
		eng.Schedule(th.RNG.Duration(10*sim.Nanosecond), func() { step(left) })
	}
	eng.Drain()
	dumpTrace(rec, chrome)
}

// traceMachine runs one contended trace on m and writes its CSV,
// summary, and optional Chrome timeline; atomictrace repeats it per
// selected machine.
func traceMachine(m *machine.Machine, p atomics.Primitive, threads, ops int, arbName, chrome string) {
	var arb coherence.Arbiter
	switch arbName {
	case "fifo":
		arb = coherence.FIFOArbiter{}
	case "random":
		arb = coherence.NewRandomArbiter(42)
	case "locality":
		arb = &coherence.LocalityArbiter{}
	default:
		fatal(fmt.Errorf("unknown arbiter %q", arbName))
	}
	slots, err := (machine.Compact{}).Place(m, threads)
	if err != nil {
		fatal(err)
	}

	eng := sim.NewEngine()
	mem, err := atomics.NewMemory(eng, m, arb)
	if err != nil {
		fatal(err)
	}

	const hot coherence.LineID = 1
	rec := trace.NewRecorder(hot, 0)
	mem.System().SetTracer(rec.Observe)

	rng := sim.NewRNG(42)
	for i := 0; i < threads; i++ {
		core := m.CoreOf(slots[i])
		var issue func(remaining int)
		issue = func(remaining int) {
			if remaining == 0 {
				return
			}
			mem.Do(p, core, hot, 1, 2, func(atomics.Result) { issue(remaining - 1) })
		}
		left := ops
		eng.Schedule(rng.Duration(10*sim.Nanosecond), func() { issue(left) })
	}
	eng.Drain()
	dumpTrace(rec, chrome)
}

// dumpTrace writes the recorder's CSV to stdout, the optional Chrome
// timeline, and the bouncing summary to stderr.
func dumpTrace(rec *trace.Recorder, chrome string) {
	if err := rec.WriteCSV(os.Stdout); err != nil {
		fatal(err)
	}

	if chrome != "" {
		f, err := os.Create(chrome)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (open in chrome://tracing or https://ui.perfetto.dev)\n", chrome)
	}

	s := rec.Summarize()
	fmt.Fprintf(os.Stderr, "summary: %d accesses, %d RMWs, %d transfers, mean run %.2f (max %d), mean hops %.1f, cross-socket %.0f%%, mean gap %.1fns\n",
		s.Accesses, s.RMWs, s.Transfers, s.MeanRun, s.MaxRun, s.MeanHops, s.CrossFraction*100, s.MeanGap.Nanoseconds())
	fmt.Fprintf(os.Stderr, "ownership shares:")
	for i, sh := range rec.OwnershipShares() {
		if i == 8 {
			fmt.Fprintf(os.Stderr, " …")
			break
		}
		fmt.Fprintf(os.Stderr, " core%d=%.0f%%", sh.Core, sh.Share*100)
	}
	fmt.Fprintln(os.Stderr)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atomictrace:", err)
	os.Exit(1)
}
