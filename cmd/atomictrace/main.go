// Command atomictrace records the coherence-level life of the hot cache
// line during a contended run and dumps it as CSV — one row per access
// with its timestamp, core, transaction kind, data source, hop count
// and latency — plus a bouncing summary and per-core ownership shares
// on stderr. Feed the CSV to any plotting tool to watch the line move,
// or export a Chrome trace_event timeline with -chrome and open it in
// chrome://tracing or https://ui.perfetto.dev: one row per core, one
// slice per access, and an "owner" counter track stepping through the
// ownership transfers.
//
// Usage:
//
//	atomictrace -machine XeonE5 -primitive FAA -threads 8 -ops 200
//	atomictrace -machine KNL -primitive CAS -threads 16 -ops 500 > trace.csv
//	atomictrace -arbiter locality -threads 16          # watch a monopoly form
//	atomictrace -threads 8 -chrome trace.json          # timeline for Perfetto
//	atomictrace -machines XeonE5,KNL -threads 8        # several machines, one CSV
//	atomictrace -machinefile spec.json -threads 8      # trace a custom spec
//
// With more than one machine selected, each machine's CSV section is
// preceded by a "# machine <name>" comment line, and -chrome writes one
// file per machine (the machine name is inserted before the extension).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/trace"
)

func main() {
	var (
		machNames = flag.String("machines", "", "comma-separated registered machine names (default: XeonE5)")
		machAlt   = flag.String("machine", "", "alias for -machines")
		machFiles = flag.String("machinefile", "", "comma-separated JSON machine spec files to trace alongside -machines")
		primName  = flag.String("primitive", "FAA", "primitive to trace")
		threads   = flag.Int("threads", 8, "number of contending threads")
		ops       = flag.Int("ops", 200, "operations per thread to trace")
		arbName   = flag.String("arbiter", "fifo", "line arbitration: fifo, random, locality")
		chrome    = flag.String("chrome", "", "also write a Chrome trace_event JSON timeline to this file (view in chrome://tracing or Perfetto)")
	)
	flag.Parse()

	names := *machNames
	if *machAlt != "" {
		if names != "" {
			names += ","
		}
		names += *machAlt
	}
	if names == "" && *machFiles == "" {
		names = "XeonE5"
	}
	machines, err := machine.Select(names, *machFiles)
	if err != nil {
		fatal(err)
	}
	p, err := atomics.Parse(*primName)
	if err != nil {
		fatal(err)
	}
	for _, m := range machines {
		chromeFile := *chrome
		if chromeFile != "" && len(machines) > 1 {
			ext := filepath.Ext(chromeFile)
			chromeFile = chromeFile[:len(chromeFile)-len(ext)] + "." + m.Name + ext
		}
		if len(machines) > 1 {
			fmt.Printf("# machine %s\n", m.Name)
		}
		traceMachine(m, p, *threads, *ops, *arbName, chromeFile)
	}
}

// traceMachine runs one contended trace on m and writes its CSV,
// summary, and optional Chrome timeline; atomictrace repeats it per
// selected machine.
func traceMachine(m *machine.Machine, p atomics.Primitive, threads, ops int, arbName, chrome string) {
	var arb coherence.Arbiter
	switch arbName {
	case "fifo":
		arb = coherence.FIFOArbiter{}
	case "random":
		arb = coherence.NewRandomArbiter(42)
	case "locality":
		arb = &coherence.LocalityArbiter{}
	default:
		fatal(fmt.Errorf("unknown arbiter %q", arbName))
	}
	slots, err := (machine.Compact{}).Place(m, threads)
	if err != nil {
		fatal(err)
	}

	eng := sim.NewEngine()
	mem, err := atomics.NewMemory(eng, m, arb)
	if err != nil {
		fatal(err)
	}

	const hot coherence.LineID = 1
	rec := trace.NewRecorder(hot, 0)
	mem.System().SetTracer(rec.Observe)

	rng := sim.NewRNG(42)
	for i := 0; i < threads; i++ {
		core := m.CoreOf(slots[i])
		var issue func(remaining int)
		issue = func(remaining int) {
			if remaining == 0 {
				return
			}
			mem.Do(p, core, hot, 1, 2, func(atomics.Result) { issue(remaining - 1) })
		}
		left := ops
		eng.Schedule(rng.Duration(10*sim.Nanosecond), func() { issue(left) })
	}
	eng.Drain()

	if err := rec.WriteCSV(os.Stdout); err != nil {
		fatal(err)
	}

	if chrome != "" {
		f, err := os.Create(chrome)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (open in chrome://tracing or https://ui.perfetto.dev)\n", chrome)
	}

	s := rec.Summarize()
	fmt.Fprintf(os.Stderr, "summary: %d accesses, %d RMWs, %d transfers, mean run %.2f (max %d), mean hops %.1f, cross-socket %.0f%%, mean gap %.1fns\n",
		s.Accesses, s.RMWs, s.Transfers, s.MeanRun, s.MaxRun, s.MeanHops, s.CrossFraction*100, s.MeanGap.Nanoseconds())
	fmt.Fprintf(os.Stderr, "ownership shares:")
	for i, sh := range rec.OwnershipShares() {
		if i == 8 {
			fmt.Fprintf(os.Stderr, " …")
			break
		}
		fmt.Fprintf(os.Stderr, " core%d=%.0f%%", sh.Core, sh.Share*100)
	}
	fmt.Fprintln(os.Stderr)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atomictrace:", err)
	os.Exit(1)
}
