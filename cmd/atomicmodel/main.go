// Command atomicmodel queries the paper's performance model directly:
// given a machine, primitive, thread count/placement and local work, it
// prints the predicted service time, throughput, latency, CAS success
// rate, fairness and energy — optionally next to a simulator run.
//
// Usage:
//
//	atomicmodel -machine XeonE5 -primitive FAA -threads 16
//	atomicmodel -machine KNL -primitive CAS -threads 64 -compare
//	atomicmodel -machine XeonE5 -primitive FAA -threads 8 -placement scatter -work 200ns
//	atomicmodel -machines XeonE5,EPYC -primitive FAA -threads 16   # query several machines
//	atomicmodel -machinefile spec.json -primitive CAS -threads 8   # query a custom spec
//
// With -apps/-appfile it answers for whole concurrent objects instead
// of single primitives, via the conflict-based throughput model
// (internal/predict): each step of the object's hot path is costed at
// the primitive service times, and contended steps are multiplied by a
// retry factor. Without -compare the retry factor is the blind
// worst-case (one failed attempt per rival); with -compare the
// simulator runs each point and the model re-predicts from the
// measured retry factor, reporting both errors:
//
//	atomicmodel -apps treiber,ticket-lock          # blind predictions
//	atomicmodel -appfile spec.json -compare        # prediction vs simulation
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"atomicsmodel/internal/apps"
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/core"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/predict"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/workload"
)

func main() {
	var (
		machNames = flag.String("machines", "", "comma-separated registered machine names (default: XeonE5)")
		machAlt   = flag.String("machine", "", "alias for -machines")
		machFiles = flag.String("machinefile", "", "comma-separated JSON machine spec files to query alongside -machines")
		primName  = flag.String("primitive", "FAA", "primitive: CAS, FAA, SWAP, TAS, Load, Store")
		threads   = flag.Int("threads", 8, "number of threads")
		placeName = flag.String("placement", "compact", "placement: compact, scatter, smt-first, socket-0")
		workStr   = flag.String("work", "0s", "local work between ops (Go duration, e.g. 200ns)")
		compare   = flag.Bool("compare", false, "also run the simulator and report error")
		lowMode   = flag.Bool("low", false, "predict the low-contention (private lines) setting")
		apNames   = flag.String("apps", "", "comma-separated registered app spec names: predict object throughput via the conflict model instead of querying a primitive")
		apFiles   = flag.String("appfile", "", "comma-separated JSON app spec files, alongside -apps")
	)
	flag.Parse()

	names := *machNames
	if *machAlt != "" {
		if names != "" {
			names += ","
		}
		names += *machAlt
	}
	if names == "" && *machFiles == "" {
		names = "XeonE5"
	}
	machines, err := machine.Select(names, *machFiles)
	if err != nil {
		fatal(err)
	}

	if *apNames != "" || *apFiles != "" {
		specs, err := apps.SelectSpecs(*apNames, *apFiles)
		if err != nil {
			fatal(err)
		}
		for i, m := range machines {
			if i > 0 {
				fmt.Println()
			}
			queryApps(m, specs, *compare)
		}
		return
	}

	p, err := atomics.Parse(*primName)
	if err != nil {
		fatal(err)
	}
	pl, err := machine.PlacementByName(*placeName)
	if err != nil {
		fatal(err)
	}
	workDur, err := time.ParseDuration(*workStr)
	if err != nil {
		fatal(fmt.Errorf("bad -work: %w", err))
	}
	work := sim.Time(workDur.Nanoseconds()) * sim.Nanosecond

	for i, m := range machines {
		if i > 0 {
			fmt.Println()
		}
		query(m, p, pl, work, workDur, *threads, *compare, *lowMode)
	}
}

// query prints the model's answer (and optionally the simulator's) for
// one machine; atomicmodel repeats it per selected machine.
func query(m *machine.Machine, p atomics.Primitive, pl machine.Placement, work sim.Time, workDur time.Duration, threads int, compare, lowMode bool) {
	slots, err := pl.Place(m, threads)
	if err != nil {
		fatal(err)
	}
	cores := make([]int, threads)
	for i, s := range slots {
		cores[i] = m.CoreOf(s)
	}

	det := core.NewDetailed(m)
	simple, cal, err := core.Calibrate(m)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("machine:    %s\n", m)
	fmt.Printf("primitive:  %s, threads: %d, placement: %s, work: %v\n", p, threads, pl.Name(), workDur)
	fmt.Printf("calibrated: %s\n\n", cal)

	var pd, ps core.Prediction
	if lowMode {
		pd = det.PredictLow(p, threads, work)
		ps = simple.PredictLow(p, threads, work)
	} else {
		pd = det.PredictHigh(p, cores, work)
		ps = simple.PredictHigh(p, cores, work)
	}
	printPred("detailed model", pd)
	printPred("simple model", ps)

	if compare {
		mode := workload.HighContention
		if lowMode {
			mode = workload.LowContention
		}
		res, err := workload.Run(workload.Config{
			Machine: m, Threads: threads, Primitive: p, Mode: mode,
			Placement: pl, LocalWork: work,
			Warmup: 25 * sim.Microsecond, Duration: 400 * sim.Microsecond, Seed: 42,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("simulator:\n")
		fmt.Printf("  throughput:   %8.2f Mops (detailed model error %+.1f%%)\n",
			res.ThroughputMops, 100*(pd.ThroughputMops-res.ThroughputMops)/res.ThroughputMops)
		fmt.Printf("  mean latency: %8.1f ns\n", res.Latency.Mean().Nanoseconds())
		fmt.Printf("  success rate: %8.3f\n", res.SuccessRate())
		fmt.Printf("  Jain index:   %8.3f\n", res.Jain)
		fmt.Printf("  energy/op:    %8.1f nJ\n", res.Energy.PerOpNJ)
	}
}

func printPred(name string, p core.Prediction) {
	fmt.Printf("%s:\n", name)
	fmt.Printf("  service time: %8.1f ns\n", p.ServiceTime.Nanoseconds())
	fmt.Printf("  throughput:   %8.2f Mops (attempts %.2f Mops)\n", p.ThroughputMops, p.AttemptsMops)
	fmt.Printf("  mean latency: %8.1f ns\n", p.AttemptLatency.Nanoseconds())
	fmt.Printf("  success rate: %8.3f\n", p.SuccessRate)
	fmt.Printf("  Jain index:   %8.3f\n", p.Jain)
	fmt.Printf("  energy/op:    %8.1f nJ\n\n", p.EnergyPerOpNJ)
}

// queryApps prints conflict-model throughput predictions for app specs
// on one machine. Blind predictions charge every contended step a
// worst-case retry factor of n (each attempt loses to every rival
// once); -compare replaces it with the simulator's measured
// attempts-per-op and reports both errors against the simulated rate.
func queryApps(m *machine.Machine, specs []*apps.Spec, compare bool) {
	fmt.Printf("machine: %s\n", m)
	for _, s := range specs {
		points := s.Expand()
		fmt.Printf("\napp %s (%s):\n", s.Label(), s.Defaulted().Structure)
		for _, pt := range points {
			if pt.Threads > m.NumHWThreads() {
				fmt.Printf("  %3d threads: skipped (machine has %d hardware threads)\n",
					pt.Threads, m.NumHWThreads())
				continue
			}
			if err := pt.CheckMachine(m); err != nil {
				fmt.Printf("  %3d threads: skipped (%v)\n", pt.Threads, err)
				continue
			}
			blind, err := predict.ForSpec(m, pt, predict.Blind(pt.Threads))
			if err != nil {
				fatal(err)
			}
			if !compare {
				fmt.Printf("  %3d threads: %8.2f Mops (blind retry factor %d)\n",
					pt.Threads, blind, pt.Threads)
				continue
			}
			res, err := apps.RunSpec(pt, m)
			if err != nil {
				fatal(err)
			}
			q := predict.Measured(res)
			measured, err := predict.ForSpec(m, pt, q)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %3d threads: sim %8.2f Mops | model %8.2f Mops (%+.1f%% @ measured retry %.2f) | blind %8.2f Mops (%+.1f%%)\n",
				pt.Threads, res.ThroughputMops,
				measured, 100*(measured-res.ThroughputMops)/res.ThroughputMops, q.RetryFactor,
				blind, 100*(blind-res.ThroughputMops)/res.ThroughputMops)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atomicmodel:", err)
	os.Exit(1)
}
