// Command atomicreport runs the experiment suite and writes a single
// self-contained Markdown report — tables, ASCII charts for every
// figure-shaped result, and the experiment claims — suitable for
// dropping into a results directory or pasting into an issue.
//
// Usage:
//
//	atomicreport -o report.md            # full sweeps, both machines
//	atomicreport -quick -o report.md     # CI-speed
//	atomicreport -exp F3,F7 -o part.md   # a subset
//	atomicreport -machines XeonE5,EPYC   # pick registered machines
//	atomicreport -machinefile spec.json  # add machines from spec files
//	atomicreport -workloads high-faa     # report on registered workload specs
//	atomicreport -workloadfile w.json    # report on a workload spec file
//	atomicreport -apps treiber           # report on registered app specs
//	atomicreport -appfile a.json         # report on an app spec file
//	atomicreport -fleet -quick -o f.md   # cross-architecture bottleneck report
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"atomicsmodel/internal/apps"
	"atomicsmodel/internal/harness"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/runlog"
	"atomicsmodel/internal/workload"
)

func main() {
	var (
		out     = flag.String("o", "report.md", "output Markdown file ('-' for stdout)")
		quick   = flag.Bool("quick", false, "trimmed sweeps")
		seed    = flag.Uint64("seed", 42, "base seed")
		par     = flag.Int("par", runtime.NumCPU(), "max concurrent simulation cells (results are identical for any value)")
		expIDs  = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		withMet = flag.Bool("metrics", false, "collect per-cell coherence/sim metrics and append a breakdown section")
		check   = flag.Bool("check", false, "audit coherence/engine invariants in every cell; a violation fails the cell with a deterministic report")
		machs   = flag.String("machines", "", "comma-separated registered machine names (default: the paper pair)")
		machAlt = flag.String("machine", "", "alias for -machines")
		machFil = flag.String("machinefile", "", "comma-separated JSON machine spec files to run alongside -machines")
		wlNames = flag.String("workloads", "", "comma-separated registered workload spec names to run as the W suite (replaces the default experiment list unless -exp is given)")
		wlFiles = flag.String("workloadfile", "", "comma-separated JSON workload spec files to run alongside -workloads")
		apNames = flag.String("apps", "", "comma-separated registered app spec names to run as the A suite (replaces the default experiment list unless -exp is given)")
		apFiles = flag.String("appfile", "", "comma-separated JSON app spec files to run alongside -apps")
		fleet   = flag.Bool("fleet", false, "fleet sweep: run the selected workloads across every registered machine with per-cell bottleneck verdicts (see BOTTLENECKS.md)")
		knee    = flag.Float64("knee", 0.9, "utilization threshold for fleet knee detection")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file on exit")

		manifestDir = flag.String("manifest", "", "run directory for a structured manifest (manifest.jsonl + cells.jsonl); truncates a previous run")
		resumeDir   = flag.String("resume", "", "resume a previous -manifest run directory: replay cached cells, re-run only missing or failed ones")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	opts := harness.Options{Quick: *quick, Seed: *seed, Par: *par, Check: *check}
	if *withMet {
		opts.Metrics = &harness.MetricsCollector{}
	}
	switch {
	case *manifestDir != "" && *resumeDir != "":
		fatal(errors.New("-manifest and -resume are mutually exclusive (resume reuses the run directory)"))
	case *manifestDir != "" || *resumeDir != "":
		dir, open := *manifestDir, runlog.Create
		if *resumeDir != "" {
			dir, open = *resumeDir, runlog.Append
		}
		w, err := open(dir)
		if err != nil {
			fatal(err)
		}
		c, err := runlog.OpenCache(dir)
		if err != nil {
			fatal(err)
		}
		opts.Manifest, opts.Cache = w, c
	}
	names := *machs
	if *machAlt != "" {
		if names != "" {
			names += ","
		}
		names += *machAlt
	}
	if names != "" || *machFil != "" {
		ms, err := machine.Select(names, *machFil)
		if err != nil {
			fatal(err)
		}
		opts.Machines = ms
	}
	var wlSpecs []*workload.Spec
	if *wlNames != "" || *wlFiles != "" {
		ws, err := workload.SelectSpecs(*wlNames, *wlFiles)
		if err != nil {
			fatal(err)
		}
		wlSpecs = ws
	}
	var appSpecs []*apps.Spec
	if *apNames != "" || *apFiles != "" {
		as, err := apps.SelectSpecs(*apNames, *apFiles)
		if err != nil {
			fatal(err)
		}
		appSpecs = as
	}

	// -exp selects registered experiments; a workload or app selection
	// appends its suite. With only workloads/apps given, just those
	// suites run; with neither, every registered experiment runs.
	var exps []*harness.Experiment
	if *expIDs != "" {
		for _, id := range strings.Split(*expIDs, ",") {
			e, err := harness.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			exps = append(exps, e)
		}
	} else if wlSpecs == nil && appSpecs == nil && !*fleet {
		exps = harness.All()
	}
	if *fleet {
		// A fleet sweep takes the selected workloads, defaulting to the
		// high-faa preset when none are named.
		specs := wlSpecs
		if specs == nil {
			s, err := workload.SpecByName("high-faa")
			if err != nil {
				fatal(err)
			}
			specs = []*workload.Spec{s}
		}
		exps = append(exps, harness.FleetExperiment(specs, *knee))
	} else if wlSpecs != nil {
		exps = append(exps, harness.WorkloadExperiment(wlSpecs))
	}
	if appSpecs != nil {
		exps = append(exps, harness.AppExperiment(appSpecs))
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	fmt.Fprintf(w, "# atomicsmodel experiment report\n\n")
	fmt.Fprintf(w, "Generated by `atomicreport` (seed %d, quick=%v).\n\n", *seed, *quick)
	fmt.Fprintf(w, "Reproduction of *Modeling the Performance of Atomic Primitives on Modern Architectures* (ICPP 2019); see DESIGN.md for scope and substitutions.\n\n")

	var failed []string
	for _, e := range exps {
		fmt.Fprintf(w, "## %s — %s\n\n*Claim:* %s\n\n", e.ID, e.Title, e.Claim)
		tables, err := harness.RunExperiment(e, opts)
		if err != nil {
			// Keep going: the failure lands in the report (and manifest,
			// when attached) and the exit code reports it at the end.
			failed = append(failed, e.ID)
			fmt.Fprintf(w, "**FAILED:** %v\n\n", err)
			fmt.Fprintf(os.Stderr, "atomicreport: %s: %v\n", e.ID, err)
			continue
		}
		for _, t := range tables {
			fmt.Fprintf(w, "```\n")
			if err := t.Render(w); err != nil {
				fatal(err)
			}
			if c, ok := harness.ChartFromTable(t); ok {
				fmt.Fprintln(w)
				if err := c.Render(w); err != nil {
					fatal(err)
				}
			}
			fmt.Fprintf(w, "```\n\n")
		}
	}
	// The metrics section appends after every experiment so the report
	// body is unchanged relative to a metrics-off run of the same suite.
	if opts.Metrics != nil {
		fmt.Fprintf(w, "## Cell metrics\n\n")
		fmt.Fprintf(w, "Per-cell coherence and simulator counters over each cell's measured window; see `internal/metrics` for the naming scheme and ARCHITECTURE.md for how they are collected.\n\n")
		for _, t := range opts.Metrics.Tables() {
			fmt.Fprintf(w, "```\n")
			if err := t.Render(w); err != nil {
				fatal(err)
			}
			fmt.Fprintf(w, "```\n\n")
		}
	}
	if *out != "-" {
		fmt.Printf("wrote %s (%d experiments)\n", *out, len(exps))
	}

	if opts.Cache != nil {
		if err := opts.Cache.Close(); err != nil {
			fatal(err)
		}
	}
	if opts.Manifest != nil {
		if err := opts.Manifest.Close(); err != nil {
			fatal(err)
		}
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}

	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "atomicreport: %d experiment(s) failed: %s\n",
			len(failed), strings.Join(failed, ","))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atomicreport:", err)
	os.Exit(1)
}
