package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCrashRecoveryByteIdentical is the daemon's crash drill: a child
// atomicd with the crash=N fault armed hard-exits mid-job (os.Exit —
// no drain, no flush, SIGKILL semantics at a deterministic cell
// count), a clean child restarts on the same directory, and the
// recovered job's result must be byte-identical to a run that never
// crashed. It exercises the full stack end to end: journal replay,
// cell-cache resume, and deterministic rendering.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives child processes")
	}
	bin := buildDaemon(t)
	spec := `{"machines":["XeonE5"],"workloads":["high-faa"],"quick":true}`

	// Reference: a clean daemon in a fresh directory.
	cleanDir := t.TempDir()
	clean := startDaemon(t, bin, cleanDir)
	id, want := runJob(t, clean.addr, spec)
	clean.terminate(t)

	// Crash drill: a daemon armed to die after 3 completed cells.
	crashDir := t.TempDir()
	crashed := startDaemon(t, bin, crashDir, "-faults", "crash=3")
	resp, err := http.Post("http://"+crashed.addr+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit to crashing daemon = %d", resp.StatusCode)
	}
	if err := crashed.cmd.Wait(); err == nil {
		t.Fatal("armed daemon exited 0; the crash hook never fired")
	}
	if out, err := exec.Command(bin, "-checkjournal", crashDir).Output(); err != nil {
		t.Fatalf("checkjournal after crash: %v", err)
	} else if !strings.Contains(string(out), "1 pending") {
		t.Fatalf("journal after crash = %q, want the job pending", out)
	}

	// Recovery: a clean daemon on the crashed directory finishes the
	// journaled job without any client resubmitting it.
	second := startDaemon(t, bin, crashDir)
	defer second.terminate(t)
	st := pollJob(t, second.addr, id)
	if st.State != "done" {
		t.Fatalf("recovered job = %+v, want done", st)
	}
	got := fetchResult(t, second.addr, id)
	if !bytes.Equal(got, want) {
		t.Errorf("recovered result differs from the never-crashed run:\n--- clean\n%s\n--- recovered\n%s", want, got)
	}
}

// TestDrainLeavesNoPendingJobs: SIGTERM after a completed job drains
// clean — exit 0, addr file removed, journal replay shows nothing
// pending for a future daemon to re-run.
func TestDrainLeavesNoPendingJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives child processes")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	d := startDaemon(t, bin, dir)
	runJob(t, d.addr, `{"machines":["XeonE5"],"workloads":["high-faa"],"quick":true}`)

	d.cmd.Process.Signal(os.Interrupt)
	waitExit(t, d, 15*time.Second)
	if _, err := os.Stat(filepath.Join(dir, "atomicd.addr")); !os.IsNotExist(err) {
		t.Errorf("addr file survived a clean drain (stat err %v)", err)
	}
	out, err := exec.Command(bin, "-checkjournal", dir).Output()
	if err != nil {
		t.Fatalf("checkjournal: %v", err)
	}
	if !strings.Contains(string(out), "0 pending") {
		t.Fatalf("journal after drain = %q, want 0 pending", out)
	}
}

type daemon struct {
	cmd  *exec.Cmd
	addr string
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "atomicd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func startDaemon(t *testing.T, bin, dir string, extra ...string) *daemon {
	t.Helper()
	// A crashed daemon leaves its addr file behind (nothing ran to
	// clean it up); drop it so the wait below can only see the new
	// daemon's address.
	addrPath := filepath.Join(dir, "atomicd.addr")
	os.Remove(addrPath)
	args := append([]string{"-dir", dir, "-quiet"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrPath); err == nil && len(b) > 0 {
			return &daemon{cmd: cmd, addr: strings.TrimSpace(string(b))}
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatalf("daemon never published %s", addrPath)
	return nil
}

func (d *daemon) terminate(t *testing.T) {
	t.Helper()
	if d.cmd.ProcessState != nil {
		return
	}
	d.cmd.Process.Signal(os.Interrupt)
	waitExit(t, d, 15*time.Second)
}

func waitExit(t *testing.T, d *daemon, timeout time.Duration) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly: %v", err)
		}
	case <-time.After(timeout):
		d.cmd.Process.Kill()
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error"`
}

// runJob submits spec, waits for completion, and returns (job ID,
// result bytes).
func runJob(t *testing.T, addr, spec string) (string, []byte) {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := pollJob(t, addr, st.ID); got.State != "done" {
		t.Fatalf("job = %+v, want done", got)
	}
	return st.ID, fetchResult(t, addr, st.ID)
}

func pollJob(t *testing.T, addr, id string) jobStatus {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/jobs/%s?wait=60s", addr, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func fetchResult(t *testing.T, addr, id string) []byte {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/jobs/%s/result", addr, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d: %s", resp.StatusCode, b)
	}
	return b
}
