// Command atomicd is the crash-safe simulation job server: an
// HTTP/JSON daemon that accepts experiment jobs (machines + workloads
// + options), executes them on a bounded worker pool over the cell
// scheduler, and survives kills, overload, and poisoned requests.
// DESIGN.md ("Simulation as a service") documents the lifecycle state
// machine and the degradation policy; README.md has a curl quickstart.
//
// Usage:
//
//	atomicd -dir run/             # serve on 127.0.0.1:0, state in run/
//	atomicd -dir run/ -addr :8080 # explicit listen address
//	atomicd -dir run/ -workers 4  # job worker pool size
//	atomicd -dir run/ -queue 32   # admission queue depth (full → 429)
//	atomicd -dir run/ -perclient 8# per-client in-flight cap (→ 429)
//	atomicd -dir run/ -deadline 5m# per-job wall-clock deadline
//	atomicd -dir run/ -retries 2  # job retries (capped backoff + jitter)
//	atomicd -checkjournal run/    # validate a job journal and exit
//	atomicd -dir run/ -faults crash=20   # crash drill: hard-exit after 20 cells
//
// The daemon writes its actual listen address to <dir>/atomicd.addr
// (useful with -addr :0 under test harnesses), journals every job
// write-ahead to <dir>/jobs.jsonl, and shares <dir>/cells.jsonl with
// the CLI tools — a job killed mid-run resumes from its completed
// cells on the next start. SIGTERM/SIGINT drains: admission stops
// (429/503), accepted jobs finish, state flushes, then it exits 0. A
// second signal aborts the drain immediately; the journal recovers
// whatever was cut off.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"atomicsmodel/internal/faults"
	"atomicsmodel/internal/jobs"
)

// addrFile is where the daemon publishes its live listen address.
const addrFile = "atomicd.addr"

func main() {
	var (
		dir       = flag.String("dir", "", "run directory for the job journal, cell cache, and addr file (required)")
		addr      = flag.String("addr", "127.0.0.1:0", "listen address; :0 picks a free port (published to <dir>/atomicd.addr)")
		workers   = flag.Int("workers", 2, "job worker pool size")
		queue     = flag.Int("queue", 16, "admission queue depth; a full queue sheds submits with 429")
		perClient = flag.Int("perclient", 4, "max queued+running jobs per client (X-Client header or remote host)")
		deadline  = flag.Duration("deadline", 10*time.Minute, "per-job wall-clock deadline")
		retries   = flag.Int("retries", 1, "job retry attempts after a failure (capped exponential backoff with jitter)")
		par       = flag.Int("par", runtime.NumCPU(), "max concurrent simulation cells per job")
		cellTO    = flag.Duration("celltimeout", 0, "wall-clock watchdog deadline per simulation cell (0 = none)")
		cellRetry = flag.Int("cellretries", 0, "extra attempts for a failed cell before giving up")
		drainTO   = flag.Duration("draintimeout", 2*time.Minute, "max time to let accepted jobs finish on SIGTERM before exiting anyway")
		faultSpec = flag.String("faults", "", "fault drills: cell faults (jitter=PCT,...) plus the daemon hook crash=N (hard-exit after N completed cells)")
		checkDir  = flag.String("checkjournal", "", "validate a run directory's job journal, print a summary, and exit")
		quiet     = flag.Bool("quiet", false, "suppress operational logging on stderr")
	)
	flag.Parse()

	if *checkDir != "" {
		summary, err := jobs.ValidateJournal(*checkDir)
		if err != nil {
			fatal(err)
		}
		fmt.Println(summary)
		return
	}
	if *dir == "" {
		fatal(fmt.Errorf("atomicd: -dir is required (the run directory holding the journal and cell cache)"))
	}

	var plan *faults.Plan
	if *faultSpec != "" {
		var err error
		plan, err = faults.Parse(*faultSpec)
		if err != nil {
			fatal(err)
		}
	}

	logger := log.New(os.Stderr, "atomicd: ", log.LstdFlags)
	if *quiet {
		logger = nil
	}
	srv, err := jobs.New(jobs.Config{
		Dir:         *dir,
		Workers:     *workers,
		QueueDepth:  *queue,
		PerClient:   *perClient,
		JobDeadline: *deadline,
		JobRetries:  *retries,
		CellPar:     *par,
		CellTimeout: *cellTO,
		CellRetries: *cellRetry,
		Faults:      plan,
		Log:         logger,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// Publish the live address before serving, so harnesses that start
	// us with :0 can find the port as soon as requests would succeed.
	addrPath := filepath.Join(*dir, addrFile)
	if err := os.WriteFile(addrPath, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	if logger != nil {
		logger.Printf("serving on %s (state in %s, %d recovered jobs)", ln.Addr(), *dir, srv.Recovered())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		if logger != nil {
			logger.Printf("%v: draining (max %v; signal again to abort)", sig, *drainTO)
		}
	case err := <-serveErr:
		fatal(err)
	}

	// Graceful degradation on shutdown: stop admitting first (readyz
	// flips to 503, submits shed), let accepted jobs finish, then flush
	// and close the journal and cache. A second signal — or the drain
	// timeout — cuts it short; the write-ahead journal makes that safe.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	go func() {
		<-sigs
		if logger != nil {
			logger.Printf("second signal: aborting drain")
		}
		cancel()
	}()
	drainErr := srv.Drain(drainCtx)
	cancel()
	httpSrv.Close()
	os.Remove(addrPath)
	if drainErr != nil {
		if logger != nil {
			logger.Printf("drain cut short: %v (journal will recover pending jobs)", drainErr)
		}
		os.Exit(1)
	}
	if logger != nil {
		logger.Printf("drained clean")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
