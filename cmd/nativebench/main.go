// Command nativebench runs the microbenchmarks on the host CPU with
// sync/atomic, for qualitative comparison against the simulator (see
// internal/native for why host runs are qualitative only under Go).
//
// Usage:
//
//	nativebench                          # sweep threads for every primitive
//	nativebench -threads 8 -primitive CAS
//	nativebench -low                     # private-counter (low contention) mode
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/native"
)

func main() {
	var (
		threads  = flag.Int("threads", 0, "thread count (0 = sweep 1,2,4,..,NumCPU)")
		primName = flag.String("primitive", "", "primitive (default: sweep CAS,FAA,SWAP,Load,Store)")
		durStr   = flag.String("duration", "200ms", "measurement duration per point")
		low      = flag.Bool("low", false, "low-contention (private lines) mode")
		pin      = flag.Bool("pin", true, "lock goroutines to OS threads")
	)
	flag.Parse()

	dur, err := time.ParseDuration(*durStr)
	if err != nil {
		fatal(err)
	}
	mode := native.HighContention
	if *low {
		mode = native.LowContention
	}

	prims := []atomics.Primitive{atomics.CAS, atomics.FAA, atomics.SWAP, atomics.Load, atomics.Store}
	if *primName != "" {
		p, err := atomics.Parse(*primName)
		if err != nil {
			fatal(err)
		}
		prims = []atomics.Primitive{p}
	}

	var sweep []int
	if *threads > 0 {
		sweep = []int{*threads}
	} else {
		for n := 1; n <= runtime.NumCPU(); n *= 2 {
			sweep = append(sweep, n)
		}
	}

	fmt.Printf("host: %d CPUs, GOMAXPROCS=%d, mode=%v, duration=%v\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0), modeName(mode), dur)
	fmt.Println("caveat: Go cannot pin to specific cores; treat shapes, not absolutes")
	fmt.Printf("%-8s %8s %12s %10s %8s %10s\n", "prim", "threads", "Mops", "success", "Jain", "failures")
	for _, p := range prims {
		for _, n := range sweep {
			res, err := native.Run(native.Config{
				Threads: n, Primitive: p, Mode: mode, Duration: dur, Pin: *pin,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-8s %8d %12.2f %10.3f %8.3f %10d\n",
				p, n, res.ThroughputMops, res.SuccessRate, res.Jain, res.Failures)
		}
	}
}

func modeName(m native.Mode) string {
	if m == native.LowContention {
		return "low-contention"
	}
	return "high-contention"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nativebench:", err)
	os.Exit(1)
}
