// Benchmarks: one testing.B benchmark per table/figure of the paper
// (T1, F1..F12, T2), each running the corresponding experiment workload
// and reporting its headline quantity as a custom metric (Mops of
// simulated throughput, ns of simulated latency, nJ/op, MAPE %), plus
// native sync/atomic benchmarks of the primitives on the host CPU.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
package atomicsmodel_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"atomicsmodel"
	"atomicsmodel/internal/apps"
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/core"
	"atomicsmodel/internal/harness"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/stats"
	"atomicsmodel/internal/workload"
)

// benchCfg is a short-duration high-contention config for benchmarks.
func benchCfg(m *machine.Machine, p atomics.Primitive, n int) workload.Config {
	return workload.Config{
		Machine: m, Threads: n, Primitive: p, Mode: workload.HighContention,
		Warmup: 10 * sim.Microsecond, Duration: 100 * sim.Microsecond, Seed: 42,
	}
}

func runBench(b *testing.B, cfg workload.Config) *workload.Result {
	b.Helper()
	var res *workload.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = workload.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

func BenchmarkT1MachineTable(b *testing.B) {
	e, err := harness.ByID("T1")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(harness.Options{Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF1LowContentionLatency(b *testing.B) {
	for _, m := range machine.All() {
		b.Run(m.Name, func(b *testing.B) {
			var last sim.Time
			for i := 0; i < b.N; i++ {
				for _, st := range workload.AllLineStates() {
					lat, err := workload.MeasureStateLatency(m, atomics.FAA, st)
					if err != nil {
						continue
					}
					last = lat
				}
			}
			b.ReportMetric(last.Nanoseconds(), "dram_ns")
		})
	}
}

func BenchmarkF2HighContentionLatency(b *testing.B) {
	for _, m := range machine.All() {
		b.Run(m.Name, func(b *testing.B) {
			res := runBench(b, benchCfg(m, atomics.FAA, 16))
			b.ReportMetric(res.Latency.Mean().Nanoseconds(), "simlat_ns")
		})
	}
}

func BenchmarkF3HighContentionThroughput(b *testing.B) {
	m := machine.XeonE5()
	for _, p := range atomics.All() {
		b.Run(p.String(), func(b *testing.B) {
			res := runBench(b, benchCfg(m, p, 16))
			b.ReportMetric(res.ThroughputMops, "sim_Mops")
		})
	}
}

func BenchmarkF4CASRetries(b *testing.B) {
	m := machine.XeonE5()
	res := runBench(b, benchCfg(m, atomics.CAS, 16))
	b.ReportMetric(res.SuccessRate(), "success_rate")
	b.ReportMetric(float64(res.Failures)/float64(res.Ops), "retries_per_op")
}

func BenchmarkF5Fairness(b *testing.B) {
	m := machine.XeonE5()
	for _, arb := range []struct {
		name string
		a    coherence.Arbiter
	}{
		{"fifo", coherence.FIFOArbiter{}},
		{"locality", &coherence.LocalityArbiter{}},
	} {
		b.Run(arb.name, func(b *testing.B) {
			cfg := benchCfg(m, atomics.FAA, 24)
			cfg.Arbiter = arb.a
			res := runBench(b, cfg)
			b.ReportMetric(res.Jain, "jain")
		})
	}
}

func BenchmarkF6Energy(b *testing.B) {
	for _, m := range machine.All() {
		b.Run(m.Name, func(b *testing.B) {
			res := runBench(b, benchCfg(m, atomics.FAA, 16))
			b.ReportMetric(res.Energy.PerOpNJ, "nJ_per_op")
			b.ReportMetric(res.Energy.AvgPowerW, "watts")
		})
	}
}

func BenchmarkF7ModelValidation(b *testing.B) {
	for _, m := range machine.All() {
		b.Run(m.Name, func(b *testing.B) {
			md := core.NewDetailed(m)
			var mape float64
			for i := 0; i < b.N; i++ {
				var pred, meas []float64
				for _, n := range []int{2, 4, 8, 16} {
					res, err := workload.Run(benchCfg(m, atomics.FAA, n))
					if err != nil {
						b.Fatal(err)
					}
					cores, err := atomicsmodel.PlaceCompact(m, n)
					if err != nil {
						b.Fatal(err)
					}
					pred = append(pred, md.PredictHigh(atomics.FAA, cores, 0).ThroughputMops)
					meas = append(meas, res.ThroughputMops)
				}
				mape = stats.MeanAbsPctError(pred, meas)
			}
			b.ReportMetric(mape, "mape_pct")
		})
	}
}

func BenchmarkF8WorkSweep(b *testing.B) {
	m := machine.XeonE5()
	for _, w := range []sim.Time{0, 400 * sim.Nanosecond, 3200 * sim.Nanosecond} {
		b.Run(w.String(), func(b *testing.B) {
			cfg := benchCfg(m, atomics.FAA, 16)
			cfg.LocalWork = w
			res := runBench(b, cfg)
			b.ReportMetric(res.ThroughputMops, "sim_Mops")
		})
	}
}

func BenchmarkF9CounterDesign(b *testing.B) {
	m := machine.XeonE5()
	for _, c := range []struct {
		name  string
		build func(*sim.Engine, *atomics.Memory) apps.App
	}{
		{"faa", func(e *sim.Engine, mem *atomics.Memory) apps.App { return apps.NewFAACounter(mem) }},
		{"cas", func(e *sim.Engine, mem *atomics.Memory) apps.App { return apps.NewCASCounter(mem) }},
	} {
		b.Run(c.name, func(b *testing.B) {
			var res *apps.RunResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = apps.Run(apps.RunConfig{
					Machine: m, Threads: 16, Build: c.build,
					Warmup: 10 * sim.Microsecond, Duration: 100 * sim.Microsecond, Seed: 42,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.ThroughputMops, "sim_Mops")
		})
	}
}

func BenchmarkF10LockDesign(b *testing.B) {
	m := machine.XeonE5()
	crit := 50 * sim.Nanosecond
	for _, c := range []struct {
		name  string
		build func(*sim.Engine, *atomics.Memory) apps.App
	}{
		{"tas", func(e *sim.Engine, mem *atomics.Memory) apps.App { return apps.NewTASLock(e, mem, crit) }},
		{"ttas", func(e *sim.Engine, mem *atomics.Memory) apps.App { return apps.NewTTASLock(e, mem, crit) }},
		{"backoff", func(e *sim.Engine, mem *atomics.Memory) apps.App {
			return apps.NewTTASBackoffLock(e, mem, crit, 100*sim.Nanosecond, 3200*sim.Nanosecond)
		}},
		{"ticket", func(e *sim.Engine, mem *atomics.Memory) apps.App { return apps.NewTicketLock(e, mem, crit) }},
	} {
		b.Run(c.name, func(b *testing.B) {
			var res *apps.RunResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = apps.Run(apps.RunConfig{
					Machine: m, Threads: 16, Build: c.build,
					Warmup: 10 * sim.Microsecond, Duration: 100 * sim.Microsecond, Seed: 42,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.ThroughputMops, "sim_Mops")
			b.ReportMetric(res.Jain, "jain")
		})
	}
}

func BenchmarkF11Placement(b *testing.B) {
	m := machine.XeonE5()
	for _, p := range []machine.Placement{machine.Compact{}, machine.Scatter{}, machine.SMTFirst{}} {
		b.Run(p.Name(), func(b *testing.B) {
			cfg := benchCfg(m, atomics.FAA, 8)
			cfg.Placement = p
			res := runBench(b, cfg)
			b.ReportMetric(res.ThroughputMops, "sim_Mops")
		})
	}
}

func BenchmarkF12ReadWriteMix(b *testing.B) {
	m := machine.XeonE5()
	for _, rf := range []float64{0, 0.9, 1.0} {
		b.Run(f2name(rf), func(b *testing.B) {
			cfg := benchCfg(m, atomics.FAA, 16)
			cfg.Mode = workload.ReadWriteMix
			cfg.ReadFraction = rf
			res := runBench(b, cfg)
			b.ReportMetric(res.ThroughputMops, "sim_Mops")
		})
	}
}

func f2name(v float64) string {
	switch v {
	case 0:
		return "reads_0pct"
	case 0.9:
		return "reads_90pct"
	default:
		return "reads_100pct"
	}
}

func BenchmarkF16Bandwidth(b *testing.B) {
	for _, occ := range []float64{0, 4} {
		name := "infinite"
		if occ > 0 {
			name = "occ4cyc"
		}
		b.Run(name, func(b *testing.B) {
			m := machine.XeonE5()
			m.LinkOccupancy = m.Cycles(occ)
			res := runBench(b, benchCfg(m, atomics.FAA, 16))
			b.ReportMetric(res.ThroughputMops, "sim_Mops")
			b.ReportMetric(res.Coh.LinkStall.Nanoseconds(), "stall_ns")
		})
	}
}

func BenchmarkF17SocketScaling(b *testing.B) {
	for _, s := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("%dsocket", s), func(b *testing.B) {
			m := machine.XeonMultiSocket(s)
			cfg := benchCfg(m, atomics.FAA, 16)
			cfg.Placement = machine.Scatter{}
			res := runBench(b, cfg)
			b.ReportMetric(res.ThroughputMops, "sim_Mops")
		})
	}
}

func BenchmarkT2Calibration(b *testing.B) {
	for _, m := range machine.All() {
		b.Run(m.Name, func(b *testing.B) {
			var cal core.Calibration
			for i := 0; i < b.N; i++ {
				var err error
				_, cal, err = core.Calibrate(m)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cal.TSame.Nanoseconds(), "tsame_ns")
		})
	}
}

// Native benchmarks: the real primitives on the host CPU, via the
// standard testing.B parallel driver. These are the qualitative
// hardware cross-check (see internal/native for caveats).

func BenchmarkNativeContendedFAA(b *testing.B) {
	var x atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			x.Add(1)
		}
	})
}

func BenchmarkNativeContendedCAS(b *testing.B) {
	var x atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		expected := x.Load()
		for pb.Next() {
			if x.CompareAndSwap(expected, expected+1) {
				expected++
			} else {
				expected = x.Load()
			}
		}
	})
}

func BenchmarkNativeContendedSwap(b *testing.B) {
	var x atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			x.Swap(7)
		}
	})
}

func BenchmarkNativeContendedLoad(b *testing.B) {
	var x atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		var sink uint64
		for pb.Next() {
			sink += x.Load()
		}
		_ = sink
	})
}

func BenchmarkNativeUncontendedFAA(b *testing.B) {
	// Each goroutine gets its own padded line: the low-contention
	// setting.
	type padded struct {
		v atomic.Uint64
		_ [7]uint64
	}
	b.RunParallel(func(pb *testing.PB) {
		var local padded
		for pb.Next() {
			local.v.Add(1)
		}
	})
}

// BenchmarkSimulatorEventRate measures the simulator itself: how many
// simulated coherence operations per wall-clock second this host
// sustains (meta-benchmark for the substrate).
func BenchmarkSimulatorEventRate(b *testing.B) {
	m := machine.XeonE5()
	b.ReportAllocs()
	ops := uint64(0)
	for i := 0; i < b.N; i++ {
		res, err := workload.Run(benchCfg(m, atomics.FAA, 16))
		if err != nil {
			b.Fatal(err)
		}
		ops += res.Attempts
	}
	b.ReportMetric(float64(ops)/float64(b.N), "simops_per_iter")
}
