// Counterdesign: use the model to make the paper's flagship design
// decision — should a hot shared counter be built on fetch-and-add or
// on a CAS retry loop? — then verify the choice by simulating both
// implementations as real data structures.
//
//	go run ./examples/counterdesign
package main

import (
	"fmt"
	"log"

	"atomicsmodel"
	"atomicsmodel/internal/apps"
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/sim"
)

func main() {
	m := atomicsmodel.XeonE5()
	model := atomicsmodel.NewModel(m)

	fmt.Println("Design question: FAA counter or CAS-loop counter on", m.Name, "?")
	fmt.Printf("%8s %14s %14s %8s\n", "threads", "model FAA", "model CAS", "ratio")
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		cores, err := atomicsmodel.PlaceCompact(m, n)
		if err != nil {
			log.Fatal(err)
		}
		faa := model.PredictHigh(atomicsmodel.FAA, cores, 0)
		cas := model.PredictHigh(atomicsmodel.CAS, cores, 0)
		fmt.Printf("%8d %11.1f M/s %11.1f M/s %7.1fx\n",
			n, faa.ThroughputMops, cas.ThroughputMops,
			faa.ThroughputMops/cas.ThroughputMops)
	}
	fmt.Println("\nmodel says: FAA, and the gap grows ~linearly with threads.")
	fmt.Println("verifying with the actual data structures at 16 threads...")

	for _, build := range []func(*sim.Engine, *atomics.Memory) apps.App{
		func(e *sim.Engine, mem *atomics.Memory) apps.App { return apps.NewFAACounter(mem) },
		func(e *sim.Engine, mem *atomics.Memory) apps.App { return apps.NewCASCounter(mem) },
	} {
		res, err := atomicsmodel.RunApp(atomicsmodel.AppConfig{
			Machine: m, Threads: 16, Build: build,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %8.2f M increments/s (Jain %.3f)\n",
			res.App, res.ThroughputMops, res.Jain)
	}
}
