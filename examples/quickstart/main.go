// Quickstart: measure a contended fetch-and-add on the simulated Xeon
// E5, compare it with the model's prediction, and print the numbers a
// first-time user wants to see.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"atomicsmodel"
)

func main() {
	m := atomicsmodel.XeonE5()
	fmt.Println("machine:", m)

	// Simulate 16 threads hammering one cache line with FAA.
	res, err := atomicsmodel.RunWorkload(atomicsmodel.WorkloadConfig{
		Machine:   m,
		Threads:   16,
		Primitive: atomicsmodel.FAA,
		Mode:      atomicsmodel.HighContention,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated:  %.1f Mops, mean latency %.0f ns, Jain %.3f, %.0f nJ/op\n",
		res.ThroughputMops, res.Latency.Mean().Nanoseconds(), res.Jain, res.Energy.PerOpNJ)

	// Ask the model for the same configuration — no simulation needed.
	model := atomicsmodel.NewModel(m)
	cores, err := atomicsmodel.PlaceCompact(m, 16)
	if err != nil {
		log.Fatal(err)
	}
	pred := model.PredictHigh(atomicsmodel.FAA, cores, 0)
	fmt.Printf("model:      %.1f Mops, mean latency %.0f ns, Jain %.3f, %.0f nJ/op\n",
		pred.ThroughputMops, pred.AttemptLatency.Nanoseconds(), pred.Jain, pred.EnergyPerOpNJ)

	// The single-thread baseline shows what contention costs.
	solo, err := atomicsmodel.RunWorkload(atomicsmodel.WorkloadConfig{
		Machine: m, Threads: 1, Primitive: atomicsmodel.FAA,
		Mode: atomicsmodel.HighContention,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1 thread:   %.1f Mops, latency %.0f ns (the uncontended cost of a locked op)\n",
		solo.ThroughputMops, solo.Latency.Mean().Nanoseconds())
}
