// Placement: show how thread placement changes the cost of a contended
// atomic on the two-socket Xeon — the NUMA effect at the heart of the
// paper's transfer-time model — and that the model predicts it without
// running anything.
//
//	go run ./examples/placement
package main

import (
	"fmt"
	"log"

	"atomicsmodel"
	"atomicsmodel/internal/machine"
)

func main() {
	m := atomicsmodel.XeonE5()
	model := atomicsmodel.NewModel(m)
	placements := []machine.Placement{
		machine.Compact{},               // fill socket 0 first
		machine.Scatter{},               // alternate sockets
		machine.SingleSocket{Socket: 0}, // never leave socket 0
		machine.SMTFirst{},              // share L1s between siblings
	}

	const threads = 8
	fmt.Printf("%s, %d threads on one hot line (FAA)\n\n", m.Name, threads)
	fmt.Printf("%-12s %12s %12s %14s %12s\n",
		"placement", "sim (Mops)", "model (Mops)", "latency (ns)", "xsock/op")
	for _, p := range placements {
		res, err := atomicsmodel.RunWorkload(atomicsmodel.WorkloadConfig{
			Machine: m, Threads: threads, Primitive: atomicsmodel.FAA,
			Mode: atomicsmodel.HighContention, Placement: p,
		})
		if err != nil {
			log.Fatal(err)
		}
		slots, err := p.Place(m, threads)
		if err != nil {
			log.Fatal(err)
		}
		cores := make([]int, threads)
		for i, s := range slots {
			cores[i] = m.CoreOf(s)
		}
		pred := model.PredictHigh(atomicsmodel.FAA, cores, 0)
		xsock := float64(res.Coh.CrossSocket) / float64(res.Ops)
		fmt.Printf("%-12s %12.2f %12.2f %14.1f %12.2f\n",
			p.Name(), res.ThroughputMops, pred.ThroughputMops,
			res.Latency.Mean().Nanoseconds(), xsock)
	}
	fmt.Println("\nreading: scatter pays the QPI penalty on (almost) every handoff;")
	fmt.Println("keeping contenders on one socket is worth ~2-3x, and the model knows it.")
}
