// Lockdesign: compare spinlock designs — TAS, TTAS, TTAS with backoff,
// and ticket — on both simulated machines, showing throughput and
// fairness side by side. The outcome mirrors the classic literature:
// backoff minimizes line bounces per handoff, tickets buy perfect
// fairness with one extra shared line.
//
//	go run ./examples/lockdesign
package main

import (
	"fmt"
	"log"

	"atomicsmodel"
	"atomicsmodel/internal/apps"
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/sim"
)

func main() {
	crit := 50 * sim.Nanosecond
	locks := []struct {
		name  string
		build func(*sim.Engine, *atomics.Memory) apps.App
	}{
		{"tas", func(e *sim.Engine, mem *atomics.Memory) apps.App { return apps.NewTASLock(e, mem, crit) }},
		{"ttas", func(e *sim.Engine, mem *atomics.Memory) apps.App { return apps.NewTTASLock(e, mem, crit) }},
		{"ttas+backoff", func(e *sim.Engine, mem *atomics.Memory) apps.App {
			return apps.NewTTASBackoffLock(e, mem, crit, 100*sim.Nanosecond, 3200*sim.Nanosecond)
		}},
		{"ticket", func(e *sim.Engine, mem *atomics.Memory) apps.App { return apps.NewTicketLock(e, mem, crit) }},
	}

	for _, m := range atomicsmodel.Machines() {
		fmt.Printf("== %s, 16 threads, 50ns critical section\n", m.Name)
		fmt.Printf("%-14s %14s %8s %8s\n", "lock", "cycles (M/s)", "Jain", "min/max")
		for _, l := range locks {
			res, err := atomicsmodel.RunApp(atomicsmodel.AppConfig{
				Machine: m, Threads: 16, Build: l.build,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s %14.2f %8.3f %8.3f\n", l.name, res.ThroughputMops, res.Jain, res.MinMax)
		}
		fmt.Println()
	}
	fmt.Println("reading: backoff wins throughput (fewest bounces/handoff);")
	fmt.Println("ticket wins fairness (FIFO by construction, Jain ~ 1).")
}
