// Modelsweep: the "use the model in practice" workflow. Calibrate the
// three-constant simple model with probe runs (on real hardware these
// would be three tiny microbenchmarks), then print a full design-space
// sweep — primitives × thread counts — from the model alone, with no
// further simulation or measurement. This is the paper's pitch: once
// calibrated, algorithmic design decisions come from arithmetic.
//
//	go run ./examples/modelsweep                             # the paper pair
//	go run ./examples/modelsweep EPYC XeonSP                 # registered machines
//	go run ./examples/modelsweep examples/machines/epyc.json # spec files
//
// Arguments name registered machines or point at JSON machine spec
// files (anything ending in .json is loaded as a spec).
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"atomicsmodel"
)

func main() {
	machines := atomicsmodel.Machines()
	if args := os.Args[1:]; len(args) > 0 {
		machines = machines[:0]
		for _, arg := range args {
			var (
				m   *atomicsmodel.Machine
				err error
			)
			if strings.HasSuffix(arg, ".json") {
				m, err = atomicsmodel.LoadMachineFile(arg)
			} else {
				m, err = atomicsmodel.MachineByName(arg)
			}
			if err != nil {
				log.Fatal(err)
			}
			machines = append(machines, m)
		}
	}
	for _, m := range machines {
		simple, cal, err := atomicsmodel.CalibrateModel(m)
		if err != nil {
			log.Fatal(err)
		}
		detailed := atomicsmodel.NewModel(m)
		fmt.Printf("== %s\ncalibration: %s\n\n", m, cal)

		prims := []atomicsmodel.Primitive{
			atomicsmodel.FAA, atomicsmodel.CAS, atomicsmodel.SWAP, atomicsmodel.CAS2,
		}
		fmt.Printf("%8s", "threads")
		for _, p := range prims {
			fmt.Printf(" %9s %9s", p.String()+"/det", p.String()+"/sim")
		}
		fmt.Println(" (successful Mops; det = detailed model, sim = simple model)")
		for _, n := range []int{1, 2, 4, 8, 16, 32} {
			if n > m.NumHWThreads() {
				break
			}
			cores, err := atomicsmodel.PlaceCompact(m, n)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8d", n)
			for _, p := range prims {
				d := detailed.PredictHigh(p, cores, 0)
				s := simple.PredictHigh(p, cores, 0)
				fmt.Printf(" %9.2f %9.2f", d.ThroughputMops, s.ThroughputMops)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("decision rules the sweep yields:")
	fmt.Println(" - a hot counter wants FAA (CAS pays ~N attempts per update);")
	fmt.Println(" - CAS2's wider lock is a constant factor, not a scaling problem;")
	fmt.Println(" - past a handful of threads, adding more buys nothing: split the line instead.")
}
