// Modelsweep: the "use the model in practice" workflow. Calibrate the
// three-constant simple model with probe runs (on real hardware these
// would be three tiny microbenchmarks), then print a full design-space
// sweep — primitives × thread counts — from the model alone, with no
// further simulation or measurement. This is the paper's pitch: once
// calibrated, algorithmic design decisions come from arithmetic.
//
//	go run ./examples/modelsweep
package main

import (
	"fmt"
	"log"

	"atomicsmodel"
)

func main() {
	for _, m := range atomicsmodel.Machines() {
		simple, cal, err := atomicsmodel.CalibrateModel(m)
		if err != nil {
			log.Fatal(err)
		}
		detailed := atomicsmodel.NewModel(m)
		fmt.Printf("== %s\ncalibration: %s\n\n", m, cal)

		prims := []atomicsmodel.Primitive{
			atomicsmodel.FAA, atomicsmodel.CAS, atomicsmodel.SWAP, atomicsmodel.CAS2,
		}
		fmt.Printf("%8s", "threads")
		for _, p := range prims {
			fmt.Printf(" %9s %9s", p.String()+"/det", p.String()+"/sim")
		}
		fmt.Println(" (successful Mops; det = detailed model, sim = simple model)")
		for _, n := range []int{1, 2, 4, 8, 16, 32} {
			if n > m.NumHWThreads() {
				break
			}
			cores, err := atomicsmodel.PlaceCompact(m, n)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8d", n)
			for _, p := range prims {
				d := detailed.PredictHigh(p, cores, 0)
				s := simple.PredictHigh(p, cores, 0)
				fmt.Printf(" %9.2f %9.2f", d.ThroughputMops, s.ThroughputMops)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("decision rules the sweep yields:")
	fmt.Println(" - a hot counter wants FAA (CAS pays ~N attempts per update);")
	fmt.Println(" - CAS2's wider lock is a constant factor, not a scaling problem;")
	fmt.Println(" - past a handful of threads, adding more buys nothing: split the line instead.")
}
