// End-to-end tests for the repository's extension claims (F13-F20, T3),
// through the public API where it reaches.
package atomicsmodel_test

import (
	"math"
	"testing"

	"atomicsmodel"
	"atomicsmodel/internal/sim"
)

// Extension claim (F16): finite bandwidth only ever slows things down,
// and by an amount that grows with occupancy.
func TestClaimBandwidthMonotonic(t *testing.T) {
	prev := math.Inf(1)
	for _, occ := range []float64{0, 2, 8} {
		m := atomicsmodel.XeonE5()
		m.LinkOccupancy = m.Cycles(occ)
		res := mustRun(t, atomicsmodel.WorkloadConfig{
			Machine: m, Threads: 16, Primitive: atomicsmodel.FAA,
			Mode: atomicsmodel.HighContention,
		})
		if res.ThroughputMops > prev+0.01 {
			t.Fatalf("throughput rose with occupancy %v: %.2f > %.2f", occ, res.ThroughputMops, prev)
		}
		prev = res.ThroughputMops
	}
}

// Extension claim (F19): the open-loop knee sits at the model's 1/s.
func TestClaimOpenLoopKneeAtModelRate(t *testing.T) {
	m := atomicsmodel.XeonE5()
	model := atomicsmodel.NewModel(m)
	cores, err := atomicsmodel.PlaceCompact(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	sat := model.PredictHigh(atomicsmodel.FAA, cores, 0).ThroughputMops
	run := func(frac float64) *atomicsmodel.WorkloadResult {
		offered := frac * sat * 1e6 // ops/s total
		inter := sim.Time(16.0 / offered * 1e12)
		return mustRun(t, atomicsmodel.WorkloadConfig{
			Machine: m, Threads: 16, Primitive: atomicsmodel.FAA,
			Mode:     atomicsmodel.HighContention,
			OpenLoop: true, OpenLoopInterarrival: inter,
			Warmup: 25 * sim.Microsecond, Duration: 400 * sim.Microsecond,
		})
	}
	under := run(0.8)
	over := run(1.3)
	// Below the knee the offer is absorbed; above it the latency
	// diverges and throughput caps near the model's rate.
	if e := math.Abs(under.ThroughputMops-0.8*sat) / (0.8 * sat); e > 0.10 {
		t.Fatalf("sub-knee absorption off by %.0f%%", e*100)
	}
	if over.Latency.Mean() < 20*under.Latency.Mean() {
		t.Fatalf("no divergence past the knee: %v vs %v", over.Latency.Mean(), under.Latency.Mean())
	}
	if e := math.Abs(over.ThroughputMops-sat) / sat; e > 0.12 {
		t.Fatalf("saturated throughput %.2f vs model %.2f", over.ThroughputMops, sat)
	}
}

// Extension claim (Fence): barriers cost the same regardless of where
// any line is, and scale linearly — ordering is not contention.
func TestClaimFenceIsContentionFree(t *testing.T) {
	m := atomicsmodel.KNL()
	r1 := mustRun(t, atomicsmodel.WorkloadConfig{
		Machine: m, Threads: 1, Primitive: atomicsmodel.Fence,
		Mode: atomicsmodel.HighContention,
	})
	r16 := mustRun(t, atomicsmodel.WorkloadConfig{
		Machine: m, Threads: 16, Primitive: atomicsmodel.Fence,
		Mode: atomicsmodel.HighContention,
	})
	if r16.Latency.Mean() != r1.Latency.Mean() {
		t.Fatalf("fence latency changed with threads: %v vs %v", r16.Latency.Mean(), r1.Latency.Mean())
	}
	ratio := r16.ThroughputMops / r1.ThroughputMops
	if ratio < 15.5 || ratio > 16.5 {
		t.Fatalf("fence scaling = %.2fx, want 16x", ratio)
	}
}

// Extension claim (F17): the socket-extrapolation experiment runs end
// to end (model-vs-simulation accuracy on the 4-socket machine is
// asserted in internal/core's tests).
func TestClaimModelExtrapolatesSockets(t *testing.T) {
	e, err := atomicsmodel.ExperimentByID("F17")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(atomicsmodel.ExperimentOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) == 0 {
		t.Fatal("F17 produced no rows")
	}
}

// Extension claim (F18/F20): the design-decision experiments complete
// and keep their invariants (violations column zero) end to end.
func TestClaimDesignExperimentsSound(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several app simulations")
	}
	for _, id := range []string{"F18", "F20"} {
		e, err := atomicsmodel.ExperimentByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := e.Run(atomicsmodel.ExperimentOptions{Quick: true})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, tb := range tables {
			if len(tb.Rows) == 0 {
				t.Errorf("%s: empty table %q", id, tb.Title)
			}
			if id == "F20" {
				for _, row := range tb.Rows {
					if row[len(row)-1] != "0" {
						t.Errorf("F20 mutual-exclusion violations: %v", row)
					}
				}
			}
		}
	}
}
