package atomicsmodel_test

import (
	"fmt"

	"atomicsmodel"
)

// The simulator is fully deterministic, so these examples double as
// regression tests on the whole stack: changing any machine constant or
// protocol rule changes their output.

func ExampleRunWorkload() {
	res, err := atomicsmodel.RunWorkload(atomicsmodel.WorkloadConfig{
		Machine:   atomicsmodel.XeonE5(),
		Threads:   16,
		Primitive: atomicsmodel.FAA,
		Mode:      atomicsmodel.HighContention,
		Seed:      42,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("throughput %.1f Mops, mean latency %.0f ns, Jain %.2f\n",
		res.ThroughputMops, res.Latency.Mean().Nanoseconds(), res.Jain)
	// Output: throughput 30.8 Mops, mean latency 520 ns, Jain 1.00
}

func ExampleModel_PredictHigh() {
	m := atomicsmodel.XeonE5()
	model := atomicsmodel.NewModel(m)
	cores, err := atomicsmodel.PlaceCompact(m, 16)
	if err != nil {
		panic(err)
	}
	faa := model.PredictHigh(atomicsmodel.FAA, cores, 0)
	cas := model.PredictHigh(atomicsmodel.CAS, cores, 0)
	fmt.Printf("FAA %.1f Mops, CAS %.1f Mops (success rate %.3f)\n",
		faa.ThroughputMops, cas.ThroughputMops, cas.SuccessRate)
	// Output: FAA 30.5 Mops, CAS 1.9 Mops (success rate 0.062)
}

func ExampleMeasureStateLatency() {
	m := atomicsmodel.KNL()
	local, err := atomicsmodel.MeasureStateLatency(m, atomicsmodel.FAA, 0) // StateModifiedLocal
	if err != nil {
		panic(err)
	}
	fmt.Printf("owned-line FAA on KNL: %.1f ns\n", local.Nanoseconds())
	// Output: owned-line FAA on KNL: 26.2 ns
}

func ExampleCalibrateModel() {
	_, cal, err := atomicsmodel.CalibrateModel(atomicsmodel.XeonE5())
	if err != nil {
		panic(err)
	}
	fmt.Printf("t_local %.1f ns, t_same %.1f ns, t_cross %.1f ns\n",
		cal.TLocal.Nanoseconds(), cal.TSame.Nanoseconds(), cal.TCross.Nanoseconds())
	// Output: t_local 8.7 ns, t_same 37.5 ns, t_cross 115.0 ns
}

func ExampleModel_PredictAlgorithm() {
	m := atomicsmodel.XeonE5()
	model := atomicsmodel.NewModel(m)
	cores, err := atomicsmodel.PlaceCompact(m, 16)
	if err != nil {
		panic(err)
	}
	// A CAS-loop counter: one retried CAS on the hot line per increment.
	pred, err := model.PredictAlgorithm([]atomicsmodel.AlgoStep{
		{Primitive: atomicsmodel.CAS, Line: 0, Retry: true},
	}, cores, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("CAS-loop counter at 16 threads: %.1f M increments/s\n", pred.ThroughputMops)
	// Output: CAS-loop counter at 16 threads: 1.9 M increments/s
}
