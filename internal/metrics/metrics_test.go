package metrics

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"
)

func TestNilRegistryIsOff(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	v := r.Vector("y", 4)
	h := r.Histogram("z")
	if c != nil || v != nil || h != nil {
		t.Fatalf("nil registry handed out non-nil handles: %v %v %v", c, v, h)
	}
	// All operations must be safe no-ops.
	c.Inc()
	c.Add(7)
	v.Inc(2)
	v.Add(1, 3)
	h.Observe(9)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || v.Values() != nil {
		t.Fatal("nil instruments reported non-zero state")
	}
	if s := r.Snapshot(); s != nil {
		t.Fatalf("nil registry snapshot = %+v, want nil", s)
	}
	var s *Snapshot
	if _, ok := s.Counter("x"); ok {
		t.Fatal("nil snapshot resolved a counter")
	}
	if s.Hist("z") != nil || s.Vector("y") != nil {
		t.Fatal("nil snapshot resolved a hist/vector")
	}
}

func TestHotPathOpsDoNotAllocate(t *testing.T) {
	r := New()
	c := r.Counter("c")
	v := r.Vector("v", 8)
	h := r.Histogram("h")
	var nilC *Counter
	var nilH *Histogram
	n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		v.Inc(5)
		h.Observe(1234)
		nilC.Inc()
		nilH.Observe(1)
	})
	if n != 0 {
		t.Fatalf("hot-path instrument ops allocate %.1f allocs/op, want 0", n)
	}
}

func TestCounterVectorHistogram(t *testing.T) {
	r := New()
	c := r.Counter("ops")
	c.Inc()
	c.Add(9)
	if got := c.Value(); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	if r.Counter("ops") != c {
		t.Fatal("re-registration returned a different counter")
	}

	v := r.Vector("per", 3)
	v.Inc(0)
	v.Add(2, 5)
	v.Inc(-1) // ignored
	v.Inc(3)  // ignored
	if got := v.Values(); len(got) != 3 || got[0] != 1 || got[1] != 0 || got[2] != 5 {
		t.Fatalf("vector = %v", got)
	}
	if grown := r.Vector("per", 5); len(grown.Values()) != 5 || grown.Values()[2] != 5 {
		t.Fatalf("grown vector = %v", grown.Values())
	}

	h := r.Histogram("depth")
	for _, x := range []uint64{0, 1, 1, 3, 8, 1000} {
		h.Observe(x)
	}
	if h.Count() != 6 || h.Max() != 1000 {
		t.Fatalf("hist count=%d max=%d", h.Count(), h.Max())
	}
	if want := float64(0+1+1+3+8+1000) / 6; h.Mean() != want {
		t.Fatalf("hist mean=%v want %v", h.Mean(), want)
	}
}

func TestBucketLow(t *testing.T) {
	cases := map[int]uint64{0: 0, 1: 1, 2: 2, 3: 4, 11: 1024}
	for b, want := range cases {
		if got := BucketLow(b); got != want {
			t.Fatalf("BucketLow(%d) = %d, want %d", b, got, want)
		}
	}
}

func TestSnapshotSortedAndQueryable(t *testing.T) {
	r := New()
	r.Counter("zeta").Add(1)
	r.Counter("alpha").Add(2)
	r.Vector("v", 2).Inc(1)
	h := r.Histogram("h")
	h.Observe(0)
	h.Observe(5)

	s := r.Snapshot()
	names := make([]string, len(s.Counters))
	for i, c := range s.Counters {
		names[i] = c.Name
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("counters not sorted: %v", names)
	}
	if v, ok := s.Counter("alpha"); !ok || v != 2 {
		t.Fatalf("Counter(alpha) = %d,%v", v, ok)
	}
	if _, ok := s.Counter("missing"); ok {
		t.Fatal("resolved a missing counter")
	}
	if vals := s.Vector("v"); len(vals) != 2 || vals[1] != 1 {
		t.Fatalf("Vector(v) = %v", vals)
	}
	hs := s.Hist("h")
	if hs == nil || hs.Count != 2 || hs.Max != 5 || hs.Mean() != 2.5 {
		t.Fatalf("Hist(h) = %+v", hs)
	}
	// Buckets: 0 → bucket low 0; 5 → bit length 3 → low 4.
	if len(hs.Buckets) != 2 || hs.Buckets[0].Low != 0 || hs.Buckets[1].Low != 4 {
		t.Fatalf("buckets = %+v", hs.Buckets)
	}
}

// TestSnapshotJSONRoundTripByteExact is the property the harness resume
// cache depends on: a snapshot must re-encode byte-identically after
// decoding, or a resumed run could render different metrics tables than
// the fresh run it replays.
func TestSnapshotJSONRoundTripByteExact(t *testing.T) {
	r := New()
	r.Counter("coh.transfer.remote-cache").Add(12345)
	r.Counter("empty")
	r.Vector("work.thread_ops", 4).Add(3, 99)
	h := r.Histogram("coh.queue_depth")
	for i := uint64(0); i < 100; i++ {
		h.Observe(i * i)
	}
	for _, snap := range []*Snapshot{r.Snapshot(), New().Snapshot()} {
		raw, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		var rt Snapshot
		if err := json.Unmarshal(raw, &rt); err != nil {
			t.Fatal(err)
		}
		raw2, err := json.Marshal(&rt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, raw2) {
			t.Fatalf("snapshot does not survive a JSON round trip:\n%s\n%s", raw, raw2)
		}
	}
}

func TestReset(t *testing.T) {
	r := New()
	c := r.Counter("c")
	v := r.Vector("v", 2)
	h := r.Histogram("h")
	c.Add(5)
	v.Inc(0)
	h.Observe(7)
	r.Reset()
	if c.Value() != 0 || v.Values()[0] != 0 || h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset left state behind")
	}
	// Handles stay live after Reset.
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("counter dead after Reset")
	}
	if r.Counter("c") != c {
		t.Fatal("registration lost by Reset")
	}
}
