// Package metrics is the observability layer of the simulator: a
// low-overhead, allocation-free registry of named counters, fixed-size
// counter vectors, and power-of-two histograms that the coherence
// protocol (internal/coherence), the event engine (internal/sim), and
// the benchmark drivers (internal/workload, internal/apps) increment on
// their hot paths. Where internal/stats computes the *results* the
// paper reports (latency distributions, fairness indices), this package
// records *why* a cell produced its number: the transfer mix by data
// source, invalidations, CAS retries, directory queue depths — the
// per-event evidence behind the cache-line-bouncing model of MODEL.md
// §2 (see ARCHITECTURE.md, "Observability", for where it plugs in).
//
// Everything is built around two properties the harness depends on:
//
//   - Nil is off. A nil *Registry hands out nil handles, and every
//     handle method is a nil-receiver no-op, so instrumented code calls
//     Inc/Add/Record/Observe unconditionally and an uninstrumented run
//     pays one nil check per site — no branches on configuration flags,
//     no interface dispatch, zero allocations (verified by the
//     coherence and harness bench suites against BENCH_harness.json).
//   - Snapshots are deterministic and byte-exact under JSON. Snapshot
//     output is sorted by name, holds only integers, and survives a
//     Marshal/Unmarshal/Marshal cycle byte-identically, which is what
//     lets cell snapshots ride the internal/runlog resume cache: a
//     resumed run replays exactly the snapshot the fresh run recorded.
//
// Registries are single-threaded by design: one registry belongs to one
// simulation cell (one engine), mirroring the harness rule that
// parallelism lives across cells, never inside one.
package metrics

import (
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; a nil Counter discards increments.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Vector is a fixed-size array of counters addressed by a small integer
// index (a thread ID, a core). A nil Vector discards increments;
// out-of-range indices are ignored rather than panicking, so hot paths
// need no bounds bookkeeping of their own.
type Vector struct {
	vals []uint64
}

// Inc adds one to slot i.
func (v *Vector) Inc(i int) {
	if v != nil && i >= 0 && i < len(v.vals) {
		v.vals[i]++
	}
}

// Add adds n to slot i.
func (v *Vector) Add(i int, n uint64) {
	if v != nil && i >= 0 && i < len(v.vals) {
		v.vals[i] += n
	}
}

// Values returns the slots (nil for a nil vector). The slice is the
// vector's backing store; callers must not modify it.
func (v *Vector) Values() []uint64 {
	if v == nil {
		return nil
	}
	return v.vals
}

// histBuckets is one bucket per possible bit length of a uint64 (0..64):
// bucket b counts values whose bit length is b, i.e. values in
// [2^(b-1), 2^b), with bucket 0 holding exactly the zeros.
const histBuckets = 65

// Histogram counts integer observations in power-of-two buckets, plus
// exact count, sum, and max. Recording is a few instructions and never
// allocates; a nil Histogram discards observations. (internal/stats has
// a richer sim.Time histogram for result reporting; this one is the
// hot-path event variant.)
type Histogram struct {
	n, sum, max uint64
	buckets     [histBuckets]uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.buckets[bits.Len64(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the largest observation.
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// BucketLow returns the inclusive lower bound of bucket b.
func BucketLow(b int) uint64 {
	if b <= 0 {
		return 0
	}
	return 1 << (b - 1)
}

// Registry names and owns a cell's instruments. The zero value is not
// used; call New. A nil *Registry is the disabled state: its methods
// return nil handles whose operations are no-ops, so a single nil check
// at handle-creation time turns the whole layer off.
//
// Registration (Counter/Vector/Histogram) allocates and is meant for
// setup time; the returned handles are then free to operate. Asking for
// an already-registered name returns the existing instrument.
type Registry struct {
	counters map[string]*Counter
	vectors  map[string]*Vector
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		vectors:  map[string]*Vector{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Vector returns the named vector of n slots, creating it if needed. A
// vector re-requested with a larger n grows to it (slot values are
// kept); shrinking never happens.
func (r *Registry) Vector(name string, n int) *Vector {
	if r == nil {
		return nil
	}
	v, ok := r.vectors[name]
	if !ok {
		v = &Vector{vals: make([]uint64, n)}
		r.vectors[name] = v
	} else if n > len(v.vals) {
		grown := make([]uint64, n)
		copy(grown, v.vals)
		v.vals = grown
	}
	return v
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered instrument, keeping registrations and
// handles valid. Workloads call it at the end of warmup so snapshots
// cover exactly the measured window.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	for _, c := range r.counters {
		c.v = 0
	}
	for _, v := range r.vectors {
		for i := range v.vals {
			v.vals[i] = 0
		}
	}
	for _, h := range r.hists {
		*h = Histogram{}
	}
}

// CounterSnap is one counter's value in a Snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// VectorSnap is one vector's slots in a Snapshot.
type VectorSnap struct {
	Name   string   `json:"name"`
	Values []uint64 `json:"values"`
}

// BucketSnap is one non-empty histogram bucket: Low is the bucket's
// inclusive lower bound (a power of two, or 0), Count its population.
type BucketSnap struct {
	Low   uint64 `json:"low"`
	Count uint64 `json:"count"`
}

// HistSnap is one histogram's state in a Snapshot. Buckets holds only
// the non-empty buckets, in ascending Low order.
type HistSnap struct {
	Name    string       `json:"name"`
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Max     uint64       `json:"max"`
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// Mean returns Sum/Count (0 when empty).
func (h *HistSnap) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a registry's state frozen for transport: sorted by name,
// integers only, byte-exact under a JSON round trip. Cell results carry
// one (see workload.Result.Metrics), which is how snapshots persist
// through run manifests and survive resume.
type Snapshot struct {
	Counters []CounterSnap `json:"counters,omitempty"`
	Vectors  []VectorSnap  `json:"vectors,omitempty"`
	Hists    []HistSnap    `json:"hists,omitempty"`
}

// Snapshot freezes the registry's current state (nil for a nil
// registry, so callers can assign the result unconditionally).
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.v})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	for name, v := range r.vectors {
		vals := make([]uint64, len(v.vals))
		copy(vals, v.vals)
		s.Vectors = append(s.Vectors, VectorSnap{Name: name, Values: vals})
	}
	sort.Slice(s.Vectors, func(i, j int) bool { return s.Vectors[i].Name < s.Vectors[j].Name })
	for name, h := range r.hists {
		hs := HistSnap{Name: name, Count: h.n, Sum: h.sum, Max: h.max}
		for b, n := range h.buckets {
			if n > 0 {
				hs.Buckets = append(hs.Buckets, BucketSnap{Low: BucketLow(b), Count: n})
			}
		}
		s.Hists = append(s.Hists, hs)
	}
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	return s
}

// Counter returns the named counter's value from the snapshot (0, false
// when absent).
func (s *Snapshot) Counter(name string) (uint64, bool) {
	if s == nil {
		return 0, false
	}
	for i := range s.Counters {
		if s.Counters[i].Name == name {
			return s.Counters[i].Value, true
		}
	}
	return 0, false
}

// Hist returns the named histogram from the snapshot (nil when absent).
func (s *Snapshot) Hist(name string) *HistSnap {
	if s == nil {
		return nil
	}
	for i := range s.Hists {
		if s.Hists[i].Name == name {
			return &s.Hists[i]
		}
	}
	return nil
}

// Vector returns the named vector's values from the snapshot (nil when
// absent).
func (s *Snapshot) Vector(name string) []uint64 {
	if s == nil {
		return nil
	}
	for i := range s.Vectors {
		if s.Vectors[i].Name == name {
			return s.Vectors[i].Values
		}
	}
	return nil
}
