package metrics

// Well-known instrument names. Subsystems register under these so the
// harness's per-cell breakdown tables and tests can address them
// without string duplication. The scheme is "<layer>.<event>"; the
// coherence source suffixes match coherence.Source.String().
const (
	// Coherence layer (internal/coherence): line transfers by the data
	// source that served them, third-party invalidations paid by RFOs,
	// cross-socket transfers, and the directory's queueing behavior.
	CohTransferLocal  = "coh.transfer.local"
	CohTransferRemote = "coh.transfer.remote-cache"
	CohTransferLLC    = "coh.transfer.llc"
	CohTransferDRAM   = "coh.transfer.dram"
	CohInvalidations  = "coh.invalidations"
	CohCrossSocket    = "coh.cross_socket"
	// CohQueueDepth observes the line-queue depth at each enqueue (how
	// many requests the newcomer joined behind, including in-service).
	CohQueueDepth = "coh.queue_depth"
	// CohQueuedBehind observes, per granted request, how many other
	// requests were granted while it waited (arbitration bypasses).
	CohQueuedBehind = "coh.queued_behind"

	// Duration-weighted occupancy accumulators (picoseconds of busy
	// time), the inputs of the internal/bottleneck utilization rollup.
	// Each is a vector indexed by resource instance: CohDirBusy by home
	// node (directory/LLC-slice processing time), CohLineBusy by line ID
	// (time the line's serialization point was held: transfer plus
	// execution occupancy; only the first 64 line IDs are tracked, which
	// covers every shared serialization point — private low-contention
	// lines live at IDs >= 1e6 and are deliberately dropped by the
	// vector's bounds check), CohLinkBusy by interconnect link (with
	// finite bandwidth on, the reservation time per message; otherwise
	// the transit time, HopLatency times the link's hop weight).
	CohDirBusy  = "coh.occ.dir_busy_ps"
	CohLineBusy = "coh.occ.line_busy_ps"
	CohLinkBusy = "coh.occ.link_busy_ps"

	// Event engine (internal/sim): events executed in the measured
	// window and the event queue's high-water mark over the whole run.
	// SimQueueTime is the time integral of the pending-event count over
	// the measured window (picosecond-events); divided by the window it
	// is the mean number of outstanding events, the engine-pressure
	// figure that corroborates a saturating coherence resource.
	SimEvents    = "sim.events"
	SimQueuePeak = "sim.queue_peak"
	SimQueueTime = "sim.queue_time_ps"

	// Benchmark drivers (internal/workload, internal/apps): successful
	// operations per thread (the fairness evidence), CAS retry events,
	// and the issue mix of read-write workloads. WorkWindow records the
	// measured window's length in picoseconds — the denominator of every
	// busy-fraction in the bottleneck rollup — so a snapshot is
	// self-contained: utilization is computable from the snapshot alone.
	WorkThreadOps   = "work.thread_ops"
	WorkCASFailures = "work.cas_failures"
	WorkReads       = "work.reads"
	WorkRMWs        = "work.rmws"
	WorkWindow      = "work.window_ps"
)
