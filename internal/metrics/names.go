package metrics

// Well-known instrument names. Subsystems register under these so the
// harness's per-cell breakdown tables and tests can address them
// without string duplication. The scheme is "<layer>.<event>"; the
// coherence source suffixes match coherence.Source.String().
const (
	// Coherence layer (internal/coherence): line transfers by the data
	// source that served them, third-party invalidations paid by RFOs,
	// cross-socket transfers, and the directory's queueing behavior.
	CohTransferLocal  = "coh.transfer.local"
	CohTransferRemote = "coh.transfer.remote-cache"
	CohTransferLLC    = "coh.transfer.llc"
	CohTransferDRAM   = "coh.transfer.dram"
	CohInvalidations  = "coh.invalidations"
	CohCrossSocket    = "coh.cross_socket"
	// CohQueueDepth observes the line-queue depth at each enqueue (how
	// many requests the newcomer joined behind, including in-service).
	CohQueueDepth = "coh.queue_depth"
	// CohQueuedBehind observes, per granted request, how many other
	// requests were granted while it waited (arbitration bypasses).
	CohQueuedBehind = "coh.queued_behind"

	// Event engine (internal/sim): events executed in the measured
	// window and the event queue's high-water mark over the whole run.
	SimEvents    = "sim.events"
	SimQueuePeak = "sim.queue_peak"

	// Benchmark drivers (internal/workload, internal/apps): successful
	// operations per thread (the fairness evidence), CAS retry events,
	// and the issue mix of read-write workloads.
	WorkThreadOps   = "work.thread_ops"
	WorkCASFailures = "work.cas_failures"
	WorkReads       = "work.reads"
	WorkRMWs        = "work.rmws"
)
