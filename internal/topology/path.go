package topology

// Router is implemented by topologies that can enumerate the links a
// message traverses, enabling finite-bandwidth simulation: each link is
// a serially-occupied resource. Link IDs are dense in [0, Links()).
//
// Path returns the link sequence from a to b in traversal order; the
// empty path means a == b. Paths are deterministic (dimension-ordered /
// shortest-way routing), consistent with how Hops counts distance:
// len(Path(a,b)) == Hops(a,b) everywhere except DualRing's inter-socket
// link, which Hops weights as LinkHops hop-latencies but which is a
// single channel resource.
type Router interface {
	Topology
	// Links is the number of link resources.
	Links() int
	// Path lists the links a message from a to b crosses, in order.
	Path(a, b int) []int
	// LinkTransit is the hop-latency multiple for crossing one link
	// (1 for on-die links; DualRing's inter-socket channel returns its
	// LinkHops weight so path transit equals Hops everywhere).
	LinkTransit(link int) int
}

// Ring links: link i joins stop i and stop (i+1) mod N; a message takes
// the shorter way around.
func (r *Ring) Links() int { return r.N }

// LinkTransit implements Router.
func (r *Ring) LinkTransit(int) int { return 1 }

// Path implements Router.
func (r *Ring) Path(a, b int) []int {
	checkNode(r, a)
	checkNode(r, b)
	return ringPath(a, b, r.N, 0)
}

// ringPath walks the shorter way around an n-stop ring whose link IDs
// start at base (link base+i joins stops i and i+1 mod n).
func ringPath(a, b, n, base int) []int {
	if a == b {
		return nil
	}
	// Distance going clockwise (increasing indices).
	cw := (b - a + n) % n
	var out []int
	if cw <= n-cw {
		for s := a; s != b; s = (s + 1) % n {
			out = append(out, base+s)
		}
	} else {
		for s := a; s != b; s = (s - 1 + n) % n {
			out = append(out, base+(s-1+n)%n)
		}
	}
	return out
}

// DualRing links: socket 0's ring links are [0, PerSocket), socket 1's
// are [PerSocket, 2*PerSocket), and the inter-socket link is the last
// ID. (The link's LinkHops hop-equivalent cost stays a latency matter;
// as a resource it is a single channel.)
func (d *DualRing) Links() int { return 2*d.PerSocket + 1 }

// LinkTransit implements Router: the inter-socket channel is LinkHops
// hop-latencies long.
func (d *DualRing) LinkTransit(link int) int {
	if link == 2*d.PerSocket {
		return d.LinkHops
	}
	return 1
}

// Path implements Router.
func (d *DualRing) Path(a, b int) []int {
	checkNode(d, a)
	checkNode(d, b)
	sa, sb := d.socket(a), d.socket(b)
	la, lb := d.local(a), d.local(b)
	if sa == sb {
		return ringPath(la, lb, d.PerSocket, sa*d.PerSocket)
	}
	link := 2 * d.PerSocket
	out := ringPath(la, 0, d.PerSocket, sa*d.PerSocket)
	out = append(out, link)
	return append(out, ringPath(0, lb, d.PerSocket, sb*d.PerSocket)...)
}

// Mesh2D links: horizontal link (x,y)->(x+1,y) has ID y*(Cols-1)+x;
// vertical link (x,y)->(x,y+1) has ID H + x*(Rows-1)+y where H is the
// horizontal link count. Routing is X-then-Y, matching Hops.
func (m *Mesh2D) Links() int {
	return m.Rows*(m.Cols-1) + m.Cols*(m.Rows-1)
}

// LinkTransit implements Router.
func (m *Mesh2D) LinkTransit(int) int { return 1 }

// Path implements Router.
func (m *Mesh2D) Path(a, b int) []int {
	checkNode(m, a)
	checkNode(m, b)
	ax, ay := m.Coord(a)
	bx, by := m.Coord(b)
	h := m.Rows * (m.Cols - 1)
	var out []int
	for x := ax; x < bx; x++ {
		out = append(out, ay*(m.Cols-1)+x)
	}
	for x := ax; x > bx; x-- {
		out = append(out, ay*(m.Cols-1)+x-1)
	}
	for y := ay; y < by; y++ {
		out = append(out, h+bx*(m.Rows-1)+y)
	}
	for y := ay; y > by; y-- {
		out = append(out, h+bx*(m.Rows-1)+y-1)
	}
	return out
}

// Crossbar links: one port per node; a transfer crosses the source and
// destination ports (the switch core is non-blocking).
func (c *Crossbar) Links() int { return c.N }

// LinkTransit implements Router.
func (c *Crossbar) LinkTransit(int) int { return 1 }

// Path implements Router.
func (c *Crossbar) Path(a, b int) []int {
	checkNode(c, a)
	checkNode(c, b)
	if a == b {
		return nil
	}
	return []int{a} // charge the source port; Hops(a,b) == 1
}
