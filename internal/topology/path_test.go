package topology

import "testing"

func routers() []Router {
	return []Router{NewRing(8), NewDualRing(6, 2), NewMesh2D(4, 3), NewCrossbar(5)}
}

func TestPathLengthMatchesHops(t *testing.T) {
	for _, r := range routers() {
		for a := 0; a < r.Nodes(); a++ {
			for b := 0; b < r.Nodes(); b++ {
				p := r.Path(a, b)
				want := r.Hops(a, b)
				if d, ok := r.(*DualRing); ok && d.CrossSocket(a, b) {
					// The inter-socket link is one resource but
					// LinkHops hop-latencies.
					want = want - d.LinkHops + 1
				}
				if len(p) != want {
					t.Errorf("%s: len(Path(%d,%d)) = %d, want %d", r.Name(), a, b, len(p), want)
				}
			}
		}
	}
}

func TestPathLinkIDsInRange(t *testing.T) {
	for _, r := range routers() {
		for a := 0; a < r.Nodes(); a++ {
			for b := 0; b < r.Nodes(); b++ {
				for _, l := range r.Path(a, b) {
					if l < 0 || l >= r.Links() {
						t.Fatalf("%s: link %d out of [0,%d)", r.Name(), l, r.Links())
					}
				}
			}
		}
	}
}

func TestPathEmptyForSelf(t *testing.T) {
	for _, r := range routers() {
		if len(r.Path(3, 3)) != 0 {
			t.Errorf("%s: self path not empty", r.Name())
		}
	}
}

func TestRingPathDirections(t *testing.T) {
	r := NewRing(8)
	// 0 -> 2 clockwise: links 0,1.
	p := r.Path(0, 2)
	if len(p) != 2 || p[0] != 0 || p[1] != 1 {
		t.Fatalf("Path(0,2) = %v", p)
	}
	// 0 -> 6 counter-clockwise: links 7,6.
	p = r.Path(0, 6)
	if len(p) != 2 || p[0] != 7 || p[1] != 6 {
		t.Fatalf("Path(0,6) = %v", p)
	}
}

func TestDualRingPathCrossesTheLink(t *testing.T) {
	d := NewDualRing(6, 2)
	link := 2 * d.PerSocket
	p := d.Path(2, 9) // socket 0 local 2 -> socket 1 local 3
	foundLink := false
	for _, l := range p {
		if l == link {
			foundLink = true
		}
	}
	if !foundLink {
		t.Fatalf("cross-socket path %v missing inter-socket link %d", p, link)
	}
	// Same-socket paths never touch it.
	for _, l := range d.Path(1, 4) {
		if l == link {
			t.Fatal("same-socket path used the inter-socket link")
		}
	}
}

func TestMeshPathIsXY(t *testing.T) {
	m := NewMesh2D(4, 3)
	// (0,0) -> (2,1): two horizontal then one vertical link.
	p := m.Path(0, 6)
	if len(p) != 3 {
		t.Fatalf("path = %v", p)
	}
	h := m.Rows * (m.Cols - 1)
	if p[0] >= h || p[1] >= h || p[2] < h {
		t.Fatalf("not X-then-Y: %v (h=%d)", p, h)
	}
	// Reverse direction reuses the same undirected links.
	q := m.Path(6, 0)
	if len(q) != 3 {
		t.Fatalf("reverse path = %v", q)
	}
}

func TestMeshPathLinkUniqueness(t *testing.T) {
	// A shortest path never reuses a link.
	m := NewMesh2D(5, 5)
	for a := 0; a < m.Nodes(); a += 3 {
		for b := 0; b < m.Nodes(); b += 2 {
			seen := map[int]bool{}
			for _, l := range m.Path(a, b) {
				if seen[l] {
					t.Fatalf("Path(%d,%d) repeats link %d", a, b, l)
				}
				seen[l] = true
			}
		}
	}
}
