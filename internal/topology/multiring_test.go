package topology

import "testing"

func TestMultiRingMatchesDualRing(t *testing.T) {
	// With 2 sockets, MultiRing must agree with DualRing everywhere.
	mr := NewMultiRing(2, 6, 2)
	dr := NewDualRing(6, 2)
	if mr.Nodes() != dr.Nodes() {
		t.Fatal("node counts differ")
	}
	for a := 0; a < mr.Nodes(); a++ {
		for b := 0; b < mr.Nodes(); b++ {
			if mr.Hops(a, b) != dr.Hops(a, b) {
				t.Fatalf("Hops(%d,%d): multi %d vs dual %d", a, b, mr.Hops(a, b), dr.Hops(a, b))
			}
			if mr.CrossSocket(a, b) != dr.CrossSocket(a, b) {
				t.Fatalf("CrossSocket(%d,%d) differs", a, b)
			}
		}
	}
}

func TestMultiRingFourSockets(t *testing.T) {
	m := NewMultiRing(4, 4, 2)
	if m.Nodes() != 16 {
		t.Fatalf("nodes = %d", m.Nodes())
	}
	// Any two sockets are one channel apart (full mesh): socket 0
	// stop 0 to socket 3 stop 0 = LinkHops only.
	if got := m.Hops(0, 12); got != 2 {
		t.Fatalf("Hops(0,12) = %d, want 2", got)
	}
	if !m.CrossSocket(0, 12) || m.CrossSocket(1, 2) {
		t.Fatal("cross-socket classification")
	}
	// Symmetry.
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			if m.Hops(a, b) != m.Hops(b, a) {
				t.Fatalf("asymmetric at (%d,%d)", a, b)
			}
		}
	}
}

func TestMultiRingPaths(t *testing.T) {
	m := NewMultiRing(3, 4, 2)
	// Link count: 3*4 ring links + 3 pair channels.
	if m.Links() != 15 {
		t.Fatalf("links = %d, want 15", m.Links())
	}
	// Distinct socket pairs get distinct channels.
	seen := map[int]bool{}
	for x := 0; x < 3; x++ {
		for y := x + 1; y < 3; y++ {
			l := m.pairLink(x, y)
			if l < 12 || l >= 15 {
				t.Fatalf("pairLink(%d,%d) = %d out of range", x, y, l)
			}
			if seen[l] {
				t.Fatalf("pairLink collision at %d", l)
			}
			seen[l] = true
			if m.pairLink(y, x) != l {
				t.Fatal("pairLink not symmetric")
			}
		}
	}
	// Path transit weights sum to Hops.
	for a := 0; a < m.Nodes(); a++ {
		for b := 0; b < m.Nodes(); b++ {
			sum := 0
			for _, l := range m.Path(a, b) {
				sum += m.LinkTransit(l)
			}
			if sum != m.Hops(a, b) {
				t.Fatalf("Path weight %d != Hops %d for (%d,%d)", sum, m.Hops(a, b), a, b)
			}
		}
	}
}

func TestMultiRingConstructorPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewMultiRing(0, 4, 1) },
		func() { NewMultiRing(2, 0, 1) },
		func() { NewMultiRing(2, 4, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d accepted", i)
				}
			}()
			f()
		}()
	}
}
