package topology

import (
	"strings"
	"testing"
)

// builderCases enumerates, per registered builder, parameter sets that
// span the shapes the machine specs use. Every registered kind must
// appear here, so a new builder cannot land without property coverage.
var builderCases = map[string][]Params{
	"ring":      {{"nodes": 1}, {"nodes": 7}, {"nodes": 18}},
	"dualring":  {{"persocket": 18, "linkhops": 2}, {"persocket": 3}, {"persocket": 1, "linkhops": 1}},
	"mesh":      {{"cols": 6, "rows": 6}, {"cols": 1, "rows": 9}, {"cols": 6, "rows": 5}},
	"crossbar":  {{"nodes": 8}, {"nodes": 1}, {"nodes": 33}},
	"multiring": {{"sockets": 4, "persocket": 18, "linkhops": 2}, {"sockets": 1, "persocket": 5}},
	"star":      {{"leaves": 8, "hubhops": 2, "socketperleaf": 1}, {"leaves": 3}, {"leaves": 2, "hubhops": 5}},
}

// TestEveryBuilderHasCases pins the registry and the case table to each
// other in both directions.
func TestEveryBuilderHasCases(t *testing.T) {
	for _, kind := range BuilderKinds() {
		if len(builderCases[kind]) == 0 {
			t.Errorf("registered builder %q has no property-test cases", kind)
		}
	}
	for kind := range builderCases {
		if _, err := Build(kind, builderCases[kind][0]); err != nil {
			t.Errorf("case table names unbuildable kind %q: %v", kind, err)
		}
	}
	if len(BuilderKinds()) < 4 {
		t.Fatalf("only %d topology builders registered, want >= 4: %v", len(BuilderKinds()), BuilderKinds())
	}
}

// TestBuilderMetricProperties checks, for every registered builder and
// parameter set, the properties the simulator and the analytical model
// rely on: zero self-distance, symmetry, nonzero distance between
// distinct nodes (connectivity with finite, positive hop counts),
// symmetric cross-socket classification, and sane aggregate metrics
// (MeanHops within [min, max] pairwise distance, CrossSocketFraction in
// [0, 1]).
func TestBuilderMetricProperties(t *testing.T) {
	for kind, cases := range builderCases {
		for _, params := range cases {
			topo, err := Build(kind, params)
			if err != nil {
				t.Fatalf("Build(%s, %v): %v", kind, params, err)
			}
			n := topo.Nodes()
			if n <= 0 {
				t.Fatalf("%s: Nodes() = %d", topo.Name(), n)
			}
			minH, maxH := int(^uint(0)>>1), 0
			for a := 0; a < n; a++ {
				if h := topo.Hops(a, a); h != 0 {
					t.Fatalf("%s: Hops(%d,%d) = %d, want 0", topo.Name(), a, a, h)
				}
				if topo.CrossSocket(a, a) {
					t.Fatalf("%s: CrossSocket(%d,%d) = true", topo.Name(), a, a)
				}
				for b := a + 1; b < n; b++ {
					h := topo.Hops(a, b)
					if h <= 0 {
						t.Fatalf("%s: Hops(%d,%d) = %d, want > 0 between distinct nodes", topo.Name(), a, b, h)
					}
					if back := topo.Hops(b, a); back != h {
						t.Fatalf("%s: asymmetric hops (%d,%d): %d vs %d", topo.Name(), a, b, h, back)
					}
					if topo.CrossSocket(a, b) != topo.CrossSocket(b, a) {
						t.Fatalf("%s: asymmetric CrossSocket(%d,%d)", topo.Name(), a, b)
					}
					if h < minH {
						minH = h
					}
					if h > maxH {
						maxH = h
					}
				}
			}
			mean := MeanHops(topo)
			if n < 2 {
				if mean != 0 {
					t.Fatalf("%s: MeanHops = %v on a single node", topo.Name(), mean)
				}
			} else if mean < float64(minH) || mean > float64(maxH) {
				t.Fatalf("%s: MeanHops = %v outside pairwise range [%d, %d]", topo.Name(), mean, minH, maxH)
			}
			all := make([]int, n)
			for i := range all {
				all[i] = i
			}
			if f := CrossSocketFraction(topo, all); f < 0 || f > 1 {
				t.Fatalf("%s: CrossSocketFraction = %v outside [0,1]", topo.Name(), f)
			}
		}
	}
}

// TestBuilderRouterConsistency checks that every builder whose product
// routes (implements Router) keeps path transit equal to Hops — the
// invariant the finite-bandwidth network model depends on.
func TestBuilderRouterConsistency(t *testing.T) {
	for kind, cases := range builderCases {
		for _, params := range cases {
			topo, err := Build(kind, params)
			if err != nil {
				t.Fatal(err)
			}
			r, ok := topo.(Router)
			if !ok {
				continue
			}
			n := topo.Nodes()
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					transit := 0
					for _, link := range r.Path(a, b) {
						if link < 0 || link >= r.Links() {
							t.Fatalf("%s: path link %d outside [0,%d)", topo.Name(), link, r.Links())
						}
						transit += r.LinkTransit(link)
					}
					if transit != topo.Hops(a, b) {
						t.Fatalf("%s: path transit %d != Hops(%d,%d) = %d", topo.Name(), transit, a, b, topo.Hops(a, b))
					}
				}
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("warp-bus", Params{"nodes": 4}); err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Errorf("unknown kind error should list registered kinds, got %v", err)
	}
	if _, err := Build("ring", nil); err == nil || !strings.Contains(err.Error(), "nodes") {
		t.Errorf("missing required parameter should be named, got %v", err)
	}
	if _, err := Build("ring", Params{"nodes": 4, "spokes": 2}); err == nil || !strings.Contains(err.Error(), "spokes") {
		t.Errorf("unknown parameter should be named, got %v", err)
	}
	if _, err := Build("mesh", Params{"cols": 0, "rows": 3}); err == nil {
		t.Error("zero dimension accepted")
	}
	if _, err := Build("star", Params{"leaves": 8, "socketperleaf": 3}); err == nil {
		t.Error("non-boolean socketperleaf accepted")
	}
	if _, err := Build("star", Params{"leaves": 8, "hubhops": 0}); err == nil {
		t.Error("zero hubhops accepted")
	}
}

// TestBuildDefaultsApplied checks optional parameters fall back to
// their declared defaults (dualring's 2-hop link, star's 1-hop hub).
func TestBuildDefaultsApplied(t *testing.T) {
	topo, err := Build("dualring", Params{"persocket": 18})
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := topo.(*DualRing); !ok || d.LinkHops != 2 {
		t.Fatalf("dualring default linkhops: got %#v", topo)
	}
	topo, err = Build("star", Params{"leaves": 4})
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := topo.(*Star); !ok || s.HubHops != 1 || s.SocketPerLeaf {
		t.Fatalf("star defaults: got %#v", topo)
	}
}

func TestStarShape(t *testing.T) {
	s := NewStar(8, 2, true)
	if s.Nodes() != 8 {
		t.Fatalf("nodes = %d", s.Nodes())
	}
	if h := s.Hops(0, 5); h != 4 {
		t.Fatalf("Hops(0,5) = %d, want 4 (up 2, down 2)", h)
	}
	if !s.CrossSocket(0, 5) || s.CrossSocket(3, 3) {
		t.Fatal("socket-per-leaf classification wrong")
	}
	if NewStar(8, 2, false).CrossSocket(0, 5) {
		t.Fatal("CrossSocket should be false without socketperleaf")
	}
	if got := MeanHops(s); got != 4 {
		t.Fatalf("MeanHops = %v, want uniform 4", got)
	}
}

func TestParamsClone(t *testing.T) {
	p := Params{"nodes": 4}
	q := p.Clone()
	q["nodes"] = 9
	if p["nodes"] != 4 {
		t.Fatal("Clone aliased the map")
	}
	if Params(nil).Clone() != nil {
		t.Fatal("nil Clone should stay nil")
	}
}
