package topology

import "fmt"

// MultiRing generalizes DualRing to S sockets: each socket is a
// bidirectional ring of PerSocket stops, and the sockets' stop-0
// nodes are joined by a fully connected inter-socket fabric (one
// point-to-point channel per socket pair, the QPI/UPI full-mesh of
// 4-socket Xeon systems). It exists for the socket-count scaling
// extrapolation (experiment F17): the paper measures two sockets; the
// model predicts what more sockets would do.
type MultiRing struct {
	Sockets   int
	PerSocket int
	LinkHops  int // hop-equivalent weight of each inter-socket channel
}

// NewMultiRing returns an s-socket ring-of-rings.
func NewMultiRing(sockets, perSocket, linkHops int) *MultiRing {
	if sockets <= 0 || perSocket <= 0 {
		panic("topology: multiring needs positive sockets and stops")
	}
	if linkHops < 0 {
		panic("topology: negative link hops")
	}
	return &MultiRing{Sockets: sockets, PerSocket: perSocket, LinkHops: linkHops}
}

func (m *MultiRing) Name() string {
	return fmt.Sprintf("multiring-%dx%d", m.Sockets, m.PerSocket)
}

func (m *MultiRing) Nodes() int { return m.Sockets * m.PerSocket }

func (m *MultiRing) socket(n int) int { return n / m.PerSocket }
func (m *MultiRing) local(n int) int  { return n % m.PerSocket }

func (m *MultiRing) ringHops(a, b int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if alt := m.PerSocket - d; alt < d {
		d = alt
	}
	return d
}

// Hops implements Topology.
func (m *MultiRing) Hops(a, b int) int {
	checkNode(m, a)
	checkNode(m, b)
	sa, sb := m.socket(a), m.socket(b)
	la, lb := m.local(a), m.local(b)
	if sa == sb {
		return m.ringHops(la, lb)
	}
	// Ride to the fabric stop, cross the direct channel, ride out.
	return m.ringHops(la, 0) + m.LinkHops + m.ringHops(0, lb)
}

// CrossSocket implements Topology.
func (m *MultiRing) CrossSocket(a, b int) bool {
	checkNode(m, a)
	checkNode(m, b)
	return m.socket(a) != m.socket(b)
}

// Links implements Router: each socket's ring links come first
// (PerSocket links per socket), then one channel per socket pair.
func (m *MultiRing) Links() int {
	return m.Sockets*m.PerSocket + m.Sockets*(m.Sockets-1)/2
}

// pairLink returns the link ID of the inter-socket channel between
// sockets x < y.
func (m *MultiRing) pairLink(x, y int) int {
	if x > y {
		x, y = y, x
	}
	// Index of pair (x, y) in lexicographic order.
	idx := x*(2*m.Sockets-x-1)/2 + (y - x - 1)
	return m.Sockets*m.PerSocket + idx
}

// Path implements Router.
func (m *MultiRing) Path(a, b int) []int {
	checkNode(m, a)
	checkNode(m, b)
	sa, sb := m.socket(a), m.socket(b)
	la, lb := m.local(a), m.local(b)
	if sa == sb {
		return ringPath(la, lb, m.PerSocket, sa*m.PerSocket)
	}
	out := ringPath(la, 0, m.PerSocket, sa*m.PerSocket)
	out = append(out, m.pairLink(sa, sb))
	return append(out, ringPath(0, lb, m.PerSocket, sb*m.PerSocket)...)
}

// LinkTransit implements Router.
func (m *MultiRing) LinkTransit(link int) int {
	if link >= m.Sockets*m.PerSocket {
		return m.LinkHops
	}
	return 1
}
