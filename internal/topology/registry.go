package topology

import (
	"fmt"
	"sort"
	"sync"
)

// This file is the topology builder registry: every interconnect shape
// this package implements is constructible by name from a flat integer
// parameter map. Machine specs (internal/machine) name their topology
// this way, so adding a machine on an existing interconnect — or
// sweeping interconnect parameters — needs no new Go code. New shapes
// register a BuilderFunc in init; Build validates the parameters before
// constructing, so a malformed spec surfaces as an error, never as a
// constructor panic.

// Params carries a builder's integer parameters, keyed by the
// lower-case names the builder declares. Boolean parameters are 0/1.
// The flat map keeps specs trivially serializable and their canonical
// JSON encoding deterministic (encoding/json sorts map keys).
type Params map[string]int

// BuilderFunc constructs a topology from validated parameters.
type BuilderFunc func(p Params) (Topology, error)

// builder pairs a constructor with its parameter schema: required
// parameter names, and optional ones with their defaults.
type builder struct {
	required []string
	optional map[string]int
	build    BuilderFunc
}

var (
	regMu    sync.RWMutex
	builders = map[string]builder{}
)

// RegisterBuilder adds a named topology builder. required lists the
// parameter names Build demands; optional maps the remaining accepted
// names to their defaults. Duplicate kinds panic: builders register at
// init time, so a collision is a programming error.
func RegisterBuilder(kind string, required []string, optional map[string]int, b BuilderFunc) {
	regMu.Lock()
	defer regMu.Unlock()
	if kind == "" || b == nil {
		panic("topology: builder needs a kind and a BuilderFunc")
	}
	if _, dup := builders[kind]; dup {
		panic(fmt.Sprintf("topology: duplicate builder %q", kind))
	}
	builders[kind] = builder{required: required, optional: optional, build: b}
}

// BuilderKinds returns the registered builder names, sorted.
func BuilderKinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(builders))
	for k := range builders {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Build constructs the named topology from p. Unknown kinds, unknown
// parameter names, and missing required parameters are errors that name
// what was expected — a machine spec file is user input, and a typo
// must explain itself.
func Build(kind string, p Params) (Topology, error) {
	regMu.RLock()
	b, ok := builders[kind]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("topology: unknown kind %q (registered: %v)", kind, BuilderKinds())
	}
	known := map[string]bool{}
	full := Params{}
	for _, name := range b.required {
		known[name] = true
		v, present := p[name]
		if !present {
			return nil, fmt.Errorf("topology %s: missing required parameter %q (required: %v)", kind, name, b.required)
		}
		full[name] = v
	}
	for name, def := range b.optional {
		known[name] = true
		if v, present := p[name]; present {
			full[name] = v
		} else {
			full[name] = def
		}
	}
	for name := range p {
		if !known[name] {
			return nil, fmt.Errorf("topology %s: unknown parameter %q (required: %v, optional: %v)",
				kind, name, b.required, optionalNames(b.optional))
		}
	}
	return b.build(full)
}

func optionalNames(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// positive validates that a parameter is > 0.
func positive(kind, name string, v int) error {
	if v <= 0 {
		return fmt.Errorf("topology %s: parameter %q = %d (want > 0)", kind, name, v)
	}
	return nil
}

// nonNegative validates that a parameter is >= 0.
func nonNegative(kind, name string, v int) error {
	if v < 0 {
		return fmt.Errorf("topology %s: parameter %q = %d (want >= 0)", kind, name, v)
	}
	return nil
}

func init() {
	// Single bidirectional ring (idealized single-socket Xeon uncore).
	RegisterBuilder("ring", []string{"nodes"}, nil, func(p Params) (Topology, error) {
		if err := positive("ring", "nodes", p["nodes"]); err != nil {
			return nil, err
		}
		return NewRing(p["nodes"]), nil
	})
	// Two rings bridged by a point-to-point link (two-socket Xeon E5).
	RegisterBuilder("dualring", []string{"persocket"}, map[string]int{"linkhops": 2}, func(p Params) (Topology, error) {
		if err := positive("dualring", "persocket", p["persocket"]); err != nil {
			return nil, err
		}
		if err := nonNegative("dualring", "linkhops", p["linkhops"]); err != nil {
			return nil, err
		}
		return NewDualRing(p["persocket"], p["linkhops"]), nil
	})
	// 2D mesh with dimension-ordered routing (KNL tiles, Xeon Scalable).
	RegisterBuilder("mesh", []string{"cols", "rows"}, nil, func(p Params) (Topology, error) {
		if err := positive("mesh", "cols", p["cols"]); err != nil {
			return nil, err
		}
		if err := positive("mesh", "rows", p["rows"]); err != nil {
			return nil, err
		}
		return NewMesh2D(p["cols"], p["rows"]), nil
	})
	// Ideal fully-connected crossbar (model ablations).
	RegisterBuilder("crossbar", []string{"nodes"}, nil, func(p Params) (Topology, error) {
		if err := positive("crossbar", "nodes", p["nodes"]); err != nil {
			return nil, err
		}
		return NewCrossbar(p["nodes"]), nil
	})
	// S sockets of rings on a full-mesh inter-socket fabric (4S Xeon).
	RegisterBuilder("multiring", []string{"sockets", "persocket"}, map[string]int{"linkhops": 2}, func(p Params) (Topology, error) {
		if err := positive("multiring", "sockets", p["sockets"]); err != nil {
			return nil, err
		}
		if err := positive("multiring", "persocket", p["persocket"]); err != nil {
			return nil, err
		}
		if err := nonNegative("multiring", "linkhops", p["linkhops"]); err != nil {
			return nil, err
		}
		return NewMultiRing(p["sockets"], p["persocket"], p["linkhops"]), nil
	})
	// Two-level hierarchical star: leaf domains bridged through a hub
	// (EPYC CCDs through an IO die). socketperleaf=1 charges the
	// cross-socket penalty on every leaf-to-leaf transfer.
	RegisterBuilder("star", []string{"leaves"}, map[string]int{"hubhops": 1, "socketperleaf": 0}, func(p Params) (Topology, error) {
		if err := positive("star", "leaves", p["leaves"]); err != nil {
			return nil, err
		}
		if err := positive("star", "hubhops", p["hubhops"]); err != nil {
			return nil, err
		}
		if v := p["socketperleaf"]; v != 0 && v != 1 {
			return nil, fmt.Errorf("topology star: parameter \"socketperleaf\" = %d (want 0 or 1)", v)
		}
		return NewStar(p["leaves"], p["hubhops"], p["socketperleaf"] == 1), nil
	})
}

// Clone returns a copy of p (nil stays nil); machine specs hand their
// parameter maps around and must not alias.
func (p Params) Clone() Params {
	if p == nil {
		return nil
	}
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}
