package topology

import (
	"testing"
	"testing/quick"
)

func TestRingHops(t *testing.T) {
	r := NewRing(8)
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 4, 4}, {0, 5, 3}, {0, 7, 1}, {3, 6, 3}, {6, 3, 3},
	}
	for _, c := range cases {
		if got := r.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if r.CrossSocket(0, 7) {
		t.Error("single ring should never cross sockets")
	}
}

func TestRingSymmetryProperty(t *testing.T) {
	r := NewRing(18)
	if err := quick.Check(func(a, b uint8) bool {
		x, y := int(a)%18, int(b)%18
		return r.Hops(x, y) == r.Hops(y, x)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRingMaxDistance(t *testing.T) {
	r := NewRing(18)
	for a := 0; a < 18; a++ {
		for b := 0; b < 18; b++ {
			if h := r.Hops(a, b); h > 9 {
				t.Fatalf("Hops(%d,%d)=%d exceeds n/2", a, b, h)
			}
		}
	}
}

func TestDualRing(t *testing.T) {
	d := NewDualRing(18, 4)
	if d.Nodes() != 36 {
		t.Fatalf("Nodes = %d", d.Nodes())
	}
	// Same socket: plain ring distance.
	if got := d.Hops(2, 5); got != 3 {
		t.Errorf("same-socket Hops(2,5) = %d, want 3", got)
	}
	// Cross socket: to link stop + link + from link stop.
	// Node 2 (socket 0, local 2) -> node 23 (socket 1, local 5):
	// 2 + 4 + 5 = 11.
	if got := d.Hops(2, 23); got != 11 {
		t.Errorf("cross-socket Hops(2,23) = %d, want 11", got)
	}
	if !d.CrossSocket(2, 23) {
		t.Error("CrossSocket(2,23) = false")
	}
	if d.CrossSocket(2, 17) {
		t.Error("CrossSocket(2,17) = true within socket 0")
	}
	// Link stops themselves.
	if got := d.Hops(0, 18); got != 4 {
		t.Errorf("Hops(0,18) = %d, want link hops 4", got)
	}
}

func TestDualRingSymmetry(t *testing.T) {
	d := NewDualRing(18, 4)
	for a := 0; a < d.Nodes(); a++ {
		for b := 0; b < d.Nodes(); b++ {
			if d.Hops(a, b) != d.Hops(b, a) {
				t.Fatalf("asymmetric: Hops(%d,%d)=%d Hops(%d,%d)=%d",
					a, b, d.Hops(a, b), b, a, d.Hops(b, a))
			}
		}
	}
}

func TestDualRingCrossAlwaysCostlier(t *testing.T) {
	d := NewDualRing(18, 4)
	// Minimum cross-socket distance must exceed zero and include the link.
	minCross := 1 << 30
	for a := 0; a < 18; a++ {
		for b := 18; b < 36; b++ {
			if h := d.Hops(a, b); h < minCross {
				minCross = h
			}
		}
	}
	if minCross < d.LinkHops {
		t.Fatalf("min cross-socket hops %d < link hops %d", minCross, d.LinkHops)
	}
}

func TestMesh2D(t *testing.T) {
	m := NewMesh2D(6, 6)
	if m.Nodes() != 36 {
		t.Fatalf("Nodes = %d", m.Nodes())
	}
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 5, 5},   // same row, far corner of row
		{0, 35, 10}, // opposite corner: 5 + 5
		{7, 8, 1},
		{7, 13, 1}, // one row down
	}
	for _, c := range cases {
		if got := m.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	x, y := m.Coord(13)
	if x != 1 || y != 2 {
		t.Errorf("Coord(13) = (%d,%d), want (1,2)", x, y)
	}
}

func TestMesh2DTriangleInequality(t *testing.T) {
	m := NewMesh2D(8, 8)
	r := []int{0, 9, 18, 27, 36, 45, 54, 63, 7, 56}
	for _, a := range r {
		for _, b := range r {
			for _, c := range r {
				if m.Hops(a, c) > m.Hops(a, b)+m.Hops(b, c) {
					t.Fatalf("triangle inequality violated: %d->%d->%d", a, b, c)
				}
			}
		}
	}
}

func TestCrossbar(t *testing.T) {
	c := NewCrossbar(10)
	if c.Hops(3, 3) != 0 {
		t.Error("self hop != 0")
	}
	for a := 0; a < 10; a++ {
		for b := 0; b < 10; b++ {
			if a != b && c.Hops(a, b) != 1 {
				t.Fatalf("Hops(%d,%d) != 1", a, b)
			}
		}
	}
}

func TestMeanHops(t *testing.T) {
	// Crossbar: every distinct pair is 1 hop.
	if got := MeanHops(NewCrossbar(7)); got != 1 {
		t.Errorf("crossbar MeanHops = %v, want 1", got)
	}
	// Ring of 4: distances from any node: 1,2,1 -> mean 4/3.
	if got := MeanHops(NewRing(4)); got < 1.333 || got > 1.334 {
		t.Errorf("ring4 MeanHops = %v, want 4/3", got)
	}
	if got := MeanHops(NewRing(1)); got != 0 {
		t.Errorf("degenerate MeanHops = %v, want 0", got)
	}
}

func TestMeanHopsAmong(t *testing.T) {
	m := NewMesh2D(4, 4)
	// Adjacent pair only.
	if got := MeanHopsAmong(m, []int{0, 1}); got != 1 {
		t.Errorf("MeanHopsAmong adjacent = %v, want 1", got)
	}
	if got := MeanHopsAmong(m, []int{5}); got != 0 {
		t.Errorf("MeanHopsAmong singleton = %v, want 0", got)
	}
	// Subset mean never exceeds diameter.
	sub := []int{0, 3, 12, 15}
	if got := MeanHopsAmong(m, sub); got > 6 {
		t.Errorf("MeanHopsAmong corners = %v exceeds diameter", got)
	}
}

func TestCrossSocketFraction(t *testing.T) {
	d := NewDualRing(4, 2)
	// Two nodes in different sockets: all ordered pairs cross.
	if got := CrossSocketFraction(d, []int{0, 4}); got != 1 {
		t.Errorf("fraction = %v, want 1", got)
	}
	if got := CrossSocketFraction(d, []int{0, 1}); got != 0 {
		t.Errorf("fraction = %v, want 0", got)
	}
	// Half/half: of the 4*3=12 ordered pairs, 2*2*2=8 cross.
	if got := CrossSocketFraction(d, []int{0, 1, 4, 5}); got < 0.66 || got > 0.67 {
		t.Errorf("fraction = %v, want 2/3", got)
	}
}

func TestPanicsOnBadNode(t *testing.T) {
	tops := []Topology{NewRing(4), NewDualRing(4, 1), NewMesh2D(2, 2), NewCrossbar(4)}
	for _, tp := range tops {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on out-of-range node", tp.Name())
				}
			}()
			tp.Hops(0, 99)
		}()
	}
}

func TestConstructorsPanicOnBadSize(t *testing.T) {
	cases := []func(){
		func() { NewRing(0) },
		func() { NewDualRing(0, 1) },
		func() { NewDualRing(4, -1) },
		func() { NewMesh2D(0, 3) },
		func() { NewMesh2D(3, 0) },
		func() { NewCrossbar(0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: constructor accepted invalid size", i)
				}
			}()
			f()
		}()
	}
}

func TestNames(t *testing.T) {
	if NewRing(8).Name() != "ring-8" {
		t.Error("ring name")
	}
	if NewDualRing(18, 4).Name() != "dualring-2x18" {
		t.Error("dualring name")
	}
	if NewMesh2D(6, 6).Name() != "mesh-6x6" {
		t.Error("mesh name")
	}
	if NewCrossbar(3).Name() != "crossbar-3" {
		t.Error("crossbar name")
	}
}
