// Package topology models on-chip and cross-socket interconnects at the
// granularity the paper's cache-line bouncing model needs: the number of
// network hops a cache-line transfer traverses between two nodes, and
// whether the transfer crosses a socket boundary.
//
// A "node" is a network stop (a tile holding one core on KNL, one core's
// ring stop on Xeon E5). The machine package maps hardware threads onto
// nodes; this package is purely geometric.
//
// In the model pipeline (ARCHITECTURE.md) both the simulator
// (internal/coherence) and the detailed analytical model
// (internal/core) read hop counts from here — the d(·,·) of MODEL.md
// §1. Every shape is also constructible by name from flat integer
// parameters through the builder registry (Build/RegisterBuilder), the
// hook declarative machine specs (internal/machine) select their
// interconnect with. ARCHITECTURE.md, "How do I add a new machine",
// covers adding a topology.
package topology

import "fmt"

// Topology describes an interconnect's geometry.
type Topology interface {
	// Name identifies the topology in tables and logs.
	Name() string
	// Nodes is the number of network stops.
	Nodes() int
	// Hops returns the number of link traversals for a message from node
	// a to node b. Hops(a, a) is 0. Implementations panic on out-of-range
	// nodes: node indices come from machine descriptions, so a bad index
	// is a programming error, not an input error.
	Hops(a, b int) int
	// CrossSocket reports whether a transfer between a and b leaves the
	// socket (and therefore pays the inter-socket link latency).
	CrossSocket(a, b int) bool
}

func checkNode(t Topology, n int) {
	if n < 0 || n >= t.Nodes() {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", n, t.Nodes()))
	}
}

// Ring is a single bidirectional ring, the idealized single-socket Xeon E5
// uncore: a message takes the shorter way around.
type Ring struct {
	N int // number of stops
}

// NewRing returns a bidirectional ring with n stops.
func NewRing(n int) *Ring {
	if n <= 0 {
		panic("topology: ring needs at least one stop")
	}
	return &Ring{N: n}
}

func (r *Ring) Name() string { return fmt.Sprintf("ring-%d", r.N) }
func (r *Ring) Nodes() int   { return r.N }

func (r *Ring) Hops(a, b int) int {
	checkNode(r, a)
	checkNode(r, b)
	d := a - b
	if d < 0 {
		d = -d
	}
	if alt := r.N - d; alt < d {
		d = alt
	}
	return d
}

// CrossSocket is always false: a single ring is one socket.
func (r *Ring) CrossSocket(a, b int) bool { return false }

// DualRing models a two-socket Xeon E5: each socket is a bidirectional
// ring of PerSocket stops, and the sockets are joined by a point-to-point
// link (QPI/UPI) attached at stop 0 of each ring. A cross-socket transfer
// rides ring A to its link stop, crosses the link (LinkHops hops worth of
// latency), and rides ring B to the destination.
type DualRing struct {
	PerSocket int
	LinkHops  int // hop-equivalent cost of the inter-socket link
}

// NewDualRing returns a two-socket dual ring with perSocket stops per
// socket and the inter-socket link costed as linkHops ring hops.
func NewDualRing(perSocket, linkHops int) *DualRing {
	if perSocket <= 0 {
		panic("topology: dual ring needs at least one stop per socket")
	}
	if linkHops < 0 {
		panic("topology: negative link hops")
	}
	return &DualRing{PerSocket: perSocket, LinkHops: linkHops}
}

func (d *DualRing) Name() string { return fmt.Sprintf("dualring-2x%d", d.PerSocket) }
func (d *DualRing) Nodes() int   { return 2 * d.PerSocket }

func (d *DualRing) socket(n int) int { return n / d.PerSocket }
func (d *DualRing) local(n int) int  { return n % d.PerSocket }

func (d *DualRing) ringHops(a, b int) int {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if alt := d.PerSocket - diff; alt < diff {
		diff = alt
	}
	return diff
}

func (d *DualRing) Hops(a, b int) int {
	checkNode(d, a)
	checkNode(d, b)
	sa, sb := d.socket(a), d.socket(b)
	la, lb := d.local(a), d.local(b)
	if sa == sb {
		return d.ringHops(la, lb)
	}
	// Ride to the link stop (local 0), cross, ride to destination.
	return d.ringHops(la, 0) + d.LinkHops + d.ringHops(0, lb)
}

func (d *DualRing) CrossSocket(a, b int) bool {
	checkNode(d, a)
	checkNode(d, b)
	return d.socket(a) != d.socket(b)
}

// Mesh2D is a 2D mesh with dimension-ordered (X then Y) routing, the KNL
// tile fabric. Node i sits at (i%Cols, i/Cols).
type Mesh2D struct {
	Cols, Rows int
}

// NewMesh2D returns a cols x rows mesh.
func NewMesh2D(cols, rows int) *Mesh2D {
	if cols <= 0 || rows <= 0 {
		panic("topology: mesh dimensions must be positive")
	}
	return &Mesh2D{Cols: cols, Rows: rows}
}

func (m *Mesh2D) Name() string { return fmt.Sprintf("mesh-%dx%d", m.Cols, m.Rows) }
func (m *Mesh2D) Nodes() int   { return m.Cols * m.Rows }

// Coord returns the (x, y) position of node n.
func (m *Mesh2D) Coord(n int) (x, y int) { return n % m.Cols, n / m.Cols }

func (m *Mesh2D) Hops(a, b int) int {
	checkNode(m, a)
	checkNode(m, b)
	ax, ay := m.Coord(a)
	bx, by := m.Coord(b)
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// CrossSocket is always false: KNL is a single-socket part.
func (m *Mesh2D) CrossSocket(a, b int) bool { return false }

// Crossbar is an idealized all-to-all interconnect where every remote
// transfer costs exactly one hop. It exists for model ablations: running
// an experiment on a crossbar isolates protocol serialization from
// topology distance effects.
type Crossbar struct {
	N int
}

// NewCrossbar returns an ideal crossbar over n nodes.
func NewCrossbar(n int) *Crossbar {
	if n <= 0 {
		panic("topology: crossbar needs at least one node")
	}
	return &Crossbar{N: n}
}

func (c *Crossbar) Name() string { return fmt.Sprintf("crossbar-%d", c.N) }
func (c *Crossbar) Nodes() int   { return c.N }

func (c *Crossbar) Hops(a, b int) int {
	checkNode(c, a)
	checkNode(c, b)
	if a == b {
		return 0
	}
	return 1
}

func (c *Crossbar) CrossSocket(a, b int) bool { return false }

// MeanHops returns the average hop distance over all ordered pairs of
// distinct nodes. The analytical model uses it as the expected transfer
// distance when requesters are uniformly spread.
func MeanHops(t Topology) float64 {
	n := t.Nodes()
	if n < 2 {
		return 0
	}
	sum := 0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				sum += t.Hops(a, b)
			}
		}
	}
	return float64(sum) / float64(n*(n-1))
}

// MeanHopsAmong returns the average hop distance over ordered pairs of
// distinct nodes drawn from the given subset. This is the expected
// line-transfer distance when only those nodes contend.
func MeanHopsAmong(t Topology, nodes []int) float64 {
	if len(nodes) < 2 {
		return 0
	}
	sum, pairs := 0, 0
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				sum += t.Hops(a, b)
				pairs++
			}
		}
	}
	return float64(sum) / float64(pairs)
}

// CrossSocketFraction returns the fraction of ordered distinct pairs from
// the subset whose transfers cross sockets.
func CrossSocketFraction(t Topology, nodes []int) float64 {
	if len(nodes) < 2 {
		return 0
	}
	cross, pairs := 0, 0
	for _, a := range nodes {
		for _, b := range nodes {
			if a != b {
				pairs++
				if t.CrossSocket(a, b) {
					cross++
				}
			}
		}
	}
	return float64(cross) / float64(pairs)
}
