package topology

import "testing"

// FuzzHops is a native Go fuzz target over the metric properties every
// topology's hop computation must satisfy — identity, symmetry,
// non-negativity, the triangle inequality — plus Router consistency:
// the transit-weighted link path between two stops must cost exactly
// Hops. All four CLIs' latency math sits on these properties. Run with
// `go test -fuzz FuzzHops ./internal/topology`.
func FuzzHops(f *testing.F) {
	f.Add(uint8(0), uint8(3), uint16(0), uint16(5), uint16(9))
	f.Add(uint8(1), uint8(8), uint16(1), uint16(17), uint16(30))
	f.Add(uint8(2), uint8(5), uint16(2), uint16(3), uint16(11))
	f.Add(uint8(3), uint8(12), uint16(7), uint16(7), uint16(0))
	f.Add(uint8(4), uint8(6), uint16(8), uint16(23), uint16(14))
	f.Fuzz(func(t *testing.T, kind, size uint8, ra, rb, rc uint16) {
		per := 1 + int(size%16)
		var topo Topology
		switch kind % 6 {
		case 0:
			topo = NewRing(per)
		case 1:
			topo = NewDualRing(per, 2)
		case 2:
			topo = NewMesh2D(per, 1+int(size%5))
		case 3:
			topo = NewCrossbar(per)
		case 4:
			topo = NewStar(per, 1+int(size%3), size%2 == 0)
		default:
			topo = NewMultiRing(1+int(size%4), per, 3)
		}
		n := topo.Nodes()
		a, b, c := int(ra)%n, int(rb)%n, int(rc)%n

		if h := topo.Hops(a, a); h != 0 {
			t.Fatalf("%s: Hops(%d,%d) = %d, want 0", topo.Name(), a, a, h)
		}
		hab := topo.Hops(a, b)
		if hab < 0 {
			t.Fatalf("%s: Hops(%d,%d) = %d < 0", topo.Name(), a, b, hab)
		}
		if hba := topo.Hops(b, a); hba != hab {
			t.Fatalf("%s: asymmetric hops: %d->%d is %d, %d->%d is %d", topo.Name(), a, b, hab, b, a, hba)
		}
		if a != b && hab == 0 {
			t.Fatalf("%s: distinct stops %d,%d at distance 0", topo.Name(), a, b)
		}
		if hac, hcb := topo.Hops(a, c), topo.Hops(c, b); hab > hac+hcb {
			t.Fatalf("%s: triangle violated via %d: d(%d,%d)=%d > %d",
				topo.Name(), c, a, b, hab, hac+hcb)
		}
		if topo.CrossSocket(a, b) != topo.CrossSocket(b, a) {
			t.Fatalf("%s: CrossSocket(%d,%d) asymmetric", topo.Name(), a, b)
		}

		r, ok := topo.(Router)
		if !ok {
			return
		}
		links := r.Links()
		transit := 0
		for _, link := range r.Path(a, b) {
			if link < 0 || link >= links {
				t.Fatalf("%s: path %d->%d uses link %d outside [0,%d)", topo.Name(), a, b, link, links)
			}
			transit += r.LinkTransit(link)
		}
		if transit != hab {
			t.Fatalf("%s: path transit %d->%d is %d, Hops says %d", topo.Name(), a, b, transit, hab)
		}
		if a == b && len(r.Path(a, b)) != 0 {
			t.Fatalf("%s: self-path not empty", topo.Name())
		}
	})
}
