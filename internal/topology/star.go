package topology

import "fmt"

// Star is a two-level hierarchical interconnect: Leaves leaf nodes, each
// hanging off a central hub by its own channel. Every transfer between
// distinct leaves rides up to the hub and back down (2 × HubHops hop
// latencies); a leaf is internally distance zero, so a "node" here is a
// whole coherence domain — a chiplet/CCD, not a core. This is the
// EPYC-style organization: compute dies star-bridged through an IO die
// that owns the directory and the memory controllers.
//
// SocketPerLeaf, when set, classifies every leaf-to-leaf transfer as
// cross-socket. That is how the die-crossing serialization cost is
// modeled: the machine layer charges its CrossSocketPenalty for the
// hub's SerDes + protocol conversion, exactly as it charges QPI/UPI on
// a multi-socket part. DESIGN.md, "Declarative machines", records this
// substitution.
type Star struct {
	Leaves  int
	HubHops int // hop-equivalent cost of one leaf↔hub channel
	// SocketPerLeaf treats each leaf as its own socket domain, so
	// leaf-to-leaf transfers also pay the cross-socket penalty.
	SocketPerLeaf bool
}

// NewStar returns a star of leaves nodes bridged through a hub whose
// channels each cost hubHops hop latencies. hubHops must be at least 1
// so distinct leaves stay at nonzero distance (the metric property all
// topologies guarantee).
func NewStar(leaves, hubHops int, socketPerLeaf bool) *Star {
	if leaves <= 0 {
		panic("topology: star needs at least one leaf")
	}
	if hubHops <= 0 {
		panic("topology: star needs hub hops >= 1")
	}
	return &Star{Leaves: leaves, HubHops: hubHops, SocketPerLeaf: socketPerLeaf}
}

func (s *Star) Name() string { return fmt.Sprintf("star-%dx%d", s.Leaves, s.HubHops) }
func (s *Star) Nodes() int   { return s.Leaves }

// Hops implements Topology: up one channel, down another.
func (s *Star) Hops(a, b int) int {
	checkNode(s, a)
	checkNode(s, b)
	if a == b {
		return 0
	}
	return 2 * s.HubHops
}

// CrossSocket implements Topology.
func (s *Star) CrossSocket(a, b int) bool {
	checkNode(s, a)
	checkNode(s, b)
	return s.SocketPerLeaf && a != b
}

// Links implements Router: one channel per leaf; the hub core itself is
// non-blocking.
func (s *Star) Links() int { return s.Leaves }

// Path implements Router: source channel up, destination channel down.
// Each channel's transit is HubHops, so path transit equals Hops.
func (s *Star) Path(a, b int) []int {
	checkNode(s, a)
	checkNode(s, b)
	if a == b {
		return nil
	}
	return []int{a, b}
}

// LinkTransit implements Router.
func (s *Star) LinkTransit(int) int { return s.HubHops }
