package topology

// Dense is a precomputed view of a topology: hop distances and
// cross-socket flags for every node pair are materialized into flat
// matrices at construction, so the per-message lookups the coherence
// simulator performs millions of times per experiment are single array
// reads instead of repeated modulo/routing arithmetic.
//
// Dense implements Topology and is observationally identical to its
// base (same Name, Nodes, Hops and CrossSocket values), so wrapping a
// topology never changes simulation results.
type Dense struct {
	base  Topology
	n     int
	hops  []int32 // n*n, row-major
	cross []bool  // n*n, row-major
}

// NewDense precomputes the hop and cross-socket matrices of t. Wrapping
// an already-dense topology returns it unchanged.
func NewDense(t Topology) *Dense {
	if d, ok := t.(*Dense); ok {
		return d
	}
	if dr, ok := t.(*DenseRouter); ok {
		return dr.Dense
	}
	n := t.Nodes()
	d := &Dense{
		base:  t,
		n:     n,
		hops:  make([]int32, n*n),
		cross: make([]bool, n*n),
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			d.hops[a*n+b] = int32(t.Hops(a, b))
			d.cross[a*n+b] = t.CrossSocket(a, b)
		}
	}
	return d
}

// Base returns the wrapped topology.
func (d *Dense) Base() Topology { return d.base }

// Tables exposes the raw hop and cross-socket matrices (row-major,
// n*n entries). The coherence simulator's innermost loops index them
// directly, skipping the node-range checks of the accessor methods;
// callers must treat both slices as read-only and keep indices in
// range themselves.
func (d *Dense) Tables() (hops []int32, cross []bool, n int) {
	return d.hops, d.cross, d.n
}

// Name implements Topology; the dense view keeps the base's identity.
func (d *Dense) Name() string { return d.base.Name() }

// Nodes implements Topology.
func (d *Dense) Nodes() int { return d.n }

// Hops implements Topology as one table read.
func (d *Dense) Hops(a, b int) int {
	checkNode(d, a)
	checkNode(d, b)
	return int(d.hops[a*d.n+b])
}

// CrossSocket implements Topology as one table read.
func (d *Dense) CrossSocket(a, b int) bool {
	checkNode(d, a)
	checkNode(d, b)
	return d.cross[a*d.n+b]
}

// DenseRouter extends Dense with interned routing paths and a per-link
// transit table, for the finite-bandwidth network model: Path returns a
// precomputed shared slice instead of allocating one per message leg.
type DenseRouter struct {
	*Dense
	router  Router
	links   int
	paths   [][]int // n*n interned link sequences; callers must not modify
	transit []int   // per-link hop-latency multiples
}

// NewDenseRouter precomputes hop, cross-socket, path and link-transit
// tables for r. Wrapping an already-dense router returns it unchanged.
func NewDenseRouter(r Router) *DenseRouter {
	if dr, ok := r.(*DenseRouter); ok {
		return dr
	}
	d := NewDense(r)
	n := d.n
	dr := &DenseRouter{
		Dense:   d,
		router:  r,
		links:   r.Links(),
		paths:   make([][]int, n*n),
		transit: make([]int, r.Links()),
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			dr.paths[a*n+b] = r.Path(a, b)
		}
	}
	for l := 0; l < dr.links; l++ {
		dr.transit[l] = r.LinkTransit(l)
	}
	return dr
}

// Links implements Router.
func (dr *DenseRouter) Links() int { return dr.links }

// Path implements Router. The returned slice is shared and must be
// treated as read-only.
func (dr *DenseRouter) Path(a, b int) []int {
	checkNode(dr, a)
	checkNode(dr, b)
	return dr.paths[a*dr.n+b]
}

// LinkTransit implements Router as one table read.
func (dr *DenseRouter) LinkTransit(link int) int { return dr.transit[link] }
