package energy

import (
	"strings"
	"testing"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

func TestObserveChargesBySource(t *testing.T) {
	m := machine.XeonE5()
	mt := NewMeter(m)
	mk := func(src coherence.Source, hops int, cross bool) coherence.TraceEvent {
		return coherence.TraceEvent{Result: coherence.AccessResult{Source: src, Hops: hops, CrossSocket: cross}}
	}
	mt.Observe(mk(coherence.SrcLocal, 0, false))
	local := mt.DynamicNJ()
	if local != m.Energy.LocalOpNJ {
		t.Fatalf("local charge = %v", local)
	}
	mt.Reset()
	mt.Observe(mk(coherence.SrcRemoteCache, 10, false))
	intra := mt.DynamicNJ()
	mt.Reset()
	mt.Observe(mk(coherence.SrcRemoteCache, 10, true))
	cross := mt.DynamicNJ()
	if !(local < intra && intra < cross) {
		t.Fatalf("energy ordering local(%v) < intra(%v) < cross(%v) violated", local, intra, cross)
	}
	mt.Reset()
	mt.Observe(mk(coherence.SrcDRAM, 4, false))
	if mt.DynamicNJ() <= 0 {
		t.Fatal("DRAM charge missing")
	}
	if mt.Events() != 1 {
		t.Fatalf("events = %d", mt.Events())
	}
}

func TestReportComposition(t *testing.T) {
	m := machine.Ideal(4) // 1 W static/core, 1 W active/thread
	mt := NewMeter(m)
	rep := mt.Report(sim.Second, 2, 2, 1000)
	if rep.StaticJ != 2 || rep.ActiveJ != 2 {
		t.Fatalf("static=%v active=%v, want 2,2", rep.StaticJ, rep.ActiveJ)
	}
	if rep.TotalJ != 4 {
		t.Fatalf("total=%v", rep.TotalJ)
	}
	// 4 J / 1000 ops = 4e6 nJ/op.
	if rep.PerOpNJ != 4e6 {
		t.Fatalf("per-op = %v", rep.PerOpNJ)
	}
	if rep.AvgPowerW != 4 {
		t.Fatalf("power = %v", rep.AvgPowerW)
	}
	// Zero ops and zero duration degrade gracefully.
	empty := mt.Report(0, 0, 0, 0)
	if empty.PerOpNJ != 0 || empty.AvgPowerW != 0 {
		t.Fatalf("degenerate report: %+v", empty)
	}
}

func TestMeterIntegratesWithSimulation(t *testing.T) {
	eng := sim.NewEngine()
	m := machine.XeonE5()
	mem, err := atomics.NewMemory(eng, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	mt := NewMeter(m)
	mem.System().SetTracer(mt.Observe)

	// Ping-pong a line between sockets: every op after the first is a
	// cross-socket transfer and must cost more than local ops.
	done := 0
	var issue func(core int, n int)
	issue = func(core, n int) {
		if n == 0 {
			return
		}
		mem.FetchAndAdd(core, 1, 1, func(atomics.Result) {
			done++
			issue(core, n-1)
		})
	}
	issue(0, 50)  // socket 0
	issue(20, 50) // socket 1
	eng.Drain()
	if done != 100 {
		t.Fatalf("ops done = %d", done)
	}
	crossNJ := mt.DynamicNJ()

	// Same op count on a single core: all local after warm-up.
	mt2 := NewMeter(m)
	eng2 := sim.NewEngine()
	mem2, _ := atomics.NewMemory(eng2, m, nil)
	mem2.System().SetTracer(mt2.Observe)
	issue2 := func() {
		n := 100
		var next func(atomics.Result)
		next = func(atomics.Result) {
			n--
			if n > 0 {
				mem2.FetchAndAdd(0, 1, 1, next)
			}
		}
		mem2.FetchAndAdd(0, 1, 1, next)
	}
	issue2()
	eng2.Drain()
	localNJ := mt2.DynamicNJ()

	if crossNJ <= localNJ {
		t.Fatalf("cross-socket dynamic energy (%v nJ) should exceed local (%v nJ)", crossNJ, localNJ)
	}
}

func TestReportString(t *testing.T) {
	m := machine.Ideal(2)
	rep := NewMeter(m).Report(sim.Second, 1, 1, 10)
	s := rep.String()
	if !strings.Contains(s, "nJ/op") || !strings.Contains(s, "W") {
		t.Errorf("String() = %q", s)
	}
}

func TestResetClears(t *testing.T) {
	mt := NewMeter(machine.Ideal(2))
	mt.Observe(coherence.TraceEvent{Result: coherence.AccessResult{Source: coherence.SrcDRAM}})
	mt.Reset()
	if mt.DynamicNJ() != 0 || mt.Events() != 0 {
		t.Fatal("Reset did not clear")
	}
}
