// Package energy models the power and energy accounting the paper does
// with RAPL counters. The meter subscribes to coherence trace events and
// charges a per-event dynamic energy by provenance (local hit, remote
// transfer per hop, cross-socket, LLC, DRAM), then adds static power
// integrated over the run for every active core and thread. Absolute
// joules are synthetic; the reproduced quantity is the *shape* of
// energy-per-operation versus thread count and contention level.
//
// In the model pipeline (ARCHITECTURE.md) the meter is an observer:
// it subscribes to coherence trace events the same way internal/trace
// does, and internal/workload resets it at the warmup boundary so the
// reading covers the measured window. MODEL.md §5 states the
// analytical counterpart the F6 experiment compares against.
package energy

import (
	"fmt"

	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

// Meter accumulates dynamic energy from coherence events. Install
// Observe as the coherence system's tracer.
type Meter struct {
	m         *machine.Machine
	dynamicNJ float64
	events    uint64
}

// NewMeter returns a meter for machine m.
func NewMeter(m *machine.Machine) *Meter { return &Meter{m: m} }

// EventNJ returns the dynamic-energy charge for one coherence access by
// provenance, without accumulating it. The fast-forward layer uses it
// to precompute a memoized cycle's charge sequence once instead of
// re-deriving it per elided cycle (see Replay).
func (mt *Meter) EventNJ(ev coherence.TraceEvent) float64 {
	e := &mt.m.Energy
	switch ev.Result.Source {
	case coherence.SrcLocal:
		return e.LocalOpNJ
	case coherence.SrcRemoteCache:
		nj := e.LocalOpNJ + float64(ev.Result.Hops)*e.PerHopNJ
		if ev.Result.CrossSocket {
			nj += e.CrossSocketNJ
		}
		return nj
	case coherence.SrcLLC:
		return e.LLCNJ + float64(ev.Result.Hops)*e.PerHopNJ
	case coherence.SrcDRAM:
		return e.DRAMNJ + float64(ev.Result.Hops)*e.PerHopNJ
	}
	return 0
}

// Observe charges the dynamic energy of one coherence access. It is
// shaped to be used directly: sys.SetTracer(meter.Observe).
func (mt *Meter) Observe(ev coherence.TraceEvent) {
	mt.dynamicNJ += mt.EventNJ(ev)
	mt.events++
}

// Replay adds k repetitions of the per-event charge sequence njs, in
// order. It is the fast-forward hook for elided steady-state cycles:
// float addition is not associative, so the k-cycle total cannot be
// computed as a product — but adding the charges in exactly the order
// Observe would have yields a bit-identical accumulator.
func (mt *Meter) Replay(njs []float64, k uint64) {
	acc := mt.dynamicNJ
	for i := uint64(0); i < k; i++ {
		for _, nj := range njs {
			acc += nj
		}
	}
	mt.dynamicNJ = acc
	mt.events += k * uint64(len(njs))
}

// DynamicNJ returns the accumulated dynamic energy in nanojoules.
func (mt *Meter) DynamicNJ() float64 { return mt.dynamicNJ }

// Events returns the number of observed accesses.
func (mt *Meter) Events() uint64 { return mt.events }

// Reset clears the meter between experiment repetitions.
func (mt *Meter) Reset() { mt.dynamicNJ, mt.events = 0, 0 }

// Report summarizes a run's energy.
type Report struct {
	// StaticJ is leakage/uncore energy for the cores hosting threads.
	StaticJ float64
	// ActiveJ is the busy-thread energy (spinning threads burn this
	// without making progress).
	ActiveJ float64
	// DynamicJ is the event-charged communication/computation energy.
	DynamicJ float64
	// TotalJ is the sum.
	TotalJ float64
	// PerOpNJ is TotalJ per completed operation, in nanojoules — the
	// paper's headline energy metric.
	PerOpNJ float64
	// AvgPowerW is TotalJ over the run duration.
	AvgPowerW float64
}

// Report computes the energy report for a run of the given duration
// with the given number of placed threads (on coresUsed distinct
// cores) that completed ops operations.
func (mt *Meter) Report(duration sim.Time, threads, coresUsed int, ops uint64) Report {
	secs := duration.Seconds()
	r := Report{
		StaticJ:  mt.m.Energy.StaticWattsPerCore * float64(coresUsed) * secs,
		ActiveJ:  mt.m.Energy.ActiveWattsPerThread * float64(threads) * secs,
		DynamicJ: mt.dynamicNJ * 1e-9,
	}
	r.TotalJ = r.StaticJ + r.ActiveJ + r.DynamicJ
	if ops > 0 {
		r.PerOpNJ = r.TotalJ * 1e9 / float64(ops)
	}
	if secs > 0 {
		r.AvgPowerW = r.TotalJ / secs
	}
	return r
}

// String renders the report compactly.
func (r Report) String() string {
	return fmt.Sprintf("total=%.3gJ (static %.3g, active %.3g, dynamic %.3g) %.1f nJ/op %.1f W",
		r.TotalJ, r.StaticJ, r.ActiveJ, r.DynamicJ, r.PerOpNJ, r.AvgPowerW)
}
