// Package apps builds the classic concurrent algorithms whose design
// choices the paper's model is meant to inform, on top of the simulated
// atomic primitives: FAA-based versus CAS-loop counters, a Treiber
// stack, and TAS / TTAS / ticket spinlocks. Running them on the same
// coherence substrate as the microbenchmarks lets the experiments show
// that the model's primitive-level predictions (FAA beats CAS under
// contention; TTAS spins locally while TAS storms the line; tickets are
// FIFO-fair) carry over to algorithm-level throughput and fairness.
//
// In the model pipeline (ARCHITECTURE.md) this package is a sibling of
// internal/workload: both drive internal/atomics on the simulated
// coherence substrate and feed results to the harness. MODEL.md §6
// (algorithms as access multisets) is the analytical counterpart of
// running these apps; Run accepts the same Metrics switch as
// workload.Config for per-cell observability.
package apps

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/sim"
)

// Well-known line IDs used by the applications. They are spread apart
// so their directory homes differ.
const (
	counterLine coherence.LineID = 10
	topLine     coherence.LineID = 30
	lockLine    coherence.LineID = 50
	ticketLine  coherence.LineID = 70
	servingLine coherence.LineID = 90
	dataLine    coherence.LineID = 110
	nodeBase    coherence.LineID = 1 << 20
)

// Thread is the per-worker context handed to an App step.
type Thread struct {
	ID   int
	Core int
	RNG  *sim.RNG

	// lastSeen caches the last observed value of the app's CAS target,
	// the usual optimization in retry loops.
	lastSeen uint64
}

// App is one concurrent algorithm. Step performs a single high-level
// operation (an increment, a push/pop, an acquire-release cycle) for
// the given thread and invokes done exactly once when it completes.
type App interface {
	Name() string
	Step(th *Thread, done func())
}

// RetryStats is implemented by structures that count executions of
// their retry-loop body — the gating RMW issues (every CAS/TAS
// attempt, every ticket spin read), successful or not, over the whole
// run. Attempts divided by completed operations is the measured retry
// factor the conflict-based throughput model consumes
// (internal/predict); the runner surfaces it in RunResult.Attempts.
type RetryStats interface {
	Attempts() uint64
}

// FAACounter increments a shared counter with one fetch-and-add.
type FAACounter struct {
	mem *atomics.Memory
}

// NewFAACounter returns the FAA-based counter.
func NewFAACounter(mem *atomics.Memory) *FAACounter { return &FAACounter{mem: mem} }

func (c *FAACounter) Name() string { return "counter-faa" }

func (c *FAACounter) Step(th *Thread, done func()) {
	c.mem.FetchAndAdd(th.Core, counterLine, 1, func(atomics.Result) { done() })
}

// Value returns the counter's current value (for correctness checks).
func (c *FAACounter) Value() uint64 { return c.mem.System().Value(counterLine) }

// CASCounter increments a shared counter with the classic CAS retry
// loop (read value, CAS value -> value+1, retry on failure). This is
// the design the model tells you to avoid under contention.
type CASCounter struct {
	mem      *atomics.Memory
	attempts uint64
}

// NewCASCounter returns the CAS-loop counter.
func NewCASCounter(mem *atomics.Memory) *CASCounter { return &CASCounter{mem: mem} }

func (c *CASCounter) Name() string { return "counter-cas" }

// Attempts counts CAS issues, successful or not (RetryStats).
func (c *CASCounter) Attempts() uint64 { return c.attempts }

func (c *CASCounter) Step(th *Thread, done func()) {
	expected := th.lastSeen
	c.attempts++
	c.mem.CompareAndSwap(th.Core, counterLine, expected, expected+1, func(r atomics.Result) {
		if r.OK {
			th.lastSeen = expected + 1
			done()
			return
		}
		th.lastSeen = r.Old
		c.Step(th, done) // retry with the freshly observed value
	})
}

// Value returns the counter's current value.
func (c *CASCounter) Value() uint64 { return c.mem.System().Value(counterLine) }

// TreiberStack is the classic lock-free stack: a CAS loop on the top
// pointer, with each node on its own cache line. Each Step performs a
// push or a pop (50/50), so the stack stays near its initial depth.
type TreiberStack struct {
	mem      *atomics.Memory
	nextID   uint64
	pushes   uint64
	pops     uint64
	empties  uint64
	attempts uint64
}

// NewTreiberStack returns a stack pre-seeded with depth nodes so pops
// do not immediately hit empty.
func NewTreiberStack(mem *atomics.Memory, depth int) *TreiberStack {
	s := &TreiberStack{mem: mem, nextID: 1}
	top := uint64(0)
	for i := 0; i < depth; i++ {
		id := s.nextID
		s.nextID++
		mem.System().SetValue(nodeBase+coherence.LineID(id), top)
		top = id
	}
	mem.System().SetValue(topLine, top)
	return s
}

func (s *TreiberStack) Name() string { return "treiber-stack" }

// Stats reports operation counts (pushes, pops, empty pops).
func (s *TreiberStack) Stats() (pushes, pops, empties uint64) {
	return s.pushes, s.pops, s.empties
}

// Attempts counts CAS issues on the top pointer (RetryStats).
func (s *TreiberStack) Attempts() uint64 { return s.attempts }

func (s *TreiberStack) nodeLine(id uint64) coherence.LineID {
	return nodeBase + coherence.LineID(id)
}

// alloc hands out the next node ID (allocation is not simulated; the
// node's line write is).
func (s *TreiberStack) alloc() uint64 {
	id := s.nextID
	s.nextID++
	return id
}

func (s *TreiberStack) Step(th *Thread, done func()) {
	if th.RNG.Float64() < 0.5 {
		s.push(th, done)
	} else {
		s.pop(th, done)
	}
}

func (s *TreiberStack) push(th *Thread, done func()) {
	id := s.alloc()
	var attempt func(oldTop uint64)
	attempt = func(oldTop uint64) {
		// Write node.next = oldTop (the node line is private until the
		// CAS publishes it).
		s.mem.StoreOp(th.Core, s.nodeLine(id), oldTop, func(atomics.Result) {
			s.attempts++
			s.mem.CompareAndSwap(th.Core, topLine, oldTop, id, func(r atomics.Result) {
				if r.OK {
					s.pushes++
					done()
					return
				}
				attempt(r.Old)
			})
		})
	}
	// Seed the first attempt with the thread's cached view of top.
	attempt(th.lastSeen)
}

func (s *TreiberStack) pop(th *Thread, done func()) {
	s.mem.LoadOp(th.Core, topLine, func(r atomics.Result) {
		top := r.Old
		if top == 0 {
			s.empties++
			done() // empty pop still counts as a completed operation
			return
		}
		// Read the node to find its successor — this line may be dirty
		// in the pusher's cache, which is exactly the traffic pattern
		// that makes stacks expensive under contention.
		s.mem.LoadOp(th.Core, s.nodeLine(top), func(rn atomics.Result) {
			next := rn.Old
			s.attempts++
			s.mem.CompareAndSwap(th.Core, topLine, top, next, func(rc atomics.Result) {
				if rc.OK {
					th.lastSeen = next
					s.pops++
					done()
					return
				}
				th.lastSeen = rc.Old
				s.pop(th, done)
			})
		})
	})
}

// Lock abstracts a spinlock for the lock comparison experiments. An
// acquire-release cycle with a critical-section update of a shared data
// line is one Step.
type lockApp struct {
	name     string
	mem      *atomics.Memory
	crit     sim.Time
	eng      *sim.Engine
	attempts uint64
	acquire  func(th *Thread, locked func())
	release  func(th *Thread, released func())
}

func (l *lockApp) Name() string { return l.name }

// Attempts counts acquisition-loop iterations: TAS issues for the
// test-and-set family, serving-counter refetches (reads observing a
// new value, i.e. line transfers) for the ticket lock (RetryStats).
func (l *lockApp) Attempts() uint64 { return l.attempts }

func (l *lockApp) Step(th *Thread, done func()) {
	l.acquire(th, func() {
		// Critical section: update the protected data, hold, release.
		l.mem.FetchAndAdd(th.Core, dataLine, 1, func(atomics.Result) {
			finish := func() { l.release(th, done) }
			if l.crit > 0 {
				l.eng.Schedule(l.crit, finish)
			} else {
				finish()
			}
		})
	})
}

// NewTASLock returns a test-and-set spinlock: every acquisition attempt
// is an RFO on the lock line (the line-bouncing worst case).
func NewTASLock(eng *sim.Engine, mem *atomics.Memory, crit sim.Time) App {
	l := &lockApp{name: "lock-tas", mem: mem, crit: crit, eng: eng}
	l.acquire = func(th *Thread, locked func()) {
		var spin func()
		spin = func() {
			l.attempts++
			mem.TestAndSet(th.Core, lockLine, func(r atomics.Result) {
				if r.Old == 0 {
					locked()
					return
				}
				spin()
			})
		}
		spin()
	}
	l.release = func(th *Thread, released func()) {
		mem.StoreOp(th.Core, lockLine, 0, func(atomics.Result) { released() })
	}
	return l
}

// NewTTASLock returns a test-and-test-and-set spinlock: waiters spin on
// local shared copies (reads) and only attempt the RFO when the lock
// looks free — the model-guided fix for TAS.
func NewTTASLock(eng *sim.Engine, mem *atomics.Memory, crit sim.Time) App {
	l := &lockApp{name: "lock-ttas", mem: mem, crit: crit, eng: eng}
	l.acquire = func(th *Thread, locked func()) {
		var test func()
		test = func() {
			mem.LoadOp(th.Core, lockLine, func(r atomics.Result) {
				if r.Old != 0 {
					test() // spin on the shared copy
					return
				}
				l.attempts++
				mem.TestAndSet(th.Core, lockLine, func(r2 atomics.Result) {
					if r2.Old == 0 {
						locked()
						return
					}
					test()
				})
			})
		}
		test()
	}
	l.release = func(th *Thread, released func()) {
		mem.StoreOp(th.Core, lockLine, 0, func(atomics.Result) { released() })
	}
	return l
}

// NewTTASBackoffLock returns a TTAS lock with capped exponential
// backoff after failed acquisition attempts. Backoff is the classic
// remedy for the post-release thundering herd: when K waiters see the
// lock free at once, K-1 failing test-and-sets each cost a full line
// transfer, so spacing retries out trades a little handoff latency for
// far fewer bounces.
func NewTTASBackoffLock(eng *sim.Engine, mem *atomics.Memory, crit, base, max sim.Time) App {
	l := &lockApp{name: "lock-ttas-backoff", mem: mem, crit: crit, eng: eng}
	l.acquire = func(th *Thread, locked func()) {
		backoff := base
		var test func()
		test = func() {
			mem.LoadOp(th.Core, lockLine, func(r atomics.Result) {
				if r.Old != 0 {
					test()
					return
				}
				l.attempts++
				mem.TestAndSet(th.Core, lockLine, func(r2 atomics.Result) {
					if r2.Old == 0 {
						locked()
						return
					}
					wait := th.RNG.Duration(backoff) + backoff/2
					backoff *= 2
					if backoff > max {
						backoff = max
					}
					eng.Schedule(wait, test)
				})
			})
		}
		test()
	}
	l.release = func(th *Thread, released func()) {
		mem.StoreOp(th.Core, lockLine, 0, func(atomics.Result) { released() })
	}
	return l
}

// NewTicketLock returns a ticket spinlock: one FAA takes a ticket, then
// the thread spins reading the serving counter — FIFO-fair by
// construction, which the fairness experiment demonstrates.
func NewTicketLock(eng *sim.Engine, mem *atomics.Memory, crit sim.Time) App {
	l := &lockApp{name: "lock-ticket", mem: mem, crit: crit, eng: eng}
	l.acquire = func(th *Thread, locked func()) {
		mem.FetchAndAdd(th.Core, ticketLine, 1, func(r atomics.Result) {
			ticket := r.Old
			// Count serving-line refetches, not raw spin reads: between
			// handoffs a waiter re-reads its local Shared copy (no line
			// traffic), so only reads that observe a new serving value —
			// a refetch after the holder's invalidating bump — are
			// attempts in the conflict model's sense.
			seen := false
			var last uint64
			var wait func()
			wait = func() {
				mem.LoadOp(th.Core, servingLine, func(rs atomics.Result) {
					if !seen || rs.Old != last {
						seen, last = true, rs.Old
						l.attempts++
					}
					if rs.Old == ticket {
						th.lastSeen = ticket
						locked()
						return
					}
					wait()
				})
			}
			wait()
		})
	}
	l.release = func(th *Thread, released func()) {
		mem.StoreOp(th.Core, servingLine, th.lastSeen+1, func(atomics.Result) { released() })
	}
	return l
}

// DataValue returns the protected data line's value, for verifying
// mutual exclusion delivered exactly one update per completed cycle.
func DataValue(mem *atomics.Memory) uint64 { return mem.System().Value(dataLine) }

// CounterValue returns the shared counter value.
func CounterValue(mem *atomics.Memory) uint64 { return mem.System().Value(counterLine) }
