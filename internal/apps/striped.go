package apps

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
)

// stripeBase spaces stripe lines far apart so each lands on its own
// cache line with a distinct home.
const stripeBase coherence.LineID = 1 << 22

// StripedCounter shards a counter over per-stripe cache lines: writers
// FAA their own stripe (usually uncontended), and an occasional reader
// sums all stripes. It is the model-guided fix for a hot FAA counter —
// trading read cost for write scalability — and the contention-
// spreading experiment (F15) quantifies the trade.
type StripedCounter struct {
	mem     *atomics.Memory
	stripes int
	// ReadFraction is the probability a Step is a full read instead of
	// an increment.
	ReadFraction float64
	reads        uint64
	incs         uint64
}

// NewStripedCounter returns a counter sharded over the given number of
// stripes. readFraction sets how often a Step sums the stripes instead
// of incrementing.
func NewStripedCounter(mem *atomics.Memory, stripes int, readFraction float64) *StripedCounter {
	if stripes < 1 {
		stripes = 1
	}
	return &StripedCounter{mem: mem, stripes: stripes, ReadFraction: readFraction}
}

func (c *StripedCounter) Name() string { return "counter-striped" }

// Stats reports (increments, reads) performed.
func (c *StripedCounter) Stats() (incs, reads uint64) { return c.incs, c.reads }

func (c *StripedCounter) stripe(i int) coherence.LineID {
	return stripeBase + coherence.LineID(i)*512
}

// Value sums the stripes without simulating accesses (assertions).
func (c *StripedCounter) Value() uint64 {
	var sum uint64
	for i := 0; i < c.stripes; i++ {
		sum += c.mem.System().Value(c.stripe(i))
	}
	return sum
}

func (c *StripedCounter) Step(th *Thread, done func()) {
	if th.RNG.Float64() < c.ReadFraction {
		c.readAll(th, 0, 0, done)
		return
	}
	line := c.stripe(th.ID % c.stripes)
	c.mem.FetchAndAdd(th.Core, line, 1, func(atomics.Result) {
		c.incs++
		done()
	})
}

// readAll loads every stripe sequentially (a consistent snapshot is not
// promised, matching real striped counters).
func (c *StripedCounter) readAll(th *Thread, i int, sum uint64, done func()) {
	if i == c.stripes {
		c.reads++
		done()
		return
	}
	c.mem.LoadOp(th.Core, c.stripe(i), func(r atomics.Result) {
		c.readAll(th, i+1, sum+r.Old, done)
	})
}
