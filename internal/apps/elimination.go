package apps

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/sim"
)

// Elimination slot states (values of the slot lines).
const (
	slotEmpty   uint64 = 0
	slotPusher  uint64 = 1
	slotMatched uint64 = 3
)

const elimBase coherence.LineID = 1 << 23

// EliminationStack is a Treiber stack with an elimination array: when
// the top CAS fails under contention, a push parks in a random
// collision slot and a concurrent pop can consume it there, so the pair
// completes without ever touching the hot top pointer. This is the
// classic contention remedy the model motivates — it converts hot-line
// bounces into traffic spread over many slot lines.
type EliminationStack struct {
	*TreiberStack
	eng    *sim.Engine
	mem    *atomics.Memory
	slots  int
	window sim.Time
	elims  uint64
}

// NewEliminationStack returns an elimination stack seeded with depth
// nodes, using the given number of collision slots and pusher wait
// window.
func NewEliminationStack(eng *sim.Engine, mem *atomics.Memory, depth, slots int, window sim.Time) *EliminationStack {
	if slots < 1 {
		slots = 1
	}
	if window <= 0 {
		window = 200 * sim.Nanosecond
	}
	return &EliminationStack{
		TreiberStack: NewTreiberStack(mem, depth),
		eng:          eng,
		mem:          mem,
		slots:        slots,
		window:       window,
	}
}

func (s *EliminationStack) Name() string { return "elimination-stack" }

// Eliminations reports how many operations completed via the array
// (each exchange finishes one push and one pop).
func (s *EliminationStack) Eliminations() uint64 { return s.elims }

func (s *EliminationStack) slot(th *Thread) coherence.LineID {
	return elimBase + coherence.LineID(th.RNG.Intn(s.slots))*256
}

func (s *EliminationStack) Step(th *Thread, done func()) {
	if th.RNG.Float64() < 0.5 {
		s.pushElim(th, done)
	} else {
		s.popElim(th, done)
	}
}

// pushElim attempts one Treiber push; on CAS failure it tries to park
// in a collision slot before retrying.
func (s *EliminationStack) pushElim(th *Thread, done func()) {
	id := s.alloc()
	var attempt func(oldTop uint64)
	attempt = func(oldTop uint64) {
		s.mem.StoreOp(th.Core, s.nodeLine(id), oldTop, func(atomics.Result) {
			s.attempts++
			s.mem.CompareAndSwap(th.Core, topLine, oldTop, id, func(r atomics.Result) {
				if r.OK {
					s.pushes++
					done()
					return
				}
				s.parkPush(th, r.Old, id, attempt, done)
			})
		})
	}
	attempt(th.lastSeen)
}

// parkPush parks a failed push in a slot for one window; a matching pop
// eliminates it, otherwise the push withdraws and retries on the stack.
func (s *EliminationStack) parkPush(th *Thread, freshTop, id uint64, retry func(uint64), done func()) {
	slot := s.slot(th)
	s.mem.CompareAndSwap(th.Core, slot, slotEmpty, slotPusher, func(r atomics.Result) {
		if !r.OK {
			// Slot busy: go straight back to the stack.
			retry(freshTop)
			return
		}
		s.eng.Schedule(s.window, func() {
			s.mem.CompareAndSwap(th.Core, slot, slotPusher, slotEmpty, func(r2 atomics.Result) {
				if r2.OK {
					// No partner came: withdraw and retry on the stack.
					retry(freshTop)
					return
				}
				// A popper matched us (slot says so): reset the slot
				// and finish — the pair never touched the top pointer.
				s.mem.StoreOp(th.Core, slot, slotEmpty, func(atomics.Result) {
					s.elims++
					s.pushes++
					done()
				})
			})
		})
	})
}

// popElim attempts one Treiber pop; on CAS failure it probes a slot for
// a waiting pusher before retrying.
func (s *EliminationStack) popElim(th *Thread, done func()) {
	s.mem.LoadOp(th.Core, topLine, func(r atomics.Result) {
		top := r.Old
		if top == 0 {
			s.empties++
			done()
			return
		}
		s.mem.LoadOp(th.Core, s.nodeLine(top), func(rn atomics.Result) {
			next := rn.Old
			s.attempts++
			s.mem.CompareAndSwap(th.Core, topLine, top, next, func(rc atomics.Result) {
				if rc.OK {
					th.lastSeen = next
					s.pops++
					done()
					return
				}
				th.lastSeen = rc.Old
				s.probePop(th, done)
			})
		})
	})
}

// probePop checks one slot for a waiting pusher; a hit eliminates the
// pair, a miss retries on the stack.
func (s *EliminationStack) probePop(th *Thread, done func()) {
	slot := s.slot(th)
	s.mem.CompareAndSwap(th.Core, slot, slotPusher, slotMatched, func(r atomics.Result) {
		if r.OK {
			s.elims++
			s.pops++
			done()
			return
		}
		s.popElim(th, done)
	})
}
