package apps

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
)

// bigAtomicBase spaces the big-atomic object's version and word lines
// away from every other app's layout.
const bigAtomicBase coherence.LineID = 1 << 29

// BigAtomicApp drives one multi-word atomic object
// (atomics.BigAtomic): ReadFraction of the Steps take the seqlock read
// path, the rest commit an update through the CAS2-backed version
// lock. With Words == 1 it degenerates to the single-word CAS
// baseline, so a words ladder prices the multi-word emulation against
// the primitive it replaces.
type BigAtomicApp struct {
	obj      *atomics.BigAtomic
	readFrac float64
}

// NewBigAtomicApp builds a words-wide object; readFrac of the Steps
// are reads.
func NewBigAtomicApp(mem *atomics.Memory, words int, readFrac float64) (*BigAtomicApp, error) {
	obj, err := atomics.NewBigAtomic(mem, bigAtomicBase, words)
	if err != nil {
		return nil, err
	}
	return &BigAtomicApp{obj: obj, readFrac: readFrac}, nil
}

func (a *BigAtomicApp) Name() string { return "big-atomic" }

// Object exposes the underlying big atomic (stats, torn-read checks).
func (a *BigAtomicApp) Object() *atomics.BigAtomic { return a.obj }

// Attempts counts seqlock read rounds plus version acquires
// (RetryStats).
func (a *BigAtomicApp) Attempts() uint64 { return a.obj.Attempts() }

func (a *BigAtomicApp) Step(th *Thread, done func()) {
	if th.RNG.Float64() < a.readFrac {
		a.obj.Read(th.Core, done)
	} else {
		a.obj.Update(th.Core, done)
	}
}
