package apps

import (
	"bytes"
	"testing"
)

// FuzzAppSpecLoad is a native Go fuzz target over the app spec loading
// path — the CLIs' -appfile input. For arbitrary bytes it demands: no
// panic anywhere in parse/validate; any spec ParseSpec accepts digests
// deterministically; its canonical encoding is a fixed point (parse →
// encode → parse → encode is byte-stable), which is what makes the
// digest a usable cache identity; and every expanded ladder point is
// itself a valid, digestable spec. Run with
// `go test -fuzz FuzzAppSpecLoad ./internal/apps`.
func FuzzAppSpecLoad(f *testing.F) {
	for _, name := range SpecNames() {
		s, err := SpecByName(name)
		if err != nil {
			f.Fatal(err)
		}
		raw, err := s.Canonical()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"structure":"counter-faa","threads":4}`))
	f.Add([]byte(`{"structure":"elimination-stack","threadLadder":[1,2,4],"slots":16,"windowPS":400000}`))
	f.Add([]byte(`{"structure":"lock-ttas-backoff","threads":8,"critPS":50000,"backoffBasePS":100000,"backoffMaxPS":3200000}`))
	f.Add([]byte(`{"structure":"rwlock-distributed","threads":16,"readFraction":0.9,"slots":8,"seed":7}`))
	f.Add([]byte(`{"structure":"ws-deque","threads":-1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return // malformed or invalid input must error, not panic
		}
		d1, err := s.Digest()
		if err != nil {
			t.Fatalf("accepted spec does not digest: %v", err)
		}
		d2, err := s.Digest()
		if err != nil || d1 != d2 || d1 == "" {
			t.Fatalf("digest not deterministic: %q vs %q (%v)", d1, d2, err)
		}
		raw1, err := s.Canonical()
		if err != nil {
			t.Fatalf("canonical encoding of an accepted spec failed: %v", err)
		}
		s2, err := ParseSpec(raw1)
		if err != nil {
			t.Fatalf("canonical encoding does not reparse: %v\n%s", err, raw1)
		}
		raw2, err := s2.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw1, raw2) {
			t.Fatalf("canonical encoding not a fixed point:\n%s\nvs\n%s", raw1, raw2)
		}
		for _, pt := range s.Expand() {
			if err := pt.Validate(); err != nil {
				t.Fatalf("expanded point of an accepted spec invalid: %v", err)
			}
			if _, err := pt.Digest(); err != nil {
				t.Fatalf("expanded point does not digest: %v", err)
			}
		}
	})
}
