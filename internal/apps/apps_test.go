package apps

import (
	"testing"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

func appCfg(m *machine.Machine, threads int, build func(*sim.Engine, *atomics.Memory) App) RunConfig {
	return RunConfig{
		Machine: m, Threads: threads, Build: build,
		Warmup: 10 * sim.Microsecond, Duration: 100 * sim.Microsecond, Seed: 1,
	}
}

func TestFAACounterCorrectAndCounted(t *testing.T) {
	var ctr *FAACounter
	res, err := Run(appCfg(machine.Ideal(8), 8, func(eng *sim.Engine, mem *atomics.Memory) App {
		ctr = NewFAACounter(mem)
		return ctr
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no increments measured")
	}
	// Every completed Step is exactly one increment.
	if ctr.Value() != res.TotalOps {
		t.Fatalf("counter value %d != total completed steps %d", ctr.Value(), res.TotalOps)
	}
}

func TestCASCounterCorrect(t *testing.T) {
	var ctr *CASCounter
	res, err := Run(appCfg(machine.Ideal(8), 8, func(eng *sim.Engine, mem *atomics.Memory) App {
		ctr = NewCASCounter(mem)
		return ctr
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no increments measured")
	}
	if ctr.Value() != res.TotalOps {
		t.Fatalf("counter value %d != completed steps %d", ctr.Value(), res.TotalOps)
	}
}

func TestFAACounterBeatsCASCounter(t *testing.T) {
	// The paper's headline design decision, at app level.
	m := machine.XeonE5()
	faa, err := Run(appCfg(m, 16, func(eng *sim.Engine, mem *atomics.Memory) App {
		return NewFAACounter(mem)
	}))
	if err != nil {
		t.Fatal(err)
	}
	cas, err := Run(appCfg(m, 16, func(eng *sim.Engine, mem *atomics.Memory) App {
		return NewCASCounter(mem)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if faa.ThroughputMops < 2*cas.ThroughputMops {
		t.Fatalf("FAA counter (%.1f Mops) should be >=2x CAS counter (%.1f Mops) at 16 threads",
			faa.ThroughputMops, cas.ThroughputMops)
	}
}

func TestTreiberStackLIFOAndBalanced(t *testing.T) {
	var st *TreiberStack
	res, err := Run(appCfg(machine.Ideal(8), 4, func(eng *sim.Engine, mem *atomics.Memory) App {
		st = NewTreiberStack(mem, 64)
		return st
	}))
	if err != nil {
		t.Fatal(err)
	}
	pushes, pops, empties := st.Stats()
	if pushes+pops+empties != res.TotalOps {
		t.Fatalf("op accounting: %d+%d+%d != %d", pushes, pops, empties, res.TotalOps)
	}
	if pushes == 0 || pops == 0 {
		t.Fatal("stack exercised only one operation type")
	}
	// Seeded with 64: non-empty pops can exceed pushes by at most 64.
	if pops > pushes+64 {
		t.Fatalf("pops %d exceed pushes %d + seed 64", pops, pushes)
	}
}

func TestTreiberStackTopIsConsistent(t *testing.T) {
	var st *TreiberStack
	var mem *atomics.Memory
	_, err := Run(appCfg(machine.Ideal(8), 8, func(eng *sim.Engine, m *atomics.Memory) App {
		mem = m
		st = NewTreiberStack(m, 16)
		return st
	}))
	if err != nil {
		t.Fatal(err)
	}
	// Walk the stack from top: depth must equal seed + pushes - pops,
	// and the chain must terminate.
	pushes, pops, _ := st.Stats()
	want := 16 + int64(pushes) - int64(pops)
	depth := int64(0)
	cur := mem.System().Value(topLine)
	for cur != 0 && depth <= want+1 {
		depth++
		cur = mem.System().Value(nodeBase + coherence.LineID(cur))
	}
	if depth != want {
		t.Fatalf("stack depth %d, want %d", depth, want)
	}
}

func TestLocksProvideMutualExclusion(t *testing.T) {
	for _, mk := range []struct {
		name  string
		build func(*sim.Engine, *atomics.Memory) App
	}{
		{"tas", func(e *sim.Engine, m *atomics.Memory) App { return NewTASLock(e, m, 0) }},
		{"ttas", func(e *sim.Engine, m *atomics.Memory) App { return NewTTASLock(e, m, 0) }},
		{"ticket", func(e *sim.Engine, m *atomics.Memory) App { return NewTicketLock(e, m, 0) }},
	} {
		res, err := Run(appCfg(machine.Ideal(8), 8, mk.build))
		if err != nil {
			t.Fatalf("%s: %v", mk.name, err)
		}
		if res.Ops == 0 {
			t.Fatalf("%s: no lock cycles measured", mk.name)
		}
		// Each completed cycle increments the protected data exactly
		// once; mutual exclusion means no lost updates. Cycles cut off
		// by the horizon may have incremented without completing, so
		// the data value may exceed completed cycles by at most the
		// thread count.
		got := DataValue(res.Mem)
		if got < res.TotalOps || got > res.TotalOps+8 {
			t.Fatalf("%s: data value %d vs completed cycles %d (lost updates?)",
				mk.name, got, res.TotalOps)
		}
	}
}

func TestBackoffBeatsPlainSpinning(t *testing.T) {
	// On a directory-based machine, plain TTAS suffers a post-release
	// thundering herd (K-1 failed RFOs per handoff), so its advantage
	// over plain TAS is not guaranteed; the robust, model-guided fix is
	// backoff, which must clearly beat both plain variants.
	m := machine.XeonE5()
	crit := 50 * sim.Nanosecond
	run := func(build func(*sim.Engine, *atomics.Memory) App) float64 {
		res, err := Run(appCfg(m, 16, build))
		if err != nil {
			t.Fatal(err)
		}
		return res.ThroughputMops
	}
	tas := run(func(e *sim.Engine, mm *atomics.Memory) App { return NewTASLock(e, mm, crit) })
	ttas := run(func(e *sim.Engine, mm *atomics.Memory) App { return NewTTASLock(e, mm, crit) })
	backoff := run(func(e *sim.Engine, mm *atomics.Memory) App {
		return NewTTASBackoffLock(e, mm, crit, 100*sim.Nanosecond, 3200*sim.Nanosecond)
	})
	if backoff <= tas || backoff <= ttas {
		t.Fatalf("backoff (%.2f Mops) should beat TAS (%.2f) and TTAS (%.2f) at 16 threads",
			backoff, tas, ttas)
	}
}

func TestTicketLockIsFairest(t *testing.T) {
	m := machine.XeonE5()
	crit := 50 * sim.Nanosecond
	ticket, err := Run(appCfg(m, 12, func(e *sim.Engine, mm *atomics.Memory) App { return NewTicketLock(e, mm, crit) }))
	if err != nil {
		t.Fatal(err)
	}
	if ticket.Jain < 0.95 {
		t.Fatalf("ticket lock Jain = %.3f, want ~1 (FIFO by construction)", ticket.Jain)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(RunConfig{Machine: machine.Ideal(4), Threads: 0,
		Build: func(e *sim.Engine, m *atomics.Memory) App { return NewFAACounter(m) }}); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := Run(RunConfig{Machine: machine.Ideal(4), Threads: 99,
		Build: func(e *sim.Engine, m *atomics.Memory) App { return NewFAACounter(m) }}); err == nil {
		t.Error("oversubscription accepted")
	}
}

func TestAppNames(t *testing.T) {
	eng := sim.NewEngine()
	mem, _ := atomics.NewMemory(eng, machine.Ideal(4), nil)
	names := map[string]bool{}
	for _, a := range []App{
		NewFAACounter(mem), NewCASCounter(mem), NewTreiberStack(mem, 1),
		NewTASLock(eng, mem, 0), NewTTASLock(eng, mem, 0), NewTicketLock(eng, mem, 0),
		NewTTASBackoffLock(eng, mem, 0, sim.Nanosecond, sim.Microsecond),
	} {
		if a.Name() == "" || names[a.Name()] {
			t.Errorf("bad or duplicate app name %q", a.Name())
		}
		names[a.Name()] = true
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := appCfg(machine.XeonE5(), 8, func(e *sim.Engine, m *atomics.Memory) App {
		return NewTreiberStack(m, 32)
	})
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ops != b.Ops {
		t.Fatalf("same seed diverged: %d vs %d", a.Ops, b.Ops)
	}
}
