package apps

import (
	"bytes"
	"strings"
	"testing"

	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

func TestStructureRegistry(t *testing.T) {
	names := StructureNames()
	if len(names) < 10 {
		t.Fatalf("only %d structures registered: %v", len(names), names)
	}
	for _, name := range names {
		if StructureDoc(name) == "" {
			t.Errorf("structure %s has no doc", name)
		}
		s := &Spec{Structure: strings.ToUpper(name), Threads: 2} // case-insensitive
		if _, err := structureByName(s.Structure); err != nil {
			t.Errorf("case-insensitive lookup of %s failed: %v", name, err)
		}
		if _, err := s.HotLine(); err != nil {
			t.Errorf("structure %s has no hot line: %v", name, err)
		}
	}
	if _, err := structureByName("no-such-structure"); err == nil {
		t.Fatal("unknown structure accepted")
	}
}

func TestAppSpecStrictParse(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"structure":"counter-faa","threads":4}`)); err != nil {
		t.Fatalf("minimal valid spec rejected: %v", err)
	}
	if _, err := ParseSpec([]byte(`{"structure":"counter-faa","threads":4,"depht":2}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`{"structure":"counter-faa","threads":4}{"x":1}`)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if _, err := ParseSpec([]byte(`{"structure":"counter-faa","threads":4} true`)); err == nil {
		t.Fatal("trailing token accepted")
	}
}

func TestAppSpecValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"no structure", Spec{Threads: 4}},
		{"bad structure", Spec{Structure: "btree", Threads: 4}},
		{"no threads", Spec{Structure: "counter-faa"}},
		{"threads and ladder", Spec{Structure: "counter-faa", Threads: 4, ThreadLadder: []int{1, 2}}},
		{"negative threads", Spec{Structure: "counter-faa", Threads: -1}},
		{"unsorted ladder", Spec{Structure: "counter-faa", ThreadLadder: []int{4, 2}}},
		{"duplicate ladder", Spec{Structure: "counter-faa", ThreadLadder: []int{2, 2}}},
		{"bad placement", Spec{Structure: "counter-faa", Threads: 4, Placement: "spread"}},
		{"bad arbiter", Spec{Structure: "counter-faa", Threads: 4, Arbiter: "priority"}},
		{"skips on fifo", Spec{Structure: "counter-faa", Threads: 4, ArbiterSkips: 8}},
		{"depth on counter", Spec{Structure: "counter-faa", Threads: 4, Depth: 64}},
		{"stripes on stack", Spec{Structure: "treiber-stack", Threads: 4, Stripes: 8}},
		{"slots on treiber", Spec{Structure: "treiber-stack", Threads: 4, Slots: 4}},
		{"words on lock", Spec{Structure: "lock-tas", Threads: 4, Words: 2}},
		{"handoffs on ticket", Spec{Structure: "lock-ticket", Threads: 4, Handoffs: 8}},
		{"readFraction on queue", Spec{Structure: "ms-queue", Threads: 4, ReadFraction: 0.5}},
		{"crit on counter", Spec{Structure: "counter-cas", Threads: 4, CritPS: 100}},
		{"backoff on ttas", Spec{Structure: "lock-ttas", Threads: 4, BackoffBasePS: 100}},
		{"window on ms-queue", Spec{Structure: "ms-queue", Threads: 4, WindowPS: 100}},
		{"deque depth over buffer", Spec{Structure: "ws-deque", Threads: 4, Depth: dequeBufSlots + 1}},
		{"oversized words", Spec{Structure: "big-atomic", Threads: 4, Words: maxSpecWords + 1}},
		{"oversized stripes", Spec{Structure: "counter-striped", Threads: 4, Stripes: maxSpecStripes + 1}},
		{"readFraction range", Spec{Structure: "rwlock-central", Threads: 4, ReadFraction: 1.5}},
		{"negative crit", Spec{Structure: "lock-tas", Threads: 4, CritPS: -1}},
		{"backoff max below base", Spec{Structure: "lock-ttas-backoff", Threads: 4, BackoffBasePS: 5 * sim.Microsecond}},
		{"negative warmup", Spec{Structure: "counter-faa", Threads: 4, WarmupPS: -1}},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestAppSpecDefaultedDigestEquivalence(t *testing.T) {
	implicit := Spec{Structure: "elimination-stack", Threads: 8}
	explicit := Spec{
		Structure: "elimination-stack", Threads: 8,
		Placement: "compact", Arbiter: "fifo",
		Depth: 256, Slots: 4, WindowPS: 200 * sim.Nanosecond,
		WarmupPS: 20 * sim.Microsecond, DurationPS: 200 * sim.Microsecond,
	}
	di, err := implicit.Digest()
	if err != nil {
		t.Fatal(err)
	}
	de, err := explicit.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if di != de {
		t.Fatalf("spelled-out defaults change the digest: %s vs %s", di, de)
	}
}

// TestAppSpecDigestSensitivity flips every Spec knob off a base spec
// and demands pairwise-distinct digests: any effective knob difference
// must produce a different cache identity.
func TestAppSpecDigestSensitivity(t *testing.T) {
	// The base structure honours no tunable knobs, so knob variants
	// switch structure to one that does.
	base := func() *Spec { return &Spec{Structure: "counter-faa", Threads: 8} }
	variants := map[string]*Spec{"base": base()}
	add := func(name string, mut func(*Spec)) {
		s := base()
		mut(s)
		if err := s.Validate(); err != nil {
			t.Fatalf("variant %s invalid: %v", name, err)
		}
		variants[name] = s
	}
	add("name", func(s *Spec) { s.Name = "named" })
	add("doc", func(s *Spec) { s.Doc = "documented" })
	add("structure", func(s *Spec) { s.Structure = "counter-cas" })
	add("threads", func(s *Spec) { s.Threads = 16 })
	add("ladder", func(s *Spec) { s.Threads = 0; s.ThreadLadder = []int{8, 16} })
	add("placement", func(s *Spec) { s.Placement = "scatter" })
	add("arbiter", func(s *Spec) { s.Arbiter = "random" })
	add("skips", func(s *Spec) { s.Arbiter = "locality"; s.ArbiterSkips = 64 })
	add("depth", func(s *Spec) { s.Structure = "treiber-stack"; s.Depth = 128 })
	add("depth-other", func(s *Spec) { s.Structure = "treiber-stack"; s.Depth = 64 })
	add("stripes", func(s *Spec) { s.Structure = "counter-striped"; s.Stripes = 8 })
	add("slots", func(s *Spec) { s.Structure = "elimination-stack"; s.Slots = 16 })
	add("words", func(s *Spec) { s.Structure = "big-atomic"; s.Words = 2 })
	add("handoffs", func(s *Spec) { s.Structure = "lock-cohort"; s.Handoffs = 8 })
	add("readFraction", func(s *Spec) { s.Structure = "rwlock-central"; s.ReadFraction = 0.9 })
	add("readFraction-other", func(s *Spec) { s.Structure = "rwlock-central"; s.ReadFraction = 0.98 })
	add("crit", func(s *Spec) { s.Structure = "lock-tas"; s.CritPS = 100 * sim.Nanosecond })
	add("backoff-base", func(s *Spec) { s.Structure = "lock-ttas-backoff"; s.BackoffBasePS = 200 * sim.Nanosecond })
	add("backoff-max", func(s *Spec) { s.Structure = "lock-ttas-backoff"; s.BackoffMaxPS = 6400 * sim.Nanosecond })
	add("window", func(s *Spec) { s.Structure = "elimination-stack"; s.WindowPS = 400 * sim.Nanosecond })
	add("warmup", func(s *Spec) { s.WarmupPS = 10 * sim.Microsecond })
	add("duration", func(s *Spec) { s.DurationPS = 100 * sim.Microsecond })
	add("seed", func(s *Spec) { s.Seed = 7 })

	seen := map[string]string{}
	for name, s := range variants {
		d, err := s.Digest()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[d]; dup {
			t.Errorf("variants %s and %s share digest %s", name, prev, d)
		}
		seen[d] = name
	}
}

func TestAppSpecCanonicalFixedPoint(t *testing.T) {
	s := &Spec{Structure: "rwlock-distributed", ReadFraction: 0.9, Threads: 6, Seed: 11}
	raw1, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseSpec(raw1)
	if err != nil {
		t.Fatalf("canonical form does not reparse: %v\n%s", err, raw1)
	}
	raw2, err := s2.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("canonical encoding not a fixed point:\n%s\nvs\n%s", raw1, raw2)
	}
}

func TestAppSpecExpand(t *testing.T) {
	s := &Spec{Structure: "treiber-stack", ThreadLadder: []int{1, 2, 4}, Seed: 3}
	pts := s.Expand()
	if len(pts) != 3 {
		t.Fatalf("Expand returned %d points", len(pts))
	}
	for i, want := range []int{1, 2, 4} {
		if pts[i].Threads != want || pts[i].ThreadLadder != nil {
			t.Fatalf("point %d: threads=%d ladder=%v", i, pts[i].Threads, pts[i].ThreadLadder)
		}
		if err := pts[i].Validate(); err != nil {
			t.Fatalf("expanded point invalid: %v", err)
		}
	}
	if _, err := s.RunConfig(machine.Ideal(8)); err == nil {
		t.Fatal("RunConfig accepted an unexpanded ladder spec")
	}
}

func TestAppSpecRunConfigResolution(t *testing.T) {
	m := machine.Ideal(8)
	s := &Spec{Structure: "treiber-stack", Threads: 4, Placement: "scatter", Seed: 99}
	cfg, err := s.RunConfig(m)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Machine != m || cfg.Threads != 4 || cfg.Seed != 99 {
		t.Fatalf("basic fields wrong: %+v", cfg)
	}
	if cfg.Arbiter != (coherence.FIFOArbiter{}) {
		t.Fatalf("default arbiter = %T, want value FIFOArbiter", cfg.Arbiter)
	}
	if cfg.Placement.Name() != "scatter" {
		t.Fatalf("placement = %s", cfg.Placement.Name())
	}
	if cfg.Warmup != 20*sim.Microsecond || cfg.Duration != 200*sim.Microsecond {
		t.Fatalf("window defaults wrong: warmup=%v duration=%v", cfg.Warmup, cfg.Duration)
	}

	// Cohort needs sockets: single-socket machines are rejected at
	// RunConfig time, not Validate time (the spec is machine-free).
	cohort := &Spec{Structure: "lock-cohort", Threads: 4}
	if err := cohort.Validate(); err != nil {
		t.Fatalf("cohort spec invalid: %v", err)
	}
	if _, err := cohort.RunConfig(machine.Ideal(8)); err == nil {
		t.Fatal("cohort accepted a single-socket machine")
	}
	if _, err := cohort.RunConfig(machine.XeonE5()); err != nil {
		t.Fatalf("cohort rejected a 2-socket machine: %v", err)
	}
}

func TestAppSpecRegistry(t *testing.T) {
	names := SpecNames()
	if len(names) == 0 {
		t.Fatal("no embedded app specs registered")
	}
	s, err := SpecByName("FAA-COUNTER") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "faa-counter" || s.Structure != "counter-faa" {
		t.Fatalf("unexpected spec: %+v", s)
	}
	s.Threads, s.ThreadLadder = 4, nil // mutating the copy must not touch the registry
	again, err := SpecByName("faa-counter")
	if err != nil {
		t.Fatal(err)
	}
	if len(again.ThreadLadder) == 0 {
		t.Fatal("SpecByName returned a shared mutable spec")
	}
	if _, err := SpecByName("no-such-app"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := SelectSpecs("faa-counter,faa-counter", ""); err == nil {
		t.Fatal("duplicate selection accepted")
	}
	sel, err := SelectSpecs("faa-counter,cas-counter", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("SelectSpecs returned %d specs", len(sel))
	}
	for _, name := range names {
		reg, err := SpecByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, pt := range reg.Expand() {
			if err := pt.Validate(); err != nil {
				t.Fatalf("embedded spec %s point invalid: %v", name, err)
			}
		}
	}
}

func TestRunAppSpecEndToEnd(t *testing.T) {
	for _, structure := range []string{"counter-faa", "ws-deque", "big-atomic"} {
		s := &Spec{
			Structure: structure, Threads: 4,
			WarmupPS: sim.Microsecond, DurationPS: 10 * sim.Microsecond, Seed: 1,
		}
		res, err := RunSpec(s, machine.Ideal(8))
		if err != nil {
			t.Fatalf("%s: %v", structure, err)
		}
		if res.Ops == 0 || res.ThroughputMops <= 0 {
			t.Fatalf("%s: empty result: %+v", structure, res)
		}
	}
}
