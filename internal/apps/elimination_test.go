package apps

import (
	"testing"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

func runElim(t *testing.T, m *machine.Machine, threads, slots int) (*EliminationStack, *RunResult) {
	t.Helper()
	var st *EliminationStack
	res, err := Run(RunConfig{
		Machine: m, Threads: threads,
		Build: func(e *sim.Engine, mem *atomics.Memory) App {
			st = NewEliminationStack(e, mem, 128, slots, 200*sim.Nanosecond)
			return st
		},
		Warmup: 20 * sim.Microsecond, Duration: 250 * sim.Microsecond, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, res
}

func TestEliminationHappens(t *testing.T) {
	st, res := runElim(t, machine.XeonE5(), 16, 8)
	if st.Eliminations() == 0 {
		t.Fatal("no eliminations under heavy contention")
	}
	if res.Ops == 0 {
		t.Fatal("no completed ops")
	}
	pushes, pops, empties := st.Stats()
	if pushes+pops+empties != res.TotalOps {
		t.Fatalf("accounting: %d+%d+%d != %d", pushes, pops, empties, res.TotalOps)
	}
}

func TestEliminationStackStructureConsistent(t *testing.T) {
	var st *EliminationStack
	var mem *atomics.Memory
	_, err := Run(RunConfig{
		Machine: machine.Ideal(8), Threads: 8,
		Build: func(e *sim.Engine, m *atomics.Memory) App {
			mem = m
			st = NewEliminationStack(e, m, 16, 4, 100*sim.Nanosecond)
			return st
		},
		Warmup: 10 * sim.Microsecond, Duration: 100 * sim.Microsecond, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Eliminated pairs cancel: the stack's physical depth is
	// seed + pushes - pops, within the in-flight tolerance (one
	// unfinished op per thread, and an exchange whose two completions
	// straddle the horizon).
	pushes, pops, _ := st.Stats()
	want := 16 + int64(pushes) - int64(pops)
	depth := int64(0)
	cur := mem.System().Value(topLine)
	for cur != 0 && depth <= want+32 {
		depth++
		cur = mem.System().Value(st.nodeLine(cur))
	}
	if depth < want-8 || depth > want+8 {
		t.Fatalf("stack depth %d, want %d +-8 (elims=%d)", depth, want, st.Eliminations())
	}
}

func TestEliminationBeatsPlainStackUnderContention(t *testing.T) {
	m := machine.XeonE5()
	plain, err := Run(RunConfig{
		Machine: m, Threads: 32,
		Build: func(e *sim.Engine, mem *atomics.Memory) App {
			return NewTreiberStack(mem, 128)
		},
		Warmup: 20 * sim.Microsecond, Duration: 250 * sim.Microsecond, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, elim := runElimAt(t, m, 32, 16)
	if elim.ThroughputMops <= plain.ThroughputMops {
		t.Fatalf("elimination (%.2f Mops) should beat plain Treiber (%.2f Mops) at 32 threads",
			elim.ThroughputMops, plain.ThroughputMops)
	}
}

func runElimAt(t *testing.T, m *machine.Machine, threads, slots int) (*EliminationStack, *RunResult) {
	t.Helper()
	var st *EliminationStack
	res, err := Run(RunConfig{
		Machine: m, Threads: threads,
		Build: func(e *sim.Engine, mem *atomics.Memory) App {
			st = NewEliminationStack(e, mem, 128, slots, 200*sim.Nanosecond)
			return st
		},
		Warmup: 20 * sim.Microsecond, Duration: 250 * sim.Microsecond, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, res
}

func TestEliminationSlotStatesSettle(t *testing.T) {
	// After the run drains, every slot must be empty or hold a parked
	// pusher whose window event was cut off — never a stale "matched".
	var st *EliminationStack
	var mem *atomics.Memory
	_, err := Run(RunConfig{
		Machine: machine.Ideal(8), Threads: 8,
		Build: func(e *sim.Engine, m *atomics.Memory) App {
			mem = m
			st = NewEliminationStack(e, m, 16, 4, 100*sim.Nanosecond)
			return st
		},
		Warmup: 10 * sim.Microsecond, Duration: 100 * sim.Microsecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		v := mem.System().Value(elimBase + coherence.LineID(i)*256)
		if v != slotEmpty && v != slotPusher && v != slotMatched {
			t.Fatalf("slot %d in impossible state %d", i, v)
		}
	}
	_ = st
}

func TestEliminationDegenerateOneSlot(t *testing.T) {
	st, res := runElim(t, machine.Ideal(8), 4, 0) // clamps to 1 slot
	if res.Ops == 0 {
		t.Fatal("no ops with one slot")
	}
	_ = st
}
