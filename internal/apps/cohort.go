package apps

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/sim"
)

const (
	cohortGlobalLine coherence.LineID = 230
	cohortLocalBase  coherence.LineID = 1 << 25
)

// CohortLock is the NUMA-aware lock the model's cross-socket numbers
// motivate: a per-socket local TAS lock plus a global TAS lock. A
// thread first wins its socket's lock, then the global one; on release
// it prefers handing the global lock to a same-socket successor (by
// releasing only the local lock while keeping the global one, up to a
// handoff budget), so the lock's data lines cross QPI once per cohort
// instead of once per critical section.
type CohortLock struct {
	mem  *atomics.Memory
	eng  *sim.Engine
	crit sim.Time
	// MaxHandoffs bounds same-socket handoffs before the global lock
	// must be surrendered (fairness across sockets).
	MaxHandoffs int
	socketOf    func(core int) int

	cycles uint64
	// handoffs counts same-socket passes of the global lock.
	handoffs uint64
	// attempts counts local TAS and global CAS issues (RetryStats).
	attempts uint64
	// globalHeldBy tracks which socket holds the global lock and how
	// many local handoffs it has consumed (bookkeeping mirrors the
	// simulated lock words; it never substitutes for them).
	passCount int
}

// NewCohortLock builds the lock for machine-described socket mapping.
func NewCohortLock(eng *sim.Engine, mem *atomics.Memory, socketOf func(core int) int, crit sim.Time, maxHandoffs int) *CohortLock {
	if maxHandoffs < 1 {
		maxHandoffs = 16
	}
	return &CohortLock{mem: mem, eng: eng, crit: crit, MaxHandoffs: maxHandoffs, socketOf: socketOf}
}

func (l *CohortLock) Name() string { return "lock-cohort" }

// Handoffs reports same-socket global-lock passes (the cross-socket
// traffic avoided).
func (l *CohortLock) Handoffs() uint64 { return l.handoffs }

// Attempts counts local TAS and global CAS issues (RetryStats).
func (l *CohortLock) Attempts() uint64 { return l.attempts }

func (l *CohortLock) localLine(socket int) coherence.LineID {
	return cohortLocalBase + coherence.LineID(socket)*512
}

func (l *CohortLock) Step(th *Thread, done func()) {
	socket := l.socketOf(th.Core)
	l.acquireLocal(th, socket, func(globalHeld bool) {
		finishCrit := func() {
			l.cycles++
			l.release(th, socket, done)
		}
		// Critical section: update shared data.
		l.mem.FetchAndAdd(th.Core, dataLine, 1, func(atomics.Result) {
			if l.crit > 0 {
				l.eng.Schedule(l.crit, finishCrit)
			} else {
				finishCrit()
			}
		})
		_ = globalHeld
	})
}

// acquireLocal spins on the socket's local lock line; the winner checks
// whether its cohort already owns the global lock (value == socket+1)
// and otherwise acquires it.
func (l *CohortLock) acquireLocal(th *Thread, socket int, locked func(globalHeld bool)) {
	var spinLocal func()
	spinLocal = func() {
		l.attempts++
		l.mem.TestAndSet(th.Core, l.localLine(socket), func(r atomics.Result) {
			if r.Old != 0 {
				spinLocal()
				return
			}
			// Local lock held. Does the cohort hold the global lock?
			l.mem.LoadOp(th.Core, cohortGlobalLine, func(rg atomics.Result) {
				if rg.Old == uint64(socket+1) {
					locked(true) // inherited via local handoff
					return
				}
				l.acquireGlobal(th, socket, locked)
			})
		})
	}
	spinLocal()
}

func (l *CohortLock) acquireGlobal(th *Thread, socket int, locked func(bool)) {
	l.attempts++
	l.mem.CompareAndSwap(th.Core, cohortGlobalLine, 0, uint64(socket+1), func(r atomics.Result) {
		if !r.OK {
			l.acquireGlobal(th, socket, locked)
			return
		}
		l.passCount = 0
		locked(false)
	})
}

// release hands off within the socket when the budget allows (keep the
// global lock, free the local one), else surrenders both.
func (l *CohortLock) release(th *Thread, socket int, done func()) {
	l.passCount++
	if l.passCount < l.MaxHandoffs {
		l.handoffs++
		l.mem.StoreOp(th.Core, l.localLine(socket), 0, func(atomics.Result) { done() })
		return
	}
	// Surrender the global lock first, then the local one.
	l.mem.StoreOp(th.Core, cohortGlobalLine, 0, func(atomics.Result) {
		l.mem.StoreOp(th.Core, l.localLine(socket), 0, func(atomics.Result) { done() })
	})
}
