package apps

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
)

// MS queue line layout. Node IDs index lines above qNodeBase; the value
// stored in a node's line is its next pointer (0 = null).
const (
	headLine  coherence.LineID = 130
	tailLine  coherence.LineID = 150
	qNodeBase coherence.LineID = 1 << 21
)

// MSQueue is the Michael–Scott lock-free FIFO queue built on the
// simulated CAS: two contended lines (head, tail) plus per-node lines.
// Each Step performs an enqueue or a dequeue (50/50). Compared with the
// Treiber stack it doubles the number of hot lines, which is exactly
// the contrast the contention model prices.
type MSQueue struct {
	mem      *atomics.Memory
	nextID   uint64
	enqueues uint64
	dequeues uint64
	empties  uint64
	attempts uint64
}

// NewMSQueue returns a queue pre-seeded with depth elements (plus the
// dummy node the algorithm requires).
func NewMSQueue(mem *atomics.Memory, depth int) *MSQueue {
	q := &MSQueue{mem: mem, nextID: 1}
	dummy := q.alloc()
	mem.System().SetValue(q.node(dummy), 0)
	mem.System().SetValue(headLine, dummy)
	tail := dummy
	for i := 0; i < depth; i++ {
		id := q.alloc()
		mem.System().SetValue(q.node(id), 0)
		mem.System().SetValue(q.node(tail), id)
		tail = id
	}
	mem.System().SetValue(tailLine, tail)
	return q
}

func (q *MSQueue) Name() string { return "ms-queue" }

// Stats reports operation counts (enqueues, dequeues, empty dequeues).
func (q *MSQueue) Stats() (enqueues, dequeues, empties uint64) {
	return q.enqueues, q.dequeues, q.empties
}

// Attempts counts the publishing CAS issues — next-pointer links on
// enqueue, head swings on dequeue (RetryStats). Help-swing CASes are
// not counted; they are not the gating step.
func (q *MSQueue) Attempts() uint64 { return q.attempts }

func (q *MSQueue) alloc() uint64 {
	id := q.nextID
	q.nextID++
	return id
}

func (q *MSQueue) node(id uint64) coherence.LineID {
	return qNodeBase + coherence.LineID(id)
}

func (q *MSQueue) Step(th *Thread, done func()) {
	if th.RNG.Float64() < 0.5 {
		q.enqueue(th, done)
	} else {
		q.dequeue(th, done)
	}
}

func (q *MSQueue) enqueue(th *Thread, done func()) {
	id := q.alloc()
	// Initialize the new node's next pointer (private line until
	// published by the CAS on its predecessor).
	q.mem.StoreOp(th.Core, q.node(id), 0, func(atomics.Result) {
		q.enqueueLoop(th, id, done)
	})
}

func (q *MSQueue) enqueueLoop(th *Thread, id uint64, done func()) {
	q.mem.LoadOp(th.Core, tailLine, func(rt atomics.Result) {
		tail := rt.Old
		q.mem.LoadOp(th.Core, q.node(tail), func(rn atomics.Result) {
			next := rn.Old
			if next != 0 {
				// Tail lags: help swing it, then retry.
				q.mem.CompareAndSwap(th.Core, tailLine, tail, next, func(atomics.Result) {
					q.enqueueLoop(th, id, done)
				})
				return
			}
			q.attempts++
			q.mem.CompareAndSwap(th.Core, q.node(tail), 0, id, func(rc atomics.Result) {
				if !rc.OK {
					q.enqueueLoop(th, id, done)
					return
				}
				// Published; swing the tail (best effort — failure means
				// someone helped already).
				q.mem.CompareAndSwap(th.Core, tailLine, tail, id, func(atomics.Result) {
					q.enqueues++
					done()
				})
			})
		})
	})
}

func (q *MSQueue) dequeue(th *Thread, done func()) {
	q.mem.LoadOp(th.Core, headLine, func(rh atomics.Result) {
		head := rh.Old
		q.mem.LoadOp(th.Core, tailLine, func(rt atomics.Result) {
			tail := rt.Old
			q.mem.LoadOp(th.Core, q.node(head), func(rn atomics.Result) {
				next := rn.Old
				if next == 0 {
					// Empty (only the dummy remains).
					q.empties++
					done()
					return
				}
				if head == tail {
					// Tail lags behind a concurrent enqueue: help.
					q.mem.CompareAndSwap(th.Core, tailLine, tail, next, func(atomics.Result) {
						q.dequeue(th, done)
					})
					return
				}
				q.attempts++
				q.mem.CompareAndSwap(th.Core, headLine, head, next, func(rc atomics.Result) {
					if !rc.OK {
						q.dequeue(th, done)
						return
					}
					q.dequeues++
					done()
				})
			})
		})
	})
}
