package apps

import (
	"bytes"
	"crypto/sha256"
	"embed"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

// Spec is the declarative, serializable description of one
// concurrent-object benchmark cell: pure data — a structure name from
// the registry below, a thread count (or a ladder of counts),
// placement and arbiter policies by name, and the structure's knobs.
// It is the apps counterpart of workload.Spec: a JSON spec file is a
// first-class app definition with exactly the powers of a hand-written
// RunConfig, and its content digest is the cell's identity in the
// harness resume cache.
//
// A Spec is machine-independent; RunConfig joins it with a machine.
// All time fields are integer picoseconds (sim.Time's unit), so a spec
// round-trips through JSON byte-exactly and its digest is stable.
type Spec struct {
	// Name identifies the spec in tables, listings and -apps flags
	// (optional for inline/derived specs; required to register).
	Name string `json:"name,omitempty"`
	// Doc is a one-line description for listings (optional).
	Doc string `json:"doc,omitempty"`

	// Structure names the concurrent object under test — one of
	// StructureNames(): counter-faa, counter-cas, counter-striped,
	// treiber-stack, elimination-stack, ms-queue, lock-tas, lock-ttas,
	// lock-ttas-backoff, lock-ticket, lock-cohort, rwlock-central,
	// rwlock-distributed, ws-deque, big-atomic.
	Structure string `json:"structure"`

	// Exactly one of Threads and ThreadLadder must be set. Threads pins
	// one thread count; ThreadLadder (strictly increasing) describes a
	// sweep that Expand turns into one pinned spec per point.
	Threads      int   `json:"threads,omitempty"`
	ThreadLadder []int `json:"threadLadder,omitempty"`

	// Placement names the thread→hardware-slot policy
	// (machine.PlacementByName): compact (default), scatter, smt-first,
	// or socket-N.
	Placement string `json:"placement,omitempty"`
	// Arbiter names the coherence arbitration policy
	// (coherence.NewByName): fifo (default), random, or locality.
	// ArbiterSkips bounds a locality arbiter's starvation window
	// (0 = unbounded) and is rejected for the other policies. The
	// random arbiter's RNG stream is seeded from Seed.
	Arbiter      string `json:"arbiter,omitempty"`
	ArbiterSkips int    `json:"arbiterSkips,omitempty"`

	// Depth pre-seeds container structures: nodes on the stacks and
	// queue, items per deque (0 takes the structure default). Rejected
	// for structures without a backing container.
	Depth int `json:"depth,omitempty"`
	// Stripes is the counter-striped stripe count (0 = 16).
	Stripes int `json:"stripes,omitempty"`
	// Slots is the elimination-stack collision-array width (0 = 4) or
	// the rwlock-distributed reader-slot count (0 = one per thread).
	Slots int `json:"slots,omitempty"`
	// Words is the big-atomic object width; 1 is the single-word CAS
	// baseline (0 = 4).
	Words int `json:"words,omitempty"`
	// Handoffs is the lock-cohort local hand-off bound (0 = 16).
	Handoffs int `json:"handoffs,omitempty"`

	// ReadFraction is the read mix for counter-striped, the RW locks
	// and big-atomic: the probability a Step is a read. Zero means all
	// writes. Rejected for structures without a read path.
	ReadFraction float64 `json:"readFraction,omitempty"`

	// CritPS is the lock-family critical-section length in picoseconds
	// (0 = 50ns for the mutual-exclusion locks, 20ns for RW locks).
	CritPS sim.Time `json:"critPS,omitempty"`
	// BackoffBasePS/BackoffMaxPS bound lock-ttas-backoff's exponential
	// backoff (0 = 100ns / 3.2µs).
	BackoffBasePS sim.Time `json:"backoffBasePS,omitempty"`
	BackoffMaxPS  sim.Time `json:"backoffMaxPS,omitempty"`
	// WindowPS is the elimination-stack collision window (0 = 200ns).
	WindowPS sim.Time `json:"windowPS,omitempty"`

	// WarmupPS and DurationPS bound the run in picoseconds; only
	// operations completing in [warmup, warmup+duration] are measured.
	// Zero means the runner defaults (20µs / 200µs); the harness pins
	// its own window per Options.
	WarmupPS   sim.Time `json:"warmupPS,omitempty"`
	DurationPS sim.Time `json:"durationPS,omitempty"`

	// Seed seeds the cell's RNG streams (thread jitter, structure
	// coin flips, the random arbiter). The harness derives per-cell
	// seeds from its base seed when a spec leaves this zero.
	Seed uint64 `json:"seed,omitempty"`
}

// Knob bounds. Thread counts share the machine layer's hardware-thread
// ceiling; container depths and widths are bounded well above any
// plausible benchmark — a spec beyond them is a typo, not a plan.
const (
	maxSpecThreads = 1 << 16
	maxSpecDepth   = 1 << 16
	maxSpecStripes = 1 << 12
	maxSpecSlots   = 1 << 10
	maxSpecWords   = 64
)

// Structure knobs, used to reject ineffective settings: a knob set on
// a structure that ignores it would silently change the digest (and
// the cache identity) without changing the simulation.
const (
	knobDepth = 1 << iota
	knobStripes
	knobSlots
	knobWords
	knobHandoffs
	knobReadFraction
	knobCrit
	knobBackoff
	knobWindow
)

// structureInfo is one registry entry: the knobs the structure
// honours, its defaults, the hot line its contended traffic lands on
// (for tracing), and the builder RunConfig wires into apps.Run.
type structureInfo struct {
	name        string
	doc         string
	knobs       int
	multiSocket bool             // requires Sockets > 1 (lock-cohort)
	hot         coherence.LineID // most-contended line, for atomictrace
	build       func(d *Spec, m *machine.Machine, eng *sim.Engine, mem *atomics.Memory) App
}

// structures is the named-builder registry. Every structure an app
// spec can name lives here; the F-experiments and the CLIs resolve
// builders through it rather than hard-coding constructors.
var structures = map[string]*structureInfo{
	"counter-faa": {
		doc: "shared counter, fetch-and-add increments",
		hot: counterLine,
		build: func(d *Spec, m *machine.Machine, eng *sim.Engine, mem *atomics.Memory) App {
			return NewFAACounter(mem)
		},
	},
	"counter-cas": {
		doc: "shared counter, CAS retry-loop increments",
		hot: counterLine,
		build: func(d *Spec, m *machine.Machine, eng *sim.Engine, mem *atomics.Memory) App {
			return NewCASCounter(mem)
		},
	},
	"counter-striped": {
		doc:   "striped counter: FAA a per-thread stripe, reads sweep all stripes",
		knobs: knobStripes | knobReadFraction,
		hot:   stripeBase,
		build: func(d *Spec, m *machine.Machine, eng *sim.Engine, mem *atomics.Memory) App {
			return NewStripedCounter(mem, d.Stripes, d.ReadFraction)
		},
	},
	"treiber-stack": {
		doc:   "Treiber lock-free stack, 50/50 push-pop",
		knobs: knobDepth,
		hot:   topLine,
		build: func(d *Spec, m *machine.Machine, eng *sim.Engine, mem *atomics.Memory) App {
			return NewTreiberStack(mem, d.Depth)
		},
	},
	"elimination-stack": {
		doc:   "Treiber stack with an elimination collision array",
		knobs: knobDepth | knobSlots | knobWindow,
		hot:   topLine,
		build: func(d *Spec, m *machine.Machine, eng *sim.Engine, mem *atomics.Memory) App {
			return NewEliminationStack(eng, mem, d.Depth, d.Slots, d.WindowPS)
		},
	},
	"ms-queue": {
		doc:   "Michael-Scott lock-free queue, 50/50 enqueue-dequeue",
		knobs: knobDepth,
		hot:   headLine,
		build: func(d *Spec, m *machine.Machine, eng *sim.Engine, mem *atomics.Memory) App {
			return NewMSQueue(mem, d.Depth)
		},
	},
	"lock-tas": {
		doc:   "test-and-set spinlock guarding a critical section",
		knobs: knobCrit,
		hot:   lockLine,
		build: func(d *Spec, m *machine.Machine, eng *sim.Engine, mem *atomics.Memory) App {
			return NewTASLock(eng, mem, d.CritPS)
		},
	},
	"lock-ttas": {
		doc:   "test-and-test-and-set spinlock",
		knobs: knobCrit,
		hot:   lockLine,
		build: func(d *Spec, m *machine.Machine, eng *sim.Engine, mem *atomics.Memory) App {
			return NewTTASLock(eng, mem, d.CritPS)
		},
	},
	"lock-ttas-backoff": {
		doc:   "TTAS spinlock with exponential backoff",
		knobs: knobCrit | knobBackoff,
		hot:   lockLine,
		build: func(d *Spec, m *machine.Machine, eng *sim.Engine, mem *atomics.Memory) App {
			return NewTTASBackoffLock(eng, mem, d.CritPS, d.BackoffBasePS, d.BackoffMaxPS)
		},
	},
	"lock-ticket": {
		doc:   "FIFO ticket lock (FAA ticket, spin on serving)",
		knobs: knobCrit,
		hot:   servingLine,
		build: func(d *Spec, m *machine.Machine, eng *sim.Engine, mem *atomics.Memory) App {
			return NewTicketLock(eng, mem, d.CritPS)
		},
	},
	"lock-cohort": {
		doc:         "cohort lock: per-socket TAS under a global CAS (multi-socket machines only)",
		knobs:       knobCrit | knobHandoffs,
		multiSocket: true,
		hot:         cohortGlobalLine,
		build: func(d *Spec, m *machine.Machine, eng *sim.Engine, mem *atomics.Memory) App {
			return NewCohortLock(eng, mem, m.SocketOf, d.CritPS, d.Handoffs)
		},
	},
	"rwlock-central": {
		doc:   "reader-writer lock, central reader-count word",
		knobs: knobReadFraction | knobCrit,
		hot:   rwLockLine,
		build: func(d *Spec, m *machine.Machine, eng *sim.Engine, mem *atomics.Memory) App {
			return NewCentralRWLock(eng, mem, d.ReadFraction, d.CritPS)
		},
	},
	"rwlock-distributed": {
		doc:   "reader-writer lock, per-slot reader announcements (slots 0 = one per thread)",
		knobs: knobReadFraction | knobCrit | knobSlots,
		hot:   rwFlagLine,
		build: func(d *Spec, m *machine.Machine, eng *sim.Engine, mem *atomics.Memory) App {
			slots := d.Slots
			if slots == 0 {
				slots = d.Threads
			}
			return NewDistributedRWLock(eng, mem, slots, d.ReadFraction, d.CritPS)
		},
	},
	"ws-deque": {
		doc:   "Chase-Lev work-stealing deques, one per thread, random-victim steals",
		knobs: knobDepth,
		hot:   dequeTopBase,
		build: func(d *Spec, m *machine.Machine, eng *sim.Engine, mem *atomics.Memory) App {
			dq, err := NewWSDeque(mem, d.Threads, d.Depth)
			if err != nil {
				// Validate bounds depth and threads; reaching here is a
				// registry bug, not bad user input.
				panic(fmt.Sprintf("apps: ws-deque builder: %v", err))
			}
			return dq
		},
	},
	"big-atomic": {
		doc:   "multi-word atomic object: seqlock reads, CAS2-locked updates (words 1 = single-word CAS baseline)",
		knobs: knobWords | knobReadFraction,
		hot:   bigAtomicBase,
		build: func(d *Spec, m *machine.Machine, eng *sim.Engine, mem *atomics.Memory) App {
			a, err := NewBigAtomicApp(mem, d.Words, d.ReadFraction)
			if err != nil {
				panic(fmt.Sprintf("apps: big-atomic builder: %v", err))
			}
			return a
		},
	},
}

func init() {
	for name, info := range structures {
		info.name = name
	}
}

// StructureNames returns the registered structure names, sorted.
func StructureNames() []string {
	out := make([]string, 0, len(structures))
	for name := range structures {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// StructureDoc returns a structure's one-line description.
func StructureDoc(name string) string {
	if info, ok := structures[strings.ToLower(name)]; ok {
		return info.doc
	}
	return ""
}

// structureByName resolves a structure case-insensitively.
func structureByName(name string) (*structureInfo, error) {
	info, ok := structures[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("app spec: unknown structure %q (registered: %s)", name, strings.Join(StructureNames(), ", "))
	}
	return info, nil
}

// HotLine returns the structure's most-contended line — the one a
// trace of the cell should watch.
func (s *Spec) HotLine() (coherence.LineID, error) {
	info, err := structureByName(s.Structure)
	if err != nil {
		return 0, err
	}
	return info.hot, nil
}

// Clone returns a deep copy; callers derive variants (a thread ladder
// point, a tweaked knob) by cloning and mutating.
func (s *Spec) Clone() *Spec {
	out := *s
	out.ThreadLadder = append([]int(nil), s.ThreadLadder...)
	return &out
}

// Validate checks the spec's machine-independent invariants: the
// structure exists, policy names resolve, knob values are in range,
// and no knob is set that the chosen structure would silently ignore.
// Capacity against a concrete machine (threads vs hardware slots,
// cohort's socket requirement) is checked at RunConfig time.
func (s *Spec) Validate() error {
	info, err := structureByName(s.Structure)
	if err != nil {
		return err
	}
	switch {
	case s.Threads == 0 && len(s.ThreadLadder) == 0:
		return fmt.Errorf("app spec: one of threads or threadLadder is required")
	case s.Threads != 0 && len(s.ThreadLadder) != 0:
		return fmt.Errorf("app spec: threads and threadLadder are mutually exclusive")
	case s.Threads < 0 || s.Threads > maxSpecThreads:
		return fmt.Errorf("app spec: threads = %d (want 1..%d)", s.Threads, maxSpecThreads)
	}
	prev := 0
	for _, n := range s.ThreadLadder {
		if n <= prev || n > maxSpecThreads {
			return fmt.Errorf("app spec: threadLadder %v must be strictly increasing in 1..%d", s.ThreadLadder, maxSpecThreads)
		}
		prev = n
	}
	if _, err := machine.PlacementByName(s.Placement); err != nil {
		return fmt.Errorf("app spec: %w", err)
	}
	arb := s.Arbiter
	if arb == "" {
		arb = "fifo"
	}
	if _, err := coherence.NewByName(arb, s.ArbiterSkips, 0); err != nil {
		return fmt.Errorf("app spec: %w", err)
	}
	// Ineffective knobs are rejected: they would fork the digest (and
	// the resume-cache identity) without changing the simulation.
	for _, k := range []struct {
		set  bool
		mask int
		name string
	}{
		{s.Depth != 0, knobDepth, "depth"},
		{s.Stripes != 0, knobStripes, "stripes"},
		{s.Slots != 0, knobSlots, "slots"},
		{s.Words != 0, knobWords, "words"},
		{s.Handoffs != 0, knobHandoffs, "handoffs"},
		{s.ReadFraction != 0, knobReadFraction, "readFraction"},
		{s.CritPS != 0, knobCrit, "critPS"},
		{s.BackoffBasePS != 0 || s.BackoffMaxPS != 0, knobBackoff, "backoffBasePS/backoffMaxPS"},
		{s.WindowPS != 0, knobWindow, "windowPS"},
	} {
		if k.set && info.knobs&k.mask == 0 {
			return fmt.Errorf("app spec: %s has no effect for structure %s", k.name, info.name)
		}
	}
	maxDepth := maxSpecDepth
	if info.name == "ws-deque" {
		maxDepth = dequeBufSlots
	}
	switch {
	case s.Depth < 0 || s.Depth > maxDepth:
		return fmt.Errorf("app spec: depth = %d (want 0..%d)", s.Depth, maxDepth)
	case s.Stripes < 0 || s.Stripes > maxSpecStripes:
		return fmt.Errorf("app spec: stripes = %d (want 0..%d)", s.Stripes, maxSpecStripes)
	case s.Slots < 0 || s.Slots > maxSpecSlots:
		return fmt.Errorf("app spec: slots = %d (want 0..%d)", s.Slots, maxSpecSlots)
	case s.Words < 0 || s.Words > maxSpecWords:
		return fmt.Errorf("app spec: words = %d (want 0..%d)", s.Words, maxSpecWords)
	case s.Handoffs < 0 || s.Handoffs > maxSpecThreads:
		return fmt.Errorf("app spec: handoffs = %d (want 0..%d)", s.Handoffs, maxSpecThreads)
	case s.ReadFraction < 0 || s.ReadFraction > 1:
		return fmt.Errorf("app spec: readFraction %v out of [0,1]", s.ReadFraction)
	case s.CritPS < 0 || s.BackoffBasePS < 0 || s.BackoffMaxPS < 0 || s.WindowPS < 0:
		return fmt.Errorf("app spec: negative time knob")
	case s.WarmupPS < 0 || s.DurationPS < 0:
		return fmt.Errorf("app spec: negative warmupPS/durationPS")
	}
	if info.knobs&knobBackoff != 0 {
		base, max := s.BackoffBasePS, s.BackoffMaxPS
		if base == 0 {
			base = defaultBackoffBase
		}
		if max == 0 {
			max = defaultBackoffMax
		}
		if max < base {
			return fmt.Errorf("app spec: backoffMaxPS %d below backoffBasePS %d", max, base)
		}
	}
	return nil
}

// Structure defaults, applied by Defaulted. They match the knobs the
// F-experiments pin, so a bare {"structure": ..., "threads": ...} spec
// reproduces the corresponding figure's cell.
const (
	defaultDepth       = 256
	defaultDequeDepth  = 64
	defaultStripes     = 16
	defaultElimSlots   = 4
	defaultWords       = 4
	defaultHandoffs    = 16
	defaultLockCrit    = 50 * sim.Nanosecond
	defaultRWCrit      = 20 * sim.Nanosecond
	defaultBackoffBase = 100 * sim.Nanosecond
	defaultBackoffMax  = 3200 * sim.Nanosecond
	defaultElimWindow  = 200 * sim.Nanosecond
)

// Defaulted returns a copy with every defaultable field made explicit:
// placement, arbiter, the structure's knob defaults, and the
// measurement window. The digest is computed over this form, so a spec
// that spells out the defaults and one that omits them are the same
// cell. Knobs the structure ignores stay zero (Validate rejects them
// when set), so they never perturb the digest.
func (s *Spec) Defaulted() *Spec {
	out := s.Clone()
	info, err := structureByName(out.Structure)
	if err != nil {
		return out
	}
	out.Structure = info.name
	if out.Placement == "" {
		out.Placement = "compact"
	}
	if out.Arbiter == "" {
		out.Arbiter = "fifo"
	}
	if info.knobs&knobDepth != 0 && out.Depth == 0 {
		if info.name == "ws-deque" {
			out.Depth = defaultDequeDepth
		} else {
			out.Depth = defaultDepth
		}
	}
	if info.knobs&knobStripes != 0 && out.Stripes == 0 {
		out.Stripes = defaultStripes
	}
	if info.name == "elimination-stack" && out.Slots == 0 {
		out.Slots = defaultElimSlots
	}
	if info.knobs&knobWords != 0 && out.Words == 0 {
		out.Words = defaultWords
	}
	if info.knobs&knobHandoffs != 0 && out.Handoffs == 0 {
		out.Handoffs = defaultHandoffs
	}
	if info.knobs&knobCrit != 0 && out.CritPS == 0 {
		if strings.HasPrefix(info.name, "rwlock") {
			out.CritPS = defaultRWCrit
		} else {
			out.CritPS = defaultLockCrit
		}
	}
	if info.knobs&knobBackoff != 0 {
		if out.BackoffBasePS == 0 {
			out.BackoffBasePS = defaultBackoffBase
		}
		if out.BackoffMaxPS == 0 {
			out.BackoffMaxPS = defaultBackoffMax
		}
	}
	if info.knobs&knobWindow != 0 && out.WindowPS == 0 {
		out.WindowPS = defaultElimWindow
	}
	if out.WarmupPS == 0 {
		out.WarmupPS = 20 * sim.Microsecond
	}
	if out.DurationPS == 0 {
		out.DurationPS = 200 * sim.Microsecond
	}
	return out
}

// Canonical returns the canonical JSON encoding of the defaulted spec —
// fixed field order, defaults explicit, no insignificant whitespace —
// the bytes the digest is computed over.
func (s *Spec) Canonical() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(s.Defaulted())
}

// Digest returns a short hex digest of the canonical encoding. Joined
// with the machine key it is the cell's identity in harness cache keys:
// two specs that differ in any effective knob can never alias a cache
// entry, and two spellings of the same cell always share one.
func (s *Spec) Digest() (string, error) {
	raw, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])[:12], nil
}

// Expand returns the pinned single-thread-count specs this spec
// describes: itself if Threads is set, otherwise one clone per
// ThreadLadder point with Threads pinned and the ladder cleared.
func (s *Spec) Expand() []*Spec {
	if len(s.ThreadLadder) == 0 {
		return []*Spec{s.Clone()}
	}
	out := make([]*Spec, 0, len(s.ThreadLadder))
	for _, n := range s.ThreadLadder {
		p := s.Clone()
		p.Threads = n
		p.ThreadLadder = nil
		out = append(out, p)
	}
	return out
}

// CheckMachine reports whether the spec's structure can run on the
// machine (lock-cohort needs more than one socket). The harness skips
// incompatible machine × spec pairs instead of failing the suite.
func (s *Spec) CheckMachine(m *machine.Machine) error {
	info, err := structureByName(s.Structure)
	if err != nil {
		return err
	}
	if info.multiSocket && m.Sockets < 2 {
		return fmt.Errorf("app spec %s: structure %s needs a multi-socket machine, %s has %d socket",
			s.label(), info.name, m.Name, m.Sockets)
	}
	return nil
}

// RunConfig joins the spec with a machine, resolving the structure and
// policy names into a runnable apps.RunConfig. The spec must be pinned
// (no thread ladder; see Expand). The resolved arbiter for "fifo" is
// the stateless value coherence.FIFOArbiter{} — identical in behaviour
// and fast-forward eligibility to the nil default a hand-written
// RunConfig would carry.
func (s *Spec) RunConfig(m *machine.Machine) (RunConfig, error) {
	if err := s.Validate(); err != nil {
		return RunConfig{}, err
	}
	if len(s.ThreadLadder) > 0 {
		return RunConfig{}, fmt.Errorf("app spec %s: expand the thread ladder before building a RunConfig", s.label())
	}
	d := s.Defaulted()
	info, err := structureByName(d.Structure)
	if err != nil {
		return RunConfig{}, err
	}
	if err := d.CheckMachine(m); err != nil {
		return RunConfig{}, err
	}
	place, err := machine.PlacementByName(d.Placement)
	if err != nil {
		return RunConfig{}, err
	}
	arb, err := coherence.NewByName(d.Arbiter, d.ArbiterSkips, d.Seed)
	if err != nil {
		return RunConfig{}, err
	}
	return RunConfig{
		Machine:   m,
		Arbiter:   arb,
		Placement: place,
		Threads:   d.Threads,
		Build: func(eng *sim.Engine, mem *atomics.Memory) App {
			return info.build(d, m, eng, mem)
		},
		Warmup:   d.WarmupPS,
		Duration: d.DurationPS,
		Seed:     d.Seed,
	}, nil
}

// label names the spec in errors and listings.
func (s *Spec) label() string {
	if s.Name != "" {
		return s.Name
	}
	return s.Structure
}

// Label is the spec's display name: Name if set, else the structure.
func (s *Spec) Label() string { return s.label() }

// RunSpec runs a pinned spec on the given machine and returns the
// measured RunResult.
func RunSpec(s *Spec, m *machine.Machine) (*RunResult, error) {
	cfg, err := s.RunConfig(m)
	if err != nil {
		return nil, err
	}
	return Run(cfg)
}

// ParseSpec decodes a JSON app spec and validates it. Unknown fields
// and trailing garbage are errors: a spec file is user input, and a
// typo that silently dropped a knob would produce confidently wrong
// cells.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("app spec: %w", err)
	}
	var trailer json.RawMessage
	if err := dec.Decode(&trailer); err != io.EOF {
		return nil, fmt.Errorf("app spec: trailing data after the spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpecFile reads, parses and validates an app spec from a JSON
// file (the CLIs' -appfile path).
func LoadSpecFile(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("app spec %s: %w", path, err)
	}
	s, err := ParseSpec(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// This is the app spec registry: every built-in app benchmark is an
// embedded JSON spec under specs/; init loads and registers them, and
// SpecByName resolves lookups case-insensitively. Adding a built-in
// app requires zero Go code: drop a JSON file in specs/ and it becomes
// selectable by name in every CLI's -apps flag.

//go:embed specs/*.json
var specFS embed.FS

var (
	specRegMu  sync.RWMutex
	specReg    = map[string]*Spec{}  // canonical name → spec
	specLookup = map[string]string{} // lowercased name → canonical name
)

// RegisterSpec adds a named, valid spec to the registry (name matched
// case-insensitively by SpecByName). Duplicates are errors: a silent
// shadow would make lookups ambiguous.
func RegisterSpec(s *Spec) error {
	if s.Name == "" {
		return fmt.Errorf("app spec: registration requires a name")
	}
	if err := s.Validate(); err != nil {
		return err
	}
	specRegMu.Lock()
	defer specRegMu.Unlock()
	lk := strings.ToLower(s.Name)
	if owner, dup := specLookup[lk]; dup {
		return fmt.Errorf("app spec: name %q collides with %s", s.Name, owner)
	}
	specReg[s.Name] = s.Clone()
	specLookup[lk] = s.Name
	return nil
}

func init() {
	entries, err := specFS.ReadDir("specs")
	if err != nil {
		panic(fmt.Sprintf("apps: embedded specs: %v", err))
	}
	for _, e := range entries {
		raw, err := specFS.ReadFile("specs/" + e.Name())
		if err != nil {
			panic(fmt.Sprintf("apps: embedded spec %s: %v", e.Name(), err))
		}
		s, err := ParseSpec(raw)
		if err != nil {
			panic(fmt.Sprintf("apps: embedded spec %s: %v", e.Name(), err))
		}
		if err := RegisterSpec(s); err != nil {
			panic(fmt.Sprintf("apps: embedded spec %s: %v", e.Name(), err))
		}
	}
}

// SpecNames returns the canonical names of all registered app specs,
// sorted.
func SpecNames() []string {
	specRegMu.RLock()
	defer specRegMu.RUnlock()
	out := make([]string, 0, len(specReg))
	for name := range specReg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SpecByName returns a deep copy of the registered spec for the given
// name (case-insensitive). Callers mutate the copy freely.
func SpecByName(name string) (*Spec, error) {
	specRegMu.RLock()
	defer specRegMu.RUnlock()
	canonical, ok := specLookup[strings.ToLower(name)]
	if !ok {
		names := make([]string, 0, len(specReg))
		for n := range specReg {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("apps: unknown app %q (registered: %s)", name, strings.Join(names, ", "))
	}
	return specReg[canonical].Clone(), nil
}

// SelectSpecs resolves the app specs a CLI run targets: names is a
// comma-separated list of registered spec names, files a
// comma-separated list of JSON spec file paths. Either may be empty;
// results concatenate in the order given, names first. Specs with
// duplicate digests are rejected: the harness would silently fold
// their cells together.
func SelectSpecs(names, files string) ([]*Spec, error) {
	var out []*Spec
	for _, name := range splitList(names) {
		s, err := SpecByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	for _, path := range splitList(files) {
		s, err := LoadSpecFile(path)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	seen := map[string]bool{}
	for _, s := range out {
		d, err := s.Digest()
		if err != nil {
			return nil, err
		}
		if seen[d] {
			return nil, fmt.Errorf("apps: spec %s (digest %s) selected twice", s.label(), d)
		}
		seen[d] = true
	}
	return out, nil
}

func splitList(csv string) []string {
	var out []string
	for _, part := range strings.Split(csv, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
