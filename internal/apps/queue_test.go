package apps

import (
	"testing"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

func TestMSQueueBasics(t *testing.T) {
	var q *MSQueue
	res, err := Run(appCfg(machine.Ideal(8), 8, func(e *sim.Engine, mem *atomics.Memory) App {
		q = NewMSQueue(mem, 64)
		return q
	}))
	if err != nil {
		t.Fatal(err)
	}
	enq, deq, emp := q.Stats()
	if enq+deq+emp != res.TotalOps {
		t.Fatalf("accounting: %d+%d+%d != %d", enq, deq, emp, res.TotalOps)
	}
	if enq == 0 || deq == 0 {
		t.Fatal("queue exercised only one operation type")
	}
	// Seeded 64 deep: dequeues can exceed enqueues by at most 64.
	if deq > enq+64 {
		t.Fatalf("dequeues %d exceed enqueues %d + seed", deq, enq)
	}
}

func TestMSQueueStructureConsistent(t *testing.T) {
	var q *MSQueue
	var mem *atomics.Memory
	_, err := Run(appCfg(machine.Ideal(8), 8, func(e *sim.Engine, m *atomics.Memory) App {
		mem = m
		q = NewMSQueue(m, 16)
		return q
	}))
	if err != nil {
		t.Fatal(err)
	}
	// Walk from head: length (excluding dummy) = 16 + enq - deq, give
	// or take operations that were cut off by the horizon after their
	// linearization point but before their completion callback (at most
	// one per thread).
	enq, deq, _ := q.Stats()
	want := 16 + int64(enq) - int64(deq)
	length := int64(0)
	cur := mem.System().Value(headLine) // dummy
	next := mem.System().Value(q.node(cur))
	for next != 0 && length <= want+16 {
		length++
		cur = next
		next = mem.System().Value(q.node(cur))
	}
	if length < want-8 || length > want+8 {
		t.Fatalf("queue length %d, want %d +-8", length, want)
	}
	// Tail points at the last node or lags it by a bounded number of
	// hops (an enqueue cut off between publishing and swinging leaves a
	// lag; the algorithm's help rule keeps it short).
	tail := mem.System().Value(tailLine)
	lag := 0
	for tail != cur && lag <= 8 {
		tail = mem.System().Value(q.node(tail))
		lag++
		if tail == 0 {
			t.Fatal("tail chain fell off the queue")
		}
	}
	if tail != cur {
		t.Fatalf("tail lags the last node by more than %d hops", lag)
	}
}

func TestMSQueueFIFOOrderSingleThread(t *testing.T) {
	eng := sim.NewEngine()
	mem, err := atomics.NewMemory(eng, machine.Ideal(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	q := NewMSQueue(mem, 0)
	th := &Thread{ID: 0, Core: 0, RNG: sim.NewRNG(1)}
	// Enqueue 3, then dequeue 3: FIFO means head advances through the
	// nodes in enqueue order.
	var enqueued []uint64
	for i := 0; i < 3; i++ {
		before := q.nextID
		q.enqueue(th, func() {})
		eng.Drain()
		enqueued = append(enqueued, before)
	}
	for i := 0; i < 3; i++ {
		wantHead := enqueued[i]
		q.dequeue(th, func() {})
		eng.Drain()
		if got := mem.System().Value(headLine); got != wantHead {
			t.Fatalf("dequeue %d: head = %d, want %d (FIFO violated)", i, got, wantHead)
		}
	}
	// Now empty.
	_, _, empBefore := q.Stats()
	q.dequeue(th, func() {})
	eng.Drain()
	if _, _, emp := q.Stats(); emp != empBefore+1 {
		t.Fatal("empty dequeue not detected")
	}
}

func TestStripedCounterCorrectAndScales(t *testing.T) {
	m := machine.XeonE5()
	var hot, striped *apps16Results
	hot = runCounter(t, m, func(e *sim.Engine, mem *atomics.Memory) App {
		return NewFAACounter(mem)
	}, func(a App) uint64 { return a.(*FAACounter).Value() })
	striped = runCounter(t, m, func(e *sim.Engine, mem *atomics.Memory) App {
		return NewStripedCounter(mem, 16, 0)
	}, func(a App) uint64 { return a.(*StripedCounter).Value() })

	if striped.value != striped.total {
		t.Fatalf("striped counter lost updates: %d != %d", striped.value, striped.total)
	}
	if striped.mops < 5*hot.mops {
		t.Fatalf("16-way striping (%.1f Mops) should be >=5x the hot counter (%.1f Mops)",
			striped.mops, hot.mops)
	}
}

type apps16Results struct {
	mops  float64
	total uint64
	value uint64
}

func runCounter(t *testing.T, m *machine.Machine, build func(*sim.Engine, *atomics.Memory) App, val func(App) uint64) *apps16Results {
	t.Helper()
	var app App
	res, err := Run(appCfg(m, 16, func(e *sim.Engine, mem *atomics.Memory) App {
		app = build(e, mem)
		return app
	}))
	if err != nil {
		t.Fatal(err)
	}
	return &apps16Results{mops: res.ThroughputMops, total: res.TotalOps, value: val(app)}
}

func TestStripedCounterReads(t *testing.T) {
	var sc *StripedCounter
	_, err := Run(appCfg(machine.Ideal(8), 8, func(e *sim.Engine, mem *atomics.Memory) App {
		sc = NewStripedCounter(mem, 8, 0.2)
		return sc
	}))
	if err != nil {
		t.Fatal(err)
	}
	incs, reads := sc.Stats()
	if incs == 0 || reads == 0 {
		t.Fatalf("mix not exercised: incs=%d reads=%d", incs, reads)
	}
	if sc.Value() < incs {
		t.Fatalf("stripes sum %d < increments %d", sc.Value(), incs)
	}
}

func TestStripedCounterDegeneratesToOneStripe(t *testing.T) {
	// stripes=1 is exactly the hot FAA counter; correctness must hold.
	var sc *StripedCounter
	res, err := Run(appCfg(machine.Ideal(8), 8, func(e *sim.Engine, mem *atomics.Memory) App {
		sc = NewStripedCounter(mem, 0, 0) // clamps to 1
		return sc
	}))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Value() != res.TotalOps {
		t.Fatalf("1-stripe value %d != steps %d", sc.Value(), res.TotalOps)
	}
}

func TestQueueVsStackLineFootprint(t *testing.T) {
	// The queue has two hot lines to the stack's one; under heavy
	// contention its per-op cost should not be lower.
	m := machine.XeonE5()
	stack, err := Run(appCfg(m, 16, func(e *sim.Engine, mem *atomics.Memory) App {
		return NewTreiberStack(mem, 128)
	}))
	if err != nil {
		t.Fatal(err)
	}
	queue, err := Run(appCfg(m, 16, func(e *sim.Engine, mem *atomics.Memory) App {
		return NewMSQueue(mem, 128)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if stack.Ops == 0 || queue.Ops == 0 {
		t.Fatal("no ops")
	}
	t.Logf("stack %.2f Mops, queue %.2f Mops", stack.ThroughputMops, queue.ThroughputMops)
}
