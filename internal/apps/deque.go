package apps

import (
	"fmt"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
)

// Work-stealing deque line layout: per-owner top and bottom index
// lines plus a circular buffer of item lines. Slots wrap at
// dequeBufSlots — the simulation tracks line traffic, not contents, so
// wrap aliasing is harmless.
const (
	dequeTopBase    coherence.LineID = 1 << 26
	dequeBottomBase coherence.LineID = 1 << 27
	dequeBufBase    coherence.LineID = 1 << 28
	dequeBufStride  coherence.LineID = 1 << 12
	dequeBufSlots                    = 256
)

// WSDeque is the Chase–Lev-style work-stealing deque: every thread
// owns a deque and pushes/takes at its bottom (owner-private lines in
// the common case), while thieves CAS the victim's top. It is the
// structure whose fast path the model prices as private-line traffic
// and whose steals are the only serialization — the opposite extreme
// from the one-hot-line Treiber stack.
//
// Each Step is one owner operation (push or take, 50/50); a take that
// finds the local deque empty (or loses the last-element race) turns
// into one steal attempt from a random victim. A failed or empty steal
// completes the operation anyway, so Steps always terminate.
type WSDeque struct {
	mem     *atomics.Memory
	threads int

	pushes  uint64
	takes   uint64
	steals  uint64
	empties uint64
	// attempts counts top-line CAS issues — the last-element race and
	// steal attempts, successful or not (RetryStats).
	attempts uint64

	ctxs []*dequeOp
}

// NewWSDeque builds one deque per thread, each pre-seeded with depth
// items so early takes do not immediately go stealing.
func NewWSDeque(mem *atomics.Memory, threads, depth int) (*WSDeque, error) {
	if threads < 1 {
		return nil, fmt.Errorf("apps: ws-deque needs threads >= 1, got %d", threads)
	}
	if depth < 0 || depth > dequeBufSlots {
		return nil, fmt.Errorf("apps: ws-deque depth %d out of 0..%d", depth, dequeBufSlots)
	}
	d := &WSDeque{mem: mem, threads: threads, ctxs: make([]*dequeOp, threads)}
	for i := 0; i < threads; i++ {
		for j := 0; j < depth; j++ {
			mem.System().SetValue(d.buf(i, uint64(j)), uint64(j))
		}
		mem.System().SetValue(d.bottom(i), uint64(depth))
		o := &dequeOp{d: d}
		o.pushLoadBFn = o.pushLoadB
		o.pushStoreBufFn = o.pushStoreBuf
		o.pushStoreBFn = o.pushStoreB
		o.takeLoadBFn = o.takeLoadB
		o.takeStoreBFn = o.takeStoreB
		o.takeLoadTFn = o.takeLoadT
		o.takeLoadBufFn = o.takeLoadBuf
		o.takeCASFn = o.takeCAS
		o.takeSettleFn = o.takeSettle
		o.stealLoadTFn = o.stealLoadT
		o.stealLoadBFn = o.stealLoadB
		o.stealLoadBufFn = o.stealLoadBuf
		o.stealCASFn = o.stealCAS
		d.ctxs[i] = o
	}
	return d, nil
}

func (d *WSDeque) Name() string { return "ws-deque" }

// Stats reports owner pushes, owner takes, successful steals, and
// empty rounds (takes and steals that found nothing).
func (d *WSDeque) Stats() (pushes, takes, steals, empties uint64) {
	return d.pushes, d.takes, d.steals, d.empties
}

// Attempts counts top-line CAS issues (RetryStats).
func (d *WSDeque) Attempts() uint64 { return d.attempts }

func (d *WSDeque) top(owner int) coherence.LineID {
	return dequeTopBase + coherence.LineID(owner)*512
}

func (d *WSDeque) bottom(owner int) coherence.LineID {
	return dequeBottomBase + coherence.LineID(owner)*512
}

func (d *WSDeque) buf(owner int, idx uint64) coherence.LineID {
	return dequeBufBase + coherence.LineID(owner)*dequeBufStride + coherence.LineID(idx%dequeBufSlots)
}

func (d *WSDeque) Step(th *Thread, done func()) {
	o := d.ctxs[th.ID]
	o.th, o.done = th, done
	if th.RNG.Float64() < 0.5 {
		d.mem.LoadOp(th.Core, d.bottom(th.ID), o.pushLoadBFn)
	} else {
		d.mem.LoadOp(th.Core, d.bottom(th.ID), o.takeLoadBFn)
	}
}

// dequeOp is one thread's in-flight operation. Threads are closed-loop
// (one Step in flight each), so a single context per thread with
// callbacks built at construction keeps the deque allocation-free.
type dequeOp struct {
	d    *WSDeque
	th   *Thread
	done func()

	b, t    uint64
	victim  int
	casWon  bool
	stealOK bool

	pushLoadBFn    func(atomics.Result)
	pushStoreBufFn func(atomics.Result)
	pushStoreBFn   func(atomics.Result)
	takeLoadBFn    func(atomics.Result)
	takeStoreBFn   func(atomics.Result)
	takeLoadTFn    func(atomics.Result)
	takeLoadBufFn  func(atomics.Result)
	takeCASFn      func(atomics.Result)
	takeSettleFn   func(atomics.Result)
	stealLoadTFn   func(atomics.Result)
	stealLoadBFn   func(atomics.Result)
	stealLoadBufFn func(atomics.Result)
	stealCASFn     func(atomics.Result)
}

func (o *dequeOp) finish() {
	done := o.done
	o.done = nil
	done()
}

// Owner push: load bottom, write the item line, publish bottom+1.
func (o *dequeOp) pushLoadB(r atomics.Result) {
	o.b = r.Old
	o.d.mem.StoreOp(o.th.Core, o.d.buf(o.th.ID, o.b), o.b, o.pushStoreBufFn)
}

func (o *dequeOp) pushStoreBuf(atomics.Result) {
	o.d.mem.StoreOp(o.th.Core, o.d.bottom(o.th.ID), o.b+1, o.pushStoreBFn)
}

func (o *dequeOp) pushStoreB(atomics.Result) {
	o.d.pushes++
	o.finish()
}

// Owner take: reserve bottom-1, then race the thieves for the last
// element when top catches up.
func (o *dequeOp) takeLoadB(r atomics.Result) {
	if r.Old == 0 {
		o.steal()
		return
	}
	o.b = r.Old - 1
	o.d.mem.StoreOp(o.th.Core, o.d.bottom(o.th.ID), o.b, o.takeStoreBFn)
}

func (o *dequeOp) takeStoreB(atomics.Result) {
	o.d.mem.LoadOp(o.th.Core, o.d.top(o.th.ID), o.takeLoadTFn)
}

func (o *dequeOp) takeLoadT(r atomics.Result) {
	o.t = r.Old
	switch {
	case o.t < o.b:
		// More than one element left: the take is owner-private.
		o.d.mem.LoadOp(o.th.Core, o.d.buf(o.th.ID, o.b), o.takeLoadBufFn)
	case o.t == o.b:
		// Last element: race thieves with a CAS on our own top.
		o.d.attempts++
		o.d.mem.CompareAndSwap(o.th.Core, o.d.top(o.th.ID), o.t, o.t+1, o.takeCASFn)
	default:
		// Already empty (a thief overtook the reservation): restore
		// bottom and go steal.
		o.casWon = false
		o.d.mem.StoreOp(o.th.Core, o.d.bottom(o.th.ID), o.t, o.takeSettleFn)
	}
}

func (o *dequeOp) takeLoadBuf(atomics.Result) {
	o.d.takes++
	o.finish()
}

func (o *dequeOp) takeCAS(r atomics.Result) {
	o.casWon = r.OK
	o.d.mem.StoreOp(o.th.Core, o.d.bottom(o.th.ID), o.t+1, o.takeSettleFn)
}

func (o *dequeOp) takeSettle(atomics.Result) {
	if o.casWon {
		o.d.takes++
		o.finish()
		return
	}
	o.steal()
}

// steal picks a random victim and makes one attempt on its top.
func (o *dequeOp) steal() {
	if o.d.threads == 1 {
		o.d.empties++
		o.finish()
		return
	}
	o.victim = o.th.RNG.Intn(o.d.threads - 1)
	if o.victim >= o.th.ID {
		o.victim++
	}
	o.d.mem.LoadOp(o.th.Core, o.d.top(o.victim), o.stealLoadTFn)
}

func (o *dequeOp) stealLoadT(r atomics.Result) {
	o.t = r.Old
	o.d.mem.LoadOp(o.th.Core, o.d.bottom(o.victim), o.stealLoadBFn)
}

func (o *dequeOp) stealLoadB(r atomics.Result) {
	if o.t >= r.Old {
		// Victim looks empty: the round completes empty-handed.
		o.d.empties++
		o.finish()
		return
	}
	o.d.mem.LoadOp(o.th.Core, o.d.buf(o.victim, o.t), o.stealLoadBufFn)
}

func (o *dequeOp) stealLoadBuf(atomics.Result) {
	o.d.attempts++
	o.d.mem.CompareAndSwap(o.th.Core, o.d.top(o.victim), o.t, o.t+1, o.stealCASFn)
}

func (o *dequeOp) stealCAS(r atomics.Result) {
	if r.OK {
		o.d.steals++
	} else {
		// Lost the race: one attempt per round keeps Steps bounded.
		o.d.empties++
	}
	o.finish()
}
