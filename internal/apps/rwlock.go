package apps

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/sim"
)

const (
	rwLockLine coherence.LineID = 170
	rwDataLine coherence.LineID = 190
	rwFlagLine coherence.LineID = 210
	rwSlotBase coherence.LineID = 1 << 24
)

// rwCommon carries the pieces both reader-writer locks share: the mix,
// the protected data, and exact overlap instrumentation. Because the
// simulation is one event loop, the activeReaders/activeWriters
// counters observe true simulated-time overlap — Violations counts
// real mutual-exclusion breaches, not sampling artifacts.
type rwCommon struct {
	mem      *atomics.Memory
	eng      *sim.Engine
	readFrac float64
	crit     sim.Time

	activeReaders int
	activeWriters int
	violations    int
	reads, writes uint64
	attempts      uint64
}

// Attempts counts acquisition attempts — the gating CAS/TAS issues and
// reader announce rounds, successful or not (RetryStats).
func (c *rwCommon) Attempts() uint64 { return c.attempts }

func (c *rwCommon) enterRead() {
	if c.activeWriters > 0 {
		c.violations++
	}
	c.activeReaders++
}

func (c *rwCommon) exitRead() { c.activeReaders-- }

func (c *rwCommon) enterWrite() {
	if c.activeWriters > 0 || c.activeReaders > 0 {
		c.violations++
	}
	c.activeWriters++
}

func (c *rwCommon) exitWrite() { c.activeWriters-- }

// Violations reports observed mutual-exclusion breaches (must be 0).
func (c *rwCommon) Violations() int { return c.violations }

// Ops reports completed read and write sections.
func (c *rwCommon) Ops() (reads, writes uint64) { return c.reads, c.writes }

// criticalRead performs the protected read section then releases.
func (c *rwCommon) criticalRead(th *Thread, release func(func()), done func()) {
	c.enterRead()
	c.mem.LoadOp(th.Core, rwDataLine, func(atomics.Result) {
		finish := func() {
			c.exitRead()
			release(func() {
				c.reads++
				done()
			})
		}
		if c.crit > 0 {
			c.eng.Schedule(c.crit, finish)
		} else {
			finish()
		}
	})
}

// criticalWrite performs the protected update then releases.
func (c *rwCommon) criticalWrite(th *Thread, release func(func()), done func()) {
	c.enterWrite()
	c.mem.FetchAndAdd(th.Core, rwDataLine, 1, func(atomics.Result) {
		finish := func() {
			c.exitWrite()
			release(func() {
				c.writes++
				done()
			})
		}
		if c.crit > 0 {
			c.eng.Schedule(c.crit, finish)
		} else {
			finish()
		}
	})
}

// CentralRWLock is the textbook single-word reader-writer spinlock:
// bit 0 is the writer flag, the upper bits count readers. Every reader
// acquisition and release is an RMW on the one lock line, so a
// read-mostly workload still bounces it — the design the model warns
// about.
type CentralRWLock struct {
	rwCommon
}

// NewCentralRWLock returns the one-line reader-writer lock; readFrac of
// the Steps are read sections, crit is the section length.
func NewCentralRWLock(eng *sim.Engine, mem *atomics.Memory, readFrac float64, crit sim.Time) *CentralRWLock {
	return &CentralRWLock{rwCommon{mem: mem, eng: eng, readFrac: readFrac, crit: crit}}
}

func (l *CentralRWLock) Name() string { return "rwlock-central" }

func (l *CentralRWLock) Step(th *Thread, done func()) {
	if th.RNG.Float64() < l.readFrac {
		l.readAcquire(th, done)
	} else {
		l.writeAcquire(th, done)
	}
}

func (l *CentralRWLock) readAcquire(th *Thread, done func()) {
	l.mem.LoadOp(th.Core, rwLockLine, func(r atomics.Result) {
		v := r.Old
		if v&1 == 1 {
			l.readAcquire(th, done) // writer active: spin on shared copy
			return
		}
		l.attempts++
		l.mem.CompareAndSwap(th.Core, rwLockLine, v, v+2, func(rc atomics.Result) {
			if !rc.OK {
				l.readAcquire(th, done)
				return
			}
			l.criticalRead(th, func(released func()) {
				// Release: subtract 2 (add the two's complement).
				l.mem.FetchAndAdd(th.Core, rwLockLine, ^uint64(1), func(atomics.Result) { released() })
			}, done)
		})
	})
}

func (l *CentralRWLock) writeAcquire(th *Thread, done func()) {
	l.mem.LoadOp(th.Core, rwLockLine, func(r atomics.Result) {
		if r.Old != 0 {
			l.writeAcquire(th, done) // busy: spin
			return
		}
		l.attempts++
		l.mem.CompareAndSwap(th.Core, rwLockLine, 0, 1, func(rc atomics.Result) {
			if !rc.OK {
				l.writeAcquire(th, done)
				return
			}
			l.criticalWrite(th, func(released func()) {
				l.mem.StoreOp(th.Core, rwLockLine, 0, func(atomics.Result) { released() })
			}, done)
		})
	})
}

// DistributedRWLock is the big-reader design: each thread announces
// itself on its own cache line (readers never touch a shared line on
// the fast path), and a writer raises a central flag then scans every
// reader slot. Reads scale; writes pay O(threads) — the trade the
// model prices via its private-vs-shared line distinction.
type DistributedRWLock struct {
	rwCommon
	slots int
}

// NewDistributedRWLock returns the per-reader-slot lock for up to slots
// reader threads (thread IDs index the slots).
func NewDistributedRWLock(eng *sim.Engine, mem *atomics.Memory, slots int, readFrac float64, crit sim.Time) *DistributedRWLock {
	return &DistributedRWLock{rwCommon{mem: mem, eng: eng, readFrac: readFrac, crit: crit}, slots}
}

func (l *DistributedRWLock) Name() string { return "rwlock-distributed" }

func (l *DistributedRWLock) slot(id int) coherence.LineID {
	return rwSlotBase + coherence.LineID(id)*512
}

func (l *DistributedRWLock) Step(th *Thread, done func()) {
	if th.RNG.Float64() < l.readFrac {
		l.readAcquire(th, done)
	} else {
		l.writeAcquire(th, done)
	}
}

func (l *DistributedRWLock) readAcquire(th *Thread, done func()) {
	l.mem.LoadOp(th.Core, rwFlagLine, func(r atomics.Result) {
		if r.Old != 0 {
			l.readAcquire(th, done) // writer present: spin on the flag
			return
		}
		// Announce, then re-check the flag (Dekker-style handshake).
		l.attempts++
		l.mem.StoreOp(th.Core, l.slot(th.ID), 1, func(atomics.Result) {
			l.mem.LoadOp(th.Core, rwFlagLine, func(r2 atomics.Result) {
				if r2.Old != 0 {
					// A writer raced in: withdraw and retry.
					l.mem.StoreOp(th.Core, l.slot(th.ID), 0, func(atomics.Result) {
						l.readAcquire(th, done)
					})
					return
				}
				l.criticalRead(th, func(released func()) {
					l.mem.StoreOp(th.Core, l.slot(th.ID), 0, func(atomics.Result) { released() })
				}, done)
			})
		})
	})
}

func (l *DistributedRWLock) writeAcquire(th *Thread, done func()) {
	l.attempts++
	l.mem.TestAndSet(th.Core, rwFlagLine, func(r atomics.Result) {
		if r.Old != 0 {
			l.writeAcquire(th, done) // another writer holds the flag
			return
		}
		l.scanSlots(th, 0, done)
	})
}

// scanSlots waits for every announced reader to drain, then runs the
// write section.
func (l *DistributedRWLock) scanSlots(th *Thread, i int, done func()) {
	if i == l.slots {
		l.criticalWrite(th, func(released func()) {
			l.mem.StoreOp(th.Core, rwFlagLine, 0, func(atomics.Result) { released() })
		}, done)
		return
	}
	l.mem.LoadOp(th.Core, l.slot(i), func(r atomics.Result) {
		if r.Old != 0 {
			l.scanSlots(th, i, done) // reader still inside: spin on its slot
			return
		}
		l.scanSlots(th, i+1, done)
	})
}
