package apps

import (
	"testing"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

func TestWSDequeValidation(t *testing.T) {
	eng := sim.NewEngine()
	mem, err := atomics.NewMemory(eng, machine.Ideal(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWSDeque(mem, 0, 16); err == nil {
		t.Fatal("threads=0 accepted")
	}
	if _, err := NewWSDeque(mem, 4, dequeBufSlots+1); err == nil {
		t.Fatal("oversized depth accepted")
	}
}

// TestWSDequeRuns drives the deque through the app runner and checks
// the operation accounting: every completed Step is exactly one push,
// take, steal, or empty round.
func TestWSDequeRuns(t *testing.T) {
	var d *WSDeque
	res, err := Run(appCfg(machine.XeonE5(), 8, func(eng *sim.Engine, mem *atomics.Memory) App {
		var err error
		d, err = NewWSDeque(mem, 8, 64)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations measured")
	}
	pushes, takes, steals, empties := d.Stats()
	if pushes+takes+steals+empties != res.TotalOps {
		t.Fatalf("pushes %d + takes %d + steals %d + empties %d != total steps %d",
			pushes, takes, steals, empties, res.TotalOps)
	}
	if pushes == 0 || takes == 0 {
		t.Fatalf("owner path unused: pushes=%d takes=%d", pushes, takes)
	}
	if res.Attempts != d.Attempts() {
		t.Fatalf("RunResult.Attempts %d != deque attempts %d", res.Attempts, d.Attempts())
	}
}

// TestWSDequeSingleThread keeps one owner on its private lines: no
// steals are possible and every take after the seed drains hits the
// owner fast path or comes back empty.
func TestWSDequeSingleThread(t *testing.T) {
	var d *WSDeque
	res, err := Run(appCfg(machine.Ideal(1), 1, func(eng *sim.Engine, mem *atomics.Memory) App {
		var err error
		d, err = NewWSDeque(mem, 1, 32)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations measured")
	}
	if _, _, steals, _ := d.Stats(); steals != 0 {
		t.Fatalf("single thread stole %d times", steals)
	}
}

// TestWSDequeDoesNotAllocate extends the access path's zero-alloc
// contract to the deque: with per-thread contexts warm, owner ops and
// steals allocate nothing per operation.
func TestWSDequeDoesNotAllocate(t *testing.T) {
	eng := sim.NewEngine()
	mem, err := atomics.NewMemory(eng, machine.Ideal(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewWSDeque(mem, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	root := sim.NewRNG(7)
	ths := make([]*Thread, 4)
	for i := range ths {
		ths[i] = &Thread{ID: i, Core: i, RNG: root.Split()}
	}
	noop := func() {}
	// Warm every thread's context and the primitive-layer pools.
	for _, th := range ths {
		d.Step(th, noop)
		eng.Drain()
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		d.Step(ths[i%4], noop)
		eng.Drain()
		i++
	})
	if avg != 0 {
		t.Fatalf("deque op allocates %.1f allocs/op, want 0", avg)
	}
}
