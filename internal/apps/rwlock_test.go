package apps

import (
	"testing"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

type rwChecker interface {
	App
	Violations() int
	Ops() (reads, writes uint64)
}

func runRW(t *testing.T, m *machine.Machine, threads int, build func(*sim.Engine, *atomics.Memory) rwChecker) (rwChecker, *RunResult) {
	t.Helper()
	var lk rwChecker
	res, err := Run(RunConfig{
		Machine: m, Threads: threads,
		Build: func(e *sim.Engine, mem *atomics.Memory) App {
			lk = build(e, mem)
			return lk
		},
		Warmup: 20 * sim.Microsecond, Duration: 250 * sim.Microsecond, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return lk, res
}

func TestCentralRWLockMutualExclusion(t *testing.T) {
	for _, rf := range []float64{0.0, 0.5, 0.95} {
		lk, res := runRW(t, machine.Ideal(8), 8, func(e *sim.Engine, mem *atomics.Memory) rwChecker {
			return NewCentralRWLock(e, mem, rf, 30*sim.Nanosecond)
		})
		if v := lk.Violations(); v != 0 {
			t.Fatalf("readFrac %.2f: %d mutual-exclusion violations", rf, v)
		}
		reads, writes := lk.Ops()
		if reads+writes+0 == 0 || res.Ops == 0 {
			t.Fatalf("readFrac %.2f: no sections completed", rf)
		}
		if rf == 0 && reads != 0 {
			t.Fatal("pure-writer mix performed reads")
		}
	}
}

func TestDistributedRWLockMutualExclusion(t *testing.T) {
	for _, rf := range []float64{0.5, 0.95} {
		lk, res := runRW(t, machine.Ideal(8), 8, func(e *sim.Engine, mem *atomics.Memory) rwChecker {
			return NewDistributedRWLock(e, mem, 8, rf, 30*sim.Nanosecond)
		})
		if v := lk.Violations(); v != 0 {
			t.Fatalf("readFrac %.2f: %d violations", rf, v)
		}
		if res.Ops == 0 {
			t.Fatal("no sections completed")
		}
	}
}

func TestRWLockWriteCountMatchesData(t *testing.T) {
	// Every completed write section increments the protected data once;
	// in-flight sections at the horizon may add at most one per thread.
	lk, _ := runRW(t, machine.Ideal(8), 8, func(e *sim.Engine, mem *atomics.Memory) rwChecker {
		return NewCentralRWLock(e, mem, 0.5, 0)
	})
	_, writes := lk.Ops()
	data := lk.(*CentralRWLock).mem.System().Value(rwDataLine)
	if data < writes || data > writes+8 {
		t.Fatalf("data %d vs completed writes %d", data, writes)
	}
}

func TestDistributedBeatsCentralWhenReadMostly(t *testing.T) {
	// The design decision: with 95% reads on the Xeon, per-reader slots
	// avoid bouncing the lock word and win; the central lock turns
	// every read into an RMW on one line.
	m := machine.XeonE5()
	central, cRes := runRW(t, m, 16, func(e *sim.Engine, mem *atomics.Memory) rwChecker {
		return NewCentralRWLock(e, mem, 0.98, 20*sim.Nanosecond)
	})
	dist, dRes := runRW(t, m, 16, func(e *sim.Engine, mem *atomics.Memory) rwChecker {
		return NewDistributedRWLock(e, mem, 16, 0.98, 20*sim.Nanosecond)
	})
	if central.Violations() != 0 || dist.Violations() != 0 {
		t.Fatal("violations")
	}
	if dRes.ThroughputMops <= cRes.ThroughputMops {
		t.Fatalf("distributed (%.2f Mops) should beat central (%.2f Mops) at 98%% reads",
			dRes.ThroughputMops, cRes.ThroughputMops)
	}
}

func TestDistributedAdvantageGrowsWithReadFraction(t *testing.T) {
	// The design insight the model prices: the distributed lock's edge
	// comes from keeping readers off the shared line, so its advantage
	// over the central lock must grow with the read fraction. (Write-
	// heavy mixes do not flip the ordering here: the writer's slot scan
	// is cheap once the slots are warm, while the central lock suffers
	// a blind-CAS herd on its one word.)
	m := machine.XeonE5()
	ratio := func(rf float64) float64 {
		_, cRes := runRW(t, m, 16, func(e *sim.Engine, mem *atomics.Memory) rwChecker {
			return NewCentralRWLock(e, mem, rf, 20*sim.Nanosecond)
		})
		_, dRes := runRW(t, m, 16, func(e *sim.Engine, mem *atomics.Memory) rwChecker {
			return NewDistributedRWLock(e, mem, 16, rf, 20*sim.Nanosecond)
		})
		return dRes.ThroughputMops / cRes.ThroughputMops
	}
	writeHeavy := ratio(0.1)
	readMostly := ratio(0.98)
	if readMostly <= writeHeavy {
		t.Fatalf("distributed advantage should grow with reads: %.2fx at 10%% vs %.2fx at 98%%",
			writeHeavy, readMostly)
	}
}

func TestRWLockNames(t *testing.T) {
	eng := sim.NewEngine()
	mem, _ := atomics.NewMemory(eng, machine.Ideal(2), nil)
	if NewCentralRWLock(eng, mem, 0.5, 0).Name() != "rwlock-central" {
		t.Error("central name")
	}
	if NewDistributedRWLock(eng, mem, 2, 0.5, 0).Name() != "rwlock-distributed" {
		t.Error("distributed name")
	}
}
