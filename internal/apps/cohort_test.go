package apps

import (
	"testing"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

func runCohort(t *testing.T, m *machine.Machine, threads, maxHandoffs int) (*CohortLock, *RunResult) {
	t.Helper()
	var lk *CohortLock
	res, err := Run(RunConfig{
		Machine: m, Threads: threads,
		Build: func(e *sim.Engine, mem *atomics.Memory) App {
			lk = NewCohortLock(e, mem, m.SocketOf, 50*sim.Nanosecond, maxHandoffs)
			return lk
		},
		Warmup: 20 * sim.Microsecond, Duration: 250 * sim.Microsecond, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return lk, res
}

func TestCohortMutualExclusion(t *testing.T) {
	lk, res := runCohort(t, machine.XeonE5(), 12, 8)
	// Every completed cycle incremented the data exactly once.
	data := DataValue(lk.mem)
	if data < res.TotalOps || data > res.TotalOps+12 {
		t.Fatalf("data %d vs cycles %d: lost or duplicated updates", data, res.TotalOps)
	}
	if res.Ops == 0 {
		t.Fatal("no cycles")
	}
}

func TestCohortHandsOffWithinSocket(t *testing.T) {
	lk, _ := runCohort(t, machine.XeonE5(), 24, 16) // both sockets busy
	if lk.Handoffs() == 0 {
		t.Fatal("no same-socket handoffs under two-socket contention")
	}
}

func TestCohortReducesCrossSocketTraffic(t *testing.T) {
	// With 24 threads over two sockets, the cohort lock's whole point
	// is fewer cross-socket transfers per cycle than a flat TAS lock.
	m := machine.XeonE5()
	crossPerOp := func(build func(e *sim.Engine, mem *atomics.Memory) App) float64 {
		var mem *atomics.Memory
		res, err := Run(RunConfig{
			Machine: m, Threads: 24,
			Build: func(e *sim.Engine, mm *atomics.Memory) App {
				mem = mm
				return build(e, mm)
			},
			Warmup: 20 * sim.Microsecond, Duration: 250 * sim.Microsecond, Seed: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalOps == 0 {
			t.Fatal("no ops")
		}
		return float64(mem.System().Stats().CrossSocket) / float64(res.TotalOps)
	}
	tas := crossPerOp(func(e *sim.Engine, mem *atomics.Memory) App {
		return NewTASLock(e, mem, 50*sim.Nanosecond)
	})
	cohort := crossPerOp(func(e *sim.Engine, mem *atomics.Memory) App {
		var lk *CohortLock
		lk = NewCohortLock(e, mem, m.SocketOf, 50*sim.Nanosecond, 16)
		return lk
	})
	if cohort >= tas {
		t.Fatalf("cohort cross-socket/op %.2f should be below TAS %.2f", cohort, tas)
	}
}

func TestCohortSingleSocketDegeneratesGracefully(t *testing.T) {
	// All threads on one socket: the global lock is acquired once and
	// handed off locally; throughput must at least match plain TAS.
	m := machine.XeonE5()
	_, res := runCohort(t, m, 8, 64)
	if res.Ops == 0 {
		t.Fatal("no cycles single-socket")
	}
}

func TestCohortHandoffBudgetBoundsUnfairness(t *testing.T) {
	// A small budget forces regular global-lock surrender, letting the
	// other socket in: per-socket op totals should both be nonzero.
	m := machine.XeonE5()
	_, res := runCohort(t, m, 24, 4)
	var perSocket [2]uint64
	for id, ops := range res.PerThreadOps {
		// Compact placement: thread id == core for the first 36.
		perSocket[m.SocketOf(id)] += ops
	}
	if perSocket[0] == 0 || perSocket[1] == 0 {
		t.Fatalf("a socket starved despite the handoff budget: %v", perSocket)
	}
}
