package apps

import (
	"fmt"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/faults"
	"atomicsmodel/internal/invariant"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/metrics"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/stats"
)

// RunConfig parameterizes an application benchmark.
type RunConfig struct {
	Machine   *machine.Machine
	Arbiter   coherence.Arbiter // nil means FIFO
	Placement machine.Placement // nil means Compact
	Threads   int
	// Build constructs the application once the simulated memory
	// exists (apps need the memory to seed their data structures).
	Build func(eng *sim.Engine, mem *atomics.Memory) App
	// Warmup and Duration bound the run (defaults 20µs / 200µs).
	Warmup   sim.Time
	Duration sim.Time
	Seed     uint64
	// Metrics enables the per-cell observability registry (see
	// internal/metrics and workload.Config.Metrics); the snapshot lands
	// in RunResult.Metrics.
	Metrics bool
	// Check installs the online invariant checker (internal/invariant);
	// see workload.Config.Check.
	Check bool
	// Faults is this cell's simulation-layer fault plan
	// (internal/faults); nil injects nothing.
	Faults *faults.CellPlan
}

// RunResult reports an application benchmark's measurements.
type RunResult struct {
	App            string
	Threads        int
	Ops            uint64
	PerThreadOps   []uint64
	Latency        *stats.Histogram
	ThroughputMops float64
	Jain, MinMax   float64
	// Mem is the memory the app ran on, for post-run correctness
	// checks (counter values, lock data). It is excluded from the JSON
	// encoding used by the harness resume cache; table assembly must
	// not depend on it.
	Mem *atomics.Memory `json:"-"`
	// TotalOps counts operations completed over the whole run
	// including warmup, for invariant checks against app state.
	TotalOps uint64
	// Attempts counts the structure's retry-loop body executions (the
	// gating RMW issues, successful or not) over the whole run, when the
	// app reports them (RetryStats); zero otherwise. Attempts/TotalOps
	// is the measured retry factor internal/predict consumes.
	Attempts uint64 `json:"attempts,omitempty"`
	// Eliminations counts operations completed via a collision array
	// (elimination stacks); zero for other structures.
	Eliminations uint64 `json:"eliminations,omitempty"`
	// Violations counts observed mutual-exclusion breaches (RW locks;
	// must be 0); zero for other structures.
	Violations int `json:"violations,omitempty"`
	// Metrics is the per-cell metrics snapshot over the measured window
	// (nil unless RunConfig.Metrics was set).
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// MetricsSnapshot exposes the cell's metrics snapshot to the harness
// (nil when metrics were off).
func (r *RunResult) MetricsSnapshot() *metrics.Snapshot { return r.Metrics }

// CellStats reports the op count for harness run manifests. Apps do
// not carry their measured window in the result, so only ops are
// reported.
func (r *RunResult) CellStats() (sim.Time, uint64) {
	return 0, r.Ops
}

// Run executes one application benchmark.
func Run(cfg RunConfig) (*RunResult, error) {
	if cfg.Machine == nil || cfg.Build == nil {
		return nil, fmt.Errorf("apps: Machine and Build are required")
	}
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("apps: Threads = %d", cfg.Threads)
	}
	if err := cfg.Machine.Validate(); err != nil {
		return nil, fmt.Errorf("apps: %w", err)
	}
	if cfg.Placement == nil {
		cfg.Placement = machine.Compact{}
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = 20 * sim.Microsecond
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 200 * sim.Microsecond
	}
	slots, err := cfg.Placement.Place(cfg.Machine, cfg.Threads)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	mem, err := atomics.NewMemory(eng, cfg.Machine, cfg.Arbiter)
	if err != nil {
		return nil, err
	}
	app := cfg.Build(eng, mem)
	var reg *metrics.Registry
	if cfg.Metrics {
		reg = metrics.New()
	}
	mem.System().InstallMetrics(reg) // nil registry = off
	var chk *invariant.Checker
	if cfg.Check {
		chk = invariant.Install(eng, mem.System())
	}
	cfg.Faults.Install(eng, mem)
	mThreadOps := reg.Vector(metrics.WorkThreadOps, cfg.Threads)

	end := cfg.Warmup + cfg.Duration
	measuring := false
	var ops, totalOps uint64
	perOps := make([]uint64, cfg.Threads)
	lat := stats.NewHistogram()

	root := sim.NewRNG(cfg.Seed)
	var loop func(th *Thread)
	loop = func(th *Thread) {
		if eng.Now() >= end {
			return
		}
		start := eng.Now()
		app.Step(th, func() {
			totalOps++
			if measuring && eng.Now() <= end {
				ops++
				perOps[th.ID]++
				mThreadOps.Inc(th.ID)
				lat.Record(eng.Now() - start)
			}
			loop(th)
		})
	}
	for i := 0; i < cfg.Threads; i++ {
		th := &Thread{ID: i, Core: cfg.Machine.CoreOf(slots[i]), RNG: root.Split()}
		eng.Schedule(th.RNG.Duration(10*sim.Nanosecond), func() { loop(th) })
	}
	var procAtMeasure uint64
	eng.At(cfg.Warmup, func() {
		measuring = true
		procAtMeasure = eng.Processed()
		reg.Reset()
	})
	eng.Run(end)

	if chk != nil {
		if err := chk.Finalize(); err != nil {
			return nil, fmt.Errorf("apps: %w", err)
		}
	} else if err := mem.System().CheckInvariants(); err != nil {
		return nil, fmt.Errorf("apps: coherence invariant violated: %w", err)
	}
	res := &RunResult{
		App:            app.Name(),
		Threads:        cfg.Threads,
		Ops:            ops,
		PerThreadOps:   perOps,
		Latency:        lat,
		ThroughputMops: stats.Throughput(ops, cfg.Duration) / 1e6,
		Jain:           stats.JainIndex(perOps),
		MinMax:         stats.MinMaxRatio(perOps),
		Mem:            mem,
		TotalOps:       totalOps,
	}
	// Structure-specific counters ride along when the app exposes them,
	// so table assembly and the conflict model can consume them from the
	// cached cell JSON alone.
	if rs, ok := app.(RetryStats); ok {
		res.Attempts = rs.Attempts()
	}
	if es, ok := app.(interface{ Eliminations() uint64 }); ok {
		res.Eliminations = es.Eliminations()
	}
	if vs, ok := app.(interface{ Violations() int }); ok {
		res.Violations = vs.Violations()
	}
	if reg != nil {
		reg.Counter(metrics.SimEvents).Add(eng.Processed() - procAtMeasure)
		reg.Counter(metrics.SimQueuePeak).Add(uint64(eng.MaxPending()))
		res.Metrics = reg.Snapshot()
	}
	return res, nil
}
