package coherence

import (
	"testing"

	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/topology"
)

// bwSystem builds an 8-core ring with finite link bandwidth.
func bwSystem(t *testing.T, occupancy sim.Time) (*sim.Engine, *System) {
	t.Helper()
	eng := sim.NewEngine()
	p := Params{
		NumCores:       8,
		Topo:           topology.NewRing(8),
		NodeOf:         func(c int) int { return c },
		L1Hit:          1 * sim.Nanosecond,
		DirLookup:      2 * sim.Nanosecond,
		HopLatency:     1 * sim.Nanosecond,
		LLCHit:         10 * sim.Nanosecond,
		DRAM:           60 * sim.Nanosecond,
		InvalidateCost: 3 * sim.Nanosecond,
		LinkOccupancy:  occupancy,
	}
	s, err := NewSystem(eng, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	return eng, s
}

func TestBandwidthUncontendedMatchesClosedForm(t *testing.T) {
	// With no competing traffic, finite bandwidth must not change any
	// latency: one message's transit is still hops * HopLatency.
	engA, sA := testSystem(t, nil)          // infinite bandwidth
	engB, sB := bwSystem(t, sim.Nanosecond) // finite, but idle links
	seq := func(eng *sim.Engine, s *System) []sim.Time {
		var lats []sim.Time
		step := func(core int, kind Kind) {
			s.Access(core, 16, kind, 0, storeApply(1), func(r AccessResult) {
				lats = append(lats, r.Latency)
			})
			eng.Drain()
		}
		step(0, RFO)
		step(4, RFO)
		step(2, Read)
		step(6, RFO)
		return lats
	}
	a, b := seq(engA, sA), seq(engB, sB)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: infinite-bw %v != idle-finite-bw %v", i, a[i], b[i])
		}
	}
}

func TestBandwidthSerializesSharedLink(t *testing.T) {
	// Two simultaneous transfers crossing the same link: the second
	// waits for the link. Ring 0-1-2-3...: messages 0->2 and 1->2 at
	// the same instant share link 1->2.
	eng, s := bwSystem(t, 4*sim.Nanosecond)
	// Stage two dirty lines on cores 0 and 1 whose home is node 2
	// (line IDs ≡ 2 mod 8), sequentially so staging itself is
	// stall-free.
	s.Access(0, 2, RFO, 0, storeApply(1), nil)
	eng.Drain()
	// Let the wires drain before the next phase (a message's tail can
	// still occupy a link right after its transaction completes).
	eng.Schedule(100*sim.Nanosecond, func() {
		s.Access(1, 10, RFO, 0, storeApply(1), nil)
	})
	eng.Drain()
	base := s.Stats().LinkStall
	if base != 0 {
		t.Fatalf("unexpected stall during staging: %v", base)
	}
	// Now core 2 pulls both lines at the same instant.
	var l1, l2 sim.Time
	eng.Schedule(100*sim.Nanosecond, func() {
		s.Access(2, 2, RFO, 0, storeApply(2), func(r AccessResult) { l1 = r.Latency })
		s.Access(2, 10, RFO, 0, storeApply(2), func(r AccessResult) { l2 = r.Latency })
	})
	eng.Drain()
	if s.Stats().LinkStall <= base {
		t.Fatal("no link stall recorded for overlapping transfers")
	}
	if l1 == l2 {
		t.Fatalf("overlapping transfers did not serialize: %v vs %v", l1, l2)
	}
}

func TestBandwidthCrossLineInterference(t *testing.T) {
	// The effect infinite-bandwidth simulation misses: a storm on line
	// A slows an independent thread using line B, because their
	// messages share ring links.
	measure := func(occupancy sim.Time) sim.Time {
		eng, s := bwSystem(t, occupancy)
		// Storm: cores 0..5 hammer line A (home 6, id 6).
		for c := 0; c < 6; c++ {
			c := c
			var issue func(n int)
			issue = func(n int) {
				if n == 0 {
					return
				}
				s.Access(c, 6, RFO, sim.Nanosecond, storeApply(1), func(AccessResult) { issue(n - 1) })
			}
			issue(200)
		}
		// Victim: cores 7 and 3 ping-pong line B (id 14, home 6 as
		// well — its messages share ring links with the storm).
		var total sim.Time
		ops := 0
		var alt func(n, core int)
		alt = func(n, core int) {
			if n == 0 {
				return
			}
			s.Access(core, 14, RFO, sim.Nanosecond, storeApply(1), func(r AccessResult) {
				total += r.Latency
				ops++
				next := 7
				if core == 7 {
					next = 3
				}
				alt(n-1, next)
			})
		}
		alt(100, 7)
		eng.Drain()
		return total / sim.Time(ops)
	}
	free := measure(0)                    // infinite bandwidth
	loaded := measure(6 * sim.Nanosecond) // heavily loaded links
	if loaded <= free {
		t.Fatalf("storm did not slow the victim: free=%v loaded=%v", free, loaded)
	}
}

func TestBandwidthRequiresRouter(t *testing.T) {
	eng := sim.NewEngine()
	p := Params{
		NumCores:      2,
		Topo:          nonRoutable{topology.NewRing(2)},
		NodeOf:        func(c int) int { return c },
		LinkOccupancy: sim.Nanosecond,
	}
	if _, err := NewSystem(eng, p, nil); err == nil {
		t.Fatal("non-routable topology with bandwidth accepted")
	}
}

// nonRoutable is a minimal Topology without the Router methods.
type nonRoutable struct{ r *topology.Ring }

func (n nonRoutable) Name() string              { return "opaque" }
func (n nonRoutable) Nodes() int                { return n.r.Nodes() }
func (n nonRoutable) Hops(a, b int) int         { return n.r.Hops(a, b) }
func (n nonRoutable) CrossSocket(a, b int) bool { return n.r.CrossSocket(a, b) }

func TestBandwidthFuzzStillLinearizable(t *testing.T) {
	// Re-run the protocol fuzz shape with bandwidth on: invariants and
	// value chains must survive link queueing.
	eng, s := bwSystem(t, 2*sim.Nanosecond)
	rng := sim.NewRNG(3)
	type rec struct {
		observed, next uint64
	}
	var chain []rec
	for i := 0; i < 2000; i++ {
		core := rng.Intn(8)
		at := rng.Duration(100 * sim.Microsecond)
		eng.At(at, func() {
			var r rec
			s.Access(core, 5, RFO, sim.Nanosecond, func(cur uint64) (uint64, bool) {
				r = rec{observed: cur, next: cur + 1}
				return cur + 1, true
			}, func(AccessResult) { chain = append(chain, r) })
		})
	}
	eng.Drain()
	if len(chain) != 2000 {
		t.Fatalf("completed %d/2000", len(chain))
	}
	cur := uint64(0)
	for i, r := range chain {
		if r.observed != cur {
			t.Fatalf("op %d observed %d, want %d", i, r.observed, cur)
		}
		cur = r.next
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
