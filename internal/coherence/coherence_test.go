package coherence

import (
	"testing"

	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/topology"
)

// testSystem builds a small 8-core single-ring system with easily
// recognizable latency constants.
func testSystem(t *testing.T, arb Arbiter) (*sim.Engine, *System) {
	t.Helper()
	eng := sim.NewEngine()
	p := Params{
		NumCores:           8,
		Topo:               topology.NewRing(8),
		NodeOf:             func(c int) int { return c },
		L1Hit:              1 * sim.Nanosecond,
		DirLookup:          2 * sim.Nanosecond,
		HopLatency:         1 * sim.Nanosecond,
		CrossSocketPenalty: 0,
		LLCHit:             10 * sim.Nanosecond,
		DRAM:               60 * sim.Nanosecond,
		InvalidateCost:     3 * sim.Nanosecond,
	}
	s, err := NewSystem(eng, p, arb)
	if err != nil {
		t.Fatal(err)
	}
	return eng, s
}

// access runs one access to completion and returns the result.
func access(t *testing.T, eng *sim.Engine, s *System, core int, id LineID, kind Kind, hold sim.Time, apply Apply) AccessResult {
	t.Helper()
	var got *AccessResult
	s.Access(core, id, kind, hold, apply, func(r AccessResult) { got = &r })
	eng.Drain()
	if got == nil {
		t.Fatal("access did not complete")
	}
	return *got
}

func storeApply(v uint64) Apply {
	return func(cur uint64) (uint64, bool) { return v, true }
}

func TestColdReadComesFromDRAM(t *testing.T) {
	eng, s := testSystem(t, nil)
	res := access(t, eng, s, 0, 16, Read, 0, nil) // line 16: home node 0
	if res.Source != SrcDRAM {
		t.Fatalf("source = %v, want dram", res.Source)
	}
	// Core 0, home node 0: hops 0. Cost = DirLookup + DRAM = 62ns.
	if res.Latency != 62*sim.Nanosecond {
		t.Fatalf("latency = %v, want 62ns", res.Latency)
	}
	d := s.Directory(16)
	if d.Owner != 0 || len(d.Sharers) != 0 {
		t.Fatalf("first toucher should get E: %+v", d)
	}
}

func TestReadHitAfterFill(t *testing.T) {
	eng, s := testSystem(t, nil)
	access(t, eng, s, 0, 16, Read, 0, nil)
	res := access(t, eng, s, 0, 16, Read, 0, nil)
	if res.Source != SrcLocal || res.Latency != 1*sim.Nanosecond {
		t.Fatalf("second read: %+v, want local 1ns", res)
	}
}

func TestSecondReaderSharesLine(t *testing.T) {
	eng, s := testSystem(t, nil)
	access(t, eng, s, 0, 16, Read, 0, nil)
	res := access(t, eng, s, 1, 16, Read, 0, nil)
	// Owner (core 0, E) forwards: remote-cache source.
	if res.Source != SrcRemoteCache {
		t.Fatalf("source = %v, want remote-cache", res.Source)
	}
	d := s.Directory(16)
	if d.Owner != -1 || len(d.Sharers) != 2 {
		t.Fatalf("directory after share: %+v", d)
	}
	// Both cores now hit locally.
	for core := 0; core < 2; core++ {
		r := access(t, eng, s, core, 16, Read, 0, nil)
		if r.Source != SrcLocal {
			t.Fatalf("core %d re-read source = %v", core, r.Source)
		}
	}
}

func TestRFOInvalidatesSharers(t *testing.T) {
	eng, s := testSystem(t, nil)
	for core := 0; core < 4; core++ {
		access(t, eng, s, core, 16, Read, 0, nil)
	}
	res := access(t, eng, s, 5, 16, RFO, 0, storeApply(7))
	if res.Source != SrcLLC {
		t.Fatalf("RFO of shared line source = %v, want llc", res.Source)
	}
	d := s.Directory(16)
	if d.Owner != 5 || len(d.Sharers) != 0 {
		t.Fatalf("directory after RFO: %+v", d)
	}
	if s.Value(16) != 7 {
		t.Fatalf("value = %d, want 7", s.Value(16))
	}
	if s.Stats().Invals != 1 {
		t.Fatalf("invals = %d, want 1", s.Stats().Invals)
	}
	// Former sharers must miss now.
	r := access(t, eng, s, 0, 16, Read, 0, nil)
	if r.Source != SrcRemoteCache {
		t.Fatalf("invalidated sharer re-read source = %v", r.Source)
	}
}

func TestOwnedRFOIsLocal(t *testing.T) {
	eng, s := testSystem(t, nil)
	access(t, eng, s, 3, 16, RFO, 0, storeApply(1))
	res := access(t, eng, s, 3, 16, RFO, 0, storeApply(2))
	if res.Source != SrcLocal || res.Latency != 1*sim.Nanosecond {
		t.Fatalf("owned RFO: %+v, want local 1ns", res)
	}
}

func TestDirtyLineForwardedBetweenCores(t *testing.T) {
	eng, s := testSystem(t, nil)
	access(t, eng, s, 0, 16, RFO, 0, storeApply(42))
	res := access(t, eng, s, 4, 16, RFO, 0, storeApply(43))
	if res.Source != SrcRemoteCache {
		t.Fatalf("source = %v, want remote-cache", res.Source)
	}
	// Requester node 4, home 0, owner node 0:
	// hops(4,0)+hops(0,0)+hops(0,4) = 4+0+4 = 8. Cost = 2 + 8 = 10ns.
	if res.Hops != 8 || res.Latency != 10*sim.Nanosecond {
		t.Fatalf("hops=%d latency=%v, want 8 hops 10ns", res.Hops, res.Latency)
	}
	if res.Value != 42 {
		t.Fatalf("observed value %d, want 42 before own write", res.Value)
	}
	if s.Value(16) != 43 {
		t.Fatalf("final value %d, want 43", s.Value(16))
	}
}

func TestCASSemantics(t *testing.T) {
	eng, s := testSystem(t, nil)
	s.SetValue(16, 100)
	cas := func(expect, next uint64) Apply {
		return func(cur uint64) (uint64, bool) {
			if cur == expect {
				return next, true
			}
			return cur, false
		}
	}
	res := access(t, eng, s, 0, 16, RFO, 0, cas(100, 200))
	if !res.Wrote || s.Value(16) != 200 {
		t.Fatalf("successful CAS: wrote=%v value=%d", res.Wrote, s.Value(16))
	}
	res = access(t, eng, s, 1, 16, RFO, 0, cas(100, 300))
	if res.Wrote || s.Value(16) != 200 {
		t.Fatalf("failed CAS: wrote=%v value=%d", res.Wrote, s.Value(16))
	}
	if res.Value != 200 {
		t.Fatalf("failed CAS observed %d, want 200", res.Value)
	}
	// Failed CAS still acquired ownership.
	if d := s.Directory(16); d.Owner != 1 {
		t.Fatalf("failed CAS owner = %d, want 1", d.Owner)
	}
}

func TestContendedRequestsSerialize(t *testing.T) {
	eng, s := testSystem(t, nil)
	// Warm the line on core 0.
	access(t, eng, s, 0, 16, RFO, 0, storeApply(0))

	const hold = 5 * sim.Nanosecond
	var completions []sim.Time
	var order []int
	for core := 1; core <= 3; core++ {
		core := core
		s.Access(core, 16, RFO, hold, storeApply(uint64(core)), func(r AccessResult) {
			completions = append(completions, eng.Now())
			order = append(order, core)
		})
	}
	eng.Drain()
	if len(completions) != 3 {
		t.Fatalf("completions = %d", len(completions))
	}
	// FIFO: cores complete in issue order.
	for i, c := range order {
		if c != i+1 {
			t.Fatalf("completion order %v, want [1 2 3]", order)
		}
	}
	// Strictly increasing completion times (serialized).
	for i := 1; i < len(completions); i++ {
		if completions[i] <= completions[i-1] {
			t.Fatalf("services overlapped: %v", completions)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestQueuedBehindCounts(t *testing.T) {
	eng, s := testSystem(t, nil)
	access(t, eng, s, 0, 16, RFO, 0, storeApply(0))
	var behinds []int
	for core := 1; core <= 4; core++ {
		s.Access(core, 16, RFO, 0, storeApply(1), func(r AccessResult) {
			behinds = append(behinds, r.QueuedBehind)
		})
	}
	eng.Drain()
	// Core 1 is granted synchronously (line idle); cores 2..4 queue and
	// are bypassed by each grant that happens while they wait.
	want := []int{0, 0, 1, 2}
	for i := range want {
		if behinds[i] != want[i] {
			t.Fatalf("behinds = %v, want %v", behinds, want)
		}
	}
}

func TestLocalityArbiterPrefersNearCore(t *testing.T) {
	eng, s := testSystem(t, &LocalityArbiter{})
	// Owner at core 0; requests from core 7 (1 hop) and core 4 (4 hops)
	// arrive while the line is busy serving core 0's warm-up... instead:
	// enqueue both while line busy with a long first service.
	var order []int
	s.Access(0, 16, RFO, 20*sim.Nanosecond, storeApply(0), func(AccessResult) {
		order = append(order, 0)
	})
	// These two queue behind core 0's service; locality should pick 7
	// (adjacent to owner 0 on the ring) before 4 (opposite side).
	s.Access(4, 16, RFO, 0, storeApply(4), func(AccessResult) { order = append(order, 4) })
	s.Access(7, 16, RFO, 0, storeApply(7), func(AccessResult) { order = append(order, 7) })
	eng.Drain()
	if len(order) != 3 || order[1] != 7 || order[2] != 4 {
		t.Fatalf("locality order = %v, want [0 7 4]", order)
	}
}

func TestLocalityArbiterStarvationBound(t *testing.T) {
	eng, s := testSystem(t, &LocalityArbiter{MaxSkips: 2})
	// Keep the line ping-ponging between cores 0 and 1 while core 4
	// waits; the bound must let core 4 in after 2 skips.
	served4 := false
	skips := -1
	s.Access(0, 16, RFO, sim.Nanosecond, storeApply(0), nil)
	s.Access(4, 16, RFO, sim.Nanosecond, storeApply(4), func(r AccessResult) {
		served4 = true
		skips = r.QueuedBehind
	})
	// A stream of near requests that would otherwise always win.
	for i := 0; i < 6; i++ {
		core := i % 2
		s.Access(core, 16, RFO, sim.Nanosecond, storeApply(uint64(core)), nil)
	}
	eng.Drain()
	if !served4 {
		t.Fatal("far core was never served")
	}
	if skips > 2 {
		t.Fatalf("far core skipped %d times, bound is 2", skips)
	}
}

func TestRandomArbiterServesEveryone(t *testing.T) {
	eng, s := testSystem(t, NewRandomArbiter(1))
	served := map[int]bool{}
	s.Access(0, 16, RFO, sim.Nanosecond, storeApply(0), nil)
	for core := 1; core < 8; core++ {
		core := core
		s.Access(core, 16, RFO, 0, storeApply(uint64(core)), func(AccessResult) { served[core] = true })
	}
	eng.Drain()
	if len(served) != 7 {
		t.Fatalf("served %d cores, want 7", len(served))
	}
}

func TestHoldTimeExtendsService(t *testing.T) {
	eng, s := testSystem(t, nil)
	access(t, eng, s, 0, 16, RFO, 0, storeApply(0))
	start := eng.Now()
	res := access(t, eng, s, 0, 16, RFO, 7*sim.Nanosecond, storeApply(1))
	if res.Latency != 8*sim.Nanosecond { // L1Hit 1 + hold 7
		t.Fatalf("latency with hold = %v, want 8ns", res.Latency)
	}
	_ = start
}

func TestStatsCounters(t *testing.T) {
	eng, s := testSystem(t, nil)
	access(t, eng, s, 0, 16, Read, 0, nil)          // DRAM
	access(t, eng, s, 0, 16, Read, 0, nil)          // local
	access(t, eng, s, 1, 16, Read, 0, nil)          // remote (owner E forwards)
	access(t, eng, s, 2, 16, RFO, 0, storeApply(1)) // LLC + inval
	st := s.Stats()
	if st.Accesses != 4 {
		t.Errorf("accesses = %d, want 4", st.Accesses)
	}
	if st.DRAMFills != 1 || st.LocalHits != 1 || st.RemoteXfers != 1 || st.LLCFills != 1 {
		t.Errorf("counter mix: %+v", st)
	}
	if st.Invals != 1 {
		t.Errorf("invals = %d, want 1", st.Invals)
	}
}

func TestValueLinearizability(t *testing.T) {
	// N cores each perform k fetch-and-increments; final value must be
	// exactly N*k regardless of arbitration policy.
	for _, arb := range []Arbiter{FIFOArbiter{}, NewRandomArbiter(3), &LocalityArbiter{MaxSkips: 8}} {
		eng, s := testSystem(t, arb)
		inc := func(cur uint64) (uint64, bool) { return cur + 1, true }
		const cores, k = 8, 50
		var done func(core, i int)
		done = func(core, i int) {
			if i == k {
				return
			}
			s.Access(core, 16, RFO, sim.Nanosecond, inc, func(AccessResult) {
				done(core, i+1)
			})
		}
		for c := 0; c < cores; c++ {
			done(c, 0)
		}
		eng.Drain()
		if got := s.Value(16); got != cores*k {
			t.Errorf("%s: final value %d, want %d", arb.Name(), got, cores*k)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", arb.Name(), err)
		}
	}
}

func TestSeparateLinesDoNotSerialize(t *testing.T) {
	eng, s := testSystem(t, nil)
	// Warm two lines on two cores, then issue long-hold RFOs to both at
	// the same instant; they should complete concurrently (same time),
	// not back to back.
	access(t, eng, s, 0, 100, RFO, 0, storeApply(0))
	access(t, eng, s, 1, 101, RFO, 0, storeApply(0))
	var t100, t101 sim.Time
	s.Access(0, 100, RFO, 10*sim.Nanosecond, storeApply(1), func(AccessResult) { t100 = eng.Now() })
	s.Access(1, 101, RFO, 10*sim.Nanosecond, storeApply(1), func(AccessResult) { t101 = eng.Now() })
	eng.Drain()
	if t100 != t101 {
		t.Fatalf("independent lines serialized: %v vs %v", t100, t101)
	}
}

func TestHomeNodeSpreadsAcrossTopology(t *testing.T) {
	_, s := testSystem(t, nil)
	seen := map[int]bool{}
	for id := LineID(0); id < 64; id++ {
		seen[s.Directory(id).Home] = true
	}
	if len(seen) != 8 {
		t.Fatalf("homes used = %d, want 8", len(seen))
	}
}

func TestBadParams(t *testing.T) {
	eng := sim.NewEngine()
	_, err := NewSystem(eng, Params{}, nil)
	if err == nil {
		t.Fatal("empty params accepted")
	}
	_, err = NewSystem(eng, Params{
		NumCores: 4,
		Topo:     topology.NewRing(2),
		NodeOf:   func(c int) int { return c }, // cores 2,3 out of range
	}, nil)
	if err == nil {
		t.Fatal("out-of-range NodeOf accepted")
	}
}

func TestAccessPanicsOnBadCore(t *testing.T) {
	_, s := testSystem(t, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad core")
		}
	}()
	s.Access(99, 0, Read, 0, nil, nil)
}

func TestKindAndSourceStrings(t *testing.T) {
	if Read.String() != "Read" || RFO.String() != "RFO" {
		t.Error("Kind strings")
	}
	for _, c := range []struct {
		s    Source
		want string
	}{{SrcLocal, "local"}, {SrcRemoteCache, "remote-cache"}, {SrcLLC, "llc"}, {SrcDRAM, "dram"}} {
		if c.s.String() != c.want {
			t.Errorf("Source %d = %q, want %q", c.s, c.s.String(), c.want)
		}
	}
}

func TestMESIFForwardingFromNearSharer(t *testing.T) {
	eng := sim.NewEngine()
	p := Params{
		NumCores:       8,
		Topo:           topology.NewRing(8),
		NodeOf:         func(c int) int { return c },
		L1Hit:          1 * sim.Nanosecond,
		DirLookup:      2 * sim.Nanosecond,
		HopLatency:     1 * sim.Nanosecond,
		LLCHit:         40 * sim.Nanosecond, // expensive LLC: forwarding wins
		DRAM:           100 * sim.Nanosecond,
		InvalidateCost: 3 * sim.Nanosecond,
		ForwardSharer:  true,
	}
	s, err := NewSystem(eng, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Build a shared line (home of line 16 is node 0): owner then reader.
	access(t, eng, s, 2, 16, Read, 0, nil)
	access(t, eng, s, 3, 16, Read, 0, nil) // now S with sharers {2,3}
	// Core 4 reads: nearest sharer is core 3 (1 hop away); forward cost
	// = dir 2 + hops(4,0)+hops(0,3)+hops(3,4) = 2 + 4+3+1 = 10ns,
	// beating LLC (2 + 40 + 2*4 = 50ns).
	res := access(t, eng, s, 4, 16, Read, 0, nil)
	if res.Source != SrcRemoteCache {
		t.Fatalf("source = %v, want forwarded remote-cache", res.Source)
	}
	if res.Latency != 10*sim.Nanosecond {
		t.Fatalf("forwarded latency = %v, want 10ns", res.Latency)
	}
	// Without forwarding the same read pays the LLC.
	p.ForwardSharer = false
	eng2 := sim.NewEngine()
	s2, _ := NewSystem(eng2, p, nil)
	access(t, eng2, s2, 2, 16, Read, 0, nil)
	access(t, eng2, s2, 3, 16, Read, 0, nil)
	res2 := access(t, eng2, s2, 4, 16, Read, 0, nil)
	if res2.Source != SrcLLC || res2.Latency <= res.Latency {
		t.Fatalf("MESI read: %+v, want costlier LLC fill", res2)
	}
}

func TestMESIFFallsBackToLLCWhenCheaper(t *testing.T) {
	eng := sim.NewEngine()
	p := Params{
		NumCores:      8,
		Topo:          topology.NewRing(8),
		NodeOf:        func(c int) int { return c },
		L1Hit:         1 * sim.Nanosecond,
		DirLookup:     2 * sim.Nanosecond,
		HopLatency:    10 * sim.Nanosecond, // hops dominate: LLC wins
		LLCHit:        5 * sim.Nanosecond,
		DRAM:          100 * sim.Nanosecond,
		ForwardSharer: true,
	}
	s, err := NewSystem(eng, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	access(t, eng, s, 4, 16, Read, 0, nil) // E at core 4 (far from home 0)
	access(t, eng, s, 5, 16, Read, 0, nil) // S {4,5}
	// Core 0 sits on the home node: LLC trip = 2+5+0 = 7ns; any forward
	// pays >= 2 + 10*stuff.
	res := access(t, eng, s, 0, 16, Read, 0, nil)
	if res.Source != SrcLLC {
		t.Fatalf("source = %v, want LLC (cheaper than forwarding)", res.Source)
	}
}

func TestTracerSeesEveryAccess(t *testing.T) {
	eng, s := testSystem(t, nil)
	n := 0
	s.SetTracer(func(TraceEvent) { n++ })
	access(t, eng, s, 0, 16, Read, 0, nil)
	access(t, eng, s, 0, 16, Read, 0, nil)
	access(t, eng, s, 1, 16, RFO, 0, storeApply(1))
	if n != 3 {
		t.Fatalf("tracer saw %d events, want 3", n)
	}
}
