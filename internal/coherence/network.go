package coherence

import (
	"atomicsmodel/internal/metrics"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/topology"
)

// network models finite interconnect bandwidth. When enabled (the
// params' LinkOccupancy > 0 and the topology is a topology.Router),
// every coherence message reserves each link it crosses for
// LinkOccupancy — so a storm on one line delays traffic on every line
// sharing those links, the cross-line interference infinite-bandwidth
// simulation misses.
type network struct {
	router    *topology.DenseRouter
	occupancy sim.Time
	// linkTime[l] is the transit time across link l (hop latency times
	// the link's transit weight), precomputed so the per-message loop is
	// pure table reads.
	linkTime []sim.Time
	// free[l] is the instant link l next becomes available.
	free []sim.Time
	// stalled accumulates total time messages waited for busy links.
	stalled sim.Time
	// mOccLink, when metrics are installed, accumulates per-link busy
	// time: each message's reservation adds occupancy to every link it
	// crosses. Nil-safe, so the hot loop needs no metrics branch.
	mOccLink *metrics.Vector
}

// newNetwork returns nil when bandwidth modeling is off (zero occupancy
// or a topology that cannot enumerate links).
func newNetwork(p *Params) *network {
	if p.LinkOccupancy <= 0 {
		return nil
	}
	r, ok := p.Topo.(topology.Router)
	if !ok {
		return nil
	}
	dr := topology.NewDenseRouter(r)
	linkTime := make([]sim.Time, dr.Links())
	for l := range linkTime {
		linkTime[l] = p.HopLatency * sim.Time(dr.LinkTransit(l))
	}
	return &network{
		router:    dr,
		occupancy: p.LinkOccupancy,
		linkTime:  linkTime,
		free:      make([]sim.Time, dr.Links()),
	}
}

// transit sends one message from node a to node b starting at time at;
// it reserves each link in order and returns the transit delay (arrival
// minus at). With no contention the delay is Hops(a,b)*HopLatency,
// identical to the closed-form cost. The link sequence is an interned
// read-only path from the dense router — no per-message allocation.
func (nw *network) transit(at sim.Time, a, b int) sim.Time {
	t := at
	for _, l := range nw.router.Path(a, b) {
		start := t
		if nw.free[l] > start {
			nw.stalled += nw.free[l] - start
			start = nw.free[l]
		}
		nw.free[l] = start + nw.occupancy
		nw.mOccLink.Add(l, uint64(nw.occupancy))
		t = start + nw.linkTime[l]
	}
	return t - at
}

// trip chains message legs through the given node sequence and returns
// the total transit delay from at.
func (nw *network) trip(at sim.Time, nodes ...int) sim.Time {
	t := at
	for i := 1; i < len(nodes); i++ {
		t += nw.transit(t, nodes[i-1], nodes[i])
	}
	return t - at
}

// Stalled reports the cumulative time messages spent waiting for links.
func (nw *network) Stalled() sim.Time { return nw.stalled }

// Reset clears all link reservations and the stall accumulator so a
// pooled system starts its next cell with an idle interconnect.
func (nw *network) Reset() {
	for l := range nw.free {
		nw.free[l] = 0
	}
	nw.stalled = 0
	nw.mOccLink = nil
}
