package coherence

import (
	"testing"

	"atomicsmodel/internal/sim"
)

func TestArbiterNames(t *testing.T) {
	cases := []struct {
		a    Arbiter
		want string
	}{
		{FIFOArbiter{}, "fifo"},
		{NewRandomArbiter(1), "random"},
		{&LocalityArbiter{}, "locality"},
		{&LocalityArbiter{MaxSkips: 4}, "locality-bounded"},
	}
	for _, c := range cases {
		if got := c.a.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestCoreSetOperations(t *testing.T) {
	s := newCoreSet(130) // multiple words
	for _, i := range []int{0, 63, 64, 129} {
		if s.has(i) {
			t.Fatalf("fresh set has %d", i)
		}
		s.add(i)
		if !s.has(i) {
			t.Fatalf("add(%d) lost", i)
		}
	}
	if s.count() != 4 {
		t.Fatalf("count = %d, want 4", s.count())
	}
	s.remove(64)
	if s.has(64) || s.count() != 3 {
		t.Fatal("remove failed")
	}
	var seen []int
	s.forEach(func(c int) { seen = append(seen, c) })
	want := []int{0, 63, 129}
	if len(seen) != len(want) {
		t.Fatalf("forEach saw %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("forEach order %v, want ascending %v", seen, want)
		}
	}
	s.clear()
	if !s.empty() {
		t.Fatal("clear left bits")
	}
}

func TestParamsAccessor(t *testing.T) {
	_, s := testSystem(t, nil)
	p := s.Params()
	if p.NumCores != 8 || p.L1Hit != sim.Nanosecond {
		t.Fatalf("Params() = %+v", p)
	}
}

func TestEvictPrivate(t *testing.T) {
	eng, s := testSystem(t, nil)
	access(t, eng, s, 2, 16, RFO, 0, storeApply(9))
	s.EvictPrivate(16)
	d := s.Directory(16)
	if d.Owner != -1 || len(d.Sharers) != 0 || !d.Valid {
		t.Fatalf("after evict: %+v", d)
	}
	// Value preserved; next read is an LLC fill, not DRAM.
	res := access(t, eng, s, 2, 16, Read, 0, nil)
	if res.Source != SrcLLC || res.Value != 9 {
		t.Fatalf("post-evict read: %+v", res)
	}
	// An untouched line stays invalid after eviction.
	s.EvictPrivate(99)
	if s.Directory(99).Valid {
		t.Fatal("evicting a cold line should not validate it")
	}
}

func TestEvictPrivatePanicsWhenBusy(t *testing.T) {
	eng, s := testSystem(t, nil)
	s.Access(0, 16, RFO, 10*sim.Nanosecond, storeApply(1), nil)
	// The request was granted synchronously; the line is busy now.
	defer func() {
		if recover() == nil {
			t.Fatal("EvictPrivate on busy line did not panic")
		}
		eng.Drain()
	}()
	s.EvictPrivate(16)
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	eng, s := testSystem(t, nil)
	access(t, eng, s, 0, 16, RFO, 0, storeApply(1))
	l := s.line(16)
	// Corrupt: owner and sharers at once.
	l.sharers.add(3)
	if err := s.CheckInvariants(); err == nil {
		t.Fatal("owner+sharers accepted")
	}
	l.sharers.clear()
	// Corrupt: owner out of range.
	l.owner = 99
	if err := s.CheckInvariants(); err == nil {
		t.Fatal("out-of-range owner accepted")
	}
	l.owner = 0
	// Corrupt: cached but invalid.
	l.valid = false
	if err := s.CheckInvariants(); err == nil {
		t.Fatal("cached-but-invalid accepted")
	}
	l.valid = true
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("repaired state still rejected: %v", err)
	}
}

func TestSourceUnknownString(t *testing.T) {
	if Source(200).String() != "unknown" {
		t.Error("unknown source string")
	}
}

func TestValidateRejectsMissingTopo(t *testing.T) {
	p := Params{NumCores: 2}
	if err := p.validate(); err == nil {
		t.Fatal("missing topo accepted")
	}
}

// TestReadDuringRFOServiceObservesPreWriteValue pins down ordering: a
// bypassed shared read issued while an RFO is queued serializes before
// the RFO (its value is captured at issue).
func TestReadOrderingAgainstQueuedRFO(t *testing.T) {
	eng, s := testSystem(t, nil)
	// Make the line shared with value 5 so reads bypass.
	access(t, eng, s, 0, 16, RFO, 0, storeApply(5))
	access(t, eng, s, 1, 16, Read, 0, nil)
	access(t, eng, s, 2, 16, Read, 0, nil)
	// Now owner == -1, sharers {0,1,2}? (owner downgraded on first read)
	var readVal uint64
	var wrote bool
	// Queue an RFO and immediately a bypassing read from a non-sharer.
	s.Access(3, 16, RFO, 5*sim.Nanosecond, storeApply(6), func(r AccessResult) { wrote = true })
	s.Access(4, 16, Read, 0, nil, func(r AccessResult) { readVal = r.Value })
	eng.Drain()
	if !wrote {
		t.Fatal("RFO did not complete")
	}
	// The RFO was granted synchronously (line idle at issue), so the
	// directory already shows core 3 as owner when core 4's read is
	// issued: the read must queue and observe the post-write value.
	if readVal != 6 {
		t.Fatalf("read observed %d, want 6 (serialized after in-flight RFO)", readVal)
	}
}
