package coherence

import (
	"testing"

	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/topology"
)

// TestProtocolFuzz drives the protocol with a random soup of reads and
// RMWs from random cores on a small set of lines, under every arbiter,
// and checks the strongest properties we can state:
//
//  1. every issued operation completes;
//  2. directory invariants hold at the end;
//  3. per line, the sequence of RMW serializations forms a chain: each
//     RMW observes exactly the value the previous RMW on that line
//     left behind (linearizability of the value);
//  4. every read observes a value that some prefix of that chain
//     produced (reads never see out-of-thin-air values).
func TestProtocolFuzz(t *testing.T) {
	arbs := []func() Arbiter{
		func() Arbiter { return FIFOArbiter{} },
		func() Arbiter { return NewRandomArbiter(99) },
		func() Arbiter { return &LocalityArbiter{MaxSkips: 16} },
	}
	for ai, mkArb := range arbs {
		for seed := uint64(1); seed <= 4; seed++ {
			runFuzz(t, mkArb(), seed+uint64(ai)*100)
		}
	}
}

type rmwRecord struct {
	observed uint64
	wrote    bool
	next     uint64
}

func runFuzz(t *testing.T, arb Arbiter, seed uint64) {
	t.Helper()
	eng := sim.NewEngine()
	p := Params{
		NumCores:       16,
		Topo:           topology.NewMesh2D(4, 4),
		NodeOf:         func(c int) int { return c },
		L1Hit:          1 * sim.Nanosecond,
		DirLookup:      3 * sim.Nanosecond,
		HopLatency:     1 * sim.Nanosecond,
		LLCHit:         12 * sim.Nanosecond,
		DRAM:           50 * sim.Nanosecond,
		InvalidateCost: 4 * sim.Nanosecond,
		ForwardSharer:  seed%2 == 0, // alternate protocol variants
	}
	s, err := NewSystem(eng, p, arb)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(seed)
	const (
		lines = 5
		ops   = 4000
	)
	issued, completed := 0, 0
	chains := make(map[LineID][]rmwRecord)
	reads := make(map[LineID][]uint64)

	for i := 0; i < ops; i++ {
		core := rng.Intn(16)
		line := LineID(rng.Intn(lines))
		issueAt := rng.Duration(200 * sim.Microsecond)
		issued++
		switch rng.Intn(4) {
		case 0: // read
			eng.At(issueAt, func() {
				s.Access(core, line, Read, 0, nil, func(r AccessResult) {
					completed++
					reads[line] = append(reads[line], r.Value)
				})
			})
		case 1: // store
			v := rng.Uint64() % 1000
			eng.At(issueAt, func() {
				s.Access(core, line, RFO, sim.Nanosecond, func(cur uint64) (uint64, bool) {
					return v, true
				}, func(r AccessResult) {
					completed++
					chains[line] = append(chains[line], rmwRecord{observed: r.Value, wrote: true, next: v})
				})
			})
		case 2: // fetch-and-add
			eng.At(issueAt, func() {
				var rec rmwRecord
				s.Access(core, line, RFO, sim.Nanosecond, func(cur uint64) (uint64, bool) {
					rec = rmwRecord{observed: cur, wrote: true, next: cur + 1}
					return cur + 1, true
				}, func(r AccessResult) {
					completed++
					chains[line] = append(chains[line], rec)
				})
			})
		default: // CAS on a guessed value
			guess := rng.Uint64() % 1000
			eng.At(issueAt, func() {
				var rec rmwRecord
				s.Access(core, line, RFO, sim.Nanosecond, func(cur uint64) (uint64, bool) {
					if cur == guess {
						rec = rmwRecord{observed: cur, wrote: true, next: guess + 1}
						return guess + 1, true
					}
					rec = rmwRecord{observed: cur, wrote: false, next: cur}
					return cur, false
				}, func(r AccessResult) {
					completed++
					chains[line] = append(chains[line], rec)
				})
			})
		}
	}
	eng.Drain()

	if completed != issued {
		t.Fatalf("%s seed %d: %d/%d ops completed", arb.Name(), seed, completed, issued)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("%s seed %d: %v", arb.Name(), seed, err)
	}
	for line, chain := range chains {
		cur := uint64(0)
		produced := map[uint64]bool{0: true}
		for i, rec := range chain {
			if rec.observed != cur {
				t.Fatalf("%s seed %d line %d op %d: observed %d, chain value %d",
					arb.Name(), seed, line, i, rec.observed, cur)
			}
			cur = rec.next
			produced[cur] = true
		}
		if got := s.Value(line); got != cur {
			t.Fatalf("%s seed %d line %d: final value %d, chain says %d",
				arb.Name(), seed, line, got, cur)
		}
		for _, v := range reads[line] {
			if !produced[v] {
				t.Fatalf("%s seed %d line %d: read observed out-of-thin-air value %d",
					arb.Name(), seed, line, v)
			}
		}
	}
}
