package coherence

import (
	"fmt"

	"atomicsmodel/internal/sim"
)

// Arbiter decides which queued request a line controller grants next.
// This is where hardware fairness (or the lack of it) lives: the paper's
// fairness results come from the fact that real coherence arbitration is
// not FIFO — requesters topologically close to the line's current owner
// win races more often, which starves distant cores on NUMA machines.
type Arbiter interface {
	// Pick returns the index into l.waiting() — the line's live queue
	// window, oldest request first — of the request to grant. The
	// window is non-empty when Pick is called.
	Pick(s *System, l *lineState) int
	// Name identifies the policy in experiment tables.
	Name() string
}

// StatelessArbiter is an optional marker for arbiters whose Pick
// neither mutates state nor draws randomness, so a pick from a
// single-element queue can be elided entirely. The coherence layer's
// analytic uncontended fast path requires it: that path grants without
// calling Pick, which would desynchronize a stateful arbiter's stream
// (RandomArbiter consumes one RNG draw even for a singleton queue).
type StatelessArbiter interface {
	// StatelessPick is a marker; it is never called.
	StatelessPick()
}

// FIFOArbiter grants requests strictly in arrival order: an idealized,
// perfectly fair interconnect (Jain's index ≈ 1).
type FIFOArbiter struct{}

func (FIFOArbiter) Pick(s *System, l *lineState) int { return 0 }
func (FIFOArbiter) Name() string                     { return "fifo" }
func (FIFOArbiter) StatelessPick()                   {}

// RandomArbiter grants a uniformly random queued request. Memoryless
// arbitration is statistically fair in the long run but produces higher
// per-thread variance than FIFO.
type RandomArbiter struct {
	RNG *sim.RNG
}

// NewRandomArbiter returns a random arbiter with its own RNG stream.
func NewRandomArbiter(seed uint64) *RandomArbiter {
	return &RandomArbiter{RNG: sim.NewRNG(seed)}
}

func (a *RandomArbiter) Pick(s *System, l *lineState) int {
	return a.RNG.Intn(l.qlen())
}
func (a *RandomArbiter) Name() string { return "random" }

// LocalityArbiter grants the queued request whose core is topologically
// nearest to the line's current location (owner if any, else home).
// This models real snoop-race behaviour: the core closest to the data
// observes the line first and wins, which maximizes throughput (shorter
// transfers) but starves far-away cores — the unfairness the paper
// measures on multi-socket machines. Ties break in arrival order, and a
// starvation bound (MaxSkips) eventually forces the oldest request
// through, mirroring hardware anti-starvation timers.
type LocalityArbiter struct {
	// MaxSkips is how many times a request may be bypassed before it is
	// force-granted; <= 0 means unbounded (pure locality).
	MaxSkips int
}

func (a *LocalityArbiter) Pick(s *System, l *lineState) int {
	if a.MaxSkips > 0 {
		for i, r := range l.waiting() {
			// A waiter's live bypass count is the grants since it joined.
			if int(l.grants-r.skipBase) >= a.MaxSkips {
				return i
			}
		}
	}
	cur := l.home
	if l.owner >= 0 {
		cur = s.nodeOf[l.owner]
	}
	best, bestD := 0, int(^uint(0)>>1)
	for i, r := range l.waiting() {
		d := int(s.thops[s.nodeOf[r.core]*s.tn+cur])
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

func (a *LocalityArbiter) StatelessPick() {}

func (a *LocalityArbiter) Name() string {
	if a.MaxSkips > 0 {
		return "locality-bounded"
	}
	return "locality"
}

// NewByName builds an arbiter from its policy name, the resolution used
// by declarative workload specs. "fifo" returns the value FIFOArbiter{}
// — deliberately not a pointer, and equivalent to leaving the arbiter
// nil, so both System.SetArbiter and the fast-forward memoizer treat a
// spec-built FIFO cell exactly like a hand-written one. skips bounds a
// locality arbiter's starvation window (0 = unbounded) and is rejected
// for the other policies; seed feeds the random arbiter's RNG stream
// and is ignored by the stateless policies.
func NewByName(name string, skips int, seed uint64) (Arbiter, error) {
	if skips < 0 {
		return nil, fmt.Errorf("coherence: negative arbiter skip bound %d", skips)
	}
	switch name {
	case "fifo":
		if skips != 0 {
			return nil, fmt.Errorf("coherence: arbiter %q takes no skip bound", name)
		}
		return FIFOArbiter{}, nil
	case "random":
		if skips != 0 {
			return nil, fmt.Errorf("coherence: arbiter %q takes no skip bound", name)
		}
		return NewRandomArbiter(seed), nil
	case "locality":
		return &LocalityArbiter{MaxSkips: skips}, nil
	}
	return nil, fmt.Errorf("coherence: unknown arbiter %q (want one of %v)", name, ArbiterNames())
}

// ArbiterNames lists the policy names NewByName accepts.
func ArbiterNames() []string {
	return []string{"fifo", "random", "locality"}
}
