package coherence

import (
	"testing"

	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/topology"
)

// benchSystem is a 16-core dual-ring system shaped like the Xeon preset:
// the configuration the contended experiments spend their time in. It
// accepts testing.TB so the allocation-regression tests share it.
func benchSystem(b testing.TB) (*sim.Engine, *System) {
	b.Helper()
	eng := sim.NewEngine()
	p := Params{
		NumCores:           16,
		Topo:               topology.NewDualRing(8, 2),
		NodeOf:             func(c int) int { return c },
		L1Hit:              1 * sim.Nanosecond,
		DirLookup:          4 * sim.Nanosecond,
		HopLatency:         1 * sim.Nanosecond,
		CrossSocketPenalty: 30 * sim.Nanosecond,
		LLCHit:             12 * sim.Nanosecond,
		DRAM:               60 * sim.Nanosecond,
		InvalidateCost:     3 * sim.Nanosecond,
	}
	s, err := NewSystem(eng, p, nil)
	if err != nil {
		b.Fatal(err)
	}
	return eng, s
}

// BenchmarkCoherenceAccess measures one contended RFO handoff: the line
// is dirty in another core's cache, so every access walks the full
// request->home->owner->requester transfer path, the directory
// transition, and the completion callback. This is the inner loop of
// every high-contention experiment.
func BenchmarkCoherenceAccess(b *testing.B) {
	eng, s := benchSystem(b)
	apply := func(cur uint64) (uint64, bool) { return cur + 1, true }
	// Warm the line into M state so the steady state is remote handoffs.
	s.Access(0, 1, RFO, 0, apply, nil)
	eng.Drain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access((i+1)%16, 1, RFO, 0, apply, nil)
		eng.Drain()
	}
}

// BenchmarkCoherenceReadShared measures the pipelined shared-read fast
// path (an LLC-resident line read by a non-sharer), the loop TTAS-style
// spinners and read-mostly mixes sit in.
func BenchmarkCoherenceReadShared(b *testing.B) {
	eng, s := benchSystem(b)
	s.Access(0, 1, RFO, 0, func(cur uint64) (uint64, bool) { return 7, true }, nil)
	eng.Drain()
	s.EvictPrivate(1) // resident at home LLC, no private copies
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core := i % 16
		s.Access(core, 1, Read, 0, nil, nil)
		eng.Drain()
		s.EvictPrivate(1)
	}
}

// BenchmarkPathCost measures the per-message cost computation alone:
// a three-leg requester->home->requester path on the dual ring.
func BenchmarkPathCost(b *testing.B) {
	_, s := benchSystem(b)
	b.ReportAllocs()
	b.ResetTimer()
	var total sim.Time
	var hops int
	for i := 0; i < b.N; i++ {
		c, h := s.pathCost(4*sim.Nanosecond, [4]int{i % 16, 3, i % 16}, 3)
		total += c
		hops += h
	}
	_ = total
	_ = hops
}
