// Package coherence simulates a MESI directory-based cache-coherence
// protocol at cache-line granularity. It is the substrate the paper's
// measurements run on: atomic read-modify-writes become request-for-
// ownership (RFO) transactions, the directory serializes requests to a
// line, and the resulting "bouncing" of the line between cores is exactly
// the mechanism the paper's performance model is centered on.
//
// The simulator tracks, per line: the directory state (owner in M/E or a
// sharer set in S), the line's 64-bit value (so CAS success and failure
// are exact, not probabilistic), and a queue of outstanding requests.
// Requests are served one at a time per line; the service cost is the
// topology-dependent transfer latency from wherever the data currently
// lives, plus the execution occupancy the requester declares (the cycles
// a locked instruction holds the line). Which queued request is served
// next is decided by a pluggable Arbiter — the source of the fairness
// differences the paper studies.
//
// In the model pipeline (ARCHITECTURE.md), this package sits between
// the machine descriptions (internal/machine supplies Params;
// internal/topology supplies hop counts) and the primitive semantics
// (internal/atomics drives Access). serviceCost implements the same
// per-state transfer table MODEL.md §1 states and §2 takes
// expectations over — F7 holds simulator and model against each
// other. Optional per-event instrumentation hooks into
// internal/metrics via InstallMetrics; with no registry installed the
// handles are nil and the access path is unchanged.
package coherence

import (
	"fmt"

	"atomicsmodel/internal/metrics"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/topology"
)

// LineID names a cache line.
type LineID uint64

// Kind distinguishes the two coherence transactions a core can issue.
type Kind uint8

const (
	// Read requests the line in shared state (a plain load).
	Read Kind = iota
	// RFO requests exclusive ownership (stores and all atomic RMWs).
	RFO
)

func (k Kind) String() string {
	if k == Read {
		return "Read"
	}
	return "RFO"
}

// Source reports where the data for an access was found.
type Source uint8

const (
	// SrcLocal: the requesting core already had sufficient rights.
	SrcLocal Source = iota
	// SrcRemoteCache: the line was forwarded from another core's cache.
	SrcRemoteCache
	// SrcLLC: the line was clean at its home LLC slice.
	SrcLLC
	// SrcDRAM: the line had to be fetched from memory.
	SrcDRAM
)

func (s Source) String() string {
	switch s {
	case SrcLocal:
		return "local"
	case SrcRemoteCache:
		return "remote-cache"
	case SrcLLC:
		return "llc"
	case SrcDRAM:
		return "dram"
	}
	return "unknown"
}

// Params configures a coherent memory system.
type Params struct {
	// NumCores is the number of private caches (one per physical core;
	// hyperthreads share their core's cache and therefore its coherence
	// state).
	NumCores int
	// Topo is the interconnect. NodeOf maps a core to its network stop.
	Topo   topology.Topology
	NodeOf func(core int) int

	// L1Hit is the cost of an access that the core's own cache satisfies.
	L1Hit sim.Time
	// DirLookup is the home-agent processing cost paid by every miss.
	DirLookup sim.Time
	// HopLatency is the cost per network hop of request/data messages.
	HopLatency sim.Time
	// CrossSocketPenalty is added once when requester and data source are
	// in different sockets (the QPI/UPI serialization cost beyond hops).
	CrossSocketPenalty sim.Time
	// LLCHit is the base cost of reading the home LLC slice (on top of
	// the hops to reach it).
	LLCHit sim.Time
	// DRAM is the base cost of a memory fetch (on top of hops to home).
	DRAM sim.Time
	// InvalidateCost is added to an RFO that must invalidate sharers
	// (acknowledgment collection overlaps the data return only partly).
	InvalidateCost sim.Time
	// ForwardSharer enables MESIF-style forwarding: a read miss on a
	// line with sharers is served cache-to-cache by the sharer nearest
	// the requester instead of by the home LLC slice, when that is
	// cheaper. Intel's real protocol does this (the F state); the
	// simulator exposes it as an option so experiments can measure what
	// forwarding is worth.
	ForwardSharer bool
	// LinkOccupancy enables finite interconnect bandwidth: every
	// message reserves each link it crosses for this long, so traffic
	// on one line delays traffic on others sharing those links. Zero
	// (the default) means infinite bandwidth; it requires the topology
	// to implement topology.Router (all built-ins do).
	LinkOccupancy sim.Time
}

func (p *Params) validate() error {
	if p.NumCores <= 0 {
		return fmt.Errorf("coherence: NumCores = %d", p.NumCores)
	}
	if p.Topo == nil || p.NodeOf == nil {
		return fmt.Errorf("coherence: Topo and NodeOf are required")
	}
	for c := 0; c < p.NumCores; c++ {
		n := p.NodeOf(c)
		if n < 0 || n >= p.Topo.Nodes() {
			return fmt.Errorf("coherence: core %d maps to node %d outside topology %s", c, n, p.Topo.Name())
		}
	}
	// Every access must advance simulated time, or a zero-think
	// workload would spin the event loop at one instant forever.
	if p.L1Hit <= 0 {
		return fmt.Errorf("coherence: L1Hit must be positive (got %v)", p.L1Hit)
	}
	if p.DirLookup <= 0 {
		return fmt.Errorf("coherence: DirLookup must be positive (got %v)", p.DirLookup)
	}
	for _, c := range []struct {
		name string
		v    sim.Time
	}{
		{"HopLatency", p.HopLatency}, {"CrossSocketPenalty", p.CrossSocketPenalty},
		{"LLCHit", p.LLCHit}, {"DRAM", p.DRAM}, {"InvalidateCost", p.InvalidateCost},
		{"LinkOccupancy", p.LinkOccupancy},
	} {
		if c.v < 0 {
			return fmt.Errorf("coherence: %s must be non-negative (got %v)", c.name, c.v)
		}
	}
	return nil
}

// AccessResult describes a completed access. One is copied into every
// completion callback, so the word-sized fields come first and the
// byte-sized ones are packed together at the end.
type AccessResult struct {
	// Latency is issue-to-completion time including queueing behind
	// other requests to the same line.
	Latency sim.Time
	// Value is the line's 64-bit value observed at the serialization
	// point of this access (before any write this access performs).
	Value uint64
	// Hops is the total network distance the transaction traversed.
	Hops int
	// QueuedBehind is the number of other requests granted while this
	// one waited in the line's queue (how often it was bypassed; 0 when
	// granted immediately or when it only waited for an in-flight
	// service that had already been granted on arrival).
	QueuedBehind int
	// Source says where the data came from.
	Source Source
	// Wrote reports whether this access modified the line (a failed CAS
	// gains ownership but sets Wrote=false).
	Wrote bool
	// CrossSocket reports whether the transfer crossed a socket.
	CrossSocket bool
}

// TraceEvent is emitted once per completed access for energy accounting
// and debugging.
type TraceEvent struct {
	Line   LineID
	Core   int
	Kind   Kind
	Result AccessResult
	At     sim.Time
}

// Apply is the requester's modification, run at the access's
// serialization point with exclusive rights held. cur is the line's
// value; if write is true the line's value becomes next. A plain load
// passes nil. A store returns (v, true) unconditionally; a CAS compares
// cur and decides.
type Apply func(cur uint64) (next uint64, write bool)

// request is one outstanding access waiting at a line's controller.
// Requests are pooled on the System and recycled after completion, so
// steady-state accesses do not allocate one per operation; the two
// completion closures are built once per request object and survive
// recycling (they read everything through the request pointer).
type request struct {
	core   int
	kind   Kind
	hold   sim.Time // execution occupancy after data arrival
	apply  Apply
	issued sim.Time
	// skipBase is the line's grant counter at enqueue time; the grants
	// this request waited through is the counter's delta at its own
	// grant, so bypass tracking costs O(1) instead of touching every
	// waiter on every grant. skipped caches that delta once granted.
	skipBase uint64
	skipped  int
	done     func(AccessResult)
	// res is the in-progress result for the service this request was
	// granted (filled by serviceCost, finalized at completion) or, on
	// the non-serialized fast paths, the fully precomputed result.
	res AccessResult
	// line is the line this request is currently operating on.
	line *lineState
	// completeFn finalizes a granted (serialized) service; fastFn
	// finalizes a fast-path access that never queued; ownFn finalizes an
	// uncontended owner RFO that bypassed the arbiter.
	completeFn func()
	fastFn     func()
	ownFn      func()
}

// lineState is the directory entry plus value for one line.
type lineState struct {
	id    LineID
	home  int // home node (LLC slice / directory)
	value uint64
	// MESI directory: either owner >= 0 with exclusive rights
	// (ownerDirty says M vs E) and empty sharers, or owner == -1 with a
	// (possibly empty) sharer set.
	owner      int
	ownerDirty bool
	sharers    coreSet
	valid      bool // present somewhere on chip (else DRAM)

	busy bool
	// queue[qhead:] is the live request window. Grants advance qhead
	// instead of copying the tail down, so the FIFO common case is O(1)
	// with no pointer writes; the slice is compacted when it empties.
	queue []*request
	qhead int
	// grants counts services granted on this line, ever; paired with
	// request.skipBase it yields each waiter's bypass count in O(1).
	grants uint64
}

// qlen is the number of requests waiting (the live queue window).
func (l *lineState) qlen() int { return len(l.queue) - l.qhead }

// waiting is the live queue window, oldest first. Arbiters index into
// it; the granted index is relative to this window.
func (l *lineState) waiting() []*request { return l.queue[l.qhead:] }

// reset returns the line to its never-touched state, keeping the queue
// and sharer-set capacity for reuse by a pooled system.
func (l *lineState) reset() {
	l.value = 0
	l.owner = -1
	l.ownerDirty = false
	l.sharers.clear()
	l.valid = false
	l.busy = false
	for i := range l.queue {
		l.queue[i] = nil
	}
	l.queue = l.queue[:0]
	l.qhead = 0
	l.grants = 0
}

// AuditGrant is the auditor's view of one granted (serialized) service:
// the request's identity and queueing history plus the directory state
// after the grant's transition was applied. It is passed by value so
// auditing never allocates on the protocol hot path.
type AuditGrant struct {
	Line LineID
	Core int
	Kind Kind
	// Skipped is how many other services this request waited through.
	Skipped int
	// QueueLen is the number of requests still waiting after this grant.
	QueueLen int
	// Post-transition directory state.
	Owner      int
	OwnerDirty bool
	Sharers    int
	Valid      bool
	At         sim.Time
}

// AuditComplete is the auditor's view of one completed serialized
// service: the 64-bit value observed at the serialization point and the
// value the line holds after any write this access performed.
type AuditComplete struct {
	Line     LineID
	Core     int
	Kind     Kind
	Observed uint64
	Wrote    bool
	New      uint64
	At       sim.Time
}

// Auditor observes protocol-level events for online invariant checking
// (internal/invariant implements it). All methods are called
// synchronously from the simulation; they must not issue accesses.
type Auditor interface {
	// LineEnqueued fires when a request joins a line's queue (fast-path
	// accesses that never serialize do not enqueue).
	LineEnqueued(id LineID, queueLen int)
	// LineGranted fires after a grant's directory transition.
	LineGranted(g AuditGrant)
	// AccessCompleted fires when a granted service completes, after the
	// requester's modification ran.
	AccessCompleted(c AuditComplete)
	// ValueSeeded fires when experiment setup writes a line value
	// directly (SetValue), so value-conservation ledgers can seed.
	ValueSeeded(id LineID, v uint64)
}

// System is a coherent memory system attached to a simulation engine.
type System struct {
	eng    *sim.Engine
	p      Params
	arb    Arbiter
	lines  map[LineID]*lineState
	net    *network // nil when bandwidth modeling is off
	tracer func(TraceEvent)
	aud    Auditor // nil unless invariant checking is installed

	// Hot-path lookup tables, built once at NewSystem time: the dense
	// topology replaces per-message routing arithmetic with array reads,
	// and nodeOf caches the core-to-node map so accesses never call back
	// into the machine description. thops/tcross/tn are the dense
	// topology's raw matrices, indexed a*tn+b without range checks.
	topo   *topology.Dense
	thops  []int32
	tcross []bool
	tn     int
	nodeOf []int
	// reqPool recycles request structs (see request); allReqs tracks
	// every request ever created so Reset can reclaim the ones that were
	// still in flight (queued, or held by a pending completion event)
	// when the run was cut off. lineFree recycles directory entries.
	// Together they make a pooled system's steady state allocation-free.
	reqPool  []*request
	allReqs  []*request
	lineFree []*lineState
	// lastLine is a one-entry lookup cache in front of the lines map;
	// workloads hammer one line (or a handful), so most accesses skip
	// the map entirely.
	lastLine *lineState
	// fastOwn gates the analytic uncontended-owner RFO path: it requires
	// an arbiter with no pick side effects (StatelessArbiter), no
	// auditor, and no metrics registry, because that path bypasses the
	// grant machinery those consumers observe. Recomputed whenever one
	// of the three inputs changes.
	fastOwn   bool
	metricsOn bool

	// Stats counters (cheap, always on).
	nAccesses   uint64
	nLocal      uint64
	nRemote     uint64
	nLLC        uint64
	nDRAM       uint64
	nInvals     uint64
	totalHops   uint64
	nCrossSock  uint64
	maxQueueLen int

	// Optional per-event metrics (see internal/metrics). All handles are
	// nil until InstallMetrics; nil handles make every increment below a
	// single-branch no-op, which is the "instrumented-off" fast path the
	// bench suite holds at 0 allocs/op.
	mTransfer     [4]*metrics.Counter // indexed by Source
	mInval        *metrics.Counter
	mCross        *metrics.Counter
	mQueueDepth   *metrics.Histogram
	mQueuedBehind *metrics.Histogram
	// Duration-weighted occupancy vectors (see internal/metrics names
	// and internal/bottleneck): busy picoseconds per directory home
	// node, per tracked line, and per interconnect link.
	mOccDir  *metrics.Vector
	mOccLine *metrics.Vector
	mOccLink *metrics.Vector
	// occRouter attributes per-link busy time when the bandwidth network
	// is off: a dense routing view of the topology, built lazily the
	// first time a registry is installed and kept across Reset (it is
	// immutable precomputed state, like the dense hop tables).
	occRouter *topology.DenseRouter
}

// maxTrackedLines bounds the per-line occupancy vector. Shared
// serialization points occupy the first few line IDs (workloads stripe
// them from ID 1); private low-contention lines live at IDs >= 1e6 and
// fall outside the vector on purpose — a private line is never a
// bottleneck, and the vector's bounds check drops them for free.
const maxTrackedLines = 64

// NewSystem builds a memory system. arb may be nil, which means FIFO.
func NewSystem(eng *sim.Engine, p Params, arb Arbiter) (*System, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if arb == nil {
		arb = FIFOArbiter{}
	}
	if p.LinkOccupancy > 0 {
		if _, ok := p.Topo.(topology.Router); !ok {
			return nil, fmt.Errorf("coherence: LinkOccupancy requires a routable topology, %s is not", p.Topo.Name())
		}
	}
	nodeOf := make([]int, p.NumCores)
	for c := range nodeOf {
		nodeOf[c] = p.NodeOf(c)
	}
	s := &System{
		eng:    eng,
		p:      p,
		arb:    arb,
		lines:  make(map[LineID]*lineState),
		net:    newNetwork(&p),
		topo:   topology.NewDense(p.Topo),
		nodeOf: nodeOf,
	}
	s.thops, s.tcross, s.tn = s.topo.Tables()
	s.recomputeFastOwn()
	return s, nil
}

// recomputeFastOwn re-derives the uncontended-owner fast-path gate; see
// the fastOwn field.
func (s *System) recomputeFastOwn() {
	_, stateless := s.arb.(StatelessArbiter)
	s.fastOwn = stateless && s.aud == nil && !s.metricsOn
}

// getReq takes a request from the pool (or allocates one, wiring its
// reusable completion closures).
func (s *System) getReq() *request {
	if n := len(s.reqPool); n > 0 {
		r := s.reqPool[n-1]
		s.reqPool = s.reqPool[:n-1]
		return r
	}
	r := &request{}
	r.completeFn = func() { s.completeService(r) }
	r.fastFn = func() { s.completeFast(r) }
	r.ownFn = func() { s.completeOwned(r) }
	s.allReqs = append(s.allReqs, r)
	return r
}

// putReq recycles a completed request. The caller must not touch it
// afterwards: any later Access may hand it out again.
func (s *System) putReq(r *request) {
	// Drop the per-access closures and line reference for GC; keep the
	// prebaked completion closures.
	r.apply, r.done, r.line = nil, nil, nil
	r.skipped = 0
	r.skipBase = 0
	r.res = AccessResult{}
	s.reqPool = append(s.reqPool, r)
}

// pathCost is the total cost of a coherence transaction that sends a
// message chain through the first n entries of nodes with proc of agent
// processing after the first leg (the home's directory lookup plus any
// LLC/DRAM access time). Uncontended it equals proc + Hops*HopLatency;
// with the bandwidth network enabled each leg reserves its links, and
// the processing gap holds the later legs back so a transaction does
// not queue behind its own request message. hops is the distance-
// weighted hop count for stats and energy. nodes is a fixed-size array
// (message chains are at most four stops) so calls stay off the heap.
func (s *System) pathCost(proc sim.Time, nodes [4]int, n int) (total sim.Time, hops int) {
	for i := 1; i < n; i++ {
		hops += int(s.thops[nodes[i-1]*s.tn+nodes[i]])
	}
	if s.net == nil {
		if s.mOccLink != nil {
			// No bandwidth model: charge each traversed link its transit
			// time so utilization still names the hottest wire.
			for i := 1; i < n; i++ {
				for _, l := range s.occRouter.Path(nodes[i-1], nodes[i]) {
					s.mOccLink.Add(l, uint64(s.p.HopLatency)*uint64(s.occRouter.LinkTransit(l)))
				}
			}
		}
		return proc + sim.Time(hops)*s.p.HopLatency, hops
	}
	now := s.eng.Now()
	t := now
	for i := 1; i < n; i++ {
		t += s.net.transit(t, nodes[i-1], nodes[i])
		if i == 1 {
			t += proc
		}
	}
	if n < 2 {
		t += proc
	}
	return t - now, hops
}

// SetTracer installs a per-access callback (e.g. the energy meter).
func (s *System) SetTracer(fn func(TraceEvent)) { s.tracer = fn }

// SetAuditor installs a protocol auditor (nil removes it). With no
// auditor installed every audit site is a single nil check, keeping the
// access path allocation-free and byte-identical in behavior. An
// auditor needs per-grant visibility, so installing one also disables
// the uncontended-owner fast path.
func (s *System) SetAuditor(a Auditor) {
	s.aud = a
	s.recomputeFastOwn()
}

// Arbiter returns the line arbiter the system grants with.
func (s *System) Arbiter() Arbiter { return s.arb }

// BreakLine deliberately corrupts a line's directory entry by adding
// ghost as a sharer without clearing the owner — the "two cores both
// believe they hold the line" state a real protocol bug would produce.
// It exists ONLY for fault injection (internal/faults): tests seed it
// and assert the invariant checker reports it. It must never be called
// outside a test or fault plan.
func (s *System) BreakLine(id LineID, ghost int) {
	if ghost < 0 || ghost >= s.p.NumCores {
		panic(fmt.Sprintf("coherence: BreakLine ghost core %d out of range", ghost))
	}
	s.line(id).sharers.add(ghost)
}

// InstallMetrics registers the coherence layer's instruments on r and
// starts feeding them: line transfers by source, invalidations,
// cross-socket transfers, and the directory queueing histograms. A nil
// registry (the default state) keeps every handle nil and the layer
// off; see internal/metrics for the naming scheme.
func (s *System) InstallMetrics(r *metrics.Registry) {
	s.mTransfer[SrcLocal] = r.Counter(metrics.CohTransferLocal)
	s.mTransfer[SrcRemoteCache] = r.Counter(metrics.CohTransferRemote)
	s.mTransfer[SrcLLC] = r.Counter(metrics.CohTransferLLC)
	s.mTransfer[SrcDRAM] = r.Counter(metrics.CohTransferDRAM)
	s.mInval = r.Counter(metrics.CohInvalidations)
	s.mCross = r.Counter(metrics.CohCrossSocket)
	s.mQueueDepth = r.Histogram(metrics.CohQueueDepth)
	s.mQueuedBehind = r.Histogram(metrics.CohQueuedBehind)
	// Occupancy vectors: directory busy time per home node, line busy
	// time per tracked line, link busy time per interconnect link. Link
	// attribution needs routing paths: the bandwidth network carries
	// them when it is on; otherwise a dense routing view is built once
	// here (registry installation is setup time, not the hot path) for
	// topologies that can enumerate links. Non-routable topologies get
	// no link vector and the rollup reports the link axis as untracked.
	s.mOccDir = r.Vector(metrics.CohDirBusy, s.tn)
	s.mOccLine = r.Vector(metrics.CohLineBusy, maxTrackedLines)
	if s.net != nil {
		s.mOccLink = r.Vector(metrics.CohLinkBusy, s.net.router.Links())
		s.net.mOccLink = s.mOccLink
	} else {
		if r != nil && s.occRouter == nil {
			if rt, ok := s.p.Topo.(topology.Router); ok {
				s.occRouter = topology.NewDenseRouter(rt)
			}
		}
		if s.occRouter != nil {
			s.mOccLink = r.Vector(metrics.CohLinkBusy, s.occRouter.Links())
		} else {
			s.mOccLink = nil
		}
	}
	// Metrics consumers want one observation per queue/grant event, so
	// the uncontended-owner fast path turns itself off while a registry
	// is installed (a nil registry keeps every handle nil and the layer
	// off).
	s.metricsOn = r != nil
	s.recomputeFastOwn()
}

// SetArbiter replaces the line arbiter (nil means FIFO). Pooled systems
// use it to install each cell's policy; it must not be called while
// requests are in flight.
func (s *System) SetArbiter(arb Arbiter) {
	if arb == nil {
		arb = FIFOArbiter{}
	}
	s.arb = arb
	s.recomputeFastOwn()
}

// Engine returns the simulation engine the system schedules on.
func (s *System) Engine() *sim.Engine { return s.eng }

// Params returns the system's configuration.
func (s *System) Params() Params { return s.p }

func (s *System) line(id LineID) *lineState {
	if l := s.lastLine; l != nil && l.id == id {
		return l
	}
	l, ok := s.lines[id]
	if !ok {
		if n := len(s.lineFree); n > 0 {
			l = s.lineFree[n-1]
			s.lineFree[n-1] = nil
			s.lineFree = s.lineFree[:n-1]
			l.id = id
			l.home = int(uint64(id) % uint64(s.tn))
		} else {
			l = &lineState{
				id:      id,
				home:    int(uint64(id) % uint64(s.tn)),
				owner:   -1,
				sharers: newCoreSet(s.p.NumCores),
			}
		}
		s.lines[id] = l
	}
	s.lastLine = l
	return l
}

// SetValue initializes a line's value without simulating an access
// (experiment setup).
func (s *System) SetValue(id LineID, v uint64) {
	s.line(id).value = v
	if s.aud != nil {
		s.aud.ValueSeeded(id, v)
	}
}

// Value reads a line's value without simulating an access (assertions).
func (s *System) Value(id LineID) uint64 { return s.line(id).value }

// EvictPrivate drops all private-cache copies of a line while keeping
// it resident at its home LLC slice (a clean eviction, with any dirty
// data written back). Experiments use it to stage the "LLC hit" initial
// state; it must not be called while requests to the line are in
// flight.
func (s *System) EvictPrivate(id LineID) {
	l := s.line(id)
	if l.busy || l.qlen() > 0 {
		panic("coherence: EvictPrivate on a line with in-flight requests")
	}
	l.owner = -1
	l.ownerDirty = false
	l.sharers.clear()
	// valid retains its value: an untouched line stays in DRAM.
}

// Access issues a coherence transaction from core for line id. kind
// selects Read or RFO; hold is the execution occupancy charged while the
// line is held at the serialization point (the locked instruction's
// cycles); apply performs the modification (may be nil for loads);
// done is invoked when the access completes. Access itself returns
// immediately — completion is a simulation event.
func (s *System) Access(core int, id LineID, kind Kind, hold sim.Time, apply Apply, done func(AccessResult)) {
	if core < 0 || core >= s.p.NumCores {
		panic(fmt.Sprintf("coherence: core %d out of range", core))
	}
	l := s.line(id)

	// Fast path: a read that the core's own cache can satisfy does not
	// serialize through the directory — real L1s serve shared lines
	// concurrently. The value is observed at issue time (the line cannot
	// change under a local shared copy without invalidating it first,
	// and invalidations queue behind in-flight completions).
	if kind == Read && (l.owner == core || l.sharers.has(core)) {
		s.nAccesses++
		s.nLocal++
		s.mTransfer[SrcLocal].Inc()
		req := s.getReq()
		req.core, req.kind, req.done, req.line = core, kind, done, l
		req.res = AccessResult{Latency: s.p.L1Hit, Value: l.value, Source: SrcLocal}
		if !s.eng.TryExpress(s.p.L1Hit, req.fastFn) {
			s.eng.ScheduleShard(l.home, s.p.L1Hit, req.fastFn)
		}
		return
	}

	// Analytic uncontended-owner path: an RFO by the core that already
	// holds the line exclusively, with no service in flight and nobody
	// queued, serializes trivially — the arbiter has one choice and the
	// cost is the closed-form L1 hit plus the instruction's occupancy
	// (the paper's uncontended constant). Bypass the queue/grant
	// machinery and schedule the completion directly; every observable
	// effect (counters, directory transition, grant count, value
	// application, trace event, result fields) mirrors the slow path
	// exactly, so results are byte-identical. The fastOwn gate keeps
	// this off whenever an auditor, metrics registry, or stateful
	// arbiter needs to see the grant; the sharers/valid checks keep it
	// off in deliberately corrupted directory states (BreakLine).
	if kind == RFO && s.fastOwn && l.owner == core && !l.busy &&
		l.qhead == len(l.queue) && l.valid && l.sharers.empty() {
		s.nAccesses++
		s.nLocal++
		if s.maxQueueLen < 1 {
			s.maxQueueLen = 1
		}
		l.busy = true
		l.grants++
		l.ownerDirty = false // E until the apply writes, like applyDirectory
		req := s.getReq()
		req.core, req.kind, req.done, req.line = core, kind, done, l
		req.apply = apply
		cost := s.p.L1Hit + hold
		req.res = AccessResult{Latency: cost, Source: SrcLocal}
		if !s.eng.TryExpress(cost, req.ownFn) {
			s.eng.ScheduleShard(l.home, cost, req.ownFn)
		}
		return
	}

	// Pipelined shared read: when no core holds the line exclusively
	// and it is resident at its home slice, concurrent read misses are
	// served by the (pipelined, multi-banked) LLC without occupying the
	// line's serialization point. This is what lets TTAS-style spinning
	// refill many waiters' caches in parallel after an invalidation.
	if kind == Read && l.owner == -1 && l.valid {
		cNode := s.nodeOf[core]
		// Choose the data source with uncontended closed-form costs,
		// then reserve (and pay) only the chosen path.
		llcHops := 2 * int(s.thops[cNode*s.tn+l.home])
		llcCost := s.p.DirLookup + s.p.LLCHit + sim.Time(llcHops)*s.p.HopLatency
		useForward := false
		var fNode, fHops int
		var fCross bool
		if s.p.ForwardSharer && !l.sharers.empty() {
			// MESIF: the nearest sharer forwards if that beats the LLC.
			if f, h, ok := s.nearestSharer(l, cNode); ok {
				fNode, fHops = s.nodeOf[f], h
				fCross = s.tcross[cNode*s.tn+fNode]
				fCost := s.p.DirLookup + sim.Time(fHops)*s.p.HopLatency
				if fCross {
					fCost += s.p.CrossSocketPenalty
				}
				useForward = fCost < llcCost
			}
		}
		var cost sim.Time
		var res AccessResult
		if useForward {
			c, hops := s.pathCost(s.p.DirLookup, [4]int{cNode, l.home, fNode, cNode}, 4)
			cost = c
			if fCross {
				cost += s.p.CrossSocketPenalty
			}
			res = AccessResult{Source: SrcRemoteCache, Hops: hops, CrossSocket: fCross}
		} else {
			c, hops := s.pathCost(s.p.DirLookup+s.p.LLCHit, [4]int{cNode, l.home, cNode}, 3)
			cost = c
			res = AccessResult{Source: SrcLLC, Hops: hops}
		}
		// Even a pipelined read occupies the home agent for its lookup.
		s.mOccDir.Add(l.home, uint64(s.p.DirLookup))
		l.sharers.add(core)
		s.nAccesses++
		s.mTransfer[res.Source].Inc()
		if res.Source == SrcLLC {
			s.nLLC++
		} else {
			s.nRemote++
			if res.CrossSocket {
				s.nCrossSock++
				s.mCross.Inc()
			}
		}
		s.totalHops += uint64(res.Hops)
		res.Latency = cost
		res.Value = l.value // observed at issue, like the L1 fast path
		req := s.getReq()
		req.core, req.kind, req.done, req.line = core, kind, done, l
		req.res = res
		if !s.eng.TryExpress(cost, req.fastFn) {
			s.eng.ScheduleShard(l.home, cost, req.fastFn)
		}
		return
	}

	req := s.getReq()
	req.core, req.kind, req.hold = core, kind, hold
	req.apply, req.done, req.issued = apply, done, s.eng.Now()
	req.skipBase = l.grants
	if l.qhead > 0 && l.qhead == len(l.queue) {
		// The window emptied: rewind so the backing array is reused.
		l.qhead = 0
		l.queue = l.queue[:0]
	} else if l.qhead > 0 && len(l.queue) == cap(l.queue) {
		// About to grow: slide the live window to the front instead.
		// Under sustained contention the head advances but the window
		// stays small, so without this the backing array would double
		// forever. Window order (and thus arbiter indices) is
		// unchanged.
		n := copy(l.queue, l.queue[l.qhead:])
		for i := n; i < len(l.queue); i++ {
			l.queue[i] = nil
		}
		l.queue = l.queue[:n]
		l.qhead = 0
	}
	l.queue = append(l.queue, req)
	qlen := l.qlen()
	if qlen > s.maxQueueLen {
		s.maxQueueLen = qlen
	}
	s.mQueueDepth.Observe(uint64(qlen))
	if s.aud != nil {
		s.aud.LineEnqueued(id, qlen)
	}
	if !l.busy {
		s.serveNext(l)
	}
}

// nearestSharer returns the sharer core topologically closest to node
// reqNode and the three-leg hop count (requester→home→forwarder→
// requester) of a forward from it.
func (s *System) nearestSharer(l *lineState, reqNode int) (core, hops int, ok bool) {
	best, bestHops := -1, int(^uint(0)>>1)
	l.sharers.forEach(func(c int) {
		n := s.nodeOf[c]
		h := int(s.thops[reqNode*s.tn+l.home] + s.thops[l.home*s.tn+n] + s.thops[n*s.tn+reqNode])
		if h < bestHops {
			best, bestHops = c, h
		}
	})
	if best < 0 {
		return 0, 0, false
	}
	return best, bestHops, true
}

// serveNext grants the arbiter's pick and schedules its completion.
func (s *System) serveNext(l *lineState) {
	if l.qhead == len(l.queue) {
		l.busy = false
		return
	}
	l.busy = true
	idx := s.arb.Pick(s, l)
	req := l.queue[l.qhead+idx]
	// Remove the pick while preserving arrival order: shift the idx
	// earlier arrivals right one slot and advance the head. FIFO picks
	// index 0, which makes this a single head bump with no copies.
	copy(l.queue[l.qhead+1:l.qhead+idx+1], l.queue[l.qhead:l.qhead+idx])
	l.queue[l.qhead] = nil
	l.qhead++
	req.skipped = int(l.grants - req.skipBase)
	l.grants++

	cost, res := s.serviceCost(l, req)
	req.res = res
	req.line = l
	s.applyDirectory(l, req)
	if s.aud != nil {
		s.aud.LineGranted(AuditGrant{
			Line: l.id, Core: req.core, Kind: req.kind,
			Skipped: req.skipped, QueueLen: l.qlen(),
			Owner: l.owner, OwnerDirty: l.ownerDirty,
			Sharers: l.sharers.count(), Valid: l.valid,
			At: s.eng.Now(),
		})
	}

	// The line is busy for the transfer plus the execution occupancy;
	// the requester's completion callback fires at the same instant the
	// next request can be granted. That whole span is serialization-
	// point occupancy for the line (IDs past maxTrackedLines are
	// dropped by the vector's bounds check).
	total := cost + req.hold
	s.mOccLine.Add(int(l.id), uint64(total))
	if !s.eng.TryExpress(total, req.completeFn) {
		s.eng.ScheduleShard(l.home, total, req.completeFn)
	}
}

// completeService finalizes a granted request at its completion instant:
// it runs the requester's modification, recycles the request, delivers
// the result, and grants the line's next waiter.
func (s *System) completeService(req *request) {
	l := req.line
	res := req.res
	res.Latency = s.eng.Now() - req.issued
	res.QueuedBehind = req.skipped
	s.mQueuedBehind.Observe(uint64(req.skipped))
	res.Value = l.value
	if req.apply != nil {
		if next, write := req.apply(l.value); write {
			l.value = next
			res.Wrote = true
			l.ownerDirty = true
		}
	}
	if s.aud != nil {
		s.aud.AccessCompleted(AuditComplete{
			Line: l.id, Core: req.core, Kind: req.kind,
			Observed: res.Value, Wrote: res.Wrote, New: l.value,
			At: s.eng.Now(),
		})
	}
	core, kind, done := req.core, req.kind, req.done
	// Recycle before the callback runs: done may issue further accesses
	// (workloads chain their next operation from the completion), and
	// those draw from the same pool.
	s.putReq(req)
	s.finish(l, core, kind, &res, done)
	s.serveNext(l)
}

// completeFast finalizes a fast-path access whose result was fully
// precomputed at issue time.
func (s *System) completeFast(req *request) {
	l := req.line
	res := req.res
	core, kind, done := req.core, req.kind, req.done
	s.putReq(req)
	s.finish(l, core, kind, &res, done)
}

// completeOwned finalizes an uncontended-owner RFO (see Access): it is
// completeService specialized to the case where the queue was empty and
// the pick forced at grant time, so the latency and bypass bookkeeping
// are precomputed constants. The busy flag stays set through the
// callback and the trailing serveNext hands the line over, exactly as
// the slow path does — an access the callback issues must observe the
// line mid-service, not idle.
func (s *System) completeOwned(req *request) {
	l := req.line
	res := req.res
	res.Value = l.value
	if req.apply != nil {
		if next, write := req.apply(l.value); write {
			l.value = next
			res.Wrote = true
			l.ownerDirty = true
		}
	}
	core, kind, done := req.core, req.kind, req.done
	s.putReq(req)
	s.finish(l, core, kind, &res, done)
	s.serveNext(l)
}

// serviceCost computes the transfer latency and provenance for a granted
// request, based on the directory state before the request is applied.
func (s *System) serviceCost(l *lineState, req *request) (sim.Time, AccessResult) {
	var res AccessResult
	c := req.core
	cNode := s.nodeOf[c]

	switch {
	case l.owner == c:
		// Requester already owns the line (M or E): pure cache hit.
		// An RFO upgrade from E to M is silent.
		res.Source = SrcLocal
		s.nLocal++
		s.nAccesses++
		s.mTransfer[SrcLocal].Inc()
		return s.p.L1Hit, res

	case req.kind == Read && l.sharers.has(c):
		// Shared hit that raced with a queued service; still local.
		res.Source = SrcLocal
		s.nLocal++
		s.nAccesses++
		s.mTransfer[SrcLocal].Inc()
		return s.p.L1Hit, res

	case l.owner >= 0:
		// Dirty/exclusive in another core's cache: home forwards the
		// request to the owner, owner sends data to the requester.
		oNode := s.nodeOf[l.owner]
		s.mOccDir.Add(l.home, uint64(s.p.DirLookup))
		cost, hops := s.pathCost(s.p.DirLookup, [4]int{cNode, l.home, oNode, cNode}, 4)
		cross := s.tcross[cNode*s.tn+oNode]
		if cross {
			cost += s.p.CrossSocketPenalty
			s.nCrossSock++
			s.mCross.Inc()
		}
		res.Source = SrcRemoteCache
		res.Hops = hops
		res.CrossSocket = cross
		s.nRemote++
		s.nAccesses++
		s.mTransfer[SrcRemoteCache].Inc()
		s.totalHops += uint64(hops)
		return cost, res

	case l.valid:
		// Clean at home LLC; request + data each travel the home
		// distance. RFOs additionally invalidate any sharers. The home
		// agent is occupied for the directory lookup plus the LLC read.
		s.mOccDir.Add(l.home, uint64(s.p.DirLookup+s.p.LLCHit))
		cost, hops := s.pathCost(s.p.DirLookup+s.p.LLCHit, [4]int{cNode, l.home, cNode}, 3)
		if req.kind == RFO && !l.sharers.empty() {
			// Do not count the requester itself as a third-party sharer.
			others := l.sharers.count()
			if l.sharers.has(c) {
				others--
			}
			if others > 0 {
				cost += s.p.InvalidateCost
				s.nInvals++
				s.mInval.Inc()
			}
		}
		res.Source = SrcLLC
		res.Hops = hops
		s.nLLC++
		s.nAccesses++
		s.mTransfer[SrcLLC].Inc()
		s.totalHops += uint64(hops)
		return cost, res

	default:
		// Cold: fetch from DRAM through the home memory controller,
		// which is occupied for the lookup plus the memory access.
		s.mOccDir.Add(l.home, uint64(s.p.DirLookup+s.p.DRAM))
		cost, hops := s.pathCost(s.p.DirLookup+s.p.DRAM, [4]int{cNode, l.home, cNode}, 3)
		res.Source = SrcDRAM
		res.Hops = hops
		s.nDRAM++
		s.nAccesses++
		s.mTransfer[SrcDRAM].Inc()
		s.totalHops += uint64(hops)
		return cost, res
	}
}

// applyDirectory transitions the directory for a granted request.
func (s *System) applyDirectory(l *lineState, req *request) {
	c := req.core
	switch req.kind {
	case RFO:
		// Exclusive ownership: everyone else is invalidated.
		l.sharers.clear()
		l.owner = c
		// Dirty only once a write happens; E until then. The completion
		// callback sets ownerDirty when apply writes.
		l.ownerDirty = false
		l.valid = true
	case Read:
		if l.owner >= 0 && l.owner != c {
			// Owner downgrades to sharer (M data written back to LLC).
			l.sharers.add(l.owner)
			l.owner = -1
			l.ownerDirty = false
		}
		if l.owner == c {
			// Reading one's own exclusive line keeps ownership.
			break
		}
		if l.sharers.empty() && !l.valid {
			// First toucher gets E.
			l.owner = c
			l.ownerDirty = false
		} else if l.sharers.empty() && l.valid && l.owner < 0 {
			// Sole reader of an LLC-resident line also gets E.
			l.owner = c
			l.ownerDirty = false
		} else {
			l.sharers.add(c)
		}
		l.valid = true
	}
}

// finish delivers a completed access. res points at the caller's local
// copy (already detached from the pooled request, which may be reused by
// accesses the callback issues); passing a pointer avoids one more
// struct copy per access on the hottest path in the simulator.
func (s *System) finish(l *lineState, core int, kind Kind, res *AccessResult, done func(AccessResult)) {
	if s.tracer != nil {
		s.tracer(TraceEvent{Line: l.id, Core: core, Kind: kind, Result: *res, At: s.eng.Now()})
	}
	if done != nil {
		done(*res)
	}
}

// Stats is a snapshot of system-wide coherence counters.
type Stats struct {
	Accesses    uint64
	LocalHits   uint64
	RemoteXfers uint64
	LLCFills    uint64
	DRAMFills   uint64
	Invals      uint64
	TotalHops   uint64
	CrossSocket uint64
	MaxQueueLen int
	// LinkStall is the cumulative time messages waited for busy links
	// (zero unless bandwidth modeling is on).
	LinkStall sim.Time
}

// Stats returns a snapshot of the counters.
func (s *System) Stats() Stats {
	var stall sim.Time
	if s.net != nil {
		stall = s.net.Stalled()
	}
	return Stats{
		LinkStall:   stall,
		Accesses:    s.nAccesses,
		LocalHits:   s.nLocal,
		RemoteXfers: s.nRemote,
		LLCFills:    s.nLLC,
		DRAMFills:   s.nDRAM,
		Invals:      s.nInvals,
		TotalHops:   s.totalHops,
		CrossSocket: s.nCrossSock,
		MaxQueueLen: s.maxQueueLen,
	}
}

// AddScaledStats adds k copies of the counter delta d — the hook the
// steady-state cycle memoizer (internal/workload) uses to credit the
// accesses of elided cycles exactly as if they had been simulated.
// MaxQueueLen is a maximum, not an accumulator, so it is untouched; a
// periodic schedule cannot raise it past the recorded cycle's value.
func (s *System) AddScaledStats(d Stats, k uint64) {
	s.nAccesses += d.Accesses * k
	s.nLocal += d.LocalHits * k
	s.nRemote += d.RemoteXfers * k
	s.nLLC += d.LLCFills * k
	s.nDRAM += d.DRAMFills * k
	s.nInvals += d.Invals * k
	s.totalHops += d.TotalHops * k
	s.nCrossSock += d.CrossSocket * k
	if d.LinkStall != 0 && s.net != nil {
		s.net.stalled += d.LinkStall * sim.Time(k)
	}
}

// ShiftInFlight translates the issue timestamp of every live request by
// delta, alongside sim.Engine.ShiftPending: when the fast-forward layer
// elides k cycles, an in-flight request stands in for its k-cycles-later
// counterpart, whose issue time is exactly delta later. Latency is
// finalized at completion as now−issued, so without this shift the
// requests straddling a jump would absorb the whole elided span into
// their reported latency. Requests in the free pool are shifted too —
// harmless, since issue times are overwritten at issue.
func (s *System) ShiftInFlight(delta sim.Time) {
	for _, r := range s.allReqs {
		r.issued += delta
	}
}

// AppendCycleKey appends a compact fingerprint of line id's protocol
// state to dst and returns the extended slice. Two instants with equal
// keys (plus equal engine/thread state, which the caller fingerprints
// separately) evolve identically, because everything the access path
// reads is included: directory state, busyness, and the live queue
// window's (core, kind, hold, bypass-count) sequence in grant order.
// Deliberately excluded are the monotonic quantities — the line value
// (value-independent primitives only; the caller gates on that) and the
// raw grant counter (only the per-request delta matters). Used by the
// steady-state cycle memoizer in internal/workload.
func (s *System) AppendCycleKey(dst []byte, id LineID) []byte {
	l := s.lastLine
	if l == nil || l.id != id {
		l = s.lines[id]
	}
	if l == nil {
		return append(dst, 0xff)
	}
	var flags byte
	if l.ownerDirty {
		flags |= 1
	}
	if l.valid {
		flags |= 2
	}
	if l.busy {
		flags |= 4
	}
	dst = append(dst, flags)
	dst = appendUint64(dst, uint64(int64(l.owner)))
	for _, w := range l.sharers.words {
		dst = appendUint64(dst, w)
	}
	for _, r := range l.waiting() {
		dst = appendUint64(dst, uint64(r.core))
		dst = append(dst, byte(r.kind))
		dst = appendUint64(dst, uint64(r.hold))
		dst = appendUint64(dst, l.grants-r.skipBase)
	}
	return dst
}

func appendUint64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// CheckInvariants validates directory consistency for all lines. It is
// called by tests after every workload; violations indicate protocol
// bugs, so it returns a descriptive error rather than panicking.
func (s *System) CheckInvariants() error {
	for id, l := range s.lines {
		if l.owner >= 0 && !l.sharers.empty() {
			return fmt.Errorf("line %d: owner %d coexists with %d sharers", id, l.owner, l.sharers.count())
		}
		if l.owner >= s.p.NumCores {
			return fmt.Errorf("line %d: owner %d out of range", id, l.owner)
		}
		if !l.valid && (l.owner >= 0 || !l.sharers.empty()) {
			return fmt.Errorf("line %d: cached but not valid", id)
		}
		if l.busy && l.qlen() == 0 && s.eng.Pending() == 0 {
			return fmt.Errorf("line %d: busy with no pending completion", id)
		}
	}
	return nil
}

// LineDirectory is a read-only view of a line's directory entry, for
// tests and debugging.
type LineDirectory struct {
	Owner   int
	Dirty   bool
	Sharers []int
	Valid   bool
	Home    int
	Queue   int
}

// Directory returns the current directory entry for a line.
func (s *System) Directory(id LineID) LineDirectory {
	l := s.line(id)
	var sh []int
	l.sharers.forEach(func(c int) { sh = append(sh, c) })
	return LineDirectory{Owner: l.owner, Dirty: l.ownerDirty, Sharers: sh, Valid: l.valid, Home: l.home, Queue: l.qlen()}
}

// Reset returns the system to its just-constructed state — no lines, no
// hooks, zeroed counters — while keeping every allocation (request
// pool, directory entries, queue arrays, network tables) for reuse. A
// reset system behaves byte-identically to a freshly built one with the
// same engine, params, and arbiter; the cell pool (internal/workload)
// relies on this to run cells without per-cell allocation. The caller
// is responsible for resetting the engine and the arbiter's own state
// (a RandomArbiter's RNG stream).
func (s *System) Reset() {
	for id, l := range s.lines {
		l.reset()
		s.lineFree = append(s.lineFree, l)
		delete(s.lines, id)
	}
	s.lastLine = nil
	s.tracer = nil
	s.aud = nil
	// Reclaim every request, including those that were still queued or
	// had pending completion events when the run was cut off at its
	// horizon — the engine reset dropped those events, so the objects
	// are free again.
	s.reqPool = s.reqPool[:0]
	for _, r := range s.allReqs {
		r.apply, r.done, r.line = nil, nil, nil
		r.skipped = 0
		r.skipBase = 0
		r.res = AccessResult{}
		s.reqPool = append(s.reqPool, r)
	}
	s.nAccesses, s.nLocal, s.nRemote, s.nLLC, s.nDRAM = 0, 0, 0, 0, 0
	s.nInvals, s.totalHops, s.nCrossSock = 0, 0, 0
	s.maxQueueLen = 0
	s.mTransfer = [4]*metrics.Counter{}
	s.mInval, s.mCross = nil, nil
	s.mQueueDepth, s.mQueuedBehind = nil, nil
	// occRouter survives: it is immutable precomputed topology state.
	s.mOccDir, s.mOccLine, s.mOccLink = nil, nil, nil
	s.metricsOn = false
	s.recomputeFastOwn()
	if s.net != nil {
		s.net.Reset()
	}
}
