package coherence

import "math/bits"

// coreSet is a bitset over core IDs, sized at construction. It tracks the
// sharer set of a cache line. Machines here have at most a few hundred
// cores, so a small slice of words is cheaper than a map and makes
// invariant checks (popcount, iteration) trivial.
type coreSet struct {
	words []uint64
}

func newCoreSet(n int) coreSet {
	return coreSet{words: make([]uint64, (n+63)/64)}
}

func (s coreSet) has(i int) bool {
	return s.words[i/64]&(1<<(uint(i)%64)) != 0
}

func (s coreSet) add(i int) { s.words[i/64] |= 1 << (uint(i) % 64) }

func (s coreSet) remove(i int) { s.words[i/64] &^= 1 << (uint(i) % 64) }

func (s coreSet) clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

func (s coreSet) count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

func (s coreSet) empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// forEach calls fn for every set core ID in ascending order.
func (s coreSet) forEach(fn func(core int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}
