package coherence

import (
	"testing"

	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/topology"
)

// FuzzProtocolValueChain is a native Go fuzz target over the protocol's
// strongest property: per-line RMW serializations form a value chain.
// Each fuzz input picks the seed, arbiter, protocol options and op mix.
// Run with `go test -fuzz FuzzProtocolValueChain ./internal/coherence`.
func FuzzProtocolValueChain(f *testing.F) {
	f.Add(uint64(1), uint8(0), false, uint8(50))
	f.Add(uint64(2), uint8(1), true, uint8(10))
	f.Add(uint64(3), uint8(2), false, uint8(90))
	f.Fuzz(func(t *testing.T, seed uint64, arbKind uint8, forward bool, readPct uint8) {
		var arb Arbiter
		switch arbKind % 3 {
		case 0:
			arb = FIFOArbiter{}
		case 1:
			arb = NewRandomArbiter(seed)
		default:
			arb = &LocalityArbiter{MaxSkips: 8}
		}
		eng := sim.NewEngine()
		p := Params{
			NumCores:       9,
			Topo:           topology.NewMesh2D(3, 3),
			NodeOf:         func(c int) int { return c },
			L1Hit:          1 * sim.Nanosecond,
			DirLookup:      2 * sim.Nanosecond,
			HopLatency:     1 * sim.Nanosecond,
			LLCHit:         8 * sim.Nanosecond,
			DRAM:           40 * sim.Nanosecond,
			InvalidateCost: 2 * sim.Nanosecond,
			ForwardSharer:  forward,
		}
		s, err := NewSystem(eng, p, arb)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(seed)
		read := int(readPct % 101)
		type rec struct{ observed, next uint64 }
		var chain []rec
		issued, completed := 0, 0
		for i := 0; i < 800; i++ {
			core := rng.Intn(9)
			at := rng.Duration(50 * sim.Microsecond)
			issued++
			if rng.Intn(100) < read {
				eng.At(at, func() {
					s.Access(core, 3, Read, 0, nil, func(AccessResult) { completed++ })
				})
				continue
			}
			eng.At(at, func() {
				var r rec
				s.Access(core, 3, RFO, sim.Nanosecond, func(cur uint64) (uint64, bool) {
					r = rec{observed: cur, next: cur + 1}
					return cur + 1, true
				}, func(AccessResult) {
					completed++
					chain = append(chain, r)
				})
			})
		}
		eng.Drain()
		if completed != issued {
			t.Fatalf("%d/%d ops completed", completed, issued)
		}
		cur := uint64(0)
		for i, r := range chain {
			if r.observed != cur {
				t.Fatalf("op %d observed %d, want %d", i, r.observed, cur)
			}
			cur = r.next
		}
		if got := s.Value(3); got != cur {
			t.Fatalf("final value %d, chain says %d", got, cur)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}
