package coherence

import (
	"testing"

	"atomicsmodel/internal/metrics"
)

// These benchmarks and tests guard the observability layer's cost
// contract (see internal/metrics): with no registry installed the
// instrumented hot path must stay allocation-free and within noise of
// the uninstrumented baseline, and even with metrics on the per-access
// cost is a handful of counter increments, never an allocation.

// BenchmarkCoherenceAccessMetricsOff is BenchmarkCoherenceAccess with
// the nil registry installed explicitly — the instrumented-off fast
// path every normal run takes. Compare against BenchmarkCoherenceAccess
// in bench_test.go; the two must be within noise of each other.
func BenchmarkCoherenceAccessMetricsOff(b *testing.B) {
	eng, s := benchSystem(b)
	s.InstallMetrics(nil)
	apply := func(cur uint64) (uint64, bool) { return cur + 1, true }
	s.Access(0, 1, RFO, 0, apply, nil)
	eng.Drain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access((i+1)%16, 1, RFO, 0, apply, nil)
		eng.Drain()
	}
}

// BenchmarkCoherenceAccessMetricsOn measures the same handoff with a
// live registry: the cost of actually counting.
func BenchmarkCoherenceAccessMetricsOn(b *testing.B) {
	eng, s := benchSystem(b)
	s.InstallMetrics(metrics.New())
	apply := func(cur uint64) (uint64, bool) { return cur + 1, true }
	s.Access(0, 1, RFO, 0, apply, nil)
	eng.Drain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access((i+1)%16, 1, RFO, 0, apply, nil)
		eng.Drain()
	}
}

// TestAccessDoesNotAllocate pins the access path at zero allocations
// per contended handoff, with metrics off and on. A regression here
// multiplies across the millions of accesses in every experiment cell.
func TestAccessDoesNotAllocate(t *testing.T) {
	for _, tc := range []struct {
		name string
		reg  *metrics.Registry
	}{
		{"metrics-off", nil},
		{"metrics-on", metrics.New()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng, s := benchSystem(t)
			s.InstallMetrics(tc.reg)
			apply := func(cur uint64) (uint64, bool) { return cur + 1, true }
			s.Access(0, 1, RFO, 0, apply, nil)
			eng.Drain()
			i := 0
			avg := testing.AllocsPerRun(200, func() {
				s.Access((i+1)%16, 1, RFO, 0, apply, nil)
				eng.Drain()
				i++
			})
			if avg != 0 {
				t.Fatalf("contended access allocates %.1f allocs/op, want 0", avg)
			}
			if tc.reg != nil {
				// The occupancy accumulators must have been recording
				// while staying inside the zero-alloc budget above.
				snap := tc.reg.Snapshot()
				line := snap.Vector(metrics.CohLineBusy)
				if line == nil || line[1] == 0 {
					t.Fatalf("line 1 accumulated no busy time: %v", line)
				}
				var dirBusy uint64
				for _, v := range snap.Vector(metrics.CohDirBusy) {
					dirBusy += v
				}
				if dirBusy == 0 {
					t.Fatal("directories accumulated no busy time")
				}
			}
		})
	}
}
