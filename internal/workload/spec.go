package workload

import (
	"bytes"
	"crypto/sha256"
	"embed"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

// Spec is the declarative, serializable description of one workload
// cell: pure data — primitive, contention mode, thread count (or a
// ladder of counts), placement and arbiter policies by name, line
// striping, think time, read mix, arrival process, and measurement
// window. It is the workload counterpart of machine.Spec: a JSON spec
// file is a first-class workload definition with exactly the powers of
// a hand-written Config, and its content digest is the cell's identity
// in the harness resume cache.
//
// A Spec is machine-independent; Config joins it with a machine. All
// time fields are integer picoseconds (sim.Time's unit) rather than
// fractional larger units, so a spec round-trips through JSON
// byte-exactly and its digest is stable — the open-loop experiment
// computes sub-nanosecond interarrival times that a float encoding
// would corrupt.
type Spec struct {
	// Name identifies the spec in tables, listings and -workloads flags
	// (optional for inline/derived specs; required to register).
	Name string `json:"name,omitempty"`
	// Doc is a one-line description for listings (optional).
	Doc string `json:"doc,omitempty"`

	// Primitive is the atomic under test by display name: one of CAS,
	// FAA, SWAP, TAS, CAS2, Load, Store, Fence.
	Primitive string `json:"primitive"`
	// Mode is the contention pattern by display name: "high-contention"
	// (default), "low-contention" or "read-write-mix".
	Mode string `json:"mode,omitempty"`

	// Exactly one of Threads and ThreadLadder must be set. Threads pins
	// one thread count; ThreadLadder (strictly increasing) describes a
	// sweep that Expand turns into one pinned spec per point.
	Threads      int   `json:"threads,omitempty"`
	ThreadLadder []int `json:"threadLadder,omitempty"`

	// Placement names the thread→hardware-slot policy
	// (machine.PlacementByName): compact (default), scatter, smt-first,
	// or socket-N.
	Placement string `json:"placement,omitempty"`
	// Arbiter names the coherence arbitration policy
	// (coherence.NewByName): fifo (default), random, or locality.
	// ArbiterSkips bounds a locality arbiter's starvation window
	// (0 = unbounded) and is rejected for the other policies. The
	// random arbiter's RNG stream is seeded from Seed.
	Arbiter      string `json:"arbiter,omitempty"`
	ArbiterSkips int    `json:"arbiterSkips,omitempty"`

	// Lines is the contention-group line count: shared lines in
	// high-contention mode (default 1), private lines per thread in
	// low-contention mode (default 16).
	Lines int `json:"lines,omitempty"`

	// LocalWorkPS is think time between operations in picoseconds;
	// WorkJitter draws it from an exponential distribution with that
	// mean instead of a constant.
	LocalWorkPS sim.Time `json:"localWorkPS,omitempty"`
	WorkJitter  bool     `json:"workJitter,omitempty"`

	// ReadFraction applies in read-write-mix mode only.
	ReadFraction float64 `json:"readFraction,omitempty"`

	// CASRetryLoop makes CAS/CAS2 threads retry until success (the
	// lock-free update loop) rather than counting blind attempts.
	CASRetryLoop bool `json:"casRetryLoop,omitempty"`

	// OpenLoop switches to an open-loop arrival process with
	// exponentially distributed per-thread inter-arrival times of mean
	// OpenLoopInterarrivalPS picoseconds (required with OpenLoop, and
	// meaningless — rejected — without it).
	OpenLoop               bool     `json:"openLoop,omitempty"`
	OpenLoopInterarrivalPS sim.Time `json:"openLoopInterarrivalPS,omitempty"`

	// WarmupPS and DurationPS bound the run in picoseconds; only
	// operations completing in [warmup, warmup+duration] are measured.
	// Zero means the workload defaults (20µs / 200µs); the harness pins
	// its own window per Options.
	WarmupPS   sim.Time `json:"warmupPS,omitempty"`
	DurationPS sim.Time `json:"durationPS,omitempty"`

	// Seed seeds the cell's RNG streams (thread jitter, arrival draws,
	// the random arbiter). The harness derives per-cell seeds from its
	// base seed when a spec leaves this zero.
	Seed uint64 `json:"seed,omitempty"`
}

// maxSpecThreads bounds spec-declared thread counts and ladder points;
// it matches the machine layer's hardware-thread ceiling — a spec
// beyond it is a typo, not a plan.
const maxSpecThreads = 1 << 16

// maxSpecLines bounds the per-group line count.
const maxSpecLines = 1 << 20

// Clone returns a deep copy; callers derive variants (a thread ladder
// point, a tweaked knob) by cloning and mutating.
func (s *Spec) Clone() *Spec {
	out := *s
	out.ThreadLadder = append([]int(nil), s.ThreadLadder...)
	return &out
}

// Validate checks the spec's machine-independent invariants: names
// resolve, cross-field constraints hold, and no knob is set that the
// chosen mode or arrival process would silently ignore. Capacity
// against a concrete machine (threads vs hardware slots, socket
// indices) is checked at Config/Place time.
func (s *Spec) Validate() error {
	if _, err := atomics.Parse(s.Primitive); err != nil {
		return fmt.Errorf("workload spec: %w", err)
	}
	mode := s.Mode
	if mode == "" {
		mode = HighContention.String()
	}
	m, err := ParseMode(mode)
	if err != nil {
		return fmt.Errorf("workload spec: %w", err)
	}
	switch {
	case s.Threads == 0 && len(s.ThreadLadder) == 0:
		return fmt.Errorf("workload spec: one of threads or threadLadder is required")
	case s.Threads != 0 && len(s.ThreadLadder) != 0:
		return fmt.Errorf("workload spec: threads and threadLadder are mutually exclusive")
	case s.Threads < 0 || s.Threads > maxSpecThreads:
		return fmt.Errorf("workload spec: threads = %d (want 1..%d)", s.Threads, maxSpecThreads)
	}
	prev := 0
	for _, n := range s.ThreadLadder {
		if n <= prev || n > maxSpecThreads {
			return fmt.Errorf("workload spec: threadLadder %v must be strictly increasing in 1..%d", s.ThreadLadder, maxSpecThreads)
		}
		prev = n
	}
	if _, err := machine.PlacementByName(s.Placement); err != nil {
		return fmt.Errorf("workload spec: %w", err)
	}
	arb := s.Arbiter
	if arb == "" {
		arb = "fifo"
	}
	if _, err := coherence.NewByName(arb, s.ArbiterSkips, 0); err != nil {
		return fmt.Errorf("workload spec: %w", err)
	}
	if s.Lines < 0 || s.Lines > maxSpecLines {
		return fmt.Errorf("workload spec: lines = %d (want 0..%d)", s.Lines, maxSpecLines)
	}
	if s.LocalWorkPS < 0 {
		return fmt.Errorf("workload spec: localWorkPS = %d (want >= 0)", s.LocalWorkPS)
	}
	if s.WorkJitter && s.LocalWorkPS == 0 {
		return fmt.Errorf("workload spec: workJitter has no effect with zero localWorkPS")
	}
	if s.ReadFraction < 0 || s.ReadFraction > 1 {
		return fmt.Errorf("workload spec: readFraction %v out of [0,1]", s.ReadFraction)
	}
	if m != ReadWriteMix && s.ReadFraction != 0 {
		return fmt.Errorf("workload spec: readFraction %v has no effect in %s mode", s.ReadFraction, m)
	}
	if s.CASRetryLoop {
		if p, _ := atomics.Parse(s.Primitive); p != atomics.CAS && p != atomics.CAS2 {
			return fmt.Errorf("workload spec: casRetryLoop requires primitive CAS or CAS2, not %s", s.Primitive)
		}
		if s.OpenLoop {
			return fmt.Errorf("workload spec: openLoop and casRetryLoop are mutually exclusive")
		}
	}
	if s.OpenLoop && s.OpenLoopInterarrivalPS <= 0 {
		return fmt.Errorf("workload spec: openLoop requires a positive openLoopInterarrivalPS")
	}
	if !s.OpenLoop && s.OpenLoopInterarrivalPS != 0 {
		return fmt.Errorf("workload spec: openLoopInterarrivalPS %d has no effect without openLoop", s.OpenLoopInterarrivalPS)
	}
	if s.WarmupPS < 0 || s.DurationPS < 0 {
		return fmt.Errorf("workload spec: negative warmupPS/durationPS")
	}
	return nil
}

// Defaulted returns a copy with every defaultable field made explicit:
// mode, placement, arbiter, line count, and measurement window. The
// digest is computed over this form, so a spec that spells out the
// defaults and one that omits them are the same cell.
func (s *Spec) Defaulted() *Spec {
	out := s.Clone()
	if out.Mode == "" {
		out.Mode = HighContention.String()
	}
	if out.Placement == "" {
		out.Placement = "compact"
	}
	if out.Arbiter == "" {
		out.Arbiter = "fifo"
	}
	if out.Lines == 0 {
		if out.Mode == LowContention.String() {
			out.Lines = 16
		} else {
			out.Lines = 1
		}
	}
	if out.WarmupPS == 0 {
		out.WarmupPS = 20 * sim.Microsecond
	}
	if out.DurationPS == 0 {
		out.DurationPS = 200 * sim.Microsecond
	}
	return out
}

// Canonical returns the canonical JSON encoding of the defaulted spec —
// fixed field order, defaults explicit, no insignificant whitespace —
// the bytes the digest is computed over.
func (s *Spec) Canonical() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(s.Defaulted())
}

// Digest returns a short hex digest of the canonical encoding. Joined
// with the machine key it is the cell's identity in harness cache keys:
// two specs that differ in any effective knob can never alias a cache
// entry, and two spellings of the same cell always share one.
func (s *Spec) Digest() (string, error) {
	raw, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])[:12], nil
}

// Expand returns the pinned single-thread-count specs this spec
// describes: itself if Threads is set, otherwise one clone per
// ThreadLadder point with Threads pinned and the ladder cleared.
func (s *Spec) Expand() []*Spec {
	if len(s.ThreadLadder) == 0 {
		return []*Spec{s.Clone()}
	}
	out := make([]*Spec, 0, len(s.ThreadLadder))
	for _, n := range s.ThreadLadder {
		p := s.Clone()
		p.Threads = n
		p.ThreadLadder = nil
		out = append(out, p)
	}
	return out
}

// Config joins the spec with a machine, resolving policy names into a
// runnable workload Config. The spec must be pinned (no thread ladder;
// see Expand). The resolved arbiter for "fifo" is the stateless value
// coherence.FIFOArbiter{} — identical in behaviour and fast-forward
// eligibility to the nil default a hand-written Config would carry.
func (s *Spec) Config(m *machine.Machine) (Config, error) {
	if err := s.Validate(); err != nil {
		return Config{}, err
	}
	if len(s.ThreadLadder) > 0 {
		return Config{}, fmt.Errorf("workload spec %s: expand the thread ladder before building a Config", s.label())
	}
	d := s.Defaulted()
	prim, err := atomics.Parse(d.Primitive)
	if err != nil {
		return Config{}, err
	}
	mode, err := ParseMode(d.Mode)
	if err != nil {
		return Config{}, err
	}
	place, err := machine.PlacementByName(d.Placement)
	if err != nil {
		return Config{}, err
	}
	arb, err := coherence.NewByName(d.Arbiter, d.ArbiterSkips, d.Seed)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Machine:              m,
		Arbiter:              arb,
		Placement:            place,
		Threads:              d.Threads,
		Primitive:            prim,
		Mode:                 mode,
		LocalWork:            d.LocalWorkPS,
		WorkJitter:           d.WorkJitter,
		Lines:                d.Lines,
		ReadFraction:         d.ReadFraction,
		Warmup:               d.WarmupPS,
		Duration:             d.DurationPS,
		Seed:                 d.Seed,
		CASRetryLoop:         d.CASRetryLoop,
		OpenLoop:             d.OpenLoop,
		OpenLoopInterarrival: d.OpenLoopInterarrivalPS,
	}, nil
}

// label names the spec in errors and listings.
func (s *Spec) label() string {
	if s.Name != "" {
		return s.Name
	}
	mode := s.Mode
	if mode == "" {
		mode = HighContention.String()
	}
	return s.Primitive + "/" + mode
}

// Label is the spec's display name: Name if set, else a
// primitive/mode summary.
func (s *Spec) Label() string { return s.label() }

// RunSpec runs a pinned spec on the given machine and returns the
// measured Result.
func RunSpec(s *Spec, m *machine.Machine) (*Result, error) {
	cfg, err := s.Config(m)
	if err != nil {
		return nil, err
	}
	return Run(cfg)
}

// ParseSpec decodes a JSON workload spec and validates it. Unknown
// fields and trailing garbage are errors: a spec file is user input,
// and a typo that silently dropped a knob would produce confidently
// wrong cells.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("workload spec: %w", err)
	}
	var trailer json.RawMessage
	if err := dec.Decode(&trailer); err != io.EOF {
		return nil, fmt.Errorf("workload spec: trailing data after the spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpecFile reads, parses and validates a workload spec from a JSON
// file (the CLIs' -workloadfile path).
func LoadSpecFile(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload spec %s: %w", path, err)
	}
	s, err := ParseSpec(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// This is the workload spec registry: every built-in workload is an
// embedded JSON spec under specs/; init loads and registers them, and
// SpecByName resolves lookups case-insensitively. Adding a built-in
// workload requires zero Go code: drop a JSON file in specs/ and it
// becomes selectable by name in every CLI's -workloads flag.

//go:embed specs/*.json
var specFS embed.FS

var (
	specRegMu  sync.RWMutex
	specReg    = map[string]*Spec{}  // canonical name → spec
	specLookup = map[string]string{} // lowercased name → canonical name
)

// RegisterSpec adds a named, valid spec to the registry (name matched
// case-insensitively by SpecByName). Duplicates are errors: a silent
// shadow would make lookups ambiguous.
func RegisterSpec(s *Spec) error {
	if s.Name == "" {
		return fmt.Errorf("workload spec: registration requires a name")
	}
	if err := s.Validate(); err != nil {
		return err
	}
	specRegMu.Lock()
	defer specRegMu.Unlock()
	lk := strings.ToLower(s.Name)
	if owner, dup := specLookup[lk]; dup {
		return fmt.Errorf("workload spec: name %q collides with %s", s.Name, owner)
	}
	specReg[s.Name] = s.Clone()
	specLookup[lk] = s.Name
	return nil
}

func init() {
	entries, err := specFS.ReadDir("specs")
	if err != nil {
		panic(fmt.Sprintf("workload: embedded specs: %v", err))
	}
	for _, e := range entries {
		raw, err := specFS.ReadFile("specs/" + e.Name())
		if err != nil {
			panic(fmt.Sprintf("workload: embedded spec %s: %v", e.Name(), err))
		}
		s, err := ParseSpec(raw)
		if err != nil {
			panic(fmt.Sprintf("workload: embedded spec %s: %v", e.Name(), err))
		}
		if err := RegisterSpec(s); err != nil {
			panic(fmt.Sprintf("workload: embedded spec %s: %v", e.Name(), err))
		}
	}
}

// SpecNames returns the canonical names of all registered workload
// specs, sorted.
func SpecNames() []string {
	specRegMu.RLock()
	defer specRegMu.RUnlock()
	out := make([]string, 0, len(specReg))
	for name := range specReg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SpecByName returns a deep copy of the registered spec for the given
// name (case-insensitive). Callers mutate the copy freely.
func SpecByName(name string) (*Spec, error) {
	specRegMu.RLock()
	defer specRegMu.RUnlock()
	canonical, ok := specLookup[strings.ToLower(name)]
	if !ok {
		names := make([]string, 0, len(specReg))
		for n := range specReg {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("workload: unknown workload %q (registered: %s)", name, strings.Join(names, ", "))
	}
	return specReg[canonical].Clone(), nil
}

// SelectSpecs resolves the workload specs a CLI run targets: names is
// a comma-separated list of registered spec names, files a
// comma-separated list of JSON spec file paths. Either may be empty;
// results concatenate in the order given, names first. Specs with
// duplicate digests are rejected: the harness would silently fold
// their cells together.
func SelectSpecs(names, files string) ([]*Spec, error) {
	var out []*Spec
	for _, name := range splitList(names) {
		s, err := SpecByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	for _, path := range splitList(files) {
		s, err := LoadSpecFile(path)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	seen := map[string]bool{}
	for _, s := range out {
		d, err := s.Digest()
		if err != nil {
			return nil, err
		}
		if seen[d] {
			return nil, fmt.Errorf("workload: spec %s (digest %s) selected twice", s.label(), d)
		}
		seen[d] = true
	}
	return out, nil
}

func splitList(csv string) []string {
	var out []string
	for _, part := range strings.Split(csv, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
