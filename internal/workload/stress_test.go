package workload

import (
	"testing"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

// Failure-injection and pathological-parameter tests: the simulator
// must degrade gracefully, not hang or panic, under hostile inputs.

func TestZeroLatencyMachineRejected(t *testing.T) {
	m := machine.Ideal(4)
	m.Lat = machine.Latencies{} // all zero: would spin the event loop
	cfg := quickCfg(m, atomics.FAA, 2)
	if _, err := Run(cfg); err == nil {
		t.Fatal("all-zero latency table accepted (risking a live-lock)")
	}
}

func TestNegativeLatencyRejected(t *testing.T) {
	m := machine.Ideal(4)
	m.Lat.DRAM = -sim.Nanosecond
	if _, err := Run(quickCfg(m, atomics.FAA, 2)); err == nil {
		t.Fatal("negative latency accepted")
	}
}

func TestHugeLatenciesComplete(t *testing.T) {
	m := machine.Ideal(4)
	m.Lat.DRAM = sim.Second // absurd but legal
	m.Lat.LLCHit = 100 * sim.Millisecond
	cfg := quickCfg(m, atomics.FAA, 2)
	cfg.Warmup = sim.Microsecond
	cfg.Duration = 10 * sim.Microsecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The first DRAM fetch outlasts the whole run: zero ops is the
	// correct graceful answer.
	if res.Ops != 0 {
		t.Fatalf("ops = %d with second-long DRAM", res.Ops)
	}
	if res.Jain != 1 || res.ThroughputMops != 0 {
		t.Fatalf("degenerate results not graceful: %+v", res)
	}
}

func TestTinyMeasurementWindow(t *testing.T) {
	cfg := quickCfg(machine.Ideal(4), atomics.FAA, 2)
	cfg.Warmup = sim.Nanosecond
	cfg.Duration = sim.Nanosecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate() != 1 && res.Attempts == 0 {
		t.Fatal("success rate of empty run should be 1")
	}
}

func TestSingleCoreMachine(t *testing.T) {
	m := machine.Ideal(1)
	res, err := Run(quickCfg(m, atomics.CAS, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Fatal("solo CAS failed")
	}
}

func TestAllPrimitivesAllModesMatrix(t *testing.T) {
	// Smoke every (primitive, mode) combination on both machines: no
	// panics, invariants hold (Run checks them), ops flow.
	for _, m := range machine.All() {
		for _, p := range atomics.All() {
			for _, mode := range []Mode{HighContention, LowContention} {
				cfg := Config{
					Machine: m, Threads: 4, Primitive: p, Mode: mode,
					Warmup: 2 * sim.Microsecond, Duration: 20 * sim.Microsecond, Seed: 9,
				}
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s %v %v: %v", m.Name, p, mode, err)
				}
				if res.Ops == 0 && p != atomics.CAS && p != atomics.CAS2 {
					t.Errorf("%s %v %v: no ops", m.Name, p, mode)
				}
			}
		}
	}
}

func TestMaxThreadsBothMachines(t *testing.T) {
	for _, m := range machine.All() {
		cfg := quickCfg(m, atomics.FAA, m.NumHWThreads())
		cfg.Duration = 50 * sim.Microsecond
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s full subscription: %v", m.Name, err)
		}
		if res.Ops == 0 {
			t.Fatalf("%s: no ops at full subscription", m.Name)
		}
	}
}

func TestBandwidthWorkloadEndToEnd(t *testing.T) {
	// Finite bandwidth through the whole workload stack.
	m := machine.XeonE5()
	m.LinkOccupancy = m.Cycles(4)
	free := machine.XeonE5()
	rLim, err := Run(quickCfg(m, atomics.FAA, 16))
	if err != nil {
		t.Fatal(err)
	}
	rFree, err := Run(quickCfg(free, atomics.FAA, 16))
	if err != nil {
		t.Fatal(err)
	}
	if rLim.Coh.LinkStall == 0 {
		t.Fatal("no link stall under finite bandwidth")
	}
	if rLim.ThroughputMops > rFree.ThroughputMops {
		t.Fatalf("finite bandwidth sped things up: %v > %v", rLim.ThroughputMops, rFree.ThroughputMops)
	}
}

func TestCASRetryLoopTerminatesUnderPressure(t *testing.T) {
	// 36 threads in a retry loop: every span eventually completes (no
	// livelock) because FIFO arbitration guarantees each failed CAS
	// re-observes a fresh value.
	cfg := quickCfg(machine.XeonE5(), atomics.CAS, 36)
	cfg.CASRetryLoop = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessLatency.Count() == 0 {
		t.Fatal("no successful spans at 36 threads")
	}
}
