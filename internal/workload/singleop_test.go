package workload

import (
	"testing"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

func TestStateLatencyOrdering(t *testing.T) {
	// The paper's central low-contention result: latency is ordered by
	// where the line is — own cache < LLC < remote cache (same socket)
	// < remote cache (other socket) < DRAM-ish. We assert the orderings
	// that hold by construction of the protocol.
	m := machine.XeonE5()
	lat := map[LineState]sim.Time{}
	for _, st := range AllLineStates() {
		v, err := MeasureStateLatency(m, atomics.FAA, st)
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		lat[st] = v
	}
	if !(lat[StateModifiedLocal] < lat[StateLLC]) {
		t.Errorf("M-local (%v) should beat LLC (%v)", lat[StateModifiedLocal], lat[StateLLC])
	}
	if !(lat[StateModifiedLocal] < lat[StateRemoteSameSocket]) {
		t.Errorf("M-local (%v) should beat remote (%v)", lat[StateModifiedLocal], lat[StateRemoteSameSocket])
	}
	if !(lat[StateRemoteSameSocket] < lat[StateRemoteOtherSocket]) {
		t.Errorf("same-socket (%v) should beat cross-socket (%v)",
			lat[StateRemoteSameSocket], lat[StateRemoteOtherSocket])
	}
	if !(lat[StateLLC] < lat[StateMemory]) {
		t.Errorf("LLC (%v) should beat DRAM (%v)", lat[StateLLC], lat[StateMemory])
	}
	if lat[StateModifiedLocal] != lat[StateExclusiveLocal] {
		t.Errorf("RMW on own M (%v) vs own E (%v) should match (silent upgrade)",
			lat[StateModifiedLocal], lat[StateExclusiveLocal])
	}
}

func TestStateLatencyLoadVsRMWOnOwnedLine(t *testing.T) {
	m := machine.XeonE5()
	load, err := MeasureStateLatency(m, atomics.Load, StateModifiedLocal)
	if err != nil {
		t.Fatal(err)
	}
	faa, err := MeasureStateLatency(m, atomics.FAA, StateModifiedLocal)
	if err != nil {
		t.Fatal(err)
	}
	if load >= faa {
		t.Fatalf("owned-line load (%v) should be cheaper than FAA (%v)", load, faa)
	}
	// The gap is the locked-instruction execution cost.
	if faa-load != m.Lat.ExecFAA {
		t.Fatalf("FAA - load = %v, want ExecFAA %v", faa-load, m.Lat.ExecFAA)
	}
}

func TestStateLatencySharedRequiresInvalidation(t *testing.T) {
	m := machine.XeonE5()
	shared, err := MeasureStateLatency(m, atomics.FAA, StateShared)
	if err != nil {
		t.Fatal(err)
	}
	llc, err := MeasureStateLatency(m, atomics.FAA, StateLLC)
	if err != nil {
		t.Fatal(err)
	}
	if shared <= llc {
		t.Fatalf("RMW on shared line (%v) should exceed LLC fill (%v): invalidation", shared, llc)
	}
}

func TestStateLatencyCrossSocketUnavailableOnKNL(t *testing.T) {
	if _, err := MeasureStateLatency(machine.KNL(), atomics.FAA, StateRemoteOtherSocket); err == nil {
		t.Fatal("single-socket KNL should reject cross-socket state")
	}
}

func TestKNLRemoteSlowerThanXeonSameSocket(t *testing.T) {
	x, err := MeasureStateLatency(machine.XeonE5(), atomics.FAA, StateRemoteSameSocket)
	if err != nil {
		t.Fatal(err)
	}
	k, err := MeasureStateLatency(machine.KNL(), atomics.FAA, StateRemoteSameSocket)
	if err != nil {
		t.Fatal(err)
	}
	if k <= x {
		t.Fatalf("KNL tile-to-tile (%v) should be slower than Xeon same-socket (%v)", k, x)
	}
}

func TestLineStateStrings(t *testing.T) {
	for _, st := range AllLineStates() {
		if st.String() == "unknown" {
			t.Errorf("state %d has no name", st)
		}
	}
	if LineState(99).String() != "unknown" {
		t.Error("unknown state")
	}
}
