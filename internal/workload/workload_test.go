package workload

import (
	"testing"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

func quickCfg(m *machine.Machine, p atomics.Primitive, threads int) Config {
	return Config{
		Machine:   m,
		Threads:   threads,
		Primitive: p,
		Mode:      HighContention,
		Warmup:    5 * sim.Microsecond,
		Duration:  50 * sim.Microsecond,
		Seed:      1,
	}
}

func TestRunBasicFAA(t *testing.T) {
	res, err := Run(quickCfg(machine.Ideal(8), atomics.FAA, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no ops measured")
	}
	if res.Attempts != res.Ops || res.Failures != 0 {
		t.Fatalf("FAA attempts=%d ops=%d failures=%d", res.Attempts, res.Ops, res.Failures)
	}
	if res.ThroughputMops <= 0 {
		t.Fatal("no throughput")
	}
	var sum uint64
	for _, v := range res.PerThreadOps {
		sum += v
	}
	if sum != res.Ops {
		t.Fatalf("per-thread sum %d != ops %d", sum, res.Ops)
	}
	if res.Latency.Count() != res.Attempts {
		t.Fatalf("latency samples %d != attempts %d", res.Latency.Count(), res.Attempts)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil machine accepted")
	}
	if _, err := Run(Config{Machine: machine.Ideal(4), Threads: 0}); err == nil {
		t.Error("0 threads accepted")
	}
	if _, err := Run(Config{Machine: machine.Ideal(4), Threads: 99}); err == nil {
		t.Error("oversubscription accepted")
	}
	bad := quickCfg(machine.Ideal(4), atomics.FAA, 2)
	bad.Mode = ReadWriteMix
	bad.ReadFraction = 1.5
	if _, err := Run(bad); err == nil {
		t.Error("bad ReadFraction accepted")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := quickCfg(machine.XeonE5(), atomics.CAS, 8)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ops != b.Ops || a.Failures != b.Failures {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d", a.Ops, a.Failures, b.Ops, b.Failures)
	}
	cfg.Seed = 2
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ops == a.Ops && c.Failures == a.Failures {
		t.Log("different seeds coincided (possible but unlikely)")
	}
}

func TestCASFailsUnderContention(t *testing.T) {
	res, err := Run(quickCfg(machine.Ideal(8), atomics.CAS, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatal("contended CAS never failed")
	}
	if res.SuccessRate() >= 1 {
		t.Fatalf("success rate = %v", res.SuccessRate())
	}
	// Single-thread CAS never fails.
	solo, err := Run(quickCfg(machine.Ideal(8), atomics.CAS, 1))
	if err != nil {
		t.Fatal(err)
	}
	if solo.Failures != 0 {
		t.Fatalf("solo CAS failed %d times", solo.Failures)
	}
}

func TestCASRetryLoopMeasuresSpans(t *testing.T) {
	cfg := quickCfg(machine.Ideal(8), atomics.CAS, 8)
	cfg.CASRetryLoop = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessLatency.Count() == 0 {
		t.Fatal("no success spans recorded")
	}
	if res.SuccessLatency.Mean() < res.Latency.Mean() {
		t.Fatal("span latency should be >= attempt latency")
	}
}

func TestThroughputSaturatesWithThreads(t *testing.T) {
	// Paper shape: high-contention throughput does not scale with
	// threads; it flattens (or dips) once the line serializes.
	m := machine.XeonE5()
	t1, err := Run(quickCfg(m, atomics.FAA, 1))
	if err != nil {
		t.Fatal(err)
	}
	t8, err := Run(quickCfg(m, atomics.FAA, 8))
	if err != nil {
		t.Fatal(err)
	}
	if t8.ThroughputMops > 1.5*t1.ThroughputMops {
		t.Fatalf("contended FAA scaled: 1t=%.1f 8t=%.1f Mops", t1.ThroughputMops, t8.ThroughputMops)
	}
}

func TestLatencyGrowsWithThreads(t *testing.T) {
	m := machine.XeonE5()
	l := map[int]float64{}
	for _, n := range []int{1, 4, 16} {
		res, err := Run(quickCfg(m, atomics.FAA, n))
		if err != nil {
			t.Fatal(err)
		}
		l[n] = res.Latency.Mean().Nanoseconds()
	}
	if !(l[1] < l[4] && l[4] < l[16]) {
		t.Fatalf("latency not increasing: %v", l)
	}
	// Roughly linear: 16-thread latency should be several times the
	// 4-thread latency, not equal and not explosive.
	if ratio := l[16] / l[4]; ratio < 2 || ratio > 8 {
		t.Fatalf("latency scaling 4->16 threads = %.1fx, want ~4x", ratio)
	}
}

func TestLowContentionStaysFast(t *testing.T) {
	m := machine.XeonE5()
	cfg := quickCfg(m, atomics.FAA, 16)
	cfg.Mode = LowContention
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Private lines: mean latency stays near the owned-line cost.
	owned := (m.Lat.L1Hit + m.Lat.ExecFAA).Nanoseconds()
	if got := res.Latency.Mean().Nanoseconds(); got > 3*owned {
		t.Fatalf("low-contention latency %.1fns, owned-line cost %.1fns", got, owned)
	}
	// And throughput scales ~linearly with threads.
	cfg1 := cfg
	cfg1.Threads = 1
	solo, err := Run(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputMops < 10*solo.ThroughputMops {
		t.Fatalf("low contention did not scale: 1t=%.1f 16t=%.1f", solo.ThroughputMops, res.ThroughputMops)
	}
}

func TestFIFOFairness(t *testing.T) {
	cfg := quickCfg(machine.XeonE5(), atomics.FAA, 16)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jain < 0.95 {
		t.Fatalf("FIFO Jain = %v, want ~1", res.Jain)
	}
}

func TestLocalityArbitrationUnfairOnTwoSockets(t *testing.T) {
	cfg := quickCfg(machine.XeonE5(), atomics.FAA, 24)
	cfg.Arbiter = &coherence.LocalityArbiter{}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := Run(quickCfg(machine.XeonE5(), atomics.FAA, 24))
	if err != nil {
		t.Fatal(err)
	}
	if res.Jain >= fifo.Jain {
		t.Fatalf("locality Jain %v should be below FIFO %v", res.Jain, fifo.Jain)
	}
}

func TestLocalWorkReducesContention(t *testing.T) {
	m := machine.XeonE5()
	hot := quickCfg(m, atomics.FAA, 8)
	cold := hot
	cold.LocalWork = 2 * sim.Microsecond
	rHot, err := Run(hot)
	if err != nil {
		t.Fatal(err)
	}
	rCold, err := Run(cold)
	if err != nil {
		t.Fatal(err)
	}
	if rCold.Latency.Mean() >= rHot.Latency.Mean() {
		t.Fatalf("local work did not reduce op latency: %v vs %v",
			rCold.Latency.Mean(), rHot.Latency.Mean())
	}
}

func TestWorkJitterStillRuns(t *testing.T) {
	cfg := quickCfg(machine.Ideal(8), atomics.FAA, 4)
	cfg.LocalWork = 100 * sim.Nanosecond
	cfg.WorkJitter = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no ops with jittered work")
	}
}

func TestReadWriteMix(t *testing.T) {
	cfg := quickCfg(machine.XeonE5(), atomics.FAA, 8)
	cfg.Mode = ReadWriteMix
	cfg.ReadFraction = 0.9
	mostlyRead, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ReadFraction = 0
	allWrite, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mostlyRead.ThroughputMops <= allWrite.ThroughputMops {
		t.Fatalf("90%% reads (%.1f Mops) should beat 0%% reads (%.1f Mops)",
			mostlyRead.ThroughputMops, allWrite.ThroughputMops)
	}
}

func TestMultipleSharedLinesRelieveContention(t *testing.T) {
	m := machine.XeonE5()
	one := quickCfg(m, atomics.FAA, 16)
	four := one
	four.Lines = 4
	r1, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(four)
	if err != nil {
		t.Fatal(err)
	}
	if r4.ThroughputMops <= r1.ThroughputMops {
		t.Fatalf("4 lines (%.1f) should outperform 1 line (%.1f)",
			r4.ThroughputMops, r1.ThroughputMops)
	}
}

func TestScatterPlacementHurtsOnXeon(t *testing.T) {
	m := machine.XeonE5()
	compact := quickCfg(m, atomics.FAA, 8)
	scatter := compact
	scatter.Placement = machine.Scatter{}
	rc, err := Run(compact)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(scatter)
	if err != nil {
		t.Fatal(err)
	}
	if rs.ThroughputMops >= rc.ThroughputMops {
		t.Fatalf("scatter (%.1f) should be slower than compact (%.1f) on a shared line",
			rs.ThroughputMops, rc.ThroughputMops)
	}
	if rs.Coh.CrossSocket == 0 {
		t.Fatal("scatter produced no cross-socket transfers")
	}
}

func TestEnergyAccountedDuringMeasurement(t *testing.T) {
	res, err := Run(quickCfg(machine.XeonE5(), atomics.FAA, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy.TotalJ <= 0 || res.Energy.PerOpNJ <= 0 {
		t.Fatalf("energy report empty: %+v", res.Energy)
	}
	if res.Energy.DynamicJ <= 0 {
		t.Fatal("no dynamic energy recorded")
	}
}

func TestOpenLoopBelowSaturation(t *testing.T) {
	// Offered load well under the service rate: achieved ≈ offered and
	// latency stays near the uncontended transfer cost.
	m := machine.XeonE5()
	cfg := quickCfg(m, atomics.FAA, 8)
	cfg.OpenLoop = true
	cfg.OpenLoopInterarrival = 2 * sim.Microsecond // 8/2µs = 4 Mops offered
	cfg.Duration = 300 * sim.Microsecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputMops < 3.5 || res.ThroughputMops > 4.5 {
		t.Fatalf("achieved %.2f Mops, offered 4", res.ThroughputMops)
	}
	if res.Latency.Mean() > 200*sim.Nanosecond {
		t.Fatalf("sub-saturation latency blew up: %v", res.Latency.Mean())
	}
}

func TestOpenLoopAboveSaturationExplodes(t *testing.T) {
	m := machine.XeonE5()
	under := quickCfg(m, atomics.FAA, 8)
	under.OpenLoop = true
	under.OpenLoopInterarrival = 2 * sim.Microsecond
	over := under
	over.OpenLoopInterarrival = 100 * sim.Nanosecond // 80 Mops offered >> ~40 service
	rU, err := Run(under)
	if err != nil {
		t.Fatal(err)
	}
	rO, err := Run(over)
	if err != nil {
		t.Fatal(err)
	}
	if rO.Latency.Mean() < 10*rU.Latency.Mean() {
		t.Fatalf("no queueing explosion past saturation: %v vs %v",
			rO.Latency.Mean(), rU.Latency.Mean())
	}
	// Achieved throughput capped at the service rate, far below offer.
	if rO.ThroughputMops > 60 {
		t.Fatalf("achieved %.2f exceeds any plausible service rate", rO.ThroughputMops)
	}
}

func TestOpenLoopValidation(t *testing.T) {
	cfg := quickCfg(machine.Ideal(4), atomics.FAA, 2)
	cfg.OpenLoop = true
	if _, err := Run(cfg); err == nil {
		t.Error("OpenLoop without interarrival accepted")
	}
	cfg.OpenLoopInterarrival = sim.Microsecond
	cfg.CASRetryLoop = true
	if _, err := Run(cfg); err == nil {
		t.Error("OpenLoop with CASRetryLoop accepted")
	}
}

func TestModeStrings(t *testing.T) {
	if HighContention.String() != "high-contention" ||
		LowContention.String() != "low-contention" ||
		ReadWriteMix.String() != "read-write-mix" {
		t.Error("mode strings")
	}
}
