package workload

import (
	"encoding/json"
	"strings"
	"testing"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/faults"
	"atomicsmodel/internal/machine"
)

func resultJSON(t *testing.T, r *Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestCheckedRunChangesNothing(t *testing.T) {
	// The invariant checker is a pure observer: a checked run must
	// produce the exact result an unchecked run does.
	for _, p := range []atomics.Primitive{atomics.FAA, atomics.CAS} {
		plain := quickCfg(machine.Ideal(8), p, 4)
		checked := plain
		checked.Check = true
		a, err := Run(plain)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(checked)
		if err != nil {
			t.Fatalf("%v: checked run failed: %v", p, err)
		}
		if aj, bj := resultJSON(t, a), resultJSON(t, b); aj != bj {
			t.Fatalf("%v: checked run diverged\nplain:   %s\nchecked: %s", p, aj, bj)
		}
	}
}

func TestJitterFaultIsDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) string {
		cfg := quickCfg(machine.Ideal(8), atomics.FAA, 4)
		cfg.Faults = &faults.CellPlan{Cell: 0, Seed: seed, LatencyJitterPct: 10}
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return resultJSON(t, r)
	}
	a, b := run(5), run(5)
	if a != b {
		t.Fatalf("same fault seed diverged:\n%s\n%s", a, b)
	}
	if c := run(6); c == a {
		t.Fatal("different fault seeds produced identical results")
	}
	// And jitter really perturbs the measurement relative to no fault.
	clean, err := Run(quickCfg(machine.Ideal(8), atomics.FAA, 4))
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, clean) == a {
		t.Fatal("10% latency jitter left the result untouched")
	}
}

func TestCASRetryStormDegradesGracefully(t *testing.T) {
	cfg := quickCfg(machine.Ideal(8), atomics.CAS, 4)
	cfg.Faults = &faults.CellPlan{Cell: 0, Seed: 1, CASFailFirst: 1 << 40}
	r, err := Run(cfg)
	if err != nil {
		t.Fatalf("a CAS storm must degrade the numbers, not fail the run: %v", err)
	}
	if r.Ops != 0 {
		t.Fatalf("every CAS was forced to fail, yet %d succeeded", r.Ops)
	}
	if r.Failures == 0 {
		t.Fatal("forced CAS failures were not recorded")
	}
	// A checked run under the same storm stays violation-free: forced
	// failures are legal protocol behavior, just pathological.
	cfg.Check = true
	if _, err := Run(cfg); err != nil {
		t.Fatalf("checker flagged a legal (if hostile) CAS storm: %v", err)
	}
}

func TestCASFaultStormEndsAfterN(t *testing.T) {
	cfg := quickCfg(machine.Ideal(8), atomics.CAS, 2)
	cfg.Faults = &faults.CellPlan{Cell: 0, Seed: 1, CASFailFirst: 3}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops == 0 {
		t.Fatal("CAS never recovered after the forced-failure budget drained")
	}
}

func TestInvalidMachineRejected(t *testing.T) {
	m := machine.Ideal(8)
	bad := *m
	bad.FreqGHz = 0
	_, err := Run(quickCfg(&bad, atomics.FAA, 2))
	if err == nil || !strings.Contains(err.Error(), "FreqGHz") {
		t.Fatalf("zero-frequency machine accepted: %v", err)
	}
}
