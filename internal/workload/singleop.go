package workload

import (
	"fmt"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/invariant"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

// LineState enumerates the initial cache-line states of the paper's
// low-contention latency experiment: where the line is when a single
// thread executes one primitive on it.
type LineState uint8

const (
	// StateModifiedLocal: dirty in the measuring core's own cache.
	StateModifiedLocal LineState = iota
	// StateExclusiveLocal: clean-exclusive in the measuring core's cache.
	StateExclusiveLocal
	// StateShared: in S state, with the measuring core among the sharers.
	StateShared
	// StateRemoteSameSocket: dirty in another core's cache on the same
	// socket.
	StateRemoteSameSocket
	// StateRemoteOtherSocket: dirty in a core's cache on the other
	// socket (multi-socket machines only).
	StateRemoteOtherSocket
	// StateLLC: resident only at the home LLC slice.
	StateLLC
	// StateMemory: cold, in DRAM.
	StateMemory
)

func (s LineState) String() string {
	switch s {
	case StateModifiedLocal:
		return "M-local"
	case StateExclusiveLocal:
		return "E-local"
	case StateShared:
		return "Shared"
	case StateRemoteSameSocket:
		return "M-remote-socket0"
	case StateRemoteOtherSocket:
		return "M-remote-socket1"
	case StateLLC:
		return "LLC"
	case StateMemory:
		return "DRAM"
	}
	return "unknown"
}

// AllLineStates returns the states in display order.
func AllLineStates() []LineState {
	return []LineState{
		StateModifiedLocal, StateExclusiveLocal, StateShared,
		StateRemoteSameSocket, StateRemoteOtherSocket, StateLLC, StateMemory,
	}
}

// MeasureStateLatency prepares a line in the given initial state and
// measures the latency of one primitive issued by core 0. It returns an
// error for states the machine cannot express (e.g. a cross-socket
// state on single-socket KNL).
func MeasureStateLatency(m *machine.Machine, p atomics.Primitive, st LineState) (sim.Time, error) {
	return MeasureStateLatencyChecked(m, p, st, false)
}

// MeasureStateLatencyChecked is MeasureStateLatency with an optional
// invariant checker on the probe's engine and coherence system, so
// `-check` runs audit the single-op probes too.
func MeasureStateLatencyChecked(m *machine.Machine, p atomics.Primitive, st LineState, check bool) (sim.Time, error) {
	if err := m.Validate(); err != nil {
		return 0, fmt.Errorf("workload: %w", err)
	}
	eng := sim.NewEngine()
	mem, err := atomics.NewMemory(eng, m, nil)
	if err != nil {
		return 0, err
	}
	var chk *invariant.Checker
	if check {
		chk = invariant.Install(eng, mem.System())
	}
	const line coherence.LineID = 77
	measured, sameSocket, otherSocket := 0, m.CoresPerSocket/2, -1
	if m.Sockets > 1 {
		otherSocket = m.CoresPerSocket + m.CoresPerSocket/2
	}

	doOp := func(core int, prim atomics.Primitive) atomics.Result {
		var out atomics.Result
		mem.Do(prim, core, line, 1, 2, func(r atomics.Result) { out = r })
		eng.Drain()
		return out
	}

	switch st {
	case StateModifiedLocal:
		doOp(measured, atomics.Store)
	case StateExclusiveLocal:
		doOp(measured, atomics.Load)
	case StateShared:
		doOp(measured, atomics.Load)
		doOp(sameSocket, atomics.Load)
	case StateRemoteSameSocket:
		doOp(sameSocket, atomics.Store)
	case StateRemoteOtherSocket:
		if otherSocket < 0 {
			return 0, fmt.Errorf("workload: %s has a single socket", m.Name)
		}
		doOp(otherSocket, atomics.Store)
	case StateLLC:
		doOp(sameSocket, atomics.Store)
		mem.System().EvictPrivate(line)
	case StateMemory:
		// Leave the line untouched.
	default:
		return 0, fmt.Errorf("workload: unknown line state %d", st)
	}

	res := doOp(measured, p)
	if chk != nil {
		if err := chk.Finalize(); err != nil {
			return 0, fmt.Errorf("workload: %w", err)
		}
	}
	return res.Latency, nil
}
