// Steady-state cycle memoizer: the workload-level half of the analytic
// fast-forward layer (the engine half is sim.ShiftHead/JumpClock).
//
// A closed-loop high-contention cell settles into an exactly periodic
// schedule: with one shared line, no think time, and a FIFO arbiter,
// the same rotation of threads is granted in the same order with the
// same service intervals forever — the simulation spends its whole
// measured window re-deriving a cycle it has already computed. The
// memoizer detects that cycle and skips it analytically:
//
//  1. Fingerprint the cell state between events (the directory entry,
//     the queue window in grant order, and the time to the pending
//     completion — everything the access path can read, minus the
//     monotone counters that provably do not feed back).
//  2. When the fingerprint recurs, one cycle has been recorded: its
//     event count, duration, counter deltas, and trace-event sequence.
//  3. Record a second cycle and require it to match the first exactly
//     (events compared field-by-field, counters delta-by-delta). Two
//     independent matches plus the state fingerprint rule out
//     coincidental recurrence.
//  4. Jump: multiply the integer counter deltas by the number of
//     whole cycles remaining, replay the cycle's energy additions in
//     order (float addition is non-associative, so scaling would
//     diverge from the simulated sum; replaying the identical addition
//     sequence cannot), shift the pending completion, and jump the
//     clock. The final partial cycle plays out live, so boundary
//     behavior is identical to the unskipped run.
//
// An eligible run gets two passes. The pre-warmup pass arms as soon as
// the startup convoy resolves (the first access's cold fill makes the
// opening rotations aperiodic, so the first fingerprint may need to be
// retaken) and jumps up to just short of the warmup boundary; the
// warmup marker event stays pending throughout, which is why the jump
// translates only the queue head (sim.ShiftHead) rather than every
// pending event. The post-warmup pass re-arms at the warmup boundary
// and jumps toward the end of the measured window. Both passes apply
// the identical set of counter/energy effects, so the state at every
// boundary matches the unskipped run bit-for-bit.
//
// Eligibility is conservative: any knob that makes an operation's
// behavior value-dependent (CAS), draws randomness per operation
// (jittered think time, read/write mix), or needs per-event visibility
// (metrics, invariant checking, fault plans, stateful arbiters, store
// buffering, finite bandwidth) disables the memoizer for that run. An
// ineligible or aperiodic cell runs every event as before; the
// differential harness test proves byte-identical results either way.
package workload

import (
	"bytes"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/stats"
)

// fastForwardOn gates the memoizer globally. SetFastForward flips it;
// the differential tests run each experiment both ways and compare
// bytes.
var fastForwardOn = true

// SetFastForward enables or disables the steady-state cycle memoizer
// for subsequent runs (it defaults to on). Results are byte-identical
// either way; only the number of simulated events changes. Not safe to
// call while cells are running.
func SetFastForward(on bool) { fastForwardOn = on }

// FastForwardEnabled reports the current gate, for tests.
func FastForwardEnabled() bool { return fastForwardOn }

// Memoizer phases. The probe runs between events (engine idle hook) and
// walks: off → capture (fingerprint at an event boundary once the
// queue has the expected steady shape) → record (wait for the
// fingerprint to recur) → verify (require a second identical cycle) →
// done (jumped, or given up). memoArm restarts the walk for each pass.
const (
	memoOff = iota
	memoCapture
	memoRecord
	memoVerify
	memoDone
)

// maxCaptureAttempts bounds how many times a pass may re-take its
// starting fingerprint after a failed search before standing down.
const maxCaptureAttempts = 4

// memoState is the per-runner scratch for the memoizer. All slices are
// reused across runs, so an armed memoizer allocates only on its first
// few cycles ever.
type memoState struct {
	phase int
	// Pass parameters (memoArm): the expected steady pending-event
	// count (2 pre-warmup — completion plus warmup marker — and 1
	// after), probes to skip before the first capture, re-capture
	// budget, the cycle-search event bound, and the time the jump must
	// stay short of.
	want      int
	skip      int
	attempts  int
	searchLim uint64
	bound     sim.Time

	key []byte // fingerprint at cycle start
	tmp []byte // probe scratch

	// Baselines captured at the current cycle's start.
	t0          sim.Time
	p0          uint64
	opsB, attB  uint64
	failB       uint64
	perOpsB     []uint64
	cohB        coherence.Stats
	latB, slatB *stats.Histogram

	// The recorded cycle (filled when the fingerprint first recurs).
	period            uint64
	dur               sim.Time
	dOps, dAtt, dFail uint64
	dPerOps           []uint64
	dCoh              coherence.Stats
	evsA, evsB        []coherence.TraceEvent
	njs               []float64 // per-event energy charges, for Replay
}

// memoEligible reports whether cfg's steady state can be memoized: the
// schedule must be a closed loop on one shared line with no per-op
// randomness, a value-independent primitive, a stateless FIFO grant
// order, and no observer that needs per-event visibility.
func memoEligible(cfg *Config) bool {
	if cfg.Mode != HighContention || cfg.Lines != 1 || cfg.LocalWork != 0 ||
		cfg.OpenLoop || cfg.Metrics || cfg.Check || cfg.Faults != nil {
		return false
	}
	switch cfg.Primitive {
	case atomics.FAA, atomics.SWAP, atomics.TAS, atomics.Store:
	default:
		// CAS control flow depends on the line value, which the
		// fingerprint deliberately excludes; Load does not serialize;
		// Fence never reaches the line.
		return false
	}
	switch cfg.Arbiter.(type) {
	case nil, coherence.FIFOArbiter:
	default:
		return false
	}
	m := cfg.Machine
	return m.StoreBufferDepth == 0 && m.LinkOccupancy == 0
}

// memoLine is the shared line a memoized cell cycles on (linesFor
// numbers shared lines from 1; eligibility pins Lines to 1).
const memoLine = coherence.LineID(1)

// memoArm starts (or restarts) a memoization pass and installs the
// recording tracer. The pre-warmup pass fingerprints with the warmup
// marker still pending (want = 2) and may only jump short of the
// warmup boundary; the post-warmup pass owns the queue alone (want = 1)
// and jumps toward the end of the window. skip consumes probes before
// the first capture — past the startup convoy in the pre pass, past
// the warmup marker's own mid-service probe in the post pass.
func (r *runner) memoArm(want, skip int, bound sim.Time) {
	m := &r.memo
	m.phase = memoCapture
	m.want, m.skip, m.bound = want, skip, bound
	m.attempts = 0
	// The steady cycle is one rotation of the closed loop — a few
	// events per thread — so a fingerprint that has not recurred within
	// a handful of rotations was taken mid-transient. Keeping the
	// search bound proportional to the thread count makes a failed
	// capture cheap enough to retry.
	m.searchLim = uint64(4*r.cfg.Threads + 64)
	r.mem.System().SetTracer(r.traceRecFn)
}

// cycleKey fingerprints the cell between events: the time to the next
// pending event (the completion; pass bounds keep the warmup marker
// from ever being the nearer one on a cycle boundary) plus the line's
// protocol state and queue window.
func (r *runner) cycleKey(dst []byte) []byte {
	at, _ := r.eng.PeekTime()
	d := uint64(at - r.eng.Now())
	dst = append(dst,
		byte(d), byte(d>>8), byte(d>>16), byte(d>>24),
		byte(d>>32), byte(d>>40), byte(d>>48), byte(d>>56))
	return r.mem.System().AppendCycleKey(dst, memoLine)
}

// memoBase records the counter baselines at a cycle boundary.
func (r *runner) memoBase() {
	m := &r.memo
	m.t0 = r.eng.Now()
	m.p0 = r.eng.Processed()
	m.opsB, m.attB, m.failB = r.ops, r.attempts, r.failures
	m.perOpsB = append(m.perOpsB[:0], r.perOps...)
	m.cohB = r.mem.System().Stats()
	if m.latB == nil {
		m.latB, m.slatB = stats.NewHistogram(), stats.NewHistogram()
	}
	r.lat.CopyInto(m.latB)
	r.slat.CopyInto(m.slatB)
}

// memoCapture takes the starting fingerprint of a (re)started cycle
// search at the current event boundary.
func (r *runner) memoCapture() {
	m := &r.memo
	m.key = r.cycleKey(m.key[:0])
	r.memoBase()
	m.evsA, m.evsB = m.evsA[:0], m.evsB[:0]
	m.phase = memoRecord
}

// memoAbort stands the memoizer down for the rest of the pass,
// restoring the plain tracer. Correctness is unaffected — the cell
// simply simulates every event (and the post-warmup pass still arms
// even if the pre-warmup pass gave up).
func (r *runner) memoAbort() {
	r.memo.phase = memoDone
	r.mem.System().SetTracer(r.traceFn)
}

// probe is the engine idle hook of an armed memoizer; it runs between
// events with a clean stack, the only place pending events may be
// translated and the clock jumped.
func (r *runner) probe() {
	m := &r.memo
	if m.phase == memoOff || m.phase == memoDone {
		return
	}
	if m.skip > 0 {
		m.skip--
		return
	}
	switch m.phase {
	case memoCapture:
		if r.eng.Pending() != m.want {
			// Startup convoy still forming (threads yet to issue their
			// first op); wait for the steady queue shape.
			return
		}
		r.memoCapture()
	case memoRecord, memoVerify:
		if r.eng.Pending() != m.want {
			r.memoAbort()
			return
		}
		if r.eng.Processed()-m.p0 > m.searchLim {
			// The fingerprint did not recur: it was taken mid-transient
			// (e.g. the cold-miss fill still in service) or the schedule
			// is aperiodic. Re-fingerprint from the current state a few
			// times before standing down.
			if m.phase == memoRecord && m.attempts < maxCaptureAttempts {
				m.attempts++
				r.memoCapture()
				return
			}
			r.memoAbort()
			return
		}
		m.tmp = r.cycleKey(m.tmp[:0])
		if !bytes.Equal(m.tmp, m.key) {
			return
		}
		if m.phase == memoRecord {
			// First recurrence: one whole cycle is on record. Measure
			// it, rebase, and demand an identical second cycle.
			m.period = r.eng.Processed() - m.p0
			m.dur = r.eng.Now() - m.t0
			m.dOps = r.ops - m.opsB
			m.dAtt = r.attempts - m.attB
			m.dFail = r.failures - m.failB
			m.dPerOps = m.dPerOps[:0]
			for i, b := range m.perOpsB {
				m.dPerOps = append(m.dPerOps, r.perOps[i]-b)
			}
			m.dCoh = subStats(r.mem.System().Stats(), m.cohB)
			r.memoBase()
			m.evsB = m.evsB[:0]
			m.phase = memoVerify
			return
		}
		r.memoJump()
	}
}

// memoJump verifies the second recorded cycle against the first and, on
// an exact match, applies the remaining whole cycles analytically.
func (r *runner) memoJump() {
	m := &r.memo
	eng, sys := r.eng, r.mem.System()
	now := eng.Now()

	ok := eng.Processed()-m.p0 == m.period &&
		now-m.t0 == m.dur &&
		r.ops-m.opsB == m.dOps &&
		r.attempts-m.attB == m.dAtt &&
		r.failures-m.failB == m.dFail &&
		subStats(sys.Stats(), m.cohB) == m.dCoh &&
		len(m.evsA) == len(m.evsB)
	if ok {
		for i, b := range m.perOpsB {
			if r.perOps[i]-b != m.dPerOps[i] {
				ok = false
				break
			}
		}
	}
	if ok {
		for i := range m.evsA {
			if !sameTraceShape(m.evsA[i], m.evsB[i]) {
				ok = false
				break
			}
		}
	}
	if !ok || m.dur <= 0 {
		r.memoAbort()
		return
	}

	// Keep one whole cycle plus the final partial cycle live at the
	// tail. The jump lands on the verified periodic state shifted in
	// time, so the approach to the boundary (warmup marker or end of
	// window) develops exactly as in the unskipped run.
	cycles := uint64((m.bound - now) / m.dur)
	if cycles < 2 {
		r.memoAbort()
		return
	}
	k := cycles - 1
	jump := sim.Time(k) * m.dur
	if !eng.ShiftHead(jump) {
		r.memoAbort()
		return
	}

	r.ops += m.dOps * k
	r.attempts += m.dAtt * k
	r.failures += m.dFail * k
	for i := range m.dPerOps {
		r.perOps[i] += m.dPerOps[i] * k
	}
	r.lat.AddScaledDiff(m.latB, k)
	r.slat.AddScaledDiff(m.slatB, k)
	sys.AddScaledStats(m.dCoh, k)
	// Replay the energy additions of each elided cycle in simulated
	// order; the meter's float accumulator then holds exactly the sum
	// the unskipped run would have produced. The per-event charges are
	// computed once so the replay is a pure addition loop.
	m.njs = m.njs[:0]
	for _, ev := range m.evsB {
		m.njs = append(m.njs, r.meter.EventNJ(ev))
	}
	r.meter.Replay(m.njs, k)

	sys.ShiftInFlight(jump)
	eng.JumpClock(now+jump, k*m.period)
	r.memoAbort() // restores the tracer; phase = done
}

// sameTraceShape compares two trace events ignoring their monotone
// fields: At (absolute time) and Result.Value (the line value, which
// grows every cycle under FAA). Everything that feeds the meter or the
// histograms is compared.
func sameTraceShape(a, b coherence.TraceEvent) bool {
	return a.Line == b.Line && a.Core == b.Core && a.Kind == b.Kind &&
		a.Result.Latency == b.Result.Latency &&
		a.Result.Hops == b.Result.Hops &&
		a.Result.QueuedBehind == b.Result.QueuedBehind &&
		a.Result.Source == b.Result.Source &&
		a.Result.Wrote == b.Result.Wrote &&
		a.Result.CrossSocket == b.Result.CrossSocket
}
