package workload

import (
	"bytes"
	"strings"
	"testing"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

func TestParseModeRoundTrip(t *testing.T) {
	for _, m := range []Mode{HighContention, LowContention, ReadWriteMix} {
		got, err := ParseMode(m.String())
		if err != nil {
			t.Fatalf("ParseMode(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("ParseMode(%q) = %v, want %v", m.String(), got, m)
		}
	}
	for _, bad := range []string{"unknown", "", "HIGH-CONTENTION", "high contention"} {
		if _, err := ParseMode(bad); err == nil {
			t.Fatalf("ParseMode(%q) accepted", bad)
		}
	}
}

// TestConfigRejectsIneffectiveKnobs is the regression test for the
// fillDefaults strictness fix: knobs that the chosen mode or arrival
// process would silently ignore must be rejected, not dropped.
func TestConfigRejectsIneffectiveKnobs(t *testing.T) {
	m := machine.Ideal(4)
	base := Config{
		Machine: m, Threads: 2, Primitive: atomics.FAA,
		Warmup: sim.Microsecond, Duration: 5 * sim.Microsecond,
	}

	rf := base
	rf.ReadFraction = 0.5 // HighContention mode: no effect
	if _, err := Run(rf); err == nil || !strings.Contains(err.Error(), "ReadFraction") {
		t.Fatalf("ReadFraction outside read-write-mix accepted (err=%v)", err)
	}

	inter := base
	inter.OpenLoopInterarrival = 100 * sim.Nanosecond // without OpenLoop: no effect
	if _, err := Run(inter); err == nil || !strings.Contains(err.Error(), "OpenLoopInterarrival") {
		t.Fatalf("OpenLoopInterarrival without OpenLoop accepted (err=%v)", err)
	}

	ok := base
	ok.Mode = ReadWriteMix
	ok.ReadFraction = 0.5
	if _, err := Run(ok); err != nil {
		t.Fatalf("valid read-write-mix config rejected: %v", err)
	}
}

func TestSpecStrictParse(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"primitive":"FAA","threads":4}`)); err != nil {
		t.Fatalf("minimal valid spec rejected: %v", err)
	}
	if _, err := ParseSpec([]byte(`{"primitive":"FAA","threads":4,"lins":2}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`{"primitive":"FAA","threads":4}{"x":1}`)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if _, err := ParseSpec([]byte(`{"primitive":"FAA","threads":4} true`)); err == nil {
		t.Fatal("trailing token accepted")
	}
}

func TestSpecValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"no primitive", Spec{Threads: 4}},
		{"bad primitive", Spec{Primitive: "XADD", Threads: 4}},
		{"bad mode", Spec{Primitive: "FAA", Mode: "unknown", Threads: 4}},
		{"no threads", Spec{Primitive: "FAA"}},
		{"threads and ladder", Spec{Primitive: "FAA", Threads: 4, ThreadLadder: []int{1, 2}}},
		{"negative threads", Spec{Primitive: "FAA", Threads: -1}},
		{"unsorted ladder", Spec{Primitive: "FAA", ThreadLadder: []int{4, 2}}},
		{"duplicate ladder", Spec{Primitive: "FAA", ThreadLadder: []int{2, 2}}},
		{"bad placement", Spec{Primitive: "FAA", Threads: 4, Placement: "spread"}},
		{"negative socket", Spec{Primitive: "FAA", Threads: 4, Placement: "socket--1"}},
		{"bad arbiter", Spec{Primitive: "FAA", Threads: 4, Arbiter: "priority"}},
		{"skips on fifo", Spec{Primitive: "FAA", Threads: 4, ArbiterSkips: 8}},
		{"skips on random", Spec{Primitive: "FAA", Threads: 4, Arbiter: "random", ArbiterSkips: 8}},
		{"negative skips", Spec{Primitive: "FAA", Threads: 4, Arbiter: "locality", ArbiterSkips: -1}},
		{"negative lines", Spec{Primitive: "FAA", Threads: 4, Lines: -2}},
		{"negative work", Spec{Primitive: "FAA", Threads: 4, LocalWorkPS: -5}},
		{"jitter without work", Spec{Primitive: "FAA", Threads: 4, WorkJitter: true}},
		{"read fraction range", Spec{Primitive: "FAA", Mode: "read-write-mix", Threads: 4, ReadFraction: 1.5}},
		{"read fraction in high", Spec{Primitive: "FAA", Threads: 4, ReadFraction: 0.5}},
		{"retry loop on FAA", Spec{Primitive: "FAA", Threads: 4, CASRetryLoop: true}},
		{"retry loop open loop", Spec{Primitive: "CAS", Threads: 4, CASRetryLoop: true, OpenLoop: true, OpenLoopInterarrivalPS: 100}},
		{"open loop no interarrival", Spec{Primitive: "FAA", Threads: 4, OpenLoop: true}},
		{"interarrival no open loop", Spec{Primitive: "FAA", Threads: 4, OpenLoopInterarrivalPS: 100}},
		{"negative warmup", Spec{Primitive: "FAA", Threads: 4, WarmupPS: -1}},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSpecDefaultedDigestEquivalence(t *testing.T) {
	implicit := Spec{Primitive: "FAA", Threads: 8}
	explicit := Spec{
		Primitive: "FAA", Mode: "high-contention", Threads: 8,
		Placement: "compact", Arbiter: "fifo", Lines: 1,
		WarmupPS: 20 * sim.Microsecond, DurationPS: 200 * sim.Microsecond,
	}
	di, err := implicit.Digest()
	if err != nil {
		t.Fatal(err)
	}
	de, err := explicit.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if di != de {
		t.Fatalf("spelled-out defaults change the digest: %s vs %s", di, de)
	}

	low := Spec{Primitive: "FAA", Mode: "low-contention", Threads: 8}
	lowExplicit := low.Clone()
	lowExplicit.Lines = 16 // low-contention's default line count
	dl, _ := low.Digest()
	dle, _ := lowExplicit.Digest()
	if dl != dle {
		t.Fatalf("low-contention default lines change the digest: %s vs %s", dl, dle)
	}
}

// TestSpecDigestSensitivity flips every field off a base spec and
// demands pairwise-distinct digests: any effective knob difference must
// produce a different cache identity.
func TestSpecDigestSensitivity(t *testing.T) {
	base := func() *Spec { return &Spec{Primitive: "FAA", Threads: 8} }
	variants := map[string]*Spec{"base": base()}
	add := func(name string, mut func(*Spec)) {
		s := base()
		mut(s)
		if err := s.Validate(); err != nil {
			t.Fatalf("variant %s invalid: %v", name, err)
		}
		variants[name] = s
	}
	add("name", func(s *Spec) { s.Name = "named" })
	add("doc", func(s *Spec) { s.Doc = "documented" })
	add("primitive", func(s *Spec) { s.Primitive = "CAS" })
	add("mode", func(s *Spec) { s.Mode = "low-contention" })
	add("threads", func(s *Spec) { s.Threads = 16 })
	add("ladder", func(s *Spec) { s.Threads = 0; s.ThreadLadder = []int{8, 16} })
	add("placement", func(s *Spec) { s.Placement = "scatter" })
	add("socket", func(s *Spec) { s.Placement = "socket-1" })
	add("arbiter", func(s *Spec) { s.Arbiter = "random" })
	add("locality", func(s *Spec) { s.Arbiter = "locality" })
	add("skips", func(s *Spec) { s.Arbiter = "locality"; s.ArbiterSkips = 64 })
	add("lines", func(s *Spec) { s.Lines = 4 })
	add("work", func(s *Spec) { s.LocalWorkPS = 100 * sim.Nanosecond })
	add("jitter", func(s *Spec) { s.LocalWorkPS = 100 * sim.Nanosecond; s.WorkJitter = true })
	add("mix", func(s *Spec) { s.Mode = "read-write-mix"; s.ReadFraction = 0.9 })
	add("mix-frac", func(s *Spec) { s.Mode = "read-write-mix"; s.ReadFraction = 0.99 })
	add("retry", func(s *Spec) { s.Primitive = "CAS"; s.CASRetryLoop = true })
	add("openloop", func(s *Spec) { s.OpenLoop = true; s.OpenLoopInterarrivalPS = 123456 })
	add("interarrival", func(s *Spec) { s.OpenLoop = true; s.OpenLoopInterarrivalPS = 123457 })
	add("warmup", func(s *Spec) { s.WarmupPS = 10 * sim.Microsecond })
	add("duration", func(s *Spec) { s.DurationPS = 100 * sim.Microsecond })
	add("seed", func(s *Spec) { s.Seed = 7 })

	seen := map[string]string{}
	for name, s := range variants {
		d, err := s.Digest()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[d]; dup {
			t.Errorf("variants %s and %s share digest %s", name, prev, d)
		}
		seen[d] = name
	}
}

func TestSpecCanonicalFixedPoint(t *testing.T) {
	s := &Spec{Primitive: "CAS", Mode: "read-write-mix", ReadFraction: 0.9, Threads: 6, Seed: 11}
	raw1, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseSpec(raw1)
	if err != nil {
		t.Fatalf("canonical form does not reparse: %v\n%s", err, raw1)
	}
	raw2, err := s2.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("canonical encoding not a fixed point:\n%s\nvs\n%s", raw1, raw2)
	}
}

func TestSpecExpand(t *testing.T) {
	s := &Spec{Primitive: "FAA", ThreadLadder: []int{1, 2, 4}, Seed: 3}
	pts := s.Expand()
	if len(pts) != 3 {
		t.Fatalf("Expand returned %d points", len(pts))
	}
	for i, want := range []int{1, 2, 4} {
		if pts[i].Threads != want || pts[i].ThreadLadder != nil {
			t.Fatalf("point %d: threads=%d ladder=%v", i, pts[i].Threads, pts[i].ThreadLadder)
		}
		if err := pts[i].Validate(); err != nil {
			t.Fatalf("expanded point invalid: %v", err)
		}
	}
	if _, err := s.Config(machine.Ideal(8)); err == nil {
		t.Fatal("Config accepted an unexpanded ladder spec")
	}
	pinned := &Spec{Primitive: "FAA", Threads: 4}
	if got := pinned.Expand(); len(got) != 1 || got[0].Threads != 4 {
		t.Fatalf("pinned Expand = %+v", got)
	}
}

func TestSpecConfigResolution(t *testing.T) {
	m := machine.Ideal(8)
	s := &Spec{
		Primitive: "SWAP", Threads: 4, Placement: "scatter",
		LocalWorkPS: 50 * sim.Nanosecond, WorkJitter: true, Seed: 99,
	}
	cfg, err := s.Config(m)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Machine != m || cfg.Threads != 4 || cfg.Primitive != atomics.SWAP {
		t.Fatalf("basic fields wrong: %+v", cfg)
	}
	if cfg.Arbiter != (coherence.FIFOArbiter{}) {
		t.Fatalf("default arbiter = %T, want value FIFOArbiter", cfg.Arbiter)
	}
	if cfg.Placement.Name() != "scatter" {
		t.Fatalf("placement = %s", cfg.Placement.Name())
	}
	if cfg.LocalWork != 50*sim.Nanosecond || !cfg.WorkJitter || cfg.Seed != 99 {
		t.Fatalf("knobs wrong: %+v", cfg)
	}
	if cfg.Warmup != 20*sim.Microsecond || cfg.Duration != 200*sim.Microsecond {
		t.Fatalf("window defaults wrong: warmup=%v duration=%v", cfg.Warmup, cfg.Duration)
	}

	r := &Spec{Primitive: "FAA", Threads: 2, Arbiter: "random", Seed: 5}
	rcfg, err := r.Config(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rcfg.Arbiter.(*coherence.RandomArbiter); !ok {
		t.Fatalf("random arbiter = %T", rcfg.Arbiter)
	}
}

func TestSpecRegistry(t *testing.T) {
	names := SpecNames()
	if len(names) == 0 {
		t.Fatal("no embedded workload specs registered")
	}
	s, err := SpecByName("HIGH-FAA") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "high-faa" || s.Primitive != "FAA" {
		t.Fatalf("unexpected spec: %+v", s)
	}
	s.Threads, s.ThreadLadder = 4, nil // mutating the copy must not touch the registry
	again, err := SpecByName("high-faa")
	if err != nil {
		t.Fatal(err)
	}
	if len(again.ThreadLadder) == 0 {
		t.Fatal("SpecByName returned a shared mutable spec")
	}
	if _, err := SpecByName("no-such-workload"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := SelectSpecs("high-faa,high-faa", ""); err == nil {
		t.Fatal("duplicate selection accepted")
	}
	sel, err := SelectSpecs("high-faa,low-faa", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("SelectSpecs returned %d specs", len(sel))
	}
}

func TestRunSpecEndToEnd(t *testing.T) {
	s := &Spec{
		Primitive: "FAA", Threads: 2,
		WarmupPS: sim.Microsecond, DurationPS: 5 * sim.Microsecond, Seed: 1,
	}
	res, err := RunSpec(s, machine.Ideal(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.ThroughputMops <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
}
