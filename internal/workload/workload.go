// Package workload implements the paper's two benchmark settings — the
// high-contention setting (all threads hammer one shared cache line)
// and the low-contention setting (each thread works on private lines) —
// plus a read/write-mix variant, as closed-loop simulated workloads:
// each simulated thread repeatedly performs optional local work and one
// atomic primitive, and the harness measures latency, throughput,
// per-thread fairness, and energy over a warmed-up window.
//
// In the model pipeline (ARCHITECTURE.md) this package is the main
// benchmark driver: it assembles a machine description, a fresh
// simulation engine and an atomics.Memory into one measured cell, the
// simulated realization of the closed system MODEL.md §2 models
// analytically (§5 for the open-loop variant). Config.Metrics switches
// on the per-cell observability registry (internal/metrics).
package workload

import (
	"fmt"
	"reflect"
	"sync"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/energy"
	"atomicsmodel/internal/faults"
	"atomicsmodel/internal/invariant"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/metrics"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/stats"
)

// Mode selects the contention setting.
type Mode uint8

const (
	// HighContention: every thread targets the same line(s).
	HighContention Mode = iota
	// LowContention: every thread targets its own private lines.
	LowContention
	// ReadWriteMix: threads read a shared line with probability
	// ReadFraction and otherwise perform the RMW primitive on it.
	ReadWriteMix
)

func (m Mode) String() string {
	switch m {
	case HighContention:
		return "high-contention"
	case LowContention:
		return "low-contention"
	case ReadWriteMix:
		return "read-write-mix"
	}
	return "unknown"
}

// ParseMode resolves a mode display name (the String form) — the
// inverse modes round-trip through JSON workload specs by. The
// out-of-range placeholder "unknown" is not a mode and is rejected
// like any other misspelling.
func ParseMode(name string) (Mode, error) {
	for m := HighContention; m <= ReadWriteMix; m++ {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown mode %q (want %q, %q or %q)",
		name, HighContention, LowContention, ReadWriteMix)
}

// Config parameterizes one run.
type Config struct {
	Machine   *machine.Machine
	Arbiter   coherence.Arbiter // nil means FIFO
	Placement machine.Placement // nil means Compact
	Threads   int
	Primitive atomics.Primitive
	Mode      Mode
	// LocalWork is think time between operations (the paper's knob that
	// moves a workload from high to low contention). Zero means
	// back-to-back operations.
	LocalWork sim.Time
	// WorkJitter draws think times from an exponential distribution
	// with mean LocalWork instead of a constant.
	WorkJitter bool
	// Lines is how many lines each contention group uses: shared lines
	// in HighContention mode (default 1), private lines per thread in
	// LowContention mode (default 16).
	Lines int
	// ReadFraction applies in ReadWriteMix mode.
	ReadFraction float64
	// Warmup and Duration bound the run; only operations completing in
	// [Warmup, Warmup+Duration] are measured. Defaults: 20µs / 200µs.
	Warmup   sim.Time
	Duration sim.Time
	Seed     uint64
	// CASRetryLoop makes CAS threads retry until success (the lock-free
	// update loop) rather than counting each blind attempt as one op.
	// Either way failed attempts are recorded as failures.
	CASRetryLoop bool
	// OpenLoop switches from the closed-loop (issue, wait, think,
	// repeat) pattern to an open-loop arrival process: each thread
	// issues operations at exponentially distributed inter-arrival
	// times with mean OpenLoopInterarrival, without waiting for
	// completions. Past the line's saturation point the latency grows
	// without bound — the knee the model places at 1/serviceTime.
	OpenLoop bool
	// OpenLoopInterarrival is the per-thread mean inter-arrival time
	// (required when OpenLoop is set).
	OpenLoopInterarrival sim.Time
	// Metrics enables the per-cell observability registry: coherence
	// transfer/invalidation/queue-depth instruments, engine counters,
	// and the workload's own retry and per-thread counters, snapshotted
	// over the measured window into Result.Metrics. Off (the default)
	// costs one nil check per instrumented site and changes no results.
	Metrics bool
	// Check installs the online invariant checker (internal/invariant)
	// on this cell's engine and coherence system; a violation fails the
	// run with a deterministic report. Off (the default) costs one nil
	// check per audited site and changes no results.
	Check bool
	// Faults is this cell's simulation-layer fault plan
	// (internal/faults); nil (the default) injects nothing.
	Faults *faults.CellPlan
}

func (c *Config) fillDefaults() error {
	if c.Machine == nil {
		return fmt.Errorf("workload: Machine is required")
	}
	if err := c.Machine.Validate(); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	if c.Threads <= 0 {
		return fmt.Errorf("workload: Threads = %d", c.Threads)
	}
	if c.Placement == nil {
		c.Placement = machine.Compact{}
	}
	if c.Lines <= 0 {
		if c.Mode == LowContention {
			c.Lines = 16
		} else {
			c.Lines = 1
		}
	}
	if c.Warmup <= 0 {
		c.Warmup = 20 * sim.Microsecond
	}
	if c.Duration <= 0 {
		c.Duration = 200 * sim.Microsecond
	}
	if c.Mode == ReadWriteMix && (c.ReadFraction < 0 || c.ReadFraction > 1) {
		return fmt.Errorf("workload: ReadFraction %v out of [0,1]", c.ReadFraction)
	}
	if c.Mode != ReadWriteMix && c.ReadFraction != 0 {
		return fmt.Errorf("workload: ReadFraction %v has no effect in %s mode", c.ReadFraction, c.Mode)
	}
	if c.OpenLoop {
		if c.OpenLoopInterarrival <= 0 {
			return fmt.Errorf("workload: OpenLoop requires a positive OpenLoopInterarrival")
		}
		if c.CASRetryLoop {
			return fmt.Errorf("workload: OpenLoop and CASRetryLoop are mutually exclusive")
		}
	} else if c.OpenLoopInterarrival != 0 {
		return fmt.Errorf("workload: OpenLoopInterarrival %v has no effect without OpenLoop", c.OpenLoopInterarrival)
	}
	return nil
}

// Result reports one run's measurements. Everything the harness
// renders from a Result survives a JSON round trip byte-exactly — the
// experiment resume cache depends on it. Config is deliberately
// excluded (it holds the machine and interface-typed knobs); table
// assembly must not read it back out of a Result.
type Result struct {
	Config Config `json:"-"`
	// Ops counts successful operations completed in the measured
	// window (failed CAS attempts are not ops).
	Ops uint64
	// Attempts counts all completed primitives including failed CAS.
	Attempts uint64
	// Failures counts failed CAS attempts.
	Failures uint64
	// PerThreadOps is successful ops per logical thread, for fairness.
	PerThreadOps []uint64
	// Latency is the distribution of per-attempt latencies. For CAS
	// retry loops, SuccessLatency additionally measures read-to-success
	// spans (the cost of getting one update done).
	Latency        *stats.Histogram
	SuccessLatency *stats.Histogram
	// MeasuredFor is the measurement window length.
	MeasuredFor sim.Time
	// ThroughputMops is successful ops per second, in millions.
	ThroughputMops float64
	// Fairness metrics over PerThreadOps.
	Jain, CoV, MinMax float64
	// Energy is the energy report for the measured window.
	Energy energy.Report
	// Coh is the coherence counter delta for the measured window.
	Coh coherence.Stats
	// Metrics is the per-cell metrics snapshot over the measured window
	// (nil unless Config.Metrics was set). It rides the JSON encoding,
	// so cached cells replay it byte-identically on resume.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// MetricsSnapshot exposes the cell's metrics snapshot to the harness
// (nil when metrics were off). It implements the interface the cell
// scheduler uses to deliver snapshots to a MetricsCollector.
func (r *Result) MetricsSnapshot() *metrics.Snapshot { return r.Metrics }

// CellStats reports the simulated window and op count for run
// manifests (harness cell records).
func (r *Result) CellStats() (sim.Time, uint64) {
	return r.MeasuredFor, r.Ops
}

// SuccessRate returns Ops/Attempts (1 when there were no attempts).
func (r *Result) SuccessRate() float64 {
	if r.Attempts == 0 {
		return 1
	}
	return float64(r.Ops) / float64(r.Attempts)
}

// thread is one simulated worker.
type thread struct {
	id   int
	core int
	rng  *sim.RNG
	// lines this thread operates on (shared or private per Mode).
	lines []coherence.LineID
	next  int
	// lastSeen drives the CAS expected value.
	lastSeen uint64
	// spanStart marks the start of the current CAS retry span.
	spanStart sim.Time
	inSpan    bool
	// expected is the CAS expected value captured at issue time, read by
	// the prebaked casDone callback. Valid in closed-loop runs, where a
	// thread has at most one operation in flight.
	expected uint64
	// Prebaked per-thread callbacks, built once when the thread object is
	// created (thread objects live as long as their pooled runner) so the
	// hot issue/complete loop does not allocate a closure per operation.
	opDone    func(atomics.Result)
	casDone   func(atomics.Result)
	operateFn func()
	stepFn    func()
}

type runner struct {
	cfg   Config
	eng   *sim.Engine
	mem   *atomics.Memory
	meter *energy.Meter

	// threads holds every thread object ever built for this runner;
	// a run uses the first cfg.Threads of them. Thread objects (and
	// their prebaked closures) survive pooling.
	threads   []*thread
	measuring bool
	endAt     sim.Time

	ops      uint64
	attempts uint64
	failures uint64
	perOps   []uint64
	lat      *stats.Histogram
	slat     *stats.Histogram

	// Measurement-window baselines captured by warmupFn.
	cohAtMeasure  coherence.Stats
	procAtMeasure uint64
	qtAtMeasure   sim.Time
	warmupFn      func()
	// root seeds the per-thread RNG streams; coreSeen is scratch for
	// counting distinct cores. Both are reused across runs.
	root     *sim.RNG
	coreSeen []bool
	// traceFn is the meter's Observe bound once at build time; taking
	// the method value per run would allocate a closure per cell.
	traceFn func(coherence.TraceEvent)

	// Steady-state cycle memoizer (fastforward.go). memoArmed is the
	// per-run eligibility verdict; probeFn and traceRecFn are the
	// prebaked engine idle hook and recording tracer.
	memo       memoState
	memoArmed  bool
	probeFn    func()
	traceRecFn func(coherence.TraceEvent)
	// Placement cache: sweeps run many cells with the same policy and
	// thread count on one machine, so the slot assignment (a pure
	// function of those) is reused instead of recomputed.
	lastPlacement machine.Placement
	lastThreads   int
	lastSlots     []int

	// Optional metrics instruments (nil when Config.Metrics is off; all
	// operations on them are nil-safe no-ops).
	reg        *metrics.Registry
	mThreadOps *metrics.Vector
	mFailures  *metrics.Counter
	mReads     *metrics.Counter
	mRMWs      *metrics.Counter
}

// cellPools recycles runners per machine description (keyed by the
// *machine.Machine pointer, because the coherence parameters and dense
// topology tables baked into a pooled system are machine-specific).
// Acquiring a pooled runner resets its engine, memory, and meter to
// their just-built state, so a reused cell is byte-identical to a fresh
// one — teardown is a handful of pointer resets instead of discarding
// the event queues, request pools, directory entries, and thread
// closures to the GC. This is what holds steady-state cells at zero
// allocations on the simulation path.
//
// A plain mutex-guarded freelist rather than sync.Pool: the runtime
// clears sync.Pool contents on GC cycles, which would silently discard
// warmed-up cells mid-sweep and re-pay the full build cost. The
// freelist is bounded by the peak number of concurrent cells per
// machine, which the parallel scheduler already caps at GOMAXPROCS.
var cellPools sync.Map // *machine.Machine -> *runnerPool

type runnerPool struct {
	mu   sync.Mutex
	free []*runner
}

func acquireRunner(m *machine.Machine) (*runner, error) {
	pi, ok := cellPools.Load(m)
	if !ok {
		pi, _ = cellPools.LoadOrStore(m, &runnerPool{})
	}
	p := pi.(*runnerPool)
	p.mu.Lock()
	var r *runner
	if n := len(p.free); n > 0 {
		r = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	if r != nil {
		r.eng.Reset()
		r.mem.Reset()
		r.meter.Reset()
		return r, nil
	}
	return newRunner(m)
}

func releaseRunner(m *machine.Machine, r *runner) {
	if pi, ok := cellPools.Load(m); ok {
		p := pi.(*runnerPool)
		p.mu.Lock()
		p.free = append(p.free, r)
		p.mu.Unlock()
	}
}

// engineShardOverride, when nonzero, replaces the topology-derived
// event-queue shard count for newly built runners (see SetEngineShards).
var engineShardOverride int

// SetEngineShards forces every subsequently built cell engine to n
// event-queue shards (0 restores the topology-derived default) and
// drops all pooled runners, which were built with the old layout. It is
// a test hook: the determinism suite uses it to prove cell results are
// invariant to the shard count.
func SetEngineShards(n int) {
	engineShardOverride = n
	cellPools.Range(func(k, _ any) bool {
		cellPools.Delete(k)
		return true
	})
}

// newRunner builds the per-cell simulation state for machine m: the
// sharded engine (one queue shard per topology node, so a line's
// completion traffic stays in its home directory's shard), the memory
// with its coherence system, and the energy meter.
func newRunner(m *machine.Machine) (*runner, error) {
	shards := m.CoherenceParams().Topo.Nodes()
	if engineShardOverride > 0 {
		shards = engineShardOverride
	}
	eng := sim.NewEngineSharded(shards)
	mem, err := atomics.NewMemory(eng, m, nil)
	if err != nil {
		return nil, err
	}
	r := &runner{eng: eng, mem: mem, meter: energy.NewMeter(m), root: sim.NewRNG(0)}
	r.traceFn = r.meter.Observe
	r.warmupFn = func() {
		r.measuring = true
		r.meter.Reset()
		r.cohAtMeasure = r.mem.System().Stats()
		r.procAtMeasure = r.eng.Processed()
		r.qtAtMeasure = r.eng.QueueTimeIntegral()
		// Zero the instruments so the snapshot, like every other
		// reported number, covers exactly the measured window.
		r.reg.Reset()
		if r.memoArmed {
			// Re-arm the cycle memoizer for the measured window: the
			// marker has fired, so the queue holds only the pending
			// completion (want = 1), and this probe sits mid-service at
			// the warmup boundary, a phase the cycle never revisits
			// (skip = 1).
			r.memoArm(1, 1, r.endAt)
		}
	}
	r.probeFn = r.probe
	r.traceRecFn = func(ev coherence.TraceEvent) {
		switch r.memo.phase {
		case memoRecord:
			r.memo.evsA = append(r.memo.evsA, ev)
		case memoVerify:
			r.memo.evsB = append(r.memo.evsB, ev)
		}
		r.meter.Observe(ev)
	}
	return r, nil
}

// placeThreads resolves thread placement, reusing the previous run's
// slot assignment when the policy and thread count repeat (placement is
// a pure function of machine, policy, and count; the machine is fixed
// by the pool key).
func (r *runner) placeThreads(cfg *Config) ([]int, error) {
	if r.lastSlots != nil && r.lastThreads == cfg.Threads && placementEqual(r.lastPlacement, cfg.Placement) {
		return r.lastSlots, nil
	}
	slots, err := cfg.Placement.Place(cfg.Machine, cfg.Threads)
	if err != nil {
		return nil, err
	}
	r.lastPlacement, r.lastThreads, r.lastSlots = cfg.Placement, cfg.Threads, slots
	return slots, nil
}

// placementEqual reports whether two placement values are the same
// policy, without panicking on uncomparable dynamic types.
func placementEqual(a, b machine.Placement) bool {
	ta := reflect.TypeOf(a)
	if ta == nil || ta != reflect.TypeOf(b) || !ta.Comparable() {
		return false
	}
	return a == b
}

// ensureThreads grows the runner's thread set to n objects, building
// each new thread's prebaked callbacks exactly once.
func (r *runner) ensureThreads(n int) {
	for len(r.threads) < n {
		th := &thread{id: len(r.threads)}
		th.opDone = func(res atomics.Result) { r.complete(th, res, true) }
		th.casDone = func(res atomics.Result) {
			th.lastSeen = res.Old
			if res.OK {
				th.lastSeen = th.expected + 1
			}
			r.complete(th, res, res.OK)
		}
		th.operateFn = func() { r.operate(th) }
		th.stepFn = func() { r.step(th) }
		r.threads = append(r.threads, th)
	}
}

// Run executes one configured workload and returns its measurements.
func Run(cfg Config) (*Result, error) { return RunReusing(cfg, nil) }

// RunReusing is Run with an optional recycled Result: when recycle is
// non-nil, its PerThreadOps slice and Latency/SuccessLatency histograms
// are emptied and reused instead of freshly allocated, and the returned
// pointer is recycle itself. The caller must own recycle outright —
// harness tables and the resume cache retain Results, so anything that
// outlives the call must use Run. Benchmarks use RunReusing to measure
// the simulation itself at zero allocations per cell.
func RunReusing(cfg Config, recycle *Result) (*Result, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	r, err := acquireRunner(cfg.Machine)
	if err != nil {
		return nil, err
	}
	slots, err := r.placeThreads(&cfg)
	if err != nil {
		return nil, err
	}
	eng, mem := r.eng, r.mem
	mem.System().SetArbiter(cfg.Arbiter)
	mem.System().SetTracer(r.traceFn)
	var reg *metrics.Registry
	if cfg.Metrics {
		reg = metrics.New()
	}
	r.reg = reg
	mem.System().InstallMetrics(reg) // nil registry = off
	var chk *invariant.Checker
	if cfg.Check {
		chk = invariant.Install(eng, mem.System())
	}
	cfg.Faults.Install(eng, mem)

	r.cfg = cfg
	r.measuring = false
	r.endAt = cfg.Warmup + cfg.Duration
	r.memo.phase = memoOff
	r.memoArmed = fastForwardOn && memoEligible(&cfg)
	if r.memoArmed {
		eng.SetIdleHook(r.probeFn)
		// Pre-warmup pass: the warmup marker is still pending alongside
		// the completion (want = 2) and bounds the jump; skip past the
		// startup convoy and the cold-miss fill (about one rotation)
		// before fingerprinting — a capture taken too early just fails
		// its bounded search and is retaken.
		r.memoArm(2, cfg.Threads+4, cfg.Warmup)
	}
	r.ops, r.attempts, r.failures = 0, 0, 0
	r.cohAtMeasure = coherence.Stats{}
	r.procAtMeasure = 0
	r.qtAtMeasure = 0
	r.mThreadOps = reg.Vector(metrics.WorkThreadOps, cfg.Threads)
	r.mFailures = reg.Counter(metrics.WorkCASFailures)
	r.mReads = reg.Counter(metrics.WorkReads)
	r.mRMWs = reg.Counter(metrics.WorkRMWs)

	// Measurement buffers escape into the Result, so they are fresh
	// unless the caller handed back a recycled Result to reuse.
	if recycle != nil && cap(recycle.PerThreadOps) >= cfg.Threads {
		r.perOps = recycle.PerThreadOps[:cfg.Threads]
		for i := range r.perOps {
			r.perOps[i] = 0
		}
	} else {
		r.perOps = make([]uint64, cfg.Threads)
	}
	if recycle != nil && recycle.Latency != nil {
		r.lat = recycle.Latency
		r.lat.Reset()
	} else {
		r.lat = stats.NewHistogram()
	}
	if recycle != nil && recycle.SuccessLatency != nil {
		r.slat = recycle.SuccessLatency
		r.slat.Reset()
	} else {
		r.slat = stats.NewHistogram()
	}

	r.ensureThreads(cfg.Threads)
	r.root.Reseed(cfg.Seed)
	for i := 0; i < cfg.Threads; i++ {
		th := r.threads[i]
		th.core = cfg.Machine.CoreOf(slots[i])
		if th.rng == nil {
			th.rng = r.root.Split()
		} else {
			r.root.SplitInto(th.rng)
		}
		th.next, th.lastSeen, th.expected = 0, 0, 0
		th.spanStart, th.inSpan = 0, false
		r.linesFor(th, i)
	}

	// Stagger thread starts by a few ns so the initial convoy is not an
	// artifact of simultaneous issue. Open-loop threads instead run an
	// arrival process that issues without waiting for completions.
	for _, th := range r.threads[:cfg.Threads] {
		th := th
		if cfg.OpenLoop {
			// The closure reads the interarrival through r.cfg rather
			// than cfg so that cfg (a large struct) is not captured —
			// capturing it would force the whole Config to the heap on
			// every call, open-loop or not.
			var arrive func()
			arrive = func() {
				if eng.Now() >= r.endAt {
					return
				}
				r.operate(th)
				eng.Schedule(th.rng.Exp(r.cfg.OpenLoopInterarrival), arrive)
			}
			eng.Schedule(th.rng.Exp(r.cfg.OpenLoopInterarrival), arrive)
			continue
		}
		eng.Schedule(th.rng.Duration(10*sim.Nanosecond), th.stepFn)
	}

	eng.At(cfg.Warmup, r.warmupFn)

	eng.Run(r.endAt)

	if r.memoArmed {
		// The run may have ended mid-recording; put the plain tracer
		// back before the runner returns to the pool.
		mem.System().SetTracer(r.traceFn)
		eng.SetIdleHook(nil)
	}

	if chk != nil {
		// Finalize subsumes CheckInvariants and adds the online ledgers.
		if err := chk.Finalize(); err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
	} else if err := mem.System().CheckInvariants(); err != nil {
		return nil, fmt.Errorf("workload: coherence invariant violated: %w", err)
	}

	cohEnd := mem.System().Stats()
	numCores := mem.System().Params().NumCores
	if cap(r.coreSeen) < numCores {
		r.coreSeen = make([]bool, numCores)
	}
	coreSeen := r.coreSeen[:numCores]
	for i := range coreSeen {
		coreSeen[i] = false
	}
	coresUsed := 0
	for _, th := range r.threads[:cfg.Threads] {
		if !coreSeen[th.core] {
			coreSeen[th.core] = true
			coresUsed++
		}
	}
	res := recycle
	if res == nil {
		res = &Result{}
	}
	*res = Result{
		Config:         cfg,
		Ops:            r.ops,
		Attempts:       r.attempts,
		Failures:       r.failures,
		PerThreadOps:   r.perOps,
		Latency:        r.lat,
		SuccessLatency: r.slat,
		MeasuredFor:    cfg.Duration,
		ThroughputMops: stats.Throughput(r.ops, cfg.Duration) / 1e6,
		Jain:           stats.JainIndex(r.perOps),
		CoV:            stats.CoV(r.perOps),
		MinMax:         stats.MinMaxRatio(r.perOps),
		Energy:         r.meter.Report(cfg.Duration, cfg.Threads, coresUsed, r.ops),
		Coh:            subStats(cohEnd, r.cohAtMeasure),
	}
	if reg != nil {
		reg.Counter(metrics.SimEvents).Add(eng.Processed() - r.procAtMeasure)
		reg.Counter(metrics.SimQueuePeak).Add(uint64(eng.MaxPending()))
		reg.Counter(metrics.SimQueueTime).Add(uint64(eng.QueueTimeIntegral() - r.qtAtMeasure))
		reg.Counter(metrics.WorkWindow).Add(uint64(cfg.Duration))
		res.Metrics = reg.Snapshot()
	}
	releaseRunner(cfg.Machine, r)
	return res, nil
}

// linesFor assigns the lines thread i operates on, reusing the thread's
// line slice. Shared lines start at ID 1; private regions are spaced
// far apart so home nodes spread.
func (r *runner) linesFor(th *thread, i int) {
	out := th.lines[:0]
	switch r.cfg.Mode {
	case LowContention:
		base := coherence.LineID(1_000_000 + i*4096)
		for j := 0; j < r.cfg.Lines; j++ {
			out = append(out, base+coherence.LineID(j))
		}
	default:
		for j := 0; j < r.cfg.Lines; j++ {
			out = append(out, coherence.LineID(1+j))
		}
	}
	th.lines = out
}

// step runs one think-then-operate iteration of a thread.
func (r *runner) step(th *thread) {
	if r.eng.Now() >= r.endAt {
		return
	}
	think := r.cfg.LocalWork
	if think > 0 && r.cfg.WorkJitter {
		think = th.rng.Exp(think)
	}
	if think > 0 {
		r.eng.Schedule(think, th.operateFn)
	} else {
		r.operate(th)
	}
}

func (r *runner) operate(th *thread) {
	if r.eng.Now() >= r.endAt {
		return
	}
	line := th.lines[th.next]
	th.next = (th.next + 1) % len(th.lines)

	p := r.cfg.Primitive
	if r.cfg.Mode == ReadWriteMix && th.rng.Float64() < r.cfg.ReadFraction {
		p = atomics.Load
	}
	if p == atomics.Load {
		r.mReads.Inc()
	} else {
		r.mRMWs.Inc()
	}

	switch p {
	case atomics.CAS, atomics.CAS2:
		if !th.inSpan {
			th.inSpan = true
			th.spanStart = r.eng.Now()
		}
		expected := th.lastSeen
		if r.cfg.OpenLoop {
			// Open-loop threads can have several CASes in flight, each
			// needing the expected value it was issued with — so this
			// path keeps the per-op closure.
			r.mem.Do(p, th.core, line, expected, expected+1, func(res atomics.Result) {
				th.lastSeen = res.Old
				if res.OK {
					th.lastSeen = expected + 1
				}
				r.complete(th, res, res.OK)
			})
			return
		}
		th.expected = expected
		r.mem.Do(p, th.core, line, expected, expected+1, th.casDone)
	default:
		r.mem.Do(p, th.core, line, 1, 0, th.opDone)
	}
}

// complete records one finished attempt and schedules the next step.
func (r *runner) complete(th *thread, res atomics.Result, ok bool) {
	if r.measuring && r.eng.Now() <= r.endAt {
		r.attempts++
		r.lat.Record(res.Latency)
		if ok {
			r.ops++
			r.perOps[th.id]++
			r.mThreadOps.Inc(th.id)
		} else {
			r.failures++
			r.mFailures.Inc()
		}
		if ok && th.inSpan {
			r.slat.Record(r.eng.Now() - th.spanStart)
		}
	}
	if ok {
		th.inSpan = false
	}
	if r.cfg.OpenLoop {
		// Arrivals drive issue; completions do not chain.
		return
	}
	if (r.cfg.Primitive == atomics.CAS || r.cfg.Primitive == atomics.CAS2) && r.cfg.CASRetryLoop && !ok {
		// Retry immediately (the failed CAS already told us the value).
		r.operate(th)
		return
	}
	r.step(th)
}

func subStats(a, b coherence.Stats) coherence.Stats {
	return coherence.Stats{
		Accesses:    a.Accesses - b.Accesses,
		LocalHits:   a.LocalHits - b.LocalHits,
		RemoteXfers: a.RemoteXfers - b.RemoteXfers,
		LLCFills:    a.LLCFills - b.LLCFills,
		DRAMFills:   a.DRAMFills - b.DRAMFills,
		Invals:      a.Invals - b.Invals,
		TotalHops:   a.TotalHops - b.TotalHops,
		CrossSocket: a.CrossSocket - b.CrossSocket,
		MaxQueueLen: a.MaxQueueLen,
		LinkStall:   a.LinkStall - b.LinkStall,
	}
}
