package machine

import (
	"testing"

	"atomicsmodel/internal/sim"
)

func TestXeonE5Shape(t *testing.T) {
	m := XeonE5()
	if m.NumCores() != 36 {
		t.Errorf("cores = %d, want 36", m.NumCores())
	}
	if m.NumHWThreads() != 72 {
		t.Errorf("hw threads = %d, want 72", m.NumHWThreads())
	}
	if m.Topo.Nodes() != 36 {
		t.Errorf("nodes = %d, want 36", m.Topo.Nodes())
	}
	// Slot 40 is the second hyperthread of core 4.
	if m.CoreOf(40) != 4 {
		t.Errorf("CoreOf(40) = %d, want 4", m.CoreOf(40))
	}
	if m.SocketOf(17) != 0 || m.SocketOf(18) != 1 {
		t.Error("socket boundary wrong")
	}
}

func TestKNLShape(t *testing.T) {
	m := KNL()
	if m.NumCores() != 64 || m.NumHWThreads() != 256 {
		t.Errorf("KNL %d cores %d threads", m.NumCores(), m.NumHWThreads())
	}
	// Cores 0 and 1 share tile 0; cores 62,63 share tile 31.
	if m.NodeOf(0) != 0 || m.NodeOf(1) != 0 {
		t.Error("cores 0,1 should share tile 0")
	}
	if m.NodeOf(63) != 31 {
		t.Errorf("NodeOf(63) = %d, want 31", m.NodeOf(63))
	}
	if m.NodeOf(63) >= m.Topo.Nodes() {
		t.Error("tile outside mesh")
	}
}

func TestCyclesConversion(t *testing.T) {
	m := XeonE5() // 2.4 GHz: 1 cycle = 416.66 ps
	c := m.Cycles(24)
	want := sim.Time(10 * sim.Nanosecond)
	if c != want {
		t.Errorf("Cycles(24) = %v, want %v", c, want)
	}
	if got := m.ToCycles(10 * sim.Nanosecond); got != 24 {
		t.Errorf("ToCycles(10ns) = %v, want 24", got)
	}
}

func TestLatencyOrdering(t *testing.T) {
	for _, m := range All() {
		l := m.Lat
		if !(l.L1Hit < l.LLCHit && l.LLCHit < l.DRAM) {
			t.Errorf("%s: L1 < LLC < DRAM violated: %v %v %v", m.Name, l.L1Hit, l.LLCHit, l.DRAM)
		}
		if l.ExecFAA > l.ExecCAS {
			t.Errorf("%s: FAA should not be pricier than CAS", m.Name)
		}
		if l.ExecLoad > l.ExecStore || l.ExecStore > l.ExecTAS {
			t.Errorf("%s: exec ordering load <= store <= tas violated", m.Name)
		}
	}
}

func TestUncontendedAtomicMagnitude(t *testing.T) {
	// Sanity: an owned-line FAA on Xeon should land near the published
	// ~21 cycles (~8.75 ns); on KNL it should be markedly slower.
	x := XeonE5()
	faa := x.Lat.L1Hit + x.Lat.ExecFAA
	if cyc := x.ToCycles(faa); cyc < 15 || cyc > 30 {
		t.Errorf("Xeon owned-line FAA = %.1f cycles, want ~21", cyc)
	}
	k := KNL()
	if k.Lat.L1Hit+k.Lat.ExecFAA <= faa {
		t.Error("KNL atomic should be slower than Xeon in wall time")
	}
}

func TestCoherenceParamsValid(t *testing.T) {
	for _, m := range All() {
		p := m.CoherenceParams()
		if p.NumCores != m.NumCores() {
			t.Errorf("%s params cores", m.Name)
		}
		for c := 0; c < p.NumCores; c++ {
			n := p.NodeOf(c)
			if n < 0 || n >= p.Topo.Nodes() {
				t.Errorf("%s: core %d -> node %d out of range", m.Name, c, n)
			}
		}
	}
}

func TestCoreOfPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	XeonE5().CoreOf(72)
}

func TestByName(t *testing.T) {
	for _, name := range []string{"XeonE5", "xeon", "KNL", "knl", "Ideal"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted junk")
	}
}

func TestStringHasKeyFacts(t *testing.T) {
	s := XeonE5().String()
	for _, want := range []string{"XeonE5", "2×18", "2.4"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func distinct(t *testing.T, slots []int) {
	t.Helper()
	seen := map[int]bool{}
	for _, s := range slots {
		if seen[s] {
			t.Fatalf("duplicate slot %d in %v", s, slots)
		}
		seen[s] = true
	}
}

func TestCompactPlacement(t *testing.T) {
	m := XeonE5()
	slots, err := Compact{}.Place(m, 36)
	if err != nil {
		t.Fatal(err)
	}
	distinct(t, slots)
	// 36 threads on 36 distinct cores, no hyperthread sharing.
	cores := map[int]bool{}
	for _, s := range slots {
		cores[m.CoreOf(s)] = true
	}
	if len(cores) != 36 {
		t.Fatalf("compact used %d cores, want 36", len(cores))
	}
	// First 18 threads all on socket 0.
	slots18, _ := Compact{}.Place(m, 18)
	for _, s := range slots18 {
		if m.SocketOf(m.CoreOf(s)) != 0 {
			t.Fatal("compact leaked to socket 1 before filling socket 0")
		}
	}
	// Oversubscribe into hyperthreads.
	slots72, err := Compact{}.Place(m, 72)
	if err != nil {
		t.Fatal(err)
	}
	distinct(t, slots72)
}

func TestScatterPlacement(t *testing.T) {
	m := XeonE5()
	slots, err := Scatter{}.Place(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	distinct(t, slots)
	// Alternating sockets: 0,1,0,1.
	want := []int{0, 1, 0, 1}
	for i, s := range slots {
		if m.SocketOf(m.CoreOf(s)) != want[i] {
			t.Fatalf("scatter sockets = %v at %d", slots, i)
		}
	}
}

func TestSMTFirstPlacement(t *testing.T) {
	m := KNL()
	slots, err := SMTFirst{}.Place(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	distinct(t, slots)
	// 8 threads, 4 per core: exactly 2 cores used.
	cores := map[int]bool{}
	for _, s := range slots {
		cores[m.CoreOf(s)] = true
	}
	if len(cores) != 2 {
		t.Fatalf("smt-first used %d cores, want 2", len(cores))
	}
}

func TestSingleSocketPlacement(t *testing.T) {
	m := XeonE5()
	slots, err := SingleSocket{Socket: 1}.Place(m, 30)
	if err != nil {
		t.Fatal(err)
	}
	distinct(t, slots)
	for _, s := range slots {
		if m.SocketOf(m.CoreOf(s)) != 1 {
			t.Fatal("thread escaped socket 1")
		}
	}
	if _, err := (SingleSocket{Socket: 1}).Place(m, 37); err == nil {
		t.Error("oversubscription accepted")
	}
	if _, err := (SingleSocket{Socket: 5}).Place(m, 1); err == nil {
		t.Error("bad socket accepted")
	}
}

func TestPlacementCapacityErrors(t *testing.T) {
	m := XeonE5()
	for _, p := range []Placement{Compact{}, Scatter{}, SMTFirst{}} {
		if _, err := p.Place(m, 0); err == nil {
			t.Errorf("%s accepted 0 threads", p.Name())
		}
		if _, err := p.Place(m, 73); err == nil {
			t.Errorf("%s accepted 73 threads", p.Name())
		}
		// Full capacity must work and be distinct.
		slots, err := p.Place(m, 72)
		if err != nil {
			t.Errorf("%s rejected full capacity: %v", p.Name(), err)
			continue
		}
		distinct(t, slots)
	}
}

func TestPlacementByName(t *testing.T) {
	for _, name := range []string{"compact", "scatter", "smt-first", "socket-0", "socket-1", ""} {
		if _, err := PlacementByName(name); err != nil {
			t.Errorf("PlacementByName(%q): %v", name, err)
		}
	}
	if _, err := PlacementByName("zigzag"); err == nil {
		t.Error("junk placement accepted")
	}
}

func TestXeonMultiSocket(t *testing.T) {
	m4 := XeonMultiSocket(4)
	if m4.NumCores() != 72 || m4.Sockets != 4 {
		t.Fatalf("4S shape: %d cores %d sockets", m4.NumCores(), m4.Sockets)
	}
	// Two-socket variant matches XeonE5's latencies and distances.
	m2 := XeonMultiSocket(2)
	base := XeonE5()
	if m2.Lat != base.Lat {
		t.Fatal("2S latency table diverged from XeonE5")
	}
	for a := 0; a < 36; a += 5 {
		for b := 0; b < 36; b += 7 {
			if m2.Topo.Hops(a, b) != base.Topo.Hops(a, b) {
				t.Fatalf("2S hops differ at (%d,%d)", a, b)
			}
		}
	}
	// Cross-socket classification spans all pairs on 4S.
	if !m4.Topo.CrossSocket(m4.NodeOf(0), m4.NodeOf(54)) {
		t.Fatal("socket 0 to socket 3 not cross-socket")
	}
	p := m4.CoherenceParams()
	for c := 0; c < p.NumCores; c++ {
		if n := p.NodeOf(c); n < 0 || n >= p.Topo.Nodes() {
			t.Fatalf("core %d maps to node %d outside topology", c, n)
		}
	}
}

func TestIdealMachine(t *testing.T) {
	m := Ideal(8)
	if m.NumCores() != 8 || m.NumHWThreads() != 8 {
		t.Error("ideal shape")
	}
	if m.Topo.Hops(0, 7) != 1 {
		t.Error("ideal should be 1-hop")
	}
}
