package machine

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"atomicsmodel/internal/topology"
)

// Spec is the declarative, serializable description of a machine: pure
// data — layout, frequency, cycle-denominated latency and occupancy
// tables, an energy table, a topology named from the builder registry
// (internal/topology), and a core→node map rule. Build turns a Spec
// into a validated *Machine; nothing else in the repo constructs
// machines, so a JSON spec file is a first-class machine definition
// with exactly the powers of a built-in preset.
//
// All timing constants are in cycles at FreqGHz (the form the
// calibration literature reports them in); Build converts them with
// Machine.Cycles, so a spec is frequency-portable: change FreqGHz and
// every latency rescales with it.
type Spec struct {
	// Name identifies the machine in tables, logs and -machines flags.
	Name string `json:"name"`
	// Doc is a one-line description for listings (optional).
	Doc string `json:"doc,omitempty"`
	// Aliases are additional ByName lookup keys (matched
	// case-insensitively, like Name itself).
	Aliases []string `json:"aliases,omitempty"`

	Sockets        int     `json:"sockets"`
	CoresPerSocket int     `json:"coresPerSocket"`
	ThreadsPerCore int     `json:"threadsPerCore"`
	FreqGHz        float64 `json:"freqGHz"`

	// Topology selects an interconnect from the topology builder
	// registry by kind and integer parameters.
	Topology TopoSpec `json:"topology"`
	// NodeMap is the core→topology-node rule.
	NodeMap NodeMapSpec `json:"nodeMap"`

	// LatencyCycles is the full timing table, in cycles at FreqGHz.
	LatencyCycles LatencyCycles `json:"latencyCycles"`
	// Energy is the per-event energy / static power table.
	Energy Energies `json:"energy"`

	// ForwardSharer enables MESIF-style sharer forwarding (ablation
	// knob; the presets ship with plain MESI).
	ForwardSharer bool `json:"forwardSharer,omitempty"`
	// LinkOccupancyCycles enables finite interconnect bandwidth: each
	// coherence message holds every link it crosses for this many
	// cycles. Zero means infinite bandwidth.
	LinkOccupancyCycles float64 `json:"linkOccupancyCycles,omitempty"`
	// StoreBufferDepth enables TSO store buffering (0 = synchronous
	// stores; the ablation uses the Haswell-class 42).
	StoreBufferDepth int `json:"storeBufferDepth,omitempty"`
}

// TopoSpec names a topology builder and its parameters (see
// topology.Build; booleans are 0/1).
type TopoSpec struct {
	Kind   string          `json:"kind"`
	Params topology.Params `json:"params,omitempty"`
}

// NodeMapSpec is the declarative core→node rule. Kinds:
//
//	"identity" — node i is core i (one network stop per core); the
//	             default when Kind is empty.
//	"div"      — node is core / Div (Div cores share a stop: KNL's
//	             2-core tiles, an EPYC CCD's 8 cores on one leaf).
type NodeMapSpec struct {
	Kind string `json:"kind,omitempty"`
	Div  int    `json:"div,omitempty"`
}

// LatencyCycles mirrors Latencies field-for-field, denominated in
// cycles at the spec's FreqGHz (see Latencies for what each constant
// means).
type LatencyCycles struct {
	L1Hit              float64 `json:"l1Hit"`
	DirLookup          float64 `json:"dirLookup"`
	HopLatency         float64 `json:"hopLatency"`
	CrossSocketPenalty float64 `json:"crossSocketPenalty"`
	LLCHit             float64 `json:"llcHit"`
	DRAM               float64 `json:"dram"`
	InvalidateCost     float64 `json:"invalidateCost"`

	ExecCAS   float64 `json:"execCAS"`
	ExecFAA   float64 `json:"execFAA"`
	ExecSWAP  float64 `json:"execSWAP"`
	ExecTAS   float64 `json:"execTAS"`
	ExecCAS2  float64 `json:"execCAS2"`
	ExecFence float64 `json:"execFence"`
	ExecLoad  float64 `json:"execLoad"`
	ExecStore float64 `json:"execStore"`
}

// Clone returns a deep copy; callers derive variant machines (a socket
// sweep, a tweaked constant) by cloning a preset's spec and rebuilding.
func (s *Spec) Clone() *Spec {
	out := *s
	out.Aliases = append([]string(nil), s.Aliases...)
	out.Topology.Params = s.Topology.Params.Clone()
	return &out
}

// Canonical returns the spec's canonical JSON encoding — fixed field
// order, sorted parameter keys, no insignificant whitespace — the bytes
// the digest is computed over. Two specs that build identical machines
// canonicalize identically regardless of the formatting (or key order)
// of the files they were loaded from.
func (s *Spec) Canonical() ([]byte, error) {
	return json.Marshal(s)
}

// Digest returns a short hex digest of the canonical encoding. It is
// the machine's identity in harness cell cache keys (Machine.Key): a
// custom spec file that shadows a preset's name — or a tweaked spec
// resuming over its previous self — lands in its own cache namespace.
func (s *Spec) Digest() (string, error) {
	raw, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])[:12], nil
}

// ParseSpec decodes a JSON machine spec. Unknown fields and trailing
// garbage are errors: a spec file is user input, and a typo that
// silently drops a latency constant would produce confidently wrong
// tables.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("machine spec: %w", err)
	}
	var trailer json.RawMessage
	if err := dec.Decode(&trailer); err != io.EOF {
		return nil, fmt.Errorf("machine spec: trailing data after the spec object")
	}
	return &s, nil
}

// LoadSpecFile reads, parses, validates and builds a machine from a
// JSON spec file (the CLIs' -machinefile path).
func LoadSpecFile(path string) (*Machine, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("machine spec %s: %w", path, err)
	}
	s, err := ParseSpec(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m, err := s.Build()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// Build turns the spec into a validated *Machine: the topology is
// constructed from the builder registry, cycle counts become simulated
// times at FreqGHz, the node map rule becomes the core→node function,
// and the result carries the spec's digest as its cache identity.
// Build never returns a machine that fails Machine.Validate.
func (s *Spec) Build() (*Machine, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("machine spec: empty name")
	}
	if s.FreqGHz <= 0 {
		return nil, fmt.Errorf("machine %s: freqGHz = %g (want > 0)", s.Name, s.FreqGHz)
	}
	// Bound the layout before Validate walks every core: specs are user
	// input, and a simulated machine beyond this size is a typo, not a
	// plan.
	const maxHWThreads = 1 << 16
	for _, dim := range []struct {
		name string
		v    int
	}{{"sockets", s.Sockets}, {"coresPerSocket", s.CoresPerSocket}, {"threadsPerCore", s.ThreadsPerCore}} {
		if dim.v <= 0 || dim.v > maxHWThreads {
			return nil, fmt.Errorf("machine %s: %s = %d (want 1..%d)", s.Name, dim.name, dim.v, maxHWThreads)
		}
	}
	if total := int64(s.Sockets) * int64(s.CoresPerSocket) * int64(s.ThreadsPerCore); total > maxHWThreads {
		return nil, fmt.Errorf("machine %s: %d hardware threads (max %d)", s.Name, total, maxHWThreads)
	}
	topo, err := topology.Build(s.Topology.Kind, s.Topology.Params)
	if err != nil {
		return nil, fmt.Errorf("machine %s: %w", s.Name, err)
	}
	digest, err := s.Digest()
	if err != nil {
		return nil, fmt.Errorf("machine %s: %w", s.Name, err)
	}
	m := &Machine{
		Name:             s.Name,
		Sockets:          s.Sockets,
		CoresPerSocket:   s.CoresPerSocket,
		ThreadsPerCore:   s.ThreadsPerCore,
		FreqGHz:          s.FreqGHz,
		Topo:             topo,
		ForwardSharer:    s.ForwardSharer,
		StoreBufferDepth: s.StoreBufferDepth,
		digest:           digest,
	}
	switch s.NodeMap.Kind {
	case "", "identity":
		m.nodeOf = func(core int) int { return core }
	case "div":
		div := s.NodeMap.Div
		if div <= 0 {
			return nil, fmt.Errorf("machine %s: nodeMap div = %d (want > 0)", s.Name, div)
		}
		m.nodeOf = func(core int) int { return core / div }
	default:
		return nil, fmt.Errorf("machine %s: unknown nodeMap kind %q (want identity or div)", s.Name, s.NodeMap.Kind)
	}
	lc := s.LatencyCycles
	m.Lat = Latencies{
		L1Hit:              m.Cycles(lc.L1Hit),
		DirLookup:          m.Cycles(lc.DirLookup),
		HopLatency:         m.Cycles(lc.HopLatency),
		CrossSocketPenalty: m.Cycles(lc.CrossSocketPenalty),
		LLCHit:             m.Cycles(lc.LLCHit),
		DRAM:               m.Cycles(lc.DRAM),
		InvalidateCost:     m.Cycles(lc.InvalidateCost),
		ExecCAS:            m.Cycles(lc.ExecCAS),
		ExecFAA:            m.Cycles(lc.ExecFAA),
		ExecSWAP:           m.Cycles(lc.ExecSWAP),
		ExecTAS:            m.Cycles(lc.ExecTAS),
		ExecCAS2:           m.Cycles(lc.ExecCAS2),
		ExecFence:          m.Cycles(lc.ExecFence),
		ExecLoad:           m.Cycles(lc.ExecLoad),
		ExecStore:          m.Cycles(lc.ExecStore),
	}
	m.Energy = s.Energy
	m.LinkOccupancy = m.Cycles(s.LinkOccupancyCycles)
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
