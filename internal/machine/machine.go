// Package machine describes simulated architectures as parameter
// tables for the coherence simulator: core/socket/SMT layout,
// interconnect topology, latency constants, per-primitive execution
// costs, and a power/energy table.
//
// Machines are declarative: every built-in — the paper's two-socket
// Intel Xeon E5 and Intel Xeon Phi (Knights Landing), plus an
// EPYC-like chiplet part and a mesh-uncore Xeon Scalable — is a JSON
// Spec embedded in this package (specs/*.json) and built by
// Spec.Build, the single constructor. A user-supplied spec file
// (LoadSpecFile, the CLIs' -machinefile flag) is a first-class machine
// with exactly the powers of a preset. ByName resolves presets from
// the registry; a Machine carries its spec's digest (Key) so harness
// resume caches distinguish machines by content, not by name.
//
// The preset latency constants are calibrated against publicly
// reported numbers for the real parts (L1 ≈ 4 cycles; Xeon
// same-socket cache-to-cache ≈ 25 ns, cross-socket ≈ 90–130 ns; KNL
// tile-to-tile ≈ 100–150 ns; locked RMW ≈ 20 cycles on an owned line
// on Xeon, considerably slower on KNL). The reproduction targets the
// *shape* of the paper's results; DESIGN.md records this substitution.
//
// In the model pipeline (ARCHITECTURE.md) these tables are the single
// source of truth both consumers read: CoherenceParams configures the
// simulator, and the same constants parameterize the analytical model
// (internal/core). ARCHITECTURE.md, "How do I add a new machine",
// covers writing a spec.
package machine

import (
	"fmt"

	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/topology"
)

// Latencies is the timing table the coherence simulator consumes, plus
// per-primitive execution occupancies.
type Latencies struct {
	L1Hit              sim.Time
	DirLookup          sim.Time
	HopLatency         sim.Time
	CrossSocketPenalty sim.Time
	LLCHit             sim.Time
	DRAM               sim.Time
	InvalidateCost     sim.Time

	// Execution occupancy: how long the instruction holds the line at
	// its serialization point once the data has arrived. This is what
	// differentiates the primitives on an owned line.
	ExecCAS   sim.Time
	ExecFAA   sim.Time
	ExecSWAP  sim.Time
	ExecTAS   sim.Time
	ExecCAS2  sim.Time
	ExecFence sim.Time
	ExecLoad  sim.Time
	ExecStore sim.Time
}

// Energies is the per-event energy table (nanojoules) plus static power
// (watts) used by the energy meter. Only relative magnitudes matter for
// reproducing the paper's energy figures.
// The JSON tags are the field names machine spec files use.
type Energies struct {
	// StaticWattsPerCore models leakage and uncore power amortized per
	// active core; it accrues for every placed thread's core over the
	// whole run.
	StaticWattsPerCore float64 `json:"staticWattsPerCore"`
	// ActiveWattsPerThread accrues while a thread exists (spinning
	// threads burn power even when making no progress — the effect
	// behind rising J/op under contention).
	ActiveWattsPerThread float64 `json:"activeWattsPerThread"`
	// Dynamic per-event energies in nanojoules.
	LocalOpNJ     float64 `json:"localOpNJ"`
	PerHopNJ      float64 `json:"perHopNJ"`
	CrossSocketNJ float64 `json:"crossSocketNJ"`
	LLCNJ         float64 `json:"llcNJ"`
	DRAMNJ        float64 `json:"dramNJ"`
}

// Machine is a complete description of a simulated platform.
type Machine struct {
	Name           string
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int
	FreqGHz        float64
	Topo           topology.Topology
	// nodeOf maps a core index to its topology node.
	nodeOf func(core int) int
	Lat    Latencies
	Energy Energies
	// ForwardSharer enables MESIF-style sharer forwarding in the
	// coherence protocol (an ablation knob; both machine presets ship
	// with it off so the baseline protocol is plain MESI).
	ForwardSharer bool
	// LinkOccupancy enables finite interconnect bandwidth: each
	// coherence message holds every link it crosses for this long.
	// Zero (the presets' default) means infinite bandwidth; the
	// bandwidth ablation experiments set it to a fraction of the hop
	// latency (a 64-byte line at ~32 B/cycle occupies a link for about
	// two cycles).
	LinkOccupancy sim.Time
	// StoreBufferDepth enables TSO store buffering: plain stores retire
	// locally in ~1 cycle and drain asynchronously; fences and locked
	// RMWs wait for the drain. Zero (the presets' default) keeps
	// synchronous stores; the store-buffer ablation sets the Haswell-
	// class depth of 42.
	StoreBufferDepth int
	// digest is the short content digest of the Spec this machine was
	// built from (empty for hand-assembled machines in tests and
	// ablations). It is the content half of Key.
	digest string
}

// SpecDigest returns the content digest of the spec this machine was
// built from, or "" for a machine assembled by hand rather than by
// Spec.Build.
func (m *Machine) SpecDigest() string { return m.digest }

// Key returns the machine's cache identity, "Name@digest" for
// spec-built machines and plain Name otherwise. Harness cell cache
// keys use Key instead of Name so a custom spec that reuses a preset's
// name — or a spec edited between a crash and its resume — occupies
// its own cache namespace instead of replaying the other machine's
// cells.
func (m *Machine) Key() string {
	if m.digest == "" {
		return m.Name
	}
	return m.Name + "@" + m.digest
}

// Validate rejects structurally broken machine descriptions before they
// reach the simulator, where a zero core count or a negative latency
// would surface as a confusing panic (or worse, a silently wrong table)
// deep inside a run. ByName and the workload/apps entry points call it,
// so hand-built Machines in tests and ablations get the same screening
// as the presets.
func (m *Machine) Validate() error {
	switch {
	case m.Sockets <= 0:
		return fmt.Errorf("machine %s: Sockets = %d (want > 0)", m.Name, m.Sockets)
	case m.CoresPerSocket <= 0:
		return fmt.Errorf("machine %s: CoresPerSocket = %d (want > 0)", m.Name, m.CoresPerSocket)
	case m.ThreadsPerCore <= 0:
		return fmt.Errorf("machine %s: ThreadsPerCore = %d (want > 0)", m.Name, m.ThreadsPerCore)
	case m.FreqGHz <= 0:
		return fmt.Errorf("machine %s: FreqGHz = %g (want > 0)", m.Name, m.FreqGHz)
	case m.Topo == nil:
		return fmt.Errorf("machine %s: Topo is nil", m.Name)
	case m.nodeOf == nil:
		return fmt.Errorf("machine %s: node mapping is nil", m.Name)
	case m.LinkOccupancy < 0:
		return fmt.Errorf("machine %s: LinkOccupancy = %v (want >= 0)", m.Name, m.LinkOccupancy)
	case m.StoreBufferDepth < 0:
		return fmt.Errorf("machine %s: StoreBufferDepth = %d (want >= 0)", m.Name, m.StoreBufferDepth)
	}
	// Zero latencies are legitimate (ExecLoad, or CrossSocketPenalty on a
	// single-socket part); negative ones would run the simulated clock
	// backwards.
	lat := []struct {
		name string
		v    sim.Time
	}{
		{"L1Hit", m.Lat.L1Hit}, {"DirLookup", m.Lat.DirLookup},
		{"HopLatency", m.Lat.HopLatency}, {"CrossSocketPenalty", m.Lat.CrossSocketPenalty},
		{"LLCHit", m.Lat.LLCHit}, {"DRAM", m.Lat.DRAM},
		{"InvalidateCost", m.Lat.InvalidateCost},
		{"ExecCAS", m.Lat.ExecCAS}, {"ExecFAA", m.Lat.ExecFAA},
		{"ExecSWAP", m.Lat.ExecSWAP}, {"ExecTAS", m.Lat.ExecTAS},
		{"ExecCAS2", m.Lat.ExecCAS2}, {"ExecFence", m.Lat.ExecFence},
		{"ExecLoad", m.Lat.ExecLoad}, {"ExecStore", m.Lat.ExecStore},
	}
	for _, l := range lat {
		if l.v < 0 {
			return fmt.Errorf("machine %s: latency %s = %v (want >= 0)", m.Name, l.name, l.v)
		}
	}
	// Every core must map to a real topology node, or hop computations
	// will index out of range mid-run.
	nodes := m.Topo.Nodes()
	for core := 0; core < m.NumCores(); core++ {
		if n := m.nodeOf(core); n < 0 || n >= nodes {
			return fmt.Errorf("machine %s: core %d maps to node %d outside [0,%d)", m.Name, core, n, nodes)
		}
	}
	return nil
}

// NumCores returns the number of physical cores.
func (m *Machine) NumCores() int { return m.Sockets * m.CoresPerSocket }

// NumHWThreads returns the number of hardware thread slots.
func (m *Machine) NumHWThreads() int { return m.NumCores() * m.ThreadsPerCore }

// CoreOf maps a hardware-thread slot to its physical core. Slots are
// enumerated the way Linux numbers them on these parts: slot t in
// [0, cores) is the first hyperthread of core t, [cores, 2*cores) the
// second, and so on.
func (m *Machine) CoreOf(hw int) int {
	if hw < 0 || hw >= m.NumHWThreads() {
		panic(fmt.Sprintf("machine %s: hw thread %d out of range [0,%d)", m.Name, hw, m.NumHWThreads()))
	}
	return hw % m.NumCores()
}

// SocketOf maps a physical core to its socket.
func (m *Machine) SocketOf(core int) int { return core / m.CoresPerSocket }

// NodeOf maps a physical core to its topology node.
func (m *Machine) NodeOf(core int) int { return m.nodeOf(core) }

// Cycles converts a cycle count at this machine's frequency to Time.
func (m *Machine) Cycles(n float64) sim.Time {
	return sim.Time(n * 1000 / m.FreqGHz) // ps = cycles * (1000 ps/ns) / GHz
}

// ToCycles converts a duration to cycles at this machine's frequency.
func (m *Machine) ToCycles(t sim.Time) float64 {
	return float64(t) * m.FreqGHz / 1000
}

// CoherenceParams assembles the coherence.Params for this machine.
func (m *Machine) CoherenceParams() coherence.Params {
	return coherence.Params{
		NumCores:           m.NumCores(),
		Topo:               m.Topo,
		NodeOf:             m.nodeOf,
		L1Hit:              m.Lat.L1Hit,
		DirLookup:          m.Lat.DirLookup,
		HopLatency:         m.Lat.HopLatency,
		CrossSocketPenalty: m.Lat.CrossSocketPenalty,
		LLCHit:             m.Lat.LLCHit,
		DRAM:               m.Lat.DRAM,
		InvalidateCost:     m.Lat.InvalidateCost,
		ForwardSharer:      m.ForwardSharer,
		LinkOccupancy:      m.LinkOccupancy,
	}
}

// String summarizes the machine for table headers.
func (m *Machine) String() string {
	return fmt.Sprintf("%s (%d×%d cores ×%d SMT @ %.1f GHz, %s)",
		m.Name, m.Sockets, m.CoresPerSocket, m.ThreadsPerCore, m.FreqGHz, m.Topo.Name())
}

// The built-in machines live as embedded JSON specs in specs/*.json;
// registry.go resolves them (ByName, All, Names) and provides the
// preset accessors (XeonE5, KNL, XeonMultiSocket, Ideal).
