// Package machine describes the two architectures the paper evaluates —
// a two-socket Intel Xeon E5 and an Intel Xeon Phi (Knights Landing) —
// as parameter tables for the coherence simulator: core/socket/SMT
// layout, interconnect topology, latency constants, per-primitive
// execution costs, and a power/energy table.
//
// The latency constants are calibrated against publicly reported
// numbers for these parts (L1 ≈ 4 cycles; Xeon same-socket cache-to-
// cache ≈ 25 ns, cross-socket ≈ 90–130 ns; KNL tile-to-tile ≈ 100–150
// ns; locked RMW ≈ 20 cycles on an owned line on Xeon, considerably
// slower on KNL). The reproduction targets the *shape* of the paper's
// results; DESIGN.md records this substitution.
//
// In the model pipeline (ARCHITECTURE.md) these tables are the single
// source of truth both consumers read: CoherenceParams configures the
// simulator, and the same constants parameterize the analytical model
// (internal/core). ARCHITECTURE.md, "How do I add a new machine",
// covers extending this package.
package machine

import (
	"fmt"

	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/topology"
)

// Latencies is the timing table the coherence simulator consumes, plus
// per-primitive execution occupancies.
type Latencies struct {
	L1Hit              sim.Time
	DirLookup          sim.Time
	HopLatency         sim.Time
	CrossSocketPenalty sim.Time
	LLCHit             sim.Time
	DRAM               sim.Time
	InvalidateCost     sim.Time

	// Execution occupancy: how long the instruction holds the line at
	// its serialization point once the data has arrived. This is what
	// differentiates the primitives on an owned line.
	ExecCAS   sim.Time
	ExecFAA   sim.Time
	ExecSWAP  sim.Time
	ExecTAS   sim.Time
	ExecCAS2  sim.Time
	ExecFence sim.Time
	ExecLoad  sim.Time
	ExecStore sim.Time
}

// Energies is the per-event energy table (nanojoules) plus static power
// (watts) used by the energy meter. Only relative magnitudes matter for
// reproducing the paper's energy figures.
type Energies struct {
	// StaticWattsPerCore models leakage and uncore power amortized per
	// active core; it accrues for every placed thread's core over the
	// whole run.
	StaticWattsPerCore float64
	// ActiveWattsPerThread accrues while a thread exists (spinning
	// threads burn power even when making no progress — the effect
	// behind rising J/op under contention).
	ActiveWattsPerThread float64
	// Dynamic per-event energies in nanojoules.
	LocalOpNJ     float64
	PerHopNJ      float64
	CrossSocketNJ float64
	LLCNJ         float64
	DRAMNJ        float64
}

// Machine is a complete description of a simulated platform.
type Machine struct {
	Name           string
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int
	FreqGHz        float64
	Topo           topology.Topology
	// nodeOf maps a core index to its topology node.
	nodeOf func(core int) int
	Lat    Latencies
	Energy Energies
	// ForwardSharer enables MESIF-style sharer forwarding in the
	// coherence protocol (an ablation knob; both machine presets ship
	// with it off so the baseline protocol is plain MESI).
	ForwardSharer bool
	// LinkOccupancy enables finite interconnect bandwidth: each
	// coherence message holds every link it crosses for this long.
	// Zero (the presets' default) means infinite bandwidth; the
	// bandwidth ablation experiments set it to a fraction of the hop
	// latency (a 64-byte line at ~32 B/cycle occupies a link for about
	// two cycles).
	LinkOccupancy sim.Time
	// StoreBufferDepth enables TSO store buffering: plain stores retire
	// locally in ~1 cycle and drain asynchronously; fences and locked
	// RMWs wait for the drain. Zero (the presets' default) keeps
	// synchronous stores; the store-buffer ablation sets the Haswell-
	// class depth of 42.
	StoreBufferDepth int
}

// Validate rejects structurally broken machine descriptions before they
// reach the simulator, where a zero core count or a negative latency
// would surface as a confusing panic (or worse, a silently wrong table)
// deep inside a run. ByName and the workload/apps entry points call it,
// so hand-built Machines in tests and ablations get the same screening
// as the presets.
func (m *Machine) Validate() error {
	switch {
	case m.Sockets <= 0:
		return fmt.Errorf("machine %s: Sockets = %d (want > 0)", m.Name, m.Sockets)
	case m.CoresPerSocket <= 0:
		return fmt.Errorf("machine %s: CoresPerSocket = %d (want > 0)", m.Name, m.CoresPerSocket)
	case m.ThreadsPerCore <= 0:
		return fmt.Errorf("machine %s: ThreadsPerCore = %d (want > 0)", m.Name, m.ThreadsPerCore)
	case m.FreqGHz <= 0:
		return fmt.Errorf("machine %s: FreqGHz = %g (want > 0)", m.Name, m.FreqGHz)
	case m.Topo == nil:
		return fmt.Errorf("machine %s: Topo is nil", m.Name)
	case m.nodeOf == nil:
		return fmt.Errorf("machine %s: node mapping is nil", m.Name)
	case m.LinkOccupancy < 0:
		return fmt.Errorf("machine %s: LinkOccupancy = %v (want >= 0)", m.Name, m.LinkOccupancy)
	case m.StoreBufferDepth < 0:
		return fmt.Errorf("machine %s: StoreBufferDepth = %d (want >= 0)", m.Name, m.StoreBufferDepth)
	}
	// Zero latencies are legitimate (ExecLoad, or CrossSocketPenalty on a
	// single-socket part); negative ones would run the simulated clock
	// backwards.
	lat := []struct {
		name string
		v    sim.Time
	}{
		{"L1Hit", m.Lat.L1Hit}, {"DirLookup", m.Lat.DirLookup},
		{"HopLatency", m.Lat.HopLatency}, {"CrossSocketPenalty", m.Lat.CrossSocketPenalty},
		{"LLCHit", m.Lat.LLCHit}, {"DRAM", m.Lat.DRAM},
		{"InvalidateCost", m.Lat.InvalidateCost},
		{"ExecCAS", m.Lat.ExecCAS}, {"ExecFAA", m.Lat.ExecFAA},
		{"ExecSWAP", m.Lat.ExecSWAP}, {"ExecTAS", m.Lat.ExecTAS},
		{"ExecCAS2", m.Lat.ExecCAS2}, {"ExecFence", m.Lat.ExecFence},
		{"ExecLoad", m.Lat.ExecLoad}, {"ExecStore", m.Lat.ExecStore},
	}
	for _, l := range lat {
		if l.v < 0 {
			return fmt.Errorf("machine %s: latency %s = %v (want >= 0)", m.Name, l.name, l.v)
		}
	}
	// Every core must map to a real topology node, or hop computations
	// will index out of range mid-run.
	nodes := m.Topo.Nodes()
	for core := 0; core < m.NumCores(); core++ {
		if n := m.nodeOf(core); n < 0 || n >= nodes {
			return fmt.Errorf("machine %s: core %d maps to node %d outside [0,%d)", m.Name, core, n, nodes)
		}
	}
	return nil
}

// NumCores returns the number of physical cores.
func (m *Machine) NumCores() int { return m.Sockets * m.CoresPerSocket }

// NumHWThreads returns the number of hardware thread slots.
func (m *Machine) NumHWThreads() int { return m.NumCores() * m.ThreadsPerCore }

// CoreOf maps a hardware-thread slot to its physical core. Slots are
// enumerated the way Linux numbers them on these parts: slot t in
// [0, cores) is the first hyperthread of core t, [cores, 2*cores) the
// second, and so on.
func (m *Machine) CoreOf(hw int) int {
	if hw < 0 || hw >= m.NumHWThreads() {
		panic(fmt.Sprintf("machine %s: hw thread %d out of range [0,%d)", m.Name, hw, m.NumHWThreads()))
	}
	return hw % m.NumCores()
}

// SocketOf maps a physical core to its socket.
func (m *Machine) SocketOf(core int) int { return core / m.CoresPerSocket }

// NodeOf maps a physical core to its topology node.
func (m *Machine) NodeOf(core int) int { return m.nodeOf(core) }

// Cycles converts a cycle count at this machine's frequency to Time.
func (m *Machine) Cycles(n float64) sim.Time {
	return sim.Time(n * 1000 / m.FreqGHz) // ps = cycles * (1000 ps/ns) / GHz
}

// ToCycles converts a duration to cycles at this machine's frequency.
func (m *Machine) ToCycles(t sim.Time) float64 {
	return float64(t) * m.FreqGHz / 1000
}

// CoherenceParams assembles the coherence.Params for this machine.
func (m *Machine) CoherenceParams() coherence.Params {
	return coherence.Params{
		NumCores:           m.NumCores(),
		Topo:               m.Topo,
		NodeOf:             m.nodeOf,
		L1Hit:              m.Lat.L1Hit,
		DirLookup:          m.Lat.DirLookup,
		HopLatency:         m.Lat.HopLatency,
		CrossSocketPenalty: m.Lat.CrossSocketPenalty,
		LLCHit:             m.Lat.LLCHit,
		DRAM:               m.Lat.DRAM,
		InvalidateCost:     m.Lat.InvalidateCost,
		ForwardSharer:      m.ForwardSharer,
		LinkOccupancy:      m.LinkOccupancy,
	}
}

// String summarizes the machine for table headers.
func (m *Machine) String() string {
	return fmt.Sprintf("%s (%d×%d cores ×%d SMT @ %.1f GHz, %s)",
		m.Name, m.Sockets, m.CoresPerSocket, m.ThreadsPerCore, m.FreqGHz, m.Topo.Name())
}

// XeonE5 returns a two-socket Xeon E5 v4-class description: 2×18 cores,
// 2-way SMT, 2.4 GHz, each socket a bidirectional ring, sockets joined
// by a QPI-like link.
func XeonE5() *Machine {
	m := &Machine{
		Name:           "XeonE5",
		Sockets:        2,
		CoresPerSocket: 18,
		ThreadsPerCore: 2,
		FreqGHz:        2.4,
		Topo:           topology.NewDualRing(18, 2),
	}
	m.nodeOf = func(core int) int { return core } // one ring stop per core
	m.Lat = Latencies{
		L1Hit:              m.Cycles(4),   // ~1.7 ns
		DirLookup:          m.Cycles(19),  // ~8 ns CHA/home agent
		HopLatency:         m.Cycles(3),   // ~1.25 ns per ring hop
		CrossSocketPenalty: m.Cycles(144), // ~60 ns QPI serialization
		LLCHit:             m.Cycles(53),  // ~22 ns slice access
		DRAM:               m.Cycles(180), // ~75 ns on top of the trip
		InvalidateCost:     m.Cycles(24),  // ~10 ns ack collection
		ExecCAS:            m.Cycles(19),  // lock cmpxchg ≈ 23 cyc total w/ L1
		ExecFAA:            m.Cycles(17),  // lock xadd ≈ 21 cyc total
		ExecSWAP:           m.Cycles(17),  // xchg has an implicit lock
		ExecTAS:            m.Cycles(16),  // lock bts
		ExecCAS2:           m.Cycles(25),  // lock cmpxchg16b
		ExecFence:          m.Cycles(33),  // mfence store-buffer drain
		ExecLoad:           0,             // covered by L1Hit
		ExecStore:          m.Cycles(1),
	}
	m.Energy = Energies{
		StaticWattsPerCore:   1.5,
		ActiveWattsPerThread: 1.8,
		LocalOpNJ:            1.0,
		PerHopNJ:             0.3,
		CrossSocketNJ:        15,
		LLCNJ:                8,
		DRAMNJ:               20,
	}
	return m
}

// KNL returns a Xeon Phi Knights Landing 7210-class description: 64
// cores on 32 active tiles (2 cores per tile) of a 6×6 mesh, 4-way SMT,
// 1.3 GHz. KNL has no shared L3; the "LLC" level models the distributed
// directory backed by MCDRAM cache.
func KNL() *Machine {
	m := &Machine{
		Name:           "KNL",
		Sockets:        1,
		CoresPerSocket: 64,
		ThreadsPerCore: 4,
		FreqGHz:        1.3,
		Topo:           topology.NewMesh2D(6, 6),
	}
	// Two cores share a tile; tiles 0..31 host cores, the remaining
	// stops are memory/IO stops that still serve as line homes.
	m.nodeOf = func(core int) int { return core / 2 }
	m.Lat = Latencies{
		L1Hit:              m.Cycles(4),  // ~3.1 ns
		DirLookup:          m.Cycles(52), // ~40 ns distributed CHA
		HopLatency:         m.Cycles(6),  // ~4.6 ns per mesh hop
		CrossSocketPenalty: 0,
		LLCHit:             m.Cycles(104), // ~80 ns MCDRAM-cached
		DRAM:               m.Cycles(169), // ~130 ns
		InvalidateCost:     m.Cycles(20),
		ExecCAS:            m.Cycles(33), // locked RMWs are slow on KNL
		ExecFAA:            m.Cycles(30),
		ExecSWAP:           m.Cycles(30),
		ExecTAS:            m.Cycles(28),
		ExecCAS2:           m.Cycles(44),
		ExecFence:          m.Cycles(40),
		ExecLoad:           0,
		ExecStore:          m.Cycles(2),
	}
	m.Energy = Energies{
		StaticWattsPerCore:   1.2,
		ActiveWattsPerThread: 0.9,
		LocalOpNJ:            0.8,
		PerHopNJ:             0.4,
		CrossSocketNJ:        0,
		LLCNJ:                12,
		DRAMNJ:               30,
	}
	return m
}

// XeonMultiSocket returns a Xeon E5-class machine scaled to the given
// socket count on a full-mesh inter-socket fabric (the 4-socket Xeon
// topology). With sockets == 2 it is latency-identical to XeonE5. It
// exists for the socket-scaling extrapolation experiment: the paper
// measures two sockets, the model predicts more.
func XeonMultiSocket(sockets int) *Machine {
	base := XeonE5()
	m := &Machine{
		Name:           fmt.Sprintf("Xeon%dS", sockets),
		Sockets:        sockets,
		CoresPerSocket: base.CoresPerSocket,
		ThreadsPerCore: base.ThreadsPerCore,
		FreqGHz:        base.FreqGHz,
		Topo:           topology.NewMultiRing(sockets, base.CoresPerSocket, 2),
		Lat:            base.Lat,
		Energy:         base.Energy,
	}
	m.nodeOf = func(core int) int { return core }
	return m
}

// Ideal returns a small machine on an ideal crossbar. It exists for
// model ablations: with uniform 1-hop transfers, measured contention
// effects are purely protocol serialization.
func Ideal(cores int) *Machine {
	m := &Machine{
		Name:           fmt.Sprintf("Ideal%d", cores),
		Sockets:        1,
		CoresPerSocket: cores,
		ThreadsPerCore: 1,
		FreqGHz:        2.0,
		Topo:           topology.NewCrossbar(cores),
	}
	m.nodeOf = func(core int) int { return core }
	m.Lat = Latencies{
		L1Hit:          m.Cycles(4),
		DirLookup:      m.Cycles(10),
		HopLatency:     m.Cycles(20),
		LLCHit:         m.Cycles(40),
		DRAM:           m.Cycles(150),
		InvalidateCost: m.Cycles(10),
		ExecCAS:        m.Cycles(18),
		ExecFAA:        m.Cycles(16),
		ExecSWAP:       m.Cycles(16),
		ExecTAS:        m.Cycles(15),
		ExecCAS2:       m.Cycles(24),
		ExecFence:      m.Cycles(20),
		ExecLoad:       0,
		ExecStore:      m.Cycles(1),
	}
	m.Energy = Energies{
		StaticWattsPerCore:   1,
		ActiveWattsPerThread: 1,
		LocalOpNJ:            1,
		PerHopNJ:             1,
		LLCNJ:                5,
		DRAMNJ:               15,
	}
	return m
}

// ByName returns the machine with the given name ("XeonE5", "KNL", or
// "Ideal<N>"-style requests resolve to Ideal(8)).
func ByName(name string) (*Machine, error) {
	var m *Machine
	switch name {
	case "XeonE5", "xeon", "xeone5":
		m = XeonE5()
	case "KNL", "knl":
		m = KNL()
	case "Ideal", "ideal":
		m = Ideal(8)
	default:
		return nil, fmt.Errorf("machine: unknown machine %q (want XeonE5, KNL, or Ideal)", name)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// All returns the machines the paper evaluates.
func All() []*Machine { return []*Machine{XeonE5(), KNL()} }
