package machine

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atomicsmodel/internal/topology"
)

// TestSpecBuiltPresetsMatchLegacyTables pins the spec-built XeonE5 and
// KNL to the exact tables the hand-written constructors produced before
// machines became declarative. Every constant is restated here as a
// cycle count, so a drive-by edit to a spec file cannot silently move a
// calibrated table.
func TestSpecBuiltPresetsMatchLegacyTables(t *testing.T) {
	xeon := XeonE5()
	wantXeonLat := Latencies{
		L1Hit:              xeon.Cycles(4),
		DirLookup:          xeon.Cycles(19),
		HopLatency:         xeon.Cycles(3),
		CrossSocketPenalty: xeon.Cycles(144),
		LLCHit:             xeon.Cycles(53),
		DRAM:               xeon.Cycles(180),
		InvalidateCost:     xeon.Cycles(24),
		ExecCAS:            xeon.Cycles(19),
		ExecFAA:            xeon.Cycles(17),
		ExecSWAP:           xeon.Cycles(17),
		ExecTAS:            xeon.Cycles(16),
		ExecCAS2:           xeon.Cycles(25),
		ExecFence:          xeon.Cycles(33),
		ExecLoad:           0,
		ExecStore:          xeon.Cycles(1),
	}
	if xeon.Lat != wantXeonLat {
		t.Errorf("XeonE5 latency table drifted from the legacy constructor:\n got %+v\nwant %+v", xeon.Lat, wantXeonLat)
	}
	wantXeonEnergy := Energies{
		StaticWattsPerCore: 1.5, ActiveWattsPerThread: 1.8,
		LocalOpNJ: 1.0, PerHopNJ: 0.3, CrossSocketNJ: 15, LLCNJ: 8, DRAMNJ: 20,
	}
	if xeon.Energy != wantXeonEnergy {
		t.Errorf("XeonE5 energy table drifted: got %+v want %+v", xeon.Energy, wantXeonEnergy)
	}
	if xeon.Sockets != 2 || xeon.CoresPerSocket != 18 || xeon.ThreadsPerCore != 2 || xeon.FreqGHz != 2.4 {
		t.Errorf("XeonE5 layout drifted: %s", xeon)
	}
	if got := xeon.Topo.Name(); got != "dualring-2x18" {
		t.Errorf("XeonE5 topology = %s, want dualring-2x18", got)
	}
	for core := 0; core < xeon.NumCores(); core++ {
		if xeon.NodeOf(core) != core {
			t.Fatalf("XeonE5 core %d maps to node %d, want identity", core, xeon.NodeOf(core))
		}
	}

	knl := KNL()
	wantKNLLat := Latencies{
		L1Hit:              knl.Cycles(4),
		DirLookup:          knl.Cycles(52),
		HopLatency:         knl.Cycles(6),
		CrossSocketPenalty: 0,
		LLCHit:             knl.Cycles(104),
		DRAM:               knl.Cycles(169),
		InvalidateCost:     knl.Cycles(20),
		ExecCAS:            knl.Cycles(33),
		ExecFAA:            knl.Cycles(30),
		ExecSWAP:           knl.Cycles(30),
		ExecTAS:            knl.Cycles(28),
		ExecCAS2:           knl.Cycles(44),
		ExecFence:          knl.Cycles(40),
		ExecLoad:           0,
		ExecStore:          knl.Cycles(2),
	}
	if knl.Lat != wantKNLLat {
		t.Errorf("KNL latency table drifted from the legacy constructor:\n got %+v\nwant %+v", knl.Lat, wantKNLLat)
	}
	wantKNLEnergy := Energies{
		StaticWattsPerCore: 1.2, ActiveWattsPerThread: 0.9,
		LocalOpNJ: 0.8, PerHopNJ: 0.4, CrossSocketNJ: 0, LLCNJ: 12, DRAMNJ: 30,
	}
	if knl.Energy != wantKNLEnergy {
		t.Errorf("KNL energy table drifted: got %+v want %+v", knl.Energy, wantKNLEnergy)
	}
	if knl.Sockets != 1 || knl.CoresPerSocket != 64 || knl.ThreadsPerCore != 4 || knl.FreqGHz != 1.3 {
		t.Errorf("KNL layout drifted: %s", knl)
	}
	if got := knl.Topo.Name(); got != "mesh-6x6" {
		t.Errorf("KNL topology = %s, want mesh-6x6", got)
	}
	for core := 0; core < knl.NumCores(); core++ {
		if knl.NodeOf(core) != core/2 {
			t.Fatalf("KNL core %d maps to node %d, want tile %d", core, knl.NodeOf(core), core/2)
		}
	}
}

// TestRegisteredSpecsValidate checks every registered spec builds a
// machine that passes Validate, carries a digest, and keys distinctly
// from every other registered machine.
func TestRegisteredSpecsValidate(t *testing.T) {
	names := Names()
	if len(names) < 4 {
		t.Fatalf("only %d machines registered, want >= 4: %v", len(names), names)
	}
	keys := map[string]string{}
	for _, name := range names {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if m.SpecDigest() == "" {
			t.Errorf("%s: spec-built machine has no digest", name)
		}
		if !strings.Contains(m.Key(), "@") {
			t.Errorf("%s: Key() = %q lacks the @digest suffix", name, m.Key())
		}
		if prev, dup := keys[m.Key()]; dup {
			t.Errorf("machines %s and %s share cache key %s", prev, name, m.Key())
		}
		keys[m.Key()] = name
	}
}

// TestSpecRoundTrip checks Spec → JSON → Spec → JSON is byte-stable and
// that both sides build identical machines — the property the CI spec
// round-trip check and the resume cache's digest addressing rest on.
func TestSpecRoundTrip(t *testing.T) {
	for _, name := range Names() {
		s, err := SpecByName(name)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := s.Canonical()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s2, err := ParseSpec(raw)
		if err != nil {
			t.Fatalf("%s: reparse: %v", name, err)
		}
		raw2, err := s2.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, raw2) {
			t.Errorf("%s: canonical encoding not stable:\n%s\nvs\n%s", name, raw, raw2)
		}
		m, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		m2, err := s2.Build()
		if err != nil {
			t.Fatal(err)
		}
		if m.Lat != m2.Lat || m.Energy != m2.Energy || m.Key() != m2.Key() || m.String() != m2.String() {
			t.Errorf("%s: round-tripped spec builds a different machine", name)
		}
	}
}

// TestDigestTracksContent checks the digest (and so the cache key)
// moves with any content change, while the name stays put — the
// property that keeps a tweaked spec out of the preset's cache
// namespace.
func TestDigestTracksContent(t *testing.T) {
	base, err := SpecByName("XeonE5")
	if err != nil {
		t.Fatal(err)
	}
	m0, err := base.Build()
	if err != nil {
		t.Fatal(err)
	}
	tweaks := []struct {
		name  string
		apply func(*Spec)
	}{
		{"frequency", func(s *Spec) { s.FreqGHz = 2.6 }},
		{"latency", func(s *Spec) { s.LatencyCycles.ExecCAS = 20 }},
		{"topology param", func(s *Spec) { s.Topology.Params["linkhops"] = 3 }},
		{"energy", func(s *Spec) { s.Energy.DRAMNJ = 21 }},
		{"store buffer", func(s *Spec) { s.StoreBufferDepth = 42 }},
	}
	for _, tw := range tweaks {
		s, err := SpecByName("XeonE5")
		if err != nil {
			t.Fatal(err)
		}
		tw.apply(s)
		m, err := s.Build()
		if err != nil {
			t.Fatalf("%s: %v", tw.name, err)
		}
		if m.Name != m0.Name {
			t.Fatalf("%s: tweak changed the name", tw.name)
		}
		if m.Key() == m0.Key() {
			t.Errorf("%s: tweaked spec kept cache key %s", tw.name, m.Key())
		}
	}
}

// TestKeyFallsBackToName covers hand-assembled machines (tests,
// ablation clones) that never went through Spec.Build.
func TestKeyFallsBackToName(t *testing.T) {
	m := &Machine{Name: "handmade"}
	if m.Key() != "handmade" || m.SpecDigest() != "" {
		t.Fatalf("hand-built machine: Key=%q digest=%q", m.Key(), m.SpecDigest())
	}
	// A struct copy of a spec-built machine keeps the digest: ablation
	// clones rename themselves ("XeonE5+F"), which moves the key.
	c := *XeonE5()
	c.Name = c.Name + "+F"
	if c.Key() != "XeonE5+F@"+c.SpecDigest() {
		t.Fatalf("clone key = %q", c.Key())
	}
}

func TestByNameErrorListsRegistered(t *testing.T) {
	_, err := ByName("warpdrive")
	if err == nil {
		t.Fatal("unknown machine accepted")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered machine %s", err, name)
		}
	}
}

func TestByNameAliases(t *testing.T) {
	for alias, canonical := range map[string]string{
		"xeon": "XeonE5", "XEON": "XeonE5", "xeone5": "XeonE5",
		"knl": "KNL", "epyc": "EPYC", "rome": "EPYC",
		"skylake": "XeonSP", "ideal": "Ideal8", "Ideal8": "Ideal8",
	} {
		m, err := ByName(alias)
		if err != nil {
			t.Errorf("ByName(%s): %v", alias, err)
			continue
		}
		if m.Name != canonical {
			t.Errorf("ByName(%s) = %s, want %s", alias, m.Name, canonical)
		}
	}
}

func TestSelect(t *testing.T) {
	ms, err := Select("XeonE5, knl", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].Name != "XeonE5" || ms[1].Name != "KNL" {
		t.Fatalf("Select: got %v", ms)
	}

	// The same machine through two names is one cache namespace — reject.
	if _, err := Select("XeonE5,xeon", ""); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate selection: got %v", err)
	}

	// A spec file rides alongside names; a same-named but different spec
	// is allowed because the digests differ.
	s, err := SpecByName("XeonE5")
	if err != nil {
		t.Fatal(err)
	}
	s.FreqGHz = 2.6
	raw, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "xeon26.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	ms, err = Select("XeonE5", path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].Key() == ms[1].Key() {
		t.Fatalf("same-named custom spec must key distinctly: %v vs %v", ms[0].Key(), ms[1].Key())
	}

	// The byte-identical spec through a file is the preset again — reject.
	preset, err := SpecByName("XeonE5")
	if err != nil {
		t.Fatal(err)
	}
	raw, err = preset.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	same := filepath.Join(t.TempDir(), "same.json")
	if err := os.WriteFile(same, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Select("XeonE5", same); err == nil {
		t.Fatal("byte-identical spec file selected alongside its preset")
	}
}

func TestParseSpecStrict(t *testing.T) {
	// Note encoding/json matches field names case-insensitively, so the
	// unknown field must differ by more than case.
	if _, err := ParseSpec([]byte(`{"name":"X","frequency":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := ParseSpec([]byte(`{"name":"X"} trailing`)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestBuildRejects(t *testing.T) {
	good := func() *Spec {
		s, err := SpecByName("XeonE5")
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := []struct {
		name  string
		apply func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"zero freq", func(s *Spec) { s.FreqGHz = 0 }},
		{"unknown topology", func(s *Spec) { s.Topology.Kind = "warp-bus" }},
		{"bad topology param", func(s *Spec) { s.Topology.Params["spokes"] = 2 }},
		{"unknown node map", func(s *Spec) { s.NodeMap.Kind = "mod" }},
		{"div zero", func(s *Spec) { s.NodeMap = NodeMapSpec{Kind: "div"} }},
		{"negative latency", func(s *Spec) { s.LatencyCycles.DRAM = -1 }},
		{"oversized", func(s *Spec) { s.CoresPerSocket = 1 << 20 }},
		{"core outside topology", func(s *Spec) {
			s.Topology = TopoSpec{Kind: "ring", Params: topology.Params{"nodes": 4}}
		}},
	}
	for _, c := range cases {
		s := good()
		c.apply(s)
		if _, err := s.Build(); err == nil {
			t.Errorf("%s: Build accepted a broken spec", c.name)
		}
	}
}

// TestXeonMultiSocketMatchesPreset guards the derived-spec path: the
// socket sweep clones the XeonE5 spec, so its tables must stay
// latency-identical to the preset while keying distinctly.
func TestXeonMultiSocketMatchesPreset(t *testing.T) {
	base := XeonE5()
	m4 := XeonMultiSocket(4)
	if m4.Lat != base.Lat || m4.Energy != base.Energy {
		t.Fatal("XeonMultiSocket tables drifted from XeonE5")
	}
	if m4.Key() == base.Key() {
		t.Fatalf("Xeon4S shares cache key with XeonE5: %s", m4.Key())
	}
	if got := m4.Topo.Name(); got != "multiring-4x18" {
		t.Fatalf("Xeon4S topology = %s", got)
	}
}
