package machine

import "fmt"

// Placement maps n logical workload threads onto hardware-thread slots.
// It returns the chosen slot IDs in thread order. In the paper this is
// done with pthread affinity; in the simulator placement is an explicit
// input, which is the substitution that sidesteps Go's scheduler.
type Placement interface {
	Name() string
	// Place returns n distinct hardware-thread slots of m, or an error
	// if n exceeds the machine's capacity.
	Place(m *Machine, n int) ([]int, error)
}

func checkCapacity(m *Machine, n int) error {
	if n <= 0 {
		return fmt.Errorf("machine: placement of %d threads", n)
	}
	if n > m.NumHWThreads() {
		return fmt.Errorf("machine: %d threads exceed %s's %d hw threads", n, m.Name, m.NumHWThreads())
	}
	return nil
}

// Compact fills cores in index order (socket 0 first), one hyperthread
// per core, and only starts using second hyperthreads when every core
// has one thread. This is the paper's default pinning: contention stays
// on-socket as long as possible.
type Compact struct{}

func (Compact) Name() string { return "compact" }

func (Compact) Place(m *Machine, n int) ([]int, error) {
	if err := checkCapacity(m, n); err != nil {
		return nil, err
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = i // slot i is hyperthread i/cores of core i%cores
	}
	return out, nil
}

// Scatter round-robins threads across sockets first, then across cores,
// maximizing cross-socket traffic — the worst case for a bounced line.
type Scatter struct{}

func (Scatter) Name() string { return "scatter" }

func (Scatter) Place(m *Machine, n int) ([]int, error) {
	if err := checkCapacity(m, n); err != nil {
		return nil, err
	}
	cores := m.NumCores()
	perSocket := m.CoresPerSocket
	out := make([]int, 0, n)
	// Visit cores socket-alternating: s0c0, s1c0, s0c1, s1c1, ...
	for ht := 0; ht < m.ThreadsPerCore && len(out) < n; ht++ {
		for c := 0; c < perSocket && len(out) < n; c++ {
			for s := 0; s < m.Sockets && len(out) < n; s++ {
				core := s*perSocket + c
				out = append(out, ht*cores+core)
			}
		}
	}
	return out, nil
}

// SMTFirst packs hyperthreads of each core before moving to the next
// core: n threads occupy only ceil(n/ThreadsPerCore) cores. On KNL this
// keeps contending threads on shared L1s, which is the cheapest possible
// communication — the paper's "threads per core" axis.
type SMTFirst struct{}

func (SMTFirst) Name() string { return "smt-first" }

func (SMTFirst) Place(m *Machine, n int) ([]int, error) {
	if err := checkCapacity(m, n); err != nil {
		return nil, err
	}
	cores := m.NumCores()
	out := make([]int, 0, n)
	for c := 0; c < cores && len(out) < n; c++ {
		for ht := 0; ht < m.ThreadsPerCore && len(out) < n; ht++ {
			out = append(out, ht*cores+c)
		}
	}
	return out, nil
}

// SingleSocket restricts placement to one socket (filling hyperthreads
// when cores run out). It errors if n exceeds the socket's capacity.
type SingleSocket struct {
	Socket int
}

func (p SingleSocket) Name() string { return fmt.Sprintf("socket-%d", p.Socket) }

func (p SingleSocket) Place(m *Machine, n int) ([]int, error) {
	if p.Socket < 0 || p.Socket >= m.Sockets {
		return nil, fmt.Errorf("machine: %s has no socket %d", m.Name, p.Socket)
	}
	capacity := m.CoresPerSocket * m.ThreadsPerCore
	if n <= 0 || n > capacity {
		return nil, fmt.Errorf("machine: %d threads exceed socket capacity %d", n, capacity)
	}
	cores := m.NumCores()
	out := make([]int, 0, n)
	for ht := 0; ht < m.ThreadsPerCore && len(out) < n; ht++ {
		for c := 0; c < m.CoresPerSocket && len(out) < n; c++ {
			core := p.Socket*m.CoresPerSocket + c
			out = append(out, ht*cores+core)
		}
	}
	return out, nil
}

// PlacementByName resolves a placement flag or workload-spec value.
// "socket-N" accepts any non-negative socket index; whether the machine
// actually has that socket is checked at Place time, since the name is
// resolved before a machine is chosen.
func PlacementByName(name string) (Placement, error) {
	switch name {
	case "compact", "":
		return Compact{}, nil
	case "scatter":
		return Scatter{}, nil
	case "smt-first", "smt":
		return SMTFirst{}, nil
	}
	var socket int
	if n, err := fmt.Sscanf(name, "socket-%d", &socket); err == nil && n == 1 &&
		name == fmt.Sprintf("socket-%d", socket) && socket >= 0 {
		return SingleSocket{Socket: socket}, nil
	}
	return nil, fmt.Errorf("machine: unknown placement %q (want one of %v)", name, PlacementNames())
}

// PlacementNames lists the placement names PlacementByName accepts;
// "socket-N" stands for any non-negative socket index.
func PlacementNames() []string {
	return []string{"compact", "scatter", "smt-first", "socket-N"}
}
