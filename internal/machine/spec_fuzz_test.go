package machine

import (
	"bytes"
	"testing"
)

// FuzzSpecLoad is a native Go fuzz target over the spec-file loading
// path — the CLIs' -machinefile input. For arbitrary bytes it demands:
// no panic anywhere in parse/build; any machine that Build returns
// passes Validate (Build's contract); building twice is
// digest-deterministic; and a parsed spec's canonical encoding is a
// fixed point (parse → encode → parse → encode is byte-stable), which
// is what makes the digest a usable cache identity. Run with
// `go test -fuzz FuzzSpecLoad ./internal/machine`.
func FuzzSpecLoad(f *testing.F) {
	for _, name := range Names() {
		s, err := SpecByName(name)
		if err != nil {
			f.Fatal(err)
		}
		raw, err := s.Canonical()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"tiny","sockets":1,"coresPerSocket":2,"threadsPerCore":1,"freqGHz":1,` +
		`"topology":{"kind":"ring","params":{"nodes":2}},"nodeMap":{},"latencyCycles":{"l1Hit":1},"energy":{}}`))
	f.Add([]byte(`{"name":"bad","freqGHz":-3}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return // malformed input must error, not panic
		}
		m, err := s.Build()
		if err != nil {
			return // invalid spec must error, not panic
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Build returned a machine that fails Validate: %v", err)
		}
		m2, err := s.Build()
		if err != nil {
			t.Fatalf("second Build of the same spec failed: %v", err)
		}
		if m.Key() != m2.Key() || m.SpecDigest() == "" {
			t.Fatalf("digest not deterministic: %q vs %q", m.Key(), m2.Key())
		}
		raw1, err := s.Canonical()
		if err != nil {
			t.Fatalf("canonical encoding of a built spec failed: %v", err)
		}
		s2, err := ParseSpec(raw1)
		if err != nil {
			t.Fatalf("canonical encoding does not reparse: %v\n%s", err, raw1)
		}
		raw2, err := s2.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw1, raw2) {
			t.Fatalf("canonical encoding not a fixed point:\n%s\nvs\n%s", raw1, raw2)
		}
	})
}
