package machine

import (
	"strings"
	"testing"

	"atomicsmodel/internal/sim"
)

func TestValidateAcceptsBuiltins(t *testing.T) {
	for _, m := range []*Machine{XeonE5(), KNL(), Ideal(1), Ideal(64)} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	for _, name := range []string{"XeonE5", "KNL"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
}

func TestValidateRejectsCorruptMachines(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Machine)
		want   string
	}{
		{"zero sockets", func(m *Machine) { m.Sockets = 0 }, "Sockets = 0"},
		{"negative cores", func(m *Machine) { m.CoresPerSocket = -3 }, "CoresPerSocket = -3"},
		{"zero threads", func(m *Machine) { m.ThreadsPerCore = 0 }, "ThreadsPerCore = 0"},
		{"zero frequency", func(m *Machine) { m.FreqGHz = 0 }, "FreqGHz = 0"},
		{"negative frequency", func(m *Machine) { m.FreqGHz = -2.5 }, "FreqGHz = -2.5"},
		{"nil topology", func(m *Machine) { m.Topo = nil }, "Topo is nil"},
		{"nil node map", func(m *Machine) { m.nodeOf = nil }, "node mapping is nil"},
		{"negative link occupancy", func(m *Machine) { m.LinkOccupancy = -sim.Nanosecond }, "LinkOccupancy"},
		{"negative store buffer", func(m *Machine) { m.StoreBufferDepth = -1 }, "StoreBufferDepth = -1"},
		{"negative DRAM latency", func(m *Machine) { m.Lat.DRAM = -sim.Nanosecond }, "latency DRAM"},
		{"negative exec latency", func(m *Machine) { m.Lat.ExecCAS = -1 }, "latency ExecCAS"},
		{"core outside topology", func(m *Machine) { m.nodeOf = func(c int) int { return c + 1000 } }, "outside [0,"},
	}
	for _, tc := range cases {
		m := *Ideal(8)
		tc.mutate(&m)
		err := m.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateZeroLatenciesAreLegal(t *testing.T) {
	m := *Ideal(4)
	m.Lat.ExecLoad = 0
	m.Lat.CrossSocketPenalty = 0
	if err := m.Validate(); err != nil {
		t.Fatalf("zero latencies rejected: %v", err)
	}
}
