package machine

import (
	"embed"
	"fmt"
	"sort"
	"strings"
	"sync"

	"atomicsmodel/internal/topology"
)

// This file is the machine registry. Every built-in machine is an
// embedded JSON spec under specs/; init loads and registers them, and
// ByName resolves lookups case-insensitively through canonical names
// and declared aliases. Registering a machine requires zero Go code
// beyond the spec file: drop a JSON file in specs/ and it becomes
// selectable by name in every CLI.

//go:embed specs/*.json
var specFS embed.FS

var (
	regMu  sync.RWMutex
	specs  = map[string]*Spec{}  // canonical name → spec
	lookup = map[string]string{} // lowercased name/alias → canonical name
)

// Register adds a spec to the registry, verifying it builds. The spec
// becomes resolvable by its name and aliases (case-insensitively).
// Duplicate names or aliases are errors: a silent shadow would make
// ByName ambiguous.
func Register(s *Spec) error {
	if _, err := s.Build(); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := specs[s.Name]; dup {
		return fmt.Errorf("machine: duplicate registration of %q", s.Name)
	}
	keys := append([]string{s.Name}, s.Aliases...)
	for _, k := range keys {
		lk := strings.ToLower(k)
		if owner, taken := lookup[lk]; taken {
			return fmt.Errorf("machine: name %q of %s collides with %s", k, s.Name, owner)
		}
	}
	specs[s.Name] = s.Clone()
	for _, k := range keys {
		lookup[strings.ToLower(k)] = s.Name
	}
	return nil
}

func mustRegister(s *Spec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

func init() {
	entries, err := specFS.ReadDir("specs")
	if err != nil {
		panic(fmt.Sprintf("machine: embedded specs: %v", err))
	}
	for _, e := range entries {
		raw, err := specFS.ReadFile("specs/" + e.Name())
		if err != nil {
			panic(fmt.Sprintf("machine: embedded spec %s: %v", e.Name(), err))
		}
		s, err := ParseSpec(raw)
		if err != nil {
			panic(fmt.Sprintf("machine: embedded spec %s: %v", e.Name(), err))
		}
		mustRegister(s)
	}
	// The crossbar ablation machine is parametric (Ideal(cores)); the
	// registry carries the 8-core instance the CLIs' "ideal" name always
	// meant.
	mustRegister(idealSpec(8))
}

// idealSpec describes a small machine on an ideal crossbar. It exists
// for model ablations: with uniform 1-hop transfers, measured
// contention effects are purely protocol serialization.
func idealSpec(cores int) *Spec {
	return &Spec{
		Name:           fmt.Sprintf("Ideal%d", cores),
		Doc:            "Idealized crossbar machine for protocol-serialization ablations",
		Aliases:        []string{"ideal"},
		Sockets:        1,
		CoresPerSocket: cores,
		ThreadsPerCore: 1,
		FreqGHz:        2.0,
		Topology:       TopoSpec{Kind: "crossbar", Params: topology.Params{"nodes": cores}},
		LatencyCycles: LatencyCycles{
			L1Hit: 4, DirLookup: 10, HopLatency: 20, LLCHit: 40, DRAM: 150,
			InvalidateCost: 10,
			ExecCAS:        18, ExecFAA: 16, ExecSWAP: 16, ExecTAS: 15,
			ExecCAS2: 24, ExecFence: 20, ExecLoad: 0, ExecStore: 1,
		},
		Energy: Energies{
			StaticWattsPerCore:   1,
			ActiveWattsPerThread: 1,
			LocalOpNJ:            1,
			PerHopNJ:             1,
			LLCNJ:                5,
			DRAMNJ:               15,
		},
	}
}

// Names returns the canonical names of all registered machines, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(specs))
	for name := range specs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SpecByName returns a deep copy of the registered spec for the given
// name or alias (case-insensitive). Callers mutate the copy freely to
// derive variants.
func SpecByName(name string) (*Spec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	canonical, ok := lookup[strings.ToLower(name)]
	if !ok {
		names := make([]string, 0, len(specs))
		for n := range specs {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("machine: unknown machine %q (registered: %s)", name, strings.Join(names, ", "))
	}
	return specs[canonical].Clone(), nil
}

// ByName builds the registered machine with the given name or alias
// (case-insensitive). Unknown names produce an error listing every
// registered machine.
func ByName(name string) (*Machine, error) {
	s, err := SpecByName(name)
	if err != nil {
		return nil, err
	}
	return s.Build()
}

func mustByName(name string) *Machine {
	m, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return m
}

// XeonE5 returns the two-socket Xeon E5 v4-class preset (2×18 cores,
// 2-way SMT, 2.4 GHz, dual rings joined by a QPI-like link); see
// specs/xeone5.json for the constants.
func XeonE5() *Machine { return mustByName("XeonE5") }

// KNL returns the Xeon Phi Knights Landing 7210-class preset (64 cores
// on 32 two-core tiles of a 6×6 mesh, 4-way SMT, 1.3 GHz); see
// specs/knl.json. KNL has no shared L3; the "LLC" level models the
// distributed directory backed by MCDRAM cache.
func KNL() *Machine { return mustByName("KNL") }

// All returns the machines the paper evaluates.
func All() []*Machine { return []*Machine{XeonE5(), KNL()} }

// XeonMultiSocket returns a Xeon E5-class machine scaled to the given
// socket count on a full-mesh inter-socket fabric (the 4-socket Xeon
// topology). With sockets == 2 it is latency-identical to XeonE5. It
// exists for the socket-scaling extrapolation experiment: the paper
// measures two sockets, the model predicts more.
func XeonMultiSocket(sockets int) *Machine {
	s, err := SpecByName("XeonE5")
	if err != nil {
		panic(err)
	}
	s.Name = fmt.Sprintf("Xeon%dS", sockets)
	s.Doc = fmt.Sprintf("Xeon E5-class machine extrapolated to %d sockets on a full-mesh fabric", sockets)
	s.Aliases = nil
	s.Sockets = sockets
	s.Topology = TopoSpec{Kind: "multiring", Params: topology.Params{
		"sockets": sockets, "persocket": s.CoresPerSocket, "linkhops": 2,
	}}
	m, err := s.Build()
	if err != nil {
		panic(err)
	}
	return m
}

// Ideal returns the crossbar ablation machine with the given core
// count (see idealSpec).
func Ideal(cores int) *Machine {
	m, err := idealSpec(cores).Build()
	if err != nil {
		panic(err)
	}
	return m
}

// Select resolves the machines a CLI run targets: names is a
// comma-separated list of registered machine names (ByName), files a
// comma-separated list of JSON spec file paths (LoadSpecFile). Either
// may be empty; the results concatenate in the order given, names
// first. Machines with duplicate cache identities (Machine.Key) are
// rejected: the harness would silently fold their cells together.
func Select(names, files string) ([]*Machine, error) {
	var out []*Machine
	for _, name := range splitList(names) {
		m, err := ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	for _, path := range splitList(files) {
		m, err := LoadSpecFile(path)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	seen := map[string]bool{}
	for _, m := range out {
		if seen[m.Key()] {
			return nil, fmt.Errorf("machine: %s selected twice", m.Key())
		}
		seen[m.Key()] = true
	}
	return out, nil
}

func splitList(csv string) []string {
	var out []string
	for _, part := range strings.Split(csv, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
