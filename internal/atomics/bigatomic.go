package atomics

import (
	"fmt"

	"atomicsmodel/internal/coherence"
)

// BigAtomic emulates a multi-word atomic object — the "Big Atomics"
// construction — on the simulated memory: a version line plus W data
// word lines. Readers take the seqlock path (load the version, load
// the words, re-check the version; retry if a writer intervened), and
// writers commit through a CAS2-backed acquire on the version line
// (cmpxchg16b v -> v+1, odd = locked), write the words, then publish
// with a release store of v+2. With words == 1 the object degenerates
// to a single line updated by a plain CAS loop — the single-word
// baseline the multi-word path is compared against.
//
// Every word carries the object's generation (version/2) after an
// update, so a torn read — mixed generations surviving the version
// re-check — is detectable; Stats reports the count, which the seqlock
// protocol must keep at zero.
//
// Like the primitive layer underneath (opCtx pooling), in-flight
// operation state lives in pooled contexts whose callbacks are built
// once per context, so Read and Update are allocation-free in steady
// state.
type BigAtomic struct {
	mem   *Memory
	base  coherence.LineID // version line; word i lives at base+1+i
	words int

	reads         uint64
	updates       uint64
	readRetries   uint64 // seqlock rounds invalidated by a writer
	commitRetries uint64 // version-acquire attempts that lost
	torn          uint64 // mixed-generation reads (must stay 0)

	readFree []*bigReadOp
	updFree  []*bigUpdateOp
}

// NewBigAtomic builds a words-wide atomic object whose lines start at
// base (base is the version line, base+1..base+words the data words).
func NewBigAtomic(mem *Memory, base coherence.LineID, words int) (*BigAtomic, error) {
	if words < 1 {
		return nil, fmt.Errorf("atomics: big atomic needs words >= 1, got %d", words)
	}
	return &BigAtomic{mem: mem, base: base, words: words}, nil
}

// Words returns the object's width.
func (b *BigAtomic) Words() int { return b.words }

// Stats reports completed reads and updates, seqlock read retries,
// failed commit acquires, and torn reads (must be 0).
func (b *BigAtomic) Stats() (reads, updates, readRetries, commitRetries, torn uint64) {
	return b.reads, b.updates, b.readRetries, b.commitRetries, b.torn
}

// Attempts counts retry-loop rounds: seqlock read rounds plus version
// acquires, successful or not.
func (b *BigAtomic) Attempts() uint64 {
	return b.reads + b.updates + b.readRetries + b.commitRetries
}

func (b *BigAtomic) word(i int) coherence.LineID { return b.base + 1 + coherence.LineID(i) }

// bigReadOp is one in-flight seqlock read; its callbacks are built once
// so pooled contexts keep the read path allocation-free.
type bigReadOp struct {
	b        *BigAtomic
	core     int
	v        uint64 // version observed at round start
	gen      uint64 // first word's generation
	i        int
	mismatch bool
	done     func()
	startFn  func(Result) // version load
	wordFn   func(Result) // word load chain
	checkFn  func(Result) // version re-check
	singleFn func(Result) // one-word baseline completion
}

func (o *bigReadOp) start(r Result) {
	if r.Old&1 == 1 {
		// A writer holds the version: spin on the shared copy.
		o.b.readRetries++
		o.b.mem.LoadOp(o.core, o.b.base, o.startFn)
		return
	}
	o.v = r.Old
	o.i = 0
	o.mismatch = false
	o.b.mem.LoadOp(o.core, o.b.word(0), o.wordFn)
}

func (o *bigReadOp) onWord(r Result) {
	if o.i == 0 {
		o.gen = r.Old
	} else if r.Old != o.gen {
		o.mismatch = true
	}
	o.i++
	if o.i < o.b.words {
		o.b.mem.LoadOp(o.core, o.b.word(o.i), o.wordFn)
		return
	}
	o.b.mem.LoadOp(o.core, o.b.base, o.checkFn)
}

func (o *bigReadOp) check(r Result) {
	if r.Old != o.v {
		// A writer intervened: the snapshot is invalid, start over.
		o.b.readRetries++
		o.b.mem.LoadOp(o.core, o.b.base, o.startFn)
		return
	}
	if o.mismatch || o.gen != o.v/2 {
		o.b.torn++
	}
	o.finish()
}

func (o *bigReadOp) finish() {
	b, done := o.b, o.done
	o.done = nil
	b.reads++
	b.readFree = append(b.readFree, o)
	done()
}

// Read performs one atomic multi-word read from the given core and
// calls done when the snapshot is consistent. With words == 1 it is a
// plain load.
func (b *BigAtomic) Read(core int, done func()) {
	var o *bigReadOp
	if n := len(b.readFree); n > 0 {
		o = b.readFree[n-1]
		b.readFree = b.readFree[:n-1]
	} else {
		o = &bigReadOp{b: b}
		o.startFn = o.start
		o.wordFn = o.onWord
		o.checkFn = o.check
		o.singleFn = o.singleDone
	}
	o.core, o.done = core, done
	if b.words == 1 {
		// One-word baseline: a single load of the data line.
		b.mem.LoadOp(core, b.word(0), o.singleFn)
		return
	}
	b.mem.LoadOp(core, b.base, o.startFn)
}

func (o *bigReadOp) singleDone(Result) { o.finish() }

// bigUpdateOp is one in-flight multi-word update.
type bigUpdateOp struct {
	b       *BigAtomic
	core    int
	v       uint64
	i       int
	done    func()
	loadFn  func(Result) // version load
	casFn   func(Result) // CAS2 acquire outcome
	storeFn func(Result) // word store chain
	relFn   func(Result) // release store
	sLoadFn func(Result) // one-word baseline: value load
	sCASFn  func(Result) // one-word baseline: CAS outcome
}

func (o *bigUpdateOp) onLoad(r Result) {
	if r.Old&1 == 1 {
		// Locked: spin on the shared copy until the writer publishes.
		o.b.commitRetries++
		o.b.mem.LoadOp(o.core, o.b.base, o.loadFn)
		return
	}
	o.v = r.Old
	o.b.mem.CompareAndSwap2(o.core, o.b.base, o.v, o.v+1, o.casFn)
}

func (o *bigUpdateOp) onCAS(r Result) {
	if !r.OK {
		o.b.commitRetries++
		o.b.mem.LoadOp(o.core, o.b.base, o.loadFn)
		return
	}
	o.i = 0
	o.b.mem.StoreOp(o.core, o.b.word(0), o.v/2+1, o.storeFn)
}

func (o *bigUpdateOp) onStore(Result) {
	o.i++
	if o.i < o.b.words {
		o.b.mem.StoreOp(o.core, o.b.word(o.i), o.v/2+1, o.storeFn)
		return
	}
	// Publish: the release store makes the version even again.
	o.b.mem.StoreOp(o.core, o.b.base, o.v+2, o.relFn)
}

func (o *bigUpdateOp) onRelease(Result) { o.finish() }

func (o *bigUpdateOp) finish() {
	b, done := o.b, o.done
	o.done = nil
	b.updates++
	b.updFree = append(b.updFree, o)
	done()
}

// Update performs one atomic multi-word update (bumping every word's
// generation) from the given core. With words == 1 it is the classic
// single-word CAS loop.
func (b *BigAtomic) Update(core int, done func()) {
	var o *bigUpdateOp
	if n := len(b.updFree); n > 0 {
		o = b.updFree[n-1]
		b.updFree = b.updFree[:n-1]
	} else {
		o = &bigUpdateOp{b: b}
		o.loadFn = o.onLoad
		o.casFn = o.onCAS
		o.storeFn = o.onStore
		o.relFn = o.onRelease
		o.sLoadFn = o.onSingleLoad
		o.sCASFn = o.onSingleCAS
	}
	o.core, o.done = core, done
	if b.words == 1 {
		// One-word baseline: load the value, CAS value -> value+1,
		// retry with the observed value on failure.
		b.mem.LoadOp(core, b.word(0), o.sLoadFn)
		return
	}
	b.mem.LoadOp(core, b.base, o.loadFn)
}

func (o *bigUpdateOp) onSingleLoad(r Result) {
	o.v = r.Old
	o.b.mem.CompareAndSwap(o.core, o.b.word(0), o.v, o.v+1, o.sCASFn)
}

func (o *bigUpdateOp) onSingleCAS(r Result) {
	if !r.OK {
		o.b.commitRetries++
		o.v = r.Old
		o.b.mem.CompareAndSwap(o.core, o.b.word(0), o.v, o.v+1, o.sCASFn)
		return
	}
	o.finish()
}
