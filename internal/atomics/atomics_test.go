package atomics

import (
	"testing"

	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

func testMemory(t *testing.T) (*sim.Engine, *Memory) {
	t.Helper()
	eng := sim.NewEngine()
	mem, err := NewMemory(eng, machine.Ideal(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	return eng, mem
}

func run(t *testing.T, eng *sim.Engine, issue func(done func(Result))) Result {
	t.Helper()
	var got *Result
	issue(func(r Result) { got = &r })
	eng.Drain()
	if got == nil {
		t.Fatal("operation did not complete")
	}
	return *got
}

func TestPrimitiveStringsAndParse(t *testing.T) {
	for _, p := range All() {
		q, err := Parse(p.String())
		if err != nil || q != p {
			t.Errorf("Parse(%q) = %v, %v", p.String(), q, err)
		}
	}
	if _, err := Parse("XADD"); err == nil {
		t.Error("Parse accepted junk")
	}
	if Primitive(99).String() == "" {
		t.Error("unknown primitive string empty")
	}
}

func TestIsRMW(t *testing.T) {
	for _, p := range RMWs() {
		if !p.IsRMW() {
			t.Errorf("%v should be RMW", p)
		}
	}
	if Load.IsRMW() || Store.IsRMW() {
		t.Error("Load/Store are not RMWs")
	}
}

func TestExecCostTable(t *testing.T) {
	m := machine.XeonE5()
	for _, p := range All() {
		c := ExecCost(m, p)
		if c < 0 {
			t.Errorf("%v exec cost negative", p)
		}
	}
	if ExecCost(m, FAA) > ExecCost(m, CAS) {
		t.Error("FAA should not cost more than CAS")
	}
}

func TestFetchAndAdd(t *testing.T) {
	eng, mem := testMemory(t)
	mem.System().SetValue(1, 10)
	r := run(t, eng, func(done func(Result)) { mem.FetchAndAdd(0, 1, 5, done) })
	if r.Old != 10 || !r.OK {
		t.Fatalf("FAA old=%d ok=%v", r.Old, r.OK)
	}
	if mem.System().Value(1) != 15 {
		t.Fatalf("value = %d, want 15", mem.System().Value(1))
	}
}

func TestCASSuccessAndFailure(t *testing.T) {
	eng, mem := testMemory(t)
	mem.System().SetValue(1, 7)
	r := run(t, eng, func(done func(Result)) { mem.CompareAndSwap(0, 1, 7, 8, done) })
	if !r.OK || r.Old != 7 || mem.System().Value(1) != 8 {
		t.Fatalf("CAS success: %+v value=%d", r, mem.System().Value(1))
	}
	r = run(t, eng, func(done func(Result)) { mem.CompareAndSwap(1, 1, 7, 9, done) })
	if r.OK || r.Old != 8 || mem.System().Value(1) != 8 {
		t.Fatalf("CAS failure: %+v value=%d", r, mem.System().Value(1))
	}
}

func TestSwap(t *testing.T) {
	eng, mem := testMemory(t)
	mem.System().SetValue(1, 3)
	r := run(t, eng, func(done func(Result)) { mem.Swap(0, 1, 44, done) })
	if r.Old != 3 || mem.System().Value(1) != 44 {
		t.Fatalf("swap old=%d value=%d", r.Old, mem.System().Value(1))
	}
}

func TestTestAndSet(t *testing.T) {
	eng, mem := testMemory(t)
	r := run(t, eng, func(done func(Result)) { mem.TestAndSet(0, 1, done) })
	if r.Old != 0 {
		t.Fatalf("first TAS old = %d, want 0 (acquired)", r.Old)
	}
	r = run(t, eng, func(done func(Result)) { mem.TestAndSet(1, 1, done) })
	if r.Old != 1 {
		t.Fatalf("second TAS old = %d, want 1 (busy)", r.Old)
	}
}

func TestLoadAndStore(t *testing.T) {
	eng, mem := testMemory(t)
	r := run(t, eng, func(done func(Result)) { mem.StoreOp(0, 1, 99, done) })
	if !r.OK {
		t.Fatal("store not OK")
	}
	r = run(t, eng, func(done func(Result)) { mem.LoadOp(1, 1, done) })
	if r.Old != 99 {
		t.Fatalf("load = %d, want 99", r.Old)
	}
}

func TestDoDispatch(t *testing.T) {
	eng, mem := testMemory(t)
	mem.System().SetValue(2, 1)
	cases := []struct {
		p     Primitive
		a, b  uint64
		check func(r Result) bool
	}{
		{CAS, 1, 2, func(r Result) bool { return r.OK && mem.System().Value(2) == 2 }},
		{FAA, 3, 0, func(r Result) bool { return r.Old == 2 && mem.System().Value(2) == 5 }},
		{SWAP, 9, 0, func(r Result) bool { return r.Old == 5 && mem.System().Value(2) == 9 }},
		{TAS, 0, 0, func(r Result) bool { return r.Old == 9 && mem.System().Value(2) == 1 }},
		{Load, 0, 0, func(r Result) bool { return r.Old == 1 }},
		{Store, 7, 0, func(r Result) bool { return mem.System().Value(2) == 7 }},
	}
	for _, c := range cases {
		r := run(t, eng, func(done func(Result)) { mem.Do(c.p, 0, 2, c.a, c.b, done) })
		if !c.check(r) {
			t.Fatalf("%v dispatch failed: %+v value=%d", c.p, r, mem.System().Value(2))
		}
	}
}

func TestCAS2SemanticsAndCost(t *testing.T) {
	eng, mem := testMemory(t)
	mem.System().SetValue(1, 7)
	r := run(t, eng, func(done func(Result)) { mem.CompareAndSwap2(0, 1, 7, 8, done) })
	if !r.OK || mem.System().Value(1) != 8 {
		t.Fatalf("CAS2 success: %+v", r)
	}
	r = run(t, eng, func(done func(Result)) { mem.CompareAndSwap2(0, 1, 7, 9, done) })
	if r.OK || mem.System().Value(1) != 8 {
		t.Fatalf("CAS2 failure: %+v", r)
	}
	// CAS2 costs more than CAS on an owned line.
	rc := run(t, eng, func(done func(Result)) { mem.CompareAndSwap(0, 1, 8, 9, done) })
	r2 := run(t, eng, func(done func(Result)) { mem.CompareAndSwap2(0, 1, 9, 10, done) })
	if r2.Latency <= rc.Latency {
		t.Fatalf("CAS2 (%v) should cost more than CAS (%v)", r2.Latency, rc.Latency)
	}
}

func TestFenceIsCoreLocal(t *testing.T) {
	eng, mem := testMemory(t)
	m := mem.Machine()
	before := mem.System().Stats().Accesses
	r := run(t, eng, func(done func(Result)) { mem.FenceOp(0, done) })
	if r.Latency != m.Lat.ExecFence {
		t.Fatalf("fence latency %v, want %v", r.Latency, m.Lat.ExecFence)
	}
	if mem.System().Stats().Accesses != before {
		t.Fatal("fence generated coherence traffic")
	}
	// Via the generic dispatcher, the line argument is ignored.
	r2 := run(t, eng, func(done func(Result)) { mem.Do(Fence, 3, 999, 0, 0, done) })
	if r2.Latency != m.Lat.ExecFence || !r2.OK {
		t.Fatalf("dispatched fence: %+v", r2)
	}
}

func TestRMWLatencyIncludesExec(t *testing.T) {
	eng, mem := testMemory(t)
	m := mem.Machine()
	// Warm the line so the second op is a pure local hit.
	run(t, eng, func(done func(Result)) { mem.FetchAndAdd(0, 1, 1, done) })
	r := run(t, eng, func(done func(Result)) { mem.FetchAndAdd(0, 1, 1, done) })
	want := m.Lat.L1Hit + m.Lat.ExecFAA
	if r.Latency != want {
		t.Fatalf("owned-line FAA latency = %v, want %v", r.Latency, want)
	}
	// A load on the owned line is cheaper than the FAA.
	rl := run(t, eng, func(done func(Result)) { mem.LoadOp(0, 1, done) })
	if rl.Latency >= r.Latency {
		t.Fatalf("load (%v) should be cheaper than FAA (%v)", rl.Latency, r.Latency)
	}
}

func TestFailedCASStillTransfersLine(t *testing.T) {
	eng, mem := testMemory(t)
	mem.System().SetValue(1, 5)
	run(t, eng, func(done func(Result)) { mem.FetchAndAdd(0, 1, 0, done) }) // owner: core 0
	r := run(t, eng, func(done func(Result)) { mem.CompareAndSwap(3, 1, 999, 1, done) })
	if r.OK {
		t.Fatal("CAS should have failed")
	}
	if r.Access.Source != coherence.SrcRemoteCache {
		t.Fatalf("failed CAS source = %v, want remote transfer", r.Access.Source)
	}
}

func TestContendedFAALinearizable(t *testing.T) {
	eng, mem := testMemory(t)
	const threads, opsEach = 8, 100
	var issue func(core, n int)
	issue = func(core, n int) {
		if n == 0 {
			return
		}
		mem.FetchAndAdd(core, 7, 1, func(Result) { issue(core, n-1) })
	}
	for c := 0; c < threads; c++ {
		issue(c, opsEach)
	}
	eng.Drain()
	if got := mem.System().Value(7); got != threads*opsEach {
		t.Fatalf("counter = %d, want %d", got, threads*opsEach)
	}
	if err := mem.System().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFAAReturnValuesAreUniqueTickets(t *testing.T) {
	// Property: concurrent FAA(1) returns every value 0..N-1 exactly
	// once — the ticket-lock property the paper's fairness section
	// relies on.
	eng, mem := testMemory(t)
	const n = 64
	seen := make(map[uint64]int)
	for c := 0; c < 8; c++ {
		for i := 0; i < n/8; i++ {
			mem.FetchAndAdd(c, 9, 1, func(r Result) { seen[r.Old]++ })
		}
	}
	eng.Drain()
	if len(seen) != n {
		t.Fatalf("distinct tickets = %d, want %d", len(seen), n)
	}
	for v, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("ticket %d issued %d times", v, cnt)
		}
		if v >= n {
			t.Fatalf("ticket %d out of range", v)
		}
	}
}
