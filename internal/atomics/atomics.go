// Package atomics implements the semantics of the atomic primitives the
// paper studies — CAS, FAA (fetch-and-add), SWAP (exchange), TAS
// (test-and-set) — plus plain loads and stores, executed against the
// simulated coherence protocol. Each primitive is a coherence
// transaction (loads are Read; everything else is an RFO, because x86
// locked instructions always take the line exclusive, even a CAS that
// will fail) plus a machine-specific execution occupancy charged while
// the line is held.
//
// In the model pipeline (ARCHITECTURE.md) this package is the bridge
// between the benchmark drivers (internal/workload, internal/apps) and
// the coherence substrate: Memory.Do turns a primitive into a line
// transaction, and ExecCost exposes the per-primitive occupancy e_p
// that MODEL.md §1 adds to every transfer cost.
package atomics

import (
	"fmt"

	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

// Primitive enumerates the operations under study.
type Primitive uint8

const (
	// CAS is compare-and-swap (x86 lock cmpxchg).
	CAS Primitive = iota
	// FAA is fetch-and-add (x86 lock xadd).
	FAA
	// SWAP is atomic exchange (x86 xchg, implicit lock).
	SWAP
	// TAS is test-and-set (x86 lock bts), modeled on a whole word.
	TAS
	// Load is a plain 64-bit load.
	Load
	// Store is a plain 64-bit store.
	Store
	// CAS2 is double-width compare-and-swap (x86 lock cmpxchg16b),
	// the primitive behind version-counter ABA defenses. Coherence-wise
	// it is a normal RFO on one line with a longer execution occupancy.
	CAS2
	// Fence is a full memory barrier (x86 mfence): a core-local
	// pipeline/store-buffer drain with no coherence traffic at all —
	// the contrast that shows contention costs come from the line, not
	// the ordering semantics.
	Fence

	numPrimitives = int(Fence) + 1
)

func (p Primitive) String() string {
	switch p {
	case CAS:
		return "CAS"
	case FAA:
		return "FAA"
	case SWAP:
		return "SWAP"
	case TAS:
		return "TAS"
	case Load:
		return "Load"
	case Store:
		return "Store"
	case CAS2:
		return "CAS2"
	case Fence:
		return "Fence"
	}
	return fmt.Sprintf("Primitive(%d)", uint8(p))
}

// Parse resolves a primitive name (case-sensitive, as printed).
func Parse(name string) (Primitive, error) {
	for p := Primitive(0); int(p) < numPrimitives; p++ {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("atomics: unknown primitive %q", name)
}

// All returns every primitive in display order (Fence last: it is the
// only one without a memory operand).
func All() []Primitive { return []Primitive{CAS, FAA, SWAP, TAS, CAS2, Load, Store, Fence} }

// RMWs returns just the read-modify-write primitives.
func RMWs() []Primitive { return []Primitive{CAS, FAA, SWAP, TAS, CAS2} }

// IsRMW reports whether p is a read-modify-write (needs ownership).
func (p Primitive) IsRMW() bool {
	return p == CAS || p == FAA || p == SWAP || p == TAS || p == CAS2
}

// ExecCost returns the execution occupancy of p on machine m: the time
// the instruction holds the line at its serialization point once the
// data has arrived.
func ExecCost(m *machine.Machine, p Primitive) sim.Time {
	switch p {
	case CAS:
		return m.Lat.ExecCAS
	case FAA:
		return m.Lat.ExecFAA
	case SWAP:
		return m.Lat.ExecSWAP
	case TAS:
		return m.Lat.ExecTAS
	case Load:
		return m.Lat.ExecLoad
	case Store:
		return m.Lat.ExecStore
	case CAS2:
		return m.Lat.ExecCAS2
	case Fence:
		return m.Lat.ExecFence
	}
	panic("atomics: unknown primitive")
}

// Result describes a completed primitive.
type Result struct {
	// Latency is issue to completion, including queueing.
	Latency sim.Time
	// Old is the value the primitive observed at its serialization
	// point (the return value of FAA/SWAP/TAS/CAS/Load; for Store it is
	// the overwritten value).
	Old uint64
	// OK reports CAS success; it is always true for other primitives.
	OK bool
	// Access carries coherence-level detail (source, hops, queueing).
	Access coherence.AccessResult
}

// Memory binds a machine description to a coherence system and exposes
// the primitives. It is the public surface workloads program against.
type Memory struct {
	sys *coherence.System
	m   *machine.Machine
	// Store buffering (opt-in via machine.StoreBufferDepth).
	bufDepth int
	bufs     map[int]*storeBuf
	// ctxPool recycles per-operation contexts so the apply/translate
	// closures every primitive needs are built once, not per operation;
	// allCtxs tracks every context ever created so Reset can reclaim
	// ones that were in flight when a run was cut off.
	ctxPool []*opCtx
	allCtxs []*opCtx
	// casFault, when set, is consulted at every CAS serialization point;
	// returning true forces the CAS to fail even on a matching value.
	// Fault plans (internal/faults) use it to provoke retry storms; nil
	// (the default) costs one branch on the CAS apply path.
	casFault func() bool
}

// SetCASFault installs a forced-failure hook for CAS/CAS2 (nil removes
// it). The hook runs at the serialization point of every CAS, so with a
// deterministic hook the injected retry storm is reproducible.
func (mem *Memory) SetCASFault(fn func() bool) { mem.casFault = fn }

// opCtx carries one in-flight operation's parameters. Its two closures
// (the coherence-level apply and the result translation) are built once
// per context object and read everything through the context pointer,
// so pooled contexts make the primitive layer allocation-free in steady
// state.
type opCtx struct {
	mem        *Memory
	p          Primitive
	arg1, arg2 uint64
	done       func(Result)
	applyFn    coherence.Apply
	doneFn     func(coherence.AccessResult)
}

// apply implements the primitive's read-modify-write semantics at the
// line's serialization point.
func (c *opCtx) apply(cur uint64) (uint64, bool) {
	switch c.p {
	case CAS, CAS2:
		if c.mem.casFault != nil && c.mem.casFault() {
			return cur, false
		}
		if cur == c.arg1 {
			return c.arg2, true
		}
		return cur, false
	case FAA:
		return cur + c.arg1, true
	case SWAP, Store:
		return c.arg1, true
	case TAS:
		return 1, true
	}
	return cur, false // Load and Fence never modify
}

// complete translates the coherence result, recycles the context, and
// invokes the caller's callback.
func (c *opCtx) complete(r coherence.AccessResult) {
	mem, p, done := c.mem, c.p, c.done
	c.done = nil
	mem.ctxPool = append(mem.ctxPool, c)
	if done != nil {
		done(Result{Latency: r.Latency, Old: r.Value, OK: r.Wrote || !p.IsRMW(), Access: r})
	}
}

func (mem *Memory) getCtx(p Primitive, arg1, arg2 uint64, done func(Result)) *opCtx {
	var c *opCtx
	if n := len(mem.ctxPool); n > 0 {
		c = mem.ctxPool[n-1]
		mem.ctxPool = mem.ctxPool[:n-1]
	} else {
		c = &opCtx{mem: mem}
		c.applyFn = c.apply
		c.doneFn = c.complete
		mem.allCtxs = append(mem.allCtxs, c)
	}
	c.p, c.arg1, c.arg2, c.done = p, arg1, arg2, done
	return c
}

// NewMemory wires a memory built from m's parameters onto engine eng
// with the given arbiter (nil means FIFO).
func NewMemory(eng *sim.Engine, m *machine.Machine, arb coherence.Arbiter) (*Memory, error) {
	sys, err := coherence.NewSystem(eng, m.CoherenceParams(), arb)
	if err != nil {
		return nil, err
	}
	return &Memory{sys: sys, m: m, bufDepth: m.StoreBufferDepth}, nil
}

// System exposes the underlying coherence system (stats, tracer, setup).
func (mem *Memory) System() *coherence.System { return mem.sys }

// Reset returns the memory (and its coherence system) to the
// just-constructed state while keeping the operation-context pool and
// every other allocation, so a pooled cell can reuse it with no per-run
// allocation and byte-identical behavior.
func (mem *Memory) Reset() {
	mem.sys.Reset()
	mem.casFault = nil
	for c := range mem.bufs {
		delete(mem.bufs, c)
	}
	// Reclaim contexts whose operations never completed before the
	// run's horizon (their completion events died with the engine).
	mem.ctxPool = mem.ctxPool[:0]
	for _, c := range mem.allCtxs {
		c.done = nil
		mem.ctxPool = append(mem.ctxPool, c)
	}
}

// Machine returns the machine description this memory simulates.
func (mem *Memory) Machine() *machine.Machine { return mem.m }

func (mem *Memory) rmw(core int, line coherence.LineID, c *opCtx) {
	if c.p.IsRMW() && mem.bufDepth > 0 {
		// The lock prefix implies a full fence: drain pending stores
		// first. (Latency reported covers the RFO only; the drain wait
		// shows up as elapsed simulated time.)
		mem.waitDrained(core, func() { mem.issueRMW(core, line, c) })
		return
	}
	// Issue directly — keeping this path free of the drain closure saves
	// an allocation on every operation of every buffer-less run.
	mem.issueRMW(core, line, c)
}

func (mem *Memory) issueRMW(core int, line coherence.LineID, c *opCtx) {
	mem.sys.Access(core, line, coherence.RFO, ExecCost(mem.m, c.p), c.applyFn, c.doneFn)
}

// CompareAndSwap2 is the double-width CAS: identical semantics to
// CompareAndSwap on the simulated 64-bit line value, but charged the
// cmpxchg16b execution occupancy.
func (mem *Memory) CompareAndSwap2(core int, line coherence.LineID, old, new uint64, done func(Result)) {
	mem.rmw(core, line, mem.getCtx(CAS2, old, new, done))
}

// CompareAndSwap atomically replaces the line's value with new if it
// equals old. done receives OK=false and the observed value on failure.
// A failing CAS still acquires the line exclusively (as lock cmpxchg
// does), so it costs the same transfer as a success.
func (mem *Memory) CompareAndSwap(core int, line coherence.LineID, old, new uint64, done func(Result)) {
	mem.rmw(core, line, mem.getCtx(CAS, old, new, done))
}

// FetchAndAdd atomically adds delta, returning the prior value in done.
func (mem *Memory) FetchAndAdd(core int, line coherence.LineID, delta uint64, done func(Result)) {
	mem.rmw(core, line, mem.getCtx(FAA, delta, 0, done))
}

// Swap atomically replaces the value with v, returning the prior value.
func (mem *Memory) Swap(core int, line coherence.LineID, v uint64, done func(Result)) {
	mem.rmw(core, line, mem.getCtx(SWAP, v, 0, done))
}

// TestAndSet atomically sets the value to 1, returning the prior value
// (0 means the caller acquired it).
func (mem *Memory) TestAndSet(core int, line coherence.LineID, done func(Result)) {
	mem.rmw(core, line, mem.getCtx(TAS, 0, 0, done))
}

// LoadOp issues a plain load.
func (mem *Memory) LoadOp(core int, line coherence.LineID, done func(Result)) {
	c := mem.getCtx(Load, 0, 0, done)
	mem.sys.Access(core, line, coherence.Read, ExecCost(mem.m, Load), nil, c.doneFn)
}

// StoreOp issues a plain store of v. With store buffering enabled the
// store retires locally in about a cycle and drains asynchronously;
// otherwise it is a synchronous RFO.
func (mem *Memory) StoreOp(core int, line coherence.LineID, v uint64, done func(Result)) {
	if mem.bufDepth > 0 {
		mem.bufferedStore(core, line, v, done)
		return
	}
	mem.rmw(core, line, mem.getCtx(Store, v, 0, done))
}

// FenceOp drains the issuing core's pipeline and, when store buffering
// is enabled, its store buffer; there is no coherence transaction of
// its own (the drained stores carry their own).
func (mem *Memory) FenceOp(core int, done func(Result)) {
	start := mem.sys.Engine().Now()
	mem.waitDrained(core, func() {
		d := ExecCost(mem.m, Fence)
		mem.sys.Engine().Schedule(d, func() {
			if done != nil {
				done(Result{Latency: mem.sys.Engine().Now() - start, OK: true})
			}
		})
	})
}

// Do dispatches a primitive generically: CAS uses (arg1=old, arg2=new),
// FAA adds arg1, SWAP/Store write arg1, TAS and Load ignore the args,
// Fence ignores the line entirely.
// Workload sweeps use this to treat the primitive as a parameter.
func (mem *Memory) Do(p Primitive, core int, line coherence.LineID, arg1, arg2 uint64, done func(Result)) {
	switch p {
	case Fence:
		mem.FenceOp(core, done)
		return
	case CAS:
		mem.CompareAndSwap(core, line, arg1, arg2, done)
	case CAS2:
		mem.CompareAndSwap2(core, line, arg1, arg2, done)
	case FAA:
		mem.FetchAndAdd(core, line, arg1, done)
	case SWAP:
		mem.Swap(core, line, arg1, done)
	case TAS:
		mem.TestAndSet(core, line, done)
	case Load:
		mem.LoadOp(core, line, done)
	case Store:
		mem.StoreOp(core, line, arg1, done)
	default:
		panic("atomics: unknown primitive")
	}
}
