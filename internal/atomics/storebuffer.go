package atomics

import (
	"atomicsmodel/internal/coherence"
)

// Store buffering (TSO), an opt-in machine feature
// (machine.Machine.StoreBufferDepth > 0).
//
// Real x86 cores retire a plain store in ~1 cycle into a store buffer
// and drain it to the coherence fabric asynchronously; the thread only
// stalls when the buffer is full. Fences — and locked RMWs, whose lock
// prefix implies a full fence — must wait for the buffer to drain.
// This is the mechanism behind two facts the paper's tables show:
// plain stores look nearly free to the issuing thread while atomics on
// the very same line cost tens of cycles, and an atomic's price is
// partly ordering (the drain), not only the line.
//
// Simplification (documented): loads do not snoop the local store
// buffer (no store-to-load forwarding), so buffered mode is meant for
// store/RMW workloads; the default (depth 0) keeps the strict
// semantics every other experiment relies on.

// pendingStore is one store waiting in a core's buffer.
type pendingStore struct {
	line coherence.LineID
	val  uint64
}

// storeBuf is one core's store buffer.
type storeBuf struct {
	q        []pendingStore
	draining bool
	// drainWaiters run when the buffer empties (fences, atomics).
	drainWaiters []func()
	// spaceWaiters run when an entry frees (stalled stores).
	spaceWaiters []func()
}

func (mem *Memory) buf(core int) *storeBuf {
	if mem.bufs == nil {
		mem.bufs = make(map[int]*storeBuf)
	}
	b, ok := mem.bufs[core]
	if !ok {
		b = &storeBuf{}
		mem.bufs[core] = b
	}
	return b
}

// bufferedStore retires the store locally and queues the drain.
func (mem *Memory) bufferedStore(core int, line coherence.LineID, v uint64, done func(Result)) {
	b := mem.buf(core)
	if len(b.q) >= mem.bufDepth {
		// Buffer full: the store stalls until a drain completes.
		b.spaceWaiters = append(b.spaceWaiters, func() {
			mem.bufferedStore(core, line, v, done)
		})
		return
	}
	b.q = append(b.q, pendingStore{line: line, val: v})
	retire := mem.m.Lat.L1Hit // address generation + buffer write
	mem.sys.Engine().Schedule(retire, func() {
		if done != nil {
			// The overwritten value is unknown at retire time; buffered
			// stores report Old = 0 by construction.
			done(Result{Latency: retire, OK: true})
		}
	})
	if !b.draining {
		b.draining = true
		mem.drain(core)
	}
}

// drain writes the buffer head to the coherence system, then continues.
func (mem *Memory) drain(core int) {
	b := mem.buf(core)
	if len(b.q) == 0 {
		b.draining = false
		waiters := b.drainWaiters
		b.drainWaiters = nil
		for _, w := range waiters {
			w()
		}
		return
	}
	head := b.q[0]
	mem.sys.Access(core, head.line, coherence.RFO, mem.m.Lat.ExecStore,
		func(cur uint64) (uint64, bool) { return head.val, true },
		func(coherence.AccessResult) {
			b.q = b.q[1:]
			if len(b.spaceWaiters) > 0 {
				w := b.spaceWaiters[0]
				b.spaceWaiters = b.spaceWaiters[1:]
				w()
			}
			mem.drain(core)
		})
}

// waitDrained runs fn once the core's store buffer is empty (fences and
// locked RMWs). It runs immediately when nothing is pending.
func (mem *Memory) waitDrained(core int, fn func()) {
	if mem.bufDepth == 0 {
		fn()
		return
	}
	b := mem.buf(core)
	if len(b.q) == 0 && !b.draining {
		fn()
		return
	}
	b.drainWaiters = append(b.drainWaiters, fn)
}

// PendingStores reports how many stores core has waiting to drain
// (tests and experiments).
func (mem *Memory) PendingStores(core int) int {
	if mem.bufDepth == 0 || mem.bufs == nil {
		return 0
	}
	if b, ok := mem.bufs[core]; ok {
		return len(b.q)
	}
	return 0
}
