package atomics

import (
	"testing"

	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

func bufMemory(t *testing.T, depth int) (*sim.Engine, *Memory) {
	t.Helper()
	eng := sim.NewEngine()
	m := machine.XeonE5()
	m.StoreBufferDepth = depth
	mem, err := NewMemory(eng, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	return eng, mem
}

func TestBufferedStoreRetiresFast(t *testing.T) {
	eng, mem := bufMemory(t, 42)
	r := run(t, eng, func(done func(Result)) { mem.StoreOp(0, 1, 7, done) })
	if r.Latency != mem.Machine().Lat.L1Hit {
		t.Fatalf("buffered store retire latency %v, want L1 %v", r.Latency, mem.Machine().Lat.L1Hit)
	}
	// The drain already happened (we drained the engine): value visible.
	if mem.System().Value(1) != 7 {
		t.Fatalf("drained value %d, want 7", mem.System().Value(1))
	}
	if mem.PendingStores(0) != 0 {
		t.Fatal("buffer not empty after drain")
	}
}

func TestBufferedStoresDrainInOrder(t *testing.T) {
	eng, mem := bufMemory(t, 42)
	// Two stores to the same line: the later value must win (FIFO drain).
	mem.StoreOp(0, 1, 1, nil)
	mem.StoreOp(0, 1, 2, nil)
	eng.Drain()
	if got := mem.System().Value(1); got != 2 {
		t.Fatalf("final value %d, want 2 (program order)", got)
	}
}

func TestBufferFullStalls(t *testing.T) {
	eng, mem := bufMemory(t, 2)
	// Issue 5 stores back to back; with depth 2 the issuing "thread"
	// must stall, but all must eventually drain.
	retired := 0
	for i := 0; i < 5; i++ {
		mem.StoreOp(0, coherence.LineID(100+i), uint64(i), func(Result) { retired++ })
	}
	if mem.PendingStores(0) > 2 {
		t.Fatalf("buffer overfilled: %d", mem.PendingStores(0))
	}
	eng.Drain()
	if retired != 5 {
		t.Fatalf("retired %d/5", retired)
	}
	for i := 0; i < 5; i++ {
		if mem.System().Value(coherence.LineID(100+i)) != uint64(i) {
			t.Fatalf("store %d lost", i)
		}
	}
}

func TestAtomicImpliesFence(t *testing.T) {
	eng, mem := bufMemory(t, 42)
	// Park a store in the buffer whose drain is slow (remote line), then
	// issue an FAA: the FAA must serialize after the drain.
	mem.System().SetValue(1, 0)
	var faaDone sim.Time
	var storeVisibleAtFAA bool
	mem.StoreOp(0, 1, 99, nil) // will drain via RFO
	mem.FetchAndAdd(0, 2, 1, func(Result) {
		faaDone = eng.Now()
		storeVisibleAtFAA = mem.System().Value(1) == 99
	})
	eng.Drain()
	if !storeVisibleAtFAA {
		t.Fatal("locked RMW overtook a buffered store (missing implicit fence)")
	}
	if faaDone == 0 {
		t.Fatal("FAA never completed")
	}
}

func TestFenceWaitsForDrain(t *testing.T) {
	eng, mem := bufMemory(t, 42)
	mem.StoreOp(0, 1, 5, nil)
	r := run(t, eng, func(done func(Result)) { mem.FenceOp(0, done) })
	// The fence's reported latency includes the drain wait: it must
	// exceed the bare ExecFence.
	if r.Latency <= mem.Machine().Lat.ExecFence {
		t.Fatalf("fence latency %v did not include the drain", r.Latency)
	}
	if mem.System().Value(1) != 5 {
		t.Fatal("fence completed before the store drained")
	}
}

func TestUnbufferedSemanticsUnchanged(t *testing.T) {
	eng, mem := bufMemory(t, 0)
	r := run(t, eng, func(done func(Result)) { mem.StoreOp(0, 1, 7, done) })
	// Synchronous store: full miss latency, value observed.
	if r.Latency <= mem.Machine().Lat.L1Hit {
		t.Fatalf("unbuffered store too fast: %v", r.Latency)
	}
	if mem.PendingStores(0) != 0 {
		t.Fatal("phantom pending stores")
	}
}
