package atomics

import (
	"testing"

	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

const bigBase coherence.LineID = 1 << 10

func TestBigAtomicValidation(t *testing.T) {
	_, mem := testMemory(t)
	if _, err := NewBigAtomic(mem, bigBase, 0); err == nil {
		t.Fatal("words=0 accepted")
	}
	if _, err := NewBigAtomic(mem, bigBase, 4); err != nil {
		t.Fatal(err)
	}
}

// TestBigAtomicSequential drives reads and updates from one core and
// checks the version/word bookkeeping.
func TestBigAtomicSequential(t *testing.T) {
	eng, mem := testMemory(t)
	b, err := NewBigAtomic(mem, bigBase, 4)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for i := 0; i < 5; i++ {
		b.Update(0, func() { steps++ })
		eng.Drain()
		b.Read(1, func() { steps++ })
		eng.Drain()
	}
	if steps != 10 {
		t.Fatalf("completed %d ops, want 10", steps)
	}
	reads, updates, _, _, torn := b.Stats()
	if reads != 5 || updates != 5 {
		t.Fatalf("reads=%d updates=%d, want 5/5", reads, updates)
	}
	if torn != 0 {
		t.Fatalf("torn reads: %d", torn)
	}
	// After 5 updates the version is 10 and every word carries
	// generation 5.
	if v := mem.System().Value(bigBase); v != 10 {
		t.Fatalf("version = %d, want 10", v)
	}
	for i := 0; i < 4; i++ {
		if g := mem.System().Value(bigBase + 1 + coherence.LineID(i)); g != 5 {
			t.Fatalf("word %d generation = %d, want 5", i, g)
		}
	}
	if b.Attempts() < reads+updates {
		t.Fatalf("attempts %d below completed ops", b.Attempts())
	}
}

// TestBigAtomicConcurrent interleaves readers and writers on separate
// cores: the seqlock must deliver zero torn reads, and every word must
// agree with the final version.
func TestBigAtomicConcurrent(t *testing.T) {
	for _, words := range []int{1, 2, 4, 8} {
		eng := sim.NewEngine()
		mem, err := NewMemory(eng, machine.XeonE5(), nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewBigAtomic(mem, bigBase, words)
		if err != nil {
			t.Fatal(err)
		}
		const perCore = 40
		for core := 0; core < 8; core++ {
			core := core
			n := 0
			var loop func()
			loop = func() {
				if n >= perCore {
					return
				}
				n++
				if core%2 == 0 {
					b.Update(core, loop)
				} else {
					b.Read(core, loop)
				}
			}
			eng.Schedule(sim.Time(core+1), loop)
		}
		eng.Drain()
		reads, updates, _, _, torn := b.Stats()
		if reads != 4*perCore || updates != 4*perCore {
			t.Fatalf("words=%d: reads=%d updates=%d, want %d each", words, reads, updates, 4*perCore)
		}
		if torn != 0 {
			t.Fatalf("words=%d: %d torn reads", words, torn)
		}
		if words > 1 {
			if v := mem.System().Value(bigBase); v != 2*uint64(updates) {
				t.Fatalf("words=%d: version %d, want %d", words, v, 2*updates)
			}
			for i := 0; i < words; i++ {
				if g := mem.System().Value(bigBase + 1 + coherence.LineID(i)); g != uint64(updates) {
					t.Fatalf("words=%d: word %d generation %d, want %d", words, i, g, updates)
				}
			}
		} else if v := mem.System().Value(bigBase + 1); v != uint64(updates) {
			t.Fatalf("words=1: value %d, want %d", v, updates)
		}
	}
}

// TestBigAtomicDoesNotAllocate extends the access path's zero-alloc
// contract (see coherence.TestAccessDoesNotAllocate) to the big-atomic
// object: once the context pools are warm, reads and updates allocate
// nothing per operation.
func TestBigAtomicDoesNotAllocate(t *testing.T) {
	for _, words := range []int{1, 4} {
		eng, mem := testMemory(t)
		b, err := NewBigAtomic(mem, bigBase, words)
		if err != nil {
			t.Fatal(err)
		}
		noop := func() {}
		// Warm the op pools (and the coherence/atomics pools below).
		b.Update(0, noop)
		eng.Drain()
		b.Read(1, noop)
		eng.Drain()
		i := 0
		avg := testing.AllocsPerRun(200, func() {
			if i%2 == 0 {
				b.Update(i%8, noop)
			} else {
				b.Read(i%8, noop)
			}
			eng.Drain()
			i++
		})
		if avg != 0 {
			t.Fatalf("words=%d: big atomic op allocates %.1f allocs/op, want 0", words, avg)
		}
	}
}
