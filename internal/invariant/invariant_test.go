package invariant_test

import (
	"strings"
	"testing"

	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/invariant"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/topology"
)

// checkedSystem builds a small ring system with a checker installed.
func checkedSystem(t *testing.T, arb coherence.Arbiter) (*sim.Engine, *coherence.System, *invariant.Checker) {
	t.Helper()
	eng := sim.NewEngine()
	p := coherence.Params{
		NumCores:       8,
		Topo:           topology.NewRing(8),
		NodeOf:         func(c int) int { return c },
		L1Hit:          1 * sim.Nanosecond,
		DirLookup:      2 * sim.Nanosecond,
		HopLatency:     1 * sim.Nanosecond,
		LLCHit:         10 * sim.Nanosecond,
		DRAM:           60 * sim.Nanosecond,
		InvalidateCost: 3 * sim.Nanosecond,
	}
	sys, err := coherence.NewSystem(eng, p, arb)
	if err != nil {
		t.Fatal(err)
	}
	return eng, sys, invariant.Install(eng, sys)
}

func faa(cur uint64) (uint64, bool) { return cur + 1, true }

func TestCleanRunIsViolationFree(t *testing.T) {
	eng, sys, chk := checkedSystem(t, nil)
	// Contend one line from four cores, several rounds each, so grants,
	// invalidations, and the value chain all get exercised.
	for round := 0; round < 5; round++ {
		for core := 0; core < 4; core++ {
			sys.Access(core, 1, coherence.RFO, 0, faa, func(coherence.AccessResult) {})
		}
		eng.Drain()
	}
	if err := chk.Finalize(); err != nil {
		t.Fatalf("clean contended run reported violations: %v", err)
	}
	if got := sys.Value(1); got != 20 {
		t.Fatalf("line value = %d after 20 FAAs, want 20", got)
	}
}

func TestSeededDoubleOwnerCaught(t *testing.T) {
	run := func() error {
		eng, sys, chk := checkedSystem(t, nil)
		sys.Access(0, 1, coherence.RFO, 0, faa, func(coherence.AccessResult) {})
		eng.Drain()
		sys.BreakLine(1, 2) // ghost sharer alongside owner 0
		return chk.Finalize()
	}
	err := run()
	if err == nil {
		t.Fatal("seeded double owner escaped the checker")
	}
	msg := err.Error()
	if !strings.HasPrefix(msg, "invariant: 1 violation(s)") {
		t.Fatalf("report %q lacks the violation-count prefix", msg)
	}
	if !strings.Contains(msg, "line 1: owner 0 coexists with 1 sharers") {
		t.Fatalf("report %q does not pinpoint the double owner", msg)
	}
	// The report must be deterministic: same seed state, same bytes.
	if second := run(); second == nil || second.Error() != msg {
		t.Fatalf("reports differ across identical runs:\n  %v\n  %v", msg, second)
	}
}

func TestOnlineSingleOwnerAndRangeChecks(t *testing.T) {
	_, _, chk := checkedSystem(t, nil)
	chk.LineGranted(coherence.AuditGrant{
		Line: 7, Core: 1, Kind: coherence.RFO,
		Owner: 2, Sharers: 3, Valid: true,
	})
	chk.LineGranted(coherence.AuditGrant{
		Line: 8, Core: 0, Kind: coherence.Read,
		Owner: 99, Sharers: 0, Valid: true, // out of the 8-core range
	})
	chk.LineGranted(coherence.AuditGrant{
		Line: 9, Core: 0, Kind: coherence.Read,
		Owner: 3, Valid: false, // cached but marked invalid
	})
	v := chk.Violations()
	if len(v) != 3 {
		t.Fatalf("violations = %v, want exactly 3", v)
	}
	if !strings.Contains(v[0], "single-owner: line 7 owned by core 2") ||
		!strings.Contains(v[0], "3 sharers") {
		t.Fatalf("double-owner report: %q", v[0])
	}
	if !strings.Contains(v[1], "owner-range: line 8 owner 99 outside [0,8)") {
		t.Fatalf("owner-range report: %q", v[1])
	}
	if !strings.Contains(v[2], "single-owner: line 9 cached (owner 3, 0 sharers) but marked not valid") {
		t.Fatalf("invalid-but-cached report: %q", v[2])
	}
}

func TestGrantTimeMonotonicity(t *testing.T) {
	_, _, chk := checkedSystem(t, nil)
	chk.LineGranted(coherence.AuditGrant{Line: 1, Core: 0, Owner: 0, Valid: true, At: 100 * sim.Nanosecond})
	chk.LineGranted(coherence.AuditGrant{Line: 1, Core: 1, Owner: 1, Valid: true, At: 50 * sim.Nanosecond})
	v := chk.Violations()
	if len(v) != 1 || !strings.Contains(v[0], "event-monotone: line 1 granted at t=50.000ns after a grant at t=100.000ns") {
		t.Fatalf("violations = %v, want one grant-time regression", v)
	}
	// A different line keeps its own clock: no cross-line false positive.
	chk.LineGranted(coherence.AuditGrant{Line: 2, Core: 0, Owner: 0, Valid: true, At: 60 * sim.Nanosecond})
	if len(chk.Violations()) != 1 {
		t.Fatalf("cross-line grant flagged: %v", chk.Violations())
	}
}

func TestSkipBound(t *testing.T) {
	_, _, chk := checkedSystem(t, &coherence.LocalityArbiter{MaxSkips: 4})
	// Skipped == bound + queue is legal: every queued request could also
	// be at the bound and force-granted first.
	chk.LineGranted(coherence.AuditGrant{Line: 1, Core: 0, Owner: 0, Valid: true, Skipped: 6, QueueLen: 2})
	if v := chk.Violations(); len(v) != 0 {
		t.Fatalf("legal skip count flagged: %v", v)
	}
	chk.LineGranted(coherence.AuditGrant{Line: 1, Core: 0, Owner: 0, Valid: true, Skipped: 10, QueueLen: 2})
	v := chk.Violations()
	if len(v) != 1 || !strings.Contains(v[0], "skip-bound: line 1 granted core 0 after 10 skips (bound 4, queue 2)") {
		t.Fatalf("violations = %v, want one starvation report", v)
	}
}

func TestSkipBoundIgnoredForUnboundedArbiters(t *testing.T) {
	_, _, chk := checkedSystem(t, coherence.FIFOArbiter{})
	chk.LineGranted(coherence.AuditGrant{Line: 1, Core: 0, Owner: 0, Valid: true, Skipped: 1000})
	if v := chk.Violations(); len(v) != 0 {
		t.Fatalf("unbounded arbiter flagged for skips: %v", v)
	}
}

func TestValueConservation(t *testing.T) {
	_, _, chk := checkedSystem(t, nil)
	chk.ValueSeeded(3, 10)
	chk.AccessCompleted(coherence.AuditComplete{Line: 3, Core: 0, Kind: coherence.RFO,
		Observed: 10, Wrote: true, New: 11})
	chk.AccessCompleted(coherence.AuditComplete{Line: 3, Core: 1, Kind: coherence.Read,
		Observed: 11})
	if v := chk.Violations(); len(v) != 0 {
		t.Fatalf("intact value chain flagged: %v", v)
	}
	// A torn/lost update: the next serialized access sees a value nobody
	// wrote.
	chk.AccessCompleted(coherence.AuditComplete{Line: 3, Core: 2, Kind: coherence.RFO,
		Observed: 99, Wrote: true, New: 100})
	v := chk.Violations()
	if len(v) != 1 || !strings.Contains(v[0], "value-conserve: line 3 RFO by core 2 observed 99, last serialized value was 11 (lost update)") {
		t.Fatalf("violations = %v, want one lost update", v)
	}
	// The chain re-anchors on the observed value, so one corruption
	// yields one report, not a cascade.
	chk.AccessCompleted(coherence.AuditComplete{Line: 3, Core: 3, Kind: coherence.Read,
		Observed: 100})
	if len(chk.Violations()) != 1 {
		t.Fatalf("corruption cascaded: %v", chk.Violations())
	}
}

func TestQueueConservation(t *testing.T) {
	_, sys, chk := checkedSystem(t, nil)
	_ = sys
	chk.LineEnqueued(5, 1) // enqueued but never granted and not queued
	err := chk.Finalize()
	if err == nil || !strings.Contains(err.Error(), "queue-conserve: line 5 enqueued 1 requests but granted 0 with 0 still queued") {
		t.Fatalf("lost request not reported: %v", err)
	}
}

func TestViolationCapKeepsCount(t *testing.T) {
	_, _, chk := checkedSystem(t, nil)
	for i := 0; i < 20; i++ {
		chk.LineGranted(coherence.AuditGrant{Line: coherence.LineID(i), Core: 0,
			Owner: 1, Sharers: 1, Valid: true})
	}
	err := chk.Err()
	if err == nil {
		t.Fatal("no error after 20 violations")
	}
	msg := err.Error()
	if !strings.HasPrefix(msg, "invariant: 20 violation(s)") {
		t.Fatalf("report %q lost the true count", msg)
	}
	if !strings.Contains(msg, "(+12 more violations)") {
		t.Fatalf("report %q does not mark truncation", msg)
	}
	if got := len(chk.Violations()); got != 8 {
		t.Fatalf("recorded %d violations, cap is 8", got)
	}
}
