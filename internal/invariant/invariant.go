// Package invariant installs online checkers on the coherence directory
// and the simulation engine, turning silent protocol corruption into
// loud, deterministic errors. The paper's model is validated against
// the simulator, so a coherence bug that never crashes — two cores both
// believing they own a line, a lost sharer invalidation, event time
// running backwards — would skew every latency/throughput/fairness
// table while every test stays green. With checking enabled (the
// `-check` flag on atomicsim/atomicreport; workload.Config.Check /
// apps.RunConfig.Check underneath) every directory transition and every
// completed serialized access is audited as it happens, and Finalize
// sweeps the end-of-run state.
//
// Checked invariants, mapped to the assumptions MODEL.md leans on:
//
//	single-owner      — a line in M/E has exactly one owner and no
//	                    sharers (MODEL.md §1: one transfer source).
//	owner-range       — the owner is a real core.
//	event-monotone    — simulated time never moves backwards
//	                    (MODEL.md §2 queueing math assumes a clock).
//	queue-conserve    — per line, requests enqueued = granted + still
//	                    queued at the end (no lost or duplicated grants).
//	skip-bound        — a bounded-skip arbiter never bypasses a request
//	                    more than its bound plus the queue it stands in
//	                    (the anti-starvation property F-series fairness
//	                    tables depend on).
//	value-conserve    — the 64-bit line value observed at each
//	                    serialization point equals the value the
//	                    previous serialized access left behind: no lost
//	                    CAS/FAI updates, no torn values.
//
// Violations are collected (capped) in simulation order, so a given
// seed reports the same violations in the same order at any -par. In
// the pipeline (ARCHITECTURE.md) this package sits beside
// internal/metrics: both observe the substrate through nil-guarded
// hooks that cost nothing when off; DESIGN.md ("Fault injection and
// invariants") covers the design.
package invariant

import (
	"fmt"
	"sort"
	"strings"

	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/sim"
)

// maxViolations caps how many violations a checker records; one is
// enough to fail the cell, a handful is enough to debug it, and an
// unbounded list could swallow a long run's memory.
const maxViolations = 8

// lineAudit is the per-line ledger.
type lineAudit struct {
	enqueued int64
	granted  int64
	// lastValue is the value the previous serialized access left on the
	// line; seeded reports whether anything (SetValue or a completed
	// service) has established it yet.
	lastValue uint64
	seeded    bool
	// lastGrantAt guards per-line grant-time monotonicity.
	lastGrantAt sim.Time
}

// Checker audits one cell's engine and coherence system. It is not
// safe for concurrent use — a cell is single-threaded by construction
// (parallelism lives across cells, never inside one).
type Checker struct {
	eng *sim.Engine
	sys *coherence.System
	// skipBound is the arbiter's starvation bound (0 = unbounded).
	skipBound  int
	lines      map[coherence.LineID]*lineAudit
	violations []string
	truncated  int // violations dropped past the cap
}

// Install attaches a checker to eng and sys: it becomes the system's
// auditor and the engine's monotonicity check. The returned Checker
// must be finalized after the run.
func Install(eng *sim.Engine, sys *coherence.System) *Checker {
	c := &Checker{
		eng:   eng,
		sys:   sys,
		lines: make(map[coherence.LineID]*lineAudit),
	}
	if la, ok := sys.Arbiter().(*coherence.LocalityArbiter); ok && la.MaxSkips > 0 {
		c.skipBound = la.MaxSkips
	}
	sys.SetAuditor(c)
	eng.SetMonotoneCheck(func(err error) {
		c.report("event-monotone: %v", err)
	})
	return c
}

func (c *Checker) report(format string, args ...interface{}) {
	if len(c.violations) >= maxViolations {
		c.truncated++
		return
	}
	c.violations = append(c.violations,
		fmt.Sprintf("t=%v: ", c.eng.Now())+fmt.Sprintf(format, args...))
}

func (c *Checker) line(id coherence.LineID) *lineAudit {
	la, ok := c.lines[id]
	if !ok {
		la = &lineAudit{}
		c.lines[id] = la
	}
	return la
}

// LineEnqueued implements coherence.Auditor.
func (c *Checker) LineEnqueued(id coherence.LineID, queueLen int) {
	c.line(id).enqueued++
}

// LineGranted implements coherence.Auditor: post-transition directory
// exclusivity, owner range, skip bound, and grant-time monotonicity.
func (c *Checker) LineGranted(g coherence.AuditGrant) {
	la := c.line(g.Line)
	la.granted++
	if g.At < la.lastGrantAt {
		c.report("event-monotone: line %d granted at t=%v after a grant at t=%v", g.Line, g.At, la.lastGrantAt)
	}
	la.lastGrantAt = g.At
	if g.Owner >= 0 && g.Sharers > 0 {
		c.report("single-owner: line %d owned by core %d (dirty=%v) with %d sharers after %s grant to core %d",
			g.Line, g.Owner, g.OwnerDirty, g.Sharers, g.Kind, g.Core)
	}
	if n := c.sys.Params().NumCores; g.Owner >= n {
		c.report("owner-range: line %d owner %d outside [0,%d)", g.Line, g.Owner, n)
	}
	if !g.Valid && (g.Owner >= 0 || g.Sharers > 0) {
		c.report("single-owner: line %d cached (owner %d, %d sharers) but marked not valid", g.Line, g.Owner, g.Sharers)
	}
	// A bounded arbiter force-grants a request once it has been skipped
	// MaxSkips times; it can then be bypassed only by requests that also
	// hit the bound, of which there are at most QueueLen.
	if c.skipBound > 0 && g.Skipped > c.skipBound+g.QueueLen {
		c.report("skip-bound: line %d granted core %d after %d skips (bound %d, queue %d)",
			g.Line, g.Core, g.Skipped, c.skipBound, g.QueueLen)
	}
}

// AccessCompleted implements coherence.Auditor: the 64-bit value chain.
// Serialized services are granted one at a time per line, so each must
// observe exactly the value its predecessor left.
func (c *Checker) AccessCompleted(a coherence.AuditComplete) {
	la := c.line(a.Line)
	if la.seeded && a.Observed != la.lastValue {
		c.report("value-conserve: line %d %s by core %d observed %d, last serialized value was %d (lost update)",
			a.Line, a.Kind, a.Core, a.Observed, la.lastValue)
	}
	la.seeded = true
	la.lastValue = a.Observed
	if a.Wrote {
		la.lastValue = a.New
	}
}

// ValueSeeded implements coherence.Auditor.
func (c *Checker) ValueSeeded(id coherence.LineID, v uint64) {
	la := c.line(id)
	la.seeded = true
	la.lastValue = v
}

// Finalize runs the end-of-run sweeps — per-line queue conservation,
// plus the system's own full directory check — and returns a single
// deterministic error describing every recorded violation, or nil if
// the run was clean. It must be called after the engine has stopped.
func (c *Checker) Finalize() error {
	// Deterministic line order for the conservation sweep.
	ids := make([]coherence.LineID, 0, len(c.lines))
	for id := range c.lines {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		la := c.lines[id]
		queued := int64(c.sys.Directory(id).Queue)
		if la.granted+queued != la.enqueued {
			c.report("queue-conserve: line %d enqueued %d requests but granted %d with %d still queued",
				id, la.enqueued, la.granted, queued)
		}
	}
	if err := c.sys.CheckInvariants(); err != nil {
		c.report("directory: %v", err)
	}
	return c.Err()
}

// Err returns the violations recorded so far as one error (nil if
// none). Finalize is the usual entry point; Err exists for mid-run
// probes in tests.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	msg := strings.Join(c.violations, "; ")
	if c.truncated > 0 {
		msg += fmt.Sprintf(" (+%d more violations)", c.truncated)
	}
	return fmt.Errorf("invariant: %d violation(s): %s", len(c.violations)+c.truncated, msg)
}

// Violations returns the recorded violation strings (tests).
func (c *Checker) Violations() []string { return c.violations }
