package bottleneck_test

import (
	"math/rand"
	"testing"

	"atomicsmodel/internal/bottleneck"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/metrics"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/workload"
)

// snap builds a snapshot with a window and the given occupancy vectors
// (nil skips a vector, modeling a cell that never recorded it).
func snap(t *testing.T, window uint64, dir, line, link []uint64, queueTime uint64) *metrics.Snapshot {
	t.Helper()
	r := metrics.New()
	r.Counter(metrics.WorkWindow).Add(window)
	r.Counter(metrics.SimQueueTime).Add(queueTime)
	for _, v := range []struct {
		name string
		vals []uint64
	}{
		{metrics.CohDirBusy, dir},
		{metrics.CohLineBusy, line},
		{metrics.CohLinkBusy, link},
	} {
		if v.vals == nil {
			continue
		}
		vec := r.Vector(v.name, len(v.vals))
		for i, n := range v.vals {
			vec.Add(i, n)
		}
	}
	return r.Snapshot()
}

func TestAnalyzeBusiestAndClamp(t *testing.T) {
	s := snap(t, 1000,
		[]uint64{100, 900, 50}, // dir 1 busiest at 0.9
		[]uint64{1500, 200},    // line 0 over the window: clamps to 1
		[]uint64{0, 0, 250},    // link 2 busiest at 0.25
		2000)                   // queue avg 2.0
	rep, err := bottleneck.Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WindowPS != 1000 {
		t.Fatalf("window = %d", rep.WindowPS)
	}
	if !rep.Dir.OK || rep.Dir.Busiest != 1 || rep.Dir.Util != 0.9 {
		t.Fatalf("dir = %+v", rep.Dir)
	}
	if !rep.Line.OK || rep.Line.Busiest != 0 || rep.Line.Util != 1 {
		t.Fatalf("line not clamped to 1: %+v", rep.Line)
	}
	if !rep.Link.OK || rep.Link.Busiest != 2 || rep.Link.Util != 0.25 {
		t.Fatalf("link = %+v", rep.Link)
	}
	if rep.QueueAvg != 2.0 {
		t.Fatalf("queue avg = %v", rep.QueueAvg)
	}

	v := rep.Verdict(0.9)
	if v.Resource != "line" || !v.Saturated || v.Util != 1 {
		t.Fatalf("verdict = %+v", v)
	}
	if v := rep.Verdict(0); v.Resource != "line" {
		t.Fatalf("default-threshold verdict = %+v", v)
	}
}

func TestAnalyzeMissingVectorsAndWindow(t *testing.T) {
	if _, err := bottleneck.Analyze(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if _, err := bottleneck.Analyze(metrics.New().Snapshot()); err == nil {
		t.Fatal("snapshot without work.window_ps accepted")
	}
	rep, err := bottleneck.Analyze(snap(t, 1000, []uint64{10}, nil, nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Line.OK || rep.Link.OK {
		t.Fatalf("absent vectors reported OK: %+v", rep)
	}
	if v := rep.Verdict(0.9); v.Resource != "dir" {
		t.Fatalf("verdict should skip absent resources: %+v", v)
	}
	none, err := bottleneck.Analyze(snap(t, 1000, nil, nil, nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	if v := none.Verdict(0.9); v.Resource != "none" || v.Saturated {
		t.Fatalf("all-absent verdict = %+v", v)
	}
}

func TestKnee(t *testing.T) {
	mk := func(util float64) *bottleneck.Report {
		return &bottleneck.Report{
			Dir: bottleneck.Utilization{Resource: "dir", Util: util, OK: true},
		}
	}
	points := []bottleneck.Point{
		{Threads: 1, Report: mk(0.3)},
		{Threads: 2, Report: nil}, // failed cell: skipped
		{Threads: 4, Report: mk(0.95)},
		{Threads: 8, Report: mk(0.99)},
	}
	n, res, util := bottleneck.Knee(points, 0.9)
	if n != 4 || res != "dir" || util != 0.95 {
		t.Fatalf("knee = %d %s %v", n, res, util)
	}
	if n, _, _ := bottleneck.Knee(points, 1.1); n != 0 {
		t.Fatalf("impossible threshold found a knee at %d", n)
	}
}

// TestOccupancyBoundsFuzzedSpecs is the property test: whatever the
// workload shape — primitive, mode, think time, arrival process, line
// striping — every rolled-up utilization is a fraction in [0, 1].
func TestOccupancyBoundsFuzzedSpecs(t *testing.T) {
	m := machine.XeonE5()
	rng := rand.New(rand.NewSource(7))
	prims := []string{"CAS", "FAA", "SWAP", "TAS", "Load", "Store"}
	modes := []string{"high-contention", "low-contention", "read-write-mix"}
	for i := 0; i < 25; i++ {
		sp := &workload.Spec{
			Primitive:  prims[rng.Intn(len(prims))],
			Mode:       modes[rng.Intn(len(modes))],
			Threads:    1 + rng.Intn(16),
			Lines:      1 + rng.Intn(4),
			WarmupPS:   2 * sim.Microsecond,
			DurationPS: 20 * sim.Microsecond,
			Seed:       uint64(i + 1),
		}
		if sp.Mode == "read-write-mix" {
			sp.ReadFraction = rng.Float64()
		}
		if rng.Intn(2) == 0 {
			sp.LocalWorkPS = sim.Time(rng.Intn(5000))
			sp.WorkJitter = sp.LocalWorkPS > 0 && rng.Intn(2) == 0
		}
		if rng.Intn(4) == 0 {
			sp.OpenLoop = true
			sp.OpenLoopInterarrivalPS = sim.Time(1 + rng.Intn(100000))
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("spec %d invalid: %v", i, err)
		}
		cfg, err := sp.Config(m)
		if err != nil {
			t.Fatalf("spec %d config: %v", i, err)
		}
		cfg.Metrics = true
		res, err := workload.Run(cfg)
		if err != nil {
			t.Fatalf("spec %d run: %v", i, err)
		}
		rep, err := bottleneck.Analyze(res.Metrics)
		if err != nil {
			t.Fatalf("spec %d analyze: %v", i, err)
		}
		for _, u := range []bottleneck.Utilization{rep.Dir, rep.Line, rep.Link} {
			if u.Util < 0 || u.Util > 1 {
				t.Fatalf("spec %d (%s/%s t=%d): %s utilization %v outside [0,1]",
					i, sp.Primitive, sp.Mode, sp.Threads, u.Resource, u.Util)
			}
		}
		if rep.QueueAvg < 0 {
			t.Fatalf("spec %d: negative queue avg %v", i, rep.QueueAvg)
		}
	}
}
