// Package bottleneck rolls a metrics snapshot up into per-resource
// utilization figures and an automatic saturation verdict. The inputs
// are the duration-weighted occupancy accumulators the coherence and
// event layers record under metrics (coh.occ.dir_busy_ps,
// coh.occ.line_busy_ps, coh.occ.link_busy_ps, sim.queue_time_ps) and
// the measured-window length (work.window_ps); the output names which
// resource — a directory/LLC slice, a cache line's serialization
// point, or an interconnect link — is closest to saturation, and, over
// a thread ladder, the knee thread count where it first crosses a
// threshold. This is the measured mirror of MODEL.md's analytical
// occupancy bound: the model predicts max_j occ_j from the workload
// mix, this package reads it back out of a simulated cell.
package bottleneck

import (
	"errors"

	"atomicsmodel/internal/metrics"
)

// DefaultThreshold is the utilization at which a resource counts as
// saturating for knee detection. 0.9 rather than 1.0 because a
// serialization point pinned above 90% busy already sets throughput;
// the last few percent are arrival-jitter noise.
const DefaultThreshold = 0.9

// Utilization is one resource class's rollup: the busiest instance of
// the class (the max over the vector, since the hottest instance — not
// the average — is what bounds throughput) and its busy-fraction of
// the measured window. OK is false when the cell recorded no vector
// for the class (e.g. link occupancy on a topology with no router);
// such resources render as "n/a" and are skipped by Verdict.
type Utilization struct {
	Resource string  // "dir", "line", or "link"
	Busiest  int     // index of the busiest instance within its vector
	BusyPS   uint64  // busy picoseconds of that instance
	Util     float64 // BusyPS / window, clamped to [0, 1]
	OK       bool    // vector present in the snapshot
}

// Report is the full per-cell rollup.
type Report struct {
	WindowPS uint64 // measured-window length (work.window_ps)
	Dir      Utilization
	Line     Utilization
	Link     Utilization
	// QueueAvg is the mean number of outstanding events over the window
	// (sim.queue_time_ps / window). Not a utilization — it has no unit
	// ceiling — but engine pressure corroborating a saturated resource.
	QueueAvg float64
}

// Verdict names the resource closest to saturation.
type Verdict struct {
	Resource  string
	Util      float64
	Saturated bool // Util >= the threshold passed to Report.Verdict
}

// Analyze rolls a cell's metrics snapshot into a Report. The snapshot
// must carry work.window_ps (any workload-layer run with metrics on
// records it); occupancy vectors are optional and degrade to OK=false.
func Analyze(snap *metrics.Snapshot) (*Report, error) {
	if snap == nil {
		return nil, errors.New("bottleneck: nil snapshot")
	}
	window, ok := snap.Counter(metrics.WorkWindow)
	if !ok || window == 0 {
		return nil, errors.New("bottleneck: snapshot has no work.window_ps — was the cell run with metrics enabled through the workload layer?")
	}
	r := &Report{WindowPS: window}
	r.Dir = rollVector(snap, metrics.CohDirBusy, "dir", window)
	r.Line = rollVector(snap, metrics.CohLineBusy, "line", window)
	r.Link = rollVector(snap, metrics.CohLinkBusy, "link", window)
	if qt, ok := snap.Counter(metrics.SimQueueTime); ok {
		r.QueueAvg = float64(qt) / float64(window)
	}
	return r, nil
}

// rollVector finds the busiest instance of one resource class. Busy
// time is accrued at grant/reservation instants, so a transfer granted
// near the window's end can push an instance slightly past the window;
// utilization is clamped to [0, 1] to keep it a fraction.
func rollVector(snap *metrics.Snapshot, name, resource string, window uint64) Utilization {
	v := snap.Vector(name)
	if v == nil {
		return Utilization{Resource: resource}
	}
	u := Utilization{Resource: resource, OK: true}
	for i, busy := range v {
		if busy > u.BusyPS {
			u.Busiest, u.BusyPS = i, busy
		}
	}
	u.Util = float64(u.BusyPS) / float64(window)
	if u.Util > 1 {
		u.Util = 1
	}
	return u
}

// Verdict returns the resource with the highest utilization among
// those present, and whether it exceeds the threshold (<= 0 means
// DefaultThreshold).
func (r *Report) Verdict(threshold float64) Verdict {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	v := Verdict{Resource: "none"}
	for _, u := range []Utilization{r.Dir, r.Line, r.Link} {
		if u.OK && (v.Resource == "none" || u.Util > v.Util) {
			v.Resource, v.Util = u.Resource, u.Util
		}
	}
	v.Saturated = v.Resource != "none" && v.Util >= threshold
	return v
}

// Point pairs one thread-ladder cell with its rollup.
type Point struct {
	Threads int
	Report  *Report
}

// Knee scans a ladder (in the given order, normally ascending thread
// counts) for the first point whose most-utilized resource crosses the
// threshold. It returns that point's thread count plus the saturating
// resource and its utilization there, or threads == 0 if no point on
// the ladder saturates.
func Knee(points []Point, threshold float64) (threads int, resource string, util float64) {
	for _, p := range points {
		if p.Report == nil {
			continue
		}
		if v := p.Report.Verdict(threshold); v.Saturated {
			return p.Threads, v.Resource, v.Util
		}
	}
	return 0, "", 0
}
