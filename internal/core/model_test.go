package core

import (
	"math"
	"testing"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/workload"
)

func compactCores(m *machine.Machine, n int) []int {
	slots, err := (machine.Compact{}).Place(m, n)
	if err != nil {
		panic(err)
	}
	cores := make([]int, n)
	for i, s := range slots {
		cores[i] = m.CoreOf(s)
	}
	return cores
}

func simHigh(t *testing.T, m *machine.Machine, p atomics.Primitive, n int) *workload.Result {
	t.Helper()
	res, err := workload.Run(workload.Config{
		Machine: m, Threads: n, Primitive: p, Mode: workload.HighContention,
		Warmup: 20 * sim.Microsecond, Duration: 300 * sim.Microsecond, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCASSuccessRateFIFO(t *testing.T) {
	if CASSuccessRateFIFO(1) != 1 {
		t.Error("n=1")
	}
	if CASSuccessRateFIFO(4) != 0.25 {
		t.Error("n=4")
	}
}

func TestCASSuccessRateRandomFixedPoint(t *testing.T) {
	if CASSuccessRateRandom(1) != 1 {
		t.Error("n=1")
	}
	for _, n := range []int{2, 4, 8, 16, 64} {
		p := CASSuccessRateRandom(n)
		if p <= 0 || p >= 1 {
			t.Fatalf("n=%d: p=%v out of (0,1)", n, p)
		}
		// Verify the geometric-gap fixed point p²q + p/n - 1/n = 0.
		inv := 1 / float64(n)
		q := 1 - inv
		if diff := math.Abs(p*p*q + p*inv - inv); diff > 1e-12 {
			t.Fatalf("n=%d: p=%v is not a fixed point (residual %v)", n, p, diff)
		}
	}
	// Monotonically decreasing in n.
	prev := 1.0
	for n := 2; n <= 128; n *= 2 {
		p := CASSuccessRateRandom(n)
		if p >= prev {
			t.Fatalf("not decreasing at n=%d", n)
		}
		prev = p
	}
	// Random arbitration gives CAS a better chance than FIFO lockstep.
	if CASSuccessRateRandom(16) <= CASSuccessRateFIFO(16) {
		t.Error("random should beat FIFO success rate")
	}
}

func TestServiceTimeSingleThreadIsLocal(t *testing.T) {
	m := machine.XeonE5()
	md := NewDetailed(m)
	want := m.Lat.L1Hit + m.Lat.ExecFAA
	if got := md.ServiceTime(atomics.FAA, []int{0}); got != want {
		t.Fatalf("solo service = %v, want %v", got, want)
	}
}

func TestServiceTimeGrowsWithDistance(t *testing.T) {
	m := machine.XeonE5()
	md := NewDetailed(m)
	near := md.ServiceTime(atomics.FAA, []int{0, 1})
	far := md.ServiceTime(atomics.FAA, []int{0, 9})
	cross := md.ServiceTime(atomics.FAA, []int{0, 27})
	if !(near < far && far < cross) {
		t.Fatalf("service ordering near=%v far=%v cross=%v", near, far, cross)
	}
}

func TestPredictHighMatchesSimulationFAA(t *testing.T) {
	// The headline validation: detailed-model throughput within 10% of
	// simulation across the sweep, both machines.
	for _, m := range machine.All() {
		md := NewDetailed(m)
		for _, n := range []int{1, 2, 4, 8, 16} {
			res := simHigh(t, m, atomics.FAA, n)
			pred := md.PredictHigh(atomics.FAA, compactCores(m, n), 0)
			err := math.Abs(pred.ThroughputMops-res.ThroughputMops) / res.ThroughputMops
			if err > 0.10 {
				t.Errorf("%s n=%d: model %.2f vs sim %.2f Mops (%.0f%% error)",
					m.Name, n, pred.ThroughputMops, res.ThroughputMops, err*100)
			}
			lerr := math.Abs(float64(pred.AttemptLatency-res.Latency.Mean())) / float64(res.Latency.Mean())
			if lerr > 0.12 {
				t.Errorf("%s n=%d: model latency %v vs sim %v (%.0f%% error)",
					m.Name, n, pred.AttemptLatency, res.Latency.Mean(), lerr*100)
			}
		}
	}
}

func TestPredictHighMatchesSimulationCAS(t *testing.T) {
	for _, m := range machine.All() {
		md := NewDetailed(m)
		for _, n := range []int{2, 8, 16} {
			res := simHigh(t, m, atomics.CAS, n)
			pred := md.PredictHigh(atomics.CAS, compactCores(m, n), 0)
			if math.Abs(pred.SuccessRate-res.SuccessRate()) > 0.02 {
				t.Errorf("%s n=%d: success rate model %.3f vs sim %.3f",
					m.Name, n, pred.SuccessRate, res.SuccessRate())
			}
			err := math.Abs(pred.ThroughputMops-res.ThroughputMops) / res.ThroughputMops
			if err > 0.12 {
				t.Errorf("%s n=%d: CAS throughput model %.2f vs sim %.2f (%.0f%% error)",
					m.Name, n, pred.ThroughputMops, res.ThroughputMops, err*100)
			}
			if math.Abs(pred.Jain-res.Jain) > 0.05 {
				t.Errorf("%s n=%d: Jain model %.3f vs sim %.3f", m.Name, n, pred.Jain, res.Jain)
			}
		}
	}
}

func TestPredictHighFourSocketExtrapolation(t *testing.T) {
	// The model was parameterized on the 2-socket machine; it must
	// still track the simulator on the 4-socket extrapolation.
	m := machine.XeonMultiSocket(4)
	md := NewDetailed(m)
	for _, n := range []int{8, 16, 32} {
		slots, err := (machine.Scatter{}).Place(m, n)
		if err != nil {
			t.Fatal(err)
		}
		cores := make([]int, n)
		for i, s := range slots {
			cores[i] = m.CoreOf(s)
		}
		res, err := workload.Run(workload.Config{
			Machine: m, Threads: n, Primitive: atomics.FAA,
			Mode: workload.HighContention, Placement: machine.Scatter{},
			Warmup: 25 * sim.Microsecond, Duration: 300 * sim.Microsecond, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		pred := md.PredictHigh(atomics.FAA, cores, 0)
		e := math.Abs(pred.ThroughputMops-res.ThroughputMops) / res.ThroughputMops
		if e > 0.15 {
			t.Errorf("4S n=%d: model %.2f vs sim %.2f (%.0f%%)",
				n, pred.ThroughputMops, res.ThroughputMops, e*100)
		}
	}
}

func TestPredictHighWithThinkTime(t *testing.T) {
	m := machine.XeonE5()
	md := NewDetailed(m)
	cores := compactCores(m, 8)
	work := 2 * sim.Microsecond
	pred := md.PredictHigh(atomics.FAA, cores, work)
	res, err := workload.Run(workload.Config{
		Machine: m, Threads: 8, Primitive: atomics.FAA, Mode: workload.HighContention,
		LocalWork: work, Warmup: 50 * sim.Microsecond, Duration: 500 * sim.Microsecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := math.Abs(pred.ThroughputMops-res.ThroughputMops) / res.ThroughputMops
	if e > 0.10 {
		t.Fatalf("think-time model %.2f vs sim %.2f Mops (%.0f%% error)",
			pred.ThroughputMops, res.ThroughputMops, e*100)
	}
	// Unsaturated: throughput ~ N/(s+w), far below server bound.
	saturated := 1e6 / float64(pred.ServiceTime) * 1e6
	if pred.ThroughputMops > 0.5*saturated {
		t.Fatal("expected unsaturated regime in this configuration")
	}
}

func TestPredictLowMatchesSimulation(t *testing.T) {
	m := machine.KNL()
	md := NewDetailed(m)
	pred := md.PredictLow(atomics.FAA, 16, 0)
	res, err := workload.Run(workload.Config{
		Machine: m, Threads: 16, Primitive: atomics.FAA, Mode: workload.LowContention,
		Warmup: 20 * sim.Microsecond, Duration: 200 * sim.Microsecond, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := math.Abs(pred.ThroughputMops-res.ThroughputMops) / res.ThroughputMops
	if e > 0.10 {
		t.Fatalf("low-contention model %.2f vs sim %.2f (%.0f%% error)",
			pred.ThroughputMops, res.ThroughputMops, e*100)
	}
	if pred.AttemptLatency != md.ServiceTime(atomics.FAA, []int{0}) {
		t.Error("low-contention latency should equal local service time")
	}
}

func TestLowLatencyMatchesMeasuredStates(t *testing.T) {
	// Model's low-contention latency table must match the simulator's
	// single-op measurements exactly (same cost structure).
	for _, m := range machine.All() {
		md := NewDetailed(m)
		for _, p := range []atomics.Primitive{atomics.FAA, atomics.Load, atomics.CAS} {
			for _, st := range workload.AllLineStates() {
				meas, err := workload.MeasureStateLatency(m, p, st)
				if err != nil {
					continue // state unavailable on this machine
				}
				pred, err := md.LowLatency(p, st)
				if err != nil {
					t.Errorf("%s %v %v: model rejected available state: %v", m.Name, p, st, err)
					continue
				}
				if pred != meas {
					t.Errorf("%s %v %v: model %v != measured %v", m.Name, p, st, pred, meas)
				}
			}
		}
	}
}

func TestLowLatencyErrors(t *testing.T) {
	md := NewDetailed(machine.KNL())
	if _, err := md.LowLatency(atomics.FAA, workload.StateRemoteOtherSocket); err == nil {
		t.Error("cross-socket on KNL accepted")
	}
	if _, err := md.LowLatency(atomics.FAA, workload.LineState(99)); err == nil {
		t.Error("unknown state accepted")
	}
}

func TestCalibrate(t *testing.T) {
	for _, m := range machine.All() {
		md, cal, err := Calibrate(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if md.Variant() != Simple {
			t.Error("calibrated model should be Simple")
		}
		tl, ts, tc := md.Constants()
		if !(tl < ts && ts <= tc) {
			t.Errorf("%s: constants not ordered: %v %v %v", m.Name, tl, ts, tc)
		}
		if m.Sockets == 1 && ts != tc {
			t.Errorf("%s: single socket should have tSame == tCross", m.Name)
		}
		if cal.TLocal != tl {
			t.Error("calibration struct mismatch")
		}
		if cal.String() == "" {
			t.Error("empty calibration string")
		}
	}
}

func TestSimpleModelQualitativeShape(t *testing.T) {
	// The 3-constant model is coarser than the detailed one, but must
	// preserve the paper's qualitative conclusions.
	m := machine.XeonE5()
	md, _, err := Calibrate(m)
	if err != nil {
		t.Fatal(err)
	}
	cores16 := compactCores(m, 16)
	faa := md.PredictHigh(atomics.FAA, cores16, 0)
	cas := md.PredictHigh(atomics.CAS, cores16, 0)
	if cas.ThroughputMops >= faa.ThroughputMops {
		t.Error("simple model must predict FAA > CAS under contention")
	}
	// Within the right order of magnitude of simulation (factor 3).
	res := simHigh(t, m, atomics.FAA, 16)
	ratio := faa.ThroughputMops / res.ThroughputMops
	if ratio < 1/3.0 || ratio > 3 {
		t.Errorf("simple model off by more than 3x: %.2f vs %.2f", faa.ThroughputMops, res.ThroughputMops)
	}
}

func TestEnergyPredictionTrend(t *testing.T) {
	// J/op must grow with thread count under high contention.
	m := machine.XeonE5()
	md := NewDetailed(m)
	prev := 0.0
	for _, n := range []int{1, 4, 16} {
		p := md.PredictHigh(atomics.FAA, compactCores(m, n), 0)
		if p.EnergyPerOpNJ <= prev {
			t.Fatalf("energy/op not increasing at n=%d: %v <= %v", n, p.EnergyPerOpNJ, prev)
		}
		prev = p.EnergyPerOpNJ
	}
}

func TestEnergyPredictionMatchesSimulatedTrend(t *testing.T) {
	m := machine.XeonE5()
	md := NewDetailed(m)
	for _, n := range []int{4, 16} {
		res := simHigh(t, m, atomics.FAA, n)
		pred := md.PredictHigh(atomics.FAA, compactCores(m, n), 0)
		ratio := pred.EnergyPerOpNJ / res.Energy.PerOpNJ
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("n=%d: energy model %.1f nJ/op vs sim %.1f (ratio %.2f)",
				n, pred.EnergyPerOpNJ, res.Energy.PerOpNJ, ratio)
		}
	}
}

func TestPredictDegenerateInputs(t *testing.T) {
	md := NewDetailed(machine.XeonE5())
	p := md.PredictHigh(atomics.FAA, nil, 0)
	if p.ThroughputMops != 0 || p.Threads != 0 {
		t.Error("empty cores should predict nothing")
	}
	pl := md.PredictLow(atomics.FAA, 0, 0)
	if pl.ThroughputMops != 0 {
		t.Error("zero threads low contention")
	}
}

func TestMeanHopsAmongCores(t *testing.T) {
	m := machine.XeonE5()
	if got := MeanHopsAmongCores(m, []int{0, 1}); got != 1 {
		t.Errorf("adjacent cores mean hops = %v", got)
	}
}
