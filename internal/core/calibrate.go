package core

import (
	"fmt"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/workload"
)

// Calibration holds the three constants of the simple model together
// with where they came from, so experiment tables can print them.
type Calibration struct {
	Machine *machine.Machine
	// TLocal is one FAA on a line owned by the issuing core.
	TLocal sim.Time
	// TSame is one FAA on a line dirty in a same-socket cache.
	TSame sim.Time
	// TCross is one FAA on a line dirty in a cross-socket cache (equal
	// to TSame on single-socket machines).
	TCross sim.Time
}

// Calibrate measures the simple model's three constants with single-
// operation probes, exactly as a practitioner would on real hardware
// (three tiny microbenchmarks), and returns the resulting model. This
// is the paper's "very simple to be used in practice" claim made
// executable.
func Calibrate(m *machine.Machine) (*Model, Calibration, error) {
	local, err := workload.MeasureStateLatency(m, atomics.FAA, workload.StateModifiedLocal)
	if err != nil {
		return nil, Calibration{}, fmt.Errorf("core: calibrating tLocal: %w", err)
	}
	same, err := workload.MeasureStateLatency(m, atomics.FAA, workload.StateRemoteSameSocket)
	if err != nil {
		return nil, Calibration{}, fmt.Errorf("core: calibrating tSame: %w", err)
	}
	cross := same
	if m.Sockets > 1 {
		cross, err = workload.MeasureStateLatency(m, atomics.FAA, workload.StateRemoteOtherSocket)
		if err != nil {
			return nil, Calibration{}, fmt.Errorf("core: calibrating tCross: %w", err)
		}
	}
	cal := Calibration{Machine: m, TLocal: local, TSame: same, TCross: cross}
	return NewSimple(m, local, same, cross), cal, nil
}

// String renders the calibration as the paper's parameter table row.
func (c Calibration) String() string {
	return fmt.Sprintf("%s: t_local=%v t_same=%v t_cross=%v", c.Machine.Name, c.TLocal, c.TSame, c.TCross)
}
