package core

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/sim"
)

// ArbPolicy names an arbitration policy for model predictions,
// mirroring the coherence package's arbiters.
type ArbPolicy uint8

const (
	// ArbFIFO grants requests in arrival order (the default).
	ArbFIFO ArbPolicy = iota
	// ArbRandom grants a uniformly random queued request.
	ArbRandom
	// ArbLocality grants the requester nearest the current owner.
	ArbLocality
)

func (a ArbPolicy) String() string {
	switch a {
	case ArbFIFO:
		return "fifo"
	case ArbRandom:
		return "random"
	case ArbLocality:
		return "locality"
	}
	return "unknown"
}

// PredictHighArb extends PredictHigh with the arbitration policy. The
// policy changes three things the plain model cannot see:
//
//   - FIFO: grants rotate through all contenders; the service time is
//     the mean transfer over random consecutive-owner pairs (PredictHigh).
//   - Random: the same expected service time and throughput as FIFO
//     (a uniformly random grant sequence has the same pair distribution),
//     but the CAS success rate follows the memoryless fixed point
//     p=(1-p)^(n-1) instead of the deterministic 1/n, and per-thread
//     work stays statistically balanced.
//   - Locality: grants collapse onto the cheapest cluster. If some
//     contenders share a cache (same core) or a topology node (KNL
//     tile-mates), ownership alternates inside that cluster at its
//     internal transfer cost; otherwise the current owner re-wins every
//     race and runs at local speed. Throughput is maximal and fairness
//     is the cluster size over n.
func (md *Model) PredictHighArb(p atomics.Primitive, cores []int, work sim.Time, arb ArbPolicy) Prediction {
	switch arb {
	case ArbRandom:
		pred := md.PredictHigh(p, cores, work)
		if (p == atomics.CAS || p == atomics.CAS2) && len(cores) > 1 {
			pred.SuccessRate = CASSuccessRateRandom(len(cores))
			pred.ThroughputMops = pred.AttemptsMops * pred.SuccessRate
			// Wins are memoryless, so per-thread successes balance out.
			pred.Jain = 1
			pred.EnergyPerOpNJ = md.energyPerOp(cores, pred)
		}
		return pred
	case ArbLocality:
		return md.predictLocality(p, cores, work)
	default:
		return md.PredictHigh(p, cores, work)
	}
}

// predictLocality models the ownership monopoly locality arbitration
// converges to.
func (md *Model) predictLocality(p atomics.Primitive, cores []int, work sim.Time) Prediction {
	n := len(cores)
	pred := Prediction{Threads: n, SuccessRate: 1, Jain: 1}
	if n == 0 {
		return pred
	}
	exec := atomics.ExecCost(md.m, p)
	if md.variant == Simple {
		exec = exec - atomics.ExecCost(md.m, atomics.FAA)
	}

	// Find the cheapest self-sustaining cluster: the largest set of
	// contenders on one node (they tie at distance zero from the owner
	// and rotate among themselves); if every contender sits alone on
	// its node, the owner re-wins every race.
	perNode := map[int][]int{}
	for _, c := range cores {
		perNode[md.m.NodeOf(c)] = append(perNode[md.m.NodeOf(c)], c)
	}
	// Every maximal multi-member node group is an absorbing state
	// (once ownership lands there, zero-distance ties keep it there),
	// and which one absorbs depends on the initial race. Predict the
	// expectation over the candidate clusters; with no multi-member
	// group the lone owner re-wins every race and runs locally.
	cluster := 1
	var clusterService sim.Time
	if md.variant == Simple {
		clusterService = md.tLocal
	} else {
		clusterService = md.m.Lat.L1Hit
	}
	var svcSum sim.Time
	nClusters := 0
	maxGroup := 1
	for _, group := range perNode {
		if len(group) < 2 {
			continue
		}
		// Ownership rotates among the group's cores; same-core pairs
		// are local, distinct-core pairs pay the zero-hop directory
		// trip. Use the mean over ordered distinct pairs within the
		// group.
		var sum sim.Time
		pairs := 0
		for i, c := range group {
			for j, o := range group {
				if i == j {
					continue
				}
				sum += md.pairCost(o, c)
				pairs++
			}
		}
		svcSum += sum / sim.Time(pairs)
		nClusters++
		if len(group) > maxGroup {
			maxGroup = len(group)
		}
	}
	if nClusters > 0 {
		cluster = maxGroup
		clusterService = svcSum / sim.Time(nClusters)
	}

	s := clusterService + exec
	sf, wf := float64(s), float64(work)
	ratePerPs := 1 / sf
	if wf > 0 {
		// The cluster still thinks between ops; with k members the
		// cluster sustains min(k/(s+w), 1/s).
		k := float64(cluster)
		if k/(sf+wf) < ratePerPs {
			ratePerPs = k / (sf + wf)
		}
	}
	pred.ServiceTime = s
	pred.AttemptsMops = ratePerPs * 1e12 / 1e6
	pred.AttemptLatency = s
	if (p == atomics.CAS || p == atomics.CAS2) && cluster > 1 {
		// Within the rotating cluster the CAS pattern behaves like a
		// FIFO round of size cluster.
		pred.SuccessRate = CASSuccessRateFIFO(cluster)
	}
	pred.ThroughputMops = pred.AttemptsMops * pred.SuccessRate
	// Only the cluster's members make progress.
	pred.Jain = float64(cluster) / float64(n)
	pred.EnergyPerOpNJ = md.energyPerOpLocality(cores, cluster, pred)
	return pred
}

func (md *Model) energyPerOpLocality(cores []int, cluster int, pred Prediction) float64 {
	if pred.ThroughputMops == 0 {
		return 0
	}
	e := md.m.Energy
	distinct := map[int]bool{}
	for _, c := range cores {
		distinct[c] = true
	}
	watts := e.StaticWattsPerCore*float64(len(distinct)) + e.ActiveWattsPerThread*float64(len(cores))
	staticNJ := watts / (pred.ThroughputMops * 1e6) * 1e9
	return staticNJ + e.LocalOpNJ/pred.SuccessRate
}
