// Package core implements the paper's contribution: a simple analytical
// performance model for atomic primitives, centered on the bouncing of
// cache lines between the threads that execute atomics on them.
//
// The model's state is tiny — a handful of transfer-time constants —
// and from them it predicts, for any primitive, thread placement and
// local-work level:
//
//   - per-operation latency and throughput in the high-contention
//     setting (the line's directory serializes requests, so service
//     time = expected line-transfer time + the primitive's execution
//     occupancy, and the system behaves as a closed queueing network
//     around a single server);
//   - CAS success rate (and hence the successful-update throughput of
//     CAS-based code versus FAA-based code);
//   - latency in the low-contention setting as a function of where the
//     line initially is;
//   - fairness and energy per operation.
//
// Two variants are provided. The detailed model computes expected
// transfer times from the machine's topology (hop counts between the
// contending cores and the line's home). The simple model is the one a
// practitioner would use on real hardware: it takes just three measured
// constants (local, same-socket transfer, cross-socket transfer) and
// still captures the behaviour — Calibrate obtains those constants from
// three probe runs, mirroring how the paper fits its model.
//
// MODEL.md states every equation this package implements, in the same
// order; ARCHITECTURE.md carries the equation-to-symbol index (§1 →
// LowLatency, §2 → ServiceTime/PredictHigh, §3 → CASSuccessRateFIFO/
// Random, §4 → PredictHighArb, §6 → PredictAlgorithm, §7 →
// NewSimple/Calibrate). In the pipeline this package is a consumer of
// machine descriptions only — it never touches the simulator, which is
// what makes F7's model-vs-simulation comparison meaningful.
package core

import (
	"fmt"
	"math"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/topology"
	"atomicsmodel/internal/workload"
)

// Variant selects how transfer times are obtained.
type Variant uint8

const (
	// Detailed derives expected transfer times from topology hop counts.
	Detailed Variant = iota
	// Simple uses three calibrated constants (tLocal, tSame, tCross).
	Simple
)

// Model predicts atomic-primitive performance on one machine.
type Model struct {
	m       *machine.Machine
	variant Variant

	// Simple-variant constants: time to complete one RMW (excluding the
	// primitive-specific execution delta) when the line is local, in a
	// same-socket cache, or in a cross-socket cache.
	tLocal, tSame, tCross sim.Time

	// home is the topology node assumed to host the contended line's
	// directory (line ID 1 in the workloads).
	home int
}

// NewDetailed builds the topology-aware model for m.
func NewDetailed(m *machine.Machine) *Model {
	return &Model{m: m, variant: Detailed, home: 1 % m.Topo.Nodes()}
}

// NewSimple builds the three-constant model. tLocal is the cost of an
// RMW on an owned line including execution; tSame and tCross are the
// costs when the line is in a same-socket / cross-socket cache. For a
// single-socket machine pass tCross = tSame.
func NewSimple(m *machine.Machine, tLocal, tSame, tCross sim.Time) *Model {
	return &Model{m: m, variant: Simple, tLocal: tLocal, tSame: tSame, tCross: tCross, home: 1 % m.Topo.Nodes()}
}

// Machine returns the machine the model describes.
func (md *Model) Machine() *machine.Machine { return md.m }

// Variant returns the model variant.
func (md *Model) Variant() Variant { return md.variant }

// Constants returns the simple-variant constants (zero for Detailed).
func (md *Model) Constants() (tLocal, tSame, tCross sim.Time) {
	return md.tLocal, md.tSame, md.tCross
}

// pairCost returns the expected completion cost of one RMW granted to
// core c when the line was last owned by core o (excluding execution
// occupancy), under the chosen variant.
func (md *Model) pairCost(o, c int) sim.Time {
	lat := md.m.Lat
	if o == c {
		if md.variant == Simple {
			return md.tLocal
		}
		return lat.L1Hit
	}
	// Distinct cores always pay a directory trip, even on the same
	// tile (KNL tile-mates have private L1s; their transfers are
	// cheap — zero-hop legs — but not free).
	no, nc := md.m.NodeOf(o), md.m.NodeOf(c)
	cross := md.m.Topo.CrossSocket(nc, no)
	if md.variant == Simple {
		if cross {
			return md.tCross
		}
		return md.tSame
	}
	hops := md.m.Topo.Hops(nc, md.home) + md.m.Topo.Hops(md.home, no) + md.m.Topo.Hops(no, nc)
	cost := lat.DirLookup + sim.Time(hops)*lat.HopLatency
	if cross {
		cost += lat.CrossSocketPenalty
	}
	return cost
}

// ServiceTime returns the expected time the contended line is occupied
// per operation of primitive p when the given physical cores contend.
// Under FIFO arbitration the grants cycle through the threads in their
// (random) arrival order, so the expected consecutive-owner transfer
// cost is the mean of pairCost over all ordered distinct pairs; the
// primitive's execution occupancy is added on top.
func (md *Model) ServiceTime(p atomics.Primitive, cores []int) sim.Time {
	exec := atomics.ExecCost(md.m, p)
	if len(cores) <= 1 {
		if md.variant == Simple {
			return md.tLocal + exec - atomics.ExecCost(md.m, atomics.FAA)
		}
		return md.m.Lat.L1Hit + exec
	}
	var sum sim.Time
	pairs := 0
	for i, c := range cores {
		for j, o := range cores {
			if i == j {
				continue
			}
			sum += md.pairCost(o, c)
			pairs++
		}
	}
	mean := sum / sim.Time(pairs)
	if md.variant == Simple {
		// tLocal/tSame/tCross were calibrated with FAA; adjust by the
		// primitive's execution delta.
		return mean + exec - atomics.ExecCost(md.m, atomics.FAA)
	}
	return mean + exec
}

// Prediction is the model's output for one configuration.
type Prediction struct {
	Threads int
	// ServiceTime is the expected line occupancy per attempt.
	ServiceTime sim.Time
	// AttemptsMops is the rate of completed primitives (including
	// failed CAS), in millions per second.
	AttemptsMops float64
	// ThroughputMops is the rate of successful operations.
	ThroughputMops float64
	// AttemptLatency is the expected issue-to-completion latency of one
	// primitive (including waiting for the line).
	AttemptLatency sim.Time
	// SuccessRate is Ops/Attempts (1 for everything but contended CAS).
	SuccessRate float64
	// Jain is the predicted Jain fairness index over per-thread
	// successful ops under FIFO arbitration.
	Jain float64
	// EnergyPerOpNJ is predicted energy per successful operation.
	EnergyPerOpNJ float64
}

// CASSuccessRateFIFO models the blind-CAS retry pattern under FIFO
// (round-robin) arbitration. The grants cycle through the threads, so
// only the thread holding the freshest expected value succeeds: exactly
// one success per N attempts.
func CASSuccessRateFIFO(n int) float64 {
	if n <= 1 {
		return 1
	}
	return 1 / float64(n)
}

// CASSuccessRateRandom models blind CAS under memoryless (random)
// arbitration. Between a thread's consecutive grants, the number of
// other grants G is geometric with mean n-1 (each grant is the
// thread's with probability 1/n), and the CAS succeeds iff none of
// those intermediate grants succeeded. With the symmetric assumption
// that every grant succeeds independently with probability p,
//
//	p = E[(1-p)^G] = (1/n) / (1 - (1-1/n)(1-p)),
//
// a quadratic p²q + p/n - 1/n = 0 with q = 1-1/n, solved in closed
// form. The simulator's random-arbiter runs match it within a few
// percent (see arbmodel tests).
func CASSuccessRateRandom(n int) float64 {
	if n <= 1 {
		return 1
	}
	inv := 1 / float64(n)
	q := 1 - inv
	return (-inv + math.Sqrt(inv*inv+4*q*inv)) / (2 * q)
}

// PredictHigh predicts the high-contention setting: the given physical
// cores (one per thread; repeats mean hyperthread sharing) all hammer
// one line with primitive p, separated by think time work.
func (md *Model) PredictHigh(p atomics.Primitive, cores []int, work sim.Time) Prediction {
	n := len(cores)
	if p == atomics.Fence {
		// Fences are core-local: no shared line, so "high contention"
		// degenerates to independent threads.
		exec := atomics.ExecCost(md.m, p)
		pred := Prediction{Threads: n, ServiceTime: exec, SuccessRate: 1, Jain: 1, AttemptLatency: exec}
		if n > 0 {
			pred.AttemptsMops = float64(n) / float64(exec+work) * 1e12 / 1e6
			pred.ThroughputMops = pred.AttemptsMops
			pred.EnergyPerOpNJ = md.energyPerOpLow(n, pred)
		}
		return pred
	}
	s := md.ServiceTime(p, cores)
	pred := Prediction{Threads: n, ServiceTime: s, SuccessRate: 1, Jain: 1}
	if n == 0 {
		return pred
	}
	// Closed system around one server: each thread cycles through
	// think (work) and service; attempts rate is bounded by both the
	// population and the server.
	sf, wf := float64(s), float64(work)
	attemptsPerPs := math.Min(float64(n)/(sf+wf), 1/sf)
	pred.AttemptsMops = attemptsPerPs * 1e12 / 1e6 // per ps -> per s -> Mops
	// Mean attempt latency from the closed-system identity
	// N = X * (latency + think).
	pred.AttemptLatency = sim.Time(float64(n)/attemptsPerPs - wf)

	if (p == atomics.CAS || p == atomics.CAS2) && n > 1 {
		pred.SuccessRate = CASSuccessRateFIFO(n)
		// One thread wins every round under FIFO: Jain = 1/n.
		pred.Jain = 1 / float64(n)
	}
	pred.ThroughputMops = pred.AttemptsMops * pred.SuccessRate

	pred.EnergyPerOpNJ = md.energyPerOp(cores, pred)
	return pred
}

// PredictLow predicts the low-contention setting: n threads on private
// lines, each line always found in the owner's cache.
func (md *Model) PredictLow(p atomics.Primitive, n int, work sim.Time) Prediction {
	s := md.ServiceTime(p, []int{0})
	pred := Prediction{Threads: n, ServiceTime: s, SuccessRate: 1, Jain: 1}
	if n == 0 {
		return pred
	}
	perThread := 1 / float64(s+work)
	pred.AttemptsMops = perThread * float64(n) * 1e12 / 1e6
	pred.ThroughputMops = pred.AttemptsMops
	pred.AttemptLatency = s
	pred.EnergyPerOpNJ = md.energyPerOpLow(n, pred)
	return pred
}

// energyPerOp predicts J/op (in nJ) for the high-contention setting:
// static+active power divided by successful throughput, plus the
// dynamic energy of the attempts needed per success.
func (md *Model) energyPerOp(cores []int, pred Prediction) float64 {
	if pred.ThroughputMops == 0 {
		return 0
	}
	e := md.m.Energy
	distinct := map[int]bool{}
	for _, c := range cores {
		distinct[c] = true
	}
	watts := e.StaticWattsPerCore*float64(len(distinct)) + e.ActiveWattsPerThread*float64(len(cores))
	staticNJ := watts / (pred.ThroughputMops * 1e6) * 1e9

	// Dynamic energy per attempt: expected transfer energy over random
	// consecutive-owner pairs (single-thread runs stay local).
	var dynNJ float64
	if n := len(cores); n == 1 {
		dynNJ = e.LocalOpNJ
	} else {
		pairs := 0
		for i, c := range cores {
			for j, o := range cores {
				if i == j {
					continue
				}
				dynNJ += md.pairEnergyNJ(o, c)
				pairs++
			}
		}
		dynNJ /= float64(pairs)
	}
	return staticNJ + dynNJ/pred.SuccessRate
}

func (md *Model) energyPerOpLow(n int, pred Prediction) float64 {
	if pred.ThroughputMops == 0 {
		return 0
	}
	e := md.m.Energy
	watts := (e.StaticWattsPerCore + e.ActiveWattsPerThread) * float64(n)
	return watts/(pred.ThroughputMops*1e6)*1e9 + e.LocalOpNJ
}

// pairEnergyNJ mirrors the energy meter's per-event charging for a
// transfer from owner o to requester c.
func (md *Model) pairEnergyNJ(o, c int) float64 {
	e := md.m.Energy
	if o == c {
		return e.LocalOpNJ
	}
	no, nc := md.m.NodeOf(o), md.m.NodeOf(c)
	hops := md.m.Topo.Hops(nc, md.home) + md.m.Topo.Hops(md.home, no) + md.m.Topo.Hops(no, nc)
	nj := e.LocalOpNJ + float64(hops)*e.PerHopNJ
	if md.m.Topo.CrossSocket(no, nc) {
		nj += e.CrossSocketNJ
	}
	return nj
}

// LowLatency predicts the latency of a single primitive whose line is
// initially in the given state (the paper's low-contention latency
// table). It mirrors the protocol's cost structure; the simple variant
// substitutes its calibrated constants for the transfer terms. The
// states and core choices match workload.MeasureStateLatency so
// predictions and measurements are directly comparable.
func (md *Model) LowLatency(p atomics.Primitive, st workload.LineState) (sim.Time, error) {
	if p == atomics.Fence {
		// A fence never touches the line: its cost is state-independent.
		return atomics.ExecCost(md.m, p), nil
	}
	lat := md.m.Lat
	exec := atomics.ExecCost(md.m, p)
	measuredNode := md.m.NodeOf(0)
	sameNode := md.m.NodeOf(md.m.CoresPerSocket / 2)
	var otherNode int
	if md.m.Sockets > 1 {
		otherNode = md.m.NodeOf(md.m.CoresPerSocket + md.m.CoresPerSocket/2)
	}
	// Line 77 is the probe line MeasureStateLatency uses.
	home := int(uint64(77) % uint64(md.m.Topo.Nodes()))

	transfer := func(ownerNode int) sim.Time {
		hops := md.m.Topo.Hops(measuredNode, home) + md.m.Topo.Hops(home, ownerNode) + md.m.Topo.Hops(ownerNode, measuredNode)
		c := lat.DirLookup + sim.Time(hops)*lat.HopLatency
		if md.m.Topo.CrossSocket(measuredNode, ownerNode) {
			c += lat.CrossSocketPenalty
		}
		return c
	}
	llcTrip := func() sim.Time {
		hops := 2 * md.m.Topo.Hops(measuredNode, home)
		return lat.DirLookup + lat.LLCHit + sim.Time(hops)*lat.HopLatency
	}

	switch st {
	case workload.StateModifiedLocal, workload.StateExclusiveLocal:
		return lat.L1Hit + exec, nil
	case workload.StateShared:
		if !p.IsRMW() && p != atomics.Store {
			return lat.L1Hit + exec, nil
		}
		return llcTrip() + lat.InvalidateCost + exec, nil
	case workload.StateRemoteSameSocket:
		if md.variant == Simple {
			return md.tSame + exec - atomics.ExecCost(md.m, atomics.FAA), nil
		}
		return transfer(sameNode) + exec, nil
	case workload.StateRemoteOtherSocket:
		if md.m.Sockets < 2 {
			return 0, fmt.Errorf("core: %s has a single socket", md.m.Name)
		}
		if md.variant == Simple {
			return md.tCross + exec - atomics.ExecCost(md.m, atomics.FAA), nil
		}
		return transfer(otherNode) + exec, nil
	case workload.StateLLC:
		return llcTrip() + exec, nil
	case workload.StateMemory:
		hops := 2 * md.m.Topo.Hops(measuredNode, home)
		return lat.DirLookup + lat.DRAM + sim.Time(hops)*lat.HopLatency + exec, nil
	}
	return 0, fmt.Errorf("core: unknown line state %d", st)
}

// MeanHopsAmongCores is a convenience re-export used by experiments to
// report the expected transfer distance of a placement.
func MeanHopsAmongCores(m *machine.Machine, cores []int) float64 {
	nodes := make([]int, len(cores))
	for i, c := range cores {
		nodes[i] = m.NodeOf(c)
	}
	return topology.MeanHopsAmong(m.Topo, nodes)
}
