package core

import (
	"fmt"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/sim"
)

// AlgoStep is one memory access in an algorithm's high-level operation
// (one counter increment, one stack push, one lock cycle). A concurrent
// algorithm is, for the model's purposes, just the multiset of accesses
// each operation performs on each contended line.
type AlgoStep struct {
	// Primitive performed by this step.
	Primitive atomics.Primitive
	// Line identifies which contended line the step touches.
	// PrivateLine marks a per-thread line (local, no cross-thread
	// traffic); MigratoryLine marks per-element lines that transfer
	// between threads (a pop reading the pusher's node) — they pay a
	// transfer latency but are not a shared serialization point.
	Line int
	// Retry marks a step inside a repeat-until-success loop (a CAS
	// loop body — typically the gating CAS plus the re-reads it
	// retries with): under contention the loop body executes
	// ~1/successRate ≈ n times per operation, each iteration paying
	// the step's full service.
	Retry bool
	// Weight scales the step for operation mixes (0.5 = half the
	// operations perform this step). Zero means 1.
	Weight float64
}

// Line sentinels for AlgoStep.
const (
	// PrivateLine is a per-thread line: local cost, no serialization.
	PrivateLine = -1
	// MigratoryLine is a per-element line that moves between threads:
	// transfer cost, no shared serialization point.
	MigratoryLine = -2
)

// PredictAlgorithm predicts the aggregate operation throughput of an
// algorithm whose every operation performs the given steps, when the
// given cores run it back-to-back (think time work between operations).
//
// The model composes exactly the paper's primitive-level reasoning:
// each contended line is a serial resource whose per-operation
// occupancy is the sum of the services of the steps touching it (retry
// steps count 1/p times); the line with the largest occupancy is the
// bottleneck; private steps add latency but overlap across threads, so
// they only matter when the system is not saturated.
func (md *Model) PredictAlgorithm(steps []AlgoStep, cores []int, work sim.Time) (Prediction, error) {
	n := len(cores)
	pred := Prediction{Threads: n, SuccessRate: 1, Jain: 1}
	if n == 0 {
		return pred, nil
	}
	// Occupancy per operation of each contended line, plus the
	// latency-path length of one operation.
	occupancy := map[int]sim.Time{}
	var pathLen sim.Time
	retries := 1.0
	for _, st := range steps {
		if st.Line < MigratoryLine {
			return pred, fmt.Errorf("core: invalid line %d in algorithm step", st.Line)
		}
		w := st.Weight
		if w == 0 {
			w = 1
		}
		if w < 0 {
			return pred, fmt.Errorf("core: negative step weight %v", w)
		}
		attempts := w
		if st.Retry && n > 1 {
			attempts = w * float64(n) // FIFO blind-retry: 1/p with p = 1/n
			retries = float64(n)
		}
		switch {
		case st.Line >= 0:
			s := md.ServiceTime(st.Primitive, cores)
			occupancy[st.Line] += sim.Time(attempts * float64(s))
			pathLen += sim.Time(attempts * float64(s))
		case st.Line == MigratoryLine:
			// Transfer latency without a shared serialization point.
			s := md.ServiceTime(st.Primitive, cores)
			pathLen += sim.Time(w * float64(s))
		default:
			// Private access: warmed per-thread line, local cost.
			s := md.ServiceTime(st.Primitive, cores[:1])
			pathLen += sim.Time(w * float64(s))
		}
	}
	var bottleneck sim.Time
	for _, occ := range occupancy {
		if occ > bottleneck {
			bottleneck = occ
		}
	}
	pred.ServiceTime = bottleneck
	if bottleneck == 0 {
		// Fully private algorithm: every thread proceeds independently.
		perThread := 1 / float64(pathLen+work)
		pred.ThroughputMops = perThread * float64(n) * 1e12 / 1e6
		pred.AttemptsMops = pred.ThroughputMops * retries
		pred.AttemptLatency = pathLen
		return pred, nil
	}
	// Closed system: population bound n/(pathLen+work) against the
	// bottleneck line's service rate 1/bottleneck.
	rate := 1 / float64(bottleneck)
	if pop := float64(n) / float64(pathLen+work); pop < rate {
		rate = pop
	}
	pred.ThroughputMops = rate * 1e12 / 1e6
	pred.AttemptsMops = pred.ThroughputMops * retries
	pred.SuccessRate = 1 / retries
	pred.AttemptLatency = sim.Time(float64(n)/rate) - work
	pred.EnergyPerOpNJ = 0 // composite energy is not modeled
	if retries > 1 {
		// The winner-keeps-winning dynamics of blind retry loops.
		pred.Jain = 1 / float64(n)
	}
	return pred, nil
}
