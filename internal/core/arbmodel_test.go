package core

import (
	"math"
	"testing"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/workload"
)

func simHighArb(t *testing.T, m *machine.Machine, p atomics.Primitive, n int, arb coherence.Arbiter) *workload.Result {
	t.Helper()
	res, err := workload.Run(workload.Config{
		Machine: m, Threads: n, Primitive: p, Mode: workload.HighContention,
		Arbiter: arb,
		Warmup:  25 * sim.Microsecond, Duration: 300 * sim.Microsecond, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestArbPolicyStrings(t *testing.T) {
	if ArbFIFO.String() != "fifo" || ArbRandom.String() != "random" ||
		ArbLocality.String() != "locality" || ArbPolicy(9).String() != "unknown" {
		t.Error("policy strings")
	}
}

func TestPredictFIFODefault(t *testing.T) {
	m := machine.XeonE5()
	md := NewDetailed(m)
	cores := compactCores(m, 8)
	a := md.PredictHigh(atomics.FAA, cores, 0)
	b := md.PredictHighArb(atomics.FAA, cores, 0, ArbFIFO)
	if a != b {
		t.Fatal("ArbFIFO should equal PredictHigh")
	}
}

func TestPredictLocalityXeonMonopoly(t *testing.T) {
	// On Xeon (one core per ring stop), the owner re-wins every race:
	// throughput = local-op rate, Jain = 1/n. Matches F13's measured
	// 114.30 Mops at any thread count.
	m := machine.XeonE5()
	md := NewDetailed(m)
	for _, n := range []int{8, 16} {
		cores := compactCores(m, n)
		pred := md.PredictHighArb(atomics.FAA, cores, 0, ArbLocality)
		res := simHighArb(t, m, atomics.FAA, n, &coherence.LocalityArbiter{})
		if e := math.Abs(pred.ThroughputMops-res.ThroughputMops) / res.ThroughputMops; e > 0.05 {
			t.Errorf("n=%d: locality model %.2f vs sim %.2f Mops (%.0f%%)",
				n, pred.ThroughputMops, res.ThroughputMops, e*100)
		}
		if math.Abs(pred.Jain-res.Jain) > 0.03 {
			t.Errorf("n=%d: locality Jain model %.3f vs sim %.3f", n, pred.Jain, res.Jain)
		}
	}
}

func TestPredictLocalityKNLTilePair(t *testing.T) {
	// On KNL two cores share each tile: locality arbitration rotates
	// ownership inside ONE tile (zero-hop transfers). Which tile
	// absorbs ownership is an initial-race accident, so the model
	// predicts the expectation over the candidate tiles; compare it to
	// the mean over several seeds, and Jain = 2/n at every seed.
	m := machine.KNL()
	md := NewDetailed(m)
	for _, n := range []int{8, 16} {
		cores := compactCores(m, n)
		pred := md.PredictHighArb(atomics.FAA, cores, 0, ArbLocality)
		var mean float64
		const seeds = 5
		for s := 0; s < seeds; s++ {
			res, err := workload.Run(workload.Config{
				Machine: m, Threads: n, Primitive: atomics.FAA,
				Mode: workload.HighContention, Arbiter: &coherence.LocalityArbiter{},
				Warmup: 25 * sim.Microsecond, Duration: 300 * sim.Microsecond,
				Seed: uint64(100 + s),
			})
			if err != nil {
				t.Fatal(err)
			}
			mean += res.ThroughputMops / seeds
			wantJain := 2.0 / float64(n)
			if math.Abs(res.Jain-wantJain) > 0.03 {
				t.Errorf("n=%d seed %d: simulated Jain %.3f, want %.3f", n, s, res.Jain, wantJain)
			}
		}
		if e := math.Abs(pred.ThroughputMops-mean) / mean; e > 0.20 {
			t.Errorf("n=%d: locality model %.2f vs seed-mean sim %.2f Mops (%.0f%%)",
				n, pred.ThroughputMops, mean, e*100)
		}
		if math.Abs(pred.Jain-2.0/float64(n)) > 1e-9 {
			t.Errorf("n=%d: predicted Jain %.3f, want %.3f", n, pred.Jain, 2.0/float64(n))
		}
	}
}

func TestPredictRandomCASSuccess(t *testing.T) {
	// Random arbitration softens the CAS decay from 1/n to the
	// memoryless fixed point; the simulator agrees within a few points.
	m := machine.XeonE5()
	md := NewDetailed(m)
	n := 8
	cores := compactCores(m, n)
	pred := md.PredictHighArb(atomics.CAS, cores, 0, ArbRandom)
	res := simHighArb(t, m, atomics.CAS, n, coherence.NewRandomArbiter(5))
	if pred.SuccessRate <= CASSuccessRateFIFO(n) {
		t.Fatal("random arbitration should predict a better CAS success rate than FIFO")
	}
	if math.Abs(pred.SuccessRate-res.SuccessRate()) > 0.06 {
		t.Errorf("success rate model %.3f vs sim %.3f", pred.SuccessRate, res.SuccessRate())
	}
	if res.Jain < 0.9 {
		t.Errorf("random-arb CAS should be roughly fair: Jain %.3f", res.Jain)
	}
}

func TestPredictRandomFAAEqualsFIFO(t *testing.T) {
	m := machine.KNL()
	md := NewDetailed(m)
	cores := compactCores(m, 16)
	fifo := md.PredictHighArb(atomics.FAA, cores, 0, ArbFIFO)
	random := md.PredictHighArb(atomics.FAA, cores, 0, ArbRandom)
	if fifo.ThroughputMops != random.ThroughputMops {
		t.Fatal("FAA throughput should not depend on fifo-vs-random arbitration")
	}
}

func TestPredictLocalityWithThinkTime(t *testing.T) {
	// With large think time the monopolist cannot saturate the line
	// alone; the cluster bound k/(s+w) kicks in.
	m := machine.XeonE5()
	md := NewDetailed(m)
	cores := compactCores(m, 8)
	w := 2 * sim.Microsecond
	pred := md.PredictHighArb(atomics.FAA, cores, 0, ArbLocality)
	predW := md.PredictHighArb(atomics.FAA, cores, w, ArbLocality)
	if predW.ThroughputMops >= pred.ThroughputMops {
		t.Fatal("think time should reduce locality throughput")
	}
}

func TestPredictLocalityDegenerate(t *testing.T) {
	md := NewDetailed(machine.XeonE5())
	p := md.PredictHighArb(atomics.FAA, nil, 0, ArbLocality)
	if p.Threads != 0 || p.ThroughputMops != 0 {
		t.Fatal("empty cores")
	}
	solo := md.PredictHighArb(atomics.FAA, []int{3}, 0, ArbLocality)
	plain := md.PredictHigh(atomics.FAA, []int{3}, 0)
	if solo.ThroughputMops != plain.ThroughputMops {
		t.Fatal("single thread: arbitration is immaterial")
	}
}
