package core

import (
	"testing"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/machine"
)

// TestThroughputMonotonicInThreads: with zero think time and compact
// placement, adding contenders (essentially) never raises saturated
// throughput — the service time grows as the set spreads. A small
// tolerance covers the legitimate exception where a larger set gains
// cores co-located with the line's home node (cheaper transfers), as
// happens on KNL between n=2 and n=4.
func TestThroughputMonotonicInThreads(t *testing.T) {
	for _, m := range machine.All() {
		md := NewDetailed(m)
		prev := 1e18
		for n := 2; n <= m.NumCores(); n *= 2 {
			x := md.PredictHigh(atomics.FAA, compactCores(m, n), 0).ThroughputMops
			if x > prev*1.05 {
				t.Errorf("%s: X(%d) = %.2f rose above X(%d) = %.2f", m.Name, n, x, n/2, prev)
			}
			prev = x
		}
	}
}

// TestLatencyMonotonicInThreads: saturated mean latency strictly grows
// with the population.
func TestLatencyMonotonicInThreads(t *testing.T) {
	m := machine.KNL()
	md := NewDetailed(m)
	prev := int64(-1)
	for n := 2; n <= 64; n *= 2 {
		l := int64(md.PredictHigh(atomics.SWAP, compactCores(m, n), 0).AttemptLatency)
		if l <= prev {
			t.Fatalf("latency not increasing at n=%d", n)
		}
		prev = l
	}
}

// TestServiceTimeOrderingByPrimitive: at fixed placement the primitives
// order by execution occupancy.
func TestServiceTimeOrderingByPrimitive(t *testing.T) {
	for _, m := range machine.All() {
		md := NewDetailed(m)
		cores := compactCores(m, 8)
		tas := md.ServiceTime(atomics.TAS, cores)
		faa := md.ServiceTime(atomics.FAA, cores)
		cas := md.ServiceTime(atomics.CAS, cores)
		cas2 := md.ServiceTime(atomics.CAS2, cores)
		if !(tas <= faa && faa <= cas && cas <= cas2) {
			t.Errorf("%s: primitive service ordering broken: %v %v %v %v", m.Name, tas, faa, cas, cas2)
		}
	}
}

// TestWorkMonotonic: more think time never raises throughput and never
// raises latency.
func TestWorkMonotonic(t *testing.T) {
	m := machine.XeonE5()
	md := NewDetailed(m)
	cores := compactCores(m, 8)
	prevX, prevL := 1e18, int64(-1)
	for w := int64(0); w <= 6400; w = w*2 + 100 {
		p := md.PredictHigh(atomics.FAA, cores, machine.XeonE5().Cycles(float64(w)))
		if p.ThroughputMops > prevX+1e-9 {
			t.Fatalf("X rose with work at w=%d", w)
		}
		if int64(p.AttemptLatency) > prevL && prevL >= 0 {
			t.Fatalf("latency rose with think time at w=%d (should fall toward s)", w)
		}
		prevX = p.ThroughputMops
		prevL = int64(p.AttemptLatency)
	}
}

// TestScatterNeverFasterThanSingleSocket: spreading over sockets cannot
// beat staying on one, for the same thread count.
func TestScatterNeverFasterThanSingleSocket(t *testing.T) {
	m := machine.XeonE5()
	md := NewDetailed(m)
	for _, n := range []int{2, 4, 8, 16} {
		scatterSlots, err := (machine.Scatter{}).Place(m, n)
		if err != nil {
			t.Fatal(err)
		}
		singleSlots, err := (machine.SingleSocket{}).Place(m, n)
		if err != nil {
			t.Fatal(err)
		}
		toCores := func(slots []int) []int {
			cores := make([]int, len(slots))
			for i, s := range slots {
				cores[i] = m.CoreOf(s)
			}
			return cores
		}
		xs := md.PredictHigh(atomics.FAA, toCores(scatterSlots), 0).ThroughputMops
		x1 := md.PredictHigh(atomics.FAA, toCores(singleSlots), 0).ThroughputMops
		if xs > x1 {
			t.Errorf("n=%d: scatter %.2f beat single-socket %.2f", n, xs, x1)
		}
	}
}
