package core

import (
	"math"
	"testing"

	"atomicsmodel/internal/apps"
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

// appThroughput runs an application benchmark at n threads on m.
func appThroughput(t *testing.T, m *machine.Machine, n int, build func(*sim.Engine, *atomics.Memory) apps.App) float64 {
	t.Helper()
	res, err := apps.Run(apps.RunConfig{
		Machine: m, Threads: n, Build: build,
		Warmup: 25 * sim.Microsecond, Duration: 300 * sim.Microsecond, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.ThroughputMops
}

// stackSteps describes one Treiber stack operation (half pushes, half
// pops) to the composite model.
func stackSteps() []AlgoStep {
	return []AlgoStep{
		{Primitive: atomics.Store, Line: PrivateLine, Weight: 0.5, Retry: true},
		{Primitive: atomics.Load, Line: 0, Weight: 0.5, Retry: true},
		{Primitive: atomics.Load, Line: MigratoryLine, Weight: 0.5, Retry: true},
		{Primitive: atomics.CAS, Line: 0, Retry: true},
	}
}

// queueSteps describes one Michael-Scott queue operation (half
// enqueues, half dequeues): head and tail are separate contended lines.
func queueSteps() []AlgoStep {
	return []AlgoStep{
		{Primitive: atomics.Store, Line: PrivateLine, Weight: 0.5},
		{Primitive: atomics.Load, Line: 1, Weight: 0.5, Retry: true},
		{Primitive: atomics.Load, Line: MigratoryLine, Weight: 1, Retry: true},
		{Primitive: atomics.CAS, Line: MigratoryLine, Weight: 0.5, Retry: true},
		{Primitive: atomics.CAS, Line: 1, Weight: 0.5},
		{Primitive: atomics.Load, Line: 0, Weight: 0.5, Retry: true},
		{Primitive: atomics.CAS, Line: 0, Weight: 0.5, Retry: true},
	}
}

func TestPredictAlgorithmCounters(t *testing.T) {
	// The composite model must agree with the primitive model — and
	// the simulator — on the counters it was built from.
	m := machine.XeonE5()
	md := NewDetailed(m)
	cores := compactCores(m, 16)

	faa, err := md.PredictAlgorithm([]AlgoStep{{Primitive: atomics.FAA, Line: 0}}, cores, 0)
	if err != nil {
		t.Fatal(err)
	}
	simFAA := appThroughput(t, m, 16, func(e *sim.Engine, mem *atomics.Memory) apps.App {
		return apps.NewFAACounter(mem)
	})
	if e := math.Abs(faa.ThroughputMops-simFAA) / simFAA; e > 0.10 {
		t.Errorf("FAA counter: model %.2f vs sim %.2f (%.0f%%)", faa.ThroughputMops, simFAA, e*100)
	}

	cas, err := md.PredictAlgorithm([]AlgoStep{{Primitive: atomics.CAS, Line: 0, Retry: true}}, cores, 0)
	if err != nil {
		t.Fatal(err)
	}
	simCAS := appThroughput(t, m, 16, func(e *sim.Engine, mem *atomics.Memory) apps.App {
		return apps.NewCASCounter(mem)
	})
	if e := math.Abs(cas.ThroughputMops-simCAS) / simCAS; e > 0.10 {
		t.Errorf("CAS counter: model %.2f vs sim %.2f (%.0f%%)", cas.ThroughputMops, simCAS, e*100)
	}
	if cas.SuccessRate != 1.0/16 || cas.Jain != 1.0/16 {
		t.Errorf("retry loop stats: %+v", cas)
	}
}

func TestPredictAlgorithmDataStructures(t *testing.T) {
	// Stack and queue are compositions of several line accesses; the
	// model's job is design decisions, so require correct ranking and
	// ~40% accuracy across thread counts.
	m := machine.XeonE5()
	md := NewDetailed(m)
	for _, n := range []int{8, 16} {
		cores := compactCores(m, n)
		simStack := appThroughput(t, m, n, func(e *sim.Engine, mem *atomics.Memory) apps.App {
			return apps.NewTreiberStack(mem, 128)
		})
		simQueue := appThroughput(t, m, n, func(e *sim.Engine, mem *atomics.Memory) apps.App {
			return apps.NewMSQueue(mem, 128)
		})
		pStack, err := md.PredictAlgorithm(stackSteps(), cores, 0)
		if err != nil {
			t.Fatal(err)
		}
		pQueue, err := md.PredictAlgorithm(queueSteps(), cores, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []struct {
			name      string
			sim, pred float64
		}{{"stack", simStack, pStack.ThroughputMops}, {"queue", simQueue, pQueue.ThroughputMops}} {
			if e := math.Abs(c.pred-c.sim) / c.sim; e > 0.40 {
				t.Errorf("n=%d %s: model %.2f vs sim %.2f (%.0f%%)", n, c.name, c.pred, c.sim, e*100)
			}
		}
		// Ranking: queue (two hot lines split the load) beats stack.
		if !(pQueue.ThroughputMops > pStack.ThroughputMops) || !(simQueue > simStack) {
			t.Errorf("n=%d: ranking broken: model %.2f/%.2f sim %.2f/%.2f",
				n, pQueue.ThroughputMops, pStack.ThroughputMops, simQueue, simStack)
		}
	}
}

func TestPredictAlgorithmPrivateOnly(t *testing.T) {
	// A fully private algorithm scales linearly with threads.
	m := machine.KNL()
	md := NewDetailed(m)
	steps := []AlgoStep{{Primitive: atomics.FAA, Line: PrivateLine}}
	p4, err := md.PredictAlgorithm(steps, compactCores(m, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	p16, err := md.PredictAlgorithm(steps, compactCores(m, 16), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r := p16.ThroughputMops / p4.ThroughputMops; math.Abs(r-4) > 0.01 {
		t.Fatalf("private scaling = %.2fx, want 4x", r)
	}
}

func TestPredictAlgorithmBottleneckLine(t *testing.T) {
	// Two hot lines: the busier one bounds throughput.
	m := machine.XeonE5()
	md := NewDetailed(m)
	cores := compactCores(m, 8)
	oneHot, err := md.PredictAlgorithm([]AlgoStep{
		{Primitive: atomics.FAA, Line: 0},
		{Primitive: atomics.FAA, Line: 0},
	}, cores, 0)
	if err != nil {
		t.Fatal(err)
	}
	twoHot, err := md.PredictAlgorithm([]AlgoStep{
		{Primitive: atomics.FAA, Line: 0},
		{Primitive: atomics.FAA, Line: 1},
	}, cores, 0)
	if err != nil {
		t.Fatal(err)
	}
	if twoHot.ThroughputMops <= oneHot.ThroughputMops {
		t.Fatal("splitting accesses across two lines should raise the bound")
	}
	if math.Abs(twoHot.ThroughputMops/oneHot.ThroughputMops-2) > 0.01 {
		t.Fatalf("two-line speedup = %.2f, want 2", twoHot.ThroughputMops/oneHot.ThroughputMops)
	}
}

func TestPredictAlgorithmThinkTime(t *testing.T) {
	m := machine.XeonE5()
	md := NewDetailed(m)
	cores := compactCores(m, 4)
	steps := []AlgoStep{{Primitive: atomics.FAA, Line: 0}}
	sat, err := md.PredictAlgorithm(steps, cores, 0)
	if err != nil {
		t.Fatal(err)
	}
	idle, err := md.PredictAlgorithm(steps, cores, 10*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if idle.ThroughputMops >= sat.ThroughputMops {
		t.Fatal("think time should reduce throughput")
	}
	// Unsaturated: X = n/(path+w).
	want := 4.0 / (10*sim.Microsecond + sat.ServiceTime).Seconds() / 1e6
	if math.Abs(idle.ThroughputMops-want)/want > 0.01 {
		t.Fatalf("unsaturated X = %.3f, want %.3f", idle.ThroughputMops, want)
	}
}

func TestPredictAlgorithmValidation(t *testing.T) {
	md := NewDetailed(machine.XeonE5())
	cores := compactCores(machine.XeonE5(), 2)
	if _, err := md.PredictAlgorithm([]AlgoStep{{Primitive: atomics.FAA, Line: -3}}, cores, 0); err == nil {
		t.Error("invalid line accepted")
	}
	if _, err := md.PredictAlgorithm([]AlgoStep{{Primitive: atomics.FAA, Line: 0, Weight: -1}}, cores, 0); err == nil {
		t.Error("negative weight accepted")
	}
	p, err := md.PredictAlgorithm(nil, nil, 0)
	if err != nil || p.ThroughputMops != 0 {
		t.Error("empty inputs should degrade gracefully")
	}
}
