package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

// recordContended runs a small contended FAA workload with a recorder
// on the hot line and returns the recorder.
func recordContended(t *testing.T, threads, ops int) *Recorder {
	t.Helper()
	m, err := machine.ByName("XeonE5")
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	mem, err := atomics.NewMemory(eng, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	const hot coherence.LineID = 1
	rec := NewRecorder(hot, 0)
	mem.System().SetTracer(rec.Observe)
	for i := 0; i < threads; i++ {
		core := i
		var issue func(remaining int)
		issue = func(remaining int) {
			if remaining == 0 {
				return
			}
			mem.Do(atomics.FAA, core, hot, 1, 0, func(atomics.Result) { issue(remaining - 1) })
		}
		left := ops
		eng.Schedule(sim.Time(i)*sim.Nanosecond, func() { issue(left) })
	}
	eng.Drain()
	return rec
}

func TestWriteChromeTrace(t *testing.T) {
	rec := recordContended(t, 4, 10)
	if len(rec.Events()) == 0 {
		t.Fatal("no events recorded")
	}

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	// The output must be a valid trace_event JSON object envelope.
	var tr struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Ts   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			Pid  int                    `json:"pid"`
			Tid  int                    `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if tr.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}

	var slices, counters, meta int
	lastTs := -1.0
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			slices++
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Fatalf("slice %q has negative ts/dur: ts=%v dur=%v", ev.Name, ev.Ts, ev.Dur)
			}
			if ev.Tid < 1 {
				t.Fatalf("slice %q has tid %d; cores are shifted to 1-based rows", ev.Name, ev.Tid)
			}
			if _, ok := ev.Args["source"]; !ok {
				t.Fatalf("slice %q lacks a source arg", ev.Name)
			}
			lastTs = ev.Ts
		case "C":
			counters++
			if ev.Name != "owner" {
				t.Fatalf("unexpected counter %q", ev.Name)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta < 2 {
		t.Fatalf("expected process+thread metadata, got %d records", meta)
	}
	if slices != len(rec.Events()) {
		t.Fatalf("slices = %d, recorded events = %d", slices, len(rec.Events()))
	}
	if counters == 0 {
		t.Fatal("no owner counter events for an RMW workload")
	}
	if lastTs < 0 {
		t.Fatal("no slices seen")
	}

	// Determinism: re-encoding the same recording yields the same bytes.
	var buf2 bytes.Buffer
	if err := rec.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteChromeTrace output is not deterministic")
	}
}
