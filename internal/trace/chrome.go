package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"atomicsmodel/internal/coherence"
)

// This file exports a recorded line trace in the Chrome trace_event
// JSON format, loadable in chrome://tracing or https://ui.perfetto.dev:
// one timeline row per core, one slice per access spanning its
// service latency, plus an "owner" counter track that steps to the
// owning core on every RMW — the cache line's bounce made visible.
// Format reference: the "Trace Event Format" document; only the
// JSON-object envelope with "traceEvents" and the "M" (metadata),
// "X" (complete) and "C" (counter) phases are emitted.

// chromeEvent is one trace_event record. Field order is fixed and the
// envelope is marshaled with encoding/json, so output is deterministic
// for a given recording.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"` // microseconds, as the format requires
	Dur  *float64               `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// chromeTrace is the JSON-object envelope ({"traceEvents": [...]}).
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// usPerPs converts simulated picoseconds to the format's microseconds.
const usPerPs = 1e-6

// WriteChromeTrace writes the recorded events as Chrome trace_event
// JSON. Each access becomes a complete ("X") slice on its core's row,
// starting when the access began service (completion time minus
// latency) and lasting its latency; slice arguments carry the data
// source, hop count and cross-socket flag. RMWs additionally step an
// "owner" counter track to the acquiring core, which renders as a
// staircase of ownership transfers. Output is deterministic: same
// recording, same bytes.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0, 2*len(r.events)+8)

	// Metadata: name the process after the traced line and each core's
	// row after its core, so the Perfetto sidebar reads naturally.
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]interface{}{"name": fmt.Sprintf("cache line %d", r.Line)},
	})
	cores := map[int]bool{}
	for _, ev := range r.events {
		cores[ev.Core] = true
	}
	sorted := make([]int, 0, len(cores))
	for c := range cores {
		sorted = append(sorted, c)
	}
	sort.Ints(sorted)
	for _, c := range sorted {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: c + 1,
			Args: map[string]interface{}{"name": fmt.Sprintf("core %d", c)},
		})
	}

	for _, ev := range r.events {
		start := ev.At - ev.Latency
		if start < 0 {
			start = 0
		}
		dur := float64(ev.Latency) * usPerPs
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("%s %s", ev.Kind, ev.Source),
			Cat:  ev.Kind.String(),
			Ph:   "X",
			Ts:   float64(start) * usPerPs,
			Dur:  &dur,
			Pid:  0,
			// tid 0 renders oddly in some viewers; shift cores up by one.
			Tid: ev.Core + 1,
			Args: map[string]interface{}{
				"source":       ev.Source.String(),
				"hops":         ev.Hops,
				"cross_socket": ev.Cross,
				"latency_ns":   ev.Latency.Nanoseconds(),
				"value":        ev.Value,
			},
		})
		if ev.Kind == coherence.RFO {
			events = append(events, chromeEvent{
				Name: "owner",
				Ph:   "C",
				Ts:   float64(ev.At) * usPerPs,
				Pid:  0,
				Args: map[string]interface{}{"core": ev.Core},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{DisplayTimeUnit: "ns", TraceEvents: events})
}
