// Package trace records the coherence-level life of cache lines during
// a simulation — who owned the line when, how it moved, how requests
// convoyed — and computes the summary statistics the paper's analysis
// narrates: ownership-run lengths (does one core monopolize the line?),
// transfer distance distribution, and inter-acquisition gaps.
//
// It is the event-level arm of the observability layer
// (ARCHITECTURE.md, "Observability"): where internal/metrics counts,
// this package keeps the events themselves, for the CSV dump and the
// Chrome trace_event timeline export (chrome.go, surfaced as
// cmd/atomictrace -chrome) viewable in chrome://tracing or Perfetto.
package trace

import (
	"fmt"
	"io"
	"sort"

	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/sim"
)

// Event is one recorded access (a thin copy of coherence.TraceEvent).
type Event struct {
	At      sim.Time
	Core    int
	Kind    coherence.Kind
	Source  coherence.Source
	Hops    int
	Cross   bool
	Latency sim.Time
	Value   uint64
}

// Recorder captures events for one line. Install Observe as (or within)
// the coherence system's tracer.
type Recorder struct {
	Line   coherence.LineID
	events []Event
	// Cap bounds memory for long runs; 0 means unlimited. When the cap
	// is hit, recording stops (the prefix stays valid).
	Cap int
}

// NewRecorder records accesses to the given line, keeping at most cap
// events (0 = unlimited).
func NewRecorder(line coherence.LineID, cap int) *Recorder {
	return &Recorder{Line: line, Cap: cap}
}

// Observe is the tracer hook.
func (r *Recorder) Observe(ev coherence.TraceEvent) {
	if ev.Line != r.Line {
		return
	}
	if r.Cap > 0 && len(r.events) >= r.Cap {
		return
	}
	r.events = append(r.events, Event{
		At:      ev.At,
		Core:    ev.Core,
		Kind:    ev.Kind,
		Source:  ev.Result.Source,
		Hops:    ev.Result.Hops,
		Cross:   ev.Result.CrossSocket,
		Latency: ev.Result.Latency,
		Value:   ev.Result.Value,
	})
}

// Events returns the recorded events in completion order.
func (r *Recorder) Events() []Event { return r.events }

// Summary is the line-bouncing statistics of a recorded run.
type Summary struct {
	// Accesses counts recorded events; RMWs counts the RFO subset.
	Accesses, RMWs int
	// Transfers counts ownership changes (consecutive RFOs by
	// different cores).
	Transfers int
	// MeanRun is the mean ownership-run length: how many consecutive
	// RFOs the same core completed before losing the line. 1 means the
	// line bounced on every operation; large values mean monopoly.
	MeanRun float64
	// MaxRun is the longest ownership run.
	MaxRun int
	// MeanHops is the mean hop count over transferring RFOs.
	MeanHops float64
	// CrossFraction is the fraction of transfers crossing sockets.
	CrossFraction float64
	// MeanGap is the mean simulated time between consecutive RMW
	// completions (the line's service period under saturation).
	MeanGap sim.Time
	// DistinctCores is how many cores completed at least one RMW.
	DistinctCores int
}

// Summarize computes the statistics of the recorded events.
func (r *Recorder) Summarize() Summary {
	var s Summary
	s.Accesses = len(r.events)
	var runs []int
	run := 0
	lastCore := -1
	var lastAt sim.Time
	var gaps sim.Time
	gapN := 0
	hopSum, hopN, crossN := 0, 0, 0
	cores := map[int]bool{}
	for _, ev := range r.events {
		if ev.Kind != coherence.RFO {
			continue
		}
		s.RMWs++
		cores[ev.Core] = true
		if ev.Core == lastCore {
			run++
		} else {
			if run > 0 {
				runs = append(runs, run)
			}
			if lastCore >= 0 {
				s.Transfers++
			}
			run = 1
			lastCore = ev.Core
		}
		if s.RMWs > 1 {
			gaps += ev.At - lastAt
			gapN++
		}
		lastAt = ev.At
		if ev.Source == coherence.SrcRemoteCache || ev.Source == coherence.SrcLLC || ev.Source == coherence.SrcDRAM {
			hopSum += ev.Hops
			hopN++
			if ev.Cross {
				crossN++
			}
		}
	}
	if run > 0 {
		runs = append(runs, run)
	}
	if len(runs) > 0 {
		sum := 0
		for _, v := range runs {
			sum += v
			if v > s.MaxRun {
				s.MaxRun = v
			}
		}
		s.MeanRun = float64(sum) / float64(len(runs))
	}
	if hopN > 0 {
		s.MeanHops = float64(hopSum) / float64(hopN)
	}
	if s.Transfers > 0 {
		s.CrossFraction = float64(crossN) / float64(hopN)
	}
	if gapN > 0 {
		s.MeanGap = gaps / sim.Time(gapN)
	}
	s.DistinctCores = len(cores)
	return s
}

// OwnershipShares returns, per core, the fraction of RMWs it completed,
// sorted descending — the "who got the line" histogram behind the
// fairness results.
func (r *Recorder) OwnershipShares() []CoreShare {
	counts := map[int]int{}
	total := 0
	for _, ev := range r.events {
		if ev.Kind == coherence.RFO {
			counts[ev.Core]++
			total++
		}
	}
	out := make([]CoreShare, 0, len(counts))
	for c, n := range counts {
		out = append(out, CoreShare{Core: c, Share: float64(n) / float64(total)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Core < out[j].Core
	})
	return out
}

// CoreShare is one core's fraction of completed RMWs.
type CoreShare struct {
	Core  int
	Share float64
}

// WriteCSV dumps the recorded events as CSV.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_ns,core,kind,source,hops,cross_socket,latency_ns,value"); err != nil {
		return err
	}
	for _, ev := range r.events {
		cross := 0
		if ev.Cross {
			cross = 1
		}
		if _, err := fmt.Fprintf(w, "%.2f,%d,%s,%s,%d,%d,%.2f,%d\n",
			ev.At.Nanoseconds(), ev.Core, ev.Kind, ev.Source,
			ev.Hops, cross, ev.Latency.Nanoseconds(), ev.Value); err != nil {
			return err
		}
	}
	return nil
}
