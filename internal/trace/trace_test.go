package trace

import (
	"strings"
	"testing"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

// contendedRun drives a small FAA storm with a recorder attached.
func contendedRun(t *testing.T, threads, opsEach int) *Recorder {
	t.Helper()
	eng := sim.NewEngine()
	mem, err := atomics.NewMemory(eng, machine.XeonE5(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(1, 0)
	mem.System().SetTracer(rec.Observe)
	for c := 0; c < threads; c++ {
		c := c
		var issue func(n int)
		issue = func(n int) {
			if n == 0 {
				return
			}
			mem.FetchAndAdd(c, 1, 1, func(atomics.Result) { issue(n - 1) })
		}
		issue(opsEach)
	}
	eng.Drain()
	return rec
}

func TestRecorderCapturesAll(t *testing.T) {
	rec := contendedRun(t, 4, 25)
	if len(rec.Events()) != 100 {
		t.Fatalf("events = %d, want 100", len(rec.Events()))
	}
	s := rec.Summarize()
	if s.RMWs != 100 || s.Accesses != 100 {
		t.Fatalf("summary counts: %+v", s)
	}
	if s.DistinctCores != 4 {
		t.Fatalf("distinct cores = %d", s.DistinctCores)
	}
}

func TestSummaryBouncingRun(t *testing.T) {
	rec := contendedRun(t, 4, 25)
	s := rec.Summarize()
	// Saturated FIFO: the line moves on (almost) every op.
	if s.MeanRun > 1.5 {
		t.Fatalf("mean ownership run = %v, want ~1 under round-robin", s.MeanRun)
	}
	if s.Transfers < 90 {
		t.Fatalf("transfers = %d, want ~99", s.Transfers)
	}
	if s.MeanHops <= 0 {
		t.Fatal("no hops recorded")
	}
	if s.MeanGap <= 0 {
		t.Fatal("no gap computed")
	}
}

func TestSummaryMonopoly(t *testing.T) {
	rec := contendedRun(t, 1, 50)
	s := rec.Summarize()
	if s.Transfers != 0 {
		t.Fatalf("single core transferred %d times", s.Transfers)
	}
	if s.MaxRun != 50 || s.MeanRun != 50 {
		t.Fatalf("runs: mean=%v max=%d, want 50", s.MeanRun, s.MaxRun)
	}
}

func TestOwnershipShares(t *testing.T) {
	rec := contendedRun(t, 4, 25)
	shares := rec.OwnershipShares()
	if len(shares) != 4 {
		t.Fatalf("share entries = %d", len(shares))
	}
	total := 0.0
	for _, sh := range shares {
		total += sh.Share
		if sh.Share < 0.2 || sh.Share > 0.3 {
			t.Errorf("core %d share %.3f, want ~0.25 under FIFO", sh.Core, sh.Share)
		}
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("shares sum to %v", total)
	}
	// Sorted descending.
	for i := 1; i < len(shares); i++ {
		if shares[i].Share > shares[i-1].Share {
			t.Fatal("shares not sorted")
		}
	}
}

func TestRecorderCap(t *testing.T) {
	eng := sim.NewEngine()
	mem, err := atomics.NewMemory(eng, machine.Ideal(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(1, 10)
	mem.System().SetTracer(rec.Observe)
	var issue func(n int)
	issue = func(n int) {
		if n == 0 {
			return
		}
		mem.FetchAndAdd(0, 1, 1, func(atomics.Result) { issue(n - 1) })
	}
	issue(50)
	eng.Drain()
	if len(rec.Events()) != 10 {
		t.Fatalf("cap ignored: %d events", len(rec.Events()))
	}
}

func TestRecorderFiltersOtherLines(t *testing.T) {
	eng := sim.NewEngine()
	mem, err := atomics.NewMemory(eng, machine.Ideal(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(1, 0)
	mem.System().SetTracer(rec.Observe)
	mem.FetchAndAdd(0, 2, 1, nil) // different line
	eng.Drain()
	if len(rec.Events()) != 0 {
		t.Fatal("recorded an event for another line")
	}
}

func TestWriteCSV(t *testing.T) {
	rec := contendedRun(t, 2, 5)
	var sb strings.Builder
	if err := rec.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "time_ns,core,kind") {
		t.Errorf("missing header: %s", out[:40])
	}
	if strings.Count(out, "\n") != 11 { // header + 10 events
		t.Errorf("row count wrong:\n%s", out)
	}
}

func TestEmptyRecorder(t *testing.T) {
	rec := NewRecorder(5, 0)
	s := rec.Summarize()
	if s.Accesses != 0 || s.MeanRun != 0 || s.MeanGap != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	if shares := rec.OwnershipShares(); len(shares) != 0 {
		t.Fatal("empty shares")
	}
}
