package faults

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"atomicsmodel/internal/sim"
)

func TestParseRoundTrip(t *testing.T) {
	p, err := Parse("seed=7,jitter=12.5,panic=500@3,casfail=9,sleep=50ms@2")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Seed: 7, LatencyJitterPct: 12.5, PanicAtEvent: 500, PanicCell: 3,
		CASFailFirst: 9, SleepCell: 2, SleepFor: 50 * time.Millisecond}
	if *p != want {
		t.Fatalf("got %+v, want %+v", *p, want)
	}
	// panic without @CELL targets every cell.
	p, err = Parse("panic=100")
	if err != nil {
		t.Fatal(err)
	}
	if p.PanicCell != -1 || p.PanicAtEvent != 100 {
		t.Fatalf("got %+v", *p)
	}
	if p, err := Parse(""); err != nil || p != nil {
		t.Fatalf("empty spec: plan=%v err=%v, want nil/nil", p, err)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"nonsense", "jitter=-1", "jitter=101", "jitter=x",
		"panic=0", "panic=abc", "panic=5@-1",
		"casfail=-2", "sleep=50ms", "sleep=0s@1", "sleep=1s@-3",
		"seed=notanumber", "unknown=1",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
}

func TestForCellTargeting(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.ForCell(0) != nil {
		t.Fatal("nil plan derived a cell plan")
	}
	if nilPlan.CellSleep(0) != 0 {
		t.Fatal("nil plan slept")
	}

	p := &Plan{Seed: 1, PanicAtEvent: 100, PanicCell: 2}
	if cp := p.ForCell(1); cp != nil {
		t.Fatalf("cell 1 got a plan (%+v) though only cell 2 is targeted", cp)
	}
	cp := p.ForCell(2)
	if cp == nil || cp.PanicAtEvent != 100 {
		t.Fatalf("cell 2 plan: %+v", cp)
	}

	// An untargeted panic reaches every cell, with distinct derived seeds.
	all := &Plan{Seed: 1, PanicAtEvent: 100, PanicCell: -1}
	a, b := all.ForCell(0), all.ForCell(1)
	if a == nil || b == nil {
		t.Fatal("untargeted panic skipped a cell")
	}
	if a.Seed == b.Seed {
		t.Fatal("cells 0 and 1 derived the same fault seed")
	}

	sleeper := &Plan{SleepCell: 3, SleepFor: time.Millisecond}
	if sleeper.CellSleep(3) != time.Millisecond || sleeper.CellSleep(4) != 0 {
		t.Fatal("sleep targeting wrong")
	}
	// A sleep-only plan has no simulation-layer component.
	if sleeper.ForCell(3) != nil {
		t.Fatal("sleep-only plan produced a simulation-layer cell plan")
	}
}

func TestSignatureDeterministicAndDistinct(t *testing.T) {
	a, _ := Parse("jitter=5,casfail=2")
	b, _ := Parse("jitter=5,casfail=2")
	c, _ := Parse("jitter=5,casfail=3")
	if a.Signature() != b.Signature() {
		t.Fatal("equal plans produced different signatures")
	}
	if a.Signature() == c.Signature() {
		t.Fatal("different plans produced the same signature")
	}
	var nilPlan *Plan
	if nilPlan.Signature() != "" {
		t.Fatal("nil plan has a non-empty signature")
	}
}

func TestJitterPerturbsDeterministically(t *testing.T) {
	perturbed := func(seed uint64) []sim.Time {
		eng := sim.NewEngine()
		(&CellPlan{Cell: 0, Seed: seed, LatencyJitterPct: 20}).Install(eng, nil)
		var at []sim.Time
		for i := 0; i < 8; i++ {
			eng.Schedule(100*sim.Nanosecond, func() { at = append(at, eng.Now()) })
		}
		eng.Drain()
		return at
	}
	a, b := perturbed(1), perturbed(1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := perturbed(2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
	// Jitter stays within the configured band.
	for _, at := range a {
		if at < 80*sim.Nanosecond || at > 120*sim.Nanosecond {
			t.Fatalf("perturbed delay %v outside the 20%% band around 100ns", at)
		}
	}
}

func TestPanicAtEventFiresExactly(t *testing.T) {
	eng := sim.NewEngine()
	(&CellPlan{Cell: 5, Seed: 1, PanicAtEvent: 3}).Install(eng, nil)
	ran := 0
	for i := 0; i < 10; i++ {
		eng.Schedule(sim.Time(i)*sim.Nanosecond, func() { ran++ })
	}
	msg := func() (m string) {
		defer func() {
			if r := recover(); r != nil {
				m, _ = r.(string)
			}
		}()
		eng.Drain()
		return ""
	}()
	if want := "faults: injected panic at event 3 (cell 5)"; msg != want {
		t.Fatalf("panic message %q, want %q", msg, want)
	}
	if ran != 2 {
		t.Fatalf("%d events completed before the injected panic, want 2", ran)
	}
}

func TestTearFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	if err := os.WriteFile(path, []byte("{\"a\":1}\n{\"b\":22222222}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TearFinalLine(path); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	s := string(b)
	if !strings.HasPrefix(s, "{\"a\":1}\n") {
		t.Fatalf("tear damaged an interior line: %q", s)
	}
	last := s[len("{\"a\":1}\n"):]
	if strings.HasSuffix(last, "\n") || len(last) >= len(`{"b":22222222}`) {
		t.Fatalf("final line not torn: %q", last)
	}
	if err := TearFinalLine(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("tearing a missing file succeeded")
	}
}

func TestFlipPayloadByteAndCorruptDigest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	orig := "{\"key\":\"k\",\"digest\":\"0123456789abcdef\",\"value\":{\"v\":1}}\n"
	if err := os.WriteFile(path, []byte(orig), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipPayloadByte(path, 1); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	if string(b) == orig {
		t.Fatal("FlipPayloadByte changed nothing")
	}
	if len(b) != len(orig) {
		t.Fatalf("flip changed length: %d -> %d", len(orig), len(b))
	}

	if err := os.WriteFile(path, []byte(orig), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CorruptDigest(path, 1); err != nil {
		t.Fatal(err)
	}
	b, _ = os.ReadFile(path)
	if string(b) == orig || !strings.Contains(string(b), "\"key\":\"k\"") {
		t.Fatalf("CorruptDigest result: %q", b)
	}
	if err := CorruptDigest(path, 7); err == nil {
		t.Fatal("corrupting a missing line succeeded")
	}
}

func TestInjectStaleEntry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	if err := InjectStaleEntry(path, "old|key", []byte(`{"v":9}`)); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	if !strings.Contains(string(b), `"key":"old|key"`) || !strings.HasSuffix(string(b), "\n") {
		t.Fatalf("stale entry malformed: %q", b)
	}
}
