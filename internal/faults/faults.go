// Package faults is the deterministic fault-injection harness: every
// fault it can inject is seeded, reproducible, and scoped, so a test
// (or a paranoid operator) can prove the pipeline detects and survives
// each failure mode instead of hoping it does. Faults land at three
// layers:
//
//	simulation — perturbed transfer latencies (Plan.LatencyJitterPct),
//	             forced CAS-retry storms (Plan.CASFailFirst), and a
//	             mid-cell panic at a chosen event count
//	             (Plan.PanicAtEvent), installed on a cell's private
//	             engine and memory via CellPlan.Install;
//	run log    — torn final JSONL lines (TearFinalLine), bit-flipped
//	             cached-cell payloads (FlipPayloadByte), corrupted
//	             digests (CorruptDigest), and stale-key cache entries
//	             (InjectStaleEntry), applied to a run directory's files
//	             the way a crash or bad disk would;
//	scheduler  — slow cells (Plan.SleepCell/SleepFor burn wall-clock
//	             time before the cell computes), which is how hung-cell
//	             watchdog handling is exercised without a real hang;
//	daemon     — a deterministic hard crash of the atomicd job server
//	             after N completed cells (Plan.CrashAfterCells /
//	             ShouldCrash): SIGKILL semantics at a reproducible
//	             point, the hook behind the crash-recovery acceptance
//	             tests in internal/jobs.
//
// A Plan describes faults for a whole experiment run; ForCell derives
// the per-cell view the harness threads into workload.Config.Faults /
// apps.RunConfig.Faults. Plans join the cell cache key (Signature), so
// a faulted run can never poison a clean run's resume cache. DESIGN.md
// ("Fault injection and invariants") maps each fault class to the
// acceptance test that proves it is detected.
package faults

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/sim"
)

// Plan is an experiment-level fault plan. The zero value injects
// nothing; each fault class arms independently.
type Plan struct {
	// Seed drives every stochastic fault decision; distinct cells derive
	// their own streams from it.
	Seed uint64

	// LatencyJitterPct, when positive, perturbs every relative delay a
	// cell schedules by a uniform factor in [1-p/100, 1+p/100]. Results
	// change (deliberately) but stay deterministic for a given seed.
	LatencyJitterPct float64

	// PanicAtEvent, when positive, panics the targeted cell when its
	// engine processes this many events — a crash in the middle of a
	// simulation, recovered by the scheduler as a CellPanicError.
	PanicAtEvent uint64
	// PanicCell selects which cell index PanicAtEvent applies to; a
	// negative value targets every cell.
	PanicCell int

	// CASFailFirst, when positive, forces each cell's first N CAS
	// serialization points to fail — a retry storm.
	CASFailFirst int

	// SleepCell/SleepFor, when SleepFor is positive, make the targeted
	// cell sleep (wall clock) before computing: a slow or, against a
	// watchdog deadline, effectively hung cell. Results are unchanged.
	SleepCell int
	SleepFor  time.Duration

	// CrashAfterCells, when positive, arms the daemon-layer crash hook:
	// the atomicd job server hard-exits the process the moment this
	// many simulation cells have completed across all jobs — a SIGKILL
	// with deterministic timing, no drain, no terminal journal record.
	// It exists so crash-recovery acceptance tests can kill a daemon
	// mid-job at a reproducible point; see Plan.ShouldCrash.
	CrashAfterCells int
}

// CellPlan is one cell's slice of a Plan, with its derived seed.
type CellPlan struct {
	Cell             int
	Seed             uint64
	LatencyJitterPct float64
	PanicAtEvent     uint64
	CASFailFirst     int
}

// ForCell derives cell i's plan. It is nil-safe and returns nil when no
// simulation-layer fault applies to the cell, so the common no-fault
// path stays a single nil check.
func (p *Plan) ForCell(cell int) *CellPlan {
	if p == nil {
		return nil
	}
	cp := &CellPlan{
		Cell:             cell,
		Seed:             sim.NewRNG(p.Seed + uint64(cell)*0x9e3779b9).Uint64(),
		LatencyJitterPct: p.LatencyJitterPct,
		CASFailFirst:     p.CASFailFirst,
	}
	if p.PanicAtEvent > 0 && (p.PanicCell < 0 || p.PanicCell == cell) {
		cp.PanicAtEvent = p.PanicAtEvent
	}
	if cp.LatencyJitterPct <= 0 && cp.PanicAtEvent == 0 && cp.CASFailFirst <= 0 {
		return nil
	}
	return cp
}

// SleepFor returns how long the scheduler should stall cell i before
// running it (0 for untargeted cells). Nil-safe.
func (p *Plan) CellSleep(cell int) time.Duration {
	if p == nil || p.SleepFor <= 0 || p.SleepCell != cell {
		return 0
	}
	return p.SleepFor
}

// CellLayer returns the plan as the harness cell scheduler should see
// it: nil when only the daemon-layer crash hook is armed, the plan
// itself when any simulation- or scheduler-layer fault is. A
// crash-only daemon run must share cell cache keys with its clean
// restart (that sharing is the whole recovery story), so it must not
// pick up a "|faults=" cache-key segment.
func (p *Plan) CellLayer() *Plan {
	if p == nil {
		return nil
	}
	if p.LatencyJitterPct <= 0 && p.PanicAtEvent == 0 && p.CASFailFirst <= 0 && p.SleepFor <= 0 {
		return nil
	}
	return p
}

// ShouldCrash reports whether the daemon crash hook fires once
// cellsDone simulation cells have completed. Nil-safe; the caller (the
// atomicd job server) is the one that actually exits the process.
func (p *Plan) ShouldCrash(cellsDone uint64) bool {
	return p != nil && p.CrashAfterCells > 0 && cellsDone >= uint64(p.CrashAfterCells)
}

// Signature is a deterministic description of the plan, joined into
// cell cache keys so faulted results never collide with clean ones.
// The daemon-layer crash hook is deliberately excluded: it changes
// when cells run, never what they compute, and crash-recovery tests
// depend on the interrupted run sharing cache entries with its clean
// restart.
func (p *Plan) Signature() string {
	if p == nil {
		return ""
	}
	return fmt.Sprintf("seed=%d,jitter=%g,panic=%d@%d,casfail=%d,sleep=%d@%s",
		p.Seed, p.LatencyJitterPct, p.PanicAtEvent, p.PanicCell, p.CASFailFirst, p.SleepCell, p.SleepFor)
}

// Install arms the cell's simulation-layer faults on its private engine
// and memory. Nil-safe: installing a nil plan is a no-op.
func (cp *CellPlan) Install(eng *sim.Engine, mem *atomics.Memory) {
	if cp == nil {
		return
	}
	if cp.LatencyJitterPct > 0 {
		rng := sim.NewRNG(cp.Seed)
		scale := cp.LatencyJitterPct / 100
		eng.SetPerturb(func(d sim.Time) sim.Time {
			if d <= 0 {
				return d
			}
			f := 1 + scale*(2*rng.Float64()-1)
			return sim.Time(float64(d) * f)
		})
	}
	if cp.PanicAtEvent > 0 {
		target, cell := cp.PanicAtEvent, cp.Cell
		eng.SetEventHook(func(processed uint64) {
			if processed == target {
				panic(fmt.Sprintf("faults: injected panic at event %d (cell %d)", target, cell))
			}
		})
	}
	if cp.CASFailFirst > 0 && mem != nil {
		remaining := cp.CASFailFirst
		mem.SetCASFault(func() bool {
			if remaining > 0 {
				remaining--
				return true
			}
			return false
		})
	}
}

// Parse builds a Plan from a comma-separated spec, the format behind
// the CLI -faults flag:
//
//	seed=N            fault seed (default 1)
//	jitter=P          latency jitter, percent
//	panic=N  panic=N@C  panic at event N (in cell C; all cells without @C)
//	casfail=N         force the first N CAS attempts per cell to fail
//	sleep=DUR@C       sleep DUR (Go duration) before cell C runs
//	crash=N           atomicd only: hard-exit the daemon after N
//	                  completed cells (crash-recovery acceptance hook)
//
// An empty spec returns nil (no faults).
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{Seed: 1, PanicCell: -1}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("faults: bad spec element %q (want key=value)", part)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: seed: %v", err)
			}
			p.Seed = n
		case "jitter":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 100 {
				return nil, fmt.Errorf("faults: jitter %q (want percent in [0,100])", v)
			}
			p.LatencyJitterPct = f
		case "panic":
			at, cell, hasCell := strings.Cut(v, "@")
			n, err := strconv.ParseUint(at, 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("faults: panic %q (want a positive event count)", v)
			}
			p.PanicAtEvent = n
			if hasCell {
				c, err := strconv.Atoi(cell)
				if err != nil || c < 0 {
					return nil, fmt.Errorf("faults: panic cell %q", cell)
				}
				p.PanicCell = c
			}
		case "casfail":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faults: casfail %q", v)
			}
			p.CASFailFirst = n
		case "crash":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("faults: crash %q (want a positive completed-cell count)", v)
			}
			p.CrashAfterCells = n
		case "sleep":
			dur, cell, hasCell := strings.Cut(v, "@")
			d, err := time.ParseDuration(dur)
			if err != nil || d <= 0 || !hasCell {
				return nil, fmt.Errorf("faults: sleep %q (want DURATION@CELL)", v)
			}
			c, err := strconv.Atoi(cell)
			if err != nil || c < 0 {
				return nil, fmt.Errorf("faults: sleep cell %q", cell)
			}
			p.SleepFor, p.SleepCell = d, c
		default:
			return nil, fmt.Errorf("faults: unknown fault %q (want seed, jitter, panic, casfail, sleep, crash)", k)
		}
	}
	return p, nil
}

// --- Run-log layer: file corruption the way crashes and bad disks do it ---

// TearFinalLine truncates the file's final line roughly in half,
// reproducing a process killed mid-write (a torn JSONL record with no
// trailing newline).
func TearFinalLine(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	// Find the start of the final non-empty line.
	end := len(b)
	for end > 0 && b[end-1] == '\n' {
		end--
	}
	if end == 0 {
		return fmt.Errorf("faults: %s has no line to tear", path)
	}
	start := strings.LastIndexByte(string(b[:end]), '\n') + 1
	cut := start + (end-start)/2
	if cut <= start {
		cut = start + 1
	}
	return os.WriteFile(path, b[:cut], 0o644)
}

// FlipPayloadByte flips one bit inside the JSON payload of the file's
// 1-based line n — the single-bit corruption a bad sector produces. The
// flip lands mid-line, so depending on where it hits the record either
// fails to parse or parses with a content digest that no longer
// matches; both must be quarantined, never trusted.
func FlipPayloadByte(path string, line int) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	lines := strings.SplitAfter(string(b), "\n")
	if line < 1 || line > len(lines) || len(lines[line-1]) < 4 {
		return fmt.Errorf("faults: %s has no line %d to corrupt", path, line)
	}
	raw := []byte(lines[line-1])
	raw[len(raw)/2] ^= 0x01
	lines[line-1] = string(raw)
	return os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644)
}

// CorruptDigest rewrites the first digest field on the file's 1-based
// line n so the stored content hash no longer matches the payload: a
// well-formed JSON record carrying silently wrong data. Only a content
// check can catch this one.
func CorruptDigest(path string, line int) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	lines := strings.SplitAfter(string(b), "\n")
	if line < 1 || line > len(lines) {
		return fmt.Errorf("faults: %s has no line %d", path, line)
	}
	const marker = `"digest":"`
	idx := strings.Index(lines[line-1], marker)
	if idx < 0 || len(lines[line-1]) < idx+len(marker)+1 {
		return fmt.Errorf("faults: %s line %d has no digest field", path, line)
	}
	raw := []byte(lines[line-1])
	pos := idx + len(marker)
	if raw[pos] == '0' {
		raw[pos] = 'f'
	} else {
		raw[pos] = '0'
	}
	lines[line-1] = string(raw)
	return os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644)
}

// InjectOrphanTerminal appends a well-formed terminal "done" record for
// a job ID that has no submit record — the residue of a job journal
// whose head was truncated or rotated away. Replay must quarantine it,
// never invent a job from a terminal record alone.
func InjectOrphanTerminal(path, id string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = fmt.Fprintf(f, "{\"type\":\"done\",\"id\":%q,\"digest\":\"deadbeefdeadbeef\"}\n", id)
	return err
}

// InjectStaleEntry appends a well-formed cache entry under a key no
// live cell uses (a leftover from a renamed experiment or an old
// schema). A robust resume must ignore it and produce tables
// byte-identical to a clean run.
func InjectStaleEntry(path, key string, value []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = fmt.Fprintf(f, "{\"key\":%q,\"digest\":\"deadbeefdeadbeef\",\"value\":%s}\n", key, value)
	return err
}
