package stats

import (
	"encoding/json"
	"fmt"

	"atomicsmodel/internal/sim"
)

// Histogram JSON encoding for the harness's cell-result cache: the
// bucket array is stored sparsely (bucket index -> count) and every
// field is integral, so a marshal/unmarshal round trip reproduces the
// histogram exactly — quantiles, mean, and extrema included. The empty
// histogram's min sentinel round-trips as-is.

type histogramJSON struct {
	N       uint64         `json:"n"`
	Sum     sim.Time       `json:"sum"`
	Min     sim.Time       `json:"min"`
	Max     sim.Time       `json:"max"`
	Buckets map[int]uint64 `json:"buckets,omitempty"`
}

// MarshalJSON encodes the histogram with sparse buckets.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	enc := histogramJSON{N: h.n, Sum: h.sum, Min: h.min, Max: h.max}
	for b, c := range h.counts {
		if c != 0 {
			if enc.Buckets == nil {
				enc.Buckets = make(map[int]uint64)
			}
			enc.Buckets[b] = c
		}
	}
	return json.Marshal(enc)
}

// UnmarshalJSON reconstructs a histogram encoded by MarshalJSON.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var dec histogramJSON
	if err := json.Unmarshal(b, &dec); err != nil {
		return err
	}
	h.counts = make([]uint64, maxBuckets)
	var total uint64
	for bi, c := range dec.Buckets {
		if bi < 0 || bi >= maxBuckets {
			return fmt.Errorf("stats: histogram bucket %d out of range", bi)
		}
		h.counts[bi] = c
		total += c
	}
	if total != dec.N {
		return fmt.Errorf("stats: histogram bucket counts sum to %d, n = %d", total, dec.N)
	}
	h.n = dec.N
	h.sum = dec.Sum
	h.min = dec.Min
	h.max = dec.Max
	return nil
}
