package stats

import (
	"math"
	"testing"
	"testing/quick"

	"atomicsmodel/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	for i := 1; i <= 100; i++ {
		h.Record(sim.Time(i) * sim.Nanosecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != sim.Nanosecond || h.Max() != 100*sim.Nanosecond {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	// Exact mean of 1..100 ns = 50.5ns.
	if got := h.Mean(); got != sim.Time(50500) {
		t.Fatalf("mean = %v ps, want 50500", int64(got))
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 10000; i++ {
		h.Record(sim.Time(i) * sim.Nanosecond)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := h.Quantile(q).Nanoseconds()
		want := q * 10000
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("q%.2f = %.0fns, want ~%.0fns", q, got, want)
		}
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Error("quantile extremes")
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	h := NewHistogram()
	r := sim.NewRNG(2)
	for i := 0; i < 5000; i++ {
		h.Record(r.Duration(10 * sim.Microsecond))
	}
	prev := sim.Time(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotonic at q=%.2f: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramRecordZeroAndHuge(t *testing.T) {
	h := NewHistogram()
	h.Record(0)
	h.Record(sim.Second * 100) // beyond the bucket range: clamps
	if h.Count() != 2 {
		t.Fatal("count")
	}
	if h.Max() != sim.Second*100 {
		t.Fatal("max not exact for clamped value")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 50; i++ {
		a.Record(sim.Time(i) * sim.Nanosecond)
	}
	for i := 51; i <= 100; i++ {
		b.Record(sim.Time(i) * sim.Nanosecond)
	}
	a.Merge(b)
	if a.Count() != 100 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != sim.Nanosecond || a.Max() != 100*sim.Nanosecond {
		t.Fatalf("merged extrema %v %v", a.Min(), a.Max())
	}
	if a.Mean() != sim.Time(50500) {
		t.Fatalf("merged mean = %d ps", int64(a.Mean()))
	}
	// Merging an empty histogram changes nothing.
	a.Merge(NewHistogram())
	if a.Count() != 100 {
		t.Fatal("merge with empty changed count")
	}
}

func TestHistogramStringMentionsCount(t *testing.T) {
	h := NewHistogram()
	h.Record(5 * sim.Nanosecond)
	s := h.String()
	if len(s) == 0 || s[0] != 'n' {
		t.Errorf("String() = %q", s)
	}
}

func TestBucketOfMonotonicProperty(t *testing.T) {
	if err := quick.Check(func(a, b uint32) bool {
		x, y := sim.Time(a), sim.Time(b)
		if x > y {
			x, y = y, x
		}
		return bucketOf(x) <= bucketOf(y)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]uint64{10, 10, 10, 10}); got != 1 {
		t.Errorf("equal work Jain = %v, want 1", got)
	}
	// One thread does everything among 4: index = 1/4.
	if got := JainIndex([]uint64{100, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("starved Jain = %v, want 0.25", got)
	}
	if got := JainIndex(nil); got != 1 {
		t.Errorf("empty Jain = %v", got)
	}
	if got := JainIndex([]uint64{0, 0}); got != 1 {
		t.Errorf("all-zero Jain = %v", got)
	}
	// Jain is always in [1/n, 1].
	if err := quick.Check(func(xs []uint64) bool {
		if len(xs) == 0 {
			return JainIndex(xs) == 1
		}
		j := JainIndex(xs)
		return j >= 1/float64(len(xs))-1e-9 && j <= 1+1e-9
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestCoV(t *testing.T) {
	if got := CoV([]uint64{5, 5, 5}); got != 0 {
		t.Errorf("balanced CoV = %v", got)
	}
	if got := CoV(nil); got != 0 {
		t.Errorf("empty CoV = %v", got)
	}
	if got := CoV([]uint64{0, 0}); got != 0 {
		t.Errorf("zero CoV = %v", got)
	}
	// {0, 10}: mean 5, stddev 5, CoV 1.
	if got := CoV([]uint64{0, 10}); math.Abs(got-1) > 1e-12 {
		t.Errorf("CoV = %v, want 1", got)
	}
}

func TestMinMaxRatio(t *testing.T) {
	if got := MinMaxRatio([]uint64{10, 20, 40}); got != 0.25 {
		t.Errorf("ratio = %v, want 0.25", got)
	}
	if got := MinMaxRatio([]uint64{7, 7}); got != 1 {
		t.Errorf("equal ratio = %v", got)
	}
	if got := MinMaxRatio([]uint64{0, 5}); got != 0 {
		t.Errorf("starved ratio = %v", got)
	}
	if got := MinMaxRatio(nil); got != 1 {
		t.Errorf("empty ratio = %v", got)
	}
	if got := MinMaxRatio([]uint64{0, 0}); got != 1 {
		t.Errorf("all-zero ratio = %v", got)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(1000, sim.Millisecond); got != 1e6 {
		t.Errorf("throughput = %v, want 1e6", got)
	}
	if got := Throughput(5, 0); got != 0 {
		t.Errorf("zero-duration throughput = %v", got)
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty aggregates")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	// Median must not modify its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Error("median reordered input")
	}
}

func TestMeanAbsPctError(t *testing.T) {
	if got := MeanAbsPctError([]float64{110, 90}, []float64{100, 100}); got != 10 {
		t.Errorf("MAPE = %v, want 10", got)
	}
	// Zero measurements skipped.
	if got := MeanAbsPctError([]float64{1, 110}, []float64{0, 100}); got != 10 {
		t.Errorf("MAPE with zero = %v, want 10", got)
	}
	if got := MeanAbsPctError(nil, nil); got != 0 {
		t.Errorf("empty MAPE = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	MeanAbsPctError([]float64{1}, []float64{1, 2})
}
