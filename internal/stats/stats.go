// Package stats collects the metrics the paper reports: operation
// latency distributions, throughput, per-thread fairness (Jain's index,
// coefficient of variation, min/max ratio), and simple aggregates with
// streaming computation so million-operation runs stay cheap.
//
// In the model pipeline (ARCHITECTURE.md) these are the quantities the
// benchmark drivers measure and the model predicts — MODEL.md §5
// states the fairness and energy definitions. Histograms carry an
// exact sparse JSON encoding (json.go) so they survive the resume
// cache's byte-exact round trip; the cheaper always-on event counters
// live in internal/metrics instead.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"atomicsmodel/internal/sim"
)

// Histogram is a logarithmic-bucket latency histogram with exact count,
// sum, min and max. Buckets are half-open time ranges growing by ~2×
// with 8 sub-buckets per octave, giving ≤ ~9% quantile error — ample
// for latency curves spanning ns to ms.
type Histogram struct {
	counts []uint64
	n      uint64
	sum    sim.Time
	min    sim.Time
	max    sim.Time
}

const (
	subBuckets = 8
	// maxBuckets covers values up to ~2^40 ps (~1s) with 8 sub-buckets
	// per power of two.
	maxBuckets = 41 * subBuckets
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, maxBuckets), min: math.MaxInt64}
}

func bucketOf(v sim.Time) int {
	if v <= 0 {
		return 0
	}
	// Octave = floor(log2(v)); sub-bucket from the next 3 bits.
	x := uint64(v)
	octave := 63 - bits.LeadingZeros64(x)
	var sub uint64
	if octave >= 3 {
		sub = (x >> (uint(octave) - 3)) & 7
	} else {
		sub = (x << (3 - uint(octave))) & 7
	}
	b := octave*subBuckets + int(sub)
	if b >= maxBuckets {
		b = maxBuckets - 1
	}
	return b
}

// bucketLow returns the lower bound of bucket b (used for quantiles).
func bucketLow(b int) sim.Time {
	octave := b / subBuckets
	sub := b % subBuckets
	if octave < 3 {
		// Small values: approximate linearly.
		return sim.Time((1 << uint(octave)) + sub>>1)
	}
	return sim.Time((uint64(1) << uint(octave)) | (uint64(sub) << (uint(octave) - 3)))
}

// Reset empties the histogram in place, reusing the bucket array. A
// reset histogram is indistinguishable from NewHistogram().
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.n, h.sum, h.max = 0, 0, 0
	h.min = math.MaxInt64
}

// CopyInto makes dst an exact copy of h, reusing dst's bucket array.
func (h *Histogram) CopyInto(dst *Histogram) {
	copy(dst.counts, h.counts)
	dst.n, dst.sum, dst.min, dst.max = h.n, h.sum, h.min, h.max
}

// AddScaledDiff adds k extra copies of the growth of h since base was
// captured (base must be an earlier CopyInto snapshot of h). It is the
// fast-forward hook for replaying a memoized steady-state cycle: the
// bucket and sum deltas are integers, so k-fold replay is exact, and
// the extrema cannot move because the recorded cycle already observed
// every latency the elided cycles would repeat.
func (h *Histogram) AddScaledDiff(base *Histogram, k uint64) {
	for i, c := range h.counts {
		h.counts[i] = c + (c-base.counts[i])*k
	}
	h.n += (h.n - base.n) * k
	h.sum += (h.sum - base.sum) * sim.Time(k)
}

// Record adds one observation.
func (h *Histogram) Record(v sim.Time) {
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the exact mean (0 with no observations).
func (h *Histogram) Mean() sim.Time {
	if h.n == 0 {
		return 0
	}
	return sim.Time(uint64(h.sum) / h.n)
}

// Min and Max return exact extrema (0 with no observations).
func (h *Histogram) Min() sim.Time {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact maximum observation.
func (h *Histogram) Max() sim.Time { return h.max }

// Quantile returns an approximation of the q-quantile (0 <= q <= 1),
// accurate to the bucket width (~9%). It uses the nearest-rank (ceil)
// convention: the bucket of the smallest observation v such that at
// least ceil(q*n) observations are <= v. With this convention p50 of
// two observations is the first one, and p100 coincides with the
// maximum — the old floor-based rank was off by one whenever q*n was
// integral (p50 of n=2 returned the second observation's bucket).
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	// The tiny relative backoff keeps ranks that are mathematically
	// integral (0.9*10 = 9) from being inflated by floating-point
	// representation error (0.9*10 = 9.0000000000000018 in binary).
	r := q * float64(h.n)
	rank := uint64(math.Ceil(r - r*1e-12))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum >= rank {
			lo := bucketLow(b)
			if lo < h.min {
				lo = h.min
			}
			if lo > h.max {
				lo = h.max
			}
			return lo
		}
	}
	return h.max
}

// Merge adds the contents of other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.n > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.n, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// JainIndex computes Jain's fairness index over per-thread totals:
// (Σx)² / (n·Σx²). It is 1 when all threads did equal work and 1/n when
// one thread did everything. An empty or all-zero input yields 1 (a
// degenerate run is not unfair, just empty).
func JainIndex(xs []uint64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		f := float64(x)
		sum += f
		sumSq += f * f
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// CoV computes the coefficient of variation (stddev/mean) of per-thread
// totals; 0 for perfectly balanced work. Empty or zero-mean input
// yields 0.
func CoV(xs []uint64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += float64(x)
	}
	mean := sum / float64(len(xs))
	if mean == 0 {
		return 0
	}
	var sq float64
	for _, x := range xs {
		d := float64(x) - mean
		sq += d * d
	}
	return math.Sqrt(sq/float64(len(xs))) / mean
}

// MinMaxRatio returns min/max of per-thread totals — the paper's
// starkest fairness statistic (0 means a thread was fully starved).
// Empty input yields 1.
func MinMaxRatio(xs []uint64) float64 {
	if len(xs) == 0 {
		return 1
	}
	mn, mx := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	if mx == 0 {
		return 1
	}
	return float64(mn) / float64(mx)
}

// Throughput converts an op count over a duration to ops/second.
func Throughput(ops uint64, d sim.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Seconds()
}

// Mean returns the arithmetic mean of a float slice (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of a float slice (0 when empty). The input
// is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// MeanAbsPctError returns the mean of |pred-meas|/meas over paired
// slices, as a percentage. It is the model-validation metric. Pairs
// with zero measurement are skipped; mismatched lengths panic (caller
// bug).
func MeanAbsPctError(pred, meas []float64) float64 {
	if len(pred) != len(meas) {
		panic("stats: MeanAbsPctError length mismatch")
	}
	var sum float64
	n := 0
	for i := range pred {
		if meas[i] == 0 {
			continue
		}
		sum += math.Abs(pred[i]-meas[i]) / meas[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return 100 * sum / float64(n)
}
