package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"atomicsmodel/internal/sim"
)

// TestHistogramQuantileAgainstExactReference checks the histogram's
// quantiles against exact order statistics on random data: the log
// buckets promise ~9% relative error.
func TestHistogramQuantileAgainstExactReference(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%2000) + 100
		rng := sim.NewRNG(seed)
		h := NewHistogram()
		data := make([]float64, n)
		for i := 0; i < n; i++ {
			v := sim.Time(rng.Uint64()%uint64(10*sim.Microsecond)) + 1
			h.Record(v)
			data[i] = float64(v)
		}
		sort.Float64s(data)
		for _, q := range []float64{0.25, 0.5, 0.75, 0.9} {
			exact := data[int(q*float64(n))]
			got := float64(h.Quantile(q))
			if math.Abs(got-exact)/exact > 0.15 {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestHistogramMergeEquivalence: merging two histograms equals recording
// everything into one.
func TestHistogramMergeEquivalence(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		a, b, all := NewHistogram(), NewHistogram(), NewHistogram()
		for i := 0; i < 500; i++ {
			v := sim.Time(rng.Uint64() % uint64(sim.Millisecond))
			if i%2 == 0 {
				a.Record(v)
			} else {
				b.Record(v)
			}
			all.Record(v)
		}
		a.Merge(b)
		return a.Count() == all.Count() &&
			a.Mean() == all.Mean() &&
			a.Min() == all.Min() && a.Max() == all.Max() &&
			a.Quantile(0.5) == all.Quantile(0.5)
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestFairnessMetricConsistency ties the three fairness metrics
// together on random inputs: perfectly balanced input maxes all three;
// and Jain >= 1/n always.
func TestFairnessMetricConsistency(t *testing.T) {
	if err := quick.Check(func(xs []uint64) bool {
		if len(xs) == 0 {
			return true
		}
		j := JainIndex(xs)
		if j < 1/float64(len(xs))-1e-9 || j > 1+1e-9 {
			return false
		}
		// CoV and Jain agree on perfect balance.
		balanced := true
		for _, x := range xs {
			if x != xs[0] {
				balanced = false
			}
		}
		if balanced && xs[0] > 0 {
			return j > 1-1e-9 && CoV(xs) < 1e-9 && MinMaxRatio(xs) == 1
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}
