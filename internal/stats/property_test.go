package stats

import (
	"encoding/json"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"atomicsmodel/internal/sim"
)

// TestHistogramQuantileAgainstExactReference checks the histogram's
// quantiles against exact order statistics on random data: the log
// buckets promise ~9% relative error.
func TestHistogramQuantileAgainstExactReference(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%2000) + 100
		rng := sim.NewRNG(seed)
		h := NewHistogram()
		data := make([]float64, n)
		for i := 0; i < n; i++ {
			v := sim.Time(rng.Uint64()%uint64(10*sim.Microsecond)) + 1
			h.Record(v)
			data[i] = float64(v)
		}
		sort.Float64s(data)
		for _, q := range []float64{0.25, 0.5, 0.75, 0.9} {
			exact := data[int(q*float64(n))]
			got := float64(h.Quantile(q))
			if math.Abs(got-exact)/exact > 0.15 {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestHistogramQuantileNearestRankConvention pins the rank rounding
// against a sorted-slice nearest-rank reference: Quantile(q) must land
// in the same log bucket as the ceil(q*n)-th order statistic. The old
// floor-based rank was off by one whenever q*n was integral — p50 of
// n=2 returned the 2nd observation's bucket instead of the 1st.
func TestHistogramQuantileNearestRankConvention(t *testing.T) {
	// Deterministic regression for the exact reported case: two
	// observations in different buckets; p50 must be the first.
	h := NewHistogram()
	lo, hi := 100*sim.Nanosecond, 900*sim.Nanosecond
	h.Record(lo)
	h.Record(hi)
	if got := h.Quantile(0.5); bucketOf(got) != bucketOf(lo) {
		t.Fatalf("p50 of {lo, hi} = %v (bucket %d), want lo's bucket %d",
			got, bucketOf(got), bucketOf(lo))
	}
	if got := h.Quantile(0.51); bucketOf(got) != bucketOf(hi) {
		t.Fatalf("p51 of {lo, hi} = %v, want hi's bucket", got)
	}

	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%500) + 2
		rng := sim.NewRNG(seed)
		h := NewHistogram()
		data := make([]sim.Time, n)
		for i := range data {
			v := sim.Time(rng.Uint64()%uint64(10*sim.Microsecond)) + 1
			h.Record(v)
			data[i] = v
		}
		sort.Slice(data, func(i, j int) bool { return data[i] < data[j] })
		for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.9, 0.99} {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			if got, want := bucketOf(h.Quantile(q)), bucketOf(data[rank-1]); got != want {
				t.Logf("seed=%d n=%d q=%v: bucket %d, reference bucket %d", seed, n, q, got, want)
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestHistogramJSONRoundTripExact: the sparse JSON encoding used by the
// harness's resume cache must reproduce the histogram exactly — a
// resumed run renders quantile columns from decoded histograms and the
// tables must stay byte-identical.
func TestHistogramJSONRoundTripExact(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		h := NewHistogram()
		for i := 0; i < int(rng.Uint64()%2000); i++ {
			h.Record(sim.Time(rng.Uint64() % uint64(sim.Millisecond)))
		}
		b, err := json.Marshal(h)
		if err != nil {
			return false
		}
		h2 := NewHistogram()
		if err := json.Unmarshal(b, h2); err != nil {
			return false
		}
		if h.Count() != h2.Count() || h.Mean() != h2.Mean() ||
			h.Min() != h2.Min() || h.Max() != h2.Max() {
			return false
		}
		for q := 0.0; q <= 1.0; q += 0.05 {
			if h.Quantile(q) != h2.Quantile(q) {
				return false
			}
		}
		// Re-marshal must be byte-identical modulo map ordering; compare
		// through a third decode instead of raw bytes.
		b2, err := json.Marshal(h2)
		if err != nil {
			return false
		}
		h3 := NewHistogram()
		if err := json.Unmarshal(b2, h3); err != nil {
			return false
		}
		return h3.Count() == h.Count() && h3.Quantile(0.5) == h.Quantile(0.5)
	}, cfg); err != nil {
		t.Error(err)
	}

	// The empty histogram (min sentinel) round-trips too.
	b, err := json.Marshal(NewHistogram())
	if err != nil {
		t.Fatal(err)
	}
	h := NewHistogram()
	if err := json.Unmarshal(b, h); err != nil {
		t.Fatal(err)
	}
	if h.Count() != 0 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram corrupted by round trip: %v", h)
	}
	// Corrupt payloads are rejected, not silently zeroed.
	bad := NewHistogram()
	if err := json.Unmarshal([]byte(`{"n":5,"buckets":{"2":1}}`), bad); err == nil {
		t.Fatal("inconsistent bucket sum accepted")
	}
	if err := json.Unmarshal([]byte(`{"n":1,"buckets":{"99999":1}}`), bad); err == nil {
		t.Fatal("out-of-range bucket accepted")
	}
}

// TestHistogramMergeEquivalence: merging two histograms equals recording
// everything into one.
func TestHistogramMergeEquivalence(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		a, b, all := NewHistogram(), NewHistogram(), NewHistogram()
		for i := 0; i < 500; i++ {
			v := sim.Time(rng.Uint64() % uint64(sim.Millisecond))
			if i%2 == 0 {
				a.Record(v)
			} else {
				b.Record(v)
			}
			all.Record(v)
		}
		a.Merge(b)
		return a.Count() == all.Count() &&
			a.Mean() == all.Mean() &&
			a.Min() == all.Min() && a.Max() == all.Max() &&
			a.Quantile(0.5) == all.Quantile(0.5)
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestFairnessMetricConsistency ties the three fairness metrics
// together on random inputs: perfectly balanced input maxes all three;
// and Jain >= 1/n always.
func TestFairnessMetricConsistency(t *testing.T) {
	if err := quick.Check(func(xs []uint64) bool {
		if len(xs) == 0 {
			return true
		}
		j := JainIndex(xs)
		if j < 1/float64(len(xs))-1e-9 || j > 1+1e-9 {
			return false
		}
		// CoV and Jain agree on perfect balance.
		balanced := true
		for _, x := range xs {
			if x != xs[0] {
				balanced = false
			}
		}
		if balanced && xs[0] > 0 {
			return j > 1-1e-9 && CoV(xs) < 1e-9 && MinMaxRatio(xs) == 1
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}
