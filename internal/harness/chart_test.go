package harness

import (
	"strings"
	"testing"
)

func TestChartFromTable(t *testing.T) {
	tb := NewTable("fig", "threads", "FAA (Mops)", "note")
	tb.AddRow("1", "100", "warm")
	tb.AddRow("2", "50", "warm")
	tb.AddRow("4", "45", "warm")
	c, ok := ChartFromTable(tb)
	if !ok {
		t.Fatal("figure-shaped table rejected")
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "FAA (Mops)") || strings.Contains(out, "note") {
		t.Errorf("series selection wrong:\n%s", out)
	}
}

func TestChartFromTableRejectsNonNumeric(t *testing.T) {
	tb := NewTable("tab", "machine", "cores")
	tb.AddRow("XeonE5", "36")
	tb.AddRow("KNL", "64")
	if _, ok := ChartFromTable(tb); ok {
		t.Fatal("string-keyed table accepted")
	}
}

func TestChartFromTableRejectsTiny(t *testing.T) {
	tb := NewTable("one", "x", "y")
	tb.AddRow("1", "2")
	if _, ok := ChartFromTable(tb); ok {
		t.Fatal("single-row table accepted")
	}
}

func TestChartFromTableParsesPercent(t *testing.T) {
	tb := NewTable("pct", "threads", "err")
	tb.AddRow("1", "2.5%")
	tb.AddRow("2", "5.0%")
	if _, ok := ChartFromTable(tb); !ok {
		t.Fatal("percent cells rejected")
	}
}

func TestChartFromTableSkipsMixedColumns(t *testing.T) {
	tb := NewTable("mixed", "n", "good", "bad")
	tb.AddRow("1", "10", "x")
	tb.AddRow("2", "20", "-")
	c, ok := ChartFromTable(tb)
	if !ok {
		t.Fatal("table with one good series rejected")
	}
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "bad") {
		t.Error("non-numeric column plotted")
	}
}
