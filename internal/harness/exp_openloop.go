package harness

import (
	"fmt"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/core"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/workload"
)

func init() {
	Register(&Experiment{
		ID:    "F19",
		Title: "Open-loop saturation: offered load vs achieved throughput and latency",
		Claim: "the line is a server with rate 1/s: offered load below it is absorbed at flat latency, above it the queue explodes exactly where the model says",
		Run:   runF19,
	})
}

func runF19(o Options) ([]*Table, error) {
	const threads = 16
	// Offered load as a fraction of the model's predicted saturation
	// throughput.
	fractions := []float64{0.25, 0.5, 0.75, 0.9, 1.1, 1.5}
	if o.Quick {
		fractions = []float64{0.5, 0.9, 1.5}
	}
	var eligible []*machine.Machine
	for _, m := range o.machines() {
		if threads <= m.NumHWThreads() {
			eligible = append(eligible, m)
		}
	}
	saturation := func(m *machine.Machine) (core.Prediction, error) {
		cores, err := coresFor(m, nil, threads)
		if err != nil {
			return core.Prediction{}, err
		}
		return core.NewDetailed(m).PredictHigh(atomics.FAA, cores, 0), nil
	}
	type spec struct {
		m *machine.Machine
		f float64
	}
	var specs []spec
	for _, m := range eligible {
		for _, f := range fractions {
			specs = append(specs, spec{m, f})
		}
	}
	results, err := FanoutKeyed(o, specs, func(s spec) string {
		return fmt.Sprintf("%s/offered=%v", s.m.Key(), s.f)
	}, func(ci int, s spec) (*workload.Result, error) {
		sat, err := saturation(s.m)
		if err != nil {
			return nil, err
		}
		offered := s.f * sat.ThroughputMops // total Mops
		// Per-thread mean inter-arrival = threads / offered.
		inter := sim.Time(float64(threads) / (offered * 1e6) * 1e12)
		return workload.Run(workload.Config{
			Machine: s.m, Threads: threads, Primitive: atomics.FAA,
			Mode:     workload.HighContention,
			OpenLoop: true, OpenLoopInterarrival: inter,
			Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed,
			Metrics: o.MetricsOn(), Check: o.CheckOn(), Faults: o.CellFaults(ci),
		})
	})
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range eligible {
		sat, err := saturation(m)
		if err != nil {
			return nil, err
		}
		t := NewTable("F19 ("+m.Name+"): open-loop FAA, 16 arrival streams",
			"offered/saturation", "offered (Mops)", "achieved (Mops)", "mean latency (ns)", "p99 (ns)")
		for _, f := range fractions {
			res := results[k]
			k++
			offered := f * sat.ThroughputMops
			t.AddRow(f2(f), f2(offered), f2(res.ThroughputMops),
				ns(res.Latency.Mean()), ns(res.Latency.Quantile(0.99)))
		}
		t.AddNote("model saturation: %.2f Mops (service time %v)", sat.ThroughputMops, sat.ServiceTime)
		tables = append(tables, t)
	}
	return tables, nil
}
