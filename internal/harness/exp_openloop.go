package harness

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/core"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

func init() {
	Register(&Experiment{
		ID:    "F19",
		Title: "Open-loop saturation: offered load vs achieved throughput and latency",
		Claim: "the line is a server with rate 1/s: offered load below it is absorbed at flat latency, above it the queue explodes exactly where the model says",
		Run:   runF19,
	})
}

func runF19(o Options) ([]*Table, error) {
	const threads = 16
	// Offered load as a fraction of the model's predicted saturation
	// throughput.
	fractions := []float64{0.25, 0.5, 0.75, 0.9, 1.1, 1.5}
	if o.Quick {
		fractions = []float64{0.5, 0.9, 1.5}
	}
	var eligible []*machine.Machine
	for _, m := range o.machines() {
		if threads <= m.NumHWThreads() {
			eligible = append(eligible, m)
		}
	}
	saturation := func(m *machine.Machine) (core.Prediction, error) {
		cores, err := coresFor(m, nil, threads)
		if err != nil {
			return core.Prediction{}, err
		}
		return core.NewDetailed(m).PredictHigh(atomics.FAA, cores, 0), nil
	}
	var cells []workloadCell
	for _, m := range eligible {
		sat, err := saturation(m)
		if err != nil {
			return nil, err
		}
		for _, f := range fractions {
			offered := f * sat.ThroughputMops // total Mops
			// Per-thread mean inter-arrival = threads / offered. The spec
			// carries it as exact integer picoseconds, so the digest (and
			// the cell's identity) is stable across runs.
			inter := sim.Time(float64(threads) / (offered * 1e6) * 1e12)
			sp := o.baseSpec()
			sp.Primitive = atomics.FAA.String()
			sp.Threads = threads
			sp.OpenLoop = true
			sp.OpenLoopInterarrivalPS = inter
			sp.Seed = o.Seed
			c, err := newWorkloadCell(m, sp)
			if err != nil {
				return nil, err
			}
			cells = append(cells, c)
		}
	}
	results, err := runWorkloadCells(o, cells)
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range eligible {
		sat, err := saturation(m)
		if err != nil {
			return nil, err
		}
		t := NewTable("F19 ("+m.Name+"): open-loop FAA, 16 arrival streams",
			"offered/saturation", "offered (Mops)", "achieved (Mops)", "mean latency (ns)", "p99 (ns)")
		for _, f := range fractions {
			res := results[k]
			k++
			offered := f * sat.ThroughputMops
			t.AddRow(f2(f), f2(offered), f2(res.ThroughputMops),
				ns(res.Latency.Mean()), ns(res.Latency.Quantile(0.99)))
		}
		t.AddNote("model saturation: %.2f Mops (service time %v)", sat.ThroughputMops, sat.ServiceTime)
		tables = append(tables, t)
	}
	return tables, nil
}
