package harness

import (
	"fmt"

	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/workload"
)

// This file is the bridge between declarative workload specs and the
// keyed cell scheduler. Every workload.Config-based experiment runner
// describes its cells as workload.Specs and keys them by content
// digest: the cell key is machineKey + "/wl@" + spec.Digest(), so two
// cells that differ in any effective knob — arbiter, jitter, read
// fraction, seed, window — can never alias a cache entry, and two
// spellings of the same cell always share one. Runner-local
// fmt.Sprintf key fragments (which historically omitted knobs the
// config swept) are gone.

// workloadCell pairs a machine with a pinned workload spec and carries
// the cell's precomputed cache key (FanoutKeyed's key func cannot
// return an error, so the digest is computed while building the list).
type workloadCell struct {
	m    *machine.Machine
	spec *workload.Spec
	key  string
}

// newWorkloadCell validates and keys one cell. The spec must be pinned
// (single thread count) and carry its full effective configuration —
// including seed and measurement window — since the digest is the
// cell's cache identity.
func newWorkloadCell(m *machine.Machine, s workload.Spec) (workloadCell, error) {
	d, err := s.Digest()
	if err != nil {
		return workloadCell{}, err
	}
	return workloadCell{m: m, spec: &s, key: m.Key() + "/wl@" + d}, nil
}

// runWorkloadCells fans the cells out through the keyed scheduler;
// results come back in cell order regardless of Par.
func runWorkloadCells(o Options, cells []workloadCell) ([]*workload.Result, error) {
	return FanoutKeyed(o, cells, func(c workloadCell) string {
		return c.key
	}, func(ci int, c workloadCell) (*workload.Result, error) {
		return runSpecCell(o, ci, c.m, *c.spec)
	})
}

// runSpecCell resolves one pinned spec against a machine and runs it,
// forwarding the option set's observability, checking and fault knobs
// (which join the cache key at the cellKey layer, not the digest).
func runSpecCell(o Options, ci int, m *machine.Machine, sp workload.Spec) (*workload.Result, error) {
	cfg, err := sp.Config(m)
	if err != nil {
		return nil, err
	}
	cfg.Metrics = o.MetricsOn()
	cfg.Check = o.CheckOn()
	cfg.Faults = o.CellFaults(ci)
	return workload.Run(cfg)
}

// baseSpec returns a workload spec pinned to this option set's
// measurement window; runners fill in the swept knobs and the per-cell
// seed.
func (o Options) baseSpec() workload.Spec {
	return workload.Spec{WarmupPS: o.warmup(), DurationPS: o.duration()}
}

// WorkloadExperiment wraps user-selected workload specs as a runnable
// pseudo-experiment with ID "W" (the CLIs' -workloads/-workloadfile
// path). It is deliberately not in the registry: its cells depend on
// the user's spec selection, not only on Options.
func WorkloadExperiment(specs []*workload.Spec) *Experiment {
	return &Experiment{
		ID:    "W",
		Title: "Declarative workload specs",
		Claim: "user-defined workload cells run with the same digest-keyed caching and resume semantics as the paper's experiments",
		Run: func(o Options) ([]*Table, error) {
			return runWorkloadSuite(o, specs)
		},
	}
}

// runWorkloadSuite runs every spec (thread ladders expanded, points
// beyond a machine's hardware threads skipped) on every selected
// machine, one table per machine × spec. Specs that leave the
// measurement window or seed unset inherit the harness defaults: the
// option set's warmup/duration and the sweep-style per-thread-count
// seed derivation.
func runWorkloadSuite(o Options, specs []*workload.Spec) ([]*Table, error) {
	machines := o.machines()
	type group struct {
		m      *machine.Machine
		spec   *workload.Spec
		points []*workload.Spec
	}
	var groups []group
	var cells []workloadCell
	for _, m := range machines {
		for _, s := range specs {
			if err := s.Validate(); err != nil {
				return nil, err
			}
			g := group{m: m, spec: s}
			for _, pt := range s.Expand() {
				if pt.Threads > m.NumHWThreads() {
					continue
				}
				cell := *pt
				if cell.WarmupPS == 0 {
					cell.WarmupPS = o.warmup()
				}
				if cell.DurationPS == 0 {
					cell.DurationPS = o.duration()
				}
				if cell.Seed == 0 {
					cell.Seed = o.Seed + uint64(cell.Threads)
				}
				c, err := newWorkloadCell(m, cell)
				if err != nil {
					return nil, err
				}
				g.points = append(g.points, c.spec)
				cells = append(cells, c)
			}
			groups = append(groups, g)
		}
	}
	results, err := runWorkloadCells(o, cells)
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, g := range groups {
		t := NewTable(fmt.Sprintf("W (%s): %s", g.m.Name, g.spec.Label()),
			"threads", "Mops", "mean lat (ns)", "p99 (ns)", "Jain", "success rate", "nJ/op")
		for _, pt := range g.points {
			res := results[k]
			k++
			t.AddRow(itoa(pt.Threads), f2(res.ThroughputMops), ns(res.Latency.Mean()),
				ns(res.Latency.Quantile(0.99)), f3(res.Jain), f3(res.SuccessRate()),
				f1(res.Energy.PerOpNJ))
		}
		if len(g.points) == 0 {
			t.AddNote("no point of this spec fits %s's %d hardware threads", g.m.Name, g.m.NumHWThreads())
		} else if d, derr := g.spec.Digest(); derr == nil {
			t.AddNote("spec digest %s", d)
		}
		if g.spec.Doc != "" {
			t.AddNote("%s", g.spec.Doc)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
