package harness

import (
	"fmt"

	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

// coresFor places n threads with p (nil = compact) and returns their
// physical cores in thread order.
func coresFor(m *machine.Machine, p machine.Placement, n int) ([]int, error) {
	if p == nil {
		p = machine.Compact{}
	}
	slots, err := p.Place(m, n)
	if err != nil {
		return nil, err
	}
	cores := make([]int, n)
	for i, s := range slots {
		cores[i] = m.CoreOf(s)
	}
	return cores, nil
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func ns(t sim.Time) string { return fmt.Sprintf("%.1f", t.Nanoseconds()) }
func itoa(n int) string    { return fmt.Sprintf("%d", n) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
