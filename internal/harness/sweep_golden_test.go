package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atomicsmodel/internal/machine"
)

// TestQuickSweepGolden renders the full -quick experiment suite per
// paper machine exactly the way `atomicsim -quick -quiet -machines <M>`
// prints it and compares byte-for-byte against a golden file captured
// before machines became declarative specs. This is the regression
// gate for the whole refactor: spec-built machines must reproduce the
// legacy constructors' tables to the byte, across every experiment.
//
// To regenerate after an intentional change:
//
//	go run ./cmd/atomicsim -quick -quiet -machines XeonE5 > internal/harness/testdata/quick_sweep_xeone5.golden
//	go run ./cmd/atomicsim -quick -quiet -machines KNL   > internal/harness/testdata/quick_sweep_knl.golden
func TestQuickSweepGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite twice")
	}
	for _, tc := range []struct {
		name   string
		golden string
	}{
		{"XeonE5", "quick_sweep_xeone5.golden"},
		{"KNL", "quick_sweep_knl.golden"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			m, err := machine.ByName(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			for _, e := range All() {
				fmt.Fprintf(&sb, "== %s: %s\n   claim: %s\n\n", e.ID, e.Title, e.Claim)
				tables, err := RunExperiment(e, Options{
					Machines: []*machine.Machine{m}, Quick: true, Seed: 42, Par: 8,
				})
				if err != nil {
					t.Fatalf("%s: %v", e.ID, err)
				}
				for _, tb := range tables {
					if err := tb.Render(&sb); err != nil {
						t.Fatal(err)
					}
					sb.WriteString("\n")
				}
			}
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			got := sb.String()
			if got != string(want) {
				t.Fatalf("quick sweep for %s differs from golden %s (len %d vs %d); "+
					"first divergence at byte %d:\n...%s...",
					tc.name, tc.golden, len(got), len(want), diverge(got, string(want)),
					around(got, diverge(got, string(want))))
			}
		})
	}
}

func diverge(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func around(s string, at int) string {
	lo, hi := at-80, at+80
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}
