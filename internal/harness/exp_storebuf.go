package harness

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/workload"
)

func init() {
	Register(&Experiment{
		ID:    "F22",
		Title: "Store buffering (TSO): stores retire locally; atomics pay the implicit fence",
		Claim: "the asymmetry behind the paper's tables — a plain store looks ~free to its thread while an atomic on the same machine costs tens of cycles — is the store buffer plus the lock prefix's fence",
		Run:   runF22,
	})
}

func runF22(o Options) ([]*Table, error) {
	machines := o.machines()
	// Four independent simulations per machine: the store workload and
	// the burst probe, each on the synchronous and buffered variants.
	// The buffered clone's Name carries "+SB", so every cell keys
	// distinctly; fields are exported for the manifest cache.
	type cell struct {
		LatNs, Mops    float64 // store workload
		FAANs, FenceNs float64 // burst probe
	}
	// Store cells are spec-built and keyed by spec digest like every
	// workload cell; the burst probes are custom simulations and keep
	// their machine-keyed probe keys.
	type probe struct {
		m     *machine.Machine
		burst bool
		spec  workload.Spec // store probes only
		key   string
	}
	var specs []probe
	for _, base := range machines {
		buffered := cloneWithStoreBuffer(base, 42)
		for _, m := range []*machine.Machine{base, buffered} {
			sp := storeSpec(o)
			wc, err := newWorkloadCell(m, sp)
			if err != nil {
				return nil, err
			}
			specs = append(specs, probe{m: m, spec: sp, key: "store/" + wc.key})
		}
		specs = append(specs,
			probe{m: base, burst: true, key: "burst/" + base.Key()},
			probe{m: buffered, burst: true, key: "burst/" + buffered.Key()})
	}
	results, err := FanoutKeyed(o, specs, func(s probe) string {
		return s.key
	}, func(ci int, s probe) (cell, error) {
		var c cell
		var err error
		if s.burst {
			c.FAANs, c.FenceNs, err = burstThenOrder(s.m)
		} else {
			c.LatNs, c.Mops, err = storeWorkload(s.m, s.spec, o, ci)
		}
		return c, err
	})
	if err != nil {
		return nil, err
	}

	var tables []*Table
	for i, base := range machines {
		sStore, bStore := results[4*i], results[4*i+1]
		sBurst, bBurst := results[4*i+2], results[4*i+3]
		t := NewTable("F22 ("+base.Name+"): synchronous stores vs TSO store buffer",
			"measurement", "synchronous", "buffered (depth 42)")
		t.AddRow("store latency seen by thread, 16t (ns)", f1(sStore.LatNs), f1(bStore.LatNs))
		t.AddRow("store throughput, 16t (Mops)", f2(sStore.Mops), f2(bStore.Mops))
		t.AddRow("FAA elapsed after 8-store burst (ns)", f1(sBurst.FAANs), f1(bBurst.FAANs))
		t.AddRow("Fence elapsed after 8-store burst (ns)", f1(sBurst.FenceNs), f1(bBurst.FenceNs))
		t.AddNote("buffered stores retire at L1 speed; the line still bounds throughput via the drain; locked RMWs inherit the burst's drain time")
		tables = append(tables, t)
	}
	return tables, nil
}

func cloneWithStoreBuffer(m *machine.Machine, depth int) *machine.Machine {
	c := *m
	c.Name = m.Name + "+SB"
	c.StoreBufferDepth = depth
	return &c
}

// storeSpec describes the 16-thread contended-store workload cell.
func storeSpec(o Options) workload.Spec {
	sp := o.baseSpec()
	sp.Primitive = atomics.Store.String()
	sp.Threads = 16
	sp.Seed = o.Seed
	return sp
}

// storeWorkload measures mean thread-visible store latency (ns) and
// successful store throughput (Mops) at 16 threads on one line. ci is
// the calling cell's index, for fault targeting.
func storeWorkload(m *machine.Machine, sp workload.Spec, o Options, ci int) (latNs, mops float64, err error) {
	res, err := runSpecCell(o, ci, m, sp)
	if err != nil {
		return 0, 0, err
	}
	return res.Latency.Mean().Nanoseconds(), res.ThroughputMops, nil
}

// burstThenOrder issues 8 stores to private lines then one FAA on a hot
// line, and separately 8 stores then a fence; it reports the elapsed
// simulated time from the FAA/fence issue to its completion.
func burstThenOrder(m *machine.Machine) (faaNs, fenceNs float64, err error) {
	measure := func(op func(mem *atomics.Memory, eng *sim.Engine, done func())) (float64, error) {
		eng := sim.NewEngine()
		mem, err := atomics.NewMemory(eng, m, nil)
		if err != nil {
			return 0, err
		}
		// Warm the hot line on the issuing core so the RFO itself is
		// local: the measured cost is ordering, not transfer.
		mem.FetchAndAdd(0, 7, 0, nil)
		eng.Drain()
		for i := 0; i < 8; i++ {
			mem.StoreOp(0, coherence.LineID(1000+i*64), 1, nil)
		}
		start := eng.Now()
		var elapsed sim.Time
		op(mem, eng, func() { elapsed = eng.Now() - start })
		eng.Drain()
		return elapsed.Nanoseconds(), nil
	}
	faaNs, err = measure(func(mem *atomics.Memory, eng *sim.Engine, done func()) {
		mem.FetchAndAdd(0, 7, 1, func(atomics.Result) { done() })
	})
	if err != nil {
		return 0, 0, err
	}
	fenceNs, err = measure(func(mem *atomics.Memory, eng *sim.Engine, done func()) {
		mem.FenceOp(0, func(atomics.Result) { done() })
	})
	return faaNs, fenceNs, err
}
