package harness

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"atomicsmodel/internal/runlog"
)

// The tests in this file cover the run-management layer: crash
// isolation (panics become deterministic per-cell errors), the
// structured manifest, and resume (cached cells replay byte-identically).

func TestRunCellsRecoversPanicDeterministically(t *testing.T) {
	var msgs []string
	for _, par := range []int{1, 8} {
		err := RunCells(Options{Par: par}, 16, func(i int) error {
			switch i {
			case 3:
				panic("kaboom")
			case 9:
				return errors.New("cell 9 failed")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("par=%d: panic swallowed", par)
		}
		var pe *CellPanicError
		if !errors.As(err, &pe) {
			t.Fatalf("par=%d: got %T, want *CellPanicError", par, err)
		}
		if pe.Cell != 3 || pe.Stack == "" {
			t.Fatalf("par=%d: cell=%d stack=%d bytes", par, pe.Cell, len(pe.Stack))
		}
		msgs = append(msgs, err.Error())
	}
	// The error text must be identical on the serial and parallel
	// schedulers (so it excludes the stack), and the lowest-index
	// failure must win over the later plain error.
	if msgs[0] != msgs[1] {
		t.Fatalf("par=1 and par=8 disagree:\n%s\n%s", msgs[0], msgs[1])
	}
	if want := "cell 3 panicked: kaboom"; msgs[0] != want {
		t.Fatalf("got %q, want %q", msgs[0], want)
	}
}

func TestErrorCellDeterministicAcrossPar(t *testing.T) {
	run := func(par int) string {
		o := quickOpts()
		o.Par = par
		_, err := Fanout(o, make([]int, 32), func(i, _ int) (int, error) {
			if i >= 5 {
				return 0, fmt.Errorf("cell %d: simulated mid-experiment failure", i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("par=%d: error swallowed", par)
		}
		return err.Error()
	}
	serial, parallel := run(1), run(8)
	if serial != parallel {
		t.Fatalf("error output differs:\npar=1: %s\npar=8: %s", serial, parallel)
	}
	if want := "cell 5: simulated mid-experiment failure"; serial != want {
		t.Fatalf("got %q, want %q (lowest index must win)", serial, want)
	}
}

// workCell is a keyed-cell result type for the resume tests.
type workCell struct{ Value int }

// panicExperiment builds an (unregistered) experiment whose cell 2
// panics while *boom is set. It also counts fresh (non-cached) cell
// executions through *fresh.
func panicExperiment(boom *atomic.Bool, fresh *atomic.Int64) *Experiment {
	return &Experiment{
		ID:    "FX",
		Title: "panic/resume fixture",
		Claim: "test",
		Run: func(o Options) ([]*Table, error) {
			specs := []int{10, 11, 12, 13}
			res, err := FanoutKeyed(o, specs, func(s int) string {
				return fmt.Sprintf("cell=%d", s)
			}, func(i int, s int) (workCell, error) {
				fresh.Add(1)
				if i == 2 && boom.Load() {
					panic("boom")
				}
				return workCell{Value: s * s}, nil
			})
			if err != nil {
				return nil, err
			}
			tb := NewTable("FX", "spec", "value")
			for i, r := range res {
				tb.AddRow(itoa(specs[i]), itoa(r.Value))
			}
			return []*Table{tb}, nil
		},
	}
}

// TestPanicManifestAndResume is the acceptance test for the tentpole: a
// panicking cell does not crash the run, the manifest records the
// failure (with key, panic flag, and stack), and a resumed run re-runs
// only that cell, rendering tables byte-identical to an all-fresh run.
func TestPanicManifestAndResume(t *testing.T) {
	dir := t.TempDir()
	var boom atomic.Bool
	var fresh atomic.Int64
	boom.Store(true)
	exp := panicExperiment(&boom, &fresh)

	// Crashing run, serial scheduler so the outcome is deterministic:
	// cells 0 and 1 complete and reach the cache, cell 2 panics (which
	// surfaces as the experiment error instead of crashing the process),
	// cell 3 is never claimed.
	w, err := runlog.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := runlog.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := quickOpts()
	o.Par = 1
	o.Manifest, o.Cache = w, c
	_, err = RunExperiment(exp, o)
	if err == nil || !strings.Contains(err.Error(), "cell 2 panicked: boom") {
		t.Fatalf("first run: got err %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if fresh.Load() != 3 {
		t.Fatalf("first run executed %d cells, want 3 (up to and including the panic)", fresh.Load())
	}
	if _, err := runlog.Validate(dir); err != nil {
		t.Fatalf("manifest after crash: %v", err)
	}
	manifest, err := os.ReadFile(filepath.Join(dir, "manifest.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(manifest), `"panic":true`) ||
		!strings.Contains(string(manifest), `"stack":"goroutine`) {
		t.Fatalf("manifest lacks the panic record:\n%s", manifest)
	}

	// Resumed run with the fault cleared: only the failed cell and the
	// never-claimed one re-run; the completed cells replay from cache.
	boom.Store(false)
	fresh.Store(0)
	w2, err := runlog.Append(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := runlog.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Loaded() != 2 {
		t.Fatalf("cache holds %d cells after crash, want 2", c2.Loaded())
	}
	o2 := quickOpts()
	o2.Par = 8
	o2.Manifest, o2.Cache = w2, c2
	tables, err := RunExperiment(exp, o2)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if fresh.Load() != 2 {
		t.Fatalf("resume re-ran %d cells, want exactly the failed and unclaimed ones", fresh.Load())
	}
	cells, cached, failedCells := w2.Totals()
	if cells != 4 || cached != 2 || failedCells != 0 {
		t.Fatalf("resume totals: cells=%d cached=%d failed=%d", cells, cached, failedCells)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// Byte-identity with an all-fresh, cache-free run.
	fresh.Store(0)
	o3 := quickOpts()
	o3.Par = 8
	want, err := RunExperiment(exp, o3)
	if err != nil {
		t.Fatal(err)
	}
	if got, wanted := renderTables(t, tables), renderTables(t, want); got != wanted {
		t.Fatalf("resumed tables differ from fresh run:\n--- resumed ---\n%s\n--- fresh ---\n%s", got, wanted)
	}
}

func renderTables(t *testing.T, tables []*Table) string {
	t.Helper()
	var sb strings.Builder
	for _, tb := range tables {
		if err := tb.Render(&sb); err != nil {
			t.Fatal(err)
		}
	}
	return sb.String()
}

// renderAllManifest is renderAll through RunExperiment, so cache keys
// are namespaced by experiment ID the way the CLIs run them.
func renderAllManifest(t *testing.T, o Options, ids []string) string {
	t.Helper()
	var sb strings.Builder
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := RunExperiment(e, o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, tb := range tables {
			if err := tb.Render(&sb); err != nil {
				t.Fatal(err)
			}
		}
	}
	return sb.String()
}

// TestResumeMatchesFreshForAllExperiments runs the whole suite three
// ways — plain, fresh-with-cache, and resumed-from-cache — and demands
// byte-identical tables. This pins down both halves of the resume
// guarantee: attaching a cache must not perturb results (every result
// type survives its JSON round trip), and replaying the cache must
// reproduce the original run exactly.
func TestResumeMatchesFreshForAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment several times")
	}
	ids := IDs()

	base := quickOpts()
	base.Par = 8
	plain := renderAllManifest(t, base, ids)

	dir := t.TempDir()
	w, err := runlog.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := runlog.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := base
	o.Manifest, o.Cache = w, c
	freshRun := renderAllManifest(t, o, ids)
	wantCells, _, _ := w.Totals()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if plain != freshRun {
		t.Fatal("attaching manifest+cache changed rendered tables")
	}

	w2, err := runlog.Append(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := runlog.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	o2 := base
	o2.Manifest, o2.Cache = w2, c2
	resumed := renderAllManifest(t, o2, ids)
	cells, cached, failedCells := w2.Totals()
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if resumed != freshRun {
		t.Fatal("resumed run rendered different tables")
	}
	if cells != wantCells || cached != cells || failedCells != 0 {
		t.Fatalf("resume totals: cells=%d (want %d) cached=%d failed=%d — every cell must replay from cache",
			cells, wantCells, cached, failedCells)
	}
	if summary, err := runlog.Validate(dir); err != nil {
		t.Fatalf("Validate: %v", err)
	} else if !strings.Contains(summary, "0 failed") {
		t.Fatalf("Validate: %s", summary)
	}
}
