package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the parallel cell scheduler. A "cell" is one independent
// simulation: one (machine, threads, primitive, ...) configuration run
// to completion on its own engine. Cells never share mutable state —
// every cell builds a fresh engine, memory, and RNG from its own
// derived seed — so the scheduler may run them in any order on any
// number of workers. Determinism is preserved by construction: results
// are written into an index-addressed slot per cell and consumed in
// index order, so the assembled tables are byte-identical to a serial
// run regardless of worker count or completion order. Parallelism lives
// strictly across cells, never inside an engine.

// par returns the worker count: Options.Par when positive, otherwise
// the process's GOMAXPROCS.
func (o Options) par() int {
	if o.Par > 0 {
		return o.Par
	}
	return runtime.GOMAXPROCS(0)
}

// progress reports cell completion to the Options.Progress callback, if
// any. RunCells serializes calls, so callbacks need no locking.
func (o Options) progress(done, total int) {
	if o.Progress != nil {
		o.Progress(done, total)
	}
}

// RunCells executes fn(0), fn(1), ..., fn(n-1) on up to o.par()
// workers. Each index is claimed exactly once. On error the workers
// stop claiming new cells, already-claimed cells finish, and the error
// with the lowest index is returned — the same one a serial in-order
// run would have hit first, so error behavior is deterministic too.
func RunCells(o Options, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := o.par()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
			o.progress(i+1, n)
		}
		return nil
	}

	errs := make([]error, n)
	var next, done atomic.Int64
	var failed atomic.Bool
	var mu sync.Mutex // serializes Progress callbacks
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				d := int(done.Add(1))
				if o.Progress != nil {
					mu.Lock()
					o.Progress(d, n)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Fanout runs f over every spec on the cell scheduler and returns the
// results in spec order. f receives the spec's index so it can derive
// per-cell seeds or labels without capturing loop variables.
func Fanout[S, R any](o Options, specs []S, f func(i int, spec S) (R, error)) ([]R, error) {
	out := make([]R, len(specs))
	err := RunCells(o, len(specs), func(i int) error {
		r, err := f(i, specs[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
