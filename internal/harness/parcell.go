package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"atomicsmodel/internal/runlog"
	"atomicsmodel/internal/sim"
)

// This file is the parallel cell scheduler. A "cell" is one independent
// simulation: one (machine, threads, primitive, ...) configuration run
// to completion on its own engine. Cells never share mutable state —
// every cell builds a fresh engine, memory, and RNG from its own
// derived seed — so the scheduler may run them in any order on any
// number of workers. Determinism is preserved by construction: results
// are written into an index-addressed slot per cell and consumed in
// index order, so the assembled tables are byte-identical to a serial
// run regardless of worker count or completion order. Parallelism lives
// strictly across cells, never inside an engine.
//
// Cells are also crash-isolated: a panicking cell is recovered and
// converted into an ordinary per-cell error, so sibling cells finish,
// their results reach the manifest and resume cache, and the process
// survives to render what it can.

// par returns the worker count: Options.Par when positive, otherwise
// the process's GOMAXPROCS.
func (o Options) par() int {
	if o.Par > 0 {
		return o.Par
	}
	return runtime.GOMAXPROCS(0)
}

// progress reports cell completion to the Options.Progress callback, if
// any. RunCells serializes calls, so callbacks need no locking.
func (o Options) progress(done, total int) {
	if o.Progress != nil {
		o.Progress(done, total)
	}
}

// CellPanicError is a panic recovered from one cell, converted into a
// deterministic error. Error() deliberately excludes the stack — the
// message must be identical whether the cell panicked on a serial or a
// parallel scheduler — but the stack is preserved for the manifest and
// for human debugging.
type CellPanicError struct {
	// Cell is the panicking cell's index.
	Cell int
	// Value is the value passed to panic.
	Value interface{}
	// Stack is the panicking goroutine's stack trace.
	Stack string
}

func (e *CellPanicError) Error() string {
	return fmt.Sprintf("cell %d panicked: %v", e.Cell, e.Value)
}

// CellTimeoutError reports a cell whose compute closure exceeded
// Options.CellTimeout. The run degrades gracefully: sibling cells
// finish and reach the manifest and resume cache, the experiment fails
// with this error, and the CLI exits nonzero having rendered everything
// else. The message excludes wall-clock measurements so the manifest
// record is stable across runs.
type CellTimeoutError struct {
	// Cell is the timed-out cell's index.
	Cell int
	// Timeout is the configured deadline the cell exceeded.
	Timeout time.Duration
}

func (e *CellTimeoutError) Error() string {
	return fmt.Sprintf("cell %d exceeded its %v watchdog deadline", e.Cell, e.Timeout)
}

// CellRetriedError reports a cell that failed every attempt under
// Options.CellRetries. It wraps the final attempt's error (errors.As
// reaches the underlying *CellPanicError or *CellTimeoutError) and
// records how many attempts were made, so the manifest distinguishes
// "failed once" from "failed persistently".
type CellRetriedError struct {
	// Cell is the failing cell's index.
	Cell int
	// Attempts is the total number of attempts made (1 + retries).
	Attempts int
	// Last is the final attempt's error.
	Last error
}

func (e *CellRetriedError) Error() string {
	return fmt.Sprintf("cell %d failed all %d attempts, last: %v", e.Cell, e.Attempts, e.Last)
}

func (e *CellRetriedError) Unwrap() error { return e.Last }

// CellCanceledError reports a cell that was not run because the option
// set's context was canceled or its deadline passed before the cell
// started. The run aborts promptly between cells: cells already
// computing finish (and still reach the manifest and cache), canceled
// cells are recorded in the manifest with canceled=true, and the
// experiment fails with this error. Cause is the context's error, so
// errors.Is(err, context.Canceled) and context.DeadlineExceeded both
// work through it.
type CellCanceledError struct {
	// Cell is the index of the cell that was about to run.
	Cell int
	// Cause is ctx.Err(): context.Canceled or context.DeadlineExceeded.
	Cause error
}

func (e *CellCanceledError) Error() string {
	return fmt.Sprintf("cell %d canceled before it ran: %v", e.Cell, e.Cause)
}

func (e *CellCanceledError) Unwrap() error { return e.Cause }

// canceled returns the *CellCanceledError for cell i when the option
// set's context is done, nil otherwise (including when no context is
// attached).
func (o Options) canceled(i int) *CellCanceledError {
	if o.Context == nil {
		return nil
	}
	if err := o.Context.Err(); err != nil {
		return &CellCanceledError{Cell: i, Cause: err}
	}
	return nil
}

// cellRetryBackoff is the base backoff between cell retry attempts
// (attempt k sleeps k × this). It is wall-clock scheduling only and
// never affects results.
const cellRetryBackoff = 25 * time.Millisecond

// safeCell runs fn(i), converting a panic into a *CellPanicError.
func safeCell(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &CellPanicError{Cell: i, Value: r, Stack: string(debug.Stack())}
		}
	}()
	return fn(i)
}

// RunCells executes fn(0), fn(1), ..., fn(n-1) on up to o.par()
// workers. Each index is claimed exactly once. A cell that panics is
// recovered into a *CellPanicError instead of crashing the process. On
// error the workers stop claiming new cells, already-claimed cells
// finish, and the error with the lowest index is returned — the same
// one a serial in-order run would have hit first, so error behavior is
// deterministic too.
func RunCells(o Options, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := o.par()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := safeCell(i, fn); err != nil {
				return err
			}
			o.progress(i+1, n)
		}
		return nil
	}

	errs := make([]error, n)
	var next, done atomic.Int64
	var failed atomic.Bool
	var mu sync.Mutex // serializes Progress callbacks
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := safeCell(i, fn); err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				d := int(done.Add(1))
				if o.Progress != nil {
					mu.Lock()
					o.Progress(d, n)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunCellsContext is RunCells bounded by ctx: a cell whose turn comes
// after ctx is done fails with a *CellCanceledError instead of running,
// so a canceled or deadline-exceeded run aborts promptly between cells
// instead of running to completion. RunCells is the ctx-free wrapper
// (it honors an Options.Context stamped by a caller further up).
func RunCellsContext(ctx context.Context, o Options, n int, fn func(i int) error) error {
	o.Context = ctx
	return RunCells(o, n, func(i int) error {
		if cerr := o.canceled(i); cerr != nil {
			return cerr
		}
		return fn(i)
	})
}

// FanoutContext is Fanout bounded by ctx; see RunCellsContext.
func FanoutContext[S, R any](ctx context.Context, o Options, specs []S, f func(i int, spec S) (R, error)) ([]R, error) {
	o.Context = ctx
	return Fanout(o, specs, f)
}

// FanoutKeyedContext is FanoutKeyed bounded by ctx; see RunCellsContext.
// Canceled cells are recorded in the manifest (canceled=true) under
// their config key, so a resumed or re-submitted run can tell "never
// ran because the job was canceled" from "ran and failed".
func FanoutKeyedContext[S, R any](ctx context.Context, o Options, specs []S, key func(spec S) string, f func(i int, spec S) (R, error)) ([]R, error) {
	o.Context = ctx
	return FanoutKeyed(o, specs, key, f)
}

// Fanout runs f over every spec on the cell scheduler and returns the
// results in spec order. f receives the spec's index so it can derive
// per-cell seeds or labels without capturing loop variables. Cells are
// anonymous: they are recorded in the manifest by index but never
// cached. Runners whose cells should participate in resume use
// FanoutKeyed instead.
func Fanout[S, R any](o Options, specs []S, f func(i int, spec S) (R, error)) ([]R, error) {
	return FanoutKeyed(o, specs, nil, f)
}

// cellStats is implemented by result types that can report the
// simulated measurement window and completed-operation count for the
// manifest. *workload.Result and *apps.RunResult implement it.
type cellStats interface {
	CellStats() (simTime sim.Time, ops uint64)
}

// FanoutKeyed is Fanout plus cell identity: key(spec) names the cell's
// full configuration (machine, thread count, primitive, every swept
// knob — anything that changes its result). The key is combined with
// the experiment ID and base options into a config key that addresses
// the manifest and the resume cache:
//
//   - with Options.Manifest set, every cell appends a structured record
//     (key, result digest, wall time, ops, error/panic);
//   - with Options.Cache set, a cell whose key is already cached
//     replays the stored result instead of re-simulating, and fresh
//     results are stored for the next run.
//
// Cached results must be substitutable for fresh ones, so when a cache
// is attached the fresh result is round-tripped through its JSON
// encoding and the re-encoding is required to be byte-identical; a
// result type that loses information in JSON is reported as an error
// rather than silently producing tables that a resumed run could not
// reproduce. With a nil key function FanoutKeyed degrades to plain
// Fanout: cells run every time and are manifested by index only.
func FanoutKeyed[S, R any](o Options, specs []S, key func(spec S) string, f func(i int, spec S) (R, error)) ([]R, error) {
	out := make([]R, len(specs))
	err := RunCells(o, len(specs), func(i int) error {
		start := time.Now()
		var k string
		if key != nil {
			k = o.cellKey(key(specs[i]))
		}

		// Cancellation is checked between cells, never inside one: a
		// canceled cell is recorded in the manifest (it has a key and a
		// canceled mark but no result) and fails the run like any other
		// cell error, which stops the scheduler from claiming more.
		if cerr := o.canceled(i); cerr != nil {
			o.recordCell(i, k, "", false, start, nil, cerr)
			return cerr
		}

		// Resume path: replay the cached result for this config key.
		if k != "" && o.Cache != nil {
			if raw, digest, ok := o.Cache.Get(k); ok {
				var r R
				if err := json.Unmarshal(raw, &r); err == nil {
					out[i] = r
					o.recordCell(i, k, digest, true, start, r, nil)
					return nil
				}
				// Undecodable entry (e.g. the result type changed):
				// fall through and recompute; Put below overwrites it.
			}
		}

		r, err := computeCell(o, i, specs[i], f)
		if err != nil {
			o.recordCell(i, k, "", false, start, r, err)
			return err
		}

		digest := ""
		if k != "" && (o.Cache != nil || o.Manifest != nil) {
			raw, merr := json.Marshal(r)
			if merr != nil {
				return fmt.Errorf("cell %q: encoding result: %w", k, merr)
			}
			if o.Cache != nil {
				// Byte-exact round-trip check: decode the encoding and
				// re-encode. If information was lost, a resumed run
				// would render different tables — fail loudly instead.
				var rt R
				if uerr := json.Unmarshal(raw, &rt); uerr != nil {
					return fmt.Errorf("cell %q: result type %T does not decode from its own encoding: %w", k, r, uerr)
				}
				raw2, merr2 := json.Marshal(rt)
				if merr2 != nil || !bytes.Equal(raw, raw2) {
					return fmt.Errorf("cell %q: result type %T does not survive a JSON round trip; "+
						"cached replays would diverge from fresh runs", k, r)
				}
				// Hand the decoded value to assembly so fresh-with-cache
				// and resumed runs consume identical inputs.
				r = rt
				if digest, err = o.Cache.Put(k, raw); err != nil {
					return fmt.Errorf("cell %q: caching result: %w", k, err)
				}
			} else {
				digest = runlog.Digest(raw)
			}
		}
		out[i] = r
		o.recordCell(i, k, digest, false, start, r, nil)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// computeCell runs one cell's compute closure under the watchdog and
// retry policy. Only the compute is guarded — manifest recording and
// cache writes happen after it returns, so a timed-out cell can never
// leave a half-written record behind. With CellTimeout and CellRetries
// both zero this is exactly the old single-attempt panic guard.
func computeCell[S, R any](o Options, i int, spec S, f func(i int, spec S) (R, error)) (R, error) {
	var last error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			// Bounded linear backoff before each retry: enough to let a
			// transient resource squeeze (the usual cause of a wall-clock
			// timeout) pass, small enough not to dominate the run.
			time.Sleep(time.Duration(attempt) * cellRetryBackoff)
		}
		r, err := guardedCell(o, i, spec, f)
		if err == nil {
			return r, nil
		}
		last = err
		if attempt >= o.CellRetries {
			break
		}
		// A canceled run must not burn its remaining attempts: the
		// retry budget is for transient failures, not for outliving
		// the caller's deadline.
		if o.Context != nil && o.Context.Err() != nil {
			break
		}
	}
	var zero R
	if o.CellRetries > 0 {
		return zero, &CellRetriedError{Cell: i, Attempts: o.CellRetries + 1, Last: last}
	}
	return zero, last
}

// guardedCell runs f(i, spec) once with panic recovery and, when
// Options.CellTimeout is set, a wall-clock watchdog. The scheduler-layer
// sleep fault (faults.Plan.CellSleep) fires inside the guarded region,
// which is how a hung cell is simulated against the watchdog in tests.
// On timeout the cell goroutine is abandoned; it holds no shared state
// (cells are isolated by construction) and its only write lands in a
// channel nobody reads.
func guardedCell[S, R any](o Options, i int, spec S, f func(i int, spec S) (R, error)) (R, error) {
	run := func() (r R, err error) {
		// Recover here as well as in RunCells so the panic is attributed
		// to this cell's key in the manifest; RunCells' own recover
		// guards direct (un-keyed) callers.
		defer func() {
			if p := recover(); p != nil {
				err = &CellPanicError{Cell: i, Value: p, Stack: string(debug.Stack())}
			}
		}()
		if d := o.Faults.CellSleep(i); d > 0 {
			time.Sleep(d)
		}
		return f(i, spec)
	}
	if o.CellTimeout <= 0 {
		return run()
	}
	type outcome struct {
		r   R
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		r, err := run()
		done <- outcome{r, err}
	}()
	timer := time.NewTimer(o.CellTimeout)
	defer timer.Stop()
	select {
	case out := <-done:
		return out.r, out.err
	case <-timer.C:
		var zero R
		return zero, &CellTimeoutError{Cell: i, Timeout: o.CellTimeout}
	}
}

// recordCell delivers one completed cell to the observability sinks:
// its metrics snapshot to the collector (if metrics are enabled and the
// result carries one) and a structured record to the manifest (if
// attached). Cached replays pass through here too, so a resumed run
// collects exactly the snapshots a fresh run would.
func (o Options) recordCell(i int, key, digest string, cached bool, start time.Time, result interface{}, err error) {
	if o.Metrics != nil && err == nil {
		if mp, ok := result.(cellMetricsProvider); ok {
			if snap := mp.MetricsSnapshot(); snap != nil {
				o.Metrics.record(CellMetrics{
					Exp:   o.Exp,
					Cell:  i,
					Key:   key,
					Label: o.metricsLabel(key),
					Snap:  snap,
				})
			}
		}
	}
	if o.Manifest == nil {
		return
	}
	rec := runlog.CellRecord{
		Exp:    o.Exp,
		Cell:   i,
		Key:    key,
		Digest: digest,
		Cached: cached,
		WallMS: float64(time.Since(start)) / float64(time.Millisecond),
	}
	if cs, ok := result.(cellStats); ok && err == nil {
		simTime, ops := cs.CellStats()
		rec.SimNS = simTime.Nanoseconds()
		rec.Ops = ops
	}
	if err != nil {
		rec.Error = err.Error()
		// errors.As reaches through a *CellRetriedError wrapper, so a
		// cell that panicked or timed out on every attempt is still
		// marked with its underlying failure mode.
		var pe *CellPanicError
		if errors.As(err, &pe) {
			rec.Panic = true
			rec.Stack = pe.Stack
		}
		var te *CellTimeoutError
		if errors.As(err, &te) {
			rec.TimedOut = true
		}
		var ce *CellCanceledError
		if errors.As(err, &ce) {
			rec.Canceled = true
		}
		var re *CellRetriedError
		if errors.As(err, &re) {
			rec.Attempts = re.Attempts
		}
	}
	// Manifest write failures must not corrupt results; they surface
	// when the run summary is written at Close.
	_ = o.Manifest.Cell(rec)
}
