package harness

import (
	"encoding/json"
	"strings"
	"testing"

	"atomicsmodel/internal/runlog"
)

// The tests in this file pin down the observability layer's two
// determinism guarantees: collected snapshots are independent of the
// scheduler's parallelism, and a resumed run replays byte-identical
// snapshots from the cell cache.

// collectMetricsStr runs experiment id with a collector attached and
// returns the rendered result tables plus the collected cells encoded
// as JSON (the byte-exact comparison form).
func collectMetricsStr(t *testing.T, id string, o Options) (string, string) {
	t.Helper()
	o.Metrics = &MetricsCollector{}
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := RunExperiment(e, o)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(o.Metrics.Cells())
	if err != nil {
		t.Fatal(err)
	}
	return renderTables(t, tables), string(raw)
}

func TestMetricsDeterministicAcrossPar(t *testing.T) {
	o1 := quickOpts()
	o1.Par = 1
	t1, m1 := collectMetricsStr(t, "F3", o1)

	o8 := quickOpts()
	o8.Par = 8
	t8, m8 := collectMetricsStr(t, "F3", o8)

	if t1 != t8 {
		t.Fatal("result tables differ between par=1 and par=8 with metrics on")
	}
	if m1 != m8 {
		t.Fatalf("metrics snapshots differ between par=1 and par=8:\n--- par=1 ---\n%s\n--- par=8 ---\n%s", m1, m8)
	}
	if len(m1) == 0 || m1 == "null" {
		t.Fatal("no metrics collected")
	}
}

func TestMetricsDoNotPerturbResults(t *testing.T) {
	o := quickOpts()
	o.Par = 4
	e, err := ByID("F3")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunExperiment(e, o)
	if err != nil {
		t.Fatal(err)
	}
	withMetrics, _ := collectMetricsStr(t, "F3", o)
	if renderTables(t, plain) != withMetrics {
		t.Fatal("enabling metrics changed the rendered result tables")
	}
}

func TestMetricsSurviveResume(t *testing.T) {
	dir := t.TempDir()

	// Fresh run with manifest+cache+metrics.
	w, err := runlog.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, err := runlog.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := quickOpts()
	o.Par = 4
	o.Manifest, o.Cache = w, c
	freshTables, freshMetrics := collectMetricsStr(t, "F3", o)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Resumed run: every cell must replay from cache, and the replayed
	// snapshots must be byte-identical to the fresh ones.
	w2, err := runlog.Append(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := runlog.OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Loaded() == 0 {
		t.Fatal("no cells cached by the fresh metrics run")
	}
	o2 := quickOpts()
	o2.Par = 4
	o2.Manifest, o2.Cache = w2, c2
	resumedTables, resumedMetrics := collectMetricsStr(t, "F3", o2)
	cells, cached, failed := w2.Totals()
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if cached != cells || failed != 0 {
		t.Fatalf("resume totals: cells=%d cached=%d failed=%d — every cell must replay from cache", cells, cached, failed)
	}
	if resumedTables != freshTables {
		t.Fatal("resumed run rendered different tables")
	}
	if resumedMetrics != freshMetrics {
		t.Fatalf("resumed run collected different metrics:\n--- fresh ---\n%s\n--- resumed ---\n%s", freshMetrics, resumedMetrics)
	}
}

// TestMetricsKeyedSeparatelyFromPlainCache ensures a metrics-off run's
// cache is never replayed into a metrics-on run (whose cached results
// would lack snapshots) and vice versa: the cell keys differ.
func TestMetricsKeyedSeparatelyFromPlainCache(t *testing.T) {
	o := quickOpts()
	o.Exp = "F3"
	plainKey := o.cellKey("XeonE5/n=2/FAA")
	o.Metrics = &MetricsCollector{}
	metKey := o.cellKey("XeonE5/n=2/FAA")
	if plainKey == metKey {
		t.Fatalf("metrics-on and metrics-off cells share the cache key %q", plainKey)
	}
}

func TestMetricsCollectorTables(t *testing.T) {
	o := quickOpts()
	o.Par = 4
	o.Metrics = &MetricsCollector{}
	e, err := ByID("F3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunExperiment(e, o); err != nil {
		t.Fatal(err)
	}
	tables := o.Metrics.Tables()
	if len(tables) != 1 {
		t.Fatalf("got %d metrics tables, want 1 (one experiment ran)", len(tables))
	}
	out := renderTables(t, tables)
	for _, want := range []string{"metrics (F3)", "coh.transfer.remote-cache", "work.thread_ops.sum", "coh.queue_depth.mean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics table lacks %q:\n%s", want, out)
		}
	}
}
