// Package harness defines the experiment registry that regenerates
// every table and figure of the paper's evaluation, and renders results
// as aligned text tables or CSV. Each experiment is registered under a
// stable ID (T1, F1..F12, T2 — see DESIGN.md for the mapping to the
// paper's claims) and can be run standalone from cmd/atomicsim.
//
// The harness is the top of the model pipeline (ARCHITECTURE.md): it
// fans experiment parameter grids out as independent simulation cells
// on a parallel scheduler (parcell.go), with crash isolation,
// structured run manifests and byte-exact resume (internal/runlog; see
// DESIGN.md, "Run manifests and resume"), and optional per-cell
// metrics collection (internal/metrics; Options.Metrics). Adding an
// experiment is a registry entry plus a runner — ARCHITECTURE.md,
// "How do I add a new experiment", walks through it.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is one rendered result: a titled grid of string cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; it pads or truncates to the column count so a
// malformed caller cannot corrupt rendering.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line rendered under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("  note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (title and notes as
// comment lines).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("# ")
	b.WriteString(t.Title)
	b.WriteByte('\n')
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("# ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
