package harness

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/workload"
)

func init() {
	Register(&Experiment{
		ID:    "F1",
		Title: "Low-contention latency of atomic primitives by initial cache-line state",
		Claim: "latency in the low-contention setting; atomics cost like plain accesses on owned lines and pay the transfer otherwise",
		Run:   runF1,
	})
	Register(&Experiment{
		ID:    "F2",
		Title: "High-contention per-operation latency vs thread count",
		Claim: "latency in the high-contention setting grows linearly with threads (serialized line ownership)",
		Run:   runF2,
	})
}

func runF1(o Options) ([]*Table, error) {
	var tables []*Table
	for _, m := range o.machines() {
		cols := []string{"primitive"}
		var states []workload.LineState
		for _, st := range workload.AllLineStates() {
			if st == workload.StateRemoteOtherSocket && m.Sockets < 2 {
				continue
			}
			states = append(states, st)
			cols = append(cols, st.String()+" (ns)")
		}
		t := NewTable("F1 ("+m.Name+"): single-op latency by line state", cols...)
		for _, p := range atomics.All() {
			row := []string{p.String()}
			for _, st := range states {
				lat, err := workload.MeasureStateLatency(m, p, st)
				if err != nil {
					return nil, err
				}
				row = append(row, ns(lat))
			}
			t.AddRow(row...)
		}
		t.AddNote("machine: %s", m.String())
		tables = append(tables, t)
	}
	return tables, nil
}

func runF2(o Options) ([]*Table, error) {
	prims := atomics.All()
	var tables []*Table
	for _, m := range o.machines() {
		cols := []string{"threads"}
		for _, p := range prims {
			cols = append(cols, p.String()+" (ns)")
		}
		t := NewTable("F2 ("+m.Name+"): mean per-op latency under high contention", cols...)
		for _, n := range o.threadSweep(m) {
			row := []string{itoa(n)}
			for _, p := range prims {
				res, err := workload.Run(workload.Config{
					Machine: m, Threads: n, Primitive: p, Mode: workload.HighContention,
					Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed + uint64(n),
				})
				if err != nil {
					return nil, err
				}
				row = append(row, ns(res.Latency.Mean()))
			}
			t.AddRow(row...)
		}
		t.AddNote("per-attempt latency; loads are near-flat (shared copies), RMWs serialize on the line")
		tables = append(tables, t)
	}
	return tables, nil
}
