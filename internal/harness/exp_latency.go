package harness

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/workload"
)

func init() {
	Register(&Experiment{
		ID:    "F1",
		Title: "Low-contention latency of atomic primitives by initial cache-line state",
		Claim: "latency in the low-contention setting; atomics cost like plain accesses on owned lines and pay the transfer otherwise",
		Run:   runF1,
	})
	Register(&Experiment{
		ID:    "F2",
		Title: "High-contention per-operation latency vs thread count",
		Claim: "latency in the high-contention setting grows linearly with threads (serialized line ownership)",
		Run:   runF2,
	})
}

func runF1(o Options) ([]*Table, error) {
	machines := o.machines()
	statesFor := func(m *machine.Machine) []workload.LineState {
		var states []workload.LineState
		for _, st := range workload.AllLineStates() {
			if st == workload.StateRemoteOtherSocket && m.Sockets < 2 {
				continue
			}
			states = append(states, st)
		}
		return states
	}
	type spec struct {
		m  *machine.Machine
		p  atomics.Primitive
		st workload.LineState
	}
	var specs []spec
	for _, m := range machines {
		for _, p := range atomics.All() {
			for _, st := range statesFor(m) {
				specs = append(specs, spec{m, p, st})
			}
		}
	}
	lats, err := FanoutKeyed(o, specs, func(s spec) string {
		return s.m.Key() + "/" + s.p.String() + "/" + s.st.String()
	}, func(ci int, s spec) (sim.Time, error) {
		return workload.MeasureStateLatencyChecked(s.m, s.p, s.st, o.CheckOn())
	})
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range machines {
		states := statesFor(m)
		cols := []string{"primitive"}
		for _, st := range states {
			cols = append(cols, st.String()+" (ns)")
		}
		t := NewTable("F1 ("+m.Name+"): single-op latency by line state", cols...)
		for _, p := range atomics.All() {
			row := []string{p.String()}
			for range states {
				row = append(row, ns(lats[k]))
				k++
			}
			t.AddRow(row...)
		}
		t.AddNote("machine: %s", m.String())
		tables = append(tables, t)
	}
	return tables, nil
}

func runF2(o Options) ([]*Table, error) {
	prims := atomics.All()
	machines := o.machines()
	var cells []workloadCell
	for _, m := range machines {
		for _, n := range o.threadSweep(m) {
			for _, p := range prims {
				sp := o.baseSpec()
				sp.Primitive = p.String()
				sp.Threads = n
				sp.Seed = o.Seed + uint64(n)
				c, err := newWorkloadCell(m, sp)
				if err != nil {
					return nil, err
				}
				cells = append(cells, c)
			}
		}
	}
	results, err := runWorkloadCells(o, cells)
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range machines {
		cols := []string{"threads"}
		for _, p := range prims {
			cols = append(cols, p.String()+" (ns)")
		}
		t := NewTable("F2 ("+m.Name+"): mean per-op latency under high contention", cols...)
		for _, n := range o.threadSweep(m) {
			row := []string{itoa(n)}
			for range prims {
				row = append(row, ns(results[k].Latency.Mean()))
				k++
			}
			t.AddRow(row...)
		}
		t.AddNote("per-attempt latency; loads are near-flat (shared copies), RMWs serialize on the line")
		tables = append(tables, t)
	}
	return tables, nil
}
