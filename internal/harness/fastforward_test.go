package harness

import (
	"testing"

	"atomicsmodel/internal/workload"
)

// TestFastForwardDifferential is the soundness regression test for the
// steady-state cycle memoizer (internal/workload's analytic
// fast-forward): every experiment must render byte-identical tables
// with the memoizer disabled and enabled. The memoizer elides verified
// periodic cycles analytically, so the only acceptable difference is
// how many events the engine dispatches — never a reported number.
func TestFastForwardDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment twice")
	}
	if !workload.FastForwardEnabled() {
		t.Fatal("fast-forward must default to on")
	}
	ids := IDs()
	workload.SetFastForward(false)
	slow := renderAll(t, quickOpts(), ids)
	workload.SetFastForward(true)
	fast := renderAll(t, quickOpts(), ids)
	if slow != fast {
		t.Fatalf("fast-forward changed experiment output:\n--- ff off ---\n%s\n--- ff on ---\n%s", slow, fast)
	}
}

// TestShardCountInvariance proves cell results are invariant to the
// engine's event-queue shard count: the sharded heaps merge by global
// (timestamp, sequence) order, so any shard count must reproduce the
// single-heap schedule exactly. F3 covers the closed-loop contention
// sweep; F9 adds an open-loop cell shape.
func TestShardCountInvariance(t *testing.T) {
	defer workload.SetEngineShards(0)
	ids := []string{"F3", "F9"}
	var base string
	for _, shards := range []int{1, 2, 8} {
		workload.SetEngineShards(shards)
		got := renderAll(t, quickOpts(), ids)
		if shards == 1 {
			base = got
			continue
		}
		if got != base {
			t.Fatalf("shards=%d output differs from shards=1:\n--- 1 ---\n%s\n--- %d ---\n%s", shards, base, shards, got)
		}
	}
}
