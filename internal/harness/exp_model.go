package harness

import (
	"math"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/core"
	"atomicsmodel/internal/stats"
)

func init() {
	Register(&Experiment{
		ID:    "F7",
		Title: "Model validation: predicted vs simulated throughput and latency",
		Claim: "the cache-line bouncing model captures the behaviour of atomics accurately",
		Run:   runF7,
	})
	Register(&Experiment{
		ID:    "T2",
		Title: "Fitted model parameters per machine",
		Claim: "the model is very simple to use in practice: three measured constants",
		Run:   runT2,
	})
}

func runF7(o Options) ([]*Table, error) {
	prims := []atomics.Primitive{atomics.FAA, atomics.CAS, atomics.SWAP, atomics.TAS}
	machines := o.machines()
	var cells []workloadCell
	for _, m := range machines {
		for _, p := range prims {
			for _, n := range o.threadSweep(m) {
				sp := o.baseSpec()
				sp.Primitive = p.String()
				sp.Threads = n
				sp.Seed = o.Seed + uint64(n)
				c, err := newWorkloadCell(m, sp)
				if err != nil {
					return nil, err
				}
				cells = append(cells, c)
			}
		}
	}
	results, err := runWorkloadCells(o, cells)
	if err != nil {
		return nil, err
	}

	var tables []*Table
	summary := NewTable("F7 summary: mean absolute percentage error of throughput predictions",
		"machine", "primitive", "detailed MAPE", "simple MAPE")
	k := 0
	for _, m := range machines {
		det := core.NewDetailed(m)
		simp, _, err := core.Calibrate(m)
		if err != nil {
			return nil, err
		}
		t := NewTable("F7 ("+m.Name+"): model vs simulation, high contention",
			"primitive", "threads", "sim (Mops)", "detailed (Mops)", "err",
			"simple (Mops)", "err", "sim lat (ns)", "detailed lat (ns)")
		for _, p := range prims {
			var simX, detX, simpX []float64
			for _, n := range o.threadSweep(m) {
				res := results[k]
				k++
				cores, err := coresFor(m, nil, n)
				if err != nil {
					return nil, err
				}
				pd := det.PredictHigh(p, cores, 0)
				ps := simp.PredictHigh(p, cores, 0)
				simX = append(simX, res.ThroughputMops)
				detX = append(detX, pd.ThroughputMops)
				simpX = append(simpX, ps.ThroughputMops)
				t.AddRow(p.String(), itoa(n), f2(res.ThroughputMops),
					f2(pd.ThroughputMops), pct(relErr(pd.ThroughputMops, res.ThroughputMops)),
					f2(ps.ThroughputMops), pct(relErr(ps.ThroughputMops, res.ThroughputMops)),
					ns(res.Latency.Mean()), ns(pd.AttemptLatency))
			}
			summary.AddRow(m.Name, p.String(),
				pct(stats.MeanAbsPctError(detX, simX)), pct(stats.MeanAbsPctError(simpX, simX)))
		}
		tables = append(tables, t)
	}
	tables = append(tables, summary)
	return tables, nil
}

func relErr(pred, meas float64) float64 {
	if meas == 0 {
		return 0
	}
	return math.Abs(pred-meas) / meas * 100
}

func runT2(o Options) ([]*Table, error) {
	t := NewTable("T2: calibrated simple-model constants (three probe runs per machine)",
		"machine", "t_local (ns)", "t_same (ns)", "t_cross (ns)",
		"derived service s(2) FAA (ns)", "derived s(16) FAA (ns)")
	for _, m := range o.machines() {
		md, cal, err := core.Calibrate(m)
		if err != nil {
			return nil, err
		}
		c2, err := coresFor(m, nil, min(2, m.NumCores()))
		if err != nil {
			return nil, err
		}
		n16 := 16
		if n16 > m.NumCores() {
			n16 = m.NumCores()
		}
		c16, err := coresFor(m, nil, n16)
		if err != nil {
			return nil, err
		}
		t.AddRow(m.Name, ns(cal.TLocal), ns(cal.TSame), ns(cal.TCross),
			ns(md.ServiceTime(atomics.FAA, c2)), ns(md.ServiceTime(atomics.FAA, c16)))
	}
	t.AddNote("t_local: FAA on an owned line; t_same/t_cross: FAA on a line dirty in a remote cache")
	return []*Table{t}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
