package harness

import (
	"fmt"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/core"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/workload"
)

func init() {
	Register(&Experiment{
		ID:    "F11",
		Title: "Thread placement effect on contended atomics (compact vs scatter vs single-socket)",
		Claim: "the model's transfer costs are placement-dependent: cross-socket bouncing dominates on NUMA",
		Run:   runF11,
	})
	Register(&Experiment{
		ID:    "T1",
		Title: "Evaluated machine configurations",
		Claim: "the two state-of-the-art architectures under study",
		Run:   runT1,
	})
}

func runF11(o Options) ([]*Table, error) {
	placements := []machine.Placement{
		machine.Compact{}, machine.Scatter{}, machine.SingleSocket{Socket: 0}, machine.SMTFirst{},
	}
	sweep := []int{2, 4, 8, 16}
	if o.Quick {
		sweep = []int{2, 8}
	}
	var eligible []*machine.Machine
	for _, m := range o.machines() {
		if m.Sockets < 2 && m.ThreadsPerCore < 2 {
			continue // placement is immaterial
		}
		eligible = append(eligible, m)
	}
	// Only placements that can place n threads become cells; the others
	// render as "-". Place is pure, so the assembly loop below makes the
	// same skip decisions in the same order.
	type spec struct {
		m *machine.Machine
		n int
		p machine.Placement
	}
	var specs []spec
	for _, m := range eligible {
		for _, n := range sweep {
			for _, p := range placements {
				if _, err := p.Place(m, n); err == nil {
					specs = append(specs, spec{m, n, p})
				}
			}
		}
	}
	results, err := FanoutKeyed(o, specs, func(s spec) string {
		return fmt.Sprintf("%s/n=%d/%s", s.m.Key(), s.n, s.p.Name())
	}, func(ci int, s spec) (*workload.Result, error) {
		return workload.Run(workload.Config{
			Machine: s.m, Threads: s.n, Primitive: atomics.FAA,
			Mode: workload.HighContention, Placement: s.p,
			Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed + uint64(s.n),
			Metrics: o.MetricsOn(), Check: o.CheckOn(), Faults: o.CellFaults(ci),
		})
	})
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range eligible {
		md := core.NewDetailed(m)
		cols := []string{"threads"}
		for _, p := range placements {
			cols = append(cols, p.Name()+" (Mops)", p.Name()+" model")
		}
		t := NewTable("F11 ("+m.Name+"): FAA throughput by placement, high contention", cols...)
		for _, n := range sweep {
			row := []string{itoa(n)}
			for _, p := range placements {
				slots, err := p.Place(m, n)
				if err != nil {
					row = append(row, "-", "-")
					continue
				}
				res := results[k]
				k++
				cores := make([]int, n)
				for i, s := range slots {
					cores[i] = m.CoreOf(s)
				}
				pred := md.PredictHigh(atomics.FAA, cores, 0)
				row = append(row, f2(res.ThroughputMops), f2(pred.ThroughputMops))
			}
			t.AddRow(row...)
		}
		t.AddNote("scatter forces cross-socket transfers on every handoff; smt-first shares L1s")
		tables = append(tables, t)
	}
	return tables, nil
}

func runT1(o Options) ([]*Table, error) {
	t := NewTable("T1: machine configurations",
		"machine", "sockets x cores x SMT", "freq (GHz)", "topology",
		"L1 (ns)", "LLC (ns)", "DRAM (ns)", "FAA exec (ns)", "cross-socket pen. (ns)")
	for _, m := range o.machines() {
		t.AddRow(m.Name,
			itoa(m.Sockets)+"x"+itoa(m.CoresPerSocket)+"x"+itoa(m.ThreadsPerCore),
			f1(m.FreqGHz), m.Topo.Name(),
			ns(m.Lat.L1Hit), ns(m.Lat.LLCHit), ns(m.Lat.DRAM),
			ns(m.Lat.ExecFAA), ns(m.Lat.CrossSocketPenalty))
	}
	t.AddNote("latency constants calibrated to publicly reported figures for these parts (see DESIGN.md)")
	return []*Table{t}, nil
}
