package harness

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/core"
	"atomicsmodel/internal/machine"
)

func init() {
	Register(&Experiment{
		ID:    "F17",
		Title: "Socket-count extrapolation: contended FAA on 1, 2 and 4 Xeon-class sockets",
		Claim: "the calibrated model extrapolates beyond the measured machines: more sockets mean more cross-socket handoffs, not more throughput",
		Run:   runF17,
	})
}

func runF17(o Options) ([]*Table, error) {
	socketCounts := []int{1, 2, 4}
	threadRows := []int{8, 16, 32, 64}
	if o.Quick {
		threadRows = []int{8, 32}
	}
	cols := []string{"threads"}
	for _, s := range socketCounts {
		cols = append(cols, itoa(s)+"S sim (Mops)", itoa(s)+"S model", itoa(s)+"S xsock")
	}
	// Scatter placement spreads contenders across every socket: the
	// worst case the extrapolation warns about. The machine key inside
	// each cell key distinguishes the socket counts (Xeon1S/2S/4S build
	// from distinct specs).
	var cells []workloadCell
	for _, n := range threadRows {
		for _, s := range socketCounts {
			m := machine.XeonMultiSocket(s)
			if n > m.NumHWThreads() {
				continue
			}
			sp := o.baseSpec()
			sp.Primitive = atomics.FAA.String()
			sp.Placement = "scatter"
			sp.Threads = n
			sp.Seed = o.Seed + uint64(n)
			c, err := newWorkloadCell(m, sp)
			if err != nil {
				return nil, err
			}
			cells = append(cells, c)
		}
	}
	results, err := runWorkloadCells(o, cells)
	if err != nil {
		return nil, err
	}

	t := NewTable("F17: FAA high contention, scatter placement across socket counts", cols...)
	k := 0
	for _, n := range threadRows {
		row := []string{itoa(n)}
		for _, s := range socketCounts {
			m := machine.XeonMultiSocket(s)
			if n > m.NumHWThreads() {
				row = append(row, "-", "-", "-")
				continue
			}
			res := results[k]
			k++
			slots, err := (machine.Scatter{}).Place(m, n)
			if err != nil {
				return nil, err
			}
			cores := make([]int, n)
			for i, sl := range slots {
				cores[i] = m.CoreOf(sl)
			}
			pred := core.NewDetailed(m).PredictHigh(atomics.FAA, cores, 0)
			xsock := 0.0
			if res.Ops > 0 {
				xsock = float64(res.Coh.CrossSocket) / float64(res.Ops)
			}
			row = append(row, f2(res.ThroughputMops), f2(pred.ThroughputMops), f2(xsock))
		}
		t.AddRow(row...)
	}
	t.AddNote("same per-socket silicon; only the socket count changes. xsock = cross-socket transfers per op")
	return []*Table{t}, nil
}
