package harness

import (
	"strings"
	"testing"

	"atomicsmodel/internal/machine"
)

func quickOpts() Options {
	return Options{Machines: []*machine.Machine{machine.XeonE5()}, Quick: true, Seed: 1}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "a", "longer-column")
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	tb.AddNote("a note with %d", 42)
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "longer-column", "333", "note: a note with 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header and rows align: all data lines equal length.
	if len(lines) < 5 {
		t.Fatalf("unexpected line count %d", len(lines))
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("t", "a", "b", "c")
	tb.AddRow("1")                // short: padded
	tb.AddRow("1", "2", "3", "4") // long: truncated
	if len(tb.Rows[0]) != 3 || len(tb.Rows[1]) != 3 {
		t.Fatal("rows not normalized to column count")
	}
	if tb.Rows[1][2] != "3" {
		t.Fatal("truncation kept wrong cells")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("csv demo", "x", "y")
	tb.AddRow(`va"l`, "with,comma")
	tb.AddNote("footer")
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# csv demo") {
		t.Error("missing title comment")
	}
	if !strings.Contains(out, `"va""l"`) {
		t.Errorf("quote escaping wrong: %s", out)
	}
	if !strings.Contains(out, `"with,comma"`) {
		t.Errorf("comma quoting wrong: %s", out)
	}
	if !strings.Contains(out, "# footer") {
		t.Error("missing note comment")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"T1", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10", "F11", "F12", "F13", "F14", "F15", "F16", "F17", "F18", "F19", "F20", "F21", "F22", "T2", "T3"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registered %v, want %v", ids, want)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("order: got %v, want %v", ids, want)
		}
	}
	for _, e := range All() {
		if e.Title == "" || e.Claim == "" {
			t.Errorf("%s: missing title or claim", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("F3")
	if err != nil || e.ID != "F3" {
		t.Fatalf("ByID(F3) = %v, %v", e, err)
	}
	if _, err := ByID("F99"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

// TestEveryExperimentRunsQuick executes every registered experiment in
// quick mode on the Xeon machine and sanity-checks the output tables.
// This is the integration test for the whole stack.
func TestEveryExperimentRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(quickOpts())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", e.ID, tb.Title)
				}
				if len(tb.Columns) < 2 {
					t.Errorf("%s: table %q has too few columns", e.ID, tb.Title)
				}
				var sb strings.Builder
				if err := tb.Render(&sb); err != nil {
					t.Errorf("%s: render: %v", e.ID, err)
				}
			}
		})
	}
}

func TestExperimentsRunOnKNL(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds")
	}
	opts := Options{Machines: []*machine.Machine{machine.KNL()}, Quick: true, Seed: 2}
	for _, id := range []string{"F1", "F3", "F7"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := e.Run(opts)
		if err != nil {
			t.Fatalf("%s on KNL: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s on KNL produced no tables", id)
		}
	}
}

func TestOptionsSweeps(t *testing.T) {
	o := Options{}
	x := machine.XeonE5()
	full := o.threadSweep(x)
	if full[len(full)-1] != 72 {
		t.Errorf("full Xeon sweep should reach 72 HW threads: %v", full)
	}
	oq := Options{Quick: true}
	q := oq.threadSweep(x)
	if len(q) >= len(full) {
		t.Error("quick sweep should be shorter")
	}
	small := machine.Ideal(4)
	for _, n := range oq.threadSweep(small) {
		if n > 4 {
			t.Errorf("sweep exceeds machine capacity: %d", n)
		}
	}
	if o.duration() <= oq.duration() {
		t.Error("full duration should exceed quick")
	}
}

func TestRegisterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty experiment accepted")
		}
	}()
	Register(&Experiment{})
}
