package harness

import (
	"strings"
	"testing"

	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/runlog"
	"atomicsmodel/internal/workload"
)

// TestWorkloadSpecDistinctCacheNamespace is the acceptance test for
// digest-based workload cell keys (the analog of the machine-spec
// namespace test): two specs that differ in any effective knob must
// land in distinct resume-cache namespaces. A crashed run on one spec,
// resumed with a same-named but differently parameterized spec, must
// recompute every cell — and a second resume with either original must
// replay all of them.
func TestWorkloadSpecDistinctCacheNamespace(t *testing.T) {
	dir := t.TempDir()
	m := machine.Ideal(8)

	base := &workload.Spec{
		Name: "probe", Primitive: "FAA", ThreadLadder: []int{1, 2, 4},
	}
	tweaked := base.Clone()
	tweaked.LocalWorkPS = 100000 // same name, different content

	db, err := base.Digest()
	if err != nil {
		t.Fatal(err)
	}
	dt, err := tweaked.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if db == dt {
		t.Fatalf("tweaked spec shares digest %s with the original", db)
	}

	run := func(s *workload.Spec, resume bool) (cells, cached int) {
		open := runlog.Create
		if resume {
			open = runlog.Append
		}
		w, err := open(dir)
		if err != nil {
			t.Fatal(err)
		}
		c, err := runlog.OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		o := Options{Machines: []*machine.Machine{m}, Quick: true, Seed: 42, Par: 4}
		o.Manifest, o.Cache = w, c
		if _, err := RunExperiment(WorkloadExperiment([]*workload.Spec{s}), o); err != nil {
			t.Fatal(err)
		}
		cells, cached, failed := w.Totals()
		if failed != 0 {
			t.Fatalf("%d failed cells", failed)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return cells, cached
	}

	cells, cached := run(base, false)
	if cells == 0 || cached != 0 {
		t.Fatalf("seed run: cells=%d cached=%d", cells, cached)
	}
	// Same-named tweaked spec: zero cache hits allowed.
	if _, cached := run(tweaked, true); cached != 0 {
		t.Fatalf("tweaked spec replayed %d cells of the original from cache", cached)
	}
	// The original again: every cell replays.
	if cells2, cached := run(base, true); cached != cells2 || cells2 != cells {
		t.Fatalf("original resume: cells=%d cached=%d, want all %d cached", cells2, cached, cells)
	}
	// And the tweaked spec again: its own cells replay too.
	if cells3, cached := run(tweaked, true); cached != cells3 {
		t.Fatalf("tweaked resume: cells=%d cached=%d, want all cached", cells3, cached)
	}
}

// TestWorkloadCellKeyCarriesDigest pins the key shape the runners rely
// on: machine key, the "/wl@" marker, then the spec's content digest.
func TestWorkloadCellKeyCarriesDigest(t *testing.T) {
	m := machine.Ideal(8)
	sp := workload.Spec{Primitive: "FAA", Threads: 4, Seed: 7}
	c, err := newWorkloadCell(m, sp)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sp.Digest()
	if err != nil {
		t.Fatal(err)
	}
	want := m.Key() + "/wl@" + d
	if c.key != want {
		t.Fatalf("cell key = %q, want %q", c.key, want)
	}
	if !strings.Contains(c.key, "/wl@") {
		t.Fatalf("cell key %q lacks the workload digest marker", c.key)
	}
}
