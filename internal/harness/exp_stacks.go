package harness

import (
	"fmt"

	"atomicsmodel/internal/apps"
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

func init() {
	Register(&Experiment{
		ID:    "F18",
		Title: "Design decision: Treiber stack vs elimination-backoff stack vs MS queue",
		Claim: "the model's remedy for a contended top pointer: route colliding pairs around the hot line entirely",
		Run:   runF18,
	})
}

func runF18(o Options) ([]*Table, error) {
	sweep := []int{4, 8, 16, 32}
	if o.Quick {
		sweep = []int{8, 16}
	}
	machines := o.machines()
	// Four cells per row: treiber, elim-4, elim-16, ms-queue. The
	// elimination cells also carry the stack's elimination count.
	// Fields are exported so the cell survives the manifest cache's JSON
	// round trip.
	variants := []string{"treiber", "elim-4", "elim-16", "ms-queue"}
	type cell struct {
		Res   *apps.RunResult
		Elims uint64
	}
	type spec struct {
		m       *machine.Machine
		n       int
		variant int
	}
	var specs []spec
	for _, m := range machines {
		for _, n := range sweep {
			if n > m.NumHWThreads() {
				continue
			}
			for v := 0; v < 4; v++ {
				specs = append(specs, spec{m, n, v})
			}
		}
	}
	results, err := FanoutKeyed(o, specs, func(s spec) string {
		return fmt.Sprintf("%s/n=%d/%s", s.m.Key(), s.n, variants[s.variant])
	}, func(ci int, s spec) (cell, error) {
		var st *apps.EliminationStack
		build := func(e *sim.Engine, mem *atomics.Memory) apps.App {
			switch s.variant {
			case 0:
				return apps.NewTreiberStack(mem, 256)
			case 1:
				st = apps.NewEliminationStack(e, mem, 256, 4, 200*sim.Nanosecond)
				return st
			case 2:
				st = apps.NewEliminationStack(e, mem, 256, 16, 200*sim.Nanosecond)
				return st
			default:
				return apps.NewMSQueue(mem, 256)
			}
		}
		res, err := apps.Run(apps.RunConfig{
			Machine: s.m, Threads: s.n, Build: build,
			Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed + uint64(s.n),
			Metrics: o.MetricsOn(), Check: o.CheckOn(), Faults: o.CellFaults(ci),
		})
		if err != nil {
			return cell{}, err
		}
		c := cell{Res: res}
		if st != nil {
			c.Elims = st.Eliminations()
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range machines {
		t := NewTable("F18 ("+m.Name+"): concurrent stack/queue ops (50/50 push-pop mix)",
			"threads", "treiber (Mops)", "elim-4slot (Mops)", "elim-16slot (Mops)",
			"elim rate (16)", "ms-queue (Mops)")
		for _, n := range sweep {
			if n > m.NumHWThreads() {
				continue
			}
			treiber, e4, e16, queue := results[k], results[k+1], results[k+2], results[k+3]
			k += 4
			elimRate := 0.0
			if e16.Res.TotalOps > 0 {
				elimRate = float64(e16.Elims) / float64(e16.Res.TotalOps)
			}
			t.AddRow(itoa(n), f2(treiber.Res.ThroughputMops), f2(e4.Res.ThroughputMops),
				f2(e16.Res.ThroughputMops), f3(elimRate), f2(queue.Res.ThroughputMops))
		}
		t.AddNote("elim rate = fraction of ops completed in the collision array instead of on the top pointer")
		tables = append(tables, t)
	}
	return tables, nil
}
