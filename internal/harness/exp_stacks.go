package harness

import (
	"atomicsmodel/internal/apps"
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/sim"
)

func init() {
	Register(&Experiment{
		ID:    "F18",
		Title: "Design decision: Treiber stack vs elimination-backoff stack vs MS queue",
		Claim: "the model's remedy for a contended top pointer: route colliding pairs around the hot line entirely",
		Run:   runF18,
	})
}

func runF18(o Options) ([]*Table, error) {
	var tables []*Table
	for _, m := range o.machines() {
		t := NewTable("F18 ("+m.Name+"): concurrent stack/queue ops (50/50 push-pop mix)",
			"threads", "treiber (Mops)", "elim-4slot (Mops)", "elim-16slot (Mops)",
			"elim rate (16)", "ms-queue (Mops)")
		sweep := []int{4, 8, 16, 32}
		if o.Quick {
			sweep = []int{8, 16}
		}
		for _, n := range sweep {
			if n > m.NumHWThreads() {
				continue
			}
			treiber, err := apps.Run(apps.RunConfig{
				Machine: m, Threads: n,
				Build: func(e *sim.Engine, mem *atomics.Memory) apps.App {
					return apps.NewTreiberStack(mem, 256)
				},
				Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed + uint64(n),
			})
			if err != nil {
				return nil, err
			}
			elim := func(slots int) (*apps.RunResult, *apps.EliminationStack, error) {
				var st *apps.EliminationStack
				res, err := apps.Run(apps.RunConfig{
					Machine: m, Threads: n,
					Build: func(e *sim.Engine, mem *atomics.Memory) apps.App {
						st = apps.NewEliminationStack(e, mem, 256, slots, 200*sim.Nanosecond)
						return st
					},
					Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed + uint64(n),
				})
				return res, st, err
			}
			e4, _, err := elim(4)
			if err != nil {
				return nil, err
			}
			e16, st16, err := elim(16)
			if err != nil {
				return nil, err
			}
			queue, err := apps.Run(apps.RunConfig{
				Machine: m, Threads: n,
				Build: func(e *sim.Engine, mem *atomics.Memory) apps.App {
					return apps.NewMSQueue(mem, 256)
				},
				Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed + uint64(n),
			})
			if err != nil {
				return nil, err
			}
			elimRate := 0.0
			if e16.TotalOps > 0 {
				elimRate = float64(st16.Eliminations()) / float64(e16.TotalOps)
			}
			t.AddRow(itoa(n), f2(treiber.ThroughputMops), f2(e4.ThroughputMops),
				f2(e16.ThroughputMops), f3(elimRate), f2(queue.ThroughputMops))
		}
		t.AddNote("elim rate = fraction of ops completed in the collision array instead of on the top pointer")
		tables = append(tables, t)
	}
	return tables, nil
}
