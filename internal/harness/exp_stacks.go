package harness

func init() {
	Register(&Experiment{
		ID:    "F18",
		Title: "Design decision: Treiber stack vs elimination-backoff stack vs MS queue",
		Claim: "the model's remedy for a contended top pointer: route colliding pairs around the hot line entirely",
		Run:   runF18,
	})
}

func runF18(o Options) ([]*Table, error) {
	sweep := []int{4, 8, 16, 32}
	if o.Quick {
		sweep = []int{8, 16}
	}
	machines := o.machines()
	// Four cells per row: treiber, elim-4, elim-16, ms-queue. The
	// elimination counts ride in the RunResult, so the cells survive the
	// manifest cache's JSON round trip without a wrapper.
	variants := []struct {
		structure string
		slots     int
	}{
		{"treiber-stack", 0},
		{"elimination-stack", 4},
		{"elimination-stack", 16},
		{"ms-queue", 0},
	}
	var cells []appCell
	for _, m := range machines {
		for _, n := range sweep {
			if n > m.NumHWThreads() {
				continue
			}
			for _, v := range variants {
				sp := o.baseAppSpec()
				sp.Structure = v.structure
				sp.Threads = n
				sp.Depth = 256
				sp.Slots = v.slots
				sp.Seed = o.Seed + uint64(n)
				c, err := newAppCell(m, sp)
				if err != nil {
					return nil, err
				}
				cells = append(cells, c)
			}
		}
	}
	results, err := runAppCells(o, cells)
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range machines {
		t := NewTable("F18 ("+m.Name+"): concurrent stack/queue ops (50/50 push-pop mix)",
			"threads", "treiber (Mops)", "elim-4slot (Mops)", "elim-16slot (Mops)",
			"elim rate (16)", "ms-queue (Mops)")
		for _, n := range sweep {
			if n > m.NumHWThreads() {
				continue
			}
			treiber, e4, e16, queue := results[k], results[k+1], results[k+2], results[k+3]
			k += 4
			elimRate := 0.0
			if e16.TotalOps > 0 {
				elimRate = float64(e16.Eliminations) / float64(e16.TotalOps)
			}
			t.AddRow(itoa(n), f2(treiber.ThroughputMops), f2(e4.ThroughputMops),
				f2(e16.ThroughputMops), f3(elimRate), f2(queue.ThroughputMops))
		}
		t.AddNote("elim rate = fraction of ops completed in the collision array instead of on the top pointer")
		tables = append(tables, t)
	}
	return tables, nil
}
