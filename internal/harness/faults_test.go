package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/faults"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/runlog"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/workload"
)

// The tests in this file cover the fault-injection path end to end:
// watchdog deadlines, bounded retries, injected simulation panics, and
// the interaction of all of it with the manifest and resume cache.

func TestWatchdogTimesOutHungCell(t *testing.T) {
	o := quickOpts()
	o.Par = 4
	o.CellTimeout = 50 * time.Millisecond
	o.Faults = &faults.Plan{Seed: 1, SleepCell: 1, SleepFor: 5 * time.Second}
	_, err := Fanout(o, make([]int, 4), func(i, _ int) (int, error) { return i, nil })
	if err == nil {
		t.Fatal("hung cell not timed out")
	}
	var te *CellTimeoutError
	if !errors.As(err, &te) || te.Cell != 1 || te.Timeout != o.CellTimeout {
		t.Fatalf("got %v (%T), want CellTimeoutError for cell 1", err, err)
	}
	if want := "cell 1 exceeded its 50ms watchdog deadline"; err.Error() != want {
		t.Fatalf("message %q, want %q", err.Error(), want)
	}
}

func TestWatchdogLeavesFastCellsAlone(t *testing.T) {
	o := quickOpts()
	o.CellTimeout = 10 * time.Second
	res, err := Fanout(o, make([]int, 8), func(i, _ int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if res[7] != 49 {
		t.Fatalf("results corrupted under watchdog: %v", res)
	}
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	o := quickOpts()
	o.Par = 1
	o.CellRetries = 2
	var attempts atomic.Int64
	res, err := Fanout(o, make([]int, 3), func(i, _ int) (int, error) {
		if i == 1 && attempts.Add(1) == 1 {
			return 0, errors.New("transient")
		}
		return i, nil
	})
	if err != nil {
		t.Fatalf("transient failure not retried away: %v", err)
	}
	if res[1] != 1 || attempts.Load() != 2 {
		t.Fatalf("res=%v attempts=%d, want a second attempt to succeed", res, attempts.Load())
	}
}

func TestRetriesExhaustedReportAttempts(t *testing.T) {
	o := quickOpts()
	o.Par = 1
	o.CellRetries = 2
	_, err := Fanout(o, make([]int, 2), func(i, _ int) (int, error) {
		if i == 1 {
			panic("persistent fault")
		}
		return i, nil
	})
	var re *CellRetriedError
	if !errors.As(err, &re) || re.Cell != 1 || re.Attempts != 3 {
		t.Fatalf("got %v (%T), want CellRetriedError with 3 attempts", err, err)
	}
	// The wrapper must not hide the underlying failure mode.
	var pe *CellPanicError
	if !errors.As(err, &pe) || pe.Stack == "" {
		t.Fatalf("underlying panic unreachable through the retry wrapper: %v", err)
	}
	if want := "cell 1 failed all 3 attempts, last: cell 1 panicked: persistent fault"; err.Error() != want {
		t.Fatalf("message %q, want %q", err.Error(), want)
	}
}

func TestZeroRetriesPreserveSingleAttemptErrors(t *testing.T) {
	o := quickOpts()
	o.Par = 1
	boom := errors.New("one-shot failure")
	_, err := Fanout(o, make([]int, 2), func(i, _ int) (int, error) {
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the original error", err)
	}
	var re *CellRetriedError
	if errors.As(err, &re) {
		t.Fatalf("single-attempt error wrapped in CellRetriedError: %v", err)
	}
}

// faultableExperiment builds an (unregistered) experiment of four real
// workload cells, wired to the options' fault and check plumbing the
// same way the registered experiments are.
func faultableExperiment() *Experiment {
	return &Experiment{
		ID:    "FY",
		Title: "fault-injection fixture",
		Claim: "test",
		Run: func(o Options) ([]*Table, error) {
			specs := []int{1, 2, 3, 4}
			res, err := FanoutKeyed(o, specs, func(s int) string {
				return fmt.Sprintf("threads=%d", s)
			}, func(ci int, s int) (*workload.Result, error) {
				return workload.Run(workload.Config{
					Machine:   machine.Ideal(8),
					Threads:   s,
					Primitive: atomics.FAA,
					Warmup:    2 * sim.Microsecond,
					Duration:  20 * sim.Microsecond,
					Seed:      o.Seed,
					Check:     o.CheckOn(),
					Faults:    o.CellFaults(ci),
				})
			})
			if err != nil {
				return nil, err
			}
			tb := NewTable("FY", "threads", "mops")
			for i, r := range res {
				tb.AddRow(itoa(specs[i]), f2(r.ThroughputMops))
			}
			return []*Table{tb}, nil
		},
	}
}

// manifestCells parses a manifest.jsonl into its cell records, dropping
// the wall-clock and stack fields that legitimately vary run to run.
func manifestCells(t *testing.T, dir string) map[string]runlog.CellRecord {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, "manifest.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	cells := make(map[string]runlog.CellRecord)
	for _, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
		var c runlog.CellRecord
		if err := json.Unmarshal([]byte(line), &c); err != nil || c.Type != "cell" {
			continue
		}
		if c.Panic && c.Stack == "" {
			t.Fatalf("panic record for %q lost its stack", c.Key)
		}
		c.WallMS, c.Stack = 0, ""
		cells[c.Key] = c
	}
	return cells
}

// TestInjectedPanicDeterministicAcrossPar is the acceptance test for
// simulation-layer panic injection: the same fault plan produces the
// same error and the same manifest records at par 1 and par 8, and a
// resumed run replays the healthy cells from cache while the faulted
// cell fails identically again.
func TestInjectedPanicDeterministicAcrossPar(t *testing.T) {
	plan := &faults.Plan{Seed: 1, PanicAtEvent: 100, PanicCell: 2}
	type outcome struct {
		errMsg string
		cells  map[string]runlog.CellRecord
		dir    string
	}
	run := func(par int) outcome {
		dir := t.TempDir()
		w, err := runlog.Create(dir)
		if err != nil {
			t.Fatal(err)
		}
		c, err := runlog.OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		o := quickOpts()
		o.Par = par
		o.Faults = plan
		o.Manifest, o.Cache = w, c
		_, rerr := RunExperiment(faultableExperiment(), o)
		if rerr == nil {
			t.Fatalf("par=%d: injected panic did not fail the experiment", par)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return outcome{rerr.Error(), manifestCells(t, dir), dir}
	}

	serial, parallel := run(1), run(8)
	want := "cell 2 panicked: faults: injected panic at event 100 (cell 2)"
	if serial.errMsg != want {
		t.Fatalf("error %q, want %q", serial.errMsg, want)
	}
	if parallel.errMsg != serial.errMsg {
		t.Fatalf("par=1 and par=8 errors differ:\n%s\n%s", serial.errMsg, parallel.errMsg)
	}
	// Serial runs stop at the first failure; the parallel manifest must
	// agree on every record both schedules produced — same keys, same
	// digests, same panic attribution.
	for key, sc := range serial.cells {
		pc, ok := parallel.cells[key]
		if !ok {
			t.Fatalf("par=8 manifest lacks cell %q", key)
		}
		if sc != pc {
			t.Fatalf("cell %q differs across par:\npar=1: %+v\npar=8: %+v", key, sc, pc)
		}
	}
	faulted, ok := serial.cells["FY|seed=1|quick=true|faults="+plan.Signature()+"|threads=3"]
	if !ok || !faulted.Panic || faulted.Error == "" {
		t.Fatalf("manifest record for the faulted cell wrong: %+v (present=%v)", faulted, ok)
	}

	// Resume the serial run under the same plan: the cells that finished
	// before the panic (0 and 1) replay from cache, the faulted cell
	// re-runs and fails with the same message.
	w2, err := runlog.Append(serial.dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := runlog.OpenCache(serial.dir)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Loaded() != 2 {
		t.Fatalf("cache holds %d cells, want the 2 completed before the panic", c2.Loaded())
	}
	o := quickOpts()
	o.Par = 1
	o.Faults = plan
	o.Manifest, o.Cache = w2, c2
	_, rerr := RunExperiment(faultableExperiment(), o)
	if rerr == nil || rerr.Error() != serial.errMsg {
		t.Fatalf("resumed failure differs: %v, want %q", rerr, serial.errMsg)
	}
	_, cached, _ := w2.Totals()
	if cached != 2 {
		t.Fatalf("resume replayed %d cells from cache, want 2", cached)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultedCacheDoesNotPoisonCleanRuns pins the cache-key namespacing:
// results computed under a fault plan (or with checking on) must never
// replay into a clean run sharing the same run directory.
func TestFaultedCacheDoesNotPoisonCleanRuns(t *testing.T) {
	dir := t.TempDir()
	runWith := func(mutate func(*Options)) string {
		w, err := runlog.Append(dir)
		if err != nil {
			t.Fatal(err)
		}
		c, err := runlog.OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		o := quickOpts()
		o.Par = 4
		o.Manifest, o.Cache = w, c
		mutate(&o)
		tables, err := RunExperiment(faultableExperiment(), o)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return renderTables(t, tables)
	}

	jittered := runWith(func(o *Options) {
		o.Faults = &faults.Plan{Seed: 9, LatencyJitterPct: 25}
	})
	clean := runWith(func(o *Options) {})
	checked := runWith(func(o *Options) { o.Check = true })

	freshClean, err := RunExperiment(faultableExperiment(), func() Options {
		o := quickOpts()
		o.Par = 4
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}
	want := renderTables(t, freshClean)
	if clean != want {
		t.Fatal("clean run replayed fault-contaminated cache entries")
	}
	if checked != want {
		t.Fatal("checked run diverged from the clean tables")
	}
	if jittered == want {
		t.Fatal("25% jitter left the tables untouched — fault injection inert")
	}
}
