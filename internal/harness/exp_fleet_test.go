package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/runlog"
	"atomicsmodel/internal/workload"
)

// fleetGoldenMachines is the full registry, spelled out so a test that
// registers an extra machine elsewhere cannot perturb the golden.
var fleetGoldenMachines = []string{"EPYC", "Grace", "KNL", "XeonE5", "XeonSP"}

// renderFleet runs the fleet sweep over the pinned single-cell spec in
// testdata/fleet_cell.json and renders it exactly the way atomicsim
// prints an experiment (header, then each table followed by a blank
// line) so the golden can be regenerated with the CLI.
func renderFleet(t *testing.T, o Options) string {
	t.Helper()
	sp, err := workload.LoadSpecFile(filepath.Join("testdata", "fleet_cell.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range fleetGoldenMachines {
		m, err := machine.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		o.Machines = append(o.Machines, m)
	}
	e := FleetExperiment([]*workload.Spec{sp}, 0.9)
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s\n   claim: %s\n\n", e.ID, e.Title, e.Claim)
	tables, err := RunExperiment(e, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		if err := tb.Render(&sb); err != nil {
			t.Fatal(err)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestFleetQuickGolden pins the bottleneck report for one quick cell
// per registered machine byte-for-byte. To regenerate after an
// intentional change:
//
//	go run ./cmd/atomicsim -quick -quiet -fleet \
//	    -machines EPYC,Grace,KNL,XeonE5,XeonSP \
//	    -workloadfile internal/harness/testdata/fleet_cell.json \
//	    > internal/harness/testdata/fleet_quick.golden
func TestFleetQuickGolden(t *testing.T) {
	got := renderFleet(t, Options{Quick: true, Seed: 42, Par: 8})
	want, err := os.ReadFile(filepath.Join("testdata", "fleet_quick.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("fleet quick report differs from golden (len %d vs %d); "+
			"first divergence at byte %d:\n...%s...",
			len(got), len(want), diverge(got, string(want)),
			around(got, diverge(got, string(want))))
	}
}

// TestFleetParInvariance: the rollup (like every harness table) must
// not depend on cell scheduling.
func TestFleetParInvariance(t *testing.T) {
	seq := renderFleet(t, Options{Quick: true, Seed: 42, Par: 1})
	par := renderFleet(t, Options{Quick: true, Seed: 42, Par: 8})
	if seq != par {
		t.Fatalf("fleet report differs between -par 1 and -par 8; "+
			"first divergence at byte %d:\n...%s...",
			diverge(seq, par), around(seq, diverge(seq, par)))
	}
}

// TestFleetResumeInvariance: a resumed fleet sweep replays every cell
// from the digest-keyed cache — metrics snapshots included, since the
// bottleneck rollup is recomputed from them — and renders the same
// bytes as the fresh run.
func TestFleetResumeInvariance(t *testing.T) {
	dir := t.TempDir()
	run := func(resume bool) (out string, cells, cached int) {
		open := runlog.Create
		if resume {
			open = runlog.Append
		}
		w, err := open(dir)
		if err != nil {
			t.Fatal(err)
		}
		c, err := runlog.OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		o := Options{Quick: true, Seed: 42, Par: 4, Manifest: w, Cache: c}
		out = renderFleet(t, o)
		cells, cached, failed := w.Totals()
		if failed != 0 {
			t.Fatalf("%d failed cells", failed)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return out, cells, cached
	}
	fresh, cells, cached := run(false)
	if cells != len(fleetGoldenMachines) || cached != 0 {
		t.Fatalf("fresh run: cells=%d cached=%d, want %d fresh cells",
			cells, cached, len(fleetGoldenMachines))
	}
	resumed, cells2, cached2 := run(true)
	if cells2 != cells || cached2 != cells {
		t.Fatalf("resume: cells=%d cached=%d, want all %d cached", cells2, cached2, cells)
	}
	if fresh != resumed {
		t.Fatalf("resumed fleet report differs from fresh run; "+
			"first divergence at byte %d:\n...%s...",
			diverge(fresh, resumed), around(fresh, diverge(fresh, resumed)))
	}
}
