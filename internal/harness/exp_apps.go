package harness

import (
	"fmt"

	"atomicsmodel/internal/apps"
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/core"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

func init() {
	Register(&Experiment{
		ID:    "F9",
		Title: "Design decision: FAA counter vs CAS-loop counter",
		Claim: "the model facilitates algorithmic design decisions: it predicts the FAA/CAS throughput gap",
		Run:   runF9,
	})
	Register(&Experiment{
		ID:    "F10",
		Title: "Design decision: TAS vs TTAS vs backoff vs ticket spinlocks",
		Claim: "lock design choices follow from how each primitive bounces the lock line",
		Run:   runF10,
	})
}

func runF9(o Options) ([]*Table, error) {
	machines := o.machines()
	// Two cells per row: the FAA counter and the CAS-loop counter.
	type spec struct {
		m   *machine.Machine
		n   int
		cas bool
	}
	var specs []spec
	for _, m := range machines {
		for _, n := range o.threadSweep(m) {
			specs = append(specs, spec{m, n, false}, spec{m, n, true})
		}
	}
	results, err := FanoutKeyed(o, specs, func(s spec) string {
		kind := "faa"
		if s.cas {
			kind = "cas"
		}
		return fmt.Sprintf("%s/n=%d/%s", s.m.Key(), s.n, kind)
	}, func(ci int, s spec) (*apps.RunResult, error) {
		build := func(e *sim.Engine, mem *atomics.Memory) apps.App { return apps.NewFAACounter(mem) }
		if s.cas {
			build = func(e *sim.Engine, mem *atomics.Memory) apps.App { return apps.NewCASCounter(mem) }
		}
		return apps.Run(apps.RunConfig{
			Machine: s.m, Threads: s.n, Build: build,
			Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed + uint64(s.n),
			Metrics: o.MetricsOn(), Check: o.CheckOn(), Faults: o.CellFaults(ci),
		})
	})
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range machines {
		md := core.NewDetailed(m)
		t := NewTable("F9 ("+m.Name+"): shared counter throughput (M increments/s)",
			"threads", "FAA counter", "CAS counter", "sim ratio", "model ratio")
		for _, n := range o.threadSweep(m) {
			faa, cas := results[k], results[k+1]
			k += 2
			cores, err := coresFor(m, nil, n)
			if err != nil {
				return nil, err
			}
			pf := md.PredictHigh(atomics.FAA, cores, 0)
			pc := md.PredictHigh(atomics.CAS, cores, 0)
			simRatio, modelRatio := 0.0, 0.0
			if cas.ThroughputMops > 0 {
				simRatio = faa.ThroughputMops / cas.ThroughputMops
			}
			if pc.ThroughputMops > 0 {
				modelRatio = pf.ThroughputMops / pc.ThroughputMops
			}
			t.AddRow(itoa(n), f2(faa.ThroughputMops), f2(cas.ThroughputMops),
				f2(simRatio), f2(modelRatio))
		}
		t.AddNote("model ratio ~ N: every CAS success pays N-1 failed-but-full-cost attempts")
		tables = append(tables, t)
	}
	return tables, nil
}

func runF10(o Options) ([]*Table, error) {
	crit := 50 * sim.Nanosecond
	builders := []struct {
		name string
		mk   func(e *sim.Engine, mem *atomics.Memory) apps.App
	}{
		{"tas", func(e *sim.Engine, mem *atomics.Memory) apps.App { return apps.NewTASLock(e, mem, crit) }},
		{"ttas", func(e *sim.Engine, mem *atomics.Memory) apps.App { return apps.NewTTASLock(e, mem, crit) }},
		{"ttas-backoff", func(e *sim.Engine, mem *atomics.Memory) apps.App {
			return apps.NewTTASBackoffLock(e, mem, crit, 100*sim.Nanosecond, 3200*sim.Nanosecond)
		}},
		{"ticket", func(e *sim.Engine, mem *atomics.Memory) apps.App { return apps.NewTicketLock(e, mem, crit) }},
	}
	buildersFor := func(m *machine.Machine) []struct {
		name string
		mk   func(e *sim.Engine, mem *atomics.Memory) apps.App
	} {
		if m.Sockets <= 1 {
			return builders
		}
		return append(builders[:len(builders):len(builders)], struct {
			name string
			mk   func(e *sim.Engine, mem *atomics.Memory) apps.App
		}{"cohort", func(e *sim.Engine, mem *atomics.Memory) apps.App {
			return apps.NewCohortLock(e, mem, m.SocketOf, crit, 16)
		}})
	}
	machines := o.machines()
	type spec struct {
		m *machine.Machine
		n int
		b int
	}
	var specs []spec
	for _, m := range machines {
		mb := buildersFor(m)
		for _, n := range o.threadSweep(m) {
			if n < 2 {
				continue
			}
			for b := range mb {
				specs = append(specs, spec{m, n, b})
			}
		}
	}
	results, err := FanoutKeyed(o, specs, func(s spec) string {
		return fmt.Sprintf("%s/n=%d/%s", s.m.Key(), s.n, buildersFor(s.m)[s.b].name)
	}, func(ci int, s spec) (*apps.RunResult, error) {
		return apps.Run(apps.RunConfig{
			Machine: s.m, Threads: s.n, Build: buildersFor(s.m)[s.b].mk,
			Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed + uint64(s.n),
			Metrics: o.MetricsOn(), Check: o.CheckOn(), Faults: o.CellFaults(ci),
		})
	})
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range machines {
		machineBuilders := buildersFor(m)
		cols := []string{"threads"}
		for _, b := range machineBuilders {
			cols = append(cols, b.name+" (Mops)", b.name+" Jain")
		}
		t := NewTable("F10 ("+m.Name+"): lock acquire-release cycles (50ns critical section)", cols...)
		for _, n := range o.threadSweep(m) {
			if n < 2 {
				continue
			}
			row := []string{itoa(n)}
			for range machineBuilders {
				res := results[k]
				k++
				row = append(row, f2(res.ThroughputMops), f3(res.Jain))
			}
			t.AddRow(row...)
		}
		t.AddNote("ticket: FIFO-fair by construction; backoff: fewest bounces per handoff; cohort (NUMA machines): global lock crosses sockets once per cohort")
		tables = append(tables, t)
	}
	return tables, nil
}
