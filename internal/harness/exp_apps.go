package harness

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/core"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

func init() {
	Register(&Experiment{
		ID:    "F9",
		Title: "Design decision: FAA counter vs CAS-loop counter",
		Claim: "the model facilitates algorithmic design decisions: it predicts the FAA/CAS throughput gap",
		Run:   runF9,
	})
	Register(&Experiment{
		ID:    "F10",
		Title: "Design decision: TAS vs TTAS vs backoff vs ticket spinlocks",
		Claim: "lock design choices follow from how each primitive bounces the lock line",
		Run:   runF10,
	})
}

func runF9(o Options) ([]*Table, error) {
	machines := o.machines()
	// Two cells per row: the FAA counter and the CAS-loop counter.
	var cells []appCell
	for _, m := range machines {
		for _, n := range o.threadSweep(m) {
			for _, structure := range []string{"counter-faa", "counter-cas"} {
				sp := o.baseAppSpec()
				sp.Structure = structure
				sp.Threads = n
				sp.Seed = o.Seed + uint64(n)
				c, err := newAppCell(m, sp)
				if err != nil {
					return nil, err
				}
				cells = append(cells, c)
			}
		}
	}
	results, err := runAppCells(o, cells)
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range machines {
		md := core.NewDetailed(m)
		t := NewTable("F9 ("+m.Name+"): shared counter throughput (M increments/s)",
			"threads", "FAA counter", "CAS counter", "sim ratio", "model ratio")
		for _, n := range o.threadSweep(m) {
			faa, cas := results[k], results[k+1]
			k += 2
			cores, err := coresFor(m, nil, n)
			if err != nil {
				return nil, err
			}
			pf := md.PredictHigh(atomics.FAA, cores, 0)
			pc := md.PredictHigh(atomics.CAS, cores, 0)
			simRatio, modelRatio := 0.0, 0.0
			if cas.ThroughputMops > 0 {
				simRatio = faa.ThroughputMops / cas.ThroughputMops
			}
			if pc.ThroughputMops > 0 {
				modelRatio = pf.ThroughputMops / pc.ThroughputMops
			}
			t.AddRow(itoa(n), f2(faa.ThroughputMops), f2(cas.ThroughputMops),
				f2(simRatio), f2(modelRatio))
		}
		t.AddNote("model ratio ~ N: every CAS success pays N-1 failed-but-full-cost attempts")
		tables = append(tables, t)
	}
	return tables, nil
}

func runF10(o Options) ([]*Table, error) {
	crit := 50 * sim.Nanosecond
	variants := []struct {
		name      string
		structure string
	}{
		{"tas", "lock-tas"},
		{"ttas", "lock-ttas"},
		{"ttas-backoff", "lock-ttas-backoff"},
		{"ticket", "lock-ticket"},
		{"cohort", "lock-cohort"}, // multi-socket machines only
	}
	variantsFor := func(m *machine.Machine) []struct {
		name      string
		structure string
	} {
		if m.Sockets <= 1 {
			return variants[:4]
		}
		return variants
	}
	machines := o.machines()
	var cells []appCell
	for _, m := range machines {
		for _, n := range o.threadSweep(m) {
			if n < 2 {
				continue
			}
			for _, v := range variantsFor(m) {
				sp := o.baseAppSpec()
				sp.Structure = v.structure
				sp.Threads = n
				sp.CritPS = crit
				sp.Seed = o.Seed + uint64(n)
				c, err := newAppCell(m, sp)
				if err != nil {
					return nil, err
				}
				cells = append(cells, c)
			}
		}
	}
	results, err := runAppCells(o, cells)
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range machines {
		machineVariants := variantsFor(m)
		cols := []string{"threads"}
		for _, v := range machineVariants {
			cols = append(cols, v.name+" (Mops)", v.name+" Jain")
		}
		t := NewTable("F10 ("+m.Name+"): lock acquire-release cycles (50ns critical section)", cols...)
		for _, n := range o.threadSweep(m) {
			if n < 2 {
				continue
			}
			row := []string{itoa(n)}
			for range machineVariants {
				res := results[k]
				k++
				row = append(row, f2(res.ThroughputMops), f3(res.Jain))
			}
			t.AddRow(row...)
		}
		t.AddNote("ticket: FIFO-fair by construction; backoff: fewest bounces per handoff; cohort (NUMA machines): global lock crosses sockets once per cohort")
		tables = append(tables, t)
	}
	return tables, nil
}
