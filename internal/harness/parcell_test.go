package harness

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"atomicsmodel/internal/machine"
)

func TestRunCellsCoversEveryIndexOnce(t *testing.T) {
	for _, par := range []int{1, 3, 8, 100} {
		hits := make([]atomic.Int32, 50)
		err := RunCells(Options{Par: par}, len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("par=%d: cell %d ran %d times", par, i, n)
			}
		}
	}
}

func TestRunCellsReturnsLowestIndexError(t *testing.T) {
	wantErr := errors.New("cell 3 failed")
	for _, par := range []int{1, 4} {
		err := RunCells(Options{Par: par}, 20, func(i int) error {
			switch i {
			case 3:
				return wantErr
			case 7:
				return errors.New("cell 7 failed")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("par=%d: error swallowed", par)
		}
		// Parallel runs may or may not reach cell 7 after cell 3 fails,
		// but the reported error must be the lowest-index one.
		if err.Error() != wantErr.Error() {
			t.Fatalf("par=%d: got %v, want %v", par, err, wantErr)
		}
	}
}

func TestRunCellsProgress(t *testing.T) {
	var calls int
	last := -1
	err := RunCells(Options{Par: 1, Progress: func(done, total int) {
		calls++
		if total != 10 || done <= last {
			t.Fatalf("progress(%d, %d) after done=%d", done, total, last)
		}
		last = done
	}}, 10, func(int) error { return nil })
	if err != nil || calls != 10 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestFanoutOrdersResults(t *testing.T) {
	specs := make([]int, 64)
	for i := range specs {
		specs[i] = i * i
	}
	out, err := Fanout(Options{Par: 8}, specs, func(i, spec int) (string, error) {
		return fmt.Sprintf("%d:%d", i, spec), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range out {
		if want := fmt.Sprintf("%d:%d", i, i*i); got != want {
			t.Fatalf("out[%d] = %q, want %q", i, got, want)
		}
	}
}

// renderAll runs every experiment with the given options and returns
// the concatenated rendered tables.
func renderAll(t *testing.T, o Options, ids []string) string {
	t.Helper()
	var sb strings.Builder
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := e.Run(o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, tb := range tables {
			if err := tb.Render(&sb); err != nil {
				t.Fatal(err)
			}
		}
	}
	return sb.String()
}

// TestParallelMatchesSerial is the determinism regression test for the
// cell scheduler: every experiment must render byte-identical tables at
// Par 1 and Par 8. Cells are independent simulations assembled by
// index, so worker count must never leak into results.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment twice")
	}
	ids := IDs()
	serial := quickOpts()
	serial.Par = 1
	parallel := quickOpts()
	parallel.Par = 8
	a := renderAll(t, serial, ids)
	b := renderAll(t, parallel, ids)
	if a != b {
		t.Fatalf("par=1 and par=8 output differ:\n--- par=1 ---\n%s\n--- par=8 ---\n%s", a, b)
	}
	o2 := Options{Machines: []*machine.Machine{machine.KNL()}, Quick: true, Seed: 7, Par: 8}
	o1 := o2
	o1.Par = 1
	if renderAll(t, o1, []string{"F3"}) != renderAll(t, o2, []string{"F3"}) {
		t.Fatal("KNL F3 differs between par=1 and par=8")
	}
}

func TestOrderKey(t *testing.T) {
	got := orderKey("F3")
	if got != 3 {
		t.Fatalf("orderKey(F3) = %d", got)
	}
	if orderKey("T1") != 0 {
		t.Fatal("T1 must sort first")
	}
	if orderKey("T2") <= orderKey("F22") {
		t.Fatal("T2 must trail figures")
	}
	// Non-numeric suffixes used to parse as 0 (the Sscanf error was
	// ignored), sorting them in front of every figure. They must trail
	// everything well-formed instead.
	for _, id := range []string{"Fx", "F", "Fig3b", "T"} {
		if orderKey(id) <= orderKey("T99") {
			t.Errorf("orderKey(%q) = %d: malformed ID sorts before well-formed IDs", id, orderKey(id))
		}
	}
}
