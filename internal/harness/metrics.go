package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"atomicsmodel/internal/metrics"
)

// This file is the harness end of the observability layer (see
// internal/metrics): cell results that carry a metrics snapshot deliver
// it to an Options.Metrics collector as they complete — fresh or
// replayed from the resume cache — and the collector renders the
// per-cell breakdown tables behind the CLIs' -metrics mode.

// cellMetricsProvider is implemented by result types that carry a
// metrics snapshot. *workload.Result and *apps.RunResult implement it.
type cellMetricsProvider interface {
	MetricsSnapshot() *metrics.Snapshot
}

// CellMetrics is one cell's snapshot, addressed the way the manifest
// addresses cells.
type CellMetrics struct {
	// Exp is the experiment ID, Cell the cell's index within it.
	Exp  string
	Cell int
	// Key is the cell's full config key ("" for un-keyed cells); Label
	// is its per-cell part (machine, threads, swept knobs).
	Key   string
	Label string
	// Snap is the cell's snapshot over its measured window.
	Snap *metrics.Snapshot
}

// MetricsCollector accumulates per-cell metrics snapshots across
// experiments. Attach one via Options.Metrics: runners then enable
// their workloads' registries, and the scheduler delivers every
// snapshot here (cache replays included, so a resumed run collects
// exactly what the fresh run did). Methods are safe for concurrent use
// by scheduler workers; output ordering never depends on completion
// order.
type MetricsCollector struct {
	mu    sync.Mutex
	cells []CellMetrics
}

// record stores one cell's snapshot (called by the cell scheduler).
func (mc *MetricsCollector) record(cm CellMetrics) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	mc.cells = append(mc.cells, cm)
}

// Cells returns every collected snapshot sorted by experiment display
// order, then cell index — the deterministic order the tables use.
func (mc *MetricsCollector) Cells() []CellMetrics {
	mc.mu.Lock()
	out := make([]CellMetrics, len(mc.cells))
	copy(out, mc.cells)
	mc.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Exp != out[j].Exp {
			ki, kj := orderKey(out[i].Exp), orderKey(out[j].Exp)
			if ki != kj {
				return ki < kj
			}
			return out[i].Exp < out[j].Exp
		}
		return out[i].Cell < out[j].Cell
	})
	return out
}

// Tables renders one per-cell breakdown table per experiment: a row per
// cell, a column per counter, plus mean/max columns for histograms and
// sum/min-max-ratio columns for vectors. Columns are the union of the
// instruments seen across the experiment's cells, sorted by name, so
// heterogeneous cells still line up.
func (mc *MetricsCollector) Tables() []*Table {
	cells := mc.Cells()
	var tables []*Table
	for start := 0; start < len(cells); {
		end := start
		for end < len(cells) && cells[end].Exp == cells[start].Exp {
			end++
		}
		tables = append(tables, metricsTable(cells[start].Exp, cells[start:end]))
		start = end
	}
	return tables
}

// metricsTable renders one experiment's cells.
func metricsTable(exp string, cells []CellMetrics) *Table {
	counterSet := map[string]bool{}
	histSet := map[string]bool{}
	vecSet := map[string]bool{}
	for _, cm := range cells {
		if cm.Snap == nil {
			continue
		}
		for _, c := range cm.Snap.Counters {
			counterSet[c.Name] = true
		}
		for _, h := range cm.Snap.Hists {
			histSet[h.Name] = true
		}
		for _, v := range cm.Snap.Vectors {
			vecSet[v.Name] = true
		}
	}
	counters := sortedKeys(counterSet)
	hists := sortedKeys(histSet)
	vecs := sortedKeys(vecSet)

	cols := []string{"cell"}
	cols = append(cols, counters...)
	for _, h := range hists {
		cols = append(cols, h+".mean", h+".max")
	}
	for _, v := range vecs {
		cols = append(cols, v+".sum", v+".minmax")
	}
	t := NewTable("metrics ("+exp+"): per-cell breakdown over the measured window", cols...)
	for _, cm := range cells {
		label := cm.Label
		if label == "" {
			label = fmt.Sprintf("cell %d", cm.Cell)
		}
		row := []string{label}
		for _, name := range counters {
			v, _ := cm.Snap.Counter(name)
			row = append(row, fmt.Sprintf("%d", v))
		}
		for _, name := range hists {
			if h := cm.Snap.Hist(name); h != nil {
				row = append(row, f2(h.Mean()), fmt.Sprintf("%d", h.Max))
			} else {
				row = append(row, "-", "-")
			}
		}
		for _, name := range vecs {
			vals := cm.Snap.Vector(name)
			if vals == nil {
				row = append(row, "-", "-")
				continue
			}
			var sum, min, max uint64
			min = ^uint64(0)
			for _, v := range vals {
				sum += v
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
			ratio := 1.0
			if max > 0 {
				ratio = float64(min) / float64(max)
			}
			row = append(row, fmt.Sprintf("%d", sum), f2(ratio))
		}
		t.AddRow(row...)
	}
	t.AddNote("counters and histograms cover the measured window; see internal/metrics for the naming scheme")
	return t
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// metricsLabel strips the cell key's option prefix, leaving the
// per-cell part for table rows.
func (o Options) metricsLabel(key string) string {
	return strings.TrimPrefix(key, o.cellKey(""))
}
