package harness

import (
	"fmt"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/invariant"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

func init() {
	Register(&Experiment{
		ID:    "F16",
		Title: "Interconnect bandwidth: an atomic storm slows unrelated traffic",
		Claim: "with finite link bandwidth, contended atomics pollute the interconnect: victims on other lines stall behind the storm's messages",
		Run:   runF16,
	})
}

// runF16 runs, for each machine and link occupancy, a 12-thread FAA
// storm on one hot line concurrently with a 2-thread ping-pong victim
// on an unrelated line, and reports how the victim's latency degrades
// as bandwidth tightens. Occupancy 0 is the infinite-bandwidth baseline
// every other experiment uses.
func runF16(o Options) ([]*Table, error) {
	occupancies := []float64{0, 1, 2, 4, 8} // cycles per link per message
	if o.Quick {
		occupancies = []float64{0, 2, 8}
	}
	machines := o.machines()
	// Each storm-and-victim run is one custom simulation — one cell.
	type spec struct {
		base *machine.Machine
		occ  float64
	}
	type cell struct{ Storm, VictimLat, StallShare float64 }
	var specs []spec
	for _, base := range machines {
		for _, occ := range occupancies {
			specs = append(specs, spec{base, occ})
		}
	}
	results, err := FanoutKeyed(o, specs, func(s spec) string {
		return fmt.Sprintf("%s/occ=%v", s.base.Key(), s.occ)
	}, func(ci int, s spec) (cell, error) {
		m := *s.base
		m.LinkOccupancy = m.Cycles(s.occ)
		storm, victimLat, stallShare, err := stormAndVictim(&m, o)
		return cell{storm, victimLat, stallShare}, err
	})
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, base := range machines {
		t := NewTable("F16 ("+base.Name+"): 12-thread FAA storm vs 2-thread victim on another line",
			"link occupancy (cyc)", "storm (Mops)", "victim latency (ns)", "victim slowdown", "stall share")
		baselineLat := 0.0
		for _, occ := range occupancies {
			c := results[k]
			k++
			if occ == 0 {
				baselineLat = c.VictimLat
			}
			t.AddRow(f1(occ), f2(c.Storm), f1(c.VictimLat), f2(c.VictimLat/baselineLat), f3(c.StallShare))
		}
		t.AddNote("victim cores sit across the machine from each other; their transfers share links with the storm")
		tables = append(tables, t)
	}
	return tables, nil
}

// stormAndVictim returns the storm's throughput (Mops), the victim's
// mean per-op latency (ns), and the fraction of total simulated time
// messages spent stalled on links.
func stormAndVictim(m *machine.Machine, o Options) (stormMops, victimLatNs, stallShare float64, err error) {
	eng := sim.NewEngine()
	mem, err := atomics.NewMemory(eng, m, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	var chk *invariant.Checker
	if o.CheckOn() {
		chk = invariant.Install(eng, mem.System())
	}
	const (
		stormLine  coherence.LineID = 1
		victimLine coherence.LineID = 2
	)
	stormThreads := 12
	slots, err := (machine.Compact{}).Place(m, stormThreads+2)
	if err != nil {
		return 0, 0, 0, err
	}
	warm, end := o.warmup(), o.warmup()+o.duration()

	var stormOps uint64
	measuring := false
	for i := 0; i < stormThreads; i++ {
		core := m.CoreOf(slots[i])
		var issue func()
		issue = func() {
			if eng.Now() >= end {
				return
			}
			mem.FetchAndAdd(core, stormLine, 1, func(atomics.Result) {
				if measuring && eng.Now() <= end {
					stormOps++
				}
				issue()
			})
		}
		eng.Schedule(sim.Time(i)*sim.Nanosecond, issue)
	}

	// Victim: the two remaining placed cores ping-pong their own line
	// with a little think time (they are latency-, not
	// throughput-bound — the paper's "innocent bystander").
	victimA := m.CoreOf(slots[stormThreads])
	victimB := m.CoreOf(slots[stormThreads+1])
	var victimSum sim.Time
	var victimN uint64
	var ping func(core int)
	ping = func(core int) {
		if eng.Now() >= end {
			return
		}
		mem.FetchAndAdd(core, victimLine, 1, func(r atomics.Result) {
			if measuring && eng.Now() <= end {
				victimSum += r.Latency
				victimN++
			}
			next := victimA
			if core == victimA {
				next = victimB
			}
			eng.Schedule(50*sim.Nanosecond, func() { ping(next) })
		})
	}
	eng.Schedule(0, func() { ping(victimA) })

	var stallAtWarm sim.Time
	eng.At(warm, func() {
		measuring = true
		stallAtWarm = mem.System().Stats().LinkStall
	})
	eng.Run(end)
	if chk != nil {
		if err := chk.Finalize(); err != nil {
			return 0, 0, 0, err
		}
	} else if err := mem.System().CheckInvariants(); err != nil {
		return 0, 0, 0, err
	}
	if victimN == 0 {
		return 0, 0, 0, nil
	}
	stall := mem.System().Stats().LinkStall - stallAtWarm
	return float64(stormOps) / o.duration().Seconds() / 1e6,
		(victimSum / sim.Time(victimN)).Nanoseconds(),
		stall.Seconds() / o.duration().Seconds(),
		nil
}
