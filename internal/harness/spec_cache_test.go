package harness

import (
	"testing"

	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/runlog"
)

// TestCustomSpecDistinctCacheNamespace is the acceptance test for
// digest-based cell keys: a custom machine spec that reuses a preset's
// name must land in its own resume-cache namespace. A crashed run on
// the preset, resumed with a same-named but differently parameterized
// spec, must recompute every cell — and a second resume with the real
// preset must replay all of them.
func TestCustomSpecDistinctCacheNamespace(t *testing.T) {
	dir := t.TempDir()
	preset := machine.XeonE5()

	spec, err := machine.SpecByName("XeonE5")
	if err != nil {
		t.Fatal(err)
	}
	spec.FreqGHz = 2.6 // same name, different content
	custom, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if custom.Name != preset.Name {
		t.Fatalf("test premise broken: names differ (%s vs %s)", custom.Name, preset.Name)
	}
	if custom.Key() == preset.Key() {
		t.Fatalf("same-named custom spec shares cache key %s with the preset", custom.Key())
	}

	exp, err := ByID("F1")
	if err != nil {
		t.Fatal(err)
	}
	run := func(m *machine.Machine, resume bool) (cells, cached int) {
		open := runlog.Create
		if resume {
			open = runlog.Append
		}
		w, err := open(dir)
		if err != nil {
			t.Fatal(err)
		}
		c, err := runlog.OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		o := Options{Machines: []*machine.Machine{m}, Quick: true, Seed: 42, Par: 4}
		o.Manifest, o.Cache = w, c
		if _, err := RunExperiment(exp, o); err != nil {
			t.Fatal(err)
		}
		cells, cached, failed := w.Totals()
		if failed != 0 {
			t.Fatalf("%d failed cells", failed)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return cells, cached
	}

	cells, cached := run(preset, false)
	if cells == 0 || cached != 0 {
		t.Fatalf("seed run: cells=%d cached=%d", cells, cached)
	}
	// Same-named custom spec: zero cache hits allowed.
	if _, cached := run(custom, true); cached != 0 {
		t.Fatalf("custom spec replayed %d preset cells from cache", cached)
	}
	// The preset again: every cell replays.
	if cells2, cached := run(preset, true); cached != cells2 || cells2 != cells {
		t.Fatalf("preset resume: cells=%d cached=%d, want all %d cached", cells2, cached, cells)
	}
	// And the custom spec again: its own cells replay too.
	if cells3, cached := run(custom, true); cached != cells3 {
		t.Fatalf("custom resume: cells=%d cached=%d, want all cached", cells3, cached)
	}
}
