package harness

import (
	"strings"
	"testing"

	"atomicsmodel/internal/apps"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/runlog"
	"atomicsmodel/internal/sim"
)

// TestAppSpecDistinctCacheNamespace is the acceptance test for
// digest-based app cell keys — the regression test for the
// under-keyed sprintf fragments the spec port removed (the old F10/F20
// keys omitted the critical-section length, read fraction and seed, so
// two differently parameterized cells could alias one cache entry).
// Two specs that differ in any effective knob must land in distinct
// resume-cache namespaces; a second resume with either original must
// replay all of its cells.
func TestAppSpecDistinctCacheNamespace(t *testing.T) {
	dir := t.TempDir()
	m := machine.Ideal(8)

	base := &apps.Spec{
		Name: "probe", Structure: "lock-tas", ThreadLadder: []int{2, 4},
	}
	tweaked := base.Clone()
	tweaked.CritPS = 100 * sim.Nanosecond // same name, different content

	db, err := base.Digest()
	if err != nil {
		t.Fatal(err)
	}
	dt, err := tweaked.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if db == dt {
		t.Fatalf("tweaked spec shares digest %s with the original", db)
	}

	run := func(s *apps.Spec, resume bool) (cells, cached int) {
		open := runlog.Create
		if resume {
			open = runlog.Append
		}
		w, err := open(dir)
		if err != nil {
			t.Fatal(err)
		}
		c, err := runlog.OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		o := Options{Machines: []*machine.Machine{m}, Quick: true, Seed: 42, Par: 4}
		o.Manifest, o.Cache = w, c
		if _, err := RunExperiment(AppExperiment([]*apps.Spec{s}), o); err != nil {
			t.Fatal(err)
		}
		cells, cached, failed := w.Totals()
		if failed != 0 {
			t.Fatalf("%d failed cells", failed)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return cells, cached
	}

	cells, cached := run(base, false)
	if cells == 0 || cached != 0 {
		t.Fatalf("seed run: cells=%d cached=%d", cells, cached)
	}
	// Same-named tweaked spec: zero cache hits allowed.
	if _, cached := run(tweaked, true); cached != 0 {
		t.Fatalf("tweaked spec replayed %d cells of the original from cache", cached)
	}
	// The original again: every cell replays.
	if cells2, cached := run(base, true); cached != cells2 || cells2 != cells {
		t.Fatalf("original resume: cells=%d cached=%d, want all %d cached", cells2, cached, cells)
	}
	// And the tweaked spec again: its own cells replay too.
	if cells3, cached := run(tweaked, true); cached != cells3 {
		t.Fatalf("tweaked resume: cells=%d cached=%d, want all cached", cells3, cached)
	}
}

// TestAppCellKeyCarriesDigest pins the key shape the runners rely on:
// machine key, the "/app@" marker, then the spec's content digest —
// and that the app and workload namespaces cannot collide.
func TestAppCellKeyCarriesDigest(t *testing.T) {
	m := machine.Ideal(8)
	sp := apps.Spec{Structure: "treiber-stack", Threads: 4, Seed: 7}
	c, err := newAppCell(m, sp)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sp.Digest()
	if err != nil {
		t.Fatal(err)
	}
	want := m.Key() + "/app@" + d
	if c.key != want {
		t.Fatalf("cell key = %q, want %q", c.key, want)
	}
	if !strings.Contains(c.key, "/app@") {
		t.Fatalf("cell key %q lacks the app digest marker", c.key)
	}
	if strings.Contains(c.key, "/wl@") {
		t.Fatalf("cell key %q strays into the workload namespace", c.key)
	}
}

// TestAppSuiteTables runs the A-suite end to end on a quick option set
// and checks the prediction column is populated for every row.
func TestAppSuiteTables(t *testing.T) {
	o := Options{Machines: []*machine.Machine{machine.XeonE5()}, Quick: true, Seed: 7}
	specs := []*apps.Spec{
		{Name: "t", Structure: "treiber-stack", ThreadLadder: []int{2, 8}},
		{Name: "c", Structure: "lock-cohort", Threads: 4},
		{Name: "d", Structure: "ws-deque", Threads: 4},
	}
	tables, err := runAppSuite(o, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("got %d tables, want 3", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Fatalf("table %q has no rows", tb.Title)
		}
		for _, row := range tb.Rows {
			if len(row) != 6 {
				t.Fatalf("table %q row %v: want 6 columns", tb.Title, row)
			}
			if row[2] == "" || row[2] == "0.00" {
				t.Errorf("table %q row %v: empty model prediction", tb.Title, row)
			}
		}
	}

	// The cohort spec on a single-socket machine is skipped with a
	// note, not failed.
	o1 := Options{Machines: []*machine.Machine{machine.Ideal(8)}, Quick: true, Seed: 7}
	tables, err = runAppSuite(o1, []*apps.Spec{{Name: "c", Structure: "lock-cohort", Threads: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 0 {
		t.Fatalf("incompatible machine not skipped: %+v", tables)
	}
}
