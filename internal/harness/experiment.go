package harness

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"time"

	"atomicsmodel/internal/faults"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/runlog"
	"atomicsmodel/internal/sim"
)

// Options tunes an experiment run.
type Options struct {
	// Context, when non-nil, bounds the whole run: once it is canceled
	// or past its deadline the scheduler stops claiming cells, and the
	// next cell each worker would have started fails with a
	// *CellCanceledError instead of computing (recorded in the manifest
	// as canceled). Cells already computing run to completion — a cell
	// is the preemption granularity, exactly like the watchdog. Nil
	// means context.Background(): the pre-context behavior, bit for
	// bit. RunCellsContext/FanoutContext/FanoutKeyedContext stamp this
	// field; long-running drivers (the atomicd job server) use it to
	// enforce per-job deadlines and cancellation.
	Context context.Context
	// Machines to evaluate; nil means machine.All().
	Machines []*machine.Machine
	// Quick trims sweeps and shortens simulated durations for CI-speed
	// runs; full runs match the reported EXPERIMENTS.md numbers.
	Quick bool
	// Seed is the base seed; distinct configurations derive their own.
	Seed uint64
	// Par is the maximum number of simulation cells run concurrently;
	// zero or negative means GOMAXPROCS. Results are independent of Par:
	// cells are assembled in index order, so tables come out
	// byte-identical whether Par is 1 or 64.
	Par int
	// Progress, when set, is called after each completed cell with
	// (cells done, cells total). Calls are serialized by the scheduler.
	Progress func(done, total int)
	// Exp is the ID of the experiment this Options drives (set by
	// RunExperiment). It namespaces manifest records and cache keys.
	Exp string
	// Manifest, when non-nil, receives one structured JSON-lines record
	// per completed cell plus experiment summaries (see internal/runlog).
	Manifest *runlog.Writer
	// Cache, when non-nil, is the content-keyed cell-result cache:
	// keyed cells whose config digest is already present replay the
	// stored result instead of re-simulating. Results are independent
	// of the cache by construction — cached results must round-trip
	// through JSON byte-exactly, which FanoutKeyed enforces.
	Cache *runlog.Cache
	// Metrics, when non-nil, enables the per-cell observability
	// registries (internal/metrics): runners set Config.Metrics on their
	// workloads, and every completed cell's snapshot — fresh or replayed
	// from the cache — is delivered here. Enabling metrics tags cell
	// cache keys, so metrics-on and metrics-off runs never share cache
	// entries; with Metrics nil the simulation hot path takes the
	// nil-registry fast path and output is byte-identical to builds
	// without the observability layer.
	Metrics *MetricsCollector
	// Check enables the per-cell coherence/engine invariant checker
	// (internal/invariant): runners set Config.Check on their workloads,
	// a violation fails the cell with a deterministic report, and checked
	// runs get their own cache-key namespace. Off by default; off costs
	// one nil check per audited site and changes no results.
	Check bool
	// Faults is the experiment-level fault-injection plan
	// (internal/faults); nil injects nothing. Runners derive each cell's
	// slice with CellFaults. Faulted runs get their own cache-key
	// namespace so they can never poison a clean run's resume cache.
	Faults *faults.Plan
	// CellTimeout, when positive, bounds each cell's wall-clock compute
	// time: a cell that exceeds it fails with a *CellTimeoutError while
	// sibling cells finish and reach the manifest and cache — the
	// watchdog that turns a hung cell into a reported failure instead of
	// a hung run. The abandoned cell goroutine is orphaned (simulation
	// cells cannot be preempted) but writes only to a discarded channel.
	CellTimeout time.Duration
	// CellRetries, when positive, retries a failed cell up to this many
	// extra attempts with a short backoff before giving up; exhausted
	// retries surface as a *CellRetriedError wrapping the last attempt's
	// error. Zero (the default) preserves exact single-attempt error
	// semantics.
	CellRetries int
}

// MetricsOn reports whether cell metrics collection is enabled; runners
// forward it into workload.Config.Metrics / apps.RunConfig.Metrics.
func (o Options) MetricsOn() bool { return o.Metrics != nil }

// CheckOn reports whether invariant checking is enabled; runners
// forward it into workload.Config.Check / apps.RunConfig.Check.
func (o Options) CheckOn() bool { return o.Check }

// CellFaults derives cell i's fault plan (nil when no simulation-layer
// fault targets it); runners forward it into workload.Config.Faults /
// apps.RunConfig.Faults.
func (o Options) CellFaults(i int) *faults.CellPlan { return o.Faults.ForCell(i) }

// cellKey turns a runner-local cell key into the cache's full config
// key: experiment ID plus every base option that changes results (the
// seed and the Quick sweep trimming; Par never affects results). The
// per-cell part must itself identify the machine and every swept knob.
// Workload-driven cells get this from newWorkloadCell, whose keys are
// machine.Key() — "Name@digest" for spec-built machines — joined with
// "/wl@" and the workload spec's content digest (workload.Spec.Digest
// over the defaulted canonical form), so a machine or workload spec
// that reuses a name, or one edited between a crash and its resume,
// occupies its own cache namespace. Hand-written cells (apps.Run,
// probe sims) spell the machine key and their knobs out directly.
// Metrics collection, invariant checking, and fault plans join the key
// only when enabled, so existing plain caches stay valid and a
// checked/faulted run never shares cache entries with a clean one.
func (o Options) cellKey(k string) string {
	base := fmt.Sprintf("%s|seed=%d|quick=%v", o.Exp, o.Seed, o.Quick)
	if o.Metrics != nil {
		base += "|metrics=on"
	}
	if o.Check {
		base += "|check=on"
	}
	if o.Faults != nil {
		base += "|faults=" + o.Faults.Signature()
	}
	return base + "|" + k
}

func (o Options) machines() []*machine.Machine {
	if len(o.Machines) > 0 {
		return o.Machines
	}
	return machine.All()
}

// warmup and duration return the measurement window for this option set.
func (o Options) warmup() sim.Time {
	if o.Quick {
		return 10 * sim.Microsecond
	}
	return 25 * sim.Microsecond
}

func (o Options) duration() sim.Time {
	if o.Quick {
		return 100 * sim.Microsecond
	}
	return 400 * sim.Microsecond
}

// threadSweep returns the thread counts to evaluate on machine m.
func (o Options) threadSweep(m *machine.Machine) []int {
	var pts []int
	if o.Quick {
		pts = []int{1, 2, 4, 8, 16}
	} else {
		switch m.Name {
		case "XeonE5":
			pts = []int{1, 2, 4, 8, 12, 16, 18, 24, 30, 36, 48, 72}
		case "KNL":
			pts = []int{1, 2, 4, 8, 16, 32, 48, 64, 128, 256}
		default:
			// Custom machines (spec files) get powers of two up to the
			// hardware-thread count, plus the physical-core count and the
			// full machine — the knees the paper's sweeps always include.
			for n := 1; n <= m.NumHWThreads(); n *= 2 {
				pts = append(pts, n)
			}
			pts = append(pts, m.NumCores(), m.NumHWThreads())
			sort.Ints(pts)
			pts = slices.Compact(pts)
		}
	}
	out := pts[:0:0]
	for _, n := range pts {
		if n <= m.NumHWThreads() {
			out = append(out, n)
		}
	}
	return out
}

// Experiment regenerates one of the paper's tables or figures.
type Experiment struct {
	// ID is the stable identifier (e.g. "F3").
	ID string
	// Title is the figure/table caption.
	Title string
	// Claim states which abstract claim the experiment exercises.
	Claim string
	// Run produces the result tables.
	Run func(o Options) ([]*Table, error)
}

var registry = map[string]*Experiment{}

// Register adds an experiment; duplicate IDs panic at init time.
func Register(e *Experiment) {
	if e.ID == "" || e.Run == nil {
		panic("harness: experiment needs ID and Run")
	}
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("harness: duplicate experiment %s", e.ID))
	}
	registry[e.ID] = e
}

// ByID returns a registered experiment.
func ByID(id string) (*Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", id, IDs())
	}
	return e, nil
}

// IDs returns all registered experiment IDs in display order (T1 first,
// then F1..Fn, then T2; lexicographic within the same prefix+number).
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		ki, kj := orderKey(ids[i]), orderKey(ids[j])
		if ki != kj {
			return ki < kj
		}
		// Explicit tiebreak: sort.Slice is not stable, and two IDs can
		// share a key (e.g. malformed IDs all keying to the trailer).
		return ids[i] < ids[j]
	})
	return ids
}

// orderKey sorts T1 before figures and T2 after, figures numerically.
// IDs whose suffix is not a number (or that are empty) sort after every
// well-formed ID rather than silently keying as zero.
func orderKey(id string) int {
	if id == "T1" {
		return 0
	}
	if len(id) < 2 {
		return 1 << 20
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil {
		return 1 << 20
	}
	if id[0] == 'F' {
		return n
	}
	return 1000 + n // T2 and other prefixes trail the figures
}

// All returns every experiment in display order.
func All() []*Experiment {
	out := make([]*Experiment, 0, len(registry))
	for _, id := range IDs() {
		out = append(out, registry[id])
	}
	return out
}

// RunExperiment runs e with o after stamping o.Exp, and records an
// experiment-level manifest record (cell counts, wall time, error) when
// a manifest is attached. Drivers should prefer it over calling e.Run
// directly so every experiment shows up in the run manifest.
func RunExperiment(e *Experiment, o Options) ([]*Table, error) {
	o.Exp = e.ID
	start := time.Now()
	var cells0, cached0, failed0 int
	if o.Manifest != nil {
		cells0, cached0, failed0 = o.Manifest.Totals()
	}
	tables, err := e.Run(o)
	if o.Manifest != nil {
		cells, cached, failed := o.Manifest.Totals()
		rec := runlog.ExpRecord{
			Exp:    e.ID,
			Cells:  cells - cells0,
			Cached: cached - cached0,
			Failed: failed - failed0,
			WallMS: float64(time.Since(start)) / float64(time.Millisecond),
		}
		if err != nil {
			rec.Error = err.Error()
		}
		if werr := o.Manifest.Exp(rec); werr != nil && err == nil {
			err = werr
		}
	}
	return tables, err
}
