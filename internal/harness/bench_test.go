package harness

import (
	"testing"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/workload"
)

// BenchmarkFullCell measures one complete simulation cell — the unit the
// parallel scheduler fans out — at quick-run length: a 16-thread
// high-contention FAA sweep point on the Xeon.
func BenchmarkFullCell(b *testing.B) {
	benchFullCell(b, false)
}

// BenchmarkFullCellMetrics is the same cell with the observability
// registry live (Config.Metrics set): registry setup, per-event counts,
// and the end-of-run snapshot. The delta against BenchmarkFullCell is
// the whole-cell cost of -metrics.
func BenchmarkFullCellMetrics(b *testing.B) {
	benchFullCell(b, true)
}

func benchFullCell(b *testing.B, withMetrics bool) {
	m := machine.XeonE5()
	b.ReportAllocs()
	b.ResetTimer()
	// Recycle one Result so the benchmark measures the simulation
	// itself: with the cell pool warm, steady-state cells are
	// allocation-free.
	var res *workload.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = workload.RunReusing(workload.Config{
			Machine: m, Threads: 16, Primitive: atomics.FAA,
			Mode:   workload.HighContention,
			Warmup: 10 * sim.Microsecond, Duration: 100 * sim.Microsecond,
			Seed:    1,
			Metrics: withMetrics,
		}, res)
		if err != nil {
			b.Fatal(err)
		}
	}
}
