package harness

import (
	"strings"
	"testing"

	"atomicsmodel/internal/machine"
)

// TestGoldenF1Xeon pins the exact F1 latency table for the Xeon: any
// change to machine constants, protocol cost structure, or rendering
// shows up here first. Update deliberately when those change.
func TestGoldenF1Xeon(t *testing.T) {
	e, err := ByID("F1")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Options{Machines: []*machine.Machine{machine.XeonE5()}, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	var sb strings.Builder
	if err := tables[0].Render(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := strings.Join([]string{
		"F1 (XeonE5): single-op latency by line state",
		"primitive  M-local (ns)  E-local (ns)  Shared (ns)  M-remote-socket0 (ns)  M-remote-socket1 (ns)  LLC (ns)  DRAM (ns)",
		"---------------------------------------------------------------------------------------------------------------------",
		"CAS        9.6           9.6           60.4         38.3                   115.8                  50.4      103.3    ",
		"FAA        8.7           8.7           59.6         37.5                   115.0                  49.6      102.5    ",
		"SWAP       8.7           8.7           59.6         37.5                   115.0                  49.6      102.5    ",
		"TAS        8.3           8.3           59.2         37.1                   114.6                  49.2      102.1    ",
		"CAS2       12.1          12.1          62.9         40.8                   118.3                  52.9      105.8    ",
		"Load       1.7           1.7           1.7          30.4                   107.9                  42.5      95.4     ",
		"Store      2.1           2.1           52.9         30.8                   108.3                  42.9      95.8     ",
		"Fence      13.8          13.8          13.8         13.8                   13.8                   13.8      13.8     ",
		"  note: machine: XeonE5 (2×18 cores ×2 SMT @ 2.4 GHz, dualring-2x18)",
		"",
	}, "\n")
	if got != want {
		t.Errorf("golden F1 table changed.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestGoldenCalibrationKNL pins the KNL calibration constants.
func TestGoldenCalibrationKNL(t *testing.T) {
	e, err := ByID("T2")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Options{Machines: []*machine.Machine{machine.KNL()}, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tables[0].Render(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, wantFrag := range []string{"KNL", "26.2", "127.7"} {
		if !strings.Contains(got, wantFrag) {
			t.Errorf("calibration golden missing %q:\n%s", wantFrag, got)
		}
	}
}
