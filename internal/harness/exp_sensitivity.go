package harness

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/core"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

func init() {
	Register(&Experiment{
		ID:    "T3",
		Title: "Model sensitivity: which machine constant moves contended throughput",
		Claim: "the model makes the cost structure inspectable: elasticities show contended atomics are a directory-and-wire story, not an execution story",
		Run:   runT3,
	})
}

// runT3 perturbs each latency constant by +10% and reports the
// resulting change in model-predicted contended throughput (elasticity
// = %ΔX / %Δparam) at 2 and 16 threads, plus the uncontended case.
func runT3(o Options) ([]*Table, error) {
	type knob struct {
		name string
		set  func(l *machine.Latencies, f float64)
	}
	knobs := []knob{
		{"L1Hit", func(l *machine.Latencies, f float64) { l.L1Hit = scale(l.L1Hit, f) }},
		{"DirLookup", func(l *machine.Latencies, f float64) { l.DirLookup = scale(l.DirLookup, f) }},
		{"HopLatency", func(l *machine.Latencies, f float64) { l.HopLatency = scale(l.HopLatency, f) }},
		{"CrossSocketPenalty", func(l *machine.Latencies, f float64) { l.CrossSocketPenalty = scale(l.CrossSocketPenalty, f) }},
		{"ExecFAA", func(l *machine.Latencies, f float64) { l.ExecFAA = scale(l.ExecFAA, f) }},
		{"LLCHit", func(l *machine.Latencies, f float64) { l.LLCHit = scale(l.LLCHit, f) }},
		{"DRAM", func(l *machine.Latencies, f float64) { l.DRAM = scale(l.DRAM, f) }},
	}
	var tables []*Table
	for _, base := range o.machines() {
		t := NewTable("T3 ("+base.Name+"): elasticity of FAA throughput to +10% in each constant",
			"constant", "uncontended", "2 threads", "16 threads", "36 threads")
		for _, k := range knobs {
			row := []string{k.name}
			for _, n := range []int{1, 2, 16, 36} {
				if n > base.NumCores() {
					row = append(row, "-")
					continue
				}
				baseX := predictAt(base, n)
				pert := *base
				pert.Lat = base.Lat
				k.set(&pert.Lat, 1.10)
				pertX := predictAt(&pert, n)
				elasticity := (pertX - baseX) / baseX / 0.10 * 100
				row = append(row, pct(elasticity))
			}
			t.AddRow(row...)
		}
		t.AddNote("cells: %%ΔX per %%Δparam (x100); -100%% means the constant fully prices the bottleneck")
		tables = append(tables, t)
	}
	return tables, nil
}

func scale(v sim.Time, f float64) sim.Time { return sim.Time(float64(v) * f) }

func predictAt(m *machine.Machine, n int) float64 {
	cores, err := coresFor(m, nil, n)
	if err != nil {
		return 0
	}
	return core.NewDetailed(m).PredictHigh(atomics.FAA, cores, 0).ThroughputMops
}
