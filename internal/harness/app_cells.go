package harness

import (
	"fmt"

	"atomicsmodel/internal/apps"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/predict"
)

// This file is the apps counterpart of workload_cells.go: every
// apps.RunConfig-based experiment runner describes its cells as
// apps.Specs and keys them by content digest — machineKey + "/app@" +
// spec.Digest() — so two cells that differ in any effective knob
// (structure, depth, read fraction, critical-section length, seed,
// window) can never alias a cache entry, and two spellings of the same
// cell always share one. The runner-local fmt.Sprintf key fragments
// (which omitted exactly those knobs) are gone.

// appCell pairs a machine with a pinned app spec and carries the
// cell's precomputed cache key (FanoutKeyed's key func cannot return
// an error, so the digest is computed while building the list).
type appCell struct {
	m    *machine.Machine
	spec *apps.Spec
	key  string
}

// newAppCell validates and keys one cell. The spec must be pinned
// (single thread count) and carry its full effective configuration —
// including seed and measurement window — since the digest is the
// cell's cache identity.
func newAppCell(m *machine.Machine, s apps.Spec) (appCell, error) {
	d, err := s.Digest()
	if err != nil {
		return appCell{}, err
	}
	return appCell{m: m, spec: &s, key: m.Key() + "/app@" + d}, nil
}

// runAppCells fans the cells out through the keyed scheduler; results
// come back in cell order regardless of Par.
func runAppCells(o Options, cells []appCell) ([]*apps.RunResult, error) {
	return FanoutKeyed(o, cells, func(c appCell) string {
		return c.key
	}, func(ci int, c appCell) (*apps.RunResult, error) {
		return runAppSpecCell(o, ci, c.m, *c.spec)
	})
}

// runAppSpecCell resolves one pinned spec against a machine and runs
// it, forwarding the option set's observability, checking and fault
// knobs (which join the cache key at the cellKey layer, not the
// digest).
func runAppSpecCell(o Options, ci int, m *machine.Machine, sp apps.Spec) (*apps.RunResult, error) {
	cfg, err := sp.RunConfig(m)
	if err != nil {
		return nil, err
	}
	cfg.Metrics = o.MetricsOn()
	cfg.Check = o.CheckOn()
	cfg.Faults = o.CellFaults(ci)
	return apps.Run(cfg)
}

// baseAppSpec returns an app spec pinned to this option set's
// measurement window; runners fill in the structure, the swept knobs
// and the per-cell seed.
func (o Options) baseAppSpec() apps.Spec {
	return apps.Spec{WarmupPS: o.warmup(), DurationPS: o.duration()}
}

// AppExperiment wraps user-selected app specs as a runnable
// pseudo-experiment with ID "A" (the CLIs' -apps/-appfile path). It is
// deliberately not in the registry: its cells depend on the user's
// spec selection, not only on Options.
func AppExperiment(specs []*apps.Spec) *Experiment {
	return &Experiment{
		ID:    "A",
		Title: "Declarative app specs",
		Claim: "user-defined concurrent-object cells run digest-keyed, and the conflict model predicts each cell's throughput from its measured retry factor",
		Run: func(o Options) ([]*Table, error) {
			return runAppSuite(o, specs)
		},
	}
}

// runAppSuite runs every spec (thread ladders expanded, points beyond
// a machine's hardware threads skipped, machine-incompatible
// structures skipped with a note) on every selected machine, one table
// per machine × spec. Each row carries the conflict model's predicted
// throughput — the recipe evaluated with the cell's measured retry
// factor and elimination fraction — next to the simulated value, with
// the relative error.
func runAppSuite(o Options, specs []*apps.Spec) ([]*Table, error) {
	machines := o.machines()
	type group struct {
		m            *machine.Machine
		spec         *apps.Spec
		points       []*apps.Spec
		incompatible error
	}
	var groups []group
	var cells []appCell
	for _, m := range machines {
		for _, s := range specs {
			if err := s.Validate(); err != nil {
				return nil, err
			}
			g := group{m: m, spec: s}
			if err := s.CheckMachine(m); err != nil {
				g.incompatible = err
				groups = append(groups, g)
				continue
			}
			for _, pt := range s.Expand() {
				if pt.Threads > m.NumHWThreads() {
					continue
				}
				cell := *pt
				if cell.WarmupPS == 0 {
					cell.WarmupPS = o.warmup()
				}
				if cell.DurationPS == 0 {
					cell.DurationPS = o.duration()
				}
				if cell.Seed == 0 {
					cell.Seed = o.Seed + uint64(cell.Threads)
				}
				c, err := newAppCell(m, cell)
				if err != nil {
					return nil, err
				}
				g.points = append(g.points, c.spec)
				cells = append(cells, c)
			}
			groups = append(groups, g)
		}
	}
	results, err := runAppCells(o, cells)
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, g := range groups {
		t := NewTable(fmt.Sprintf("A (%s): %s", g.m.Name, g.spec.Label()),
			"threads", "sim Mops", "model Mops", "rel err", "attempts/op", "Jain")
		if g.incompatible != nil {
			t.AddNote("skipped: %v", g.incompatible)
			tables = append(tables, t)
			continue
		}
		for _, pt := range g.points {
			res := results[k]
			k++
			q := predict.Measured(res)
			mops, perr := predict.ForSpec(g.m, pt, q)
			if perr != nil {
				return nil, perr
			}
			relErr := 0.0
			if res.ThroughputMops > 0 {
				relErr = (mops - res.ThroughputMops) / res.ThroughputMops * 100
			}
			t.AddRow(itoa(pt.Threads), f2(res.ThroughputMops), f2(mops),
				pct(relErr), f2(q.RetryFactor), f3(res.Jain))
		}
		if len(g.points) == 0 {
			t.AddNote("no point of this spec fits %s's %d hardware threads", g.m.Name, g.m.NumHWThreads())
		} else if d, derr := g.spec.Digest(); derr == nil {
			t.AddNote("spec digest %s", d)
		}
		t.AddNote("model Mops: conflict model from the cell's measured retry factor (attempts/op)")
		if g.spec.Doc != "" {
			t.AddNote("%s", g.spec.Doc)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
