package harness

import (
	"strconv"
	"strings"

	"atomicsmodel/internal/plot"
)

// ChartFromTable converts a result table into an ASCII chart when the
// table has a numeric sweep in its first column (threads, work, read
// fraction, stripes): every other numeric column becomes a series. It
// returns false for tables that are not figure-shaped (T1, F1, T2,
// string-keyed rows).
func ChartFromTable(t *Table) (*plot.Chart, bool) {
	if len(t.Columns) < 2 || len(t.Rows) < 2 {
		return nil, false
	}
	// The first column must be numeric in every row.
	xs := make([]float64, 0, len(t.Rows))
	for _, row := range t.Rows {
		v, err := parseCell(row[0])
		if err != nil {
			return nil, false
		}
		xs = append(xs, v)
	}
	c := plot.NewChart(t.Title, t.Columns[0], "")
	series := 0
	for col := 1; col < len(t.Columns); col++ {
		ys := make([]float64, 0, len(t.Rows))
		ok := true
		for _, row := range t.Rows {
			v, err := parseCell(row[col])
			if err != nil {
				ok = false
				break
			}
			ys = append(ys, v)
		}
		if !ok {
			continue
		}
		c.Add(t.Columns[col], xs, ys)
		series++
	}
	if series == 0 {
		return nil, false
	}
	return c, true
}

// parseCell parses a numeric cell, tolerating %-suffixed values.
func parseCell(s string) (float64, error) {
	s = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(s), "%"))
	return strconv.ParseFloat(s, 64)
}
