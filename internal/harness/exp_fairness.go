package harness

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/workload"
)

func init() {
	Register(&Experiment{
		ID:    "F5",
		Title: "Fairness (Jain's index) vs thread count under different arbitration policies",
		Claim: "fairness of atomics depends on hardware arbitration; locality-biased arbitration starves distant cores",
		Run:   runF5,
	})
}

func runF5(o Options) ([]*Table, error) {
	arbs := []struct {
		name string
		mk   func(seed uint64) coherence.Arbiter
	}{
		{"fifo", func(uint64) coherence.Arbiter { return coherence.FIFOArbiter{} }},
		{"random", func(seed uint64) coherence.Arbiter { return coherence.NewRandomArbiter(seed) }},
		{"locality", func(uint64) coherence.Arbiter { return &coherence.LocalityArbiter{} }},
		{"loc-bounded", func(uint64) coherence.Arbiter { return &coherence.LocalityArbiter{MaxSkips: 64} }},
	}
	var tables []*Table
	for _, m := range o.machines() {
		cols := []string{"threads"}
		for _, a := range arbs {
			cols = append(cols, "FAA/"+a.name)
		}
		cols = append(cols, "FAA min/max (loc)", "CAS/fifo")
		t := NewTable("F5 ("+m.Name+"): Jain fairness index, high contention", cols...)
		for _, n := range o.threadSweep(m) {
			if n < 2 {
				continue
			}
			row := []string{itoa(n)}
			var locMinMax float64
			for _, a := range arbs {
				res, err := workload.Run(workload.Config{
					Machine: m, Threads: n, Primitive: atomics.FAA,
					Mode: workload.HighContention, Arbiter: a.mk(o.Seed + uint64(n)),
					Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed + uint64(n),
				})
				if err != nil {
					return nil, err
				}
				row = append(row, f3(res.Jain))
				if a.name == "locality" {
					locMinMax = res.MinMax
				}
			}
			row = append(row, f3(locMinMax))
			cas, err := workload.Run(workload.Config{
				Machine: m, Threads: n, Primitive: atomics.CAS,
				Mode:   workload.HighContention,
				Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed + uint64(n),
			})
			if err != nil {
				return nil, err
			}
			row = append(row, f3(cas.Jain))
			t.AddRow(row...)
		}
		t.AddNote("CAS/fifo Jain -> 1/N: the round winner keeps the freshest expected value")
		tables = append(tables, t)
	}
	return tables, nil
}
