package harness

import (
	"atomicsmodel/internal/atomics"
)

func init() {
	Register(&Experiment{
		ID:    "F5",
		Title: "Fairness (Jain's index) vs thread count under different arbitration policies",
		Claim: "fairness of atomics depends on hardware arbitration; locality-biased arbitration starves distant cores",
		Run:   runF5,
	})
}

func runF5(o Options) ([]*Table, error) {
	// Per row: one FAA cell per arbitration policy plus the trailing
	// CAS/fifo cell. Arbiters resolve by name inside each cell's spec so
	// every engine gets its own instance (they can be stateful); the
	// random arbiter's stream is seeded from the cell seed.
	arbs := []struct {
		name  string // display name
		arb   string // spec policy name
		skips int
	}{
		{"fifo", "fifo", 0},
		{"random", "random", 0},
		{"locality", "locality", 0},
		{"loc-bounded", "locality", 64},
	}
	machines := o.machines()
	var cells []workloadCell
	for _, m := range machines {
		for _, n := range o.threadSweep(m) {
			if n < 2 {
				continue
			}
			for _, a := range arbs {
				sp := o.baseSpec()
				sp.Primitive = atomics.FAA.String()
				sp.Arbiter = a.arb
				sp.ArbiterSkips = a.skips
				sp.Threads = n
				sp.Seed = o.Seed + uint64(n)
				c, err := newWorkloadCell(m, sp)
				if err != nil {
					return nil, err
				}
				cells = append(cells, c)
			}
			sp := o.baseSpec()
			sp.Primitive = atomics.CAS.String()
			sp.Threads = n
			sp.Seed = o.Seed + uint64(n)
			c, err := newWorkloadCell(m, sp)
			if err != nil {
				return nil, err
			}
			cells = append(cells, c)
		}
	}
	results, err := runWorkloadCells(o, cells)
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range machines {
		cols := []string{"threads"}
		for _, a := range arbs {
			cols = append(cols, "FAA/"+a.name)
		}
		cols = append(cols, "FAA min/max (loc)", "CAS/fifo")
		t := NewTable("F5 ("+m.Name+"): Jain fairness index, high contention", cols...)
		for _, n := range o.threadSweep(m) {
			if n < 2 {
				continue
			}
			row := []string{itoa(n)}
			var locMinMax float64
			for _, a := range arbs {
				res := results[k]
				k++
				row = append(row, f3(res.Jain))
				if a.name == "locality" {
					locMinMax = res.MinMax
				}
			}
			row = append(row, f3(locMinMax))
			cas := results[k]
			k++
			row = append(row, f3(cas.Jain))
			t.AddRow(row...)
		}
		t.AddNote("CAS/fifo Jain -> 1/N: the round winner keeps the freshest expected value")
		tables = append(tables, t)
	}
	return tables, nil
}
