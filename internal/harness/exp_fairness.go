package harness

import (
	"fmt"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/workload"
)

func init() {
	Register(&Experiment{
		ID:    "F5",
		Title: "Fairness (Jain's index) vs thread count under different arbitration policies",
		Claim: "fairness of atomics depends on hardware arbitration; locality-biased arbitration starves distant cores",
		Run:   runF5,
	})
}

func runF5(o Options) ([]*Table, error) {
	arbs := []struct {
		name string
		mk   func(seed uint64) coherence.Arbiter
	}{
		{"fifo", func(uint64) coherence.Arbiter { return coherence.FIFOArbiter{} }},
		{"random", func(seed uint64) coherence.Arbiter { return coherence.NewRandomArbiter(seed) }},
		{"locality", func(uint64) coherence.Arbiter { return &coherence.LocalityArbiter{} }},
		{"loc-bounded", func(uint64) coherence.Arbiter { return &coherence.LocalityArbiter{MaxSkips: 64} }},
	}
	machines := o.machines()
	// Per row: one cell per arbiter plus the trailing CAS/fifo cell.
	// arb == len(arbs) marks the CAS cell. Arbiters are constructed
	// inside the cell so each engine gets its own (they are stateful).
	type spec struct {
		m   *machine.Machine
		n   int
		arb int
	}
	var specs []spec
	for _, m := range machines {
		for _, n := range o.threadSweep(m) {
			if n < 2 {
				continue
			}
			for a := 0; a <= len(arbs); a++ {
				specs = append(specs, spec{m, n, a})
			}
		}
	}
	results, err := FanoutKeyed(o, specs, func(s spec) string {
		name := "cas-fifo"
		if s.arb < len(arbs) {
			name = "faa-" + arbs[s.arb].name
		}
		return fmt.Sprintf("%s/n=%d/%s", s.m.Key(), s.n, name)
	}, func(ci int, s spec) (*workload.Result, error) {
		if s.arb == len(arbs) {
			return workload.Run(workload.Config{
				Machine: s.m, Threads: s.n, Primitive: atomics.CAS,
				Mode:   workload.HighContention,
				Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed + uint64(s.n),
				Metrics: o.MetricsOn(), Check: o.CheckOn(), Faults: o.CellFaults(ci),
			})
		}
		return workload.Run(workload.Config{
			Machine: s.m, Threads: s.n, Primitive: atomics.FAA,
			Mode: workload.HighContention, Arbiter: arbs[s.arb].mk(o.Seed + uint64(s.n)),
			Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed + uint64(s.n),
			Metrics: o.MetricsOn(), Check: o.CheckOn(), Faults: o.CellFaults(ci),
		})
	})
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range machines {
		cols := []string{"threads"}
		for _, a := range arbs {
			cols = append(cols, "FAA/"+a.name)
		}
		cols = append(cols, "FAA min/max (loc)", "CAS/fifo")
		t := NewTable("F5 ("+m.Name+"): Jain fairness index, high contention", cols...)
		for _, n := range o.threadSweep(m) {
			if n < 2 {
				continue
			}
			row := []string{itoa(n)}
			var locMinMax float64
			for _, a := range arbs {
				res := results[k]
				k++
				row = append(row, f3(res.Jain))
				if a.name == "locality" {
					locMinMax = res.MinMax
				}
			}
			row = append(row, f3(locMinMax))
			cas := results[k]
			k++
			row = append(row, f3(cas.Jain))
			t.AddRow(row...)
		}
		t.AddNote("CAS/fifo Jain -> 1/N: the round winner keeps the freshest expected value")
		tables = append(tables, t)
	}
	return tables, nil
}
