package harness

import (
	"fmt"

	"atomicsmodel/internal/bottleneck"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/workload"
)

// FleetExperiment wraps workload specs as a fleet sweep: every spec
// runs on every machine in the registry (not just the default pair),
// metrics are forced on so each cell yields an occupancy snapshot, and
// the tables carry the internal/bottleneck rollup — per-resource
// utilization per ladder point, the saturating resource's verdict, and
// the knee thread count where it first crosses the threshold. See
// BOTTLENECKS.md for how to read the output. Like WorkloadExperiment
// it is not in the registry: its cells depend on the user's spec and
// machine selection. Cells share the same digest-keyed cache namespace
// as any other metrics-on workload cell ("FLEET|...|metrics=on|" +
// machineKey + "/wl@" + digest), so an interrupted sweep resumes
// without recomputing finished cells.
func FleetExperiment(specs []*workload.Spec, threshold float64) *Experiment {
	if threshold <= 0 {
		threshold = bottleneck.DefaultThreshold
	}
	return &Experiment{
		ID:    "FLEET",
		Title: "Fleet sweep: cross-architecture bottleneck analysis",
		Claim: "per-resource occupancy names which resource saturates first on each architecture, and at what thread count",
		Run: func(o Options) ([]*Table, error) {
			return runFleetSweep(o, specs, threshold)
		},
	}
}

// fleetMachines is the fleet's machine selection: an explicit
// -machines list wins; otherwise every registered spec (EPYC, Grace,
// KNL, XeonE5, XeonSP, ... — not machine.All()'s default pair).
func fleetMachines(o Options) ([]*machine.Machine, error) {
	if len(o.Machines) > 0 {
		return o.Machines, nil
	}
	var ms []*machine.Machine
	for _, name := range machine.Names() {
		m, err := machine.ByName(name)
		if err != nil {
			return nil, err
		}
		ms = append(ms, m)
	}
	return ms, nil
}

// runFleetSweep runs every spec ladder on every fleet machine and rolls
// each cell's metrics snapshot into a bottleneck report: one ladder
// table per machine x spec, then one cross-architecture summary table
// per spec with the per-machine verdict as columns.
func runFleetSweep(o Options, specs []*workload.Spec, threshold float64) ([]*Table, error) {
	machines, err := fleetMachines(o)
	if err != nil {
		return nil, err
	}
	o.Machines = machines
	// The rollup needs snapshots, so metrics are always on for fleet
	// cells — which also tags their cache keys "|metrics=on", keeping
	// them disjoint from metrics-off runs of the same spec.
	if o.Metrics == nil {
		o.Metrics = &MetricsCollector{}
	}

	type group struct {
		m      *machine.Machine
		spec   *workload.Spec
		points []*workload.Spec
	}
	var groups []group
	var cells []workloadCell
	for _, m := range machines {
		for _, s := range specs {
			if err := s.Validate(); err != nil {
				return nil, err
			}
			g := group{m: m, spec: s}
			for _, pt := range s.Expand() {
				if pt.Threads > m.NumHWThreads() {
					continue
				}
				cell := *pt
				if cell.WarmupPS == 0 {
					cell.WarmupPS = o.warmup()
				}
				if cell.DurationPS == 0 {
					cell.DurationPS = o.duration()
				}
				if cell.Seed == 0 {
					cell.Seed = o.Seed + uint64(cell.Threads)
				}
				c, err := newWorkloadCell(m, cell)
				if err != nil {
					return nil, err
				}
				g.points = append(g.points, c.spec)
				cells = append(cells, c)
			}
			groups = append(groups, g)
		}
	}
	results, err := runWorkloadCells(o, cells)
	if err != nil {
		return nil, err
	}

	// Per-machine ladder tables, accumulating each ladder's points for
	// knee detection and each machine's peak for the summary.
	type fleetRow struct {
		machine      string
		peakMops     float64
		peakThreads  int
		verdict      bottleneck.Verdict
		kneeThreads  int
		kneeResource string
	}
	summaries := map[*workload.Spec][]fleetRow{}
	var tables []*Table
	k := 0
	for _, g := range groups {
		t := NewTable(
			fmt.Sprintf("FLEET (%s): %s", g.m.Name, g.spec.Label()),
			"threads", "Mops", "dir util", "line util", "link util", "queue avg", "bottleneck")
		var points []bottleneck.Point
		row := fleetRow{machine: g.m.Name}
		for _, pt := range g.points {
			res := results[k]
			k++
			rep, aerr := bottleneck.Analyze(res.Metrics)
			if aerr != nil {
				return nil, fmt.Errorf("fleet cell %s/%s t=%d: %w", g.m.Name, g.spec.Label(), pt.Threads, aerr)
			}
			points = append(points, bottleneck.Point{Threads: pt.Threads, Report: rep})
			v := rep.Verdict(threshold)
			t.AddRow(itoa(pt.Threads), f2(res.ThroughputMops),
				utilCell(rep.Dir), utilCell(rep.Line), utilCell(rep.Link),
				f2(rep.QueueAvg), verdictCell(v))
			if res.ThroughputMops > row.peakMops {
				row.peakMops, row.peakThreads = res.ThroughputMops, pt.Threads
				row.verdict = v
			}
		}
		if len(g.points) == 0 {
			t.AddNote("no point of this spec fits %s's %d hardware threads", g.m.Name, g.m.NumHWThreads())
		} else {
			kn, kr, ku := bottleneck.Knee(points, threshold)
			row.kneeThreads, row.kneeResource = kn, kr
			if kn > 0 {
				t.AddNote("knee: %s utilization first exceeds %.0f%% at %d threads (%.0f%%)",
					kr, threshold*100, kn, ku*100)
			} else {
				t.AddNote("no resource exceeds %.0f%% utilization on this ladder", threshold*100)
			}
			if d, derr := g.spec.Digest(); derr == nil {
				t.AddNote("spec digest %s", d)
			}
		}
		summaries[g.spec] = append(summaries[g.spec], row)
		tables = append(tables, t)
	}

	// Cross-architecture summary: one table per spec, one row per
	// machine, the bottleneck verdict as a column.
	for _, s := range specs {
		rows := summaries[s]
		if rows == nil {
			continue
		}
		t := NewTable(
			fmt.Sprintf("FLEET summary: %s across %d machines", s.Label(), len(rows)),
			"machine", "peak Mops", "at threads", "bottleneck", "util at peak", "knee threads")
		for _, r := range rows {
			knee := "-"
			if r.kneeThreads > 0 {
				knee = fmt.Sprintf("%d (%s)", r.kneeThreads, r.kneeResource)
			}
			t.AddRow(r.machine, f2(r.peakMops), itoa(r.peakThreads),
				r.verdict.Resource, pct(r.verdict.Util*100), knee)
		}
		t.AddNote("bottleneck/util at peak: most-utilized resource in the peak-throughput cell; knee: first ladder point over %.0f%% (see BOTTLENECKS.md)", threshold*100)
		tables = append(tables, t)
	}
	return tables, nil
}

// utilCell renders one resource's utilization ("n/a" when the cell
// recorded no vector for it, e.g. links on a single-node topology).
func utilCell(u bottleneck.Utilization) string {
	if !u.OK {
		return "n/a"
	}
	return pct(u.Util * 100)
}

// verdictCell renders the saturating-resource column: resource plus
// utilization, flagged with '!' once past the threshold.
func verdictCell(v bottleneck.Verdict) string {
	if v.Resource == "none" {
		return "n/a"
	}
	mark := ""
	if v.Saturated {
		mark = " !"
	}
	return fmt.Sprintf("%s %s%s", v.Resource, pct(v.Util*100), mark)
}
