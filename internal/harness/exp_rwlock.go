package harness

import (
	"atomicsmodel/internal/apps"
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/sim"
)

func init() {
	Register(&Experiment{
		ID:    "F20",
		Title: "Design decision: central vs distributed (per-reader-slot) reader-writer locks",
		Claim: "read-mostly synchronization wants per-thread lines: a central RW word turns every read into a bounce",
		Run:   runF20,
	})
}

func runF20(o Options) ([]*Table, error) {
	fracs := []float64{0.50, 0.90, 0.98, 1.00}
	if o.Quick {
		fracs = []float64{0.50, 0.98}
	}
	const threads = 16
	var tables []*Table
	for _, m := range o.machines() {
		if threads > m.NumHWThreads() {
			continue
		}
		t := NewTable("F20 ("+m.Name+"): RW-lock sections/s (M), 16 threads, 20ns sections",
			"read fraction", "central (Mops)", "distributed (Mops)", "speedup", "violations")
		for _, rf := range fracs {
			rf := rf
			var central *apps.CentralRWLock
			cRes, err := apps.Run(apps.RunConfig{
				Machine: m, Threads: threads,
				Build: func(e *sim.Engine, mem *atomics.Memory) apps.App {
					central = apps.NewCentralRWLock(e, mem, rf, 20*sim.Nanosecond)
					return central
				},
				Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed,
			})
			if err != nil {
				return nil, err
			}
			var dist *apps.DistributedRWLock
			dRes, err := apps.Run(apps.RunConfig{
				Machine: m, Threads: threads,
				Build: func(e *sim.Engine, mem *atomics.Memory) apps.App {
					dist = apps.NewDistributedRWLock(e, mem, threads, rf, 20*sim.Nanosecond)
					return dist
				},
				Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(f2(rf), f2(cRes.ThroughputMops), f2(dRes.ThroughputMops),
				f2(dRes.ThroughputMops/cRes.ThroughputMops),
				itoa(central.Violations()+dist.Violations()))
		}
		t.AddNote("violations column is the in-simulator mutual-exclusion check (must be 0)")
		tables = append(tables, t)
	}
	return tables, nil
}
