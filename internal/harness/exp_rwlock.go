package harness

import (
	"fmt"

	"atomicsmodel/internal/apps"
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

func init() {
	Register(&Experiment{
		ID:    "F20",
		Title: "Design decision: central vs distributed (per-reader-slot) reader-writer locks",
		Claim: "read-mostly synchronization wants per-thread lines: a central RW word turns every read into a bounce",
		Run:   runF20,
	})
}

func runF20(o Options) ([]*Table, error) {
	fracs := []float64{0.50, 0.90, 0.98, 1.00}
	if o.Quick {
		fracs = []float64{0.50, 0.98}
	}
	const threads = 16
	var eligible []*machine.Machine
	for _, m := range o.machines() {
		if threads <= m.NumHWThreads() {
			eligible = append(eligible, m)
		}
	}
	// Two cells per row: central and distributed. Each carries its
	// mutual-exclusion violation count out of the cell. Fields are
	// exported so the cell survives the manifest cache's JSON round trip.
	type cell struct {
		Res        *apps.RunResult
		Violations int
	}
	type spec struct {
		m    *machine.Machine
		rf   float64
		dist bool
	}
	var specs []spec
	for _, m := range eligible {
		for _, rf := range fracs {
			specs = append(specs, spec{m, rf, false}, spec{m, rf, true})
		}
	}
	results, err := FanoutKeyed(o, specs, func(s spec) string {
		kind := "central"
		if s.dist {
			kind = "dist"
		}
		return fmt.Sprintf("%s/read=%v/%s", s.m.Key(), s.rf, kind)
	}, func(ci int, s spec) (cell, error) {
		var violations func() int
		build := func(e *sim.Engine, mem *atomics.Memory) apps.App {
			if s.dist {
				l := apps.NewDistributedRWLock(e, mem, threads, s.rf, 20*sim.Nanosecond)
				violations = l.Violations
				return l
			}
			l := apps.NewCentralRWLock(e, mem, s.rf, 20*sim.Nanosecond)
			violations = l.Violations
			return l
		}
		res, err := apps.Run(apps.RunConfig{
			Machine: s.m, Threads: threads, Build: build,
			Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed,
			Metrics: o.MetricsOn(), Check: o.CheckOn(), Faults: o.CellFaults(ci),
		})
		if err != nil {
			return cell{}, err
		}
		return cell{Res: res, Violations: violations()}, nil
	})
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range eligible {
		t := NewTable("F20 ("+m.Name+"): RW-lock sections/s (M), 16 threads, 20ns sections",
			"read fraction", "central (Mops)", "distributed (Mops)", "speedup", "violations")
		for _, rf := range fracs {
			central, dist := results[k], results[k+1]
			k += 2
			t.AddRow(f2(rf), f2(central.Res.ThroughputMops), f2(dist.Res.ThroughputMops),
				f2(dist.Res.ThroughputMops/central.Res.ThroughputMops),
				itoa(central.Violations+dist.Violations))
		}
		t.AddNote("violations column is the in-simulator mutual-exclusion check (must be 0)")
		tables = append(tables, t)
	}
	return tables, nil
}
