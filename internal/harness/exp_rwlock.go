package harness

import (
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

func init() {
	Register(&Experiment{
		ID:    "F20",
		Title: "Design decision: central vs distributed (per-reader-slot) reader-writer locks",
		Claim: "read-mostly synchronization wants per-thread lines: a central RW word turns every read into a bounce",
		Run:   runF20,
	})
}

func runF20(o Options) ([]*Table, error) {
	fracs := []float64{0.50, 0.90, 0.98, 1.00}
	if o.Quick {
		fracs = []float64{0.50, 0.98}
	}
	const threads = 16
	var eligible []*machine.Machine
	for _, m := range o.machines() {
		if threads <= m.NumHWThreads() {
			eligible = append(eligible, m)
		}
	}
	// Two cells per row: central and distributed. The mutual-exclusion
	// violation count rides in the RunResult, so the cells survive the
	// manifest cache's JSON round trip without a wrapper.
	var cells []appCell
	for _, m := range eligible {
		for _, rf := range fracs {
			for _, structure := range []string{"rwlock-central", "rwlock-distributed"} {
				sp := o.baseAppSpec()
				sp.Structure = structure
				sp.Threads = threads
				sp.ReadFraction = rf
				sp.CritPS = 20 * sim.Nanosecond
				if structure == "rwlock-distributed" {
					sp.Slots = threads
				}
				sp.Seed = o.Seed
				c, err := newAppCell(m, sp)
				if err != nil {
					return nil, err
				}
				cells = append(cells, c)
			}
		}
	}
	results, err := runAppCells(o, cells)
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range eligible {
		t := NewTable("F20 ("+m.Name+"): RW-lock sections/s (M), 16 threads, 20ns sections",
			"read fraction", "central (Mops)", "distributed (Mops)", "speedup", "violations")
		for _, rf := range fracs {
			central, dist := results[k], results[k+1]
			k += 2
			t.AddRow(f2(rf), f2(central.ThroughputMops), f2(dist.ThroughputMops),
				f2(dist.ThroughputMops/central.ThroughputMops),
				itoa(central.Violations+dist.Violations))
		}
		t.AddNote("violations column is the in-simulator mutual-exclusion check (must be 0)")
		tables = append(tables, t)
	}
	return tables, nil
}
