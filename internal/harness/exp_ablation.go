package harness

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/core"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/workload"
)

func init() {
	Register(&Experiment{
		ID:    "F13",
		Title: "Arbitration ablation: throughput vs fairness trade-off",
		Claim: "locality-biased arbitration shortens transfers (higher throughput) at the price of starvation; a skip bound recovers fairness",
		Run:   runF13,
	})
	Register(&Experiment{
		ID:    "F14",
		Title: "Protocol and topology ablation: MESIF forwarding and ideal crossbar",
		Claim: "the model decomposes contention cost into protocol serialization and topology distance; ablations isolate each term",
		Run:   runF14,
	})
	Register(&Experiment{
		ID:    "F15",
		Title: "Contention spreading: striped counters vs one hot line",
		Claim: "the model's remedy for a hot line is to split it; striping converts the high-contention setting into the low-contention one",
		Run:   runF15,
	})
}

func runF13(o Options) ([]*Table, error) {
	// All four policies are stateless (fifo and the locality variants),
	// so the spec seed only feeds the workload's own streams, exactly as
	// before the spec port.
	arbs := []struct {
		name  string // display name
		arb   string // spec policy name
		skips int
	}{
		{"fifo", "fifo", 0},
		{"locality", "locality", 0},
		{"loc-skip16", "locality", 16},
		{"loc-skip256", "locality", 256},
	}
	sweep := []int{8, 16, 24, 36}
	if o.Quick {
		sweep = []int{8, 16}
	}
	machines := o.machines()
	var cells []workloadCell
	for _, m := range machines {
		for _, n := range sweep {
			if n > m.NumHWThreads() {
				continue
			}
			for _, a := range arbs {
				sp := o.baseSpec()
				sp.Primitive = atomics.FAA.String()
				sp.Arbiter = a.arb
				sp.ArbiterSkips = a.skips
				sp.Threads = n
				sp.Seed = o.Seed + uint64(n)
				c, err := newWorkloadCell(m, sp)
				if err != nil {
					return nil, err
				}
				cells = append(cells, c)
			}
		}
	}
	results, err := runWorkloadCells(o, cells)
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range machines {
		md := core.NewDetailed(m)
		cols := []string{"threads"}
		for _, a := range arbs {
			cols = append(cols, a.name+" Mops", a.name+" Jain")
		}
		cols = append(cols, "locality model Mops", "locality model Jain")
		t := NewTable("F13 ("+m.Name+"): FAA under different line arbitration policies", cols...)
		for _, n := range sweep {
			if n > m.NumHWThreads() {
				continue
			}
			row := []string{itoa(n)}
			for range arbs {
				res := results[k]
				k++
				row = append(row, f2(res.ThroughputMops), f3(res.Jain))
			}
			cores, err := coresFor(m, nil, n)
			if err != nil {
				return nil, err
			}
			pred := md.PredictHighArb(atomics.FAA, cores, 0, core.ArbLocality)
			row = append(row, f2(pred.ThroughputMops), f3(pred.Jain))
			t.AddRow(row...)
		}
		t.AddNote("locality grants the nearest requester: shorter transfers, starved far cores; the model predicts the resulting monopoly")
		tables = append(tables, t)
	}
	return tables, nil
}

func runF14(o Options) ([]*Table, error) {
	machines := o.machines()
	fracs := []float64{0.9, 0.99}

	// This runner mixes cell shapes (latency probes, mix runs, the
	// crossbar table), so it issues three keyed fan-outs: every cell gets
	// a stable config key and participates in the manifest/resume cache.
	type pair struct{ base, mesif *machine.Machine }
	pairs := make([]pair, len(machines))
	for i, base := range machines {
		pairs[i] = pair{base, cloneWithForwarding(base)}
	}

	// Cold read of a Shared line, one probe per protocol variant. The
	// MESIF clone's Name carries a "+F" suffix, so it keys distinctly.
	var latMachines []*machine.Machine
	for _, p := range pairs {
		latMachines = append(latMachines, p.base, p.mesif)
	}
	lats, err := FanoutKeyed(o, latMachines, func(m *machine.Machine) string {
		return "sharedlat/" + m.Key()
	}, func(_ int, m *machine.Machine) (sim.Time, error) {
		return sharedReadLatency(m)
	})
	if err != nil {
		return nil, err
	}

	var mixCells []workloadCell
	for _, p := range pairs {
		for _, rf := range fracs {
			for _, m := range []*machine.Machine{p.base, p.mesif} {
				sp := o.baseSpec()
				sp.Primitive = atomics.FAA.String()
				sp.Mode = workload.ReadWriteMix.String()
				sp.ReadFraction = rf
				sp.Threads = 16
				sp.Seed = o.Seed
				c, err := newWorkloadCell(m, sp)
				if err != nil {
					return nil, err
				}
				c.key = "mix/" + c.key
				mixCells = append(mixCells, c)
			}
		}
	}
	mixes, err := runWorkloadCells(o, mixCells)
	if err != nil {
		return nil, err
	}

	// Topology ablation: same core count and latencies on an ideal
	// 1-hop crossbar, isolating distance effects from serialization.
	ideal := machine.Ideal(16)
	var topoMachines []*machine.Machine
	for _, m := range append(append([]*machine.Machine{}, machines...), ideal) {
		if m.NumHWThreads() < 16 {
			continue
		}
		topoMachines = append(topoMachines, m)
	}
	var topoCells []workloadCell
	for _, m := range topoMachines {
		sp := o.baseSpec()
		sp.Primitive = atomics.FAA.String()
		sp.Threads = 16
		sp.Seed = o.Seed
		c, err := newWorkloadCell(m, sp)
		if err != nil {
			return nil, err
		}
		c.key = "topo/" + c.key
		topoCells = append(topoCells, c)
	}
	topoRes, err := runWorkloadCells(o, topoCells)
	if err != nil {
		return nil, err
	}

	var tables []*Table
	for i, base := range machines {
		t := NewTable("F14 ("+base.Name+"): protocol ablation (MESI vs MESIF forwarding)",
			"measurement", "MESI", "MESIF", "delta")
		a, b := lats[2*i], lats[2*i+1]
		t.AddRow("cold read of S line (ns)", ns(a), ns(b),
			pct((b.Nanoseconds()-a.Nanoseconds())/a.Nanoseconds()*100))
		for fi, rf := range fracs {
			ra, rb := mixes[(i*len(fracs)+fi)*2], mixes[(i*len(fracs)+fi)*2+1]
			delta := 0.0
			if ra.ThroughputMops > 0 {
				delta = (rb.ThroughputMops - ra.ThroughputMops) / ra.ThroughputMops * 100
			}
			t.AddRow(fmtReadMix(rf)+" x16 (Mops)", f2(ra.ThroughputMops), f2(rb.ThroughputMops), pct(delta))
		}
		t.AddNote("forwarding shortens cold reads of Shared lines; RMW-heavy mixes purge sharers before forwarding can help")
		tables = append(tables, t)
	}

	t := NewTable("F14 (topology): 16-thread FAA, real topology vs ideal crossbar",
		"machine", "high contention (Mops)", "mean latency (ns)")
	for i, m := range topoMachines {
		t.AddRow(m.Name, f2(topoRes[i].ThroughputMops), ns(topoRes[i].Latency.Mean()))
	}
	t.AddNote("what remains on the crossbar is pure protocol serialization (the model's s term)")
	tables = append(tables, t)
	return tables, nil
}

// cloneWithForwarding copies a machine description and enables MESIF.
func cloneWithForwarding(m *machine.Machine) *machine.Machine {
	c := *m
	c.Name = m.Name + "+F"
	c.ForwardSharer = true
	return &c
}

func fmtReadMix(rf float64) string {
	return f2(rf*100) + "% reads"
}

// sharedReadLatency stages a line Shared in two mid-machine caches and
// measures a cold read from an adjacent core: the access MESIF
// accelerates (the sharer sits next door; the home slice does not).
func sharedReadLatency(m *machine.Machine) (sim.Time, error) {
	eng := sim.NewEngine()
	mem, err := atomics.NewMemory(eng, m, nil)
	if err != nil {
		return 0, err
	}
	// A line whose home is node 0, shared by two mid-socket cores, read
	// by their neighbour.
	line := coherence.LineID(uint64(m.Topo.Nodes()))
	sharerA := m.CoresPerSocket / 2
	sharerB := sharerA + 1
	reader := sharerA + 2
	var out sim.Time
	step := func(f func(done func())) {
		f(func() {})
		eng.Drain()
	}
	step(func(done func()) { mem.StoreOp(sharerA, line, 1, func(atomics.Result) { done() }) })
	step(func(done func()) { mem.LoadOp(sharerB, line, func(atomics.Result) { done() }) })
	mem.LoadOp(reader, line, func(r atomics.Result) { out = r.Latency })
	eng.Drain()
	return out, nil
}

func runF15(o Options) ([]*Table, error) {
	stripeCounts := []int{1, 2, 4, 8, 16, 32}
	if o.Quick {
		stripeCounts = []int{1, 4, 16}
	}
	const threads = 16
	var eligible []*machine.Machine
	for _, m := range o.machines() {
		if threads <= m.NumHWThreads() {
			eligible = append(eligible, m)
		}
	}
	var cells []appCell
	for _, m := range eligible {
		for _, sc := range stripeCounts {
			for _, reads := range []float64{0, 0.05} {
				sp := o.baseAppSpec()
				sp.Structure = "counter-striped"
				sp.Threads = threads
				sp.Stripes = sc
				sp.ReadFraction = reads
				sp.Seed = o.Seed
				c, err := newAppCell(m, sp)
				if err != nil {
					return nil, err
				}
				cells = append(cells, c)
			}
		}
	}
	results, err := runAppCells(o, cells)
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range eligible {
		t := NewTable("F15 ("+m.Name+"): striped counter, 16 writers",
			"stripes", "increments (Mops)", "speedup vs 1", "with 5% reads (Mops)")
		var base float64
		for _, sc := range stripeCounts {
			writeOnly, withReads := results[k], results[k+1]
			k += 2
			if sc == 1 {
				base = writeOnly.ThroughputMops
			}
			t.AddRow(itoa(sc), f2(writeOnly.ThroughputMops),
				f2(writeOnly.ThroughputMops/base), f2(withReads.ThroughputMops))
		}
		t.AddNote("16 stripes for 16 writers = private lines = the low-contention setting")
		tables = append(tables, t)
	}
	return tables, nil
}
