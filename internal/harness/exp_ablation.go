package harness

import (
	"atomicsmodel/internal/apps"
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/core"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/workload"
)

func init() {
	Register(&Experiment{
		ID:    "F13",
		Title: "Arbitration ablation: throughput vs fairness trade-off",
		Claim: "locality-biased arbitration shortens transfers (higher throughput) at the price of starvation; a skip bound recovers fairness",
		Run:   runF13,
	})
	Register(&Experiment{
		ID:    "F14",
		Title: "Protocol and topology ablation: MESIF forwarding and ideal crossbar",
		Claim: "the model decomposes contention cost into protocol serialization and topology distance; ablations isolate each term",
		Run:   runF14,
	})
	Register(&Experiment{
		ID:    "F15",
		Title: "Contention spreading: striped counters vs one hot line",
		Claim: "the model's remedy for a hot line is to split it; striping converts the high-contention setting into the low-contention one",
		Run:   runF15,
	})
}

func runF13(o Options) ([]*Table, error) {
	arbs := []struct {
		name string
		mk   func(seed uint64) coherence.Arbiter
	}{
		{"fifo", func(uint64) coherence.Arbiter { return coherence.FIFOArbiter{} }},
		{"locality", func(uint64) coherence.Arbiter { return &coherence.LocalityArbiter{} }},
		{"loc-skip16", func(uint64) coherence.Arbiter { return &coherence.LocalityArbiter{MaxSkips: 16} }},
		{"loc-skip256", func(uint64) coherence.Arbiter { return &coherence.LocalityArbiter{MaxSkips: 256} }},
	}
	var tables []*Table
	for _, m := range o.machines() {
		md := core.NewDetailed(m)
		cols := []string{"threads"}
		for _, a := range arbs {
			cols = append(cols, a.name+" Mops", a.name+" Jain")
		}
		cols = append(cols, "locality model Mops", "locality model Jain")
		t := NewTable("F13 ("+m.Name+"): FAA under different line arbitration policies", cols...)
		sweep := []int{8, 16, 24, 36}
		if o.Quick {
			sweep = []int{8, 16}
		}
		for _, n := range sweep {
			if n > m.NumHWThreads() {
				continue
			}
			row := []string{itoa(n)}
			for _, a := range arbs {
				res, err := workload.Run(workload.Config{
					Machine: m, Threads: n, Primitive: atomics.FAA,
					Mode: workload.HighContention, Arbiter: a.mk(o.Seed),
					Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed + uint64(n),
				})
				if err != nil {
					return nil, err
				}
				row = append(row, f2(res.ThroughputMops), f3(res.Jain))
			}
			cores, err := coresFor(m, nil, n)
			if err != nil {
				return nil, err
			}
			pred := md.PredictHighArb(atomics.FAA, cores, 0, core.ArbLocality)
			row = append(row, f2(pred.ThroughputMops), f3(pred.Jain))
			t.AddRow(row...)
		}
		t.AddNote("locality grants the nearest requester: shorter transfers, starved far cores; the model predicts the resulting monopoly")
		tables = append(tables, t)
	}
	return tables, nil
}

func runF14(o Options) ([]*Table, error) {
	var tables []*Table
	for _, base := range o.machines() {
		mesif := cloneWithForwarding(base)
		t := NewTable("F14 ("+base.Name+"): protocol ablation (MESI vs MESIF forwarding)",
			"measurement", "MESI", "MESIF", "delta")

		// Latency level, where forwarding acts: a cold reader of a line
		// that is Shared in caches far from its home.
		a, err := sharedReadLatency(base)
		if err != nil {
			return nil, err
		}
		b, err := sharedReadLatency(mesif)
		if err != nil {
			return nil, err
		}
		t.AddRow("cold read of S line (ns)", ns(a), ns(b),
			pct((b.Nanoseconds()-a.Nanoseconds())/a.Nanoseconds()*100))

		// Throughput level: RMW-interleaved sharing. Every write purges
		// the sharer set, so forwarding has nothing to forward — an
		// honest negative result the note explains.
		for _, rf := range []float64{0.9, 0.99} {
			cfg := func(m *machine.Machine) workload.Config {
				return workload.Config{Machine: m, Threads: 16, Primitive: atomics.FAA,
					Mode: workload.ReadWriteMix, ReadFraction: rf,
					Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed}
			}
			ra, err := workload.Run(cfg(base))
			if err != nil {
				return nil, err
			}
			rb, err := workload.Run(cfg(mesif))
			if err != nil {
				return nil, err
			}
			delta := 0.0
			if ra.ThroughputMops > 0 {
				delta = (rb.ThroughputMops - ra.ThroughputMops) / ra.ThroughputMops * 100
			}
			t.AddRow(fmtReadMix(rf)+" x16 (Mops)", f2(ra.ThroughputMops), f2(rb.ThroughputMops), pct(delta))
		}
		t.AddNote("forwarding shortens cold reads of Shared lines; RMW-heavy mixes purge sharers before forwarding can help")
		tables = append(tables, t)
	}

	// Topology ablation: same core count and latencies on an ideal
	// 1-hop crossbar, isolating distance effects from serialization.
	ideal := machine.Ideal(16)
	t := NewTable("F14 (topology): 16-thread FAA, real topology vs ideal crossbar",
		"machine", "high contention (Mops)", "mean latency (ns)")
	for _, m := range append(o.machines(), ideal) {
		if m.NumHWThreads() < 16 {
			continue
		}
		res, err := workload.Run(workload.Config{
			Machine: m, Threads: 16, Primitive: atomics.FAA, Mode: workload.HighContention,
			Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(m.Name, f2(res.ThroughputMops), ns(res.Latency.Mean()))
	}
	t.AddNote("what remains on the crossbar is pure protocol serialization (the model's s term)")
	tables = append(tables, t)
	return tables, nil
}

// cloneWithForwarding copies a machine description and enables MESIF.
func cloneWithForwarding(m *machine.Machine) *machine.Machine {
	c := *m
	c.Name = m.Name + "+F"
	c.ForwardSharer = true
	return &c
}

func fmtReadMix(rf float64) string {
	return f2(rf*100) + "% reads"
}

// sharedReadLatency stages a line Shared in two mid-machine caches and
// measures a cold read from an adjacent core: the access MESIF
// accelerates (the sharer sits next door; the home slice does not).
func sharedReadLatency(m *machine.Machine) (sim.Time, error) {
	eng := sim.NewEngine()
	mem, err := atomics.NewMemory(eng, m, nil)
	if err != nil {
		return 0, err
	}
	// A line whose home is node 0, shared by two mid-socket cores, read
	// by their neighbour.
	line := coherence.LineID(uint64(m.Topo.Nodes()))
	sharerA := m.CoresPerSocket / 2
	sharerB := sharerA + 1
	reader := sharerA + 2
	var out sim.Time
	step := func(f func(done func())) {
		f(func() {})
		eng.Drain()
	}
	step(func(done func()) { mem.StoreOp(sharerA, line, 1, func(atomics.Result) { done() }) })
	step(func(done func()) { mem.LoadOp(sharerB, line, func(atomics.Result) { done() }) })
	mem.LoadOp(reader, line, func(r atomics.Result) { out = r.Latency })
	eng.Drain()
	return out, nil
}

func runF15(o Options) ([]*Table, error) {
	stripeCounts := []int{1, 2, 4, 8, 16, 32}
	if o.Quick {
		stripeCounts = []int{1, 4, 16}
	}
	const threads = 16
	var tables []*Table
	for _, m := range o.machines() {
		if threads > m.NumHWThreads() {
			continue
		}
		t := NewTable("F15 ("+m.Name+"): striped counter, 16 writers",
			"stripes", "increments (Mops)", "speedup vs 1", "with 5% reads (Mops)")
		var base float64
		for _, sc := range stripeCounts {
			sc := sc
			writeOnly, err := apps.Run(apps.RunConfig{
				Machine: m, Threads: threads,
				Build: func(e *sim.Engine, mem *atomics.Memory) apps.App {
					return apps.NewStripedCounter(mem, sc, 0)
				},
				Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed,
			})
			if err != nil {
				return nil, err
			}
			withReads, err := apps.Run(apps.RunConfig{
				Machine: m, Threads: threads,
				Build: func(e *sim.Engine, mem *atomics.Memory) apps.App {
					return apps.NewStripedCounter(mem, sc, 0.05)
				},
				Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed,
			})
			if err != nil {
				return nil, err
			}
			if sc == 1 {
				base = writeOnly.ThroughputMops
			}
			t.AddRow(itoa(sc), f2(writeOnly.ThroughputMops),
				f2(writeOnly.ThroughputMops/base), f2(withReads.ThroughputMops))
		}
		t.AddNote("16 stripes for 16 writers = private lines = the low-contention setting")
		tables = append(tables, t)
	}
	return tables, nil
}
