package harness

import (
	"fmt"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/core"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/workload"
)

func init() {
	Register(&Experiment{
		ID:    "F6",
		Title: "Energy per operation vs thread count (high and low contention)",
		Claim: "contention wastes energy: J/op grows with threads when the line serializes, stays flat when it does not",
		Run:   runF6,
	})
}

func runF6(o Options) ([]*Table, error) {
	machines := o.machines()
	// Three cells per row: FAA high, CAS high, FAA low.
	cells := []struct {
		p    atomics.Primitive
		mode workload.Mode
	}{
		{atomics.FAA, workload.HighContention},
		{atomics.CAS, workload.HighContention},
		{atomics.FAA, workload.LowContention},
	}
	type spec struct {
		m *machine.Machine
		n int
		c int
	}
	var specs []spec
	for _, m := range machines {
		for _, n := range o.threadSweep(m) {
			for c := range cells {
				specs = append(specs, spec{m, n, c})
			}
		}
	}
	results, err := FanoutKeyed(o, specs, func(s spec) string {
		return fmt.Sprintf("%s/n=%d/%s-%s", s.m.Key(), s.n, cells[s.c].p, cells[s.c].mode)
	}, func(ci int, s spec) (*workload.Result, error) {
		return workload.Run(workload.Config{
			Machine: s.m, Threads: s.n, Primitive: cells[s.c].p, Mode: cells[s.c].mode,
			Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed + uint64(s.n),
			Metrics: o.MetricsOn(), Check: o.CheckOn(), Faults: o.CellFaults(ci),
		})
	})
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range machines {
		md := core.NewDetailed(m)
		t := NewTable("F6 ("+m.Name+"): energy per successful op (nJ)",
			"threads", "FAA high", "model FAA high", "CAS high", "FAA low", "avg power high (W)")
		for _, n := range o.threadSweep(m) {
			cores, err := coresFor(m, nil, n)
			if err != nil {
				return nil, err
			}
			faaHigh, casHigh, faaLow := results[k], results[k+1], results[k+2]
			k += 3
			pred := md.PredictHigh(atomics.FAA, cores, 0)
			t.AddRow(itoa(n),
				f1(faaHigh.Energy.PerOpNJ), f1(pred.EnergyPerOpNJ),
				f1(casHigh.Energy.PerOpNJ), f1(faaLow.Energy.PerOpNJ),
				f1(faaHigh.Energy.AvgPowerW))
		}
		t.AddNote("high contention: threads spin while one op progresses, so J/op grows ~linearly")
		tables = append(tables, t)
	}
	return tables, nil
}
