package harness

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/core"
	"atomicsmodel/internal/workload"
)

func init() {
	Register(&Experiment{
		ID:    "F6",
		Title: "Energy per operation vs thread count (high and low contention)",
		Claim: "contention wastes energy: J/op grows with threads when the line serializes, stays flat when it does not",
		Run:   runF6,
	})
}

func runF6(o Options) ([]*Table, error) {
	var tables []*Table
	for _, m := range o.machines() {
		md := core.NewDetailed(m)
		t := NewTable("F6 ("+m.Name+"): energy per successful op (nJ)",
			"threads", "FAA high", "model FAA high", "CAS high", "FAA low", "avg power high (W)")
		for _, n := range o.threadSweep(m) {
			cores, err := coresFor(m, nil, n)
			if err != nil {
				return nil, err
			}
			faaHigh, err := workload.Run(workload.Config{
				Machine: m, Threads: n, Primitive: atomics.FAA, Mode: workload.HighContention,
				Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed + uint64(n),
			})
			if err != nil {
				return nil, err
			}
			casHigh, err := workload.Run(workload.Config{
				Machine: m, Threads: n, Primitive: atomics.CAS, Mode: workload.HighContention,
				Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed + uint64(n),
			})
			if err != nil {
				return nil, err
			}
			faaLow, err := workload.Run(workload.Config{
				Machine: m, Threads: n, Primitive: atomics.FAA, Mode: workload.LowContention,
				Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed + uint64(n),
			})
			if err != nil {
				return nil, err
			}
			pred := md.PredictHigh(atomics.FAA, cores, 0)
			t.AddRow(itoa(n),
				f1(faaHigh.Energy.PerOpNJ), f1(pred.EnergyPerOpNJ),
				f1(casHigh.Energy.PerOpNJ), f1(faaLow.Energy.PerOpNJ),
				f1(faaHigh.Energy.AvgPowerW))
		}
		t.AddNote("high contention: threads spin while one op progresses, so J/op grows ~linearly")
		tables = append(tables, t)
	}
	return tables, nil
}
