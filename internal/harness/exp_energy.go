package harness

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/core"
	"atomicsmodel/internal/workload"
)

func init() {
	Register(&Experiment{
		ID:    "F6",
		Title: "Energy per operation vs thread count (high and low contention)",
		Claim: "contention wastes energy: J/op grows with threads when the line serializes, stays flat when it does not",
		Run:   runF6,
	})
}

func runF6(o Options) ([]*Table, error) {
	machines := o.machines()
	// Three cells per row: FAA high, CAS high, FAA low.
	cells := []struct {
		p    atomics.Primitive
		mode workload.Mode
	}{
		{atomics.FAA, workload.HighContention},
		{atomics.CAS, workload.HighContention},
		{atomics.FAA, workload.LowContention},
	}
	var wcells []workloadCell
	for _, m := range machines {
		for _, n := range o.threadSweep(m) {
			for _, c := range cells {
				sp := o.baseSpec()
				sp.Primitive = c.p.String()
				sp.Mode = c.mode.String()
				sp.Threads = n
				sp.Seed = o.Seed + uint64(n)
				wc, err := newWorkloadCell(m, sp)
				if err != nil {
					return nil, err
				}
				wcells = append(wcells, wc)
			}
		}
	}
	results, err := runWorkloadCells(o, wcells)
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range machines {
		md := core.NewDetailed(m)
		t := NewTable("F6 ("+m.Name+"): energy per successful op (nJ)",
			"threads", "FAA high", "model FAA high", "CAS high", "FAA low", "avg power high (W)")
		for _, n := range o.threadSweep(m) {
			cores, err := coresFor(m, nil, n)
			if err != nil {
				return nil, err
			}
			faaHigh, casHigh, faaLow := results[k], results[k+1], results[k+2]
			k += 3
			pred := md.PredictHigh(atomics.FAA, cores, 0)
			t.AddRow(itoa(n),
				f1(faaHigh.Energy.PerOpNJ), f1(pred.EnergyPerOpNJ),
				f1(casHigh.Energy.PerOpNJ), f1(faaLow.Energy.PerOpNJ),
				f1(faaHigh.Energy.AvgPowerW))
		}
		t.AddNote("high contention: threads spin while one op progresses, so J/op grows ~linearly")
		tables = append(tables, t)
	}
	return tables, nil
}
