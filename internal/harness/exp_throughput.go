package harness

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/core"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
	"atomicsmodel/internal/workload"
)

func init() {
	Register(&Experiment{
		ID:    "F3",
		Title: "High-contention throughput vs thread count",
		Claim: "throughput in the high-contention setting: FAA/SWAP/TAS saturate; CAS decays with retries",
		Run:   runF3,
	})
	Register(&Experiment{
		ID:    "F4",
		Title: "CAS success rate and retries vs thread count",
		Claim: "why CAS loses: failed attempts still pay a full line transfer",
		Run:   runF4,
	})
	Register(&Experiment{
		ID:    "F8",
		Title: "Throughput vs local work (contention crossover)",
		Claim: "local work moves the workload from the server-bound to the population-bound regime",
		Run:   runF8,
	})
	Register(&Experiment{
		ID:    "F12",
		Title: "Throughput vs read fraction on a shared line",
		Claim: "reads scale (shared copies); every added RMW share drags throughput to the bounce rate",
		Run:   runF12,
	})
}

func runF3(o Options) ([]*Table, error) {
	prims := atomics.All()
	machines := o.machines()
	var cells []workloadCell
	for _, m := range machines {
		for _, n := range o.threadSweep(m) {
			for _, p := range prims {
				sp := o.baseSpec()
				sp.Primitive = p.String()
				sp.Threads = n
				sp.Seed = o.Seed + uint64(n)
				c, err := newWorkloadCell(m, sp)
				if err != nil {
					return nil, err
				}
				cells = append(cells, c)
			}
		}
	}
	results, err := runWorkloadCells(o, cells)
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range machines {
		cols := []string{"threads"}
		for _, p := range prims {
			cols = append(cols, p.String()+" (Mops)")
		}
		t := NewTable("F3 ("+m.Name+"): successful-op throughput under high contention", cols...)
		for _, n := range o.threadSweep(m) {
			row := []string{itoa(n)}
			for range prims {
				row = append(row, f2(results[k].ThroughputMops))
				k++
			}
			t.AddRow(row...)
		}
		t.AddNote("CAS column counts successful swaps only; its attempts run at the FAA rate")
		tables = append(tables, t)
	}
	return tables, nil
}

func runF4(o Options) ([]*Table, error) {
	machines := o.machines()
	var cells []workloadCell
	for _, m := range machines {
		for _, n := range o.threadSweep(m) {
			sp := o.baseSpec()
			sp.Primitive = atomics.CAS.String()
			sp.Threads = n
			sp.Seed = o.Seed + uint64(n)
			c, err := newWorkloadCell(m, sp)
			if err != nil {
				return nil, err
			}
			cells = append(cells, c)
		}
	}
	results, err := runWorkloadCells(o, cells)
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range machines {
		t := NewTable("F4 ("+m.Name+"): CAS under high contention",
			"threads", "attempts (Mops)", "successes (Mops)", "success rate",
			"retries/success", "model rate (fifo)", "model rate (random)")
		for _, n := range o.threadSweep(m) {
			res := results[k]
			k++
			retries := 0.0
			if res.Ops > 0 {
				retries = float64(res.Failures) / float64(res.Ops)
			}
			t.AddRow(itoa(n),
				f2(stMops(res.Attempts, res)), f2(res.ThroughputMops),
				f3(res.SuccessRate()), f2(retries),
				f3(core.CASSuccessRateFIFO(n)), f3(core.CASSuccessRateRandom(n)))
		}
		t.AddNote("FIFO arbitration makes the last winner's expected value fresh: one success per round")
		tables = append(tables, t)
	}
	return tables, nil
}

func stMops(count uint64, res *workload.Result) float64 {
	return float64(count) / res.MeasuredFor.Seconds() / 1e6
}

func runF8(o Options) ([]*Table, error) {
	works := []sim.Time{0, 50 * sim.Nanosecond, 100 * sim.Nanosecond, 200 * sim.Nanosecond,
		400 * sim.Nanosecond, 800 * sim.Nanosecond, 1600 * sim.Nanosecond,
		3200 * sim.Nanosecond, 6400 * sim.Nanosecond}
	if o.Quick {
		works = []sim.Time{0, 200 * sim.Nanosecond, 1600 * sim.Nanosecond, 6400 * sim.Nanosecond}
	}
	const threads = 16
	var eligible []*machine.Machine
	for _, m := range o.machines() {
		if threads <= m.NumHWThreads() {
			eligible = append(eligible, m)
		}
	}
	var cells []workloadCell
	for _, m := range eligible {
		for _, w := range works {
			sp := o.baseSpec()
			sp.Primitive = atomics.FAA.String()
			sp.Threads = threads
			sp.LocalWorkPS = w
			sp.Seed = o.Seed
			c, err := newWorkloadCell(m, sp)
			if err != nil {
				return nil, err
			}
			cells = append(cells, c)
		}
	}
	results, err := runWorkloadCells(o, cells)
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range eligible {
		md := core.NewDetailed(m)
		cores, err := coresFor(m, nil, threads)
		if err != nil {
			return nil, err
		}
		t := NewTable("F8 ("+m.Name+"): FAA throughput vs local work, 16 threads",
			"work (ns)", "sim (Mops)", "model (Mops)", "sim latency (ns)", "model latency (ns)")
		for _, w := range works {
			res := results[k]
			k++
			pred := md.PredictHigh(atomics.FAA, cores, w)
			t.AddRow(ns(w), f2(res.ThroughputMops), f2(pred.ThroughputMops),
				ns(res.Latency.Mean()), ns(pred.AttemptLatency))
		}
		t.AddNote("crossover where 16/(s+w) < 1/s: beyond it the line is no longer the bottleneck")
		tables = append(tables, t)
	}
	return tables, nil
}

func runF12(o Options) ([]*Table, error) {
	fracs := []float64{0, 0.5, 0.9, 0.99, 1.0}
	const threads = 16
	var eligible []*machine.Machine
	for _, m := range o.machines() {
		if threads <= m.NumHWThreads() {
			eligible = append(eligible, m)
		}
	}
	var cells []workloadCell
	for _, m := range eligible {
		for _, rf := range fracs {
			sp := o.baseSpec()
			sp.Primitive = atomics.FAA.String()
			sp.Mode = workload.ReadWriteMix.String()
			sp.ReadFraction = rf
			sp.Threads = threads
			sp.Seed = o.Seed
			c, err := newWorkloadCell(m, sp)
			if err != nil {
				return nil, err
			}
			cells = append(cells, c)
		}
	}
	results, err := runWorkloadCells(o, cells)
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range eligible {
		t := NewTable("F12 ("+m.Name+"): FAA/Load mix on one shared line, 16 threads",
			"read fraction", "throughput (Mops)", "local-hit rate", "remote transfers/op")
		for _, rf := range fracs {
			res := results[k]
			k++
			localRate, remotePerOp := 0.0, 0.0
			if res.Coh.Accesses > 0 {
				localRate = float64(res.Coh.LocalHits) / float64(res.Coh.Accesses)
			}
			if res.Ops > 0 {
				remotePerOp = float64(res.Coh.RemoteXfers) / float64(res.Ops)
			}
			t.AddRow(f2(rf), f2(res.ThroughputMops), f3(localRate), f3(remotePerOp))
		}
		t.AddNote("pure loads leave the line shared: all but the first access per epoch hit locally")
		tables = append(tables, t)
	}
	return tables, nil
}
