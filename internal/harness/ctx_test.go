package harness

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"atomicsmodel/internal/runlog"
)

// TestRunCellsContextPreCanceled: a context already dead at entry means
// no cell runs at all — the first claim fails with a CellCanceledError
// that unwraps to the context's own error.
func TestRunCellsContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	err := RunCellsContext(ctx, Options{Par: 1}, 4, func(i int) error {
		ran++
		return nil
	})
	if ran != 0 {
		t.Fatalf("%d cells ran under a dead context", ran)
	}
	var ce *CellCanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CellCanceledError", err)
	}
	if ce.Cell != 0 {
		t.Errorf("canceled cell = %d, want 0 (the first claim)", ce.Cell)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err %v does not unwrap to context.Canceled", err)
	}
}

// TestRunCellsContextDeadline: deadline expiry reads as
// context.DeadlineExceeded through the cell error.
func TestRunCellsContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := RunCellsContext(ctx, Options{Par: 1}, 1, func(i int) error { return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded through the cell error", err)
	}
}

// TestRunCellsNilContextUnchanged: the ctx-free entry points must not
// change behavior — a nil Options.Context means run everything.
func TestRunCellsNilContextUnchanged(t *testing.T) {
	ran := 0
	if err := RunCells(Options{Par: 1}, 3, func(i int) error { ran++; return nil }); err != nil || ran != 3 {
		t.Fatalf("RunCells = (%v, %d cells), want (nil, 3)", err, ran)
	}
}

// TestFanoutKeyedContextCancelMidRun cancels the context from inside
// cell 0's compute. With Par 1 the schedule is deterministic: cell 0
// completes normally (cancellation is checked between cells, never
// inside one), cell 1 is canceled before it runs and lands in the
// manifest with canceled=true under its config key, and cell 2 is
// never claimed.
func TestFanoutKeyedContextCancelMidRun(t *testing.T) {
	dir := t.TempDir()
	w, err := runlog.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type res struct{ V int }
	o := Options{Par: 1, Exp: "CTX", Manifest: w}
	specs := []int{10, 20, 30}
	_, ferr := FanoutKeyedContext(ctx, o, specs,
		func(s int) string { return "cell" + itoaCtx(s) },
		func(i int, s int) (res, error) {
			if i == 0 {
				cancel()
			}
			return res{V: s}, nil
		})
	if werr := w.Close(); werr != nil {
		t.Fatal(werr)
	}

	var ce *CellCanceledError
	if !errors.As(ferr, &ce) || ce.Cell != 1 {
		t.Fatalf("err = %v, want cell 1 canceled", ferr)
	}

	recs := readCellRecords(t, dir)
	if len(recs) != 2 {
		t.Fatalf("manifest has %d cell records, want 2 (cell 0 ran, cell 1 canceled, cell 2 unclaimed)", len(recs))
	}
	if recs[0].Canceled || recs[0].Error != "" {
		t.Errorf("cell 0 record = %+v, want a clean completed cell", recs[0])
	}
	if !recs[1].Canceled {
		t.Errorf("cell 1 record = %+v, want canceled=true", recs[1])
	}
	if !strings.Contains(recs[1].Key, "cell20") {
		t.Errorf("canceled record key = %q, want the cell's config key", recs[1].Key)
	}
	if recs[1].Digest != "" || recs[1].Cached {
		t.Errorf("canceled record carries a result: %+v", recs[1])
	}
}

// TestFanoutContextHonorsStampedContext: the Context field works when
// stamped directly on Options too (the path the jobs server uses).
func TestFanoutContextHonorsStampedContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := Options{Par: 1, Context: ctx}
	_, err := Fanout(o, []int{1, 2}, func(i, s int) (int, error) { return s, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("stamped-context Fanout = %v, want context.Canceled", err)
	}
}

func readCellRecords(t *testing.T, dir string) []runlog.CellRecord {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, "manifest.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var out []runlog.CellRecord
	for _, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
		var c runlog.CellRecord
		if err := json.Unmarshal([]byte(line), &c); err != nil || c.Type != "cell" {
			continue
		}
		out = append(out, c)
	}
	return out
}

func itoaCtx(n int) string {
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}
