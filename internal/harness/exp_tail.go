package harness

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/coherence"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/workload"
)

func init() {
	Register(&Experiment{
		ID:    "F21",
		Title: "Latency distribution under contention: arbitration decides the tail",
		Claim: "mean latency hides the story: FIFO serves everyone at ~N*s with no tail, random arbitration stretches p99, locality starves the losers outright",
		Run:   runF21,
	})
}

func runF21(o Options) ([]*Table, error) {
	const threads = 16
	arbs := []struct {
		name string
		mk   func(seed uint64) coherence.Arbiter
	}{
		{"fifo", func(uint64) coherence.Arbiter { return coherence.FIFOArbiter{} }},
		{"random", func(seed uint64) coherence.Arbiter { return coherence.NewRandomArbiter(seed) }},
		{"loc-skip64", func(uint64) coherence.Arbiter { return &coherence.LocalityArbiter{MaxSkips: 64} }},
	}
	var eligible []*machine.Machine
	for _, m := range o.machines() {
		if threads <= m.NumHWThreads() {
			eligible = append(eligible, m)
		}
	}
	type spec struct {
		m   *machine.Machine
		arb int
	}
	var specs []spec
	for _, m := range eligible {
		for a := range arbs {
			specs = append(specs, spec{m, a})
		}
	}
	results, err := FanoutKeyed(o, specs, func(s spec) string {
		return s.m.Key() + "/" + arbs[s.arb].name
	}, func(ci int, s spec) (*workload.Result, error) {
		return workload.Run(workload.Config{
			Machine: s.m, Threads: threads, Primitive: atomics.FAA,
			Mode: workload.HighContention, Arbiter: arbs[s.arb].mk(o.Seed),
			Warmup: o.warmup(), Duration: o.duration(), Seed: o.Seed,
			Metrics: o.MetricsOn(), Check: o.CheckOn(), Faults: o.CellFaults(ci),
		})
	})
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range eligible {
		t := NewTable("F21 ("+m.Name+"): FAA attempt-latency distribution, 16 threads",
			"arbitration", "p50 (ns)", "p95 (ns)", "p99 (ns)", "max (ns)", "p99/p50")
		for _, a := range arbs {
			res := results[k]
			k++
			p50 := res.Latency.Quantile(0.5)
			p99 := res.Latency.Quantile(0.99)
			ratio := 0.0
			if p50 > 0 {
				ratio = float64(p99) / float64(p50)
			}
			t.AddRow(a.name, ns(p50), ns(res.Latency.Quantile(0.95)), ns(p99),
				ns(res.Latency.Max()), f2(ratio))
		}
		t.AddNote("FIFO's round-robin makes contended latency nearly deterministic (p99/p50 ~ 1)")
		tables = append(tables, t)
	}
	return tables, nil
}
