package harness

import (
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/machine"
)

func init() {
	Register(&Experiment{
		ID:    "F21",
		Title: "Latency distribution under contention: arbitration decides the tail",
		Claim: "mean latency hides the story: FIFO serves everyone at ~N*s with no tail, random arbitration stretches p99, locality starves the losers outright",
		Run:   runF21,
	})
}

func runF21(o Options) ([]*Table, error) {
	const threads = 16
	// The random arbiter's stream is seeded from the cell seed (o.Seed),
	// matching the hand-built arbiters this runner used before specs.
	arbs := []struct {
		name  string // display name
		arb   string // spec policy name
		skips int
	}{
		{"fifo", "fifo", 0},
		{"random", "random", 0},
		{"loc-skip64", "locality", 64},
	}
	var eligible []*machine.Machine
	for _, m := range o.machines() {
		if threads <= m.NumHWThreads() {
			eligible = append(eligible, m)
		}
	}
	var cells []workloadCell
	for _, m := range eligible {
		for _, a := range arbs {
			sp := o.baseSpec()
			sp.Primitive = atomics.FAA.String()
			sp.Arbiter = a.arb
			sp.ArbiterSkips = a.skips
			sp.Threads = threads
			sp.Seed = o.Seed
			c, err := newWorkloadCell(m, sp)
			if err != nil {
				return nil, err
			}
			cells = append(cells, c)
		}
	}
	results, err := runWorkloadCells(o, cells)
	if err != nil {
		return nil, err
	}

	var tables []*Table
	k := 0
	for _, m := range eligible {
		t := NewTable("F21 ("+m.Name+"): FAA attempt-latency distribution, 16 threads",
			"arbitration", "p50 (ns)", "p95 (ns)", "p99 (ns)", "max (ns)", "p99/p50")
		for _, a := range arbs {
			res := results[k]
			k++
			p50 := res.Latency.Quantile(0.5)
			p99 := res.Latency.Quantile(0.99)
			ratio := 0.0
			if p50 > 0 {
				ratio = float64(p99) / float64(p50)
			}
			t.AddRow(a.name, ns(p50), ns(res.Latency.Quantile(0.95)), ns(p99),
				ns(res.Latency.Max()), f2(ratio))
		}
		t.AddNote("FIFO's round-robin makes contended latency nearly deterministic (p99/p50 ~ 1)")
		tables = append(tables, t)
	}
	return tables, nil
}
