// Package predict implements the conflict-based throughput model for
// the concurrent objects in internal/apps: an application's operation
// is a multiset of accesses over contended lines (exactly the framing
// of core.PredictAlgorithm), but the retry expansion is driven by
// *measured* quantities — the structure's observed attempts per
// completed operation — instead of the blind 1/p ≈ n worst case.
//
// This is the paper-family methodology of Atalar, Renaud-Goud and
// Tsigas: measure the cheap, stable per-structure quantities (retry
// factor, elimination fraction) in one run, then predict throughput
// analytically for the same cell from primitive service times. The
// harness A-suite prints the prediction next to the simulated value
// with its relative error, so model drift is visible per cell.
package predict

import (
	"fmt"

	"atomicsmodel/internal/apps"
	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/core"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

// Step is one access an operation performs on a line. It mirrors
// core.AlgoStep (same Line sentinels) and adds HoldPS: serial time the
// operation keeps the line's owner busy beyond the primitive's own
// service — a lock's critical section.
type Step struct {
	Primitive atomics.Primitive
	// Line is the contended-line index (recipe-local; only identity and
	// distinctness matter), core.PrivateLine for per-thread lines, or
	// core.MigratoryLine for per-element lines that transfer between
	// threads without forming a shared serialization point.
	Line int
	// Retry scales the step by the measured retry factor: it sits in
	// the structure's repeat-until-success loop, so it executes
	// RetryFactor times per completed operation.
	Retry bool
	// Weight scales the step for operation mixes (0 means 1).
	Weight float64
	// HoldPS is extra serial occupancy per execution of the step
	// (picoseconds): the critical section the step's line protects.
	HoldPS sim.Time
}

// Quantities are the measured per-structure inputs the conflict model
// consumes: cheap scalars one simulation (or one hardware run) yields.
type Quantities struct {
	// RetryFactor is gating attempts per completed operation —
	// RunResult.Attempts / RunResult.TotalOps. 1 means conflict-free;
	// values below 1 (structures that do not report attempts) are
	// clamped to 1.
	RetryFactor float64
	// ElimFraction is the fraction of operations completed through a
	// collision array rather than the main structure (elimination
	// stacks); it shifts weight off the hot line.
	ElimFraction float64
}

// Measured extracts the model's quantities from a finished run.
func Measured(res *apps.RunResult) Quantities {
	q := Quantities{RetryFactor: 1}
	if res == nil || res.TotalOps == 0 {
		return q
	}
	if res.Attempts > 0 {
		q.RetryFactor = float64(res.Attempts) / float64(res.TotalOps)
	}
	if res.Eliminations > 0 {
		q.ElimFraction = float64(res.Eliminations) / float64(res.TotalOps)
		if q.ElimFraction > 1 {
			q.ElimFraction = 1
		}
	}
	return q
}

// Blind returns the a-priori quantities for n threads with no
// measurement: the FIFO blind-retry worst case (success rate 1/n),
// matching core.PredictAlgorithm's expansion. This is what a pure
// model query (no simulation) uses.
func Blind(n int) Quantities {
	if n < 1 {
		n = 1
	}
	return Quantities{RetryFactor: float64(n)}
}

// Recipe-local line indices. Only distinctness matters; the model
// treats each as an independent serial resource.
const (
	hotLine  = 0 // the structure's primary serialization point
	auxLine  = 1 // secondary shared line (tail, ticket, writer flag)
	wordBase = 2 // big-atomic word lines start here
)

// Steps builds the conflict-model recipe for a pinned app spec: the
// accesses one operation performs, with weights resolved from the
// spec's mix knobs and the measured quantities. The spec is defaulted
// internally, so callers may pass the sparse form.
func Steps(s *apps.Spec, q Quantities) ([]Step, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(s.ThreadLadder) > 0 {
		return nil, fmt.Errorf("predict: expand the thread ladder before building a recipe")
	}
	d := s.Defaulted()
	rf := d.ReadFraction
	wf := 1 - rf
	crit := d.CritPS
	switch d.Structure {
	case "counter-faa":
		return []Step{{Primitive: atomics.FAA, Line: hotLine}}, nil
	case "counter-cas":
		// Each retry round re-reads the counter and issues the CAS.
		return []Step{
			{Primitive: atomics.Load, Line: hotLine, Retry: true},
			{Primitive: atomics.CAS, Line: hotLine, Retry: true},
		}, nil
	case "counter-striped":
		// Writes FAA one stripe (uniform over stripes); reads sweep all
		// of them. Each stripe is its own serial resource.
		steps := make([]Step, 0, 2*d.Stripes)
		for i := 0; i < d.Stripes; i++ {
			if wf > 0 {
				steps = append(steps, Step{Primitive: atomics.FAA, Line: hotLine + i, Weight: wf / float64(d.Stripes)})
			}
			if rf > 0 {
				steps = append(steps, Step{Primitive: atomics.Load, Line: hotLine + i, Weight: rf})
			}
		}
		return steps, nil
	case "treiber-stack":
		return treiberSteps(1), nil
	case "elimination-stack":
		// The eliminated fraction pairs off on collision slots
		// (per-pair lines, no shared point): two slot CASes replace the
		// hot-line traffic of two operations.
		main := treiberSteps(1 - q.ElimFraction)
		if q.ElimFraction > 0 {
			main = append(main, Step{Primitive: atomics.CAS, Line: core.MigratoryLine, Weight: q.ElimFraction})
		}
		return main, nil
	case "ms-queue":
		return []Step{
			// Enqueue half: read the tail, link the next pointer on the
			// tail node (per-node line), swing the tail.
			{Primitive: atomics.Load, Line: auxLine, Weight: 0.5},
			{Primitive: atomics.CAS, Line: core.MigratoryLine, Weight: 0.5, Retry: true},
			{Primitive: atomics.CAS, Line: auxLine, Weight: 0.5},
			// Dequeue half: read the head, read the node, swing the head.
			{Primitive: atomics.Load, Line: hotLine, Weight: 0.5},
			{Primitive: atomics.Load, Line: core.MigratoryLine, Weight: 0.5},
			{Primitive: atomics.CAS, Line: hotLine, Weight: 0.5, Retry: true},
		}, nil
	case "lock-tas":
		return []Step{
			{Primitive: atomics.TAS, Line: hotLine, Retry: true},
			{Primitive: atomics.Store, Line: hotLine, HoldPS: crit},
		}, nil
	case "lock-ttas", "lock-ttas-backoff":
		// The spin re-reads ride the retry factor with the TAS; backoff
		// shrinks the measured factor rather than the recipe.
		return []Step{
			{Primitive: atomics.Load, Line: hotLine, Retry: true},
			{Primitive: atomics.TAS, Line: hotLine, Retry: true},
			{Primitive: atomics.Store, Line: hotLine, HoldPS: crit},
		}, nil
	case "lock-ticket":
		// FAA takes a ticket wait-free; the serving-word spin is the
		// retry loop; the holder bumps serving after the section.
		return []Step{
			{Primitive: atomics.FAA, Line: auxLine},
			{Primitive: atomics.Load, Line: hotLine, Retry: true},
			{Primitive: atomics.Store, Line: hotLine, HoldPS: crit},
		}, nil
	case "lock-cohort":
		// The local TAS carries the spin; the global CAS is amortized
		// over the cohort's hand-off budget.
		return []Step{
			{Primitive: atomics.CAS, Line: auxLine, Weight: 1 / float64(d.Handoffs)},
			{Primitive: atomics.TAS, Line: hotLine, Retry: true},
			{Primitive: atomics.Store, Line: hotLine, HoldPS: crit},
		}, nil
	case "rwlock-central":
		steps := []Step{
			{Primitive: atomics.CAS, Line: hotLine, Retry: true},
		}
		if rf > 0 {
			// Readers hold concurrently, so only their count updates
			// occupy the lock word; the section itself overlaps.
			steps = append(steps, Step{Primitive: atomics.FAA, Line: hotLine, Weight: rf})
		}
		if wf > 0 {
			steps = append(steps, Step{Primitive: atomics.Store, Line: hotLine, Weight: wf, HoldPS: crit})
		}
		return steps, nil
	case "rwlock-distributed":
		steps := []Step{}
		if rf > 0 {
			// Readers announce on their own slot and check the writer
			// flag; the announce rounds ride the retry factor.
			steps = append(steps,
				Step{Primitive: atomics.Store, Line: core.PrivateLine, Weight: rf, Retry: true},
				Step{Primitive: atomics.Load, Line: auxLine, Weight: rf},
				Step{Primitive: atomics.Store, Line: core.PrivateLine, Weight: rf},
			)
		}
		if wf > 0 {
			slots := d.Slots
			if slots == 0 {
				slots = d.Threads
			}
			steps = append(steps,
				Step{Primitive: atomics.TAS, Line: auxLine, Weight: wf, Retry: true},
				// The writer sweeps every reader slot (per-slot lines).
				Step{Primitive: atomics.Load, Line: core.MigratoryLine, Weight: wf * float64(slots)},
				Step{Primitive: atomics.Store, Line: auxLine, Weight: wf, HoldPS: crit},
			)
		}
		return steps, nil
	case "ws-deque":
		// Owner pushes and takes run on owner-private lines; only the
		// last-element race and steals CAS a top pointer — per-victim
		// lines, so they migrate without one shared bottleneck.
		return []Step{
			{Primitive: atomics.Load, Line: core.PrivateLine, Weight: 1.5},
			{Primitive: atomics.Store, Line: core.PrivateLine, Weight: 1.5},
			{Primitive: atomics.Load, Line: core.MigratoryLine, Weight: 0.5},
			{Primitive: atomics.CAS, Line: core.MigratoryLine, Retry: true, Weight: 0.5},
		}, nil
	case "big-atomic":
		if d.Words == 1 {
			// Single-word baseline: the classic CAS loop, plus plain
			// loads for the read fraction.
			steps := []Step{}
			if rf > 0 {
				steps = append(steps, Step{Primitive: atomics.Load, Line: wordBase, Weight: rf})
			}
			if wf > 0 {
				steps = append(steps,
					Step{Primitive: atomics.Load, Line: wordBase, Weight: wf, Retry: true},
					Step{Primitive: atomics.CAS, Line: wordBase, Weight: wf, Retry: true},
				)
			}
			return steps, nil
		}
		steps := []Step{
			// Both paths start at the version line; the seqlock rounds
			// and failed acquires ride the retry factor.
			{Primitive: atomics.Load, Line: hotLine, Retry: true},
		}
		if wf > 0 {
			steps = append(steps,
				Step{Primitive: atomics.CAS2, Line: hotLine, Weight: wf, Retry: true},
				Step{Primitive: atomics.Store, Line: hotLine, Weight: wf},
			)
		}
		if rf > 0 {
			// The read's closing version re-check.
			steps = append(steps, Step{Primitive: atomics.Load, Line: hotLine, Weight: rf})
		}
		for i := 0; i < d.Words; i++ {
			if rf > 0 {
				steps = append(steps, Step{Primitive: atomics.Load, Line: wordBase + i, Weight: rf})
			}
			if wf > 0 {
				steps = append(steps, Step{Primitive: atomics.Store, Line: wordBase + i, Weight: wf})
			}
		}
		return steps, nil
	}
	return nil, fmt.Errorf("predict: no recipe for structure %s", d.Structure)
}

// treiberSteps is the Treiber stack recipe at the given hot-line
// weight (50/50 push-pop; node lines are per-element).
func treiberSteps(w float64) []Step {
	return []Step{
		{Primitive: atomics.Store, Line: core.MigratoryLine, Weight: 0.5 * w},
		{Primitive: atomics.Load, Line: hotLine, Retry: true, Weight: w},
		{Primitive: atomics.Load, Line: core.MigratoryLine, Weight: 0.5 * w},
		{Primitive: atomics.CAS, Line: hotLine, Retry: true, Weight: w},
	}
}

// Throughput evaluates the conflict model: per-line occupancy with
// retry steps expanded by the measured factor, the max-occupancy line
// as the bottleneck, and the closed-system population bound as the
// ceiling. Returns predicted throughput in Mops.
func Throughput(md *core.Model, steps []Step, cores []int, q Quantities) (float64, error) {
	n := len(cores)
	if n == 0 {
		return 0, nil
	}
	rf := q.RetryFactor
	if rf < 1 {
		rf = 1
	}
	occupancy := map[int]float64{}
	var path float64
	for _, st := range steps {
		if st.Line < core.MigratoryLine {
			return 0, fmt.Errorf("predict: invalid line %d in recipe step", st.Line)
		}
		w := st.Weight
		if w == 0 {
			w = 1
		}
		if w < 0 {
			return 0, fmt.Errorf("predict: negative step weight %v", w)
		}
		attempts := w
		if st.Retry {
			attempts = w * rf
		}
		switch {
		case st.Line >= 0:
			s := float64(md.ServiceTime(st.Primitive, cores) + st.HoldPS)
			occupancy[st.Line] += attempts * s
			path += attempts * s
		case st.Line == core.MigratoryLine:
			// Transfer latency without a shared serialization point.
			s := float64(md.ServiceTime(st.Primitive, cores) + st.HoldPS)
			path += attempts * s
		default:
			// Private access: warmed per-thread line, local cost.
			s := float64(md.ServiceTime(st.Primitive, cores[:1]) + st.HoldPS)
			path += attempts * s
		}
	}
	var bottleneck float64
	for _, occ := range occupancy {
		if occ > bottleneck {
			bottleneck = occ
		}
	}
	if path <= 0 {
		return 0, fmt.Errorf("predict: recipe has no latency path")
	}
	rate := float64(n) / path // closed-system population bound
	if bottleneck > 0 {
		if serial := 1 / bottleneck; serial < rate {
			rate = serial
		}
	}
	return rate * 1e12 / 1e6, nil
}

// ForSpec predicts a pinned app spec's throughput on a machine from
// the given quantities: it resolves the spec's placement into cores,
// builds the recipe, and evaluates it against the machine's detailed
// service-time model. Returns Mops.
func ForSpec(m *machine.Machine, s *apps.Spec, q Quantities) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if len(s.ThreadLadder) > 0 {
		return 0, fmt.Errorf("predict: expand the thread ladder before predicting")
	}
	d := s.Defaulted()
	steps, err := Steps(d, q)
	if err != nil {
		return 0, err
	}
	place, err := machine.PlacementByName(d.Placement)
	if err != nil {
		return 0, err
	}
	slots, err := place.Place(m, d.Threads)
	if err != nil {
		return 0, err
	}
	cores := make([]int, len(slots))
	for i, hw := range slots {
		cores[i] = m.CoreOf(hw)
	}
	return Throughput(core.NewDetailed(m), steps, cores, q)
}
