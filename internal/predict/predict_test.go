package predict

import (
	"math"
	"testing"

	"atomicsmodel/internal/apps"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/sim"
)

func TestMeasuredQuantities(t *testing.T) {
	if q := Measured(nil); q.RetryFactor != 1 || q.ElimFraction != 0 {
		t.Fatalf("nil result: %+v", q)
	}
	res := &apps.RunResult{TotalOps: 100, Attempts: 250, Eliminations: 30}
	q := Measured(res)
	if q.RetryFactor != 2.5 {
		t.Fatalf("retry factor = %v, want 2.5", q.RetryFactor)
	}
	if q.ElimFraction != 0.3 {
		t.Fatalf("elim fraction = %v, want 0.3", q.ElimFraction)
	}
	// Structures without attempt reporting default to conflict-free.
	if q := Measured(&apps.RunResult{TotalOps: 100}); q.RetryFactor != 1 {
		t.Fatalf("attempt-free retry factor = %v, want 1", q.RetryFactor)
	}
	if q := Blind(8); q.RetryFactor != 8 {
		t.Fatalf("Blind(8) = %+v", q)
	}
}

// TestStepsCoverAllStructures demands a recipe for every registered
// structure: a structure the model cannot price would silently drop
// the A-suite's prediction column.
func TestStepsCoverAllStructures(t *testing.T) {
	for _, name := range apps.StructureNames() {
		s := &apps.Spec{Structure: name, Threads: 8, Seed: 1}
		steps, err := Steps(s, Blind(8))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(steps) == 0 {
			t.Errorf("%s: empty recipe", name)
		}
		mops, err := ForSpec(machine.XeonE5(), s, Blind(8))
		if err != nil {
			t.Errorf("%s: ForSpec: %v", name, err)
			continue
		}
		if mops <= 0 || math.IsInf(mops, 0) || math.IsNaN(mops) {
			t.Errorf("%s: predicted %v Mops", name, mops)
		}
	}
}

// TestRetryFactorMonotonicity: more measured conflict must never
// predict more throughput.
func TestRetryFactorMonotonicity(t *testing.T) {
	m := machine.XeonE5()
	s := &apps.Spec{Structure: "counter-cas", Threads: 16}
	prev := math.Inf(1)
	for _, rf := range []float64{1, 2, 4, 8, 16} {
		mops, err := ForSpec(m, s, Quantities{RetryFactor: rf})
		if err != nil {
			t.Fatal(err)
		}
		if mops > prev {
			t.Fatalf("retry factor %v predicts %v Mops > %v at lower conflict", rf, mops, prev)
		}
		prev = mops
	}
}

// TestEliminationSheddingHelps: shifting completed operations onto the
// collision array must raise the elimination stack's prediction.
func TestEliminationSheddingHelps(t *testing.T) {
	m := machine.XeonE5()
	s := &apps.Spec{Structure: "elimination-stack", Threads: 16}
	none, err := ForSpec(m, s, Quantities{RetryFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	half, err := ForSpec(m, s, Quantities{RetryFactor: 4, ElimFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if half <= none {
		t.Fatalf("elimination does not help: %v Mops with vs %v without", half, none)
	}
}

// TestFAABeatsCASUnderConflict: with any conflict measured on the CAS
// counter, the wait-free FAA counter must predict at least as fast —
// the paper's core qualitative ranking.
func TestFAABeatsCASUnderConflict(t *testing.T) {
	m := machine.XeonE5()
	faa, err := ForSpec(m, &apps.Spec{Structure: "counter-faa", Threads: 16}, Quantities{RetryFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	cas, err := ForSpec(m, &apps.Spec{Structure: "counter-cas", Threads: 16}, Quantities{RetryFactor: 6})
	if err != nil {
		t.Fatal(err)
	}
	if cas >= faa {
		t.Fatalf("CAS counter at retry factor 6 predicts %v Mops >= FAA's %v", cas, faa)
	}
}

// TestStripingRelievesBottleneck: the striped counter's per-stripe
// occupancy must beat the single hot line at the same thread count.
func TestStripingRelievesBottleneck(t *testing.T) {
	m := machine.XeonE5()
	one, err := ForSpec(m, &apps.Spec{Structure: "counter-striped", Threads: 16, Stripes: 1}, Quantities{RetryFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	sixteen, err := ForSpec(m, &apps.Spec{Structure: "counter-striped", Threads: 16, Stripes: 16}, Quantities{RetryFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sixteen <= one {
		t.Fatalf("16 stripes predict %v Mops <= 1 stripe's %v", sixteen, one)
	}
}

// TestPredictionTracksSimulation runs real cells and checks the
// measured-quantity prediction lands within a loose band of the
// simulated throughput — the model is an analytical estimate, not a
// replay, but it must be the right order of magnitude and rank the
// contended cell below the private one.
func TestPredictionTracksSimulation(t *testing.T) {
	m := machine.XeonE5()
	for _, structure := range []string{"counter-faa", "counter-cas", "treiber-stack"} {
		s := &apps.Spec{
			Structure: structure, Threads: 8,
			WarmupPS: 5 * sim.Microsecond, DurationPS: 50 * sim.Microsecond, Seed: 42,
		}
		res, err := apps.RunSpec(s, m)
		if err != nil {
			t.Fatal(err)
		}
		mops, err := ForSpec(m, s, Measured(res))
		if err != nil {
			t.Fatal(err)
		}
		ratio := mops / res.ThroughputMops
		if ratio < 0.2 || ratio > 5 {
			t.Errorf("%s: predicted %.2f Mops vs simulated %.2f (ratio %.2f) — out of band",
				structure, mops, res.ThroughputMops, ratio)
		}
	}
}

func TestStepsRejections(t *testing.T) {
	if _, err := Steps(&apps.Spec{Structure: "nope", Threads: 4}, Blind(4)); err == nil {
		t.Fatal("unknown structure accepted")
	}
	if _, err := Steps(&apps.Spec{Structure: "counter-faa", ThreadLadder: []int{1, 2}}, Blind(4)); err == nil {
		t.Fatal("unexpanded ladder accepted")
	}
	if _, err := Throughput(nil, []Step{{Line: -7}}, []int{0}, Blind(1)); err == nil {
		t.Fatal("invalid line accepted")
	}
}
