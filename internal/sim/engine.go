// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock in picoseconds and a priority queue
// of events. Events scheduled for the same instant fire in scheduling order,
// which makes every simulation fully deterministic for a given seed and
// schedule, independent of the host machine or Go scheduler. This determinism
// is what lets the repository reproduce the paper's experiments bit-for-bit
// across runs, something raw hardware measurements cannot do.
//
// In the model pipeline (ARCHITECTURE.md) this package is the bottom
// layer: internal/coherence schedules every protocol message on it,
// and each experiment cell owns a private engine — parallelism lives
// across cells (internal/harness), never inside one.
package sim

import "fmt"

// Time is a simulated instant or duration in picoseconds.
//
// Picosecond resolution lets machine descriptions express sub-cycle costs
// (e.g. 0.5 cycles of arbitration at 2.4 GHz) without accumulating rounding
// error over billions of events. An int64 of picoseconds spans about 106
// days of simulated time, far beyond any experiment here.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds reports t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// event is a scheduled callback. seq breaks ties so that events scheduled
// earlier at the same instant run first (stable, deterministic ordering).
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a binary min-heap of events ordered by (at, seq). It is
// hand-rolled rather than built on container/heap because the interface
// indirection there boxes every pushed and popped event onto the heap —
// two allocations per scheduled event, which dominated simulation cost
// at millions of events per experiment cell.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends ev and sifts it up to its heap position.
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // release the callback for GC
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	return top
}

// Engine is a discrete-event simulator. The zero value is ready to use.
// Engines are not safe for concurrent use; a simulation is a single-threaded
// interleaving of events by construction.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stopped bool
	// Processed counts events executed, for reporting and loop guards.
	processed uint64
	// maxPending is the event queue's high-water mark, an always-on
	// observability counter (see MaxPending): how bursty the simulated
	// system's scheduling got. One compare per push keeps it current.
	maxPending int
	// perturb, when set, rewrites every relative delay passed to
	// Schedule (fault injection: internal/faults uses it to jitter
	// transfer latencies deterministically). Absolute At times are never
	// perturbed, so measurement-window boundaries stay exact.
	perturb func(d Time) Time
	// eventHook, when set, runs before each dequeued event's callback
	// with the 1-based count of events processed so far. Fault plans use
	// it to panic a cell at a chosen event count; it must not schedule.
	eventHook func(processed uint64)
	// monotone, when set, receives a violation report if a dequeued
	// event's timestamp precedes the clock — impossible unless the heap
	// is corrupted, which is exactly what invariant checking looks for.
	monotone func(err error)
}

// SetPerturb installs a delay-perturbation hook applied to every
// Schedule call (nil removes it). The hook must be deterministic for
// reproducible fault injection; negative results are clamped to zero
// like any other delay.
func (e *Engine) SetPerturb(fn func(d Time) Time) { e.perturb = fn }

// SetEventHook installs a per-event hook run before each event's
// callback with the count of events processed so far, 1-based (nil
// removes it).
func (e *Engine) SetEventHook(fn func(processed uint64)) { e.eventHook = fn }

// SetMonotoneCheck installs an event-time monotonicity checker: report
// is called with a descriptive error if an event is ever dequeued with
// a timestamp before the current clock (nil removes the check).
func (e *Engine) SetMonotoneCheck(report func(err error)) { e.monotone = report }

// NewEngine returns an engine with its clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule runs fn after delay d (d may be zero; negative delays are
// clamped to zero so that callers computing d from latencies never move
// the clock backwards).
func (e *Engine) Schedule(d Time, fn func()) {
	if e.perturb != nil {
		d = e.perturb(d)
	}
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// At runs fn at absolute time t. Times before Now are clamped to Now.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.queue.push(event{at: t, seq: e.seq, fn: fn})
	if len(e.queue) > e.maxPending {
		e.maxPending = len(e.queue)
	}
}

// MaxPending reports the largest number of events that were ever queued
// at once — the schedule's burstiness, exported into metrics snapshots
// (internal/metrics) as "sim.queue_peak".
func (e *Engine) MaxPending() int { return e.maxPending }

// Pending reports the number of events waiting to run.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop halts Run before the next event. Events already dequeued complete.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty, the
// horizon is passed, or Stop is called. Events with timestamps exactly at
// the horizon still run; later ones remain queued. It returns the time of
// the clock when it stopped.
func (e *Engine) Run(horizon Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > horizon {
			break
		}
		ev := e.queue.pop()
		if e.monotone != nil && ev.at < e.now {
			e.monotone(fmt.Errorf("sim: event time moved backwards: dequeued t=%v seq=%d with clock at %v", ev.at, ev.seq, e.now))
		}
		e.now = ev.at
		e.processed++
		if e.eventHook != nil {
			e.eventHook(e.processed)
		}
		ev.fn()
	}
	if e.now < horizon && len(e.queue) == 0 {
		// Advance to the horizon so repeated Run calls observe monotonic time.
		e.now = horizon
	}
	return e.now
}

// Drain executes all remaining events regardless of time. It is mainly
// useful in tests that want to observe the natural end of a workload.
func (e *Engine) Drain() Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue.pop()
		if e.monotone != nil && ev.at < e.now {
			e.monotone(fmt.Errorf("sim: event time moved backwards: dequeued t=%v seq=%d with clock at %v", ev.at, ev.seq, e.now))
		}
		e.now = ev.at
		e.processed++
		if e.eventHook != nil {
			e.eventHook(e.processed)
		}
		ev.fn()
	}
	return e.now
}
